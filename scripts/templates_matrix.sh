#!/usr/bin/env bash
# Scenario-template matrix gate: generate the N × guard-policy family of
# GSU scenario specs (N ∈ {3, 5, 8} crossed with every guard policy),
# build each instance through internal/template — every generated state
# space is model-checked before any solve — run a short sweep over it,
# and collect the per-instance generated-state statistics into a single
# artifact file for CI. See docs/TEMPLATES.md.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${TEMPLATES_STATS:-templates-stats.txt}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# gen_spec N POLICY > spec.json — a scaled-rate heterogeneous scenario:
# the rates keep q·t inside the uniformization budget at every N so the
# matrix stays a fast smoke gate; the first node(s) carry the upgrade
# (two simultaneous upgrades at N = 8), and the last node deviates from
# the defaults so heterogeneity is exercised everywhere.
gen_spec() {
	local n=$1 policy=$2 retries="" upgrades=1 i comma
	[ "$policy" = "abort-retry" ] && retries=',"retries":2'
	[ "$n" -ge 8 ] && upgrades=2
	printf '{\n'
	printf '  "name": "n%s-%s",\n' "$n" "$policy"
	printf '  "theta": 100,\n  "coverage": 0.95,\n  "alpha": 360,\n  "beta": 720,\n'
	printf '  "defaults": {"lambda": 6, "p_ext": 0.3, "mu_old": 0.0002},\n'
	printf '  "guard": {"policy": "%s"%s},\n' "$policy" "$retries"
	printf '  "limits": {"max_states": 32768},\n'
	printf '  "nodes": [\n'
	for ((i = 1; i <= n; i++)); do
		comma=","
		[ "$i" -eq "$n" ] && comma=""
		if [ "$i" -le "$upgrades" ]; then
			printf '    {"name": "node%02d", "upgrade": {"mu_new": 0.002}}%s\n' "$i" "$comma"
		elif [ "$i" -eq "$n" ]; then
			printf '    {"name": "node%02d", "lambda": 9, "p_ext": 0.5}%s\n' "$i" "$comma"
		else
			printf '    {"name": "node%02d"}%s\n' "$i" "$comma"
		fi
	done
	printf '  ]\n}\n'
}

: >"$out"
for n in 3 5 8; do
	for policy in global per-node staged abort-retry; do
		name="n${n}-${policy}"
		file="$tmp/$name.json"
		gen_spec "$n" "$policy" >"$file"
		echo "== $name"
		go run ./cmd/gsueval -scenario "$file" -points 4 | tee "$tmp/$name.out"
		# The scenario summary line carries the state-space statistics
		# (node count, policy, generated states, Gp solve mode).
		grep '^scenario ' "$tmp/$name.out" >>"$out"
	done
done

echo
echo "state-space statistics ($out):"
cat "$out"
