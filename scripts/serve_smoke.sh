#!/usr/bin/env bash
# CI smoke gate for the gsuserve daemon (docs/SERVING.md):
#
#   1. build the daemon race-instrumented (any data race aborts it),
#   2. boot it and wait for readiness,
#   3. replay a deterministic loadgen script — fails on any 5xx or
#      transport error,
#   4. force a saturation burst against a one-slot limiter and assert
#      shedding works: at least one 429 (with Retry-After), zero 5xx,
#   5. SIGTERM and assert a clean drain (exit 0, "drained cleanly").
#
# Everything runs on loopback with dynamically assigned ports.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=$(mktemp -d)/gsuserve
LOG=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true' EXIT

echo "== building (race-instrumented) =="
go build -race -o "$BIN" ./cmd/gsuserve
export GORACE="halt_on_error=1"

# start_daemon <logfile> <extra flags...>; sets DAEMON_PID and
# DAEMON_ADDR. (Must not run in a command substitution: the background
# job has to belong to this shell so SIGTERM/wait can reach it.)
start_daemon() {
  local log=$1; shift
  "$BIN" -addr 127.0.0.1:0 "$@" >>"$log" 2>&1 &
  DAEMON_PID=$!
  DAEMON_ADDR=""
  for _ in $(seq 1 100); do
    DAEMON_ADDR=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$log" | head -1)
    [ -n "$DAEMON_ADDR" ] && break
    sleep 0.1
  done
  if [ -z "$DAEMON_ADDR" ]; then
    echo "daemon never announced its address" >&2
    cat "$log" >&2
    exit 1
  fi
}

echo "== boot + readiness =="
start_daemon "$LOG/serve.log" -workers 1
ADDR=$DAEMON_ADDR
MAIN_PID=$DAEMON_PID
for _ in $(seq 1 50); do
  if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -fsS "http://$ADDR/healthz" >/dev/null
curl -fsS "http://$ADDR/readyz" >/dev/null
echo "ready on $ADDR"

echo "== loadgen replay (no 5xx, no transport errors) =="
"$BIN" -loadgen -target "http://$ADDR" -n 200 -distinct 4 -seed 11 -concurrency 8

echo "== metrics exposition =="
curl -fsS "http://$ADDR/metrics" -o "$LOG/metrics.txt"
grep -q '^gsu_serve_requests_total' "$LOG/metrics.txt" \
  || { echo "metrics endpoint missing serve counters" >&2; exit 1; }

echo "== graceful drain (SIGTERM) =="
kill -TERM "$MAIN_PID"
wait "$MAIN_PID" || { echo "daemon exited nonzero on SIGTERM" >&2; cat "$LOG/serve.log" >&2; exit 1; }
grep -q "drained cleanly" "$LOG/serve.log" \
  || { echo "daemon did not report a clean drain" >&2; cat "$LOG/serve.log" >&2; exit 1; }

echo "== forced saturation burst (429 + Retry-After, zero 5xx) =="
start_daemon "$LOG/burst.log" -workers 1 -max-concurrent 1 -queue 1
BURST_ADDR=$DAEMON_ADDR
BURST_PID=$DAEMON_PID
CODES=$LOG/burst_codes
: >"$CODES"
# 16 concurrent distinct heavy queries against a one-slot limiter: the
# slot and the single queue place admit two, the rest must shed fast.
CURL_PIDS=()
for i in $(seq 1 16); do
  curl -s -o /dev/null -w '%{http_code} retry-after=%header{retry-after}\n' \
    -X POST -H 'Content-Type: application/json' \
    -d "{\"params\":{\"lambda\":0.02${i}},\"points\":1200}" \
    "http://$BURST_ADDR/v1/curve" >>"$CODES" &
  CURL_PIDS+=($!)
done
wait "${CURL_PIDS[@]}" || true

if grep -qE '^5[0-9][0-9] ' "$CODES"; then
  echo "saturation burst produced 5xx responses:" >&2
  cat "$CODES" >&2
  exit 1
fi
SHED=$(grep -c '^429 ' "$CODES" || true)
OK=$(grep -c '^200 ' "$CODES" || true)
if [ "$SHED" -eq 0 ]; then
  echo "saturation burst shed nothing (no 429s):" >&2
  cat "$CODES" >&2
  exit 1
fi
if [ "$OK" -eq 0 ]; then
  echo "saturation burst admitted nothing:" >&2
  cat "$CODES" >&2
  exit 1
fi
if grep '^429 ' "$CODES" | grep -vq 'retry-after=[0-9]'; then
  echo "429 responses missing Retry-After" >&2; cat "$CODES" >&2; exit 1
fi
echo "burst: $OK completed, $SHED shed"

kill -TERM "$BURST_PID"
wait "$BURST_PID" || { echo "burst daemon exited nonzero on SIGTERM" >&2; cat "$LOG/burst.log" >&2; exit 1; }
grep -q "drained cleanly" "$LOG/burst.log" \
  || { echo "burst daemon did not drain cleanly" >&2; cat "$LOG/burst.log" >&2; exit 1; }

if grep -q "DATA RACE" "$LOG"/*.log; then
  echo "race detector fired:" >&2
  cat "$LOG"/*.log >&2
  exit 1
fi

echo "serve smoke: OK"
