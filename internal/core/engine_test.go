package core

import (
	"context"
	"math"
	"testing"

	"guardedop/internal/ctmc"
	"guardedop/internal/mdcd"
)

// relCloseY asserts two curve results agree within relTol relative on the
// index and every constituent quantity. Probabilities and the index compare
// against their own magnitude; expected-worth quantities (YS1, YS2, EWPhi)
// are products of probabilities with the 2θ mission horizon, so their
// natural scale — the one a 1e-9 solver agreement propagates to — is the
// ideal worth E[W_I].
func relCloseY(t *testing.T, phi float64, got, want Result, relTol float64) {
	t.Helper()
	for _, c := range []struct {
		name      string
		got, want float64
		scale     float64
	}{
		{"Y", got.Y, want.Y, 0},
		{"YS1", got.YS1, want.YS1, want.EWI},
		{"YS2", got.YS2, want.YS2, want.EWI},
		{"EWPhi", got.EWPhi, want.EWPhi, want.EWI},
		{"PS1", got.PS1, want.PS1, 0},
		{"PNoFailNewRem", got.PNoFailNewRem, want.PNoFailNewRem, 0},
		{"IntF", got.IntF, want.IntF, 0},
		{"Gd.PA1", got.Gd.PA1, want.Gd.PA1, 0},
		{"Gd.IntH", got.Gd.IntH, want.Gd.IntH, 0},
		{"Gd.IntTauH", got.Gd.IntTauH, want.Gd.IntTauH, want.EWI},
		{"Gd.IntHF", got.Gd.IntHF, want.Gd.IntHF, 0},
	} {
		scale := c.scale
		if scale == 0 {
			scale = math.Abs(c.want)
			if scale < 1 {
				scale = 1
			}
		}
		if math.Abs(c.got-c.want) > relTol*scale {
			t.Errorf("phi=%g %s: engine %.15g vs point-wise %.15g", phi, c.name, c.got, c.want)
		}
	}
}

// The engine's shared-propagation curve must agree with the uncached
// point-wise reference path within 1e-9 relative across the paper grid,
// including unsorted and duplicate durations.
func TestCurveEngineMatchesPointwise(t *testing.T) {
	a := newAnalyzer(t, nil)
	phis := []float64{7000, 0, 2500, 10000, 500, 7000, 9999}
	results, err := a.Curve(phis)
	if err != nil {
		t.Fatal(err)
	}
	for i, phi := range phis {
		want, err := a.evaluatePointwise(phi, GammaPaperTauBar)
		if err != nil {
			t.Fatal(err)
		}
		relCloseY(t, phi, results[i], want, 1e-9)
	}
	if results[0].Y != results[5].Y {
		t.Error("duplicate phi entries differ")
	}
}

// The engine must also hold across a grid wider than one segment, so
// segment boundaries introduce no seams.
func TestCurveEngineMultiSegmentGrid(t *testing.T) {
	a := newAnalyzer(t, nil)
	grid := SweepGrid(10000, 3*curveChunkSize+5)
	results, err := a.Curve(grid)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, curveChunkSize - 1, curveChunkSize, 2*curveChunkSize + 7, len(grid) - 1} {
		want, err := a.evaluatePointwise(grid[i], GammaPaperTauBar)
		if err != nil {
			t.Fatal(err)
		}
		relCloseY(t, grid[i], results[i], want, 1e-9)
	}
}

// CurvePartialWorkers must be bit-identical at every worker count: segment
// boundaries depend only on the sorted grid.
func TestCurveWorkersBitIdentical(t *testing.T) {
	a := newAnalyzer(t, nil)
	grid := SweepGrid(10000, 50)
	ref, err := a.CurvePartialWorkers(context.Background(), grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 7} {
		pr, err := a.CurvePartialWorkers(context.Background(), grid, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range grid {
			if pr.OK[i] != ref.OK[i] {
				t.Fatalf("workers=%d: OK[%d] = %v, want %v", workers, i, pr.OK[i], ref.OK[i])
			}
			if pr.Results[i] != ref.Results[i] {
				t.Errorf("workers=%d: result %d differs from sequential run", workers, i)
			}
		}
	}
}

// The acceptance bar of the engine: a 50-point paper-scale grid must cost
// at least 3× fewer solver passes than per-point evaluation, with the
// count surfaced through the batch report's metrics.
func TestCurveEngineSolveBudget(t *testing.T) {
	a := newAnalyzer(t, nil)
	grid := SweepGrid(10000, 49) // 50 points
	pr, err := a.CurvePartialWorkers(context.Background(), grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	engineOps := pr.Report.Metrics.Solves
	if engineOps <= 0 {
		t.Fatal("engine run recorded no solver passes in Metrics.Solves")
	}

	before := ctmc.SolveOps()
	for _, phi := range grid {
		if _, err := a.evaluatePointwise(phi, GammaPaperTauBar); err != nil {
			t.Fatal(err)
		}
	}
	pointOps := int64(ctmc.SolveOps() - before)

	if pointOps < 3*engineOps {
		t.Errorf("engine spent %d solver passes, point-wise %d: want >= 3x fewer", engineOps, pointOps)
	}
}

// Repeated single-point evaluation must hit the per-analyzer memo caches:
// the second pass over the same φ values costs zero new solver passes.
func TestEvaluateMemoizesSolves(t *testing.T) {
	a := newAnalyzer(t, nil)
	phis := []float64{1000, 4000, 7000}
	for _, phi := range phis {
		if _, err := a.Evaluate(phi); err != nil {
			t.Fatal(err)
		}
	}
	before := ctmc.SolveOps()
	for _, phi := range phis {
		if _, err := a.Evaluate(phi); err != nil {
			t.Fatal(err)
		}
	}
	if delta := ctmc.SolveOps() - before; delta != 0 {
		t.Errorf("re-evaluating cached durations spent %d solver passes, want 0", delta)
	}
}

// Cached and uncached evaluation must agree tightly — the cache stores
// full-horizon solves, so a hit is the same value the miss produced.
func TestEvaluateCachedMatchesPointwise(t *testing.T) {
	a := newAnalyzer(t, nil)
	for _, phi := range []float64{0, 1, 2500, 7000, 10000} {
		got, err := a.Evaluate(phi)
		if err != nil {
			t.Fatal(err)
		}
		want, err := a.evaluatePointwise(phi, GammaPaperTauBar)
		if err != nil {
			t.Fatal(err)
		}
		relCloseY(t, phi, got, want, 1e-9)
	}
}

// An ablation policy must flow through the engine path too (the optimizer
// solves its coarse grid with the engine under the configured policy).
func TestCurveEnginePolicyPlumbing(t *testing.T) {
	a := newAnalyzer(t, nil)
	grid := SweepGrid(10000, 10)
	pr, err := a.curveBatchPolicy(context.Background(), grid, GammaNone, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, phi := range grid {
		if !pr.OK[i] {
			t.Fatalf("phi=%g failed: %v", phi, pr.Report.Err())
		}
		if pr.Results[i].Gamma != 1 {
			t.Errorf("phi=%g: GammaNone produced gamma=%g", phi, pr.Results[i].Gamma)
		}
		want, err := a.EvaluateWithPolicy(phi, GammaNone)
		if err != nil {
			t.Fatal(err)
		}
		relCloseY(t, phi, pr.Results[i], want, 1e-9)
	}
}

func BenchmarkCurveEngine(b *testing.B) {
	a, err := NewAnalyzer(mdcd.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	grid := SweepGrid(10000, 49) // 50-point paper-scale grid
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Curve(grid); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	pr, err := a.CurvePartialWorkers(context.Background(), grid, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(pr.Report.Metrics.Solves), "solves/sweep")
}

func BenchmarkCurvePerPoint(b *testing.B) {
	a, err := NewAnalyzer(mdcd.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	grid := SweepGrid(10000, 49)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, phi := range grid {
			if _, err := a.evaluatePointwise(phi, GammaPaperTauBar); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	before := ctmc.SolveOps()
	for _, phi := range grid {
		if _, err := a.evaluatePointwise(phi, GammaPaperTauBar); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ctmc.SolveOps()-before), "solves/sweep")
}
