package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"guardedop/internal/mdcd"
	"guardedop/internal/obs"
	"guardedop/internal/robust"
)

// TestCurveCancelKeepsCompletedPrefix is the regression test for the
// serving path's partial-result contract: a curve sweep whose context is
// canceled between grid segments must return every point solved before
// the cancellation as a PartialResult — not an empty result with a bare
// error. The cancellation is triggered from the sweep's own trace: a
// watcher goroutine cancels the context as soon as the first
// "core.segment" span finishes, so at least one segment's points are in
// and (with 11 segments on the grid) later segments are still pending.
func TestCurveCancelKeepsCompletedPrefix(t *testing.T) {
	a, err := NewAnalyzer(mdcd.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	theta := a.Params().Theta
	grid := SweepGrid(theta, 320) // 321 points = 11 segments of <=32

	tr := obs.NewTracer()
	ctx, cancel := context.WithCancel(obs.WithTracer(context.Background(), tr))
	defer cancel()
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		for {
			if st := tr.Stages(); st["core.segment"].Count >= 1 {
				cancel()
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(200 * time.Microsecond):
			}
		}
	}()

	pr, err := a.CurvePartialWorkers(ctx, grid, 1)
	<-watcherDone
	if pr == nil {
		t.Fatal("canceled sweep returned a nil PartialResult")
	}
	if pr.Report.Failed() == 0 {
		// The whole sweep outran the watcher — nothing was canceled, so
		// there is no prefix contract to check on this machine.
		t.Skip("sweep completed before the cancellation landed")
	}
	if err == nil {
		t.Fatalf("canceled sweep with %d failed points returned a nil error", pr.Report.Failed())
	}
	if !errors.Is(err, robust.ErrCanceled) {
		t.Fatalf("canceled sweep error = %v, want to wrap robust.ErrCanceled", err)
	}
	if got := pr.Report.Succeeded(); got == 0 {
		t.Fatalf("canceled sweep dropped its completed prefix: 0 successes of %d points (err: %v)", len(grid), err)
	}
	// Every failure must be accounted as a cancellation, and every success
	// must be a genuine solved point agreeing with the point-wise path.
	for _, f := range pr.Report.Failures {
		if !errors.Is(f.Err, robust.ErrCanceled) {
			t.Errorf("point %d failed with %v, want a cancellation", f.Index, f.Err)
		}
	}
	checked := 0
	for i, ok := range pr.OK {
		if !ok || checked >= 3 {
			continue
		}
		checked++
		want, err := a.Evaluate(grid[i])
		if err != nil {
			t.Fatalf("re-evaluating surviving point phi=%g: %v", grid[i], err)
		}
		if diff := math.Abs(pr.Results[i].Y - want.Y); diff > 1e-9*math.Abs(want.Y) {
			t.Errorf("surviving point phi=%g: Y=%g, point-wise %g", grid[i], pr.Results[i].Y, want.Y)
		}
	}
	if checked == 0 {
		t.Fatal("no surviving point available to cross-check")
	}
}

// TestCurveCanceledBeforeStart pins the boundary case: a context already
// dead when the sweep begins yields zero successes and an
// ErrCanceled-wrapping error, never a silent empty success.
func TestCurveCanceledBeforeStart(t *testing.T) {
	a, err := NewAnalyzer(mdcd.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pr, err := a.CurvePartialWorkers(ctx, SweepGrid(a.Params().Theta, 10), 1)
	if err == nil {
		t.Fatal("pre-canceled sweep returned a nil error")
	}
	if !errors.Is(err, robust.ErrCanceled) {
		t.Fatalf("pre-canceled sweep error = %v, want to wrap robust.ErrCanceled", err)
	}
	if pr != nil && pr.Report.Succeeded() != 0 {
		t.Fatalf("pre-canceled sweep reported %d successes", pr.Report.Succeeded())
	}
}
