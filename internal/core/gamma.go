package core

import (
	"fmt"

	"guardedop/internal/mdcd"
)

// GammaPolicy selects how the S2 discount factor γ is derived from the
// constituent measures. The paper (Section 6) defines γ = 1 − τ/θ "with τ
// the mean time to error detection" and solves τ as the Table 1 ∫τh
// reward; alternative readings are provided as ablations (see
// EXPERIMENTS.md for their quantified effect).
type GammaPolicy int

// Gamma policy choices.
const (
	// GammaPaperTauBar evaluates γ = 1 − ∫τh/θ with ∫τh the Table 1
	// accumulated-reward measure — the paper's treatment and the only one
	// under which the published curve shapes emerge. Default.
	GammaPaperTauBar GammaPolicy = iota
	// GammaConditionalMean evaluates γ = 1 − E[τ|τ≤φ]/θ with the exact
	// conditional mean detection time. Less pessimistic about aborted
	// upgrades; shifts the optimum right.
	GammaConditionalMean
	// GammaNone applies no discount (γ = 1): an aborted-but-safe upgrade
	// is worth as much as a successful one, apart from the overhead paid.
	GammaNone
)

// String names the policy.
func (g GammaPolicy) String() string {
	switch g {
	case GammaPaperTauBar:
		return "paper (tau-bar = Table 1 int tau*h)"
	case GammaConditionalMean:
		return "conditional mean detection time"
	case GammaNone:
		return "no discount"
	default:
		return fmt.Sprintf("GammaPolicy(%d)", int(g))
	}
}

// gammaFor computes the clamped discount for the given measures and policy.
func gammaFor(policy GammaPolicy, gdm mdcd.GdMeasures, theta float64) (float64, error) {
	var g float64
	switch policy {
	case GammaPaperTauBar:
		g = 1 - gdm.IntTauH/theta
	case GammaConditionalMean:
		g = 1 - gdm.MeanDetectionTime()/theta
	case GammaNone:
		g = 1
	default:
		return 0, fmt.Errorf("core: unknown gamma policy %d", int(policy))
	}
	if g < 0 {
		g = 0
	}
	if g > 1 {
		g = 1
	}
	return g, nil
}
