package core

import (
	"math"
	"testing"

	"guardedop/internal/mdcd"
)

func TestOptimizePhiRefinesGridOptimum(t *testing.T) {
	a := newAnalyzer(t, nil)
	best, err := a.OptimizePhi(OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The grid optimum is 7000; the continuous optimum must be nearby and
	// at least as good as every grid point.
	if best.Phi < 6000 || best.Phi > 8000 {
		t.Errorf("continuous optimum phi = %v, want near 7000", best.Phi)
	}
	gridBest, err := a.OptimalPhi(SweepGrid(10000, 10))
	if err != nil {
		t.Fatal(err)
	}
	if best.Y < gridBest.Y-1e-9 {
		t.Errorf("refined Y = %v below grid Y = %v", best.Y, gridBest.Y)
	}
}

func TestOptimizePhiRespectsTolerance(t *testing.T) {
	a := newAnalyzer(t, nil)
	coarse, err := a.OptimizePhi(OptimizeOptions{Tolerance: 2000})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := a.OptimizePhi(OptimizeOptions{Tolerance: 5})
	if err != nil {
		t.Fatal(err)
	}
	if fine.Y+1e-9 < coarse.Y {
		t.Errorf("finer tolerance found worse optimum: %v < %v", fine.Y, coarse.Y)
	}
}

func TestOptimizePhiLowCoverageFindsBoundary(t *testing.T) {
	// At c=0.10, Y is maximised at phi=0 (Y=1): the optimizer must not
	// wander into the interior.
	a := newAnalyzer(t, func(p *mdcd.Params) {
		p.Coverage = 0.10
		p.Alpha, p.Beta = 2500, 2500
	})
	best, err := a.OptimizePhi(OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The continuous curve has a microscopically positive slope at phi=0
	// before turning down (invisible at the paper's grid step of 1000), so
	// allow Y to exceed 1 by a hair as long as the optimum hugs the
	// boundary and never reaches a practically useful level.
	if best.Y > 1+1e-4 {
		t.Errorf("max Y = %v, want ≈ 1 at the phi=0 boundary", best.Y)
	}
	if best.Phi > 600 {
		t.Errorf("optimal phi = %v, want near 0", best.Phi)
	}
}

func TestOptimizePhiParallelMatchesSequential(t *testing.T) {
	a := newAnalyzer(t, nil)
	seq, err := a.OptimizePhi(OptimizeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		par, err := a.OptimizePhi(OptimizeOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// The coarse grid scan is the only parallel stage and the golden
		// section that follows is seeded by its argmax, so any worker count
		// must land on bit-identical results.
		if par.Phi != seq.Phi || par.Y != seq.Y {
			t.Errorf("workers=%d: (phi, Y) = (%v, %v), want (%v, %v)",
				workers, par.Phi, par.Y, seq.Phi, seq.Y)
		}
	}
}

func TestOptimizePhiBadOptions(t *testing.T) {
	a := newAnalyzer(t, nil)
	if _, err := a.OptimizePhi(OptimizeOptions{GridPoints: 1}); err == nil {
		t.Error("GridPoints=1 accepted")
	}
	if _, err := a.OptimizePhi(OptimizeOptions{Tolerance: -5}); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestGammaPolicies(t *testing.T) {
	a := newAnalyzer(t, nil)
	phi := 7000.0
	paper, err := a.EvaluateWithPolicy(phi, GammaPaperTauBar)
	if err != nil {
		t.Fatal(err)
	}
	cond, err := a.EvaluateWithPolicy(phi, GammaConditionalMean)
	if err != nil {
		t.Fatal(err)
	}
	none, err := a.EvaluateWithPolicy(phi, GammaNone)
	if err != nil {
		t.Fatal(err)
	}
	// The Table 1 tau-bar counts the full phi for never-detected paths, so
	// it exceeds the conditional mean: gamma ordering paper < conditional
	// < none, hence the same ordering for Y.
	if !(paper.Gamma < cond.Gamma && cond.Gamma < none.Gamma) {
		t.Errorf("gamma ordering violated: %v, %v, %v", paper.Gamma, cond.Gamma, none.Gamma)
	}
	if none.Gamma != 1 {
		t.Errorf("GammaNone gamma = %v, want 1", none.Gamma)
	}
	if !(paper.Y < cond.Y && cond.Y < none.Y) {
		t.Errorf("Y ordering violated: %v, %v, %v", paper.Y, cond.Y, none.Y)
	}
	if _, err := a.EvaluateWithPolicy(phi, GammaPolicy(99)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestGammaConditionalMatchesClosedForm(t *testing.T) {
	// With the fast-message approximation, tau | tau <= phi is the mean of
	// a truncated exponential with rate mu ~= mu_new.
	a := newAnalyzer(t, nil)
	phi := 7000.0
	r, err := a.EvaluateWithPolicy(phi, GammaConditionalMean)
	if err != nil {
		t.Fatal(err)
	}
	mu := a.Params().MuNew
	wantTau := (1/mu - math.Exp(-mu*phi)*(phi+1/mu)) / (1 - math.Exp(-mu*phi))
	wantGamma := 1 - wantTau/a.Params().Theta
	if math.Abs(r.Gamma-wantGamma) > 5e-3 {
		t.Errorf("conditional gamma = %.5f, want ≈ %.5f", r.Gamma, wantGamma)
	}
}

func TestGammaPolicyString(t *testing.T) {
	for _, p := range []GammaPolicy{GammaPaperTauBar, GammaConditionalMean, GammaNone, GammaPolicy(42)} {
		if p.String() == "" {
			t.Errorf("empty String for policy %d", int(p))
		}
	}
}

func TestOptimizeUnderAlternativePolicies(t *testing.T) {
	a := newAnalyzer(t, nil)
	paper, err := a.OptimizePhi(OptimizeOptions{Policy: GammaPaperTauBar, Tolerance: 50})
	if err != nil {
		t.Fatal(err)
	}
	cond, err := a.OptimizePhi(OptimizeOptions{Policy: GammaConditionalMean, Tolerance: 50})
	if err != nil {
		t.Fatal(err)
	}
	// A milder discount makes longer guarding more attractive.
	if cond.Phi < paper.Phi-100 {
		t.Errorf("conditional-gamma optimum %v should not be left of paper optimum %v", cond.Phi, paper.Phi)
	}
	if cond.Y < paper.Y {
		t.Errorf("conditional-gamma max Y %v below paper policy %v", cond.Y, paper.Y)
	}
}

func TestImperfectRecoveryLowersY(t *testing.T) {
	p := mdcd.DefaultParams()
	perfect, err := NewAnalyzer(p)
	if err != nil {
		t.Fatal(err)
	}
	flaky, err := NewAnalyzerWithOptions(p, Options{RecoverySuccess: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	phi := 7000.0
	rp, err := perfect.Evaluate(phi)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := flaky.Evaluate(phi)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Y >= rp.Y {
		t.Errorf("imperfect recovery did not lower Y: %.4f vs %.4f", rf.Y, rp.Y)
	}
	// Detection probability (successful recoveries) must drop with the
	// recovery success factor.
	if rf.Gd.IntH >= rp.Gd.IntH {
		t.Errorf("IntH did not drop: %.4f vs %.4f", rf.Gd.IntH, rp.Gd.IntH)
	}
	if _, err := NewAnalyzerWithOptions(p, Options{RecoverySuccess: 1.5}); err == nil {
		t.Error("RecoverySuccess > 1 accepted")
	}
}
