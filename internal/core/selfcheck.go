package core

import (
	"context"
	"fmt"
	"math"
	"strings"

	"guardedop/internal/mdcd"
	"guardedop/internal/robust"
)

// CheckResult records one check of the self-check suite.
type CheckResult struct {
	// Name identifies the check, e.g. "curve" or "Y(0) identity".
	Name string
	// OK reports whether the check passed.
	OK bool
	// Detail explains a failure (or carries a short note on success).
	Detail string
}

// SelfCheckReport is the outcome of the invariant suite for one parameter
// set.
type SelfCheckReport struct {
	Params mdcd.Params
	Checks []CheckResult
}

// Failed returns the number of failed checks.
func (r *SelfCheckReport) Failed() int {
	n := 0
	for _, c := range r.Checks {
		if !c.OK {
			n++
		}
	}
	return n
}

// Err returns nil when every check passed, otherwise an error wrapping
// robust.ErrInvariant that names the failed checks.
func (r *SelfCheckReport) Err() error {
	var failed []string
	for _, c := range r.Checks {
		if !c.OK {
			failed = append(failed, c.Name)
		}
	}
	if len(failed) == 0 {
		return nil
	}
	return fmt.Errorf("core: self-check failed [%s]: %w", strings.Join(failed, ", "), robust.ErrInvariant)
}

// String renders the report one check per line, PASS/FAIL first.
func (r *SelfCheckReport) String() string {
	var b strings.Builder
	for _, c := range r.Checks {
		verdict := "PASS"
		if !c.OK {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "%s  %-28s %s\n", verdict, c.Name, c.Detail)
	}
	return b.String()
}

// selfCheckYZeroTol bounds |Y(0) − 1|: with no guarded operation the
// residual mission worth equals the immediate-upgrade worth, so the index
// is exactly one up to round-off.
const selfCheckYZeroTol = 1e-9

// SelfCheck runs the analyzer invariant suite for one parameter set: model
// construction, the solved overhead fractions, a φ-grid sweep in which
// every point must satisfy the per-evaluation invariants (probabilities in
// [0,1], finite worths, E[W_φ] ≤ E[W_I]), the boundary identity Y(0) = 1,
// and the continuous optimizer. gridPoints ≤ 0 selects 20 intervals.
//
// The report is always returned, including on early failures; the error
// mirrors report.Err() except for context cancellation, which is returned
// as-is.
func SelfCheck(ctx context.Context, p mdcd.Params, gridPoints int) (*SelfCheckReport, error) {
	if gridPoints <= 0 {
		gridPoints = 20
	}
	rep := &SelfCheckReport{Params: p}
	add := func(name string, ok bool, detail string) {
		rep.Checks = append(rep.Checks, CheckResult{Name: name, OK: ok, Detail: detail})
	}

	if err := p.Validate(); err != nil {
		add("parameter validation", false, err.Error())
		return rep, rep.Err()
	}
	add("parameter validation", true, "")

	a, err := NewAnalyzer(p)
	if err != nil {
		add("model construction", false, err.Error())
		return rep, rep.Err()
	}
	add("model construction", true, "")

	rho1, rho2 := a.Rho()
	if err := robust.CheckProbability("rho1", rho1, probabilityTol); err != nil {
		add("overhead fractions", false, err.Error())
	} else if err := robust.CheckProbability("rho2", rho2, probabilityTol); err != nil {
		add("overhead fractions", false, err.Error())
	} else {
		add("overhead fractions", true, fmt.Sprintf("rho1=%.4f rho2=%.4f", rho1, rho2))
	}

	grid := SweepGrid(p.Theta, gridPoints)
	pr, err := a.CurvePartial(ctx, grid)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			add("phi-grid invariants", false, err.Error())
			return rep, err
		}
		add("phi-grid invariants", false, err.Error())
		return rep, rep.Err()
	}
	if pr.Report.Failed() > 0 {
		add("phi-grid invariants", false, pr.Report.Summary())
	} else {
		add("phi-grid invariants", true, fmt.Sprintf("%d points evaluated", len(grid)))
	}

	// Boundary identity: with φ = 0 the guarded phase is empty, so
	// E[W_φ] = E[W_0] and Y(0) = 1 by construction (Eq. 1).
	if pr.OK[0] {
		y0 := pr.Results[0].Y
		if math.Abs(y0-1) > selfCheckYZeroTol {
			add("Y(0) identity", false, fmt.Sprintf("Y(0) = %g, want 1", y0))
		} else {
			add("Y(0) identity", true, "")
		}
	} else {
		add("Y(0) identity", false, "phi=0 failed to evaluate")
	}

	best, err := a.OptimizePhiContext(ctx, OptimizeOptions{GridPoints: gridPoints})
	switch {
	case err != nil:
		add("continuous optimizer", false, err.Error())
	case best.Phi < 0 || best.Phi > p.Theta || math.IsNaN(best.Y):
		add("continuous optimizer", false, fmt.Sprintf("phi*=%g Y=%g out of range", best.Phi, best.Y))
	default:
		add("continuous optimizer", true, fmt.Sprintf("phi*=%.0f Y=%.4f", best.Phi, best.Y))
	}

	return rep, rep.Err()
}
