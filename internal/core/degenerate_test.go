package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"guardedop/internal/mdcd"
	"guardedop/internal/robust"
)

// degenerateCases feeds extreme and boundary parameter sets through the
// full analyzer pipeline. The contract under test: every case either
// returns a typed error or finite outputs — never a panic, never NaN.
func degenerateCases() map[string]mdcd.Params {
	base := mdcd.DefaultParams()
	with := func(mut func(*mdcd.Params)) mdcd.Params {
		p := base
		mut(&p)
		return p
	}
	return map[string]mdcd.Params{
		"baseline":          base,
		"zero mu_new":       with(func(p *mdcd.Params) { p.MuNew = 0 }),
		"zero mu_old":       with(func(p *mdcd.Params) { p.MuOld = 0 }),
		"zero both mus":     with(func(p *mdcd.Params) { p.MuNew, p.MuOld = 0, 0 }),
		"coverage zero":     with(func(p *mdcd.Params) { p.Coverage = 0 }),
		"coverage one":      with(func(p *mdcd.Params) { p.Coverage = 1 }),
		"huge theta":        with(func(p *mdcd.Params) { p.Theta = 1e9 }),
		"tiny theta":        with(func(p *mdcd.Params) { p.Theta = 1e-6 }),
		"huge mu_new":       with(func(p *mdcd.Params) { p.MuNew = 1e3 }),
		"mu_new above all":  with(func(p *mdcd.Params) { p.MuNew = 1e7 }),
		"tiny alpha beta":   with(func(p *mdcd.Params) { p.Alpha, p.Beta = 1e-6, 1e-6 }),
		"huge lambda":       with(func(p *mdcd.Params) { p.Lambda = 1e9 }),
		"tiny lambda":       with(func(p *mdcd.Params) { p.Lambda = 1e-6 }),
		"pext one":          with(func(p *mdcd.Params) { p.PExt = 1 }),
		"near-zero pext":    with(func(p *mdcd.Params) { p.PExt = 1e-12 }),
		"slow AT fast rate": with(func(p *mdcd.Params) { p.Alpha = 1e-3; p.MuNew = 10 }),
	}
}

func checkResultFinite(t *testing.T, name string, r Result) {
	t.Helper()
	for _, c := range []struct {
		field string
		v     float64
	}{
		{"Y", r.Y}, {"EWPhi", r.EWPhi}, {"YS1", r.YS1}, {"YS2", r.YS2},
		{"Gamma", r.Gamma}, {"PS1", r.PS1}, {"EW0", r.EW0},
	} {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			t.Errorf("%s: %s = %g (non-finite leaked through)", name, c.field, c.v)
		}
	}
}

func TestDegenerateParamsNeverPanicOrLeakNaN(t *testing.T) {
	for name, p := range degenerateCases() {
		t.Run(name, func(t *testing.T) {
			a, err := NewAnalyzer(p)
			if err != nil {
				// A typed failure is acceptable; a silent one is not.
				if err.Error() == "" {
					t.Fatalf("empty error from NewAnalyzer")
				}
				return
			}
			// Evaluate the boundary durations and an interior point.
			for _, phi := range []float64{0, p.Theta / 3, p.Theta} {
				r, err := a.Evaluate(phi)
				if err != nil {
					continue // typed skip is fine
				}
				checkResultFinite(t, name, r)
			}
			// The partial sweep must always produce a report, even when
			// individual points fail.
			pr, err := a.CurvePartial(context.Background(), SweepGrid(p.Theta, 8))
			if err != nil && pr.Report.Succeeded() > 0 {
				t.Errorf("CurvePartial errored despite %d survivors: %v", pr.Report.Succeeded(), err)
			}
			for _, i := range pr.SuccessIndices() {
				checkResultFinite(t, name, pr.Results[i])
			}
		})
	}
}

func TestEvaluateOutOfRangePhi(t *testing.T) {
	a, err := NewAnalyzer(mdcd.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, phi := range []float64{-1, 1e9, math.NaN()} {
		if _, err := a.Evaluate(phi); err == nil {
			t.Errorf("Evaluate(%g) accepted an out-of-range duration", phi)
		}
	}
}

func TestCurvePartialSkipsBadPoints(t *testing.T) {
	a, err := NewAnalyzer(mdcd.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Poison two of the φ values; the valid ones must still evaluate.
	phis := []float64{0, 2500, math.NaN(), 5000, -10, 10000}
	pr, err := a.CurvePartial(context.Background(), phis)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Report.Failed() != 2 || pr.Report.Succeeded() != 4 {
		t.Fatalf("report = %s", pr.Report.Summary())
	}
	for _, f := range pr.Report.Failures {
		if f.Err == nil {
			t.Errorf("failure at %d has nil error", f.Index)
		}
	}
}

func TestCurvePartialCancellation(t *testing.T) {
	a, err := NewAnalyzer(mdcd.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = a.CurvePartial(ctx, SweepGrid(10000, 10))
	if !errors.Is(err, robust.ErrCanceled) {
		t.Fatalf("canceled sweep returned %v, want ErrCanceled", err)
	}
}

func TestCurveStrictStillFailsFast(t *testing.T) {
	a, err := NewAnalyzer(mdcd.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Curve([]float64{0, math.NaN(), 5000}); err == nil {
		t.Fatal("strict Curve accepted a NaN phi")
	}
}

func TestSelfCheckBaselinePasses(t *testing.T) {
	rep, err := SelfCheck(context.Background(), mdcd.DefaultParams(), 10)
	if err != nil {
		t.Fatalf("baseline self-check failed: %v\n%s", err, rep)
	}
	if rep.Failed() != 0 || len(rep.Checks) < 5 {
		t.Errorf("report = %s", rep)
	}
}

func TestSelfCheckRejectsInvalidParams(t *testing.T) {
	p := mdcd.DefaultParams()
	p.Lambda = 0 // degenerate: no messages are ever sent
	rep, err := SelfCheck(context.Background(), p, 10)
	if !errors.Is(err, robust.ErrInvariant) {
		t.Fatalf("err = %v, want ErrInvariant", err)
	}
	if rep.Failed() == 0 {
		t.Error("report shows no failed checks")
	}
}

func TestSelfCheckCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SelfCheck(ctx, mdcd.DefaultParams(), 10)
	if !errors.Is(err, robust.ErrCanceled) {
		t.Fatalf("canceled self-check returned %v, want ErrCanceled", err)
	}
}
