package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"guardedop/internal/mdcd"
	"guardedop/internal/obs"
	"guardedop/internal/robust"
)

// curveChunkSize is the number of grid points each independently-propagated
// segment of a curve sweep covers. Segment boundaries are a pure function
// of the sorted grid — never of the worker count — so CurvePartialWorkers
// stays bit-identical at any parallelism. The value trades propagation
// sharing (larger segments amortize better) against parallelism and
// blast radius (a solver failure voids only one segment's points before
// the per-point fallback reclaims the good ones).
const curveChunkSize = 32

// solvedPoint carries one φ-grid point's pre-solved constituent measures
// from the engine's batched solve stage to the assembly stage. err marks a
// point whose segment solve failed (or whose φ is out of range); assembly
// re-evaluates such points through the point-wise path.
type solvedPoint struct {
	phi     float64
	gdm     mdcd.GdMeasures
	pNewRem float64 // P(X″_{θ−φ} ∈ A″₁), upgraded pair
	pOldRem float64 // recovered-pair survival over [φ, θ]
	err     error
}

// solveCurvePoints runs the engine's solve stage: the valid φ are sorted,
// split into contiguous segments of curveChunkSize, and each segment is
// solved with two shared incremental passes — one combined
// transient+accumulated series over RMGd for all six Table 1 measures, and
// one transient series over the stacked RMNd pair for both no-failure
// probabilities. That is 2 solver passes per grid point; the point-wise
// reference path spends 8.
func (a *Analyzer) solveCurvePoints(ctx context.Context, phis []float64, workers int) []solvedPoint {
	pts := make([]solvedPoint, len(phis))
	theta := a.params.Theta
	valid := make([]int, 0, len(phis))
	for i, phi := range phis {
		pts[i].phi = phi
		if math.IsNaN(phi) || phi < 0 || phi > theta {
			pts[i].err = fmt.Errorf("core: phi = %g out of [0, theta=%g]", phi, theta)
			continue
		}
		valid = append(valid, i)
	}
	if len(valid) == 0 {
		return pts
	}
	sort.SliceStable(valid, func(x, y int) bool { return phis[valid[x]] < phis[valid[y]] })
	chunks := make([][]int, 0, (len(valid)+curveChunkSize-1)/curveChunkSize)
	for start := 0; start < len(valid); start += curveChunkSize {
		end := min(start+curveChunkSize, len(valid))
		chunks = append(chunks, valid[start:end])
	}

	// Segments write disjoint index sets of pts, so the worker pool needs
	// no further synchronization.
	pr, batchErr := robust.RunBatch(ctx, chunks, func(cctx context.Context, chunk []int) (struct{}, error) {
		cctx, sp := obs.StartSpan(cctx, "core.segment")
		defer sp.End()
		sp.SetInt("points", int64(len(chunk)))
		chunkPhis := make([]float64, len(chunk))
		rems := make([]float64, len(chunk))
		for j, idx := range chunk {
			chunkPhis[j] = phis[idx]
			rems[j] = theta - phis[idx]
		}
		gdms, err := a.gd.MeasuresSeriesContext(cctx, chunkPhis)
		if err != nil {
			sp.Event("segment_failed")
			return struct{}{}, err
		}
		pNew, pOld, err := a.ndPair.NoFailureSeriesContext(cctx, rems)
		if err != nil {
			sp.Event("segment_failed")
			return struct{}{}, err
		}
		for j, idx := range chunk {
			pts[idx].gdm = gdms[j]
			pts[idx].pNewRem = pNew[j]
			pts[idx].pOldRem = pOld[j]
		}
		return struct{}{}, nil
	}, robust.BatchOptions{Workers: workers})

	for k, ok := range pr.OK {
		if ok {
			continue
		}
		// batchErr covers batch-level causes (cancellation) for segments
		// that never ran; a segment's own failure overrides it below.
		cerr := batchErr
		if cerr == nil {
			cerr = fmt.Errorf("core: curve segment %d did not complete", k)
		}
		for _, f := range pr.Report.Failures {
			if f.Index == k {
				cerr = f.Err
				break
			}
		}
		for _, idx := range chunks[k] {
			if pts[idx].err == nil {
				pts[idx].err = cerr
			}
		}
	}
	return pts
}

// parametricCurvePoints serves the solve stage from the closed-form
// parametric layer: every valid point costs polynomial evaluation only, no
// CTMC solver passes. Served points count as parametric hits here; a point
// the layer declines keeps its error and is re-evaluated by the assembly
// stage's numeric fallback, whose own parametric retry records the
// fallback count (so each declined point counts exactly once). A canceled
// context marks the remaining points ErrCanceled, preserving the sweep's
// completed-prefix contract.
func (a *Analyzer) parametricCurvePoints(ctx context.Context, phis []float64) []solvedPoint {
	pts := make([]solvedPoint, len(phis))
	theta := a.params.Theta
	for i, phi := range phis {
		pts[i].phi = phi
		if cerr := ctx.Err(); cerr != nil {
			pts[i].err = fmt.Errorf("%w: %v", robust.ErrCanceled, cerr)
			continue
		}
		if math.IsNaN(phi) || phi < 0 || phi > theta {
			pts[i].err = fmt.Errorf("core: phi = %g out of [0, theta=%g]", phi, theta)
			continue
		}
		gdm, pNew, pOld, err := a.parametricPoint(phi)
		if err != nil {
			pts[i].err = err
			continue
		}
		obs.Count(ctx, obs.CtrParametricHits, 1)
		pts[i].gdm, pts[i].pNewRem, pts[i].pOldRem = gdm, pNew, pOld
	}
	return pts
}
