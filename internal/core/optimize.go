package core

import (
	"fmt"
	"math"
)

// goldenRatio conjugate: the interior-point fraction of golden-section
// search.
const goldenConjugate = 0.6180339887498949

// OptimizeOptions tunes the continuous optimal-duration search.
type OptimizeOptions struct {
	// GridPoints is the coarse bracketing grid size (default 20 intervals).
	GridPoints int
	// Tolerance is the φ resolution at which refinement stops, in hours
	// (default θ/10000).
	Tolerance float64
	// Policy selects the γ treatment (default the paper's).
	Policy GammaPolicy
}

// OptimizePhi finds the guarded-operation duration maximising Y over
// [0, θ] to within the requested tolerance: a coarse grid brackets the
// maximum, then golden-section search refines it. Y(φ) is unimodal for
// every parameter set the study exercises (the tradeoff between the two
// degradation sources has a single crossover); should a parameter set ever
// produce multiple local maxima, the coarse grid keeps the search on the
// global one at grid resolution.
func (a *Analyzer) OptimizePhi(opts OptimizeOptions) (Result, error) {
	if opts.GridPoints == 0 {
		opts.GridPoints = 20
	}
	if opts.GridPoints < 2 {
		return Result{}, fmt.Errorf("core: OptimizePhi needs at least 2 grid intervals, got %d", opts.GridPoints)
	}
	theta := a.params.Theta
	if opts.Tolerance == 0 {
		opts.Tolerance = theta / 10000
	}
	if opts.Tolerance <= 0 || math.IsNaN(opts.Tolerance) {
		return Result{}, fmt.Errorf("core: invalid tolerance %g", opts.Tolerance)
	}

	eval := func(phi float64) (Result, error) {
		return a.EvaluateWithPolicy(phi, opts.Policy)
	}

	// Coarse bracket.
	grid := SweepGrid(theta, opts.GridPoints)
	best, err := eval(grid[0])
	if err != nil {
		return Result{}, err
	}
	bestIdx := 0
	for i := 1; i < len(grid); i++ {
		r, err := eval(grid[i])
		if err != nil {
			return Result{}, err
		}
		if r.Y > best.Y {
			best, bestIdx = r, i
		}
	}

	lo := grid[max(bestIdx-1, 0)]
	hi := grid[min(bestIdx+1, len(grid)-1)]
	if hi-lo <= opts.Tolerance {
		return best, nil
	}

	// Golden-section refinement on [lo, hi].
	x1 := hi - goldenConjugate*(hi-lo)
	x2 := lo + goldenConjugate*(hi-lo)
	r1, err := eval(x1)
	if err != nil {
		return Result{}, err
	}
	r2, err := eval(x2)
	if err != nil {
		return Result{}, err
	}
	for hi-lo > opts.Tolerance {
		if r1.Y >= r2.Y {
			hi = x2
			x2, r2 = x1, r1
			x1 = hi - goldenConjugate*(hi-lo)
			if r1, err = eval(x1); err != nil {
				return Result{}, err
			}
		} else {
			lo = x1
			x1, r1 = x2, r2
			x2 = lo + goldenConjugate*(hi-lo)
			if r2, err = eval(x2); err != nil {
				return Result{}, err
			}
		}
	}
	for _, r := range []Result{r1, r2} {
		if r.Y > best.Y {
			best = r
		}
	}
	return best, nil
}
