package core

import (
	"context"
	"fmt"
	"math"

	"guardedop/internal/obs"
	"guardedop/internal/robust"
)

// goldenRatio conjugate: the interior-point fraction of golden-section
// search.
const goldenConjugate = 0.6180339887498949

// OptimizeOptions tunes the continuous optimal-duration search.
type OptimizeOptions struct {
	// GridPoints is the coarse bracketing grid size (default 20 intervals).
	GridPoints int
	// Tolerance is the φ resolution at which refinement stops, in hours
	// (default θ/10000).
	Tolerance float64
	// Policy selects the γ treatment (default the paper's).
	Policy GammaPolicy
	// Workers bounds how many coarse-grid points are evaluated
	// concurrently: 0 (the default) uses every core, 1 evaluates
	// sequentially. The Analyzer is immutable after construction, so
	// concurrent evaluation is safe and the bracket (hence the refined
	// optimum) is identical for every worker count. The golden-section
	// refinement is inherently sequential and unaffected.
	Workers int
}

// OptimizePhi finds the guarded-operation duration maximising Y over
// [0, θ] to within the requested tolerance: a coarse grid brackets the
// maximum, then golden-section search refines it. Y(φ) is unimodal for
// every parameter set the study exercises (the tradeoff between the two
// degradation sources has a single crossover); should a parameter set ever
// produce multiple local maxima, the coarse grid keeps the search on the
// global one at grid resolution.
func (a *Analyzer) OptimizePhi(opts OptimizeOptions) (Result, error) {
	return a.OptimizePhiContext(context.Background(), opts)
}

// OptimizePhiContext is OptimizePhi with cancellation support and a
// fault-tolerant coarse grid: grid points whose evaluation fails are
// skipped (the bracket forms over the survivors) and the search errors
// only when every grid point fails or the context is canceled.
func (a *Analyzer) OptimizePhiContext(ctx context.Context, opts OptimizeOptions) (Result, error) {
	if opts.GridPoints == 0 {
		opts.GridPoints = 20
	}
	if opts.GridPoints < 2 {
		return Result{}, fmt.Errorf("core: OptimizePhi needs at least 2 grid intervals, got %d", opts.GridPoints)
	}
	theta := a.params.Theta
	if opts.Tolerance == 0 {
		opts.Tolerance = theta / 10000
	}
	if opts.Tolerance <= 0 || math.IsNaN(opts.Tolerance) {
		return Result{}, fmt.Errorf("core: invalid tolerance %g", opts.Tolerance)
	}
	ctx, osp := obs.StartSpan(ctx, "core.optimize")
	defer osp.End()
	osp.SetInt("grid_points", int64(opts.GridPoints))
	refineEvals := 0
	defer func() { osp.SetInt("refine_evals", int64(refineEvals)) }()

	// Refinement points go through the memo-cached point-wise path, so the
	// overlapping φ the golden-section search revisits cost no new solves.
	eval := func(phi float64) (Result, error) {
		refineEvals++
		return a.evaluateCtx(ctx, phi, opts.Policy)
	}

	// Coarse bracket over the surviving grid points, solved by the
	// shared-propagation curve engine.
	grid := SweepGrid(theta, opts.GridPoints)
	pr, err := a.curveBatchPolicy(ctx, grid, opts.Policy, false, opts.Workers)
	if err != nil {
		return Result{}, err
	}
	if pr.Report.Succeeded() == 0 {
		return Result{}, fmt.Errorf("core: every grid point failed: %w", pr.Report.Err())
	}
	bestIdx := -1
	var best Result
	for i, ok := range pr.OK {
		if !ok {
			continue
		}
		if r := pr.Results[i]; bestIdx < 0 || r.Y > best.Y {
			best, bestIdx = r, i
		}
	}

	lo := grid[max(bestIdx-1, 0)]
	hi := grid[min(bestIdx+1, len(grid)-1)]
	if hi-lo <= opts.Tolerance {
		return best, nil
	}

	// Golden-section refinement on [lo, hi]. A refinement point that fails
	// to evaluate (possible when the bracket borders a degenerate region)
	// ends the refinement and falls back to the best point found so far —
	// the optimizer's contract is "best surviving duration", not "perfect
	// bracket".
	x1 := hi - goldenConjugate*(hi-lo)
	x2 := lo + goldenConjugate*(hi-lo)
	r1, err := eval(x1)
	if err != nil {
		return best, nil
	}
	r2, err := eval(x2)
	if err != nil {
		if r1.Y > best.Y {
			best = r1
		}
		return best, nil
	}
	for hi-lo > opts.Tolerance {
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("core: OptimizePhi: %w (%v)", robust.ErrCanceled, err)
		}
		if r1.Y >= r2.Y {
			hi = x2
			x2, r2 = x1, r1
			x1 = hi - goldenConjugate*(hi-lo)
			if r1, err = eval(x1); err != nil {
				break
			}
		} else {
			lo = x1
			x1, r1 = x2, r2
			x2 = lo + goldenConjugate*(hi-lo)
			if r2, err = eval(x2); err != nil {
				break
			}
		}
	}
	for _, r := range []Result{r1, r2} {
		if r.Y > best.Y {
			best = r
		}
	}
	return best, nil
}
