package core_test

import (
	"fmt"
	"log"

	"guardedop/internal/core"
	"guardedop/internal/mdcd"
)

// Example evaluates the performability index at the paper's Table 3
// parameters and its Figure 9 optimum.
func Example() {
	analyzer, err := core.NewAnalyzer(mdcd.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	r0, err := analyzer.Evaluate(0)
	if err != nil {
		log.Fatal(err)
	}
	r7000, err := analyzer.Evaluate(7000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Y(0)    = %.3f\n", r0.Y)
	fmt.Printf("Y(7000) = %.3f\n", r7000.Y)
	// Output:
	// Y(0)    = 1.000
	// Y(7000) = 1.537
}
