package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"guardedop/internal/ctmc"
	"guardedop/internal/mdcd"
	"guardedop/internal/modelcheck"
	"guardedop/internal/obs"
	"guardedop/internal/parametric"
	"guardedop/internal/robust"
	"guardedop/internal/statespace"
)

// Analyzer evaluates the performability index Y(φ) for one parameter set.
// It builds the three SAN reward models once and reuses them across φ
// values; the steady-state overhead measures ρ₁, ρ₂ are φ-independent and
// solved at construction time.
//
// Grid evaluation (Curve and friends) runs on the shared-propagation curve
// engine (engine.go); single-point evaluation memoizes its full-horizon
// solves in bounded per-analyzer caches so OptimizePhi's refinement stage
// and repeated Evaluate calls at overlapping φ hit cache.
type Analyzer struct {
	params mdcd.Params

	gd     *mdcd.RMGd
	ndNew  *mdcd.RMNd     // normal mode with the upgraded pair {P1new, P2}
	ndOld  *mdcd.RMNd     // normal mode with the recovered pair {P1old, P2}
	ndPair *mdcd.RMNdPair // both RMNd instantiations stacked into one chain

	// rhos holds the solved per-process forward-progress fractions, one
	// per active process. The paper's two-process study yields
	// [ρ₁, ρ₂]; templated scenarios carry one entry per node. Its length
	// is the A of the Eq. 5–21 assembly (the paper's literal 2).
	rhos []float64

	// Bounded memo caches keyed by the solve horizon (see ctmc.SolveCache).
	gdSolves    *ctmc.SolveCache // RMGd π(φ) and L(φ), one combined pass
	ndNewSolves *ctmc.SolveCache // RMNd(µ_new) π(θ−φ)
	ndOldSolves *ctmc.SolveCache // RMNd(µ_old) π(θ−φ)

	// par is the closed-form parametric system, nil when the mode is off
	// or an Auto-mode build declined (out-of-domain parameters, failed
	// probe validation). Queries that reach a non-nil par and still fail
	// fall back to the numeric engine per point. parMode records what the
	// caller asked for, so fallbacks are counted whenever a parametric
	// mode was requested but the numeric engine served the query.
	par     *parametric.System
	parMode ParametricMode

	pNoFailNewTheta float64 // P(X″_θ ∈ A″₁), cached: it is φ-independent
}

// solveCacheCapacity bounds each per-analyzer memo cache. An optimization
// run touches a coarse grid plus a few dozen golden-section refinement
// points, so this retains every horizon such a workload revisits while
// keeping the worst case at a few hundred state-space-sized vectors.
const solveCacheCapacity = 256

// ParametricMode selects how the analyzer uses the closed-form parametric
// layer (internal/parametric) for point evaluation.
type ParametricMode int

const (
	// ParametricOff disables the closed-form layer entirely: every point
	// is solved numerically. The zero value, so existing callers keep
	// bit-identical numeric behavior.
	ParametricOff ParametricMode = iota
	// ParametricAuto builds the closed-form system when the parameters
	// lie inside its validated domain and it passes probe
	// cross-validation, silently falling back to the numeric engine
	// otherwise (and per point on any closed-form evaluation error).
	ParametricAuto
	// ParametricOn requires the closed-form system: analyzer
	// construction fails if it cannot be built and validated. Per-point
	// numeric fallback still applies to queries the layer declines.
	ParametricOn
)

// Options relaxes model assumptions for ablation studies; the zero value
// reproduces the paper.
type Options struct {
	// RecoverySuccess is the probability that recovery succeeds after a
	// detection (paper: 1). Zero means 1.
	RecoverySuccess float64

	// Parametric selects the closed-form fast path. The zero value is
	// ParametricOff.
	Parametric ParametricMode
}

// NewAnalyzer builds the composite base model for the given parameters
// under the paper's assumptions.
func NewAnalyzer(p mdcd.Params) (*Analyzer, error) {
	return NewAnalyzerWithOptions(p, Options{})
}

// NewAnalyzerWithOptions builds the composite base model with relaxed
// assumptions.
func NewAnalyzerWithOptions(p mdcd.Params, o Options) (*Analyzer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	gd, err := mdcd.BuildRMGdWithOptions(p, mdcd.GdOptions{RecoverySuccess: o.RecoverySuccess})
	if err != nil {
		return nil, fmt.Errorf("core: building RMGd: %w", err)
	}
	if err := verifySpace("RMGd", gd.Space); err != nil {
		return nil, err
	}
	gp, err := mdcd.BuildRMGp(p)
	if err != nil {
		return nil, fmt.Errorf("core: building RMGp: %w", err)
	}
	if err := verifySpace("RMGp", gp.Space); err != nil {
		return nil, err
	}
	gpm, err := gp.Measures()
	if err != nil {
		return nil, fmt.Errorf("core: solving RMGp steady state: %w", err)
	}
	ndNew, err := mdcd.BuildRMNd(p, p.MuNew)
	if err != nil {
		return nil, fmt.Errorf("core: building RMNd(mu_new): %w", err)
	}
	if err := verifySpace("RMNd(mu_new)", ndNew.Space); err != nil {
		return nil, err
	}
	ndOld, err := mdcd.BuildRMNd(p, p.MuOld)
	if err != nil {
		return nil, fmt.Errorf("core: building RMNd(mu_old): %w", err)
	}
	if err := verifySpace("RMNd(mu_old)", ndOld.Space); err != nil {
		return nil, err
	}
	return finishAnalyzer(p, gd, ndNew, ndOld, []float64{gpm.Rho1, gpm.Rho2}, o.Parametric, o.Parametric == ParametricOn)
}

// ScenarioModels carries the constituent models of a templated scenario
// into the analyzer: the internal/template layer builds them from a
// declarative spec and hands them over here, so the curve engine, the
// optimizer, and the serving layer run unchanged on any generated
// instance.
type ScenarioModels struct {
	// Params is the scenario's translation-layer parameter set (θ drives
	// the grids and horizons; the rate fields describe the defaults the
	// heterogeneous nodes deviate from).
	Params mdcd.Params
	// Gd is the scenario's guarded-operation dependability model.
	Gd *mdcd.RMGd
	// NdNew / NdOld are the normal-mode models of the upgraded and
	// recovered configurations.
	NdNew, NdOld *mdcd.RMNd
	// Rhos holds one solved forward-progress fraction per node.
	Rhos []float64
}

// parametricScenarioMaxStates gates the closed-form layer for scenario
// analyzers: the spectral decomposition is validated for the handwritten
// model family's small spaces, so only comparably small generated Gd
// spaces attempt it. Larger scenarios always use the numeric engine.
const parametricScenarioMaxStates = 32

// NewScenarioAnalyzer wraps template-generated constituent models into an
// Analyzer. The models must already be generated and verified (the
// template layer modelchecks every instance); this re-verifies them
// before wiring the solver machinery, mirroring NewAnalyzerWithOptions.
//
// The closed-form parametric layer is attempted with auto semantics
// regardless of whether the caller asked for ParametricOn: generated
// spaces can be far larger than the handwritten family the layer was
// validated on, so an unavailable closed form degrades to the numeric
// engine instead of failing construction.
func NewScenarioAnalyzer(sm ScenarioModels, o Options) (*Analyzer, error) {
	if err := sm.Params.Validate(); err != nil {
		return nil, err
	}
	if sm.Gd == nil || sm.NdNew == nil || sm.NdOld == nil {
		return nil, fmt.Errorf("core: scenario models incomplete: %w", robust.ErrInvariant)
	}
	if len(sm.Rhos) < 2 {
		return nil, fmt.Errorf("core: scenario needs at least two per-node rho values, got %d: %w",
			len(sm.Rhos), robust.ErrInvariant)
	}
	for i, rho := range sm.Rhos {
		if err := robust.CheckProbability(fmt.Sprintf("rho[%d]", i), rho, probabilityTol); err != nil {
			return nil, err
		}
	}
	for _, c := range []struct {
		name string
		sp   *statespace.Space
	}{
		{"scenario RMGd", sm.Gd.Space},
		{"scenario RMNd(new)", sm.NdNew.Space},
		{"scenario RMNd(old)", sm.NdOld.Space},
	} {
		if err := verifySpace(c.name, c.sp); err != nil {
			return nil, err
		}
	}
	mode := o.Parametric
	if mode != ParametricOff && sm.Gd.Space.NumStates() > parametricScenarioMaxStates {
		mode = ParametricOff
	}
	return finishAnalyzer(sm.Params, sm.Gd, sm.NdNew, sm.NdOld, append([]float64(nil), sm.Rhos...), mode, false)
}

// finishAnalyzer wires the solver machinery shared by the handwritten and
// templated construction paths: the stacked RMNd pair, the per-model
// solve caches, the φ-independent P(X″_θ ∈ A″₁), and the optional
// closed-form parametric layer.
func finishAnalyzer(p mdcd.Params, gd *mdcd.RMGd, ndNew, ndOld *mdcd.RMNd, rhos []float64, mode ParametricMode, requirePar bool) (*Analyzer, error) {
	ndPair, err := mdcd.NewRMNdPair(ndNew, ndOld)
	if err != nil {
		return nil, fmt.Errorf("core: stacking RMNd pair: %w", err)
	}
	gdSolves, err := ctmc.NewSolveCache(gd.Space.Chain, gd.Space.Initial, solveCacheCapacity, true)
	if err != nil {
		return nil, fmt.Errorf("core: RMGd solve cache: %w", err)
	}
	ndNewSolves, err := ctmc.NewSolveCache(ndNew.Space.Chain, ndNew.Space.Initial, solveCacheCapacity, false)
	if err != nil {
		return nil, fmt.Errorf("core: RMNd(mu_new) solve cache: %w", err)
	}
	ndOldSolves, err := ctmc.NewSolveCache(ndOld.Space.Chain, ndOld.Space.Initial, solveCacheCapacity, false)
	if err != nil {
		return nil, fmt.Errorf("core: RMNd(mu_old) solve cache: %w", err)
	}
	pTheta, err := ndNew.NoFailureProbability(p.Theta)
	if err != nil {
		return nil, fmt.Errorf("core: solving P(X''_theta in A''_1): %w", err)
	}
	var par *parametric.System
	switch mode {
	case ParametricOff:
	case ParametricAuto, ParametricOn:
		par, err = parametric.NewSystem(p, gd, ndNew, ndOld)
		if err != nil {
			if requirePar {
				return nil, fmt.Errorf("core: parametric system required but unavailable: %w", err)
			}
			// Auto: the numeric engine covers the whole parameter space;
			// the build error only means this parameter set gets no fast
			// path.
			par = nil
		}
	default:
		return nil, fmt.Errorf("core: unknown parametric mode %d", mode)
	}
	return &Analyzer{
		params:          p,
		gd:              gd,
		rhos:            rhos,
		ndNew:           ndNew,
		ndOld:           ndOld,
		ndPair:          ndPair,
		gdSolves:        gdSolves,
		ndNewSolves:     ndNewSolves,
		ndOldSolves:     ndOldSolves,
		par:             par,
		parMode:         mode,
		pNoFailNewTheta: pTheta,
	}, nil
}

// Parametric reports whether the closed-form parametric layer is active
// for this analyzer (built, probe-validated, and serving point queries).
func (a *Analyzer) Parametric() bool { return a.par != nil }

// verifySpace statically checks a freshly generated state space before any
// solver touches it (docs/STATIC_ANALYSIS.md): generator validity,
// reachability, and absorbing/ergodic structure. The check is linear in
// the space and negligible next to a single transient solve; a violation
// wraps robust.ErrInvariant so the robust batch layer classifies it as
// non-transient.
func verifySpace(name string, sp *statespace.Space) error {
	rep := modelcheck.CheckSpace(name, sp, modelcheck.Options{})
	if rep.OK() {
		return nil
	}
	return fmt.Errorf("core: model verification: %w: %w", robust.ErrInvariant, rep.Err())
}

// Params returns the analyzer's parameter set.
func (a *Analyzer) Params() mdcd.Params { return a.params }

// CacheStats returns a snapshot of the per-analyzer solve-cache statistics,
// keyed by the model the cache serves. Run manifests embed it so a trace
// records how much of the point-wise workload was served from memo.
func (a *Analyzer) CacheStats() map[string]obs.CacheStats {
	return map[string]obs.CacheStats{
		"RMGd":         a.gdSolves.Snapshot(),
		"RMNd(mu_new)": a.ndNewSolves.Snapshot(),
		"RMNd(mu_old)": a.ndOldSolves.Snapshot(),
	}
}

// Rho returns the solved forward-progress fractions of the first two
// processes (ρ₁, ρ₂) — the complete set for the paper's two-process
// study. Scenario analyzers with more nodes expose the full vector
// through Rhos.
func (a *Analyzer) Rho() (rho1, rho2 float64) { return a.rhos[0], a.rhos[1] }

// Rhos returns a copy of the per-process forward-progress fractions, one
// entry per active process.
func (a *Analyzer) Rhos() []float64 { return append([]float64(nil), a.rhos...) }

// Result carries the performability index for one G-OP duration together
// with every intermediate quantity of the translation, so callers can
// inspect the constituent measures the way the paper does in Section 6.
type Result struct {
	Phi float64
	// Y is the performability index (Eq. 1). Y > 1 means guarded operation
	// of this duration reduces the expected total performance degradation.
	Y float64

	EWI   float64 // E[W_I] = 2θ
	EW0   float64 // E[W_0] (Eq. 5)
	EWPhi float64 // E[W_φ] (Eq. 6)
	YS1   float64 // Y^{S1}_φ (Eq. 8)
	YS2   float64 // Y^{S2}_φ (Eqs. 15/16/21)
	Gamma float64 // discount factor γ = 1 − τ̄/θ

	// Constituent measures.
	Rho1, Rho2      float64
	Gd              mdcd.GdMeasures // RMGd measures at φ (Table 1)
	PNoFailNewTheta float64         // P(X″_θ ∈ A″₁)
	PNoFailNewRem   float64         // P(X″_{θ−φ} ∈ A″₁)
	IntF            float64         // ∫_φ^θ f(x)dx
	PS1             float64         // P(S1) (Eq. 14)
}

// Evaluate computes Y(φ) and all intermediate quantities under the paper's
// γ treatment. φ must lie in [0, θ].
func (a *Analyzer) Evaluate(phi float64) (Result, error) {
	return a.EvaluateWithPolicy(phi, GammaPaperTauBar)
}

// EvaluateWithPolicy computes Y(φ) under an explicit γ policy (used by the
// ablation experiments; Evaluate uses the paper's policy). The full-horizon
// solves go through the analyzer's bounded memo caches, so re-evaluating a
// previously visited φ costs only dot products.
func (a *Analyzer) EvaluateWithPolicy(phi float64, policy GammaPolicy) (Result, error) {
	return a.evaluateCtx(context.Background(), phi, policy)
}

// EvaluateContext is Evaluate under a caller-carried context: spans,
// counters and cache statistics report to the context's tracer/scope, so
// per-request and per-benchmark observers see the evaluation's work
// attributed to them rather than to the process at large.
func (a *Analyzer) EvaluateContext(ctx context.Context, phi float64) (Result, error) {
	return a.evaluateCtx(ctx, phi, GammaPaperTauBar)
}

// evaluateCtx is the cached point-wise evaluation path under a
// caller-carried context: one "core.evaluate" span covers the call, and
// the memo-cache hits/misses and any fill's solver passes report to the
// context's scope/tracer.
func (a *Analyzer) evaluateCtx(ctx context.Context, phi float64, policy GammaPolicy) (Result, error) {
	ctx, sp := obs.StartSpan(ctx, "core.evaluate")
	defer sp.End()
	sp.SetFloat("phi", phi)
	p := a.params
	if math.IsNaN(phi) || phi < 0 || phi > p.Theta {
		return Result{}, fmt.Errorf("core: phi = %g out of [0, theta=%g]", phi, p.Theta)
	}
	if a.parMode != ParametricOff {
		if a.par != nil {
			gdm, pNew, pOld, perr := a.parametricPoint(phi)
			if perr == nil {
				if res, aerr := a.assemble(phi, policy, gdm, pNew, pOld); aerr == nil {
					obs.Count(ctx, obs.CtrParametricHits, 1)
					sp.Event("parametric_hit")
					return res, nil
				}
			}
		}
		// A parametric mode was requested but the numeric engine serves
		// this point: the system was never built (out-of-domain
		// parameters under auto), the query was declined, or — in case
		// the closed form itself produced the degenerate value — the
		// assembly failed and is re-checked numerically.
		obs.Count(ctx, obs.CtrParametricFallbacks, 1)
		obs.AddEvent(ctx, "parametric_fallback")
	}
	pi, acc, err := a.gdSolves.TransientAccumulatedContext(ctx, phi)
	if err != nil {
		return Result{}, fmt.Errorf("core: RMGd measures at phi=%g: %w", phi, err)
	}
	gdm, err := a.gd.MeasuresFromSolution(phi, pi, acc)
	if err != nil {
		return Result{}, fmt.Errorf("core: RMGd measures at phi=%g: %w", phi, err)
	}
	rem := p.Theta - phi
	piNew, err := a.ndNewSolves.TransientContext(ctx, rem)
	if err != nil {
		return Result{}, fmt.Errorf("core: P(X''_(theta-phi)): %w", err)
	}
	pNoFailNewRem, err := a.ndNew.NoFailureFromSolution(piNew)
	if err != nil {
		return Result{}, fmt.Errorf("core: P(X''_(theta-phi)): %w", err)
	}
	piOld, err := a.ndOldSolves.TransientContext(ctx, rem)
	if err != nil {
		return Result{}, fmt.Errorf("core: recovered-pair survival: %w", err)
	}
	pNoFailOldRem, err := a.ndOld.NoFailureFromSolution(piOld)
	if err != nil {
		return Result{}, fmt.Errorf("core: recovered-pair survival: %w", err)
	}
	return a.assemble(phi, policy, gdm, pNoFailNewRem, pNoFailOldRem)
}

// parametricPoint evaluates one φ's constituent measures through the
// closed-form layer. Any error means the layer declined this query and
// the caller must take the numeric path; it never panics and never
// returns non-finite values (the evaluators guard their exports).
func (a *Analyzer) parametricPoint(phi float64) (gdm mdcd.GdMeasures, pNewRem, pOldRem float64, err error) {
	if gdm, err = a.par.GdMeasures(phi); err != nil {
		return
	}
	rem := a.params.Theta - phi
	if pNewRem, err = a.par.NoFailureNew(rem); err != nil {
		return
	}
	pOldRem, err = a.par.NoFailureOld(rem)
	return
}

// evaluatePointwise is the uncached per-point reference path: one full
// transient or accumulated solve per constituent measure, exactly as the
// analyzer evaluated a point before the curve engine existed. It anchors
// the BenchmarkCurve* comparison and the engine equivalence tests.
func (a *Analyzer) evaluatePointwise(phi float64, policy GammaPolicy) (Result, error) {
	p := a.params
	if math.IsNaN(phi) || phi < 0 || phi > p.Theta {
		return Result{}, fmt.Errorf("core: phi = %g out of [0, theta=%g]", phi, p.Theta)
	}
	gdm, err := a.gd.Measures(phi)
	if err != nil {
		return Result{}, fmt.Errorf("core: RMGd measures at phi=%g: %w", phi, err)
	}
	pNoFailNewRem, err := a.ndNew.NoFailureProbability(p.Theta - phi)
	if err != nil {
		return Result{}, fmt.Errorf("core: P(X''_(theta-phi)): %w", err)
	}
	pNoFailOldRem, err := a.ndOld.NoFailureProbability(p.Theta - phi)
	if err != nil {
		return Result{}, fmt.Errorf("core: recovered-pair survival: %w", err)
	}
	return a.assemble(phi, policy, gdm, pNoFailNewRem, pNoFailOldRem)
}

// assemble folds solved constituent measures into the performability index:
// the Eq. 5–21 translation layer, shared by the cached point-wise path and
// the curve engine.
func (a *Analyzer) assemble(phi float64, policy GammaPolicy, gdm mdcd.GdMeasures, pNoFailNewRem, pNoFailOldRem float64) (Result, error) {
	p := a.params
	// A, the number of active processes, generalises the literal 2 of the
	// paper's two-process Eqs. 5–21. With the handwritten models A == 2.0
	// exactly, so every product below is bit-identical to the historical
	// hardwired form.
	active := float64(len(a.rhos))
	res := Result{
		Phi:             phi,
		EWI:             active * p.Theta,
		Rho1:            a.rhos[0],
		Rho2:            a.rhos[1],
		PNoFailNewTheta: a.pNoFailNewTheta,
	}
	res.EW0 = active * p.Theta * a.pNoFailNewTheta
	res.Gd = gdm
	res.PNoFailNewRem = pNoFailNewRem
	res.IntF = 1 - pNoFailOldRem

	// Eq. 14: P(S1).
	if phi > 0 {
		res.PS1 = gdm.PA1 * res.PNoFailNewRem
	} else {
		res.PS1 = a.pNoFailNewTheta
	}

	// Left-to-right accumulation keeps the two-process sum exactly
	// rhos[0] + rhos[1], the historical Rho1 + Rho2 evaluation order.
	rhoSum := 0.0
	for _, rho := range a.rhos {
		rhoSum += rho
	}

	// Eq. 8: Y^{S1}.
	res.YS1 = (rhoSum*phi + active*(p.Theta-phi)) * res.PS1

	gamma, err := gammaFor(policy, gdm, p.Theta)
	if err != nil {
		return Result{}, err
	}
	res.Gamma = gamma

	// Eqs. 15/16/21: Y^{S2} = γ(minuend − subtrahend).
	minuend := active*p.Theta*gdm.IntH - (active-rhoSum)*gdm.IntTauH
	subtrahend := active*p.Theta*gdm.IntHF + active*p.Theta*gdm.IntH*res.IntF
	res.YS2 = res.Gamma * (minuend - subtrahend)
	if res.YS2 < 0 {
		// The translation can only produce a negative Y^{S2} through the
		// neglected higher-order term of Eq. 19; worth cannot be negative.
		res.YS2 = 0
	}

	res.EWPhi = res.YS1 + res.YS2
	denom := res.EWI - res.EWPhi
	if denom <= 0 {
		return Result{}, robust.Diagnose("core.Analyzer", p, phi, fmt.Errorf(
			"E[W_I] - E[W_phi] = %g <= 0 (mission worth exceeded the ideal bound): %w",
			denom, robust.ErrInvariant))
	}
	res.Y = (res.EWI - res.EW0) / denom
	if err := res.checkInvariants(); err != nil {
		return Result{}, robust.Diagnose("core.Analyzer", p, phi, err)
	}
	return res, nil
}

// probabilityTol absorbs solver round-off when asserting that a computed
// probability lies in [0,1].
const probabilityTol = 1e-9

// checkInvariants asserts the model-level invariants of one evaluation:
// every constituent probability lies in [0,1], the discount γ lies in
// [0,1], the expected worths are finite, and E[W_φ] never exceeds the
// ideal-mission bound E[W_I]. Violations mean the parameter set drove the
// translation into a degenerate region; they wrap robust.ErrInvariant (or
// robust.ErrNonFinite) so sweeps can skip-and-report them.
func (r *Result) checkInvariants() error {
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"P(X'_phi in A'_1)", r.Gd.PA1},
		{"P(X''_theta in A''_1)", r.PNoFailNewTheta},
		{"P(X''_(theta-phi) in A''_1)", r.PNoFailNewRem},
		{"P(S1)", r.PS1},
		{"int_phi^theta f", r.IntF},
		{"gamma", r.Gamma},
		{"rho1", r.Rho1},
		{"rho2", r.Rho2},
	} {
		if err := robust.CheckProbability(c.name, c.v, probabilityTol); err != nil {
			return err
		}
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"Y", r.Y},
		{"E[W_0]", r.EW0},
		{"Y^S1", r.YS1},
		{"Y^S2", r.YS2},
	} {
		if err := robust.CheckFinite(c.name, c.v); err != nil {
			return err
		}
	}
	return robust.CheckBound("E[W_phi]", r.EWPhi, r.EWI, probabilityTol*r.EWI)
}

// Curve evaluates Y at each φ in phis, failing on the first degenerate
// point (the strict historical contract). Sweeps that should survive
// degenerate regions use CurvePartial instead.
func (a *Analyzer) Curve(phis []float64) ([]Result, error) {
	pr, err := a.curveBatch(context.Background(), phis, true, 1)
	if err != nil {
		// Surface the per-point cause, not the batch wrapper.
		if len(pr.Report.Failures) > 0 {
			return nil, pr.Report.Failures[0].Err
		}
		return nil, err
	}
	return pr.Results, nil
}

// CurvePartial evaluates Y at each φ through the fault-tolerant batch
// runner: a φ whose evaluation fails (degenerate measures, invariant
// violation, non-finite solve) is skipped and recorded in the report
// instead of aborting the sweep. The error is non-nil only when the
// context is canceled or every point fails. A canceled sweep still
// returns every point solved before the deadline in the PartialResult —
// the completed prefix — alongside the ErrCanceled-wrapping error.
// Points are evaluated on a worker pool using every core; use
// CurvePartialWorkers to bound it.
func (a *Analyzer) CurvePartial(ctx context.Context, phis []float64) (*robust.PartialResult[Result], error) {
	return a.CurvePartialWorkers(ctx, phis, 0)
}

// CurvePartialWorkers is CurvePartial with an explicit worker-pool bound
// (0 = every core, 1 = sequential). The Analyzer is immutable after
// construction, so concurrent evaluation is safe and the sweep's results
// and report are identical for every worker count.
func (a *Analyzer) CurvePartialWorkers(ctx context.Context, phis []float64, workers int) (*robust.PartialResult[Result], error) {
	pr, err := a.curveBatch(ctx, phis, false, workers)
	if err != nil {
		return pr, err
	}
	if len(phis) > 0 && pr.Report.Succeeded() == 0 {
		return pr, fmt.Errorf("core: every phi in the sweep failed: %w", pr.Report.Err())
	}
	return pr, nil
}

func (a *Analyzer) curveBatch(ctx context.Context, phis []float64, strict bool, workers int) (*robust.PartialResult[Result], error) {
	return a.curveBatchPolicy(ctx, phis, GammaPaperTauBar, strict, workers)
}

// curveBatchPolicy runs the shared-propagation curve engine over a φ-grid:
// one batched solve pass over contiguous segments of the sorted grid
// (engine.go), then a per-point assembly batch. A point whose segment solve
// failed falls back to the point-wise path so only genuinely degenerate
// durations fail. The report's metrics record the CTMC solver passes the
// sweep spent (Metrics.Solves).
//
// A sweep whose context dies mid-way keeps its completed prefix: segments
// solved before the deadline are still assembled (assembly is pure
// arithmetic, so it runs detached from the cancellation), unreached
// segments' points fail with ErrCanceled, and the batch error wraps
// ErrCanceled so callers — gsueval's -timeout, gsuserve's per-request
// deadlines — can serve the surviving points as a partial result.
func (a *Analyzer) curveBatchPolicy(ctx context.Context, phis []float64, policy GammaPolicy, strict bool, workers int) (*robust.PartialResult[Result], error) {
	// The solver-pass count is read off a context-carried scope, not a
	// global-counter delta, so concurrent analyzers in the same process
	// cannot pollute each other's Metrics.Solves.
	ctx, scope := obs.WithScope(ctx)
	ctx, sp := obs.StartSpan(ctx, "core.curve")
	defer sp.End()
	sp.SetInt("points", int64(len(phis)))
	var pts []solvedPoint
	if a.par != nil {
		// The closed-form layer replaces the engine's batched solve stage
		// outright: zero solver passes, per-point polynomial evaluation.
		// A declined point carries its error into assembly, which retries
		// it through the numeric point-wise fallback — the same recovery
		// route as a failed numeric segment.
		sp.Event("parametric_stage")
		pts = a.parametricCurvePoints(ctx, phis)
	} else {
		if a.parMode != ParametricOff {
			// A parametric mode was requested but the system was never
			// built (out-of-domain parameters under auto): the whole
			// sweep is served numerically, one fallback per point.
			obs.Count(ctx, obs.CtrParametricFallbacks, int64(len(phis)))
			obs.AddEvent(ctx, "parametric_fallback")
		}
		pts = a.solveCurvePoints(ctx, phis, workers)
	}
	// Assembly folds already-solved measures into Results: microseconds of
	// arithmetic per point, no solver passes. Running it on a context
	// detached from the sweep's cancellation is what preserves the
	// completed prefix; the detached context still carries the tracer and
	// scope, so observability is unaffected.
	actx := context.WithoutCancel(ctx)
	// The strict curve keeps its historical fail-fast contract, which
	// RunBatch guarantees by running StopOnError batches sequentially.
	pr, err := robust.RunBatch(actx, pts, func(ictx context.Context, pt solvedPoint) (Result, error) {
		if pt.err != nil {
			if cerr := ctx.Err(); cerr != nil {
				// The sweep's deadline has passed: re-solving the point
				// through the fallback would ignore the cancellation.
				if errors.Is(pt.err, robust.ErrCanceled) {
					return Result{}, pt.err
				}
				return Result{}, fmt.Errorf("%w: %v (segment: %w)", robust.ErrCanceled, cerr, pt.err)
			}
			obs.AddEvent(ictx, "fallback_pointwise")
			obs.Count(ictx, obs.CtrFallbackPoints, 1)
			return a.evaluateCtx(ictx, pt.phi, policy)
		}
		return a.assemble(pt.phi, policy, pt.gdm, pt.pNewRem, pt.pOldRem)
	}, robust.BatchOptions{StopOnError: strict, Workers: workers})
	pr.Report.Metrics.AddSolves(scope.Counter(obs.CtrSolvePasses))
	if err == nil && pr.Report.Failed() > 0 {
		if cerr := ctx.Err(); cerr != nil {
			err = fmt.Errorf("core: curve sweep canceled after %d/%d points: %w (%v)",
				pr.Report.Succeeded(), len(phis), robust.ErrCanceled, cerr)
		}
	}
	return pr, err
}

// OptimalPhi evaluates the given candidate durations and returns the result
// maximising Y. It errors on an empty candidate list.
func (a *Analyzer) OptimalPhi(phis []float64) (Result, error) {
	if len(phis) == 0 {
		return Result{}, fmt.Errorf("core: OptimalPhi needs at least one candidate")
	}
	results, err := a.Curve(phis)
	if err != nil {
		return Result{}, err
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.Y > best.Y {
			best = r
		}
	}
	return best, nil
}

// SweepGrid returns n+1 equally spaced φ values covering [0, theta],
// matching the grids of the paper's Figures 9-12.
func SweepGrid(theta float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	out := make([]float64, 0, n+1)
	for i := 0; i <= n; i++ {
		out = append(out, theta*float64(i)/float64(n))
	}
	return out
}
