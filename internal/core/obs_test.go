package core

import (
	"context"
	"sync"
	"testing"
)

// Two analyzers sweeping the same grid concurrently must each report
// exactly their own solver passes in Metrics.Solves. The old accounting
// read a delta of the process-global ctmc counter, so a concurrent sweep
// leaked its passes into the other run's metrics; the context-scoped
// counters make the attribution exact.
func TestConcurrentAnalyzersAttributeOwnSolves(t *testing.T) {
	grid := SweepGrid(10000, 49) // the paper-scale 50-point acceptance grid

	ref := newAnalyzer(t, nil)
	pr, err := ref.CurvePartialWorkers(context.Background(), grid, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := pr.Report.Metrics.Solves
	if want <= 0 {
		t.Fatal("sequential baseline recorded no solver passes")
	}

	const runs = 2
	analyzers := make([]*Analyzer, runs)
	for i := range analyzers {
		analyzers[i] = newAnalyzer(t, nil)
	}
	solves := make([]int64, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := range analyzers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pr, err := analyzers[i].CurvePartialWorkers(context.Background(), grid, 2)
			if err != nil {
				errs[i] = err
				return
			}
			solves[i] = pr.Report.Metrics.Solves
		}()
	}
	wg.Wait()

	for i := range analyzers {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		if solves[i] != want {
			t.Errorf("concurrent run %d reported %d solver passes, want exactly %d (pollution from the other run?)",
				i, solves[i], want)
		}
	}
}

// The golden-section refinement runs through the memo-cached point-wise
// path, so re-optimizing the same analyzer revisits every refinement φ
// from cache: the second search adds hits and zero new misses.
func TestOptimizeRefinementHitsSolveCache(t *testing.T) {
	a := newAnalyzer(t, nil)
	first, err := a.OptimizePhi(OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := a.CacheStats()["RMGd"]
	if before.Misses == 0 {
		t.Fatal("first optimization filled no cache entries — refinement bypassed the memo path?")
	}

	second, err := a.OptimizePhi(OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	after := a.CacheStats()["RMGd"]
	if after.Misses != before.Misses {
		t.Errorf("second optimization missed cache %d times, want 0: refinement phis were not served from memo",
			after.Misses-before.Misses)
	}
	if after.Hits <= before.Hits {
		t.Errorf("second optimization recorded no cache hits (before %d, after %d)", before.Hits, after.Hits)
	}
	if second.Phi != first.Phi || second.Y != first.Y {
		t.Errorf("cached re-optimization diverged: (%g, %g) vs (%g, %g)", second.Phi, second.Y, first.Phi, first.Y)
	}
}
