package core

import (
	"math"
	"testing"

	"guardedop/internal/mdcd"
)

func newAnalyzer(t *testing.T, mutate func(*mdcd.Params)) *Analyzer {
	t.Helper()
	p := mdcd.DefaultParams()
	if mutate != nil {
		mutate(&p)
	}
	a, err := NewAnalyzer(p)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// Y(0) = 1 identically: with no guarded operation, the degradation ratio is
// one by construction.
func TestYAtPhiZeroIsOne(t *testing.T) {
	a := newAnalyzer(t, nil)
	r, err := a.Evaluate(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Y-1) > 1e-9 {
		t.Errorf("Y(0) = %.12f, want 1", r.Y)
	}
	if r.YS2 != 0 {
		t.Errorf("Y^S2(0) = %v, want 0 (S2 degenerate at phi=0)", r.YS2)
	}
	if math.Abs(r.EW0-r.EWPhi) > 1e-6 {
		t.Errorf("E[W_0] = %v but E[W_phi=0] = %v, want equal", r.EW0, r.EWPhi)
	}
}

// Figure 9, solid-dot curve: base parameters give an interior optimum at
// phi = 7000 over the paper's grid.
func TestFigure9BaseOptimumAt7000(t *testing.T) {
	a := newAnalyzer(t, nil)
	best, err := a.OptimalPhi(SweepGrid(10000, 10))
	if err != nil {
		t.Fatal(err)
	}
	if best.Phi != 7000 {
		t.Errorf("optimal phi = %v, want 7000 (paper Fig. 9)", best.Phi)
	}
	// The paper's maximum is ≈1.45; the reconstructed model peaks within
	// ~0.1 of it. Guard the band rather than the exact value.
	if best.Y < 1.35 || best.Y > 1.65 {
		t.Errorf("max Y = %.3f, want within [1.35, 1.65] (paper ≈ 1.45)", best.Y)
	}
}

// Figure 9, hollow-dot curve: halving mu_new moves the optimum down to 5000.
func TestFigure9HalvedFaultRateOptimumAt5000(t *testing.T) {
	a := newAnalyzer(t, func(p *mdcd.Params) { p.MuNew = 0.5e-4 })
	best, err := a.OptimalPhi(SweepGrid(10000, 10))
	if err != nil {
		t.Fatal(err)
	}
	if best.Phi != 5000 {
		t.Errorf("optimal phi = %v, want 5000 (paper Fig. 9)", best.Phi)
	}
}

// Figure 10: higher safeguard overhead (alpha=beta=2500) moves the optimum
// from 7000 down to 6000.
func TestFigure10OverheadOptimumAt6000(t *testing.T) {
	a := newAnalyzer(t, func(p *mdcd.Params) { p.Alpha, p.Beta = 2500, 2500 })
	best, err := a.OptimalPhi(SweepGrid(10000, 10))
	if err != nil {
		t.Fatal(err)
	}
	if best.Phi != 6000 {
		t.Errorf("optimal phi = %v, want 6000 (paper Fig. 10)", best.Phi)
	}
}

// Figure 11: the optimum is insensitive to coverage (stays at 6000 for
// c in {0.95, 0.75, 0.50} at alpha=beta=2500) while max Y drops sharply.
func TestFigure11CoverageSensitivity(t *testing.T) {
	var maxY []float64
	for _, c := range []float64{0.95, 0.75, 0.50} {
		a := newAnalyzer(t, func(p *mdcd.Params) {
			p.Coverage = c
			p.Alpha, p.Beta = 2500, 2500
		})
		best, err := a.OptimalPhi(SweepGrid(10000, 10))
		if err != nil {
			t.Fatal(err)
		}
		if best.Phi != 6000 {
			t.Errorf("c=%v: optimal phi = %v, want 6000 (paper Fig. 11)", c, best.Phi)
		}
		maxY = append(maxY, best.Y)
	}
	if !(maxY[0] > maxY[1] && maxY[1] > maxY[2]) {
		t.Errorf("max Y not decreasing in coverage: %v", maxY)
	}
	if maxY[2] > 1.25 {
		t.Errorf("max Y at c=0.50 = %.3f, want ≈ 1.15 (paper Fig. 11)", maxY[2])
	}
}

// Section 6 text: at c = 0.10 guarded operation is never worthwhile — Y < 1
// for every positive phi and Y decreases with phi.
func TestVeryLowCoverageMakesGOPWorthless(t *testing.T) {
	a := newAnalyzer(t, func(p *mdcd.Params) {
		p.Coverage = 0.10
		p.Alpha, p.Beta = 2500, 2500
	})
	results, err := a.Curve(SweepGrid(10000, 10))
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, r := range results {
		if r.Phi > 0 && r.Y >= 1 {
			t.Errorf("phi=%v: Y = %.4f, want < 1 at c=0.10", r.Phi, r.Y)
		}
		if r.Y > prev+1e-9 {
			t.Errorf("Y not decreasing at phi=%v", r.Phi)
		}
		prev = r.Y
	}
}

// Figure 12: shrinking theta to 5000 moves the optimum to 2500 (mu_new=1e-4)
// and the post-peak decline is steeper than at theta=10000.
func TestFigure12ShorterHorizon(t *testing.T) {
	a := newAnalyzer(t, func(p *mdcd.Params) { p.Theta = 5000 })
	results, err := a.Curve(SweepGrid(5000, 10))
	if err != nil {
		t.Fatal(err)
	}
	best := results[0]
	for _, r := range results {
		if r.Y > best.Y {
			best = r
		}
	}
	if best.Phi != 2500 {
		t.Errorf("optimal phi = %v, want 2500 (paper Fig. 12)", best.Phi)
	}
	// Relative drop from the peak to phi=theta must exceed the theta=10000
	// case (reliability over a shorter remaining horizon favours an earlier
	// cutoff; see the paper's discussion of Fig. 12).
	dropShort := (best.Y - results[len(results)-1].Y) / best.Y

	aLong := newAnalyzer(t, nil)
	resultsLong, err := aLong.Curve(SweepGrid(10000, 10))
	if err != nil {
		t.Fatal(err)
	}
	bestLong := resultsLong[0]
	for _, r := range resultsLong {
		if r.Y > bestLong.Y {
			bestLong = r
		}
	}
	dropLong := (bestLong.Y - resultsLong[len(resultsLong)-1].Y) / bestLong.Y
	if dropShort <= dropLong {
		t.Errorf("post-peak drop: theta=5000 gives %.4f, theta=10000 gives %.4f; want steeper for shorter theta",
			dropShort, dropLong)
	}
}

func TestEvaluateRejectsBadPhi(t *testing.T) {
	a := newAnalyzer(t, nil)
	for _, phi := range []float64{-1, 10001, math.NaN()} {
		if _, err := a.Evaluate(phi); err == nil {
			t.Errorf("Evaluate(%v) accepted out-of-range phi", phi)
		}
	}
}

func TestResultInternalConsistency(t *testing.T) {
	a := newAnalyzer(t, nil)
	for _, phi := range []float64{0, 2500, 7000, 10000} {
		r, err := a.Evaluate(phi)
		if err != nil {
			t.Fatal(err)
		}
		if r.EWI != 2*a.Params().Theta {
			t.Errorf("EWI = %v", r.EWI)
		}
		if math.Abs(r.EWPhi-(r.YS1+r.YS2)) > 1e-9 {
			t.Errorf("EWPhi != YS1+YS2 at phi=%v", phi)
		}
		if r.EWPhi < 0 || r.EWPhi > r.EWI {
			t.Errorf("EWPhi = %v out of [0, %v]", r.EWPhi, r.EWI)
		}
		if r.Gamma < 0 || r.Gamma > 1 {
			t.Errorf("gamma = %v out of [0,1]", r.Gamma)
		}
		if r.PS1 < 0 || r.PS1 > 1 {
			t.Errorf("P(S1) = %v out of [0,1]", r.PS1)
		}
		if r.IntF < 0 || r.IntF > 1 {
			t.Errorf("IntF = %v out of [0,1]", r.IntF)
		}
		if phi > 0 {
			want := r.Gd.PA1 * r.PNoFailNewRem
			if math.Abs(r.PS1-want) > 1e-12 {
				t.Errorf("PS1 decomposition violated at phi=%v", phi)
			}
		}
	}
}

// The benefit from guarded operation is monotone in coverage at a fixed phi:
// better detection can only help.
func TestYMonotoneInCoverage(t *testing.T) {
	prev := -1.0
	for _, c := range []float64{0.2, 0.5, 0.8, 0.95, 1.0} {
		a := newAnalyzer(t, func(p *mdcd.Params) { p.Coverage = c })
		r, err := a.Evaluate(6000)
		if err != nil {
			t.Fatal(err)
		}
		if r.Y < prev-1e-9 {
			t.Errorf("Y(6000) not monotone in c at c=%v", c)
		}
		prev = r.Y
	}
}

// Dimensionless similarity: the dependability side of Y depends on mu*theta
// and phi/theta, so halving mu_new matches halving theta point-for-point up
// to the (unchanged) overhead terms. This is the scaling the paper's
// Figures 9 and 12 exhibit. It also pins down determinism across builds.
func TestScalingSimilarity(t *testing.T) {
	aMu := newAnalyzer(t, func(p *mdcd.Params) { p.MuNew = 0.5e-4 })
	aTheta := newAnalyzer(t, func(p *mdcd.Params) { p.Theta = 5000 })
	for i := 0; i <= 10; i++ {
		frac := float64(i) / 10
		rMu, err := aMu.Evaluate(10000 * frac)
		if err != nil {
			t.Fatal(err)
		}
		rTheta, err := aTheta.Evaluate(5000 * frac)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rMu.Y-rTheta.Y) > 5e-3 {
			t.Errorf("scaling similarity broken at phi/theta=%.1f: %.4f vs %.4f",
				frac, rMu.Y, rTheta.Y)
		}
	}
}

func TestSweepGrid(t *testing.T) {
	g := SweepGrid(1000, 4)
	want := []float64{0, 250, 500, 750, 1000}
	if len(g) != len(want) {
		t.Fatalf("grid = %v", g)
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("grid = %v, want %v", g, want)
		}
	}
	if g := SweepGrid(10, 0); len(g) != 2 {
		t.Errorf("SweepGrid with n<1 = %v, want 2 points", g)
	}
}

func TestOptimalPhiEmpty(t *testing.T) {
	a := newAnalyzer(t, nil)
	if _, err := a.OptimalPhi(nil); err == nil {
		t.Error("OptimalPhi(nil) did not error")
	}
}

func TestRhoAccessor(t *testing.T) {
	a := newAnalyzer(t, nil)
	r1, r2 := a.Rho()
	if math.Abs(r1-0.98) > 0.005 || math.Abs(r2-0.95) > 0.01 {
		t.Errorf("Rho() = (%.4f, %.4f), want ≈ (0.98, 0.95)", r1, r2)
	}
}

func TestNewAnalyzerRejectsInvalidParams(t *testing.T) {
	p := mdcd.DefaultParams()
	p.Lambda = -5
	if _, err := NewAnalyzer(p); err == nil {
		t.Error("NewAnalyzer accepted invalid params")
	}
}
