// Package core implements the paper's primary contribution: the successive
// model translation that turns the performability index
//
//	Y(φ) = (E[W_I] − E[W_0]) / (E[W_I] − E[W_φ])        (Eq. 1)
//
// into an aggregate of constituent Markov-reward variables solved on the
// three SAN models of internal/mdcd.
//
// The translation follows Sections 3–4 of the paper:
//
//	E[W_I] = 2θ                                          (Eq. 2)
//	E[W_0] = 2θ·P(S1, φ=0) = 2θ·P(X″_θ ∈ A″₁)            (Eqs. 5, 14)
//	E[W_φ] = Y^{S1}_φ + Y^{S2}_φ                          (Eq. 6)
//	Y^{S1}_φ = ((ρ₁+ρ₂)φ + 2(θ−φ))·P(X′_φ∈A′₁)·P(X″_{θ−φ}∈A″₁)   (Eqs. 8, 14)
//	Y^{S2}_φ = γ·( [2θ∫h − (2−(ρ₁+ρ₂))∫τh]                (Eqs. 15, 16)
//	              − [2θ∫∫hf + 2θ·(∫h)(∫_φ^θ f)] )          (Eq. 21)
//
// with the constituent reward variables
//
//	∫h   = ∫₀^φ h(τ)dτ            — P(error detected by φ)        (RMGd)
//	∫τh  = ∫₀^φ τh(τ)dτ           — mean time to error detection  (RMGd)
//	∫∫hf = ∫₀^φ∫_τ^φ h(τ)f(x)dxdτ — detected, then failed by φ    (RMGd)
//	P(X′_φ∈A′₁)                   — no error during G-OP          (RMGd)
//	ρ₁, ρ₂                        — forward-progress fractions    (RMGp)
//	P(X″_t∈A″₁), ∫_φ^θ f          — normal-mode (non-)failure     (RMNd)
//
// and the discount factor γ = 1 − τ̄/θ, where τ̄ is the mean time to error
// detection — the value of the ∫τh reward variable (Section 6 of the
// paper defines γ in terms of that measure).
//
// Boundary behaviour: at φ = 0 the S2 path set is degenerate, every
// constituent of Y^{S2} vanishes, and Y(0) = 1 identically — guarded
// operation of zero length neither helps nor hurts.
package core
