package core

import (
	"testing"

	"guardedop/internal/mdcd"
)

func BenchmarkNewAnalyzer(b *testing.B) {
	p := mdcd.DefaultParams()
	for i := 0; i < b.N; i++ {
		if _, err := NewAnalyzer(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluate(b *testing.B) {
	a, err := NewAnalyzer(mdcd.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Evaluate(7000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullSweep(b *testing.B) {
	a, err := NewAnalyzer(mdcd.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	grid := SweepGrid(10000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Curve(grid); err != nil {
			b.Fatal(err)
		}
	}
}
