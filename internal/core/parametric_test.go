package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"guardedop/internal/ctmc"
	"guardedop/internal/mdcd"
	"guardedop/internal/obs"
	"guardedop/internal/parametric"
)

// outOfDomainParams returns a parameter set that passes mdcd validation
// but lies outside the parametric layer's validated domain, so an auto
// analyzer must serve it numerically.
func outOfDomainParams(t *testing.T) mdcd.Params {
	t.Helper()
	p := mdcd.DefaultParams()
	p.MuNew = 0.5
	if err := p.Validate(); err != nil {
		t.Fatalf("out-of-domain fixture must stay mdcd-valid: %v", err)
	}
	if err := parametric.CheckDomain(p); err == nil {
		t.Fatal("fixture is inside the parametric domain; pick a harder one")
	}
	return p
}

// TestParametricEvaluateMatchesNumeric pins the analyzer-level equivalence
// contract on the paper grid: the parametric fast path and the numeric
// engine agree on the performability index and every translation
// intermediate at 1e-9 relative.
func TestParametricEvaluateMatchesNumeric(t *testing.T) {
	p := mdcd.DefaultParams()
	numeric, err := NewAnalyzer(p)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewAnalyzerWithOptions(p, Options{Parametric: ParametricAuto})
	if err != nil {
		t.Fatal(err)
	}
	if !par.Parametric() {
		t.Fatal("auto mode did not activate the parametric layer at the paper params")
	}
	agree := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))+1e-12
	}
	grid := SweepGrid(p.Theta, 50)
	// The numeric reference is the curve engine's shared-propagation
	// path: at the paper's q·θ ≈ 2.4e7 it is the most accurate numeric
	// route (the per-point auto path rounds through ~25 expm squarings,
	// which alone cost more than the 1e-9 budget at the grid's far end).
	refs, err := numeric.Curve(grid)
	if err != nil {
		t.Fatal(err)
	}
	for i, phi := range grid {
		rp, err := par.Evaluate(phi)
		if err != nil {
			t.Fatalf("parametric Evaluate(%g): %v", phi, err)
		}
		rn := refs[i]
		for _, c := range []struct {
			name string
			a, b float64
		}{
			{"Y", rp.Y, rn.Y},
			{"Y^S1", rp.YS1, rn.YS1},
			{"Y^S2", rp.YS2, rn.YS2},
			{"E[W_phi]", rp.EWPhi, rn.EWPhi},
			{"Gamma", rp.Gamma, rn.Gamma},
			{"P(S1)", rp.PS1, rn.PS1},
		} {
			if !agree(c.a, c.b) {
				t.Errorf("phi=%g %s: parametric %.15g vs numeric %.15g", phi, c.name, c.a, c.b)
			}
		}
	}
}

// TestParametricZeroSolvePasses is the performance contract's observable:
// once an in-domain parametric analyzer is built, point evaluation and
// whole-curve sweeps run on closed forms alone — zero CTMC solver passes.
func TestParametricZeroSolvePasses(t *testing.T) {
	p := mdcd.DefaultParams()
	a, err := NewAnalyzerWithOptions(p, Options{Parametric: ParametricAuto})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Parametric() {
		t.Fatal("parametric layer inactive")
	}
	grid := SweepGrid(p.Theta, 50)
	before := ctmc.SolveOps()
	for _, phi := range grid {
		if _, err := a.Evaluate(phi); err != nil {
			t.Fatalf("Evaluate(%g): %v", phi, err)
		}
	}
	if _, err := a.Curve(grid); err != nil {
		t.Fatal(err)
	}
	if d := ctmc.SolveOps() - before; d != 0 {
		t.Errorf("in-domain parametric evaluation performed %d solver passes, want 0", d)
	}
}

// TestParametricCurveCounters pins the manifest evidence: a sweep on an
// in-domain auto analyzer records one parametric hit per point and no
// solver passes on the run's scope — the counters a gsueval run manifest
// embeds.
func TestParametricCurveCounters(t *testing.T) {
	p := mdcd.DefaultParams()
	a, err := NewAnalyzerWithOptions(p, Options{Parametric: ParametricAuto})
	if err != nil {
		t.Fatal(err)
	}
	grid := SweepGrid(p.Theta, 20)
	ctx, scope := obs.WithScope(context.Background())
	pr, err := a.CurvePartial(ctx, grid)
	if err != nil {
		t.Fatal(err)
	}
	if got := pr.Report.Succeeded(); got != len(grid) {
		t.Fatalf("sweep succeeded on %d/%d points", got, len(grid))
	}
	if got := scope.Counter(obs.CtrParametricHits); got != int64(len(grid)) {
		t.Errorf("parametric.hits = %d, want %d", got, len(grid))
	}
	if got := scope.Counter(obs.CtrParametricFallbacks); got != 0 {
		t.Errorf("parametric.fallbacks = %d, want 0", got)
	}
	if got := scope.Counter(obs.CtrSolvePasses); got != 0 {
		t.Errorf("ctmc.solve_passes = %d, want 0", got)
	}
}

// TestParametricOutOfDomainFallsBack proves the fallback side of the
// contract: an auto analyzer on out-of-domain parameters serves every
// query through the numeric engine, bit-identically to a parametric-off
// analyzer, while counting one parametric fallback per point.
func TestParametricOutOfDomainFallsBack(t *testing.T) {
	p := outOfDomainParams(t)
	numeric, err := NewAnalyzer(p)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := NewAnalyzerWithOptions(p, Options{Parametric: ParametricAuto})
	if err != nil {
		t.Fatalf("auto mode must degrade to numerics out of domain, got %v", err)
	}
	if auto.Parametric() {
		t.Fatal("parametric layer active outside its validated domain")
	}
	grid := SweepGrid(p.Theta, 20)
	for _, phi := range grid {
		ra, err := auto.Evaluate(phi)
		if err != nil {
			t.Fatalf("auto Evaluate(%g): %v", phi, err)
		}
		rn, err := numeric.Evaluate(phi)
		if err != nil {
			t.Fatalf("numeric Evaluate(%g): %v", phi, err)
		}
		if ra != rn {
			t.Errorf("phi=%g: fallback result differs from the numeric engine: %+v vs %+v", phi, ra, rn)
		}
	}
	ctx, scope := obs.WithScope(context.Background())
	if _, err := auto.CurvePartial(ctx, grid); err != nil {
		t.Fatal(err)
	}
	if got := scope.Counter(obs.CtrParametricFallbacks); got != int64(len(grid)) {
		t.Errorf("parametric.fallbacks = %d, want %d", got, len(grid))
	}
	if got := scope.Counter(obs.CtrParametricHits); got != 0 {
		t.Errorf("parametric.hits = %d, want 0", got)
	}
}

// TestParametricOnModeErrors pins the strict mode: ParametricOn refuses to
// build an analyzer the closed-form layer cannot serve, surfacing the
// domain error instead of silently degrading.
func TestParametricOnModeErrors(t *testing.T) {
	p := outOfDomainParams(t)
	if _, err := NewAnalyzerWithOptions(p, Options{Parametric: ParametricOn}); !errors.Is(err, parametric.ErrOutOfDomain) {
		t.Fatalf("got %v, want ErrOutOfDomain", err)
	}
	if _, err := NewAnalyzerWithOptions(mdcd.DefaultParams(), Options{Parametric: ParametricOn}); err != nil {
		t.Fatalf("ParametricOn at the paper params: %v", err)
	}
	if _, err := NewAnalyzerWithOptions(mdcd.DefaultParams(), Options{Parametric: ParametricMode(42)}); err == nil {
		t.Fatal("unknown parametric mode accepted")
	}
}

// benchGrid is sized past the analyzer's solve-memo capacity so the
// numeric benchmark measures solves, not cache hits — the honest
// comparison for the parametric speedup claim.
func benchGrid(theta float64) []float64 {
	return SweepGrid(theta, 2*solveCacheCapacity)
}

func BenchmarkEvaluateParametric(b *testing.B) {
	p := mdcd.DefaultParams()
	a, err := NewAnalyzerWithOptions(p, Options{Parametric: ParametricAuto})
	if err != nil {
		b.Fatal(err)
	}
	if !a.Parametric() {
		b.Fatal("parametric layer inactive")
	}
	grid := benchGrid(p.Theta)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Evaluate(grid[i%len(grid)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateNumeric(b *testing.B) {
	p := mdcd.DefaultParams()
	a, err := NewAnalyzer(p)
	if err != nil {
		b.Fatal(err)
	}
	grid := benchGrid(p.Theta)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Evaluate(grid[i%len(grid)]); err != nil {
			b.Fatal(err)
		}
	}
}
