package statespace

import (
	"strings"
	"testing"

	"guardedop/internal/san"
)

func TestDiagnoseFindsDeadActivity(t *testing.T) {
	m := san.NewModel("dead")
	p0 := m.AddPlace("p0", 1)
	p1 := m.AddPlace("p1", 0)
	live := m.AddTimedActivity("live", san.ConstRate(1)).AddInputArc(p0, 1)
	live.AddCase(san.ConstProb(1)).AddOutputArc(p1, 1)
	// Requires three tokens that never exist: dead.
	dead := m.AddTimedActivity("dead", san.ConstRate(1)).AddInputArc(p1, 3)
	dead.AddCase(san.ConstProb(1))

	sp, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := sp.Diagnose()
	if len(d.DeadActivities) != 1 || d.DeadActivities[0] != "dead" {
		t.Errorf("DeadActivities = %v, want [dead]", d.DeadActivities)
	}
	if d.PlaceBounds["p0"] != 1 || d.PlaceBounds["p1"] != 1 {
		t.Errorf("PlaceBounds = %v", d.PlaceBounds)
	}
	if d.ActivityFanout["live"] != 1 {
		t.Errorf("ActivityFanout = %v", d.ActivityFanout)
	}
	if d.AbsorbingStates != 1 {
		t.Errorf("AbsorbingStates = %d, want 1", d.AbsorbingStates)
	}

	var b strings.Builder
	if err := d.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"WARNING", "dead", "p0", "live"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestDiagnoseCleanModelNoWarnings(t *testing.T) {
	m, _, _ := cycleModel(1, 2)
	sp, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := sp.Diagnose()
	if len(d.DeadActivities) != 0 {
		t.Errorf("unexpected dead activities: %v", d.DeadActivities)
	}
	var b strings.Builder
	if err := d.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "WARNING") {
		t.Errorf("unexpected warning:\n%s", b.String())
	}
}
