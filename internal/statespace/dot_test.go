package statespace

import (
	"strings"
	"testing"

	"guardedop/internal/san"
)

func TestSpaceWriteDot(t *testing.T) {
	m := san.NewModel("dotmodel")
	p0 := m.AddPlace("p0", 1)
	p1 := m.AddPlace("p1", 0)
	fwd := m.AddTimedActivity("fwd", san.ConstRate(2)).AddInputArc(p0, 1)
	fwd.AddCase(san.ConstProb(1)).AddOutputArc(p1, 1)

	sp, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := sp.WriteDot(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"digraph \"dotmodel-statespace\"",
		"init 1",
		"doublecircle", // the p1 state is absorbing
		"fwd: 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
}

func TestTransitionsLabelled(t *testing.T) {
	m := san.NewModel("labels")
	p0 := m.AddPlace("p0", 1)
	p1 := m.AddPlace("p1", 0)
	fwd := m.AddTimedActivity("fwd", san.ConstRate(3)).AddInputArc(p0, 1)
	fwd.AddCase(san.ConstProb(1)).AddOutputArc(p1, 1)
	bwd := m.AddTimedActivity("bwd", san.ConstRate(1)).AddInputArc(p1, 1)
	bwd.AddCase(san.ConstProb(1)).AddOutputArc(p0, 1)

	sp, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Transitions) != 2 {
		t.Fatalf("transitions = %+v, want 2", sp.Transitions)
	}
	for _, tr := range sp.Transitions {
		switch tr.Activity {
		case "fwd":
			if tr.Rate != 3 {
				t.Errorf("fwd rate = %v", tr.Rate)
			}
		case "bwd":
			if tr.Rate != 1 {
				t.Errorf("bwd rate = %v", tr.Rate)
			}
		default:
			t.Errorf("unexpected activity %q", tr.Activity)
		}
	}
}

func TestTransitionsAggregateParallelCases(t *testing.T) {
	// Two cases of one activity landing in the same target state must be
	// merged into a single labelled transition with summed rate.
	m := san.NewModel("agg")
	p0 := m.AddPlace("p0", 1)
	p1 := m.AddPlace("p1", 0)
	act := m.AddTimedActivity("go", san.ConstRate(10)).AddInputArc(p0, 1)
	act.AddCase(san.ConstProb(0.4)).AddOutputArc(p1, 1)
	act.AddCase(san.ConstProb(0.6)).AddOutputArc(p1, 1)

	sp, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Transitions) != 1 {
		t.Fatalf("transitions = %+v, want 1 merged", sp.Transitions)
	}
	if sp.Transitions[0].Rate != 10 {
		t.Errorf("merged rate = %v, want 10", sp.Transitions[0].Rate)
	}
}
