package statespace

import (
	"fmt"
	"io"
	"strings"
)

// WriteDot renders the tangible reachability graph as a Graphviz digraph:
// states labelled with their non-zero markings, edges labelled with the
// causing activity and rate. Absorbing states are drawn with double
// circles; states with initial probability are marked.
func (s *Space) WriteDot(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", s.Model.Name()+"-statespace")
	b.WriteString("  node [fontname=\"Helvetica\", shape=ellipse];\n")
	for i, mk := range s.States {
		shape := "ellipse"
		if s.Chain.IsAbsorbing(i) {
			shape = "doublecircle"
		}
		label := fmt.Sprintf("%d\\n%s", i, mk.Format(s.Model))
		if s.Initial[i] > 0 {
			label += fmt.Sprintf("\\ninit %.3g", s.Initial[i])
		}
		fmt.Fprintf(&b, "  s%d [shape=%s, label=\"%s\"];\n", i, shape, label)
	}
	for _, tr := range s.Transitions {
		if tr.From == tr.To {
			continue // self-loops clutter the graph and carry no CTMC meaning
		}
		fmt.Fprintf(&b, "  s%d -> s%d [label=\"%s: %.4g\"];\n", tr.From, tr.To, tr.Activity, tr.Rate)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
