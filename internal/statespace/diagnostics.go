package statespace

import (
	"fmt"
	"io"
	"sort"
)

// Diagnostics summarises structural properties of a generated state space:
// which activities ever fire, how often each place is marked, and the
// observed token bounds — the sanity view a modeller inspects before
// trusting reward numbers.
type Diagnostics struct {
	// DeadActivities are timed activities that never fire in any reachable
	// tangible marking (misspecified gates are the usual cause).
	DeadActivities []string
	// PlaceBounds[place name] is the maximum token count observed across
	// reachable tangible markings.
	PlaceBounds map[string]int
	// ActivityFanout[activity name] is the number of distinct labelled
	// transitions the activity contributes.
	ActivityFanout map[string]int
	// AbsorbingStates is the number of absorbing CTMC states.
	AbsorbingStates int
}

// Diagnose computes structural diagnostics for the space.
func (s *Space) Diagnose() Diagnostics {
	d := Diagnostics{
		PlaceBounds:     make(map[string]int, len(s.Model.Places())),
		ActivityFanout:  make(map[string]int),
		AbsorbingStates: len(s.Chain.AbsorbingStates()),
	}
	for _, pl := range s.Model.Places() {
		bound := 0
		for _, mk := range s.States {
			if c := mk.Get(pl); c > bound {
				bound = c
			}
		}
		d.PlaceBounds[pl.Name()] = bound
	}
	fired := make(map[string]bool)
	for _, tr := range s.Transitions {
		fired[tr.Activity] = true
		d.ActivityFanout[tr.Activity]++
	}
	for _, a := range s.Model.Activities() {
		if a.Timed() && !fired[a.Name()] {
			d.DeadActivities = append(d.DeadActivities, a.Name())
		}
	}
	sort.Strings(d.DeadActivities)
	return d
}

// WriteReport renders the diagnostics as text.
func (d Diagnostics) WriteReport(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "absorbing states: %d\n", d.AbsorbingStates); err != nil {
		return err
	}
	names := make([]string, 0, len(d.PlaceBounds))
	for n := range d.PlaceBounds {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "place bounds:")
	for _, n := range names {
		fmt.Fprintf(w, "  %-12s <= %d\n", n, d.PlaceBounds[n])
	}
	acts := make([]string, 0, len(d.ActivityFanout))
	for n := range d.ActivityFanout {
		acts = append(acts, n)
	}
	sort.Strings(acts)
	fmt.Fprintln(w, "activity fanout (distinct labelled transitions):")
	for _, n := range acts {
		fmt.Fprintf(w, "  %-12s %d\n", n, d.ActivityFanout[n])
	}
	if len(d.DeadActivities) > 0 {
		fmt.Fprintf(w, "WARNING: dead timed activities (never enabled): %v\n", d.DeadActivities)
	}
	return nil
}
