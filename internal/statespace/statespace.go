// Package statespace explores the reachability graph of a stochastic
// activity network and converts it into a labelled continuous-time Markov
// chain.
//
// Markings in which an instantaneous activity is enabled ("vanishing"
// markings) are eliminated on the fly: the probability mass of a firing
// that lands in a vanishing marking is pushed through the instantaneous
// closure until only tangible markings remain. Chains of instantaneous
// firings are followed up to a configurable depth; exceeding it (a loop of
// instantaneous activities) is reported as an error.
package statespace

import (
	"errors"
	"fmt"
	"sort"

	"guardedop/internal/ctmc"
	"guardedop/internal/robust"
	"guardedop/internal/san"
	"guardedop/internal/sparse"
)

// Options configures state-space generation.
type Options struct {
	// MaxStates caps exploration (default 1 << 20).
	MaxStates int
	// MaxVanishingDepth bounds chains of instantaneous firings
	// (default 128).
	MaxVanishingDepth int
}

func (o Options) withDefaults() (Options, error) {
	if o.MaxStates < 0 {
		return o, fmt.Errorf("statespace: MaxStates %d is negative: %w", o.MaxStates, robust.ErrInvariant)
	}
	if o.MaxVanishingDepth < 0 {
		return o, fmt.Errorf("statespace: MaxVanishingDepth %d is negative: %w", o.MaxVanishingDepth, robust.ErrInvariant)
	}
	if o.MaxStates == 0 {
		o.MaxStates = 1 << 20
	}
	if o.MaxVanishingDepth == 0 {
		o.MaxVanishingDepth = 128
	}
	return o, nil
}

// ErrVanishingLoop is reported when instantaneous activities cycle without
// reaching a tangible marking.
var ErrVanishingLoop = errors.New("statespace: loop of instantaneous activities")

// ErrStateSpaceTooLarge is reported when reachability exploration exceeds
// Options.MaxStates. It wraps robust.ErrInvariant so robust.ErrorClass —
// and through it the serving layer's HTTP status map — classifies an
// oversized scenario as a client-model problem rather than an internal
// failure.
var ErrStateSpaceTooLarge = fmt.Errorf("statespace: state space too large: %w", robust.ErrInvariant)

// Space is the generated state space: the list of tangible markings, the
// CTMC over them, and the initial distribution (a distribution rather than
// a point mass because the initial marking may itself be vanishing).
type Space struct {
	Model   *san.Model
	States  []san.Marking
	Chain   *ctmc.Chain
	Initial []float64
	// Transitions lists every tangible-to-tangible transition labelled
	// with the timed activity whose completion causes it, aggregated per
	// (from, to, activity). Unlike the CTMC generator it RETAINS
	// self-loops (an activity completing without changing the marking):
	// they are irrelevant to state probabilities but carry impulse
	// rewards — e.g. counting message-send completions.
	Transitions []Transition

	index map[string]int
}

// Transition is one labelled state-to-state rate.
type Transition struct {
	From, To int
	Rate     float64
	Activity string
}

// NumStates returns the number of tangible states.
func (s *Space) NumStates() int { return len(s.States) }

// StateIndex returns the index of the given marking, or -1 if it is not a
// tangible reachable state.
func (s *Space) StateIndex(mk san.Marking) int {
	if i, ok := s.index[mk.Key()]; ok {
		return i
	}
	return -1
}

// Generate explores the SAN's reachability graph from its initial marking
// and returns the tangible state space with its CTMC.
func Generate(model *san.Model, opts Options) (*Space, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}

	sp := &Space{Model: model, index: make(map[string]int)}
	g := &generator{model: model, opts: opts, space: sp}

	init, err := g.vanishingClosure(model.InitialMarking(), 0)
	if err != nil {
		return nil, err
	}
	var frontier []int
	initDist := make(map[int]float64)
	for _, tm := range init {
		idx, isNew := g.intern(tm.marking)
		if isNew {
			frontier = append(frontier, idx)
		}
		initDist[idx] += tm.prob
	}

	type edge struct {
		from, to int
		rate     float64
		activity string
	}
	var edges []edge

	for len(frontier) > 0 {
		s := frontier[0]
		frontier = frontier[1:]
		mk := sp.States[s]
		for _, a := range model.Activities() {
			if !a.Timed() || !a.Enabled(mk) {
				continue
			}
			rate := a.Rate(mk)
			if rate == 0 {
				continue
			}
			outs, probs, err := a.Fire(mk)
			if err != nil {
				return nil, fmt.Errorf("statespace: firing %q in %s: %w", a.Name(), mk.Key(), err)
			}
			for i, out := range outs {
				closure, err := g.vanishingClosure(out, 0)
				if err != nil {
					return nil, fmt.Errorf("statespace: after firing %q: %w", a.Name(), err)
				}
				for _, tm := range closure {
					idx, isNew := g.intern(tm.marking)
					if isNew {
						frontier = append(frontier, idx)
					}
					edges = append(edges, edge{from: s, to: idx, rate: rate * probs[i] * tm.prob, activity: a.Name()})
				}
			}
		}
		if len(sp.States) > opts.MaxStates {
			return nil, fmt.Errorf("%w: exceeds %d states", ErrStateSpaceTooLarge, opts.MaxStates)
		}
	}

	n := len(sp.States)
	gen := sparse.NewCOO(n, n)
	merged := make(map[Transition]float64, len(edges))
	for _, e := range edges {
		if e.from != e.to {
			gen.Add(e.from, e.to, e.rate)
			gen.Add(e.from, e.from, -e.rate)
		}
		merged[Transition{From: e.from, To: e.to, Activity: e.activity}] += e.rate
	}
	sp.Transitions = make([]Transition, 0, len(merged))
	for key, rate := range merged {
		key.Rate = rate
		sp.Transitions = append(sp.Transitions, key)
	}
	sort.Slice(sp.Transitions, func(i, j int) bool {
		a, b := sp.Transitions[i], sp.Transitions[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Activity < b.Activity
	})
	chain, err := ctmc.New(gen)
	if err != nil {
		return nil, fmt.Errorf("statespace: generated CTMC invalid: %w", err)
	}
	sp.Chain = chain
	sp.Initial = make([]float64, n)
	for idx, p := range initDist {
		sp.Initial[idx] = p
	}
	return sp, nil
}

type generator struct {
	model *san.Model
	opts  Options
	space *Space
}

// intern returns the state index for mk, creating it if unseen.
func (g *generator) intern(mk san.Marking) (idx int, isNew bool) {
	key := mk.Key()
	if i, ok := g.space.index[key]; ok {
		return i, false
	}
	idx = len(g.space.States)
	g.space.States = append(g.space.States, mk)
	g.space.index[key] = idx
	return idx, true
}

// tangibleMass is one tangible marking reached from a vanishing closure with
// its probability.
type tangibleMass struct {
	marking san.Marking
	prob    float64
}

// enabledInstantaneous returns the instantaneous activities enabled in mk.
func (g *generator) enabledInstantaneous(mk san.Marking) []*san.Activity {
	var out []*san.Activity
	for _, a := range g.model.Activities() {
		if !a.Timed() && a.Enabled(mk) {
			out = append(out, a)
		}
	}
	return out
}

// vanishingClosure resolves mk through instantaneous firings until only
// tangible markings remain, returning them with their probabilities.
func (g *generator) vanishingClosure(mk san.Marking, depth int) ([]tangibleMass, error) {
	insts := g.enabledInstantaneous(mk)
	if len(insts) == 0 {
		return []tangibleMass{{marking: mk, prob: 1}}, nil
	}
	if depth >= g.opts.MaxVanishingDepth {
		return nil, fmt.Errorf("%w (depth %d at marking %s)", ErrVanishingLoop, depth, mk.Key())
	}
	totalWeight := 0.0
	weights := make([]float64, len(insts))
	for i, a := range insts {
		weights[i] = a.Weight(mk)
		totalWeight += weights[i]
	}
	if totalWeight == 0 {
		return nil, fmt.Errorf("statespace: all instantaneous weights zero in marking %s", mk.Key())
	}
	var out []tangibleMass
	for i, a := range insts {
		w := weights[i] / totalWeight
		if w == 0 {
			continue
		}
		outs, probs, err := a.Fire(mk)
		if err != nil {
			return nil, fmt.Errorf("statespace: instantaneous %q: %w", a.Name(), err)
		}
		for j, o := range outs {
			sub, err := g.vanishingClosure(o, depth+1)
			if err != nil {
				return nil, err
			}
			for _, tm := range sub {
				out = append(out, tangibleMass{marking: tm.marking, prob: w * probs[j] * tm.prob})
			}
		}
	}
	return mergeMass(out), nil
}

// mergeMass coalesces duplicate markings in a closure result.
func mergeMass(in []tangibleMass) []tangibleMass {
	seen := make(map[string]int, len(in))
	var out []tangibleMass
	for _, tm := range in {
		key := tm.marking.Key()
		if i, ok := seen[key]; ok {
			out[i].prob += tm.prob
			continue
		}
		seen[key] = len(out)
		out = append(out, tm)
	}
	return out
}
