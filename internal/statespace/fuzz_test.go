package statespace

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"guardedop/internal/san"
	"guardedop/internal/sparse"
)

// randomSAN builds a structurally random (but well-formed) SAN: a handful
// of places with small initial markings and timed/instantaneous activities
// with random arcs and two-way probabilistic cases.
func randomSAN(rng *rand.Rand) *san.Model {
	m := san.NewModel("fuzz")
	nPlaces := 2 + rng.Intn(4)
	places := make([]*san.Place, nPlaces)
	for i := range places {
		places[i] = m.AddPlace(fmt.Sprintf("p%d", i), rng.Intn(3))
	}
	nActs := 1 + rng.Intn(5)
	for i := 0; i < nActs; i++ {
		var a *san.Activity
		// Bias towards timed activities; instantaneous ones risk benign
		// vanishing loops, which Generate must report as errors rather
		// than hang on.
		if rng.Float64() < 0.8 {
			a = m.AddTimedActivity(fmt.Sprintf("t%d", i), san.ConstRate(0.1+rng.Float64()*5))
		} else {
			a = m.AddInstantaneousActivity(fmt.Sprintf("i%d", i))
		}
		a.AddInputArc(places[rng.Intn(nPlaces)], 1)
		if rng.Float64() < 0.5 {
			pA := 0.2 + 0.6*rng.Float64()
			a.AddCase(san.ConstProb(pA)).AddOutputArc(places[rng.Intn(nPlaces)], 1)
			a.AddCase(san.ConstProb(1-pA)).AddOutputArc(places[rng.Intn(nPlaces)], 1)
		} else {
			a.AddCase(san.ConstProb(1)).AddOutputArc(places[rng.Intn(nPlaces)], 1)
		}
	}
	return m
}

// Property: for any random well-formed SAN, Generate either returns a valid
// space (stochastic initial distribution, valid generator, self-loop-free
// chain, consistent transition labels) or fails with a *reported* error —
// never panics, never returns an inconsistent space.
func TestGenerateRandomSANProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomSAN(rng)
		sp, err := Generate(m, Options{MaxStates: 20000})
		if err != nil {
			// Vanishing loops and state explosions are legitimate
			// diagnoses for random structures; what matters is that the
			// failure was reported rather than a panic or a bogus space.
			return true
		}
		if math.Abs(sparse.Sum(sp.Initial)-1) > 1e-9 {
			return false
		}
		// The generator must be a valid CTMC (rows sum to zero) — already
		// enforced by ctmc.New, so reaching here implies it. Check the
		// labelled transitions against the generator: off-diagonal rates
		// must match the summed labels.
		n := sp.NumStates()
		sums := make(map[[2]int]float64)
		for _, tr := range sp.Transitions {
			if tr.From < 0 || tr.From >= n || tr.To < 0 || tr.To >= n || tr.Rate <= 0 {
				return false
			}
			if tr.From != tr.To {
				sums[[2]int{tr.From, tr.To}] += tr.Rate
			}
		}
		ok := true
		for s := 0; s < n; s++ {
			sp.Chain.Generator().Row(s, func(c int, v float64) {
				if c != s && v > 0 {
					if math.Abs(sums[[2]int{s, c}]-v) > 1e-9*(1+v) {
						ok = false
					}
				}
			})
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// Property: every reachable tangible state has no enabled instantaneous
// activity (tangibility is preserved by elimination).
func TestGenerateTangibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomSAN(rng)
		sp, err := Generate(m, Options{MaxStates: 20000})
		if err != nil {
			return true
		}
		for _, mk := range sp.States {
			for _, a := range m.Activities() {
				if !a.Timed() && a.Enabled(mk) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}
