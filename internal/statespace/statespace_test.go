package statespace

import (
	"errors"

	"guardedop/internal/ctmc"
	"math"
	"testing"

	"guardedop/internal/san"
	"guardedop/internal/sparse"
)

// cycleModel builds a 2-state cycle p0 <-> p1 with rates a and b.
func cycleModel(a, b float64) (*san.Model, *san.Place, *san.Place) {
	m := san.NewModel("cycle")
	p0 := m.AddPlace("p0", 1)
	p1 := m.AddPlace("p1", 0)
	fwd := m.AddTimedActivity("fwd", san.ConstRate(a)).AddInputArc(p0, 1)
	fwd.AddCase(san.ConstProb(1)).AddOutputArc(p1, 1)
	bwd := m.AddTimedActivity("bwd", san.ConstRate(b)).AddInputArc(p1, 1)
	bwd.AddCase(san.ConstProb(1)).AddOutputArc(p0, 1)
	return m, p0, p1
}

func TestGenerateTwoStateCycle(t *testing.T) {
	m, _, p1 := cycleModel(3, 1)
	sp, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumStates() != 2 {
		t.Fatalf("NumStates = %d, want 2", sp.NumStates())
	}
	if math.Abs(sparse.Sum(sp.Initial)-1) > 1e-12 {
		t.Errorf("initial distribution sums to %v", sparse.Sum(sp.Initial))
	}
	// Transient solution should match the analytic two-state chain.
	pi, err := sp.Chain.Transient(sp.Initial, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var inP1 float64
	for i, mk := range sp.States {
		if mk.Get(p1) == 1 {
			inP1 += pi[i]
		}
	}
	want := 3.0 / 4.0 * (1 - math.Exp(-4*0.5))
	if math.Abs(inP1-want) > 1e-10 {
		t.Errorf("P(p1) = %v, want %v", inP1, want)
	}
}

func TestGenerateEliminatesVanishing(t *testing.T) {
	// p0 --timed--> v --instantaneous--> split 30/70 into a or b (absorbing).
	m := san.NewModel("vanish")
	p0 := m.AddPlace("p0", 1)
	v := m.AddPlace("v", 0)
	pa := m.AddPlace("a", 0)
	pb := m.AddPlace("b", 0)
	tact := m.AddTimedActivity("go", san.ConstRate(2)).AddInputArc(p0, 1)
	tact.AddCase(san.ConstProb(1)).AddOutputArc(v, 1)
	inst := m.AddInstantaneousActivity("split").AddInputArc(v, 1)
	inst.AddCase(san.ConstProb(0.3)).AddOutputArc(pa, 1)
	inst.AddCase(san.ConstProb(0.7)).AddOutputArc(pb, 1)

	sp, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumStates() != 3 {
		t.Fatalf("NumStates = %d, want 3 (vanishing marking must be eliminated)", sp.NumStates())
	}
	for _, mk := range sp.States {
		if mk.Get(v) != 0 {
			t.Fatalf("vanishing marking %v retained", mk)
		}
	}
	// Long-run absorption split must be 0.3 / 0.7.
	abs, err := sp.Chain.AbsorbingAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	idxA := -1
	for i, mk := range sp.States {
		if mk.Get(pa) == 1 {
			idxA = i
		}
	}
	p, err := abs.AbsorptionProbability(sp.Initial, idxA)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.3) > 1e-12 {
		t.Errorf("P(absorb in a) = %v, want 0.3", p)
	}
}

func TestGenerateVanishingChain(t *testing.T) {
	// Two chained instantaneous activities must both be eliminated.
	m := san.NewModel("chain")
	p0 := m.AddPlace("p0", 1)
	v1 := m.AddPlace("v1", 0)
	v2 := m.AddPlace("v2", 0)
	end := m.AddPlace("end", 0)
	tact := m.AddTimedActivity("go", san.ConstRate(1)).AddInputArc(p0, 1)
	tact.AddCase(san.ConstProb(1)).AddOutputArc(v1, 1)
	i1 := m.AddInstantaneousActivity("i1").AddInputArc(v1, 1)
	i1.AddCase(san.ConstProb(1)).AddOutputArc(v2, 1)
	i2 := m.AddInstantaneousActivity("i2").AddInputArc(v2, 1)
	i2.AddCase(san.ConstProb(1)).AddOutputArc(end, 1)

	sp, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumStates() != 2 {
		t.Fatalf("NumStates = %d, want 2", sp.NumStates())
	}
}

func TestGenerateVanishingInitialMarking(t *testing.T) {
	// The initial marking itself is vanishing: the initial distribution is
	// split across tangible states.
	m := san.NewModel("vinit")
	v := m.AddPlace("v", 1)
	pa := m.AddPlace("a", 0)
	pb := m.AddPlace("b", 0)
	inst := m.AddInstantaneousActivity("split").AddInputArc(v, 1)
	inst.AddCase(san.ConstProb(0.25)).AddOutputArc(pa, 1)
	inst.AddCase(san.ConstProb(0.75)).AddOutputArc(pb, 1)
	// Keep the tangible states live with a slow cycle so the model has a
	// non-degenerate CTMC.
	back := m.AddTimedActivity("swap", san.ConstRate(1)).AddInputArc(pa, 1)
	back.AddCase(san.ConstProb(1)).AddOutputArc(pb, 1)

	sp, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumStates() != 2 {
		t.Fatalf("NumStates = %d, want 2", sp.NumStates())
	}
	var pA, pB float64
	for i, mk := range sp.States {
		switch {
		case mk.Get(pa) == 1:
			pA = sp.Initial[i]
		case mk.Get(pb) == 1:
			pB = sp.Initial[i]
		}
	}
	if math.Abs(pA-0.25) > 1e-12 || math.Abs(pB-0.75) > 1e-12 {
		t.Errorf("initial split = (%v,%v), want (0.25,0.75)", pA, pB)
	}
}

func TestGenerateVanishingLoopDetected(t *testing.T) {
	m := san.NewModel("loop")
	v1 := m.AddPlace("v1", 1)
	v2 := m.AddPlace("v2", 0)
	i1 := m.AddInstantaneousActivity("i1").AddInputArc(v1, 1)
	i1.AddCase(san.ConstProb(1)).AddOutputArc(v2, 1)
	i2 := m.AddInstantaneousActivity("i2").AddInputArc(v2, 1)
	i2.AddCase(san.ConstProb(1)).AddOutputArc(v1, 1)
	_, err := Generate(m, Options{})
	if !errors.Is(err, ErrVanishingLoop) {
		t.Fatalf("err = %v, want ErrVanishingLoop", err)
	}
}

func TestGenerateWeightedInstantaneousRace(t *testing.T) {
	// Two instantaneous activities race with weights 1 and 3.
	m := san.NewModel("race")
	p0 := m.AddPlace("p0", 1)
	v := m.AddPlace("v", 0)
	pa := m.AddPlace("a", 0)
	pb := m.AddPlace("b", 0)
	tact := m.AddTimedActivity("go", san.ConstRate(1)).AddInputArc(p0, 1)
	tact.AddCase(san.ConstProb(1)).AddOutputArc(v, 1)
	ia := m.AddInstantaneousActivity("toA").AddInputArc(v, 1)
	ia.AddCase(san.ConstProb(1)).AddOutputArc(pa, 1)
	ib := m.AddInstantaneousActivity("toB").AddInputArc(v, 1).
		SetWeight(func(san.Marking) float64 { return 3 })
	ib.AddCase(san.ConstProb(1)).AddOutputArc(pb, 1)

	sp, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	abs, err := sp.Chain.AbsorbingAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	for i, mk := range sp.States {
		if mk.Get(pa) == 1 {
			p, err := abs.AbsorptionProbability(sp.Initial, i)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(p-0.25) > 1e-12 {
				t.Errorf("P(a) = %v, want 0.25", p)
			}
		}
	}
}

func TestGenerateMarkingDependentRate(t *testing.T) {
	// A birth-death model with marking-dependent death rate mu*i.
	m := san.NewModel("mmk")
	pop := m.AddPlace("pop", 0)
	lambda, mu := 2.0, 1.0
	capacity := 4
	birth := m.AddTimedActivity("birth", san.ConstRate(lambda)).
		AddInputGate("cap", func(mk san.Marking) bool { return mk.Get(pop) < capacity }, nil)
	birth.AddCase(san.ConstProb(1)).AddOutputArc(pop, 1)
	death := m.AddTimedActivity("death",
		func(mk san.Marking) float64 { return mu * float64(mk.Get(pop)) }).
		AddInputArc(pop, 1)
	death.AddCase(san.ConstProb(1))

	sp, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumStates() != capacity+1 {
		t.Fatalf("NumStates = %d, want %d", sp.NumStates(), capacity+1)
	}
	// Steady state of M/M/inf truncated: pi_i ∝ (lambda/mu)^i / i!.
	pi, err := sp.Chain.SteadyState(ctmc.SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda / mu
	weights := make([]float64, capacity+1)
	norm, fact := 0.0, 1.0
	for i := 0; i <= capacity; i++ {
		if i > 0 {
			fact *= float64(i)
		}
		weights[i] = math.Pow(rho, float64(i)) / fact
		norm += weights[i]
	}
	for i, mk := range sp.States {
		want := weights[mk.Get(pop)] / norm
		if math.Abs(pi[i]-want) > 1e-9 {
			t.Errorf("pi[pop=%d] = %v, want %v", mk.Get(pop), pi[i], want)
		}
	}
}

func TestStateIndex(t *testing.T) {
	m, p0, p1 := cycleModel(1, 1)
	sp, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mk := m.InitialMarking()
	if sp.StateIndex(mk) == -1 {
		t.Error("initial marking not found")
	}
	mk.Set(p0, 0)
	mk.Set(p1, 1)
	if sp.StateIndex(mk) == -1 {
		t.Error("second marking not found")
	}
	mk.Set(p1, 7)
	if sp.StateIndex(mk) != -1 {
		t.Error("unreachable marking reported as reachable")
	}
}

func TestGenerateMaxStatesExceeded(t *testing.T) {
	// Unbounded birth process must trip the state cap.
	m := san.NewModel("unbounded")
	pop := m.AddPlace("pop", 0)
	birth := m.AddTimedActivity("birth", san.ConstRate(1))
	birth.AddCase(san.ConstProb(1)).AddOutputArc(pop, 1)
	if _, err := Generate(m, Options{MaxStates: 50}); err == nil {
		t.Fatal("unbounded model did not hit MaxStates")
	}
}

func TestGenerateSelfLoopDropped(t *testing.T) {
	// A timed activity that does not change the marking contributes no
	// CTMC transition.
	m := san.NewModel("selfloop")
	p := m.AddPlace("p", 1)
	noop := m.AddTimedActivity("noop", san.ConstRate(5)).
		AddInputGate("g", func(mk san.Marking) bool { return mk.Get(p) == 1 }, nil)
	noop.AddCase(san.ConstProb(1))
	sp, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumStates() != 1 {
		t.Fatalf("NumStates = %d, want 1", sp.NumStates())
	}
	if !sp.Chain.IsAbsorbing(0) {
		t.Error("self-loop state should be absorbing in the CTMC")
	}
}
