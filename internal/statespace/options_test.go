package statespace

import (
	"errors"
	"testing"

	"guardedop/internal/robust"
)

// TestOptionsRejectNegative pins the withDefaults validation: negative
// bounds are caller bugs (a templated scenario spec passing garbage
// limits), not a request for "no limit", and must fail with a typed
// invariant error instead of being silently accepted.
func TestOptionsRejectNegative(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		ok   bool
	}{
		{name: "zero-defaults", opts: Options{}, ok: true},
		{name: "explicit", opts: Options{MaxStates: 10, MaxVanishingDepth: 4}, ok: true},
		{name: "negative-max-states", opts: Options{MaxStates: -1}, ok: false},
		{name: "negative-vanishing-depth", opts: Options{MaxVanishingDepth: -7}, ok: false},
		{name: "both-negative", opts: Options{MaxStates: -3, MaxVanishingDepth: -3}, ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.opts.withDefaults()
			if tc.ok {
				if err != nil {
					t.Fatalf("withDefaults(%+v) = %v, want nil", tc.opts, err)
				}
				if got.MaxStates <= 0 || got.MaxVanishingDepth <= 0 {
					t.Fatalf("withDefaults(%+v) left a bound unset: %+v", tc.opts, got)
				}
				return
			}
			if err == nil {
				t.Fatalf("withDefaults(%+v) accepted negative option", tc.opts)
			}
			if !errors.Is(err, robust.ErrInvariant) {
				t.Fatalf("withDefaults(%+v) error %v is not robust.ErrInvariant", tc.opts, err)
			}
		})
	}
}

// TestGenerateRejectsNegativeOptions checks the validation is actually
// reached through the public entry point.
func TestGenerateRejectsNegativeOptions(t *testing.T) {
	m, _, _ := cycleModel(1, 1)
	if _, err := Generate(m, Options{MaxStates: -5}); !errors.Is(err, robust.ErrInvariant) {
		t.Fatalf("Generate with negative MaxStates: err = %v, want robust.ErrInvariant", err)
	}
}

// TestStateSpaceTooLargeTyped pins the overflow error's type and class:
// it must surface as ErrStateSpaceTooLarge and classify as an invariant
// violation so the serving layer maps it to 422.
func TestStateSpaceTooLargeTyped(t *testing.T) {
	m, _, _ := cycleModel(1, 1)
	_, err := Generate(m, Options{MaxStates: 1})
	if err == nil {
		t.Fatal("Generate with MaxStates=1 on a 2-state model succeeded")
	}
	if !errors.Is(err, ErrStateSpaceTooLarge) {
		t.Fatalf("err = %v, want ErrStateSpaceTooLarge", err)
	}
	if !errors.Is(err, robust.ErrInvariant) {
		t.Fatalf("err = %v does not wrap robust.ErrInvariant", err)
	}
	if cls := robust.ErrorClass(err); cls != robust.ClassInvariant {
		t.Fatalf("ErrorClass = %v, want %v", cls, robust.ClassInvariant)
	}
}
