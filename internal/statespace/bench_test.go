package statespace

import (
	"fmt"
	"testing"

	"guardedop/internal/san"
)

// tandemModel builds a k-stage tandem of places with forward/backward
// token movement, giving a state space that grows with k.
func tandemModel(k, tokens int) *san.Model {
	m := san.NewModel(fmt.Sprintf("tandem-%d", k))
	places := make([]*san.Place, k)
	for i := range places {
		init := 0
		if i == 0 {
			init = tokens
		}
		places[i] = m.AddPlace(fmt.Sprintf("p%d", i), init)
	}
	for i := 0; i+1 < k; i++ {
		fwd := m.AddTimedActivity(fmt.Sprintf("f%d", i), san.ConstRate(2)).
			AddInputArc(places[i], 1)
		fwd.AddCase(san.ConstProb(1)).AddOutputArc(places[i+1], 1)
		bwd := m.AddTimedActivity(fmt.Sprintf("b%d", i), san.ConstRate(1)).
			AddInputArc(places[i+1], 1)
		bwd.AddCase(san.ConstProb(1)).AddOutputArc(places[i], 1)
	}
	return m
}

func BenchmarkGenerateSmall(b *testing.B) {
	m := tandemModel(4, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(m, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateLarge(b *testing.B) {
	m := tandemModel(6, 6) // a few hundred tangible states
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, err := Generate(m, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(sp.NumStates()), "states")
		}
	}
}
