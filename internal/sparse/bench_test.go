package sparse

import (
	"math/rand"
	"testing"
)

func benchMatrix(b *testing.B, n, nnzPerRow int) (*CSR, []float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	coo := NewCOO(n, n)
	for r := 0; r < n; r++ {
		for k := 0; k < nnzPerRow; k++ {
			coo.Add(r, rng.Intn(n), rng.NormFloat64())
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return coo.ToCSR(), x
}

func BenchmarkCSRMulVec(b *testing.B) {
	m, x := benchMatrix(b, 1024, 8)
	dst := make([]float64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}

func BenchmarkCSRVecMul(b *testing.B) {
	m, x := benchMatrix(b, 1024, 8)
	dst := make([]float64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.VecMul(dst, x)
	}
}

func BenchmarkCOOToCSR(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	coo := NewCOO(512, 512)
	for k := 0; k < 512*8; k++ {
		coo.Add(rng.Intn(512), rng.Intn(512), rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = coo.ToCSR()
	}
}

func BenchmarkDenseMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 64
	m := NewDense(n, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			m.Set(r, c, rng.NormFloat64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Mul(m)
	}
}

func BenchmarkLUSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 64
	a := NewDense(n, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			a.Set(r, c, rng.NormFloat64())
		}
		a.Set(r, r, a.At(r, r)+float64(n))
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveDense(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
