// Package sparse provides the linear-algebra substrate used by the CTMC
// solvers: coordinate-format (COO) matrix assembly, compressed sparse row
// (CSR) kernels, dense vectors and matrices, and a dense LU factorisation
// with partial pivoting.
//
// Go's standard library has no linear algebra, and Markov reward analysis
// needs only a narrow slice of it: sparse matrix-vector products for
// uniformization, dense factorisation for steady-state solves and matrix
// exponentials, and a handful of vector kernels. The package implements
// exactly that slice with no external dependencies.
//
// All matrices are real-valued with float64 entries. Row/column indices are
// zero-based. The package is written for correctness and predictable
// allocation behaviour rather than peak BLAS-level throughput; the state
// spaces arising in this repository are small (tens to a few thousand
// states), so clarity wins.
package sparse
