package sparse

import (
	"math"
	"testing"
)

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 1, 4)
	m.Set(1, 2, -2)
	if m.At(0, 1) != 4 || m.At(1, 2) != -2 || m.At(0, 0) != 0 {
		t.Error("Set/At broken")
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Error("dims broken")
	}
	row := m.RowSlice(1)
	row[0] = 7
	if m.At(1, 0) != 7 {
		t.Error("RowSlice does not write through")
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 0 {
		t.Error("Clone aliases")
	}
}

func TestIdentity(t *testing.T) {
	i3 := Identity(3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := 0.0
			if r == c {
				want = 1
			}
			if i3.At(r, c) != want {
				t.Fatalf("I[%d][%d] = %v", r, c, i3.At(r, c))
			}
		}
	}
}

func TestDenseMulKnown(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	b := a.Mul(a)
	want := [][]float64{{7, 10}, {15, 22}}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			if b.At(r, c) != want[r][c] {
				t.Errorf("A²[%d][%d] = %v, want %v", r, c, b.At(r, c), want[r][c])
			}
		}
	}
}

func TestDenseAddScaleInfNorm(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -3)
	b := a.Add(a.Scale(2))
	if b.At(0, 0) != 3 || b.At(1, 1) != -9 {
		t.Errorf("Add/Scale broken: %v %v", b.At(0, 0), b.At(1, 1))
	}
	if got := b.InfNorm(); got != 9 {
		t.Errorf("InfNorm = %v, want 9", got)
	}
}

func TestDenseVecOps(t *testing.T) {
	a := NewDense(2, 3)
	a.Set(0, 0, 1)
	a.Set(0, 2, 2)
	a.Set(1, 1, 3)
	x := []float64{1, 2, 3}
	dst := make([]float64, 2)
	a.MulVec(dst, x)
	if dst[0] != 7 || dst[1] != 6 {
		t.Errorf("MulVec = %v, want [7 6]", dst)
	}
	y := []float64{1, 2}
	dst2 := make([]float64, 3)
	a.VecMul(dst2, y)
	if dst2[0] != 1 || dst2[1] != 6 || dst2[2] != 2 {
		t.Errorf("VecMul = %v, want [1 6 2]", dst2)
	}
}

func TestDenseDimensionPanics(t *testing.T) {
	a := NewDense(2, 2)
	cases := []func(){
		func() { a.Mul(NewDense(3, 2)) },
		func() { a.MulVec(make([]float64, 2), make([]float64, 3)) },
		func() { a.VecMul(make([]float64, 3), make([]float64, 2)) },
		func() { a.Add(NewDense(3, 3)) },
		func() { NewDense(-1, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCOOToDense(t *testing.T) {
	m := NewCOO(2, 2)
	m.Add(0, 1, 3)
	m.Add(0, 1, 2)
	d := m.ToDense()
	if d.At(0, 1) != 5 {
		t.Errorf("ToDense dup sum = %v, want 5", d.At(0, 1))
	}
}

func TestCSRToDenseRoundTripValues(t *testing.T) {
	m := NewCOO(3, 3)
	m.Add(2, 0, -1.5)
	m.Add(0, 2, 2.5)
	d := m.ToCSR().ToDense()
	if d.At(2, 0) != -1.5 || d.At(0, 2) != 2.5 {
		t.Error("CSR->Dense values wrong")
	}
}

func TestCSRAtOutOfRangePanics(t *testing.T) {
	m := NewCOO(2, 2).ToCSR()
	defer func() {
		if recover() == nil {
			t.Fatal("CSR.At out of range did not panic")
		}
	}()
	m.At(2, 0)
}

func TestCSRMulVecDimensionPanics(t *testing.T) {
	m := NewCOO(2, 3).ToCSR()
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	m.MulVec(make([]float64, 2), make([]float64, 2))
}

func TestLUNonFiniteSafety(t *testing.T) {
	// A matrix with huge magnitude spread still solves to finite values.
	a := NewDense(2, 2)
	a.Set(0, 0, 1e12)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3e-12)
	x, err := SolveDense(a, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("non-finite solution %v", x)
		}
	}
}
