package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCOOBasics(t *testing.T) {
	m := NewCOO(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	m.Add(0, 1, 2.5)
	m.Add(2, 3, -1)
	m.Add(0, 1, 0.5) // duplicate, should sum on conversion
	m.Add(1, 2, 0)   // exact zero is dropped
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 (zero entry dropped)", m.NNZ())
	}
	csr := m.ToCSR()
	if got := csr.At(0, 1); got != 3.0 {
		t.Errorf("csr.At(0,1) = %v, want 3.0 (duplicates summed)", got)
	}
	if got := csr.At(2, 3); got != -1.0 {
		t.Errorf("csr.At(2,3) = %v, want -1.0", got)
	}
	if got := csr.At(1, 1); got != 0 {
		t.Errorf("csr.At(1,1) = %v, want 0", got)
	}
	if csr.NNZ() != 2 {
		t.Errorf("csr.NNZ = %d, want 2", csr.NNZ())
	}
}

func TestCOOCancellationDropped(t *testing.T) {
	m := NewCOO(2, 2)
	m.Add(0, 0, 1.5)
	m.Add(0, 0, -1.5)
	m.Add(1, 1, 2)
	csr := m.ToCSR()
	if csr.NNZ() != 1 {
		t.Fatalf("NNZ after cancellation = %d, want 1", csr.NNZ())
	}
	if csr.At(0, 0) != 0 {
		t.Errorf("cancelled entry = %v, want 0", csr.At(0, 0))
	}
}

func TestCOOOutOfRangePanics(t *testing.T) {
	m := NewCOO(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	m.Add(2, 0, 1)
}

func TestNewCOONegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCOO(-1, 2) did not panic")
		}
	}()
	NewCOO(-1, 2)
}

// randomCOO builds a random matrix along with a dense shadow copy.
func randomCOO(rng *rand.Rand, rows, cols, nnz int) (*COO, *Dense) {
	m := NewCOO(rows, cols)
	d := NewDense(rows, cols)
	for k := 0; k < nnz; k++ {
		r, c := rng.Intn(rows), rng.Intn(cols)
		v := rng.NormFloat64()
		m.Add(r, c, v)
		d.Set(r, c, d.At(r, c)+v)
	}
	return m, d
}

// Property: COO -> CSR -> Dense round-trips to the same matrix as direct
// dense accumulation.
func TestCSRMatchesDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		m, want := randomCOO(rng, rows, cols, rng.Intn(60))
		got := m.ToCSR().ToDense()
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if math.Abs(got.At(r, c)-want.At(r, c)) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSR.MulVec and VecMul agree with the dense reference.
func TestCSRMulVecMatchesDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		m, d := randomCOO(rng, rows, cols, rng.Intn(50))
		csr := m.ToCSR()

		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got, want := make([]float64, rows), make([]float64, rows)
		csr.MulVec(got, x)
		d.MulVec(want, x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				return false
			}
		}

		y := make([]float64, rows)
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		got2, want2 := make([]float64, cols), make([]float64, cols)
		csr.VecMul(got2, y)
		d.VecMul(want2, y)
		for i := range got2 {
			if math.Abs(got2[i]-want2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}

// Property: transposing twice is the identity, and (x*A)·y == x·(A*y)... via
// the adjoint identity <A^T x, y> == <x, A y>.
func TestCSRTransposeAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		m, _ := randomCOO(rng, rows, cols, rng.Intn(40))
		a := m.ToCSR()
		at := a.Transpose()
		if at.Rows() != cols || at.Cols() != rows {
			return false
		}
		x := make([]float64, rows)
		y := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		ay := make([]float64, rows)
		a.MulVec(ay, y)
		atx := make([]float64, cols)
		at.MulVec(atx, x)
		return math.Abs(Dot(atx, y)-Dot(x, ay)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRScale(t *testing.T) {
	m := NewCOO(2, 2)
	m.Add(0, 0, 2)
	m.Add(1, 0, -4)
	s := m.ToCSR().Scale(0.5)
	if s.At(0, 0) != 1 || s.At(1, 0) != -2 {
		t.Errorf("Scale(0.5): got (%v,%v), want (1,-2)", s.At(0, 0), s.At(1, 0))
	}
}

func TestCSRMaxAbsDiagAndInfNorm(t *testing.T) {
	m := NewCOO(3, 3)
	m.Add(0, 0, -5)
	m.Add(0, 1, 5)
	m.Add(1, 1, -2)
	m.Add(1, 0, 1)
	m.Add(1, 2, 1)
	m.Add(2, 2, -7)
	m.Add(2, 0, 7)
	csr := m.ToCSR()
	if got := csr.MaxAbsDiag(); got != 7 {
		t.Errorf("MaxAbsDiag = %v, want 7", got)
	}
	if got := csr.InfNorm(); got != 14 {
		t.Errorf("InfNorm = %v, want 14", got)
	}
}

func TestCSRRowIteration(t *testing.T) {
	m := NewCOO(2, 3)
	m.Add(1, 2, 3)
	m.Add(1, 0, 1)
	csr := m.ToCSR()
	var cols []int
	var vals []float64
	csr.Row(1, func(c int, v float64) {
		cols = append(cols, c)
		vals = append(vals, v)
	})
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 || vals[0] != 1 || vals[1] != 3 {
		t.Errorf("Row(1) visited cols=%v vals=%v, want cols=[0 2] vals=[1 3]", cols, vals)
	}
	count := 0
	csr.Row(0, func(int, float64) { count++ })
	if count != 0 {
		t.Errorf("Row(0) visited %d entries, want 0", count)
	}
}
