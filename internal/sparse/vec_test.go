package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecKernels(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, -5, 6}
	if got := Dot(a, b); got != 12 {
		t.Errorf("Dot = %v, want 12", got)
	}
	if got := Sum(a); got != 6 {
		t.Errorf("Sum = %v, want 6", got)
	}
	dst := []float64{1, 1, 1}
	Axpy(dst, 2, a)
	if dst[0] != 3 || dst[1] != 5 || dst[2] != 7 {
		t.Errorf("Axpy result = %v, want [3 5 7]", dst)
	}
	ScaleVec(dst, 0.5)
	if dst[0] != 1.5 || dst[1] != 2.5 || dst[2] != 3.5 {
		t.Errorf("ScaleVec result = %v, want [1.5 2.5 3.5]", dst)
	}
	if got := InfNormVec(b); got != 6 {
		t.Errorf("InfNormVec = %v, want 6", got)
	}
	if got := L1Dist(a, []float64{0, 0, 0}); got != 6 {
		t.Errorf("L1Dist = %v, want 6", got)
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{1, 3}
	if sum := Normalize(v); sum != 4 {
		t.Errorf("Normalize returned %v, want 4", sum)
	}
	if v[0] != 0.25 || v[1] != 0.75 {
		t.Errorf("normalized = %v, want [0.25 0.75]", v)
	}
	zero := []float64{0, 0}
	if sum := Normalize(zero); sum != 0 {
		t.Errorf("Normalize of zero vector returned %v, want 0", sum)
	}
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("zero vector modified: %v", zero)
	}
}

func TestInfNormVecEmpty(t *testing.T) {
	if got := InfNormVec(nil); got != 0 {
		t.Errorf("InfNormVec(nil) = %v, want 0", got)
	}
}

// Property: Normalize makes any vector with a positive sum sum to 1.
func TestNormalizeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		v := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				v = append(v, math.Abs(x))
			}
		}
		if Sum(v) <= 0 || Sum(v) > 1e12 {
			return true // skip degenerate inputs
		}
		Normalize(v)
		return math.Abs(Sum(v)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}
