package sparse

import (
	"fmt"
	"math"
)

// CSR is an immutable compressed-sparse-row matrix. Construct one with
// COO.ToCSR. Row r's entries live at positions rowPtr[r]..rowPtr[r+1] of
// colIdx/values, with column indices strictly increasing within a row.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	values     []float64
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored (structurally non-zero) entries.
func (m *CSR) NNZ() int { return len(m.values) }

// At returns the value at (r, c) using a binary search within row r.
// It panics if (r, c) is out of range.
func (m *CSR) At(r, c int) float64 {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("sparse: CSR index (%d,%d) out of range %dx%d", r, c, m.rows, m.cols))
	}
	lo, hi := m.rowPtr[r], m.rowPtr[r+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case m.colIdx[mid] < c:
			lo = mid + 1
		case m.colIdx[mid] > c:
			hi = mid
		default:
			return m.values[mid]
		}
	}
	return 0
}

// Row calls fn(col, value) for every stored entry of row r in column order.
func (m *CSR) Row(r int, fn func(c int, v float64)) {
	for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
		fn(m.colIdx[i], m.values[i])
	}
}

// MulVec computes dst = m * x (matrix times column vector).
// dst must have length Rows and x length Cols; dst and x must not alias.
// It panics on a dimension mismatch.
func (m *CSR) MulVec(dst, x []float64) {
	if len(x) != m.cols || len(dst) != m.rows {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: m is %dx%d, len(x)=%d, len(dst)=%d",
			m.rows, m.cols, len(x), len(dst)))
	}
	for r := 0; r < m.rows; r++ {
		sum := 0.0
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			sum += m.values[i] * x[m.colIdx[i]]
		}
		dst[r] = sum
	}
}

// VecMul computes dst = x * m (row vector times matrix) — the orientation
// used for probability-vector propagation, where x is a distribution over
// states and m is a transition matrix.
// dst must have length Cols and x length Rows; dst and x must not alias.
// It panics on a dimension mismatch.
func (m *CSR) VecMul(dst, x []float64) {
	if len(x) != m.rows || len(dst) != m.cols {
		panic(fmt.Sprintf("sparse: VecMul dimension mismatch: m is %dx%d, len(x)=%d, len(dst)=%d",
			m.rows, m.cols, len(x), len(dst)))
	}
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m.rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			dst[m.colIdx[i]] += xr * m.values[i]
		}
	}
}

// Scale returns a new CSR holding s * m.
func (m *CSR) Scale(s float64) *CSR {
	out := &CSR{
		rows:   m.rows,
		cols:   m.cols,
		rowPtr: append([]int(nil), m.rowPtr...),
		colIdx: append([]int(nil), m.colIdx...),
		values: make([]float64, len(m.values)),
	}
	for i, v := range m.values {
		out.values[i] = s * v
	}
	return out
}

// Transpose returns the transpose of m as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		rows:   m.cols,
		cols:   m.rows,
		rowPtr: make([]int, m.cols+1),
		colIdx: make([]int, m.NNZ()),
		values: make([]float64, m.NNZ()),
	}
	for _, c := range m.colIdx {
		t.rowPtr[c+1]++
	}
	for c := 0; c < m.cols; c++ {
		t.rowPtr[c+1] += t.rowPtr[c]
	}
	next := append([]int(nil), t.rowPtr...)
	for r := 0; r < m.rows; r++ {
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			c := m.colIdx[i]
			t.colIdx[next[c]] = r
			t.values[next[c]] = m.values[i]
			next[c]++
		}
	}
	return t
}

// ToDense expands m into a dense matrix.
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.rows, m.cols)
	for r := 0; r < m.rows; r++ {
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			d.Set(r, m.colIdx[i], m.values[i])
		}
	}
	return d
}

// MaxAbsDiag returns max_i |m[i][i]|, the uniformization-rate lower bound
// for a CTMC generator. It returns 0 for a matrix with an all-zero diagonal.
func (m *CSR) MaxAbsDiag() float64 {
	maxAbs := 0.0
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	for r := 0; r < n; r++ {
		if v := math.Abs(m.At(r, r)); v > maxAbs {
			maxAbs = v
		}
	}
	return maxAbs
}

// InfNorm returns the infinity norm (max absolute row sum).
func (m *CSR) InfNorm() float64 {
	maxSum := 0.0
	for r := 0; r < m.rows; r++ {
		sum := 0.0
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			sum += math.Abs(m.values[i])
		}
		if sum > maxSum {
			maxSum = sum
		}
	}
	return maxSum
}
