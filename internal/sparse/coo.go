package sparse

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format sparse matrix builder. Entries may be added in
// any order; duplicate (row, col) entries are summed when the matrix is
// converted to CSR. The zero value is an empty 0x0 matrix; use NewCOO to set
// dimensions.
type COO struct {
	rows, cols int
	entries    []cooEntry
}

type cooEntry struct {
	row, col int
	val      float64
}

// NewCOO returns an empty rows x cols coordinate-format builder.
// It panics if either dimension is negative.
func NewCOO(rows, cols int) *COO {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: invalid COO dimensions %dx%d", rows, cols))
	}
	return &COO{rows: rows, cols: cols}
}

// Rows returns the number of rows.
func (m *COO) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *COO) Cols() int { return m.cols }

// NNZ returns the number of stored entries, counting duplicates separately.
func (m *COO) NNZ() int { return len(m.entries) }

// Add accumulates v at position (r, c). Adding an exact zero is a no-op so
// that generator assembly loops need not special-case zero rates. It panics
// if (r, c) is out of range.
func (m *COO) Add(r, c int, v float64) {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("sparse: COO index (%d,%d) out of range %dx%d", r, c, m.rows, m.cols))
	}
	if v == 0 {
		return
	}
	m.entries = append(m.entries, cooEntry{row: r, col: c, val: v})
}

// ToCSR converts the builder to compressed sparse row form, summing
// duplicate entries and dropping entries that cancel to exactly zero.
func (m *COO) ToCSR() *CSR {
	entries := make([]cooEntry, len(m.entries))
	copy(entries, m.entries)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].row != entries[j].row {
			return entries[i].row < entries[j].row
		}
		return entries[i].col < entries[j].col
	})

	// Coalesce duplicates in place.
	out := entries[:0]
	for _, e := range entries {
		if n := len(out); n > 0 && out[n-1].row == e.row && out[n-1].col == e.col {
			out[n-1].val += e.val
			continue
		}
		out = append(out, e)
	}
	// Drop exact zeros produced by cancellation.
	kept := out[:0]
	for _, e := range out {
		if e.val != 0 {
			kept = append(kept, e)
		}
	}

	csr := &CSR{
		rows:   m.rows,
		cols:   m.cols,
		rowPtr: make([]int, m.rows+1),
		colIdx: make([]int, len(kept)),
		values: make([]float64, len(kept)),
	}
	for i, e := range kept {
		csr.rowPtr[e.row+1]++
		csr.colIdx[i] = e.col
		csr.values[i] = e.val
	}
	for r := 0; r < m.rows; r++ {
		csr.rowPtr[r+1] += csr.rowPtr[r]
	}
	return csr
}

// ToDense converts the builder to a dense matrix, summing duplicates.
func (m *COO) ToDense() *Dense {
	d := NewDense(m.rows, m.cols)
	for _, e := range m.entries {
		d.Set(e.row, e.col, d.At(e.row, e.col)+e.val)
	}
	return d
}
