package sparse

import (
	"errors"
	"fmt"
	"math"

	"guardedop/internal/robust"
)

// ErrSingular is returned when a matrix factorisation encounters a pivot
// that is exactly zero (or numerically indistinguishable from it).
var ErrSingular = errors.New("sparse: matrix is singular to working precision")

// solveBackwardErrorTol bounds the acceptable componentwise-normalised
// backward error ‖Ax−b‖∞ / (‖A‖∞‖x‖∞ + ‖b‖∞) of a solve after one round
// of iterative refinement. LU with partial pivoting normally achieves a
// few n·ε; a refined residual above this tolerance means the answer is
// numerical garbage, not just slightly inaccurate.
const solveBackwardErrorTol = 1e-8

// refineTriggerTol is the backward error above which Solve attempts one
// round of iterative refinement before judging the solution.
const refineTriggerTol = 1e-13

// LU holds an LU factorisation with partial pivoting of a square matrix:
// P*A = L*U, stored compactly in a single matrix with the permutation in
// piv. The original matrix is retained for residual checks and iterative
// refinement; callers must not mutate it while the factorisation is in use.
type LU struct {
	lu       *Dense
	piv      []int
	n        int
	a        *Dense  // the factored matrix, for residuals and refinement
	normInfA float64 // ‖A‖∞, cached at factorisation time
}

// FactorLU computes the LU factorisation with partial pivoting of the square
// matrix a. The input is not modified, but the factorisation keeps a
// reference to it for residual checks — do not mutate a afterwards. A zero
// pivot yields an error wrapping ErrSingular that names the offending
// column.
func FactorLU(a *Dense) (*LU, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("sparse: FactorLU needs a square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	n := a.Rows()
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot: find the largest magnitude entry in column k at or
		// below the diagonal.
		p, maxAbs := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxAbs {
				p, maxAbs = i, v
			}
		}
		if maxAbs == 0 {
			return nil, fmt.Errorf("sparse: zero pivot in column %d: %w", k, ErrSingular)
		}
		if p != k {
			rp, rk := lu.RowSlice(p), lu.RowSlice(k)
			for j := range rp {
				rp[j], rk[j] = rk[j], rp[j]
			}
			piv[p], piv[k] = piv[k], piv[p]
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.RowSlice(i), lu.RowSlice(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, n: n, a: a, normInfA: a.InfNorm()}, nil
}

// solveRaw runs the permuted forward/back substitution without any
// post-solve guards. It is the kernel shared by Solve, the refinement
// step, and the condition estimator.
func (f *LU) solveRaw(b []float64) ([]float64, error) {
	x := make([]float64, f.n)
	// Apply permutation.
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < f.n; i++ {
		row := f.lu.RowSlice(i)
		sum := x[i]
		for j := 0; j < i; j++ {
			sum -= row[j] * x[j]
		}
		x[i] = sum
	}
	// Back substitution with upper triangle.
	for i := f.n - 1; i >= 0; i-- {
		row := f.lu.RowSlice(i)
		sum := x[i]
		for j := i + 1; j < f.n; j++ {
			sum -= row[j] * x[j]
		}
		if row[i] == 0 {
			return nil, fmt.Errorf("sparse: zero pivot in column %d: %w", i, ErrSingular)
		}
		x[i] = sum / row[i]
	}
	return x, nil
}

// Residual returns the ∞-norm residual ‖Ax−b‖∞ of a candidate solution.
func (f *LU) Residual(x, b []float64) float64 {
	r := 0.0
	for i := 0; i < f.n; i++ {
		row := f.a.RowSlice(i)
		sum := -b[i]
		for j, v := range row {
			sum += v * x[j]
		}
		if a := math.Abs(sum); a > r {
			r = a
		}
	}
	return r
}

// backwardError normalises a residual into the componentwise backward
// error ‖Ax−b‖∞ / (‖A‖∞‖x‖∞ + ‖b‖∞). A zero denominator (b = 0, x = 0)
// means an exact solve: the error is zero.
func (f *LU) backwardError(x, b []float64) float64 {
	denom := f.normInfA*InfNormVec(x) + InfNormVec(b)
	if denom == 0 {
		return 0
	}
	return f.Residual(x, b) / denom
}

// Solve solves A*x = b and returns x. b is not modified.
//
// The solution is guarded: it must be finite (robust.ErrNonFinite
// otherwise), and its backward error ‖Ax−b‖∞/(‖A‖∞‖x‖∞+‖b‖∞) must fall
// under tolerance after at most one round of iterative refinement —
// a refined residual still above tolerance yields an error wrapping
// robust.ErrIllConditioned.
func (f *LU) Solve(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("sparse: LU.Solve dimension mismatch: n=%d, len(b)=%d", f.n, len(b))
	}
	if err := robust.CheckFiniteSlice("b", b); err != nil {
		return nil, fmt.Errorf("sparse: LU.Solve rhs: %w", err)
	}
	x, err := f.solveRaw(b)
	if err != nil {
		return nil, err
	}
	if err := robust.CheckFiniteSlice("x", x); err != nil {
		return nil, fmt.Errorf("sparse: LU.Solve solution: %w", err)
	}
	be := f.backwardError(x, b)
	if be <= refineTriggerTol {
		return x, nil
	}
	// One round of iterative refinement: solve A·d = b − Ax and correct.
	r := make([]float64, f.n)
	for i := 0; i < f.n; i++ {
		row := f.a.RowSlice(i)
		sum := b[i]
		for j, v := range row {
			sum -= v * x[j]
		}
		r[i] = sum
	}
	if d, derr := f.solveRaw(r); derr == nil {
		refined := make([]float64, f.n)
		copy(refined, x)
		for i := range refined {
			refined[i] += d[i]
		}
		if robust.CheckFiniteSlice("x", refined) == nil {
			if rbe := f.backwardError(refined, b); rbe < be {
				x, be = refined, rbe
			}
		}
	}
	if be > solveBackwardErrorTol {
		return nil, fmt.Errorf(
			"sparse: LU.Solve backward error %.3g exceeds %.3g after refinement (cond est %.3g): %w",
			be, solveBackwardErrorTol, f.CondEst(), robust.ErrIllConditioned)
	}
	return x, nil
}

// SolveMatrix solves A*X = B column by column and returns X.
func (f *LU) SolveMatrix(b *Dense) (*Dense, error) {
	if b.Rows() != f.n {
		return nil, fmt.Errorf("sparse: LU.SolveMatrix dimension mismatch: n=%d, B is %dx%d", f.n, b.Rows(), b.Cols())
	}
	out := NewDense(f.n, b.Cols())
	col := make([]float64, f.n)
	for c := 0; c < b.Cols(); c++ {
		for r := 0; r < f.n; r++ {
			col[r] = b.At(r, c)
		}
		x, err := f.Solve(col)
		if err != nil {
			return nil, fmt.Errorf("sparse: LU.SolveMatrix column %d: %w", c, err)
		}
		for r := 0; r < f.n; r++ {
			out.Set(r, c, x[r])
		}
	}
	return out, nil
}

// CondEst returns a cheap lower-bound estimate of the ∞-norm condition
// number κ∞(A) = ‖A‖∞·‖A⁻¹‖∞. ‖A⁻¹‖∞ is bounded from below by probing
// the factorisation with a handful of right-hand sides (the all-ones
// vector, an alternating-sign vector, and the unit vector aimed at the
// smallest pivot) and taking max ‖A⁻¹b‖∞/‖b‖∞. The estimate costs three
// triangular solves — O(n²) against the O(n³) factorisation — and is
// within a small factor of the true κ∞ for the matrices this toolkit
// produces. A singular factorisation probe yields +Inf.
func (f *LU) CondEst() float64 {
	if f.n == 0 {
		return 0
	}
	// Locate the smallest-magnitude pivot: the column where the system is
	// closest to singular.
	minPiv, minIdx := math.Abs(f.lu.At(0, 0)), 0
	for i := 1; i < f.n; i++ {
		if v := math.Abs(f.lu.At(i, i)); v < minPiv {
			minPiv, minIdx = v, i
		}
	}
	probes := make([][]float64, 0, 3)
	ones := make([]float64, f.n)
	alt := make([]float64, f.n)
	for i := range ones {
		ones[i] = 1
		if i%2 == 0 {
			alt[i] = 1
		} else {
			alt[i] = -1
		}
	}
	unit := make([]float64, f.n)
	unit[minIdx] = 1
	probes = append(probes, ones, alt, unit)

	invNorm := 0.0
	for _, b := range probes {
		x, err := f.solveRaw(b)
		if err != nil {
			return math.Inf(1)
		}
		if g := InfNormVec(x) / InfNormVec(b); g > invNorm {
			invNorm = g
		}
	}
	return f.normInfA * invNorm
}

// SolveDense is a convenience wrapper that factors a and solves a*x = b.
func SolveDense(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
