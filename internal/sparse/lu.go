package sparse

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a matrix factorisation encounters a pivot
// that is exactly zero (or numerically indistinguishable from it).
var ErrSingular = errors.New("sparse: matrix is singular to working precision")

// LU holds an LU factorisation with partial pivoting of a square matrix:
// P*A = L*U, stored compactly in a single matrix with the permutation in piv.
type LU struct {
	lu  *Dense
	piv []int
	n   int
}

// FactorLU computes the LU factorisation with partial pivoting of the square
// matrix a. The input is not modified.
func FactorLU(a *Dense) (*LU, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("sparse: FactorLU needs a square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	n := a.Rows()
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot: find the largest magnitude entry in column k at or
		// below the diagonal.
		p, maxAbs := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxAbs {
				p, maxAbs = i, v
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rp, rk := lu.RowSlice(p), lu.RowSlice(k)
			for j := range rp {
				rp[j], rk[j] = rk[j], rp[j]
			}
			piv[p], piv[k] = piv[k], piv[p]
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.RowSlice(i), lu.RowSlice(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, n: n}, nil
}

// Solve solves A*x = b and returns x. b is not modified.
func (f *LU) Solve(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("sparse: LU.Solve dimension mismatch: n=%d, len(b)=%d", f.n, len(b))
	}
	x := make([]float64, f.n)
	// Apply permutation.
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < f.n; i++ {
		row := f.lu.RowSlice(i)
		sum := x[i]
		for j := 0; j < i; j++ {
			sum -= row[j] * x[j]
		}
		x[i] = sum
	}
	// Back substitution with upper triangle.
	for i := f.n - 1; i >= 0; i-- {
		row := f.lu.RowSlice(i)
		sum := x[i]
		for j := i + 1; j < f.n; j++ {
			sum -= row[j] * x[j]
		}
		if row[i] == 0 {
			return nil, ErrSingular
		}
		x[i] = sum / row[i]
	}
	return x, nil
}

// SolveMatrix solves A*X = B column by column and returns X.
func (f *LU) SolveMatrix(b *Dense) (*Dense, error) {
	if b.Rows() != f.n {
		return nil, fmt.Errorf("sparse: LU.SolveMatrix dimension mismatch: n=%d, B is %dx%d", f.n, b.Rows(), b.Cols())
	}
	out := NewDense(f.n, b.Cols())
	col := make([]float64, f.n)
	for c := 0; c < b.Cols(); c++ {
		for r := 0; r < f.n; r++ {
			col[r] = b.At(r, c)
		}
		x, err := f.Solve(col)
		if err != nil {
			return nil, err
		}
		for r := 0; r < f.n; r++ {
			out.Set(r, c, x[r])
		}
	}
	return out, nil
}

// SolveDense is a convenience wrapper that factors a and solves a*x = b.
func SolveDense(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
