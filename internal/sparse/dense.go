package sparse

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed rows x cols dense matrix. It panics if either
// dimension is negative.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: invalid Dense dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the value at (r, c).
func (m *Dense) At(r, c int) float64 { return m.data[r*m.cols+c] }

// Set stores v at (r, c).
func (m *Dense) Set(r, c int, v float64) { m.data[r*m.cols+c] = v }

// RowSlice returns the backing slice for row r. Mutations write through.
func (m *Dense) RowSlice(r int) []float64 { return m.data[r*m.cols : (r+1)*m.cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Mul returns the matrix product m * other. It panics on a dimension
// mismatch.
func (m *Dense) Mul(other *Dense) *Dense {
	if m.cols != other.rows {
		panic(fmt.Sprintf("sparse: Mul dimension mismatch %dx%d * %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
	out := NewDense(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*other.cols : (i+1)*other.cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			axpy(oi, mik, other.data[k*other.cols:(k+1)*other.cols])
		}
	}
	return out
}

// MulVec computes dst = m * x. dst and x must not alias. It panics on a
// dimension mismatch.
func (m *Dense) MulVec(dst, x []float64) {
	if len(x) != m.cols || len(dst) != m.rows {
		panic(fmt.Sprintf("sparse: Dense.MulVec dimension mismatch: m is %dx%d, len(x)=%d, len(dst)=%d",
			m.rows, m.cols, len(x), len(dst)))
	}
	for r := 0; r < m.rows; r++ {
		row := m.RowSlice(r)
		sum := 0.0
		for c, v := range row {
			sum += v * x[c]
		}
		dst[r] = sum
	}
}

// VecMul computes dst = x * m (row vector times matrix). No aliasing.
// It panics on a dimension mismatch.
func (m *Dense) VecMul(dst, x []float64) {
	if len(x) != m.rows || len(dst) != m.cols {
		panic(fmt.Sprintf("sparse: Dense.VecMul dimension mismatch: m is %dx%d, len(x)=%d, len(dst)=%d",
			m.rows, m.cols, len(x), len(dst)))
	}
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m.rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		axpy(dst, xr, m.RowSlice(r))
	}
}

// Add returns m + other. It panics on a dimension mismatch.
func (m *Dense) Add(other *Dense) *Dense {
	if m.rows != other.rows || m.cols != other.cols {
		panic("sparse: Add dimension mismatch")
	}
	out := m.Clone()
	for i, v := range other.data {
		out.data[i] += v
	}
	return out
}

// Scale returns s * m as a new matrix.
func (m *Dense) Scale(s float64) *Dense {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// InfNorm returns the infinity norm (max absolute row sum).
func (m *Dense) InfNorm() float64 {
	maxSum := 0.0
	for r := 0; r < m.rows; r++ {
		sum := 0.0
		for _, v := range m.RowSlice(r) {
			sum += math.Abs(v)
		}
		if sum > maxSum {
			maxSum = sum
		}
	}
	return maxSum
}
