package sparse

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"guardedop/internal/robust"
)

func TestLUSolveKnownSystem(t *testing.T) {
	// A = [[2,1],[1,3]], b = [5, 10] -> x = [1, 3]
	a := NewDense(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveDense(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	_, err := SolveDense(a, []float64{1, 2})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := FactorLU(NewDense(2, 3)); err == nil {
		t.Fatal("FactorLU on non-square matrix returned nil error")
	}
}

func TestLUSolveDimensionMismatch(t *testing.T) {
	f, err := FactorLU(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Fatal("Solve with wrong-length b returned nil error")
	}
}

// Property: for random well-conditioned-ish systems, A * Solve(A, b) == b.
func TestLUResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		a := NewDense(n, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				a.Set(r, c, rng.NormFloat64())
			}
			// Diagonal boost keeps the matrix comfortably non-singular.
			a.Set(r, r, a.At(r, r)+float64(n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveDense(a, b)
		if err != nil {
			return false
		}
		res := make([]float64, n)
		a.MulVec(res, x)
		for i := range res {
			if math.Abs(res[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveMatrixIdentityGivesInverse(t *testing.T) {
	a := NewDense(3, 3)
	vals := [][]float64{{4, 1, 0}, {1, 3, 1}, {0, 1, 2}}
	for r := range vals {
		for c := range vals[r] {
			a.Set(r, c, vals[r][c])
		}
	}
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := f.SolveMatrix(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := 0.0
			if r == c {
				want = 1
			}
			if math.Abs(prod.At(r, c)-want) > 1e-10 {
				t.Fatalf("A*inv(A) at (%d,%d) = %v, want %v", r, c, prod.At(r, c), want)
			}
		}
	}
}

func TestLUSingularNamesPivotColumn(t *testing.T) {
	// Columns 0 and 1 are independent; column 2 is a copy of column 1, so
	// elimination hits the zero pivot in column 2.
	a := NewDense(3, 3)
	vals := [][]float64{{1, 2, 2}, {0, 3, 3}, {0, 5, 5}}
	for r := range vals {
		for c := range vals[r] {
			a.Set(r, c, vals[r][c])
		}
	}
	_, err := FactorLU(a)
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	if !strings.Contains(err.Error(), "column 2") {
		t.Errorf("singular error %q does not name pivot column 2", err)
	}
}

func TestLUCondEstIdentity(t *testing.T) {
	f, err := FactorLU(Identity(8))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.CondEst(); got < 1 || got > 2 {
		t.Errorf("CondEst(I) = %g, want ~1", got)
	}
}

// hilbert returns the notoriously ill-conditioned Hilbert matrix.
func hilbert(n int) *Dense {
	a := NewDense(n, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			a.Set(r, c, 1/float64(r+c+1))
		}
	}
	return a
}

func TestLUCondEstGrowsWithIllConditioning(t *testing.T) {
	f4, err := FactorLU(hilbert(4))
	if err != nil {
		t.Fatal(err)
	}
	f10, err := FactorLU(hilbert(10))
	if err != nil {
		t.Fatal(err)
	}
	c4, c10 := f4.CondEst(), f10.CondEst()
	// True kappa_inf: H4 ~ 2.8e4, H10 ~ 3.5e13. The probe estimate is a
	// lower bound; requiring orders of magnitude keeps the test honest
	// without over-pinning it.
	if c4 < 1e3 {
		t.Errorf("CondEst(H4) = %g, want > 1e3", c4)
	}
	if c10 < 1e9 {
		t.Errorf("CondEst(H10) = %g, want > 1e9", c10)
	}
	if c10 < 1e4*c4 {
		t.Errorf("CondEst did not grow with ill-conditioning: H4 %g vs H10 %g", c4, c10)
	}
}

func TestLUSolveRejectsNonFiniteRHS(t *testing.T) {
	f, err := FactorLU(Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.Solve([]float64{1, math.NaN()})
	if !errors.Is(err, robust.ErrNonFinite) {
		t.Fatalf("NaN rhs: err = %v, want ErrNonFinite", err)
	}
}

func TestLUSolveRejectsOverflowingSolution(t *testing.T) {
	// A tiny diagonal entry drives the solution past MaxFloat64.
	a := NewDense(2, 2)
	a.Set(0, 0, 5e-324)
	a.Set(1, 1, 1)
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.Solve([]float64{1e300, 1})
	if !errors.Is(err, robust.ErrNonFinite) {
		t.Fatalf("overflowing solve: err = %v, want ErrNonFinite", err)
	}
}

func TestLUSolveIllConditionedResidual(t *testing.T) {
	// White-box: point the factorisation's residual matrix at a different
	// matrix than the one factored, so Ax-b is genuinely large. This is
	// the stand-in for a factorisation corrupted by rounding: the residual
	// guard, not the factorisation, must catch it.
	good := NewDense(2, 2)
	good.Set(0, 0, 1)
	good.Set(1, 1, 1)
	f, err := FactorLU(good)
	if err != nil {
		t.Fatal(err)
	}
	other := NewDense(2, 2)
	other.Set(0, 0, 3)
	other.Set(0, 1, 1)
	other.Set(1, 0, 1)
	other.Set(1, 1, 4)
	f.a = other
	f.normInfA = other.InfNorm()
	_, err = f.Solve([]float64{1, 2})
	if !errors.Is(err, robust.ErrIllConditioned) {
		t.Fatalf("bad-residual solve: err = %v, want ErrIllConditioned", err)
	}
}

func TestLUResidualExactSolution(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 2)
	a.Set(1, 1, 4)
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if r := f.Residual([]float64{3, 0.5}, []float64{6, 2}); r != 0 {
		t.Errorf("Residual(exact) = %g, want 0", r)
	}
	if r := f.Residual([]float64{3, 0.5}, []float64{6, 3}); r != 1 {
		t.Errorf("Residual(off-by-one) = %g, want 1", r)
	}
}

func TestLUSolveHilbertRefined(t *testing.T) {
	// Hilbert(8) is ill-conditioned (~1e10) but still solvable in double
	// precision with a small backward error; the guard must NOT fire, and
	// refinement should deliver a tiny residual.
	n := 8
	h := hilbert(n)
	want := make([]float64, n)
	for i := range want {
		want[i] = 1
	}
	b := make([]float64, n)
	h.MulVec(b, want)
	f, err := FactorLU(h)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatalf("Hilbert(8) solve rejected: %v", err)
	}
	if be := f.backwardError(x, b); be > 1e-10 {
		t.Errorf("backward error after refinement = %g", be)
	}
}
