package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveKnownSystem(t *testing.T) {
	// A = [[2,1],[1,3]], b = [5, 10] -> x = [1, 3]
	a := NewDense(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveDense(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	_, err := SolveDense(a, []float64{1, 2})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := FactorLU(NewDense(2, 3)); err == nil {
		t.Fatal("FactorLU on non-square matrix returned nil error")
	}
}

func TestLUSolveDimensionMismatch(t *testing.T) {
	f, err := FactorLU(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Fatal("Solve with wrong-length b returned nil error")
	}
}

// Property: for random well-conditioned-ish systems, A * Solve(A, b) == b.
func TestLUResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		a := NewDense(n, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				a.Set(r, c, rng.NormFloat64())
			}
			// Diagonal boost keeps the matrix comfortably non-singular.
			a.Set(r, r, a.At(r, r)+float64(n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveDense(a, b)
		if err != nil {
			return false
		}
		res := make([]float64, n)
		a.MulVec(res, x)
		for i := range res {
			if math.Abs(res[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveMatrixIdentityGivesInverse(t *testing.T) {
	a := NewDense(3, 3)
	vals := [][]float64{{4, 1, 0}, {1, 3, 1}, {0, 1, 2}}
	for r := range vals {
		for c := range vals[r] {
			a.Set(r, c, vals[r][c])
		}
	}
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := f.SolveMatrix(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := 0.0
			if r == c {
				want = 1
			}
			if math.Abs(prod.At(r, c)-want) > 1e-10 {
				t.Fatalf("A*inv(A) at (%d,%d) = %v, want %v", r, c, prod.At(r, c), want)
			}
		}
	}
}
