package sparse

import "math"

// Dot returns the inner product of a and b. The slices must have equal
// length; it panics otherwise.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sparse: Dot length mismatch")
	}
	sum := 0.0
	for i, v := range a {
		sum += v * b[i]
	}
	return sum
}

// Sum returns the sum of the elements of v.
func Sum(v []float64) float64 {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	return sum
}

// Axpy computes dst[i] += alpha * x[i] for all i. It panics on a length
// mismatch.
func Axpy(dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic("sparse: Axpy length mismatch")
	}
	axpy(dst, alpha, x)
}

// axpy is the shared dst[i] += alpha*x[i] kernel behind Axpy, Dense.Mul
// and Dense.VecMul. The 4-way unroll keeps the updates elementwise —
// bit-identical to the scalar loop — while cutting loop overhead and
// exposing four independent add chains; it is the hottest loop of the
// dense expm path. Callers guarantee len(dst) >= len(x).
func axpy(dst []float64, alpha float64, x []float64) {
	dst = dst[:len(x)]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		dst[i] += alpha * x0
		dst[i+1] += alpha * x1
		dst[i+2] += alpha * x2
		dst[i+3] += alpha * x3
	}
	for ; i < len(x); i++ {
		dst[i] += alpha * x[i]
	}
}

// ScaleVec multiplies every element of v by s in place.
func ScaleVec(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// InfNormVec returns max_i |v[i]|, or 0 for an empty slice.
func InfNormVec(v []float64) float64 {
	maxAbs := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	return maxAbs
}

// L1Dist returns the L1 distance between a and b. It panics on a length
// mismatch.
func L1Dist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sparse: L1Dist length mismatch")
	}
	sum := 0.0
	for i, v := range a {
		sum += math.Abs(v - b[i])
	}
	return sum
}

// Normalize scales v in place so its elements sum to 1 and returns the
// original sum. If the sum is zero the vector is left unchanged.
func Normalize(v []float64) float64 {
	sum := Sum(v)
	if sum != 0 {
		ScaleVec(v, 1/sum)
	}
	return sum
}
