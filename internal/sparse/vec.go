package sparse

import "math"

// Dot returns the inner product of a and b. The slices must have equal
// length; it panics otherwise.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sparse: Dot length mismatch")
	}
	sum := 0.0
	for i, v := range a {
		sum += v * b[i]
	}
	return sum
}

// Sum returns the sum of the elements of v.
func Sum(v []float64) float64 {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	return sum
}

// Axpy computes dst[i] += alpha * x[i] for all i. It panics on a length
// mismatch.
func Axpy(dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic("sparse: Axpy length mismatch")
	}
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// ScaleVec multiplies every element of v by s in place.
func ScaleVec(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// InfNormVec returns max_i |v[i]|, or 0 for an empty slice.
func InfNormVec(v []float64) float64 {
	maxAbs := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	return maxAbs
}

// L1Dist returns the L1 distance between a and b. It panics on a length
// mismatch.
func L1Dist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sparse: L1Dist length mismatch")
	}
	sum := 0.0
	for i, v := range a {
		sum += math.Abs(v - b[i])
	}
	return sum
}

// Normalize scales v in place so its elements sum to 1 and returns the
// original sum. If the sum is zero the vector is left unchanged.
func Normalize(v []float64) float64 {
	sum := Sum(v)
	if sum != 0 {
		ScaleVec(v, 1/sum)
	}
	return sum
}
