package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"guardedop/internal/obs"
)

// testCache builds a cache wired to a fresh tracer, returning both plus
// a traced context and a settable clock.
func testCache(cfg CacheConfig) (*Cache[int], *obs.Tracer, context.Context, *time.Time) {
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	c := NewCache[int](cfg, obs.CtrServeCacheHits, obs.CtrServeCacheMisses, obs.CtrServeCacheEvictions, obs.CtrServeCacheExpired)
	now := time.Unix(1_700_000_000, 0)
	clock := &now
	c.now = func() time.Time { return *clock }
	return c, tr, ctx, clock
}

func TestCacheHitMissCounters(t *testing.T) {
	t.Parallel()
	c, tr, ctx, _ := testCache(CacheConfig{Shards: 2, Capacity: 8})
	if _, ok := c.Get(ctx, "a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(ctx, "a", 1)
	v, ok := c.Get(ctx, "a")
	if !ok || v != 1 {
		t.Fatalf("Get(a) = (%d, %v), want (1, true)", v, ok)
	}
	ctrs := tr.Counters()
	if ctrs[obs.CtrServeCacheHits] != 1 || ctrs[obs.CtrServeCacheMisses] != 1 {
		t.Errorf("counters = hits %d misses %d, want 1/1", ctrs[obs.CtrServeCacheHits], ctrs[obs.CtrServeCacheMisses])
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	t.Parallel()
	c, tr, ctx, clock := testCache(CacheConfig{Shards: 1, Capacity: 8, TTL: time.Minute})
	c.Put(ctx, "a", 1)
	*clock = clock.Add(59 * time.Second)
	if _, ok := c.Get(ctx, "a"); !ok {
		t.Fatal("entry expired before its TTL")
	}
	*clock = clock.Add(2 * time.Second) // 61s from insertion
	if _, ok := c.Get(ctx, "a"); ok {
		t.Fatal("entry survived past its TTL")
	}
	if c.Len() != 0 {
		t.Errorf("expired entry still resident: Len() = %d", c.Len())
	}
	ctrs := tr.Counters()
	if ctrs[obs.CtrServeCacheExpired] != 1 {
		t.Errorf("expired counter = %d, want 1", ctrs[obs.CtrServeCacheExpired])
	}
	// TTL runs from insertion, not last touch: a popular entry still dies.
	c.Put(ctx, "b", 2)
	for i := 0; i < 5; i++ {
		*clock = clock.Add(20 * time.Second)
		_, ok := c.Get(ctx, "b")
		if want := (i+1)*20 <= 60; ok != want {
			t.Fatalf("%ds after insertion: Get(b) ok=%v, want %v", (i+1)*20, ok, want)
		}
	}
}

func TestCacheLRUEviction(t *testing.T) {
	t.Parallel()
	c, tr, ctx, _ := testCache(CacheConfig{Shards: 1, Capacity: 3, TTL: time.Hour})
	for i := 0; i < 3; i++ {
		c.Put(ctx, fmt.Sprintf("k%d", i), i)
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := c.Get(ctx, "k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.Put(ctx, "k3", 3)
	if _, ok := c.Get(ctx, "k1"); ok {
		t.Error("LRU victim k1 still cached")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(ctx, k); !ok {
			t.Errorf("%s evicted, want resident", k)
		}
	}
	if got := tr.Counters()[obs.CtrServeCacheEvictions]; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if c.Len() != 3 {
		t.Errorf("Len() = %d, want 3", c.Len())
	}
}

func TestCachePutRefreshes(t *testing.T) {
	t.Parallel()
	c, _, ctx, clock := testCache(CacheConfig{Shards: 1, Capacity: 4, TTL: time.Minute})
	c.Put(ctx, "a", 1)
	*clock = clock.Add(50 * time.Second)
	c.Put(ctx, "a", 2) // refresh restarts the TTL
	*clock = clock.Add(30 * time.Second)
	v, ok := c.Get(ctx, "a")
	if !ok || v != 2 {
		t.Fatalf("refreshed Get(a) = (%d, %v), want (2, true)", v, ok)
	}
	if c.Len() != 1 {
		t.Errorf("refresh duplicated the entry: Len() = %d", c.Len())
	}
}

// TestCacheShardedConcurrency hammers a multi-shard cache from many
// goroutines; run under -race it proves the sharded locking sound, and
// the final accounting proves no operations were lost.
func TestCacheShardedConcurrency(t *testing.T) {
	t.Parallel()
	c, tr, ctx, _ := testCache(CacheConfig{Shards: 4, Capacity: 32, TTL: time.Hour})
	const workers, ops, keys = 8, 500, 48
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := fmt.Sprintf("k%d", (w+i)%keys)
				if v, ok := c.Get(ctx, k); ok {
					if want := (w + i) % keys; v != want {
						t.Errorf("Get(%s) = %d, want %d", k, v, want)
					}
				} else {
					c.Put(ctx, k, (w+i)%keys)
				}
			}
		}(w)
	}
	wg.Wait()
	ctrs := tr.Counters()
	total := ctrs[obs.CtrServeCacheHits] + ctrs[obs.CtrServeCacheMisses]
	if total != workers*ops {
		t.Errorf("hits+misses = %d, want %d", total, workers*ops)
	}
	if c.Len() > 32 {
		t.Errorf("Len() = %d exceeds capacity 32", c.Len())
	}
}
