package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"

	"guardedop/internal/obs"
	"guardedop/internal/template"
)

// specBody wraps a template spec as a /v1/scenario/curve request body.
func specBody(t *testing.T, spec *template.Spec, extra string) string {
	t.Helper()
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshaling spec: %v", err)
	}
	if extra != "" {
		extra = "," + extra
	}
	return fmt.Sprintf(`{"spec":%s%s}`, raw, extra)
}

// TestScenarioCurveHappyPath serves the canonical templated scenario and
// checks the realized-scenario summary, the curve itself, and that both
// the scenario cache and the response cache make repeats cheap.
func TestScenarioCurveHappyPath(t *testing.T) {
	t.Parallel()
	tr := obs.NewTracer()
	s := New(Config{Tracer: tr})
	h := s.Handler()

	body := specBody(t, template.PaperSpec(), `"points":6`)
	rec := hit(h, http.MethodPost, "/v1/scenario/curve", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp scenarioCurveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	sc := resp.Scenario
	if sc.Name != "paper-baseline" || sc.Nodes != 2 || sc.Policy != string(template.PolicyGlobal) {
		t.Errorf("scenario summary = %+v, want the paper baseline", sc)
	}
	if sc.States == 0 || len(sc.Rhos) != 2 || sc.GpMeanField {
		t.Errorf("realized scenario = %+v, want generated states and 2 joint-solved rhos", sc)
	}
	if resp.Degraded || resp.PointsRequested != 7 || resp.PointsReturned != 7 {
		t.Fatalf("curve = %+v, want full undegraded 7-point sweep", resp.curveResponse)
	}
	for _, pt := range resp.Results {
		if !(pt.Y > 0) || math.IsNaN(pt.Y) {
			t.Fatalf("Y(φ=%g) = %g, want positive finite", pt.Phi, pt.Y)
		}
	}
	if got := tr.Counter(obs.CtrTemplateInstances); got != 1 {
		t.Errorf("template.instances = %d, want 1 build", got)
	}

	// The identical query replays from the response cache; a different
	// grid over the same spec reuses the built scenario (no second build).
	rec2 := hit(h, http.MethodPost, "/v1/scenario/curve", body)
	if rec2.Code != http.StatusOK || rec2.Header().Get("X-Cache") != "hit" {
		t.Fatalf("repeat query: status %d, X-Cache %q, want cached 200", rec2.Code, rec2.Header().Get("X-Cache"))
	}
	rec3 := hit(h, http.MethodPost, "/v1/scenario/curve", specBody(t, template.PaperSpec(), `"points":3`))
	if rec3.Code != http.StatusOK {
		t.Fatalf("regridded query: status %d, body %s", rec3.Code, rec3.Body.String())
	}
	if got := tr.Counter(obs.CtrTemplateInstances); got != 1 {
		t.Errorf("template.instances = %d after regrid, want the cached build reused", got)
	}
}

// TestScenarioCurveTooLarge is the oversized-spec contract: a scenario
// whose reachability exploration exceeds its state budget is refused
// with the typed statespace sentinel, which the robust taxonomy maps to
// 422 — an unprocessable model, not a malformed request or a 500.
func TestScenarioCurveTooLarge(t *testing.T) {
	t.Parallel()
	s := New(Config{})
	spec := template.PaperSpec()
	spec.Limits.MaxStates = 4
	rec := hit(s.Handler(), http.MethodPost, "/v1/scenario/curve", specBody(t, spec, ""))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (body %s)", rec.Code, rec.Body.String())
	}
	var env errEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("decoding envelope: %v", err)
	}
	if env.Class != "invariant" {
		t.Errorf("class = %q, want invariant", env.Class)
	}
	if !strings.Contains(env.Error, "state space too large") {
		t.Errorf("error %q does not name the state-space limit", env.Error)
	}
}

// TestScenarioCurveRejections: request-shaped problems are 400s, while a
// well-formed request carrying an invalid spec is a 422.
func TestScenarioCurveRejections(t *testing.T) {
	t.Parallel()
	s := New(Config{})
	h := s.Handler()
	for _, tc := range []struct {
		name, method, body string
		want               int
	}{
		{"GET unsupported", http.MethodGet, "", http.StatusBadRequest},
		{"missing spec", http.MethodPost, `{"points":4}`, http.StatusBadRequest},
		{"malformed body", http.MethodPost, `{`, http.StatusBadRequest},
		{"points out of range", http.MethodPost,
			specBody(t, template.PaperSpec(), fmt.Sprintf(`"points":%d`, maxCurvePoints+1)),
			http.StatusBadRequest},
		{"invalid spec contents", http.MethodPost,
			`{"spec":{"name":"x","theta":-1}}`, http.StatusUnprocessableEntity},
		{"single-node spec", http.MethodPost,
			`{"spec":{"name":"x","theta":100,"coverage":0.9,"alpha":1,"beta":1,"nodes":[{"name":"A"}]}}`,
			http.StatusUnprocessableEntity},
	} {
		rec := hit(h, tc.method, "/v1/scenario/curve", tc.body)
		if rec.Code != tc.want {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, rec.Code, tc.want, rec.Body.String())
		}
	}
}
