package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"guardedop/internal/core"
	"guardedop/internal/robust"
	"guardedop/internal/template"
)

// maxScenarioStates caps the generated state spaces of a served scenario.
// A spec may tighten the cap via its own limits but never loosen it: the
// daemon refuses to generate chains this path cannot solve inside a
// route budget, and the refusal surfaces as a typed
// statespace.ErrStateSpaceTooLarge (422), not an OOM.
const maxScenarioStates = 1 << 15

// ScenarioCurveRequest asks for the Y(φ) curve of a templated N-node
// scenario. The spec document is the internal/template JSON schema
// (docs/TEMPLATES.md); unlike the parameter routes there is no query
// form — a nested spec only travels as a POST body.
type ScenarioCurveRequest struct {
	Spec      json.RawMessage `json:"spec"`
	Points    int             `json:"points,omitempty"`
	TimeoutMS int             `json:"timeout_ms,omitempty"`
}

// scenarioJSON summarizes the built instance in the response, so a
// client can see how its spec was actually realized (state count, which
// overhead path solved ρ, the per-node values).
type scenarioJSON struct {
	Name        string    `json:"name"`
	Nodes       int       `json:"nodes"`
	Policy      string    `json:"policy"`
	States      int       `json:"states"`
	GpMeanField bool      `json:"gp_mean_field"`
	Rhos        []float64 `json:"rhos"`
}

// scenarioCurveResponse is the /v1/scenario/curve document: the curve
// payload plus the realized-scenario summary.
type scenarioCurveResponse struct {
	Scenario scenarioJSON `json:"scenario"`
	curveResponse
}

// scenarioEntry pairs a built instance with its analyzer — the cached
// unit, so repeat queries over one spec (different point counts, say)
// skip both state-space generation and the steady-state solves.
type scenarioEntry struct {
	inst *template.Instance
	ana  *core.Analyzer
}

// scenario returns the cached built scenario for spec, building on a
// miss. Same contract as Server.analyzer: concurrent misses may build
// twice, harmlessly, and entries are immutable.
func (s *Server) scenario(ctx context.Context, spec *template.Spec) (*scenarioEntry, error) {
	key := "scenario:" + spec.Hash()
	if e, ok := s.scenarios.Get(ctx, key); ok {
		return e, nil
	}
	inst, err := template.Build(ctx, spec)
	if err != nil {
		return nil, err
	}
	ana, err := core.NewScenarioAnalyzer(core.ScenarioModels{
		Params: inst.Params,
		Gd:     inst.Gd,
		NdNew:  inst.NdNew,
		NdOld:  inst.NdOld,
		Rhos:   inst.Rhos,
	}, core.Options{Parametric: s.cfg.parametricMode()})
	if err != nil {
		return nil, err
	}
	e := &scenarioEntry{inst: inst, ana: ana}
	s.scenarios.Put(ctx, key, e)
	return e, nil
}

// handleScenarioCurve serves the Y(φ) curve of one templated scenario.
func (s *Server) handleScenarioCurve(w http.ResponseWriter, r *http.Request) {
	var req ScenarioCurveRequest
	if err := decodeRequest(r, &req); err != nil {
		s.badRequest(w, r, err)
		return
	}
	if len(req.Spec) == 0 {
		s.badRequest(w, r, fmt.Errorf("missing scenario spec (docs/TEMPLATES.md describes the schema)"))
		return
	}
	spec, err := template.Parse(req.Spec)
	if err != nil {
		// Spec-level rejections are typed robust.ErrInvariant: the request
		// document was well-formed, its contents were not — 422 territory.
		s.writeError(w, r, err)
		return
	}
	if spec.Limits.MaxStates == 0 || spec.Limits.MaxStates > maxScenarioStates {
		spec.Limits.MaxStates = maxScenarioStates
	}
	points := req.Points
	if points == 0 {
		points = 20
	}
	if points < 1 || points > maxCurvePoints {
		s.badRequest(w, r, fmt.Errorf("points %d out of range [1, %d]", points, maxCurvePoints))
		return
	}
	key := scenarioKey(spec.Hash(), points)
	s.serveAPI(w, r, key, s.budget(req.TimeoutMS), func(ctx context.Context) *apiResult {
		return s.computeScenarioCurve(ctx, spec, points)
	})
}

// scenarioKey is the coalescing/cache key of one scenario-curve request:
// the spec's canonical hash (cap already applied) plus the grid size.
func scenarioKey(hash string, points int) string {
	var k keyBuf
	k.str("scenario-curve")
	k.str(hash)
	k.i64(int64(points))
	return k.String()
}

func (s *Server) computeScenarioCurve(ctx context.Context, spec *template.Spec, points int) *apiResult {
	e, err := s.scenario(ctx, spec)
	if err != nil {
		return errorResult(err)
	}
	grid := core.SweepGrid(e.inst.Params.Theta, points)
	pr, err := e.ana.CurvePartialWorkers(ctx, grid, s.cfg.Workers)
	degraded := false
	if err != nil {
		if errors.Is(err, robust.ErrCanceled) && pr != nil && pr.Report.Succeeded() > 0 {
			degraded = true
		} else {
			return errorResult(err)
		}
	}
	resp := scenarioCurveResponse{
		Scenario: scenarioJSON{
			Name:        spec.Name,
			Nodes:       len(spec.Nodes),
			Policy:      string(spec.Policy()),
			States:      e.inst.TotalStates,
			GpMeanField: e.inst.GpMeanField,
			Rhos:        e.inst.Rhos,
		},
		curveResponse: curveResponse{
			Params:          paramsOut(e.inst.Params),
			PointsRequested: len(grid),
			Degraded:        degraded,
			FailedPoints:    pr.Report.Failed(),
			Solves:          pr.Report.Metrics.Solves,
		},
	}
	for i, ok := range pr.OK {
		if ok {
			resp.Results = append(resp.Results, pointOut(pr.Results[i]))
		}
	}
	resp.PointsReturned = len(resp.Results)
	return jsonResult(resp, degraded, err == nil)
}
