package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"guardedop/internal/robust"
)

// ErrShed marks a request rejected by admission control: the concurrency
// slots are busy and the bounded wait queue is full. The HTTP layer maps
// it to 429 with a Retry-After header. It is deliberately outside the
// robust solver taxonomy — shedding is the server protecting itself, not
// a solve failing.
var ErrShed = errors.New("request shed: server saturated")

// Limiter is the server's admission control: at most MaxConcurrent
// requests solve at once, at most MaxQueue more wait for a slot, and
// everything beyond that is shed immediately with ErrShed instead of
// piling up unboundedly. Under saturation the daemon therefore keeps two
// promises: admitted work always runs to completion (a queued request is
// never evicted), and new work fails fast with an honest retry hint
// rather than hanging until its client gives up.
type Limiter struct {
	slots      chan struct{}
	queued     atomic.Int64
	maxQueue   int64
	active     atomic.Int64
	retryAfter time.Duration
}

// LimiterConfig bounds a Limiter.
type LimiterConfig struct {
	// MaxConcurrent is the number of requests solving at once (default 4).
	MaxConcurrent int
	// MaxQueue is how many admitted requests may wait for a slot beyond
	// the concurrent ones (default 2 × MaxConcurrent). Zero means the
	// default; negative means no queueing (immediate shed when busy).
	MaxQueue int
	// RetryAfter is the hint returned with shed responses (default 1s).
	RetryAfter time.Duration
}

// NewLimiter builds a Limiter.
func NewLimiter(cfg LimiterConfig) *Limiter {
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 4
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 2 * cfg.MaxConcurrent
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	return &Limiter{
		slots:      make(chan struct{}, cfg.MaxConcurrent),
		maxQueue:   int64(cfg.MaxQueue),
		retryAfter: cfg.RetryAfter,
	}
}

// Acquire admits the request or sheds it. On success the caller owns one
// concurrency slot and must call the returned release exactly once. On
// saturation it returns ErrShed without blocking; while queued, a caller
// whose context ends leaves the queue with robust.ErrCanceled.
func (l *Limiter) Acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot, no queueing.
	select {
	case l.slots <- struct{}{}:
		l.active.Add(1)
		return l.release, nil
	default:
	}
	// Slots busy: join the bounded queue or shed. The reservation is a
	// simple counter — FIFO fairness among queued waiters is delegated to
	// the runtime's channel wait queue, which is fair enough for a
	// shedding tier.
	if q := l.queued.Add(1); q > l.maxQueue {
		l.queued.Add(-1)
		return nil, ErrShed
	}
	defer l.queued.Add(-1)
	select {
	case l.slots <- struct{}{}:
		l.active.Add(1)
		return l.release, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: gave up waiting for a solve slot: %v", robust.ErrCanceled, ctx.Err())
	}
}

// release frees the caller's slot.
func (l *Limiter) release() {
	l.active.Add(-1)
	<-l.slots
}

// RetryAfter returns the shed-response retry hint.
func (l *Limiter) RetryAfter() time.Duration { return l.retryAfter }

// Active returns the number of requests currently holding a slot.
func (l *Limiter) Active() int64 { return l.active.Load() }

// Queued returns the number of requests currently waiting for a slot.
func (l *Limiter) Queued() int64 { return l.queued.Load() }
