package serve

import (
	"container/list"
	"context"
	"hash/maphash"
	"sync"
	"time"

	"guardedop/internal/obs"
)

// Cache is a sharded, process-wide cache with size and TTL bounds — the
// serving path's replacement for growing state per request: one instance
// holds the built analyzers (keyed by canonical parameter hash) and
// another holds whole marshaled responses (keyed by full request hash).
//
// Each shard is an independent LRU guarded by its own mutex, so lookups
// of different keys rarely contend; a key always maps to the same shard
// (seeded maphash). Entries expire TTL after insertion (not after last
// use: a result computed long ago is stale regardless of popularity) and
// the per-shard LRU bound caps total memory at shards × perShardCap
// entries. Hits, misses, expirations and evictions are reported to the
// obs counters carried by the lookup context.
//
// The cache never computes values itself — Get/Put only — so a miss's
// fill policy (coalesced solve, admission control) stays composable
// outside it.
type Cache[V any] struct {
	shards    []cacheShard[V]
	ttl       time.Duration
	perShard  int
	seed      maphash.Seed
	now       func() time.Time
	hitCtr    string
	missCtr   string
	evictCtr  string
	expireCtr string
}

// cacheShard is one independently locked LRU region.
type cacheShard[V any] struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

// cacheEntry is one cached value with its expiry instant.
type cacheEntry[V any] struct {
	key     string
	val     V
	expires time.Time
}

// CacheConfig bounds a Cache.
type CacheConfig struct {
	// Shards is the number of independently locked regions (default 8,
	// rounded up to at least 1).
	Shards int
	// Capacity bounds the total entry count across all shards (default
	// 256; at least one entry per shard).
	Capacity int
	// TTL is the entry lifetime from insertion (default 5m).
	TTL time.Duration
}

// NewCache builds a sharded cache. The counter names identify this cache
// in the obs vocabulary (hits, misses, evictions, expirations).
func NewCache[V any](cfg CacheConfig, hitCtr, missCtr, evictCtr, expireCtr string) *Cache[V] {
	if cfg.Shards < 1 {
		cfg.Shards = 8
	}
	if cfg.Capacity < 1 {
		cfg.Capacity = 256
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 5 * time.Minute
	}
	perShard := (cfg.Capacity + cfg.Shards - 1) / cfg.Shards
	c := &Cache[V]{
		shards:    make([]cacheShard[V], cfg.Shards),
		ttl:       cfg.TTL,
		perShard:  perShard,
		seed:      maphash.MakeSeed(),
		now:       time.Now,
		hitCtr:    hitCtr,
		missCtr:   missCtr,
		evictCtr:  evictCtr,
		expireCtr: expireCtr,
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

// shard returns the shard owning key.
func (c *Cache[V]) shard(key string) *cacheShard[V] {
	h := maphash.String(c.seed, key)
	return &c.shards[h%uint64(len(c.shards))]
}

// Get returns the live cached value for key. An entry past its TTL is
// removed and reported as expired (and the lookup as a miss).
func (c *Cache[V]) Get(ctx context.Context, key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		obs.Count(ctx, c.missCtr, 1)
		var zero V
		return zero, false
	}
	e := el.Value.(*cacheEntry[V])
	if c.now().After(e.expires) {
		s.order.Remove(el)
		delete(s.entries, key)
		s.mu.Unlock()
		obs.Count(ctx, c.expireCtr, 1)
		obs.Count(ctx, c.missCtr, 1)
		var zero V
		return zero, false
	}
	s.order.MoveToFront(el)
	val := e.val
	s.mu.Unlock()
	obs.Count(ctx, c.hitCtr, 1)
	return val, true
}

// Put inserts (or refreshes) key with a fresh TTL, evicting the shard's
// least recently used entry beyond capacity.
func (c *Cache[V]) Put(ctx context.Context, key string, val V) {
	s := c.shard(key)
	expires := c.now().Add(c.ttl)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*cacheEntry[V])
		e.val, e.expires = val, expires
		s.order.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.entries[key] = s.order.PushFront(&cacheEntry[V]{key: key, val: val, expires: expires})
	evicted := 0
	for s.order.Len() > c.perShard {
		back := s.order.Back()
		s.order.Remove(back)
		delete(s.entries, back.Value.(*cacheEntry[V]).key)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		obs.Count(ctx, c.evictCtr, int64(evicted))
	}
}

// Len returns the number of resident entries (including any not yet
// observed to be expired).
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}
