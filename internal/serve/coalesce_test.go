package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"guardedop/internal/robust"
)

// waiters reads the current waiter count of key's flight (white-box).
func waiters[V any](c *Coalescer[V], key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f := c.inflight[key]; f != nil {
		return f.waiters
	}
	return 0
}

// waitForWaiters blocks until key's flight has n waiters attached.
func waitForWaiters[V any](t *testing.T, c *Coalescer[V], key string, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for waiters(c, key) != n {
		if time.Now().After(deadline) {
			t.Fatalf("flight %q never reached %d waiters (have %d)", key, n, waiters(c, key))
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestCoalesceShares asserts the singleflight core: n concurrent callers
// of one key observe exactly one fn run and the same value.
func TestCoalesceShares(t *testing.T) {
	t.Parallel()
	c := NewCoalescer[int](context.Background())
	var runs atomic.Int64
	gate := make(chan struct{})
	const n = 64
	var wg sync.WaitGroup
	results := make([]int, n)
	sharedCount := atomic.Int64{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := c.Do(context.Background(), "k", func(context.Context) (int, error) {
				runs.Add(1)
				<-gate // hold the flight open until every caller has joined or run
				return 42, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = v
		}(i)
	}
	// Wait until all callers are attached to the one flight, then release.
	waitForWaiters(t, c, "k", n)
	close(gate)
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want exactly 1", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("caller %d got %d, want 42", i, v)
		}
	}
	if sharedCount.Load() != n-1 {
		t.Errorf("shared reported by %d callers, want %d followers", sharedCount.Load(), n-1)
	}
	if c.InFlight() != 0 {
		t.Errorf("finished flight not forgotten: InFlight() = %d", c.InFlight())
	}
}

// TestCoalesceWaiterCancelLeavesFlight asserts an impatient caller's exit
// does not abort the flight other callers wait on.
func TestCoalesceWaiterCancelLeavesFlight(t *testing.T) {
	t.Parallel()
	c := NewCoalescer[string](context.Background())
	gate := make(chan struct{})
	flightCtxErr := make(chan error, 1)

	// Patient leader in the background.
	type outcome struct {
		v   string
		err error
	}
	leaderDone := make(chan outcome, 1)
	go func() {
		v, _, err := c.Do(context.Background(), "k", func(fctx context.Context) (string, error) {
			<-gate
			flightCtxErr <- fctx.Err()
			return "answer", nil
		})
		leaderDone <- outcome{v, err}
	}()
	for c.InFlight() != 1 {
		time.Sleep(100 * time.Microsecond)
	}

	// Impatient follower with an already-short deadline.
	wctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, shared, err := c.Do(wctx, "k", func(context.Context) (string, error) {
		t.Error("follower must not start a second flight")
		return "", nil
	})
	if !shared {
		t.Error("follower not reported as shared")
	}
	if !errors.Is(err, robust.ErrCanceled) {
		t.Fatalf("canceled waiter error = %v, want robust.ErrCanceled", err)
	}

	close(gate)
	got := <-leaderDone
	if got.err != nil || got.v != "answer" {
		t.Fatalf("leader got (%q, %v), want (answer, nil)", got.v, got.err)
	}
	if ferr := <-flightCtxErr; ferr != nil {
		t.Fatalf("flight context canceled by departing waiter: %v", ferr)
	}
}

// TestCoalesceAbandonedFlightCanceled asserts the flight's context dies
// once every waiter has left, so work nobody wants stops.
func TestCoalesceAbandonedFlightCanceled(t *testing.T) {
	t.Parallel()
	c := NewCoalescer[int](context.Background())
	started := make(chan struct{})
	flightDone := make(chan error, 1)
	wctx, cancel := context.WithCancel(context.Background())
	go func() {
		_, _, _ = c.Do(wctx, "k", func(fctx context.Context) (int, error) {
			close(started)
			<-fctx.Done() // blocks until abandoned
			flightDone <- fctx.Err()
			return 0, fctx.Err()
		})
	}()
	<-started
	cancel() // sole waiter leaves
	select {
	case err := <-flightDone:
		if err == nil {
			t.Fatal("flight context not canceled")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned flight never saw cancellation")
	}
}

// TestCoalesceSequentialRuns asserts temporal (non-concurrent) calls each
// run fn — reuse across time is the cache's job, not the coalescer's.
func TestCoalesceSequentialRuns(t *testing.T) {
	t.Parallel()
	c := NewCoalescer[int](context.Background())
	runs := 0
	for i := 0; i < 3; i++ {
		v, shared, err := c.Do(context.Background(), "k", func(context.Context) (int, error) {
			runs++
			return runs, nil
		})
		if err != nil || shared || v != i+1 {
			t.Fatalf("call %d: (v=%d shared=%v err=%v), want fresh run %d", i, v, shared, err, i+1)
		}
	}
}

// TestCoalesceErrorShared asserts a failing flight shares its error with
// every waiter instead of retrying per caller.
func TestCoalesceErrorShared(t *testing.T) {
	t.Parallel()
	c := NewCoalescer[int](context.Background())
	sentinel := errors.New("solve failed")
	gate := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	var runs atomic.Int64
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.Do(context.Background(), "k", func(context.Context) (int, error) {
				runs.Add(1)
				<-gate
				return 0, sentinel
			})
		}(i)
	}
	waitForWaiters(t, c, "k", len(errs))
	close(gate)
	wg.Wait()
	if runs.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", runs.Load())
	}
	for i, err := range errs {
		if !errors.Is(err, sentinel) {
			t.Errorf("caller %d error = %v, want shared sentinel", i, err)
		}
	}
}
