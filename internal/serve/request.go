package serve

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"strconv"

	"guardedop/internal/mdcd"
)

// maxRequestBody bounds a request document; parameter sets are tiny, so
// anything larger is garbage or abuse.
const maxRequestBody = 1 << 16

// Limits on request-supplied work sizes, so a single query cannot ask the
// daemon for an unbounded amount of solving.
const (
	maxCurvePoints      = 2048
	maxPropagateSamples = 2048
)

// ParamsRequest is the JSON shape of a model parameter set. Zero-valued
// fields take the paper's Table 3 defaults, so `{}` queries the baseline.
type ParamsRequest struct {
	Theta    float64 `json:"theta,omitempty"`
	Lambda   float64 `json:"lambda,omitempty"`
	MuNew    float64 `json:"mu_new,omitempty"`
	MuOld    float64 `json:"mu_old,omitempty"`
	Coverage float64 `json:"coverage,omitempty"`
	PExt     float64 `json:"p_ext,omitempty"`
	Alpha    float64 `json:"alpha,omitempty"`
	Beta     float64 `json:"beta,omitempty"`
}

// Params resolves the request against the paper defaults and validates
// the result. A field left at zero means "paper default" — the paper's
// own parameters are all nonzero, so the encoding is unambiguous except
// for µ_old = 0 and µ_new = 0, which are expressible via the explicit
// negative sentinel -1 (meaning exactly zero).
func (pr ParamsRequest) Params() (mdcd.Params, error) {
	p := mdcd.DefaultParams()
	set := func(dst *float64, v float64) {
		switch {
		case v == 0:
		case v < 0:
			*dst = 0
		default:
			*dst = v
		}
	}
	set(&p.Theta, pr.Theta)
	set(&p.Lambda, pr.Lambda)
	set(&p.MuNew, pr.MuNew)
	set(&p.MuOld, pr.MuOld)
	set(&p.Coverage, pr.Coverage)
	set(&p.PExt, pr.PExt)
	set(&p.Alpha, pr.Alpha)
	set(&p.Beta, pr.Beta)
	if err := p.Validate(); err != nil {
		return mdcd.Params{}, err
	}
	return p, nil
}

// CurveRequest asks for the Y(φ) curve of one parameter set.
type CurveRequest struct {
	Params ParamsRequest `json:"params"`
	// Points is the number of grid intervals over [0, θ] (default 20,
	// max maxCurvePoints).
	Points int `json:"points,omitempty"`
	// TimeoutMS optionally tightens the server's per-route deadline for
	// this request; it can never extend it.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// OptimizeRequest asks for the continuously refined optimal duration.
type OptimizeRequest struct {
	Params ParamsRequest `json:"params"`
	// GridPoints is the coarse bracketing grid (default 20 intervals).
	GridPoints int `json:"grid_points,omitempty"`
	TimeoutMS  int `json:"timeout_ms,omitempty"`
}

// PropagateRequest asks for posterior uncertainty propagation of µ_new.
type PropagateRequest struct {
	Params ParamsRequest `json:"params"`
	// Shape and Rate parameterize the Gamma posterior over µ_new.
	// Defaults reproduce a weakly informed posterior centred on the
	// paper's µ_new: shape 2, rate 2/µ_new.
	Shape float64 `json:"shape,omitempty"`
	Rate  float64 `json:"rate,omitempty"`
	// Samples is the number of posterior draws (default 50 on the
	// serving path, max maxPropagateSamples).
	Samples int `json:"samples,omitempty"`
	// Seed seeds the deterministic draw stream (default 1).
	Seed       int64 `json:"seed,omitempty"`
	GridPoints int   `json:"grid_points,omitempty"`
	TimeoutMS  int   `json:"timeout_ms,omitempty"`
}

// decodeRequest parses one API request from either a JSON body (POST) or
// query parameters (GET), into dst. GET support keeps the daemon
// curl-able; the query keys are the JSON field names.
func decodeRequest(r *http.Request, dst any) error {
	switch r.Method {
	case http.MethodPost:
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxRequestBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(dst); err != nil {
			return fmt.Errorf("decoding JSON body: %w", err)
		}
		return nil
	case http.MethodGet:
		return decodeQuery(r.URL.Query(), dst)
	default:
		return fmt.Errorf("method %s not allowed", r.Method)
	}
}

// decodeQuery maps flat query parameters onto the request structs. Nested
// params fields are addressed by their bare JSON names (theta, mu_new, …).
func decodeQuery(q url.Values, dst any) error {
	getF := func(key string, into *float64) error {
		s := q.Get(key)
		if s == "" {
			return nil
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("query %s=%q: %w", key, s, err)
		}
		*into = v
		return nil
	}
	getI := func(key string, into *int) error {
		s := q.Get(key)
		if s == "" {
			return nil
		}
		v, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("query %s=%q: %w", key, s, err)
		}
		*into = v
		return nil
	}
	getI64 := func(key string, into *int64) error {
		s := q.Get(key)
		if s == "" {
			return nil
		}
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("query %s=%q: %w", key, s, err)
		}
		*into = v
		return nil
	}
	decodeParams := func(p *ParamsRequest) error {
		for _, f := range []struct {
			key  string
			into *float64
		}{
			{"theta", &p.Theta}, {"lambda", &p.Lambda},
			{"mu_new", &p.MuNew}, {"mu_old", &p.MuOld},
			{"coverage", &p.Coverage}, {"p_ext", &p.PExt},
			{"alpha", &p.Alpha}, {"beta", &p.Beta},
		} {
			if err := getF(f.key, f.into); err != nil {
				return err
			}
		}
		return nil
	}
	switch d := dst.(type) {
	case *ScenarioCurveRequest:
		// A nested scenario spec has no flat query encoding.
		return fmt.Errorf("scenario requests take a JSON POST body, not query parameters")
	case *CurveRequest:
		if err := decodeParams(&d.Params); err != nil {
			return err
		}
		if err := getI("points", &d.Points); err != nil {
			return err
		}
		return getI("timeout_ms", &d.TimeoutMS)
	case *OptimizeRequest:
		if err := decodeParams(&d.Params); err != nil {
			return err
		}
		if err := getI("grid_points", &d.GridPoints); err != nil {
			return err
		}
		return getI("timeout_ms", &d.TimeoutMS)
	case *PropagateRequest:
		if err := decodeParams(&d.Params); err != nil {
			return err
		}
		for _, f := range []struct {
			key  string
			into *float64
		}{{"shape", &d.Shape}, {"rate", &d.Rate}} {
			if err := getF(f.key, f.into); err != nil {
				return err
			}
		}
		if err := getI("samples", &d.Samples); err != nil {
			return err
		}
		if err := getI64("seed", &d.Seed); err != nil {
			return err
		}
		if err := getI("grid_points", &d.GridPoints); err != nil {
			return err
		}
		return getI("timeout_ms", &d.TimeoutMS)
	default:
		return fmt.Errorf("serve: no query decoder for %T", dst)
	}
}

// keyBuf accumulates the canonical byte encoding of a request for
// coalescing and cache keys: fixed-width big-endian float bits and
// varints, so two requests share a key exactly when every field is
// bit-identical after default resolution.
type keyBuf struct{ b []byte }

func (k *keyBuf) f64(v float64) {
	var raw [8]byte
	binary.BigEndian.PutUint64(raw[:], math.Float64bits(v))
	k.b = append(k.b, raw[:]...)
}

func (k *keyBuf) i64(v int64) {
	k.b = binary.AppendVarint(k.b, v)
}

func (k *keyBuf) str(s string) {
	k.b = binary.AppendVarint(k.b, int64(len(s)))
	k.b = append(k.b, s...)
}

func (k *keyBuf) String() string { return hex.EncodeToString(k.b) }

// paramsKey is the canonical hash key of one resolved parameter set: the
// analyzer-cache key, and the prefix of every request key.
func paramsKey(p mdcd.Params) string {
	var k keyBuf
	for _, v := range []float64{p.Theta, p.Lambda, p.MuNew, p.MuOld, p.Coverage, p.PExt, p.Alpha, p.Beta} {
		k.f64(v)
	}
	return k.String()
}

// requestKey returns the canonical coalescing/cache key of one decoded,
// default-resolved request: route kind plus every field that influences
// the answer. TimeoutMS is deliberately excluded — a tighter deadline
// changes when a request gives up, never what the full answer would be,
// so differently impatient clients still coalesce onto one solve.
func requestKey(kind string, p mdcd.Params, ints []int64) string {
	var k keyBuf
	k.str(kind)
	for _, v := range []float64{p.Theta, p.Lambda, p.MuNew, p.MuOld, p.Coverage, p.PExt, p.Alpha, p.Beta} {
		k.f64(v)
	}
	for _, v := range ints {
		k.i64(v)
	}
	return k.String()
}

// propagateKey extends requestKey with the posterior shape/rate floats.
func propagateKey(p mdcd.Params, g gammaSpec, samples int, seed int64, gridPoints int) string {
	var k keyBuf
	k.str("propagate")
	for _, v := range []float64{p.Theta, p.Lambda, p.MuNew, p.MuOld, p.Coverage, p.PExt, p.Alpha, p.Beta} {
		k.f64(v)
	}
	k.f64(g.shape)
	k.f64(g.rate)
	k.i64(int64(samples))
	k.i64(seed)
	k.i64(int64(gridPoints))
	return k.String()
}

// gammaSpec is a resolved posterior parameterization.
type gammaSpec struct {
	shape, rate float64
}
