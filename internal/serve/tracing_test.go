package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"guardedop/internal/obs"
	"guardedop/internal/template"
)

// hitTraced is hit with an explicit inbound X-Trace-Id header, which
// forces sampling for that one request.
func hitTraced(h http.Handler, method, target, body, traceID string) *httptest.ResponseRecorder {
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, target, nil)
	} else {
		req = httptest.NewRequest(method, target, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(TraceHeader, traceID)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// debugTraces fetches and decodes GET /debug/traces.
func debugTraces(t *testing.T, h http.Handler) debugTracesResponse {
	t.Helper()
	rec := hit(h, http.MethodGet, "/debug/traces", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/traces = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp debugTracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding /debug/traces: %v", err)
	}
	return resp
}

// rootSpan returns a trace document's root request span.
func rootSpan(t *testing.T, doc obs.TraceDoc) obs.SpanRecord {
	t.Helper()
	for _, sp := range doc.Spans {
		if sp.Parent == 0 && strings.HasPrefix(sp.Name, "serve.http.") {
			return sp
		}
	}
	t.Fatalf("trace %s has no serve.http.* root span (spans: %d)",
		doc.Manifest.TraceID, len(doc.Spans))
	return obs.SpanRecord{}
}

// hasSpan reports whether a trace document contains a span by name.
func hasSpan(doc obs.TraceDoc, name string) bool {
	for _, sp := range doc.Spans {
		if sp.Name == name {
			return true
		}
	}
	return false
}

// TestThousandTracedCoalescedRequests is the tracing acceptance test: a
// thousand concurrent identical curve queries, all sampled, must yield
// exactly one leader trace containing the solve span tree and 999
// waiter/cache-hit traces that carry a link.trace_id attribute pointing
// at the leader — so the single core.curve solve is attributable to one
// specific request and every absorbed request records who answered it.
func TestThousandTracedCoalescedRequests(t *testing.T) {
	t.Parallel()
	tr := obs.NewTracer()
	s := New(Config{Tracer: tr, TraceSampleRate: 1, TraceRing: 1024})
	h := s.Handler()
	const n = 1000
	body := `{"points":20}`
	codes := make([]int, n)
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := hit(h, http.MethodPost, "/v1/curve", body)
			codes[i] = rec.Code
			ids[i] = rec.Header().Get(TraceHeader)
		}(i)
	}
	wg.Wait()
	seen := make(map[string]bool, n)
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
		if len(ids[i]) != 32 {
			t.Fatalf("request %d: trace ID %q, want generated 32-hex ID", i, ids[i])
		}
		if seen[ids[i]] {
			t.Fatalf("trace ID %s issued twice", ids[i])
		}
		seen[ids[i]] = true
	}

	ctrs := tr.Counters()
	if ctrs[obs.CtrServeTracesSampled] != n {
		t.Errorf("%s = %d, want %d", obs.CtrServeTracesSampled, ctrs[obs.CtrServeTracesSampled], n)
	}
	if ctrs[obs.CtrServeTracesDropped] != 0 {
		t.Errorf("%s = %d, want 0 at sample rate 1", obs.CtrServeTracesDropped, ctrs[obs.CtrServeTracesDropped])
	}
	// Per-request tracers must still aggregate into the process tracer.
	if got := tr.Stages()["core.curve"].Count; got != 1 {
		t.Errorf("process tracer saw %d core.curve runs, want 1", got)
	}
	if got := tr.Stages()["serve.http.curve"].Count; got != n {
		t.Errorf("process tracer saw %d serve.http.curve spans, want %d", got, n)
	}

	resp := debugTraces(t, h)
	if resp.Stored != n || resp.Sampled != n {
		t.Fatalf("ring stored %d sampled %d, want %d/%d at sample rate 1",
			resp.Stored, resp.Sampled, n, n)
	}
	// Exactly one document owns the solve tree.
	var leaders []obs.TraceDoc
	for _, doc := range resp.Traces {
		if hasSpan(doc, "core.curve") {
			leaders = append(leaders, doc)
		}
	}
	if len(leaders) != 1 {
		t.Fatalf("%d traces contain the core.curve span, want exactly 1 leader", len(leaders))
	}
	leaderID := leaders[0].Manifest.TraceID
	if !seen[leaderID] {
		t.Fatalf("leader trace ID %s was never issued to a client", leaderID)
	}
	if attrs := rootSpan(t, leaders[0]).Attrs; attrs["link.trace_id"] != nil {
		t.Errorf("leader root span links to %v, want no link (it ran the solve)", attrs["link.trace_id"])
	}
	// Every other request links to the leader's trace.
	linked := 0
	for _, doc := range resp.Traces {
		if doc.Manifest.TraceID == leaderID {
			continue
		}
		root := rootSpan(t, doc)
		link, _ := root.Attrs["link.trace_id"].(string)
		if link != leaderID {
			t.Fatalf("trace %s links to %q, want leader %s", doc.Manifest.TraceID, link, leaderID)
		}
		linked++
	}
	if linked != n-1 {
		t.Fatalf("%d linked waiter traces, want %d", linked, n-1)
	}
}

// TestScenarioTraceDocTemplateCounters covers trace-doc content through
// the templated-scenario path: the first request's manifest carries the
// template build counters, a repeated request is answered from cache
// with zero new solver passes, and a same-spec regrid reuses the built
// scenario (spec-hash cache hit) without a second template instantiation.
func TestScenarioTraceDocTemplateCounters(t *testing.T) {
	t.Parallel()
	s := New(Config{Tracer: obs.NewTracer(), TraceSampleRate: 0, TraceRing: 8})
	h := s.Handler()
	body := specBody(t, template.PaperSpec(), `"points":4`)

	for i, rc := range []struct{ id, body string }{
		{"scen-build", body},
		{"scen-repeat", body},
		{"scen-regrid", specBody(t, template.PaperSpec(), `"points":5`)},
	} {
		if rec := hitTraced(h, http.MethodPost, "/v1/scenario/curve", rc.body, rc.id); rec.Code != http.StatusOK {
			t.Fatalf("request %d (%s): status %d, body %s", i, rc.id, rec.Code, rec.Body.String())
		}
	}
	docs := make(map[string]obs.TraceDoc)
	resp := debugTraces(t, h)
	for _, doc := range resp.Traces {
		docs[doc.Manifest.TraceID] = doc
	}
	if len(docs) != 3 {
		t.Fatalf("ring holds %d forced traces, want 3 (sample rate 0)", len(docs))
	}

	build := docs["scen-build"]
	if build.Manifest.Route != "scenario_curve" {
		t.Errorf("build trace route = %q, want scenario_curve", build.Manifest.Route)
	}
	bc := build.Manifest.Counters
	if bc[obs.CtrTemplateInstances] != 1 || bc[obs.CtrTemplateStates] == 0 {
		t.Errorf("build trace counters: %s=%d %s=%d, want 1 instance with generated states",
			obs.CtrTemplateInstances, bc[obs.CtrTemplateInstances],
			obs.CtrTemplateStates, bc[obs.CtrTemplateStates])
	}
	// The analysis budget must be attributed to this request, whichever
	// engine served it (numeric passes or closed-form parametric hits).
	if bc[obs.CtrSolvePasses]+bc[obs.CtrParametricHits] == 0 {
		t.Errorf("build trace recorded no solver work; the budget is unattributable")
	}

	// Identical repeat: the response cache answers, so the request's own
	// trace records zero solves and links to the flight that computed it.
	rep := docs["scen-repeat"]
	rc := rep.Manifest.Counters
	if rc[obs.CtrSolvePasses]+rc[obs.CtrParametricHits] != 0 || rc[obs.CtrTemplateInstances] != 0 {
		t.Errorf("repeat trace counters: solves=%d hits=%d instances=%d, want all 0 (cache hit)",
			rc[obs.CtrSolvePasses], rc[obs.CtrParametricHits], rc[obs.CtrTemplateInstances])
	}
	root := rootSpan(t, rep)
	if link, _ := root.Attrs["link.trace_id"].(string); link != "scen-build" {
		t.Errorf("repeat trace links to %q, want scen-build", link)
	}
	if root.Attrs["cached"] == nil {
		t.Errorf("repeat trace root span not marked cached: %v", root.Attrs)
	}

	// Same spec hash, new grid: the scenario cache supplies the built
	// model (no new template instantiation) but the new φ points solve.
	gc := docs["scen-regrid"].Manifest.Counters
	if gc[obs.CtrTemplateInstances] != 0 {
		t.Errorf("regrid trace instantiated %d templates, want 0 (spec-hash cache hit)",
			gc[obs.CtrTemplateInstances])
	}
	if gc[obs.CtrSolvePasses]+gc[obs.CtrParametricHits] == 0 {
		t.Errorf("regrid trace recorded no solver work, want fresh solves for the new grid")
	}
}

// TestInboundTraceHeaderForcedAndSanitized pins the trace-ID contract:
// a well-formed inbound ID is adopted, echoed, and forces sampling even
// at rate zero; a hostile one is discarded and replaced by a generated
// ID so log-unsafe bytes never reach downstream records.
func TestInboundTraceHeaderForcedAndSanitized(t *testing.T) {
	t.Parallel()
	s := New(Config{Tracer: obs.NewTracer(), TraceSampleRate: 0, TraceRing: 4})
	h := s.Handler()

	rec := hitTraced(h, http.MethodPost, "/v1/curve", `{"points":3}`, "my-Debug-ID-7")
	if got := rec.Header().Get(TraceHeader); got != "my-Debug-ID-7" {
		t.Fatalf("echoed trace ID = %q, want the inbound value", got)
	}
	resp := debugTraces(t, h)
	if resp.Stored != 1 || resp.Traces[0].Manifest.TraceID != "my-Debug-ID-7" {
		t.Fatalf("forced trace not sampled at rate 0: stored=%d", resp.Stored)
	}

	rec = hitTraced(h, http.MethodPost, "/v1/curve", `{"points":3}`, "evil\nid{}")
	if got := rec.Header().Get(TraceHeader); got == "evil\nid{}" || len(got) != 32 {
		t.Fatalf("hostile inbound ID not replaced: echoed %q", got)
	}
	// A discarded ID is not a caller request, so sampling stays off.
	if resp = debugTraces(t, h); resp.Stored != 1 {
		t.Fatalf("ring stored %d docs, want still 1 (invalid header must not force sampling)", resp.Stored)
	}
}

// TestErrorTracesAlwaysSampled: server errors bypass the probability so
// the traces most worth reading are always retained. The panic route
// doubles as the recovery-middleware status check.
func TestErrorTracesAlwaysSampled(t *testing.T) {
	t.Parallel()
	tr := obs.NewTracer()
	s := New(Config{Tracer: tr, TraceSampleRate: 0, TraceRing: 4})
	s.mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	h := s.Handler()

	if rec := hit(h, http.MethodGet, "/boom", ""); rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking route returned %d, want 500", rec.Code)
	}
	resp := debugTraces(t, h)
	if resp.Stored != 1 {
		t.Fatalf("error trace not sampled: stored = %d", resp.Stored)
	}
	root := rootSpan(t, resp.Traces[0])
	if st, _ := root.Attrs["status"].(float64); int(st) != http.StatusInternalServerError {
		t.Errorf("root span status attr = %v, want 500", root.Attrs["status"])
	}
	if tr.Counters()[obs.CtrServeTracesSampled] != 1 {
		t.Errorf("sampled counter = %d, want 1", tr.Counters()[obs.CtrServeTracesSampled])
	}
}

// TestDebugTracesWithoutTracer: the endpoint reports an empty ring
// rather than erroring when tracing is disabled, so probes can hit it
// unconditionally.
func TestDebugTracesWithoutTracer(t *testing.T) {
	t.Parallel()
	s := New(Config{})
	resp := debugTraces(t, s.Handler())
	if resp.Capacity != 0 || resp.Stored != 0 || resp.Sampled != 0 || len(resp.Traces) != 0 {
		t.Fatalf("untraced /debug/traces = %+v, want empty ring", resp)
	}
}

// TestTraceRingEviction pins the bounded-memory contract: the ring
// overwrites oldest-first and snapshots newest-first.
func TestTraceRingEviction(t *testing.T) {
	t.Parallel()
	r := newTraceRing(4)
	for _, id := range []string{"t0", "t1", "t2", "t3", "t4", "t5"} {
		r.push(obs.TraceDoc{Manifest: obs.Manifest{TraceID: id}})
	}
	docs, total := r.snapshot()
	if total != 6 || len(docs) != 4 {
		t.Fatalf("total=%d stored=%d, want 6 pushed / 4 retained", total, len(docs))
	}
	for i, want := range []string{"t5", "t4", "t3", "t2"} {
		if docs[i].Manifest.TraceID != want {
			t.Fatalf("docs[%d] = %s, want %s (newest-first)", i, docs[i].Manifest.TraceID, want)
		}
	}
}

func TestSanitizeTraceID(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ in, want string }{
		{"abc-123-DEF", "abc-123-DEF"},
		{"", ""},
		{strings.Repeat("a", 64), strings.Repeat("a", 64)},
		{strings.Repeat("a", 65), ""},
		{"has space", ""},
		{"quote\"brk", ""},
		{"new\nline", ""},
		{"curly{}", ""},
	} {
		if got := sanitizeTraceID(tc.in); got != tc.want {
			t.Errorf("sanitizeTraceID(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestRouteLabelBounded(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ path, want string }{
		{"/v1/curve", "curve"},
		{"/v1/scenario/curve", "scenario_curve"},
		{"/metrics", "metrics"},
		{"/debug/traces", "debug_traces"},
		{"/v1/curve/../../etc/passwd", "other"},
		{"/anything", "other"},
	} {
		if got := routeLabel(tc.path); got != tc.want {
			t.Errorf("routeLabel(%q) = %q, want %q", tc.path, got, tc.want)
		}
	}
}

// TestStructuredAccessLog pins the slog access-record vocabulary that
// docs/OBSERVABILITY.md documents: one JSON line per request carrying
// trace_id/route/method/status/dur_ms/degraded/coalesced/cached, with
// link_trace_id on cache-served requests.
func TestStructuredAccessLog(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil))
	s := New(Config{Tracer: obs.NewTracer(), Logger: logger})
	h := s.Handler()

	hitTraced(h, http.MethodPost, "/v1/curve", `{"points":3}`, "log-test-1")
	hitTraced(h, http.MethodPost, "/v1/curve", `{"points":3}`, "log-test-2")

	mu.Lock()
	defer mu.Unlock()
	var lines []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", sc.Text(), err)
		}
		lines = append(lines, rec)
	}
	if len(lines) != 2 {
		t.Fatalf("%d access-log lines, want 2", len(lines))
	}
	first, second := lines[0], lines[1]
	if first["trace_id"] != "log-test-1" || first["route"] != "curve" ||
		first["method"] != http.MethodPost || first["status"] != float64(http.StatusOK) {
		t.Errorf("first record = %v, want trace log-test-1 on curve with 200", first)
	}
	for _, key := range []string{"dur_ms", "degraded", "coalesced", "cached"} {
		if _, ok := first[key]; !ok {
			t.Errorf("access record missing %q: %v", key, first)
		}
	}
	if first["degraded"] != false || first["cached"] != false {
		t.Errorf("fresh solve logged degraded=%v cached=%v, want false/false",
			first["degraded"], first["cached"])
	}
	if second["cached"] != true || second["link_trace_id"] != "log-test-1" {
		t.Errorf("repeat record = %v, want cached=true linking to log-test-1", second)
	}
}

// lockedWriter serializes concurrent handler writes into one buffer.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// TestMetricsServeGauges: /metrics must expose the serving-layer gauges,
// the route-labeled latency histogram (via the serve.http.<route> span),
// and the build/runtime families.
func TestMetricsServeGauges(t *testing.T) {
	t.Parallel()
	s := New(Config{Tracer: obs.NewTracer(), TraceSampleRate: 1, TraceRing: 4})
	h := s.Handler()
	hit(h, http.MethodPost, "/v1/curve", `{"points":3}`)
	rec := hit(h, http.MethodGet, "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	out := rec.Body.String()
	for _, want := range []string{
		"gsu_serve_inflight_requests",
		"gsu_serve_active_solves",
		"gsu_serve_queue_depth",
		"gsu_serve_trace_ring_size",
		`gsu_span_duration_seconds_bucket{span="serve.http.curve"`,
		"gsu_build_info{",
		"gsu_goroutines",
		"gsu_gc_cycles_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
