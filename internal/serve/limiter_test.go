package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"guardedop/internal/robust"
)

func TestLimiterFastPath(t *testing.T) {
	t.Parallel()
	l := NewLimiter(LimiterConfig{MaxConcurrent: 2})
	r1, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	r2, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("second Acquire: %v", err)
	}
	if got := l.Active(); got != 2 {
		t.Errorf("Active() = %d, want 2", got)
	}
	r1()
	r2()
	if got := l.Active(); got != 0 {
		t.Errorf("Active() after release = %d, want 0", got)
	}
}

// TestLimiterShedsBeyondQueue fills the slots and the queue, then asserts
// the next arrival is shed immediately with ErrShed.
func TestLimiterShedsBeyondQueue(t *testing.T) {
	t.Parallel()
	l := NewLimiter(LimiterConfig{MaxConcurrent: 1, MaxQueue: 1})
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// One queued waiter.
	queued := make(chan error, 1)
	go func() {
		r, err := l.Acquire(context.Background())
		if err == nil {
			defer r()
		}
		queued <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for l.Queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Queue full: the next arrival is shed without blocking.
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("saturated Acquire error = %v, want ErrShed", err)
	}
	// Admitted work still completes: releasing the slot admits the waiter.
	release()
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter failed: %v", err)
	}
}

// TestLimiterQueuedCancel asserts a queued waiter whose context ends
// leaves with robust.ErrCanceled and frees its queue reservation.
func TestLimiterQueuedCancel(t *testing.T) {
	t.Parallel()
	l := NewLimiter(LimiterConfig{MaxConcurrent: 1, MaxQueue: 2})
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := l.Acquire(ctx)
		got <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for l.Queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-got; !errors.Is(err, robust.ErrCanceled) {
		t.Fatalf("canceled waiter error = %v, want robust.ErrCanceled", err)
	}
	for l.Queued() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue reservation leaked after cancel")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestLimiterAdmittedWorkCompletes hammers the limiter: every admitted
// acquire must eventually run while shed ones fail fast, and the
// concurrency bound must never be exceeded (checked under -race).
func TestLimiterAdmittedWorkCompletes(t *testing.T) {
	t.Parallel()
	const maxConc = 3
	l := NewLimiter(LimiterConfig{MaxConcurrent: maxConc, MaxQueue: 4})
	var mu sync.Mutex
	cur, peak, admitted, shed := 0, 0, 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := l.Acquire(context.Background())
			if err != nil {
				if !errors.Is(err, ErrShed) {
					t.Errorf("Acquire error = %v, want nil or ErrShed", err)
				}
				mu.Lock()
				shed++
				mu.Unlock()
				return
			}
			mu.Lock()
			cur++
			if cur > peak {
				peak = cur
			}
			admitted++
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			release()
		}()
	}
	wg.Wait()
	if peak > maxConc {
		t.Errorf("peak concurrency %d exceeds bound %d", peak, maxConc)
	}
	if admitted+shed != 64 {
		t.Errorf("admitted %d + shed %d != 64", admitted, shed)
	}
	if admitted < maxConc {
		t.Errorf("admitted %d, want at least %d", admitted, maxConc)
	}
	if l.Active() != 0 || l.Queued() != 0 {
		t.Errorf("limiter not drained: active %d queued %d", l.Active(), l.Queued())
	}
}
