package serve

import (
	"context"
	"fmt"
	"sync"

	"guardedop/internal/robust"
)

// Coalescer deduplicates concurrent identical work: callers asking for
// the same key while a solve for that key is in flight share its single
// result instead of starting their own (singleflight). It is the piece
// that makes a thundering herd of the paper-grid query cost one solver
// run.
//
// The leader's function runs on a context derived from the Coalescer's
// base context (the server lifecycle), not from any one request: an
// impatient client hanging up must not abort the solve that other,
// patient clients are waiting on. Each waiter still honours its own
// request context — a waiter whose deadline expires leaves with
// robust.ErrCanceled while the flight keeps going. Only when every
// waiter has left is the flight's context canceled, so work nobody wants
// anymore stops.
type Coalescer[V any] struct {
	base context.Context

	mu       sync.Mutex
	inflight map[string]*flight[V]
}

// flight is one in-progress shared computation.
type flight[V any] struct {
	done    chan struct{} // closed when val/err are set
	cancel  context.CancelFunc
	waiters int
	val     V
	err     error
}

// NewCoalescer returns a Coalescer whose flights derive from base (use
// the server's lifecycle context; context.Background() in tests). A nil
// base means context.Background().
func NewCoalescer[V any](base context.Context) *Coalescer[V] {
	if base == nil {
		base = context.Background()
	}
	return &Coalescer[V]{base: base, inflight: make(map[string]*flight[V])}
}

// Do returns the result of fn for key, coalescing concurrent calls:
// exactly one caller (the leader) runs fn; the rest (followers, reported
// by shared=true) wait for the leader's result. fn receives a context
// derived from the Coalescer's base that is canceled once every caller
// waiting on the flight has gone away.
//
// ctx governs only this caller's wait: if it ends first, Do returns
// ctx's cause wrapped in robust.ErrCanceled and the flight continues for
// the remaining waiters. A finished flight is immediately forgotten, so
// a later identical request re-runs fn (response reuse across time is
// the cache's job, not the Coalescer's).
func (c *Coalescer[V]) Do(ctx context.Context, key string, fn func(context.Context) (V, error)) (v V, shared bool, err error) {
	c.mu.Lock()
	f, ok := c.inflight[key]
	if ok {
		f.waiters++
		c.mu.Unlock()
		return c.wait(ctx, key, f, true)
	}
	fctx, cancel := context.WithCancel(c.base)
	f = &flight[V]{done: make(chan struct{}), cancel: cancel, waiters: 1}
	c.inflight[key] = f
	c.mu.Unlock()

	go func() {
		val, ferr := fn(fctx)
		c.mu.Lock()
		f.val, f.err = val, ferr
		// Forget the flight while still holding the lock, so a request
		// arriving after completion starts a fresh flight instead of
		// reading a stale one.
		if c.inflight[key] == f {
			delete(c.inflight, key)
		}
		c.mu.Unlock()
		close(f.done)
		cancel()
	}()
	return c.wait(ctx, key, f, false)
}

// wait blocks until the flight resolves or the caller's own context
// ends, maintaining the flight's waiter count.
func (c *Coalescer[V]) wait(ctx context.Context, key string, f *flight[V], shared bool) (V, bool, error) {
	defer func() {
		c.mu.Lock()
		f.waiters--
		abandoned := f.waiters == 0
		if abandoned && c.inflight[key] == f {
			delete(c.inflight, key)
		}
		c.mu.Unlock()
		if abandoned {
			// Last waiter gone: stop the flight's work. Harmless when the
			// flight already finished (cancel is idempotent).
			f.cancel()
		}
	}()
	select {
	case <-f.done:
		return f.val, shared, f.err
	case <-ctx.Done():
		var zero V
		return zero, shared, fmt.Errorf("%w: %v", robust.ErrCanceled, ctx.Err())
	}
}

// InFlight returns the number of keys currently being computed, for
// tests and the stats endpoint.
func (c *Coalescer[V]) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.inflight)
}
