package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"guardedop/internal/core"
	"guardedop/internal/mdcd"
	"guardedop/internal/robust"
	"guardedop/internal/uncertainty"
)

// paramsJSON echoes the fully resolved parameter set back in responses,
// so a client querying with defaults sees what was actually solved.
type paramsJSON struct {
	Theta    float64 `json:"theta"`
	Lambda   float64 `json:"lambda"`
	MuNew    float64 `json:"mu_new"`
	MuOld    float64 `json:"mu_old"`
	Coverage float64 `json:"coverage"`
	PExt     float64 `json:"p_ext"`
	Alpha    float64 `json:"alpha"`
	Beta     float64 `json:"beta"`
}

func paramsOut(p mdcd.Params) paramsJSON {
	return paramsJSON{
		Theta: p.Theta, Lambda: p.Lambda, MuNew: p.MuNew, MuOld: p.MuOld,
		Coverage: p.Coverage, PExt: p.PExt, Alpha: p.Alpha, Beta: p.Beta,
	}
}

// pointJSON is one evaluated duration.
type pointJSON struct {
	Phi   float64 `json:"phi"`
	Y     float64 `json:"y"`
	EWPhi float64 `json:"ew_phi"`
	YS1   float64 `json:"ys1"`
	YS2   float64 `json:"ys2"`
	Gamma float64 `json:"gamma"`
	PS1   float64 `json:"ps1"`
}

func pointOut(r core.Result) pointJSON {
	return pointJSON{Phi: r.Phi, Y: r.Y, EWPhi: r.EWPhi, YS1: r.YS1, YS2: r.YS2, Gamma: r.Gamma, PS1: r.PS1}
}

// curveResponse is the /v1/curve document. Degraded marks a sweep cut
// short by its deadline: Results then holds the completed prefix (every
// point solved before the deadline) rather than the whole grid.
type curveResponse struct {
	Params          paramsJSON  `json:"params"`
	PointsRequested int         `json:"points_requested"`
	PointsReturned  int         `json:"points_returned"`
	Results         []pointJSON `json:"results"`
	Degraded        bool        `json:"degraded"`
	FailedPoints    int         `json:"failed_points,omitempty"`
	Solves          int64       `json:"solves,omitempty"`
}

// optimizeResponse is the /v1/optimize document.
type optimizeResponse struct {
	Params     paramsJSON `json:"params"`
	GridPoints int        `json:"grid_points"`
	Best       pointJSON  `json:"best"`
	Degraded   bool       `json:"degraded"`
}

// propagateResponse is the /v1/propagate document. Degraded marks a
// propagation standing on fewer draws than requested (skipped degenerate
// draws); the decision quantities are still valid over the survivors.
type propagateResponse struct {
	Params           paramsJSON         `json:"params"`
	Posterior        map[string]float64 `json:"posterior"`
	SamplesRequested int                `json:"samples_requested"`
	SamplesUsed      int                `json:"samples_used"`
	RobustPhi        float64            `json:"robust_phi"`
	RobustEY         float64            `json:"robust_ey"`
	PlugInPhi        float64            `json:"plugin_phi"`
	PhiStarQuantiles map[string]float64 `json:"phi_star_quantiles"`
	Degraded         bool               `json:"degraded"`
}

// badRequest renders a malformed-request failure as a plain 400 (client
// errors never enter the robust taxonomy).
func (s *Server) badRequest(w http.ResponseWriter, r *http.Request, err error) {
	s.writeJSON(w, r, http.StatusBadRequest,
		errEnvelope{Error: err.Error(), Class: "bad-request", Status: http.StatusBadRequest})
}

// analyzer returns the cached analyzer for p, building (and caching) it
// on a miss. Construction runs the steady-state solves, so reuse is what
// keeps repeat queries cheap; concurrent misses for the same parameters
// may build twice, harmlessly — per-request deduplication is the
// flight's job, and analyzers are immutable so last-Put-wins is safe.
func (s *Server) analyzer(ctx context.Context, p mdcd.Params) (*core.Analyzer, error) {
	key := paramsKey(p)
	if a, ok := s.analyzers.Get(ctx, key); ok {
		return a, nil
	}
	a, err := core.NewAnalyzerWithOptions(p, core.Options{Parametric: s.cfg.parametricMode()})
	if err != nil {
		return nil, err
	}
	s.analyzers.Put(ctx, key, a)
	return a, nil
}

// jsonResult marshals a success document into an apiResult.
func jsonResult(v any, degraded, cacheable bool) *apiResult {
	body, err := json.Marshal(v)
	if err != nil {
		return errorResult(fmt.Errorf("encoding response: %w", err))
	}
	return &apiResult{status: http.StatusOK, body: body, degraded: degraded, cacheable: cacheable}
}

// handleCurve serves the Y(φ) curve of one parameter set.
func (s *Server) handleCurve(w http.ResponseWriter, r *http.Request) {
	var req CurveRequest
	if err := decodeRequest(r, &req); err != nil {
		s.badRequest(w, r, err)
		return
	}
	p, err := req.Params.Params()
	if err != nil {
		s.badRequest(w, r, err)
		return
	}
	points := req.Points
	if points == 0 {
		points = 20
	}
	if points < 1 || points > maxCurvePoints {
		s.badRequest(w, r, fmt.Errorf("points %d out of range [1, %d]", points, maxCurvePoints))
		return
	}
	key := requestKey("curve", p, []int64{int64(points)})
	s.serveAPI(w, r, key, s.budget(req.TimeoutMS), func(ctx context.Context) *apiResult {
		return s.computeCurve(ctx, p, points)
	})
}

func (s *Server) computeCurve(ctx context.Context, p mdcd.Params, points int) *apiResult {
	a, err := s.analyzer(ctx, p)
	if err != nil {
		return errorResult(err)
	}
	grid := core.SweepGrid(p.Theta, points)
	pr, err := a.CurvePartialWorkers(ctx, grid, s.cfg.Workers)
	degraded := false
	if err != nil {
		// A deadline mid-sweep degrades to the completed prefix instead of
		// failing the request; every other failure maps through the
		// taxonomy.
		if errors.Is(err, robust.ErrCanceled) && pr != nil && pr.Report.Succeeded() > 0 {
			degraded = true
		} else {
			return errorResult(err)
		}
	}
	resp := curveResponse{
		Params:          paramsOut(p),
		PointsRequested: len(grid),
		Degraded:        degraded,
		FailedPoints:    pr.Report.Failed(),
		Solves:          pr.Report.Metrics.Solves,
	}
	for i, ok := range pr.OK {
		if ok {
			resp.Results = append(resp.Results, pointOut(pr.Results[i]))
		}
	}
	resp.PointsReturned = len(resp.Results)
	return jsonResult(resp, degraded, err == nil)
}

// handleOptimize serves the continuously refined optimal duration φ*.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if err := decodeRequest(r, &req); err != nil {
		s.badRequest(w, r, err)
		return
	}
	p, err := req.Params.Params()
	if err != nil {
		s.badRequest(w, r, err)
		return
	}
	gridPoints := req.GridPoints
	if gridPoints == 0 {
		gridPoints = 20
	}
	if gridPoints < 2 || gridPoints > maxCurvePoints {
		s.badRequest(w, r, fmt.Errorf("grid_points %d out of range [2, %d]", gridPoints, maxCurvePoints))
		return
	}
	key := requestKey("optimize", p, []int64{int64(gridPoints)})
	s.serveAPI(w, r, key, s.budget(req.TimeoutMS), func(ctx context.Context) *apiResult {
		return s.computeOptimize(ctx, p, gridPoints)
	})
}

func (s *Server) computeOptimize(ctx context.Context, p mdcd.Params, gridPoints int) *apiResult {
	a, err := s.analyzer(ctx, p)
	if err != nil {
		return errorResult(err)
	}
	best, err := a.OptimizePhiContext(ctx, core.OptimizeOptions{GridPoints: gridPoints, Workers: s.cfg.Workers})
	if err != nil {
		// The refined optimum has no meaningful prefix — a canceled search
		// fails the request (504) rather than degrading.
		return errorResult(err)
	}
	resp := optimizeResponse{Params: paramsOut(p), GridPoints: gridPoints, Best: pointOut(best)}
	return jsonResult(resp, false, true)
}

// handlePropagate serves posterior uncertainty propagation of µ_new.
func (s *Server) handlePropagate(w http.ResponseWriter, r *http.Request) {
	var req PropagateRequest
	if err := decodeRequest(r, &req); err != nil {
		s.badRequest(w, r, err)
		return
	}
	p, err := req.Params.Params()
	if err != nil {
		s.badRequest(w, r, err)
		return
	}
	g := gammaSpec{shape: req.Shape, rate: req.Rate}
	switch {
	case g.shape == 0 && g.rate == 0:
		if p.MuNew <= 0 {
			s.badRequest(w, r, fmt.Errorf("default posterior needs mu_new > 0; supply shape and rate explicitly"))
			return
		}
		g = gammaSpec{shape: 2, rate: 2 / p.MuNew}
	case g.shape <= 0 || g.rate <= 0:
		s.badRequest(w, r, fmt.Errorf("posterior needs both shape (%g) and rate (%g) positive", g.shape, g.rate))
		return
	}
	samples := req.Samples
	if samples == 0 {
		samples = 50
	}
	if samples < 2 || samples > maxPropagateSamples {
		s.badRequest(w, r, fmt.Errorf("samples %d out of range [2, %d]", samples, maxPropagateSamples))
		return
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	gridPoints := req.GridPoints
	if gridPoints == 0 {
		gridPoints = 20
	}
	if gridPoints < 2 || gridPoints > maxCurvePoints {
		s.badRequest(w, r, fmt.Errorf("grid_points %d out of range [2, %d]", gridPoints, maxCurvePoints))
		return
	}
	key := propagateKey(p, g, samples, seed, gridPoints)
	s.serveAPI(w, r, key, s.budget(req.TimeoutMS), func(ctx context.Context) *apiResult {
		return s.computePropagate(ctx, p, g, samples, seed, gridPoints)
	})
}

func (s *Server) computePropagate(ctx context.Context, p mdcd.Params, g gammaSpec, samples int, seed int64, gridPoints int) *apiResult {
	prop, err := uncertainty.PropagateContext(ctx, p,
		uncertainty.Gamma{Shape: g.shape, Rate: g.rate},
		uncertainty.PropagateOptions{
			Samples: samples, Seed: seed, GridPoints: gridPoints,
			Workers: s.cfg.Workers, Parametric: s.cfg.parametricMode(),
		})
	if err != nil {
		return errorResult(err)
	}
	degraded := prop.SamplesUsed < prop.SamplesRequested
	resp := propagateResponse{
		Params:           paramsOut(p),
		Posterior:        map[string]float64{"shape": g.shape, "rate": g.rate},
		SamplesRequested: prop.SamplesRequested,
		SamplesUsed:      prop.SamplesUsed,
		RobustPhi:        prop.RobustPhi,
		RobustEY:         prop.RobustEY,
		PlugInPhi:        prop.PlugInPhi,
		PhiStarQuantiles: map[string]float64{
			"p10": quantileSorted(prop.PhiStars, 0.10),
			"p50": quantileSorted(prop.PhiStars, 0.50),
			"p90": quantileSorted(prop.PhiStars, 0.90),
		},
		Degraded: degraded,
	}
	return jsonResult(resp, degraded, !degraded)
}

// quantileSorted reads the q-quantile off an ascending-sorted sample by
// nearest-rank; empty input yields NaN-free zero (callers always pass
// the survivors of a propagation that succeeded, hence non-empty).
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
