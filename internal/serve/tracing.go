package serve

import (
	"context"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	"guardedop/internal/obs"
)

// TraceHeader is the request/response header carrying the trace ID. An
// inbound value is adopted (and forces sampling, so a client or an
// upstream proxy can always capture one specific request's trace); when
// absent the server generates one. The response always echoes the ID, so
// every client can correlate its answer with the daemon's logs and the
// /debug/traces ring.
const TraceHeader = "X-Trace-Id"

// newTraceID returns a fresh 128-bit hex trace ID. The generator does
// not need to be cryptographic — IDs only need process-level uniqueness
// for log correlation — so the shared PRNG is enough.
func newTraceID() string {
	var buf [32]byte
	b := strconv.AppendUint(buf[:0], rand.Uint64(), 16)
	for len(b) < 16 {
		b = append(b, '0')
	}
	b = strconv.AppendUint(b, rand.Uint64(), 16)
	for len(b) < 32 {
		b = append(b, '0')
	}
	return string(b)
}

// sanitizeTraceID validates an inbound trace ID: 1–64 characters drawn
// from [0-9a-zA-Z-], so hostile header values cannot smuggle log- or
// JSON-hostile bytes into every downstream record. Anything else is
// treated as absent.
func sanitizeTraceID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '-':
		default:
			return ""
		}
	}
	return id
}

// routeLabel maps a request path to its bounded metric label. Unknown
// paths collapse to "other" so a path-scanning crawler cannot mint
// unbounded label values.
func routeLabel(path string) string {
	switch path {
	case "/v1/curve":
		return "curve"
	case "/v1/scenario/curve":
		return "scenario_curve"
	case "/v1/optimize":
		return "optimize"
	case "/v1/propagate":
		return "propagate"
	case "/healthz":
		return "healthz"
	case "/readyz":
		return "readyz"
	case "/metrics":
		return "metrics"
	case "/debug/traces":
		return "debug_traces"
	default:
		return "other"
	}
}

// reqInfo is the per-request observability record: identity (trace ID,
// route) plus the outcome facts the access log and the root span report.
// It is written only by the request's handler goroutine; the flight
// goroutine communicates through the apiResult instead.
type reqInfo struct {
	route   string
	traceID string
	// forced marks an inbound trace header: the caller asked for this
	// trace, so the sampler always keeps it.
	forced    bool
	coalesced bool
	cached    bool
	degraded  bool
	// link is the trace ID of the flight that actually computed the
	// response, when it differs from this request's own (a coalesced
	// waiter or a response-cache hit): the root span records it as
	// link.trace_id, pointing at the leader's solve tree.
	link string
}

// reqInfoKey indexes the reqInfo context value.
type reqInfoKey struct{}

// reqInfoFrom fetches the request record, or nil outside the middleware.
func reqInfoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// noteResultOrigin records where a result came from relative to this
// request: a computing flight stamps every result with its own trace ID,
// so a differing ID means another request's solve answered this one.
func (ri *reqInfo) noteResultOrigin(res *apiResult, cached bool) {
	if ri == nil {
		return
	}
	if cached {
		ri.cached = true
	}
	if res.traceID != "" && res.traceID != ri.traceID {
		ri.link = res.traceID
	}
}

// statusWriter captures the response status for the root span and the
// access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// finishTrace closes a request's root span with the outcome attributes
// and runs the sampling decision: sampled documents are snapshotted into
// the /debug/traces ring, everything else just counts as dropped.
func (s *Server) finishTrace(rt *obs.Tracer, root *obs.Span, info *reqInfo, status int) {
	root.SetStr("route", info.route)
	root.SetInt("status", int64(status))
	if info.coalesced {
		root.SetInt("coalesced", 1)
	}
	if info.cached {
		root.SetInt("cached", 1)
	}
	if info.degraded {
		root.SetInt("degraded", 1)
	}
	if info.link != "" {
		root.SetStr("link.trace_id", info.link)
	}
	root.End()
	if !s.sampleTrace(info, status) {
		rt.Count(obs.CtrServeTracesDropped, 1)
		return
	}
	doc := obs.Snapshot(rt, obs.Manifest{
		Tool:    "gsuserve",
		TraceID: info.traceID,
		Route:   info.route,
		Workers: s.cfg.Workers,
	})
	s.ring.push(doc)
	rt.Count(obs.CtrServeTracesSampled, 1)
}

// sampleTrace decides whether one finished request's trace document is
// retained: always for an inbound trace header (the caller asked) and
// for server errors (the traces worth having when something breaks),
// probabilistically otherwise.
func (s *Server) sampleTrace(info *reqInfo, status int) bool {
	if s.ring == nil {
		return false
	}
	if info.forced || status >= http.StatusInternalServerError {
		return true
	}
	return s.cfg.TraceSampleRate > 0 && rand.Float64() < s.cfg.TraceSampleRate
}

// logRequest emits one structured access-log record. The field
// vocabulary (trace_id, route, method, status, dur_ms, degraded,
// coalesced, cached, link_trace_id) is documented in
// docs/OBSERVABILITY.md; nil Logger disables access logging entirely.
func (s *Server) logRequest(r *http.Request, info *reqInfo, status int, d time.Duration) {
	if s.logger == nil {
		return
	}
	lvl := slog.LevelInfo
	if status >= http.StatusInternalServerError {
		lvl = slog.LevelError
	}
	attrs := []slog.Attr{
		slog.String("trace_id", info.traceID),
		slog.String("route", info.route),
		slog.String("method", r.Method),
		slog.Int("status", status),
		slog.Int64("dur_ms", d.Milliseconds()),
		slog.Bool("degraded", info.degraded),
		slog.Bool("coalesced", info.coalesced),
		slog.Bool("cached", info.cached),
	}
	if info.link != "" {
		attrs = append(attrs, slog.String("link_trace_id", info.link))
	}
	s.logger.LogAttrs(r.Context(), lvl, "request", attrs...)
}
