package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"guardedop/internal/core"
	"guardedop/internal/obs"
	"guardedop/internal/robust"
)

// Config tunes a Server. The zero value serves with sane defaults.
type Config struct {
	// RouteTimeout is the per-request solve budget (default 30s). A
	// request's timeout_ms field can tighten it, never extend it.
	RouteTimeout time.Duration
	// Workers bounds the solver worker pool each request's sweep runs on
	// (default 2 — per-request parallelism stays modest so concurrent
	// requests, not single sweeps, use the cores).
	Workers int
	// Limiter bounds admission (see LimiterConfig).
	Limiter LimiterConfig
	// AnalyzerCache bounds the built-analyzer cache (default: 8 shards,
	// 64 analyzers, 10m TTL).
	AnalyzerCache CacheConfig
	// ResponseCache bounds the whole-response cache (default: 8 shards,
	// 512 responses, 5m TTL).
	ResponseCache CacheConfig
	// Parametric selects the analyzers' closed-form fast path: "auto"
	// (the default, also chosen for ""): in-domain queries are served
	// from precomputed closed forms in microseconds, everything else
	// falls back to the numeric engine; "on": analyzer construction
	// fails outside the validated domain; "off": numeric engine only.
	// Any other value resolves to "auto" — the daemon's safe default —
	// so a misconfigured deployment degrades to correct behavior
	// instead of refusing to start.
	Parametric string
	// Tracer is the process tracer backing /metrics; nil runs untraced
	// (counters become no-ops, /metrics serves an empty exposition, and
	// no per-request tracing happens — the zero-overhead path).
	Tracer *obs.Tracer
	// TraceSampleRate is the probability a successful request's trace
	// document is retained in the /debug/traces ring (0 disables
	// probabilistic sampling). Requests carrying an inbound X-Trace-Id
	// header and requests answered 5xx are always retained. Only
	// meaningful with a Tracer.
	TraceSampleRate float64
	// TraceRing bounds the /debug/traces document ring (default 64; only
	// meaningful with a Tracer).
	TraceRing int
	// Logger receives one structured access-log record per request
	// (trace_id, route, status, degraded, coalesced, …). Nil disables
	// access logging.
	Logger *slog.Logger
	// ErrorLog receives transport-level problems (failed response
	// writes, recovered panics). Nil uses the log package default.
	ErrorLog *log.Logger
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.RouteTimeout <= 0 {
		c.RouteTimeout = 30 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.AnalyzerCache.Capacity == 0 {
		c.AnalyzerCache.Capacity = 64
	}
	if c.AnalyzerCache.TTL == 0 {
		c.AnalyzerCache.TTL = 10 * time.Minute
	}
	if c.ResponseCache.Capacity == 0 {
		c.ResponseCache.Capacity = 512
	}
	if c.TraceRing <= 0 {
		c.TraceRing = 64
	}
	if c.Parametric != "on" && c.Parametric != "off" {
		c.Parametric = "auto"
	}
	return c
}

// parametricMode maps the resolved Config.Parametric string to the
// analyzer option.
func (c Config) parametricMode() core.ParametricMode {
	switch c.Parametric {
	case "on":
		return core.ParametricOn
	case "off":
		return core.ParametricOff
	default:
		return core.ParametricAuto
	}
}

// Server is the performability-as-a-service daemon: HTTP handlers over
// the analyzer stack, composed from the package's robustness pieces
// (coalescer, sharded caches, admission limiter) plus lifecycle state
// (readiness, drain). Build with New, mount Handler, stop with Shutdown.
type Server struct {
	cfg    Config
	tracer *obs.Tracer
	logger *slog.Logger
	logf   func(format string, args ...any)

	// base is the lifecycle context flights derive from: it carries the
	// process tracer and dies when the server shuts down, so no solve
	// outlives the drain.
	base       context.Context
	cancelBase context.CancelFunc

	analyzers *Cache[*core.Analyzer]
	scenarios *Cache[*scenarioEntry]
	responses *Cache[*apiResult]
	flights   *Coalescer[*apiResult]
	limiter   *Limiter
	// ring holds the sampled per-request trace documents behind
	// /debug/traces; nil when the server runs untraced.
	ring *traceRing
	// inflight gauges the HTTP requests currently inside the handler
	// (admitted or not), exposed on /metrics next to the limiter's
	// active/queued pair.
	inflight atomic.Int64

	draining atomic.Bool
	mux      *http.ServeMux
	hs       *http.Server
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	base, cancel := context.WithCancel(context.Background())
	base = obs.WithTracer(base, cfg.Tracer)
	s := &Server{
		cfg:        cfg,
		tracer:     cfg.Tracer,
		base:       base,
		cancelBase: cancel,
		analyzers: NewCache[*core.Analyzer](cfg.AnalyzerCache,
			obs.CtrServeCacheHits, obs.CtrServeCacheMisses, obs.CtrServeCacheEvictions, obs.CtrServeCacheExpired),
		scenarios: NewCache[*scenarioEntry](cfg.AnalyzerCache,
			obs.CtrServeCacheHits, obs.CtrServeCacheMisses, obs.CtrServeCacheEvictions, obs.CtrServeCacheExpired),
		responses: NewCache[*apiResult](cfg.ResponseCache,
			obs.CtrServeCacheHits, obs.CtrServeCacheMisses, obs.CtrServeCacheEvictions, obs.CtrServeCacheExpired),
		flights: NewCoalescer[*apiResult](base),
		limiter: NewLimiter(cfg.Limiter),
		logger:  cfg.Logger,
	}
	if cfg.Tracer != nil {
		s.ring = newTraceRing(cfg.TraceRing)
	}
	if cfg.ErrorLog != nil {
		s.logf = cfg.ErrorLog.Printf
	} else {
		s.logf = log.Printf
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/traces", s.handleDebugTraces)
	s.mux.HandleFunc("/v1/curve", s.handleCurve)
	s.mux.HandleFunc("/v1/scenario/curve", s.handleScenarioCurve)
	s.mux.HandleFunc("/v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("/v1/propagate", s.handlePropagate)
	return s
}

// Handler returns the server's root handler: per-request tracing, panic
// recovery, and structured access logging around the route mux. Usable
// directly with httptest.
//
// With a process tracer configured, every request gets a trace ID
// (adopted from an inbound X-Trace-Id header, else generated), a
// request-scoped child tracer whose aggregates stream into the process
// tracer live, and a root span named serve.http.<route> — which is what
// gives /metrics its route-labeled request-latency histograms. Without a
// tracer the request runs on the old zero-overhead untraced path.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		info := &reqInfo{route: routeLabel(r.URL.Path)}
		ctx := r.Context()
		var rt *obs.Tracer
		var root *obs.Span
		if s.tracer != nil {
			info.traceID = sanitizeTraceID(r.Header.Get(TraceHeader))
			info.forced = info.traceID != ""
			if info.traceID == "" {
				info.traceID = newTraceID()
			}
			w.Header().Set(TraceHeader, info.traceID)
			rt = obs.NewRequestTracer(s.tracer)
			ctx = obs.WithTracer(ctx, rt)
			ctx, root = obs.StartSpan(ctx, "serve.http."+info.route)
			root.SetStr("trace_id", info.traceID)
		}
		ctx = context.WithValue(ctx, reqInfoKey{}, info)
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w}
		s.inflight.Add(1)
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				obs.Count(ctx, obs.CtrServePanics, 1)
				s.logf("serve: recovered panic on %s: %v", r.URL.Path, rec)
				s.writeError(sw, r, fmt.Errorf("%w: %v", robust.ErrPanic, rec))
			}
			s.inflight.Add(-1)
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			if rt != nil {
				s.finishTrace(rt, root, info, status)
			}
			s.logRequest(r, info, status, time.Since(start))
		}()
		s.mux.ServeHTTP(sw, r)
	})
}

// traced attaches the process tracer to a context — the bare-tracer
// variant of what the middleware does, for callers (and tests) driving
// serveAPI below the Handler middleware.
func (s *Server) traced(ctx context.Context) context.Context {
	return obs.WithTracer(ctx, s.tracer)
}

// Start listens on addr (host:port; port 0 picks a free one) and serves
// in a background goroutine, returning the bound address. Use Shutdown
// to stop.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.hs = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	//lint:ignore golifetime the acceptor loop is bounded by http.Server — Shutdown/Close makes Serve return ErrServerClosed
	go func() {
		if serr := s.hs.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			s.logf("serve: %v", serr)
		}
	}()
	return ln.Addr().String(), nil
}

// Shutdown drains the server gracefully: readiness flips to draining (so
// load balancers stop routing here), new connections stop being
// accepted, every in-flight request — including queued admitted work —
// runs to completion, and only then does the lifecycle context die. ctx
// bounds how long the drain may take; on expiry remaining work is
// abandoned and its flights canceled.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	if s.hs != nil {
		err = s.hs.Shutdown(ctx)
	}
	s.cancelBase()
	return err
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// apiResult is one computed (or cached) API response: the flight value
// shared by coalesced requests and the unit the response cache stores.
type apiResult struct {
	status   int
	body     []byte
	degraded bool
	// cacheable marks a complete, deterministic success — partial
	// (degraded) and error responses are never cached, so a request shed
	// or cut short can never poison later answers.
	cacheable bool
	// retryAfter is set on shed responses.
	retryAfter time.Duration
	// traceID identifies the trace of the flight that computed this
	// result. Coalesced waiters and response-cache hits record it as a
	// link on their own root spans, which is what attributes a thousand
	// identical requests to the one leader trace holding the solve tree.
	// Written once inside the computing flight, read-only afterwards.
	traceID string
}

// errEnvelope is the JSON error document.
type errEnvelope struct {
	Error  string `json:"error"`
	Class  string `json:"class,omitempty"`
	Status int    `json:"status"`
}

// errorResult renders a solve failure as an apiResult via the robust
// taxonomy's status mapping.
func errorResult(err error) *apiResult {
	status := robust.HTTPStatus(err)
	body, merr := json.Marshal(errEnvelope{Error: err.Error(), Class: string(robust.ErrorClass(err)), Status: status})
	if merr != nil {
		body = []byte(`{"error":"internal error","status":500}`)
		status = http.StatusInternalServerError
	}
	return &apiResult{status: status, body: body}
}

// shedResult renders a 429 with a Retry-After hint.
func shedResult(retryAfter time.Duration) *apiResult {
	body, merr := json.Marshal(errEnvelope{Error: ErrShed.Error(), Class: "shed", Status: http.StatusTooManyRequests})
	if merr != nil {
		body = []byte(`{"error":"shed","status":429}`)
	}
	return &apiResult{status: http.StatusTooManyRequests, body: body, retryAfter: retryAfter}
}

// serveAPI is the composed request path shared by every solve route:
// response cache → coalesced flight → (inside the flight) admission
// control → deadline-bounded compute. compute must return a non-nil
// apiResult and never an error — solver failures are rendered with
// errorResult so they share status mapping and coalesce like successes.
func (s *Server) serveAPI(w http.ResponseWriter, r *http.Request, key string, budget time.Duration, compute func(ctx context.Context) *apiResult) {
	ctx := r.Context()
	info := reqInfoFrom(ctx)
	obs.Count(ctx, obs.CtrServeRequests, 1)
	if res, ok := s.responses.Get(ctx, key); ok {
		info.noteResultOrigin(res, true)
		s.writeResult(w, r, res, true)
		return
	}
	res, shared, err := s.flights.Do(ctx, key, func(fctx context.Context) (out *apiResult, _ error) {
		// The flight runs on the server-lifetime context (an impatient
		// leader hanging up must not abort the solve other waiters need),
		// but its work still belongs to the leader's trace: transplant the
		// leader's traced position onto the flight context, so the solve
		// span tree lands in the leader's request tracer — and, by
		// aggregate propagation, in the process tracer.
		fctx = obs.AdoptTrace(fctx, ctx)
		defer func() {
			// A panic inside a flight would otherwise kill the process
			// (the flight runs outside the HTTP handler's recovery).
			if rec := recover(); rec != nil {
				obs.Count(fctx, obs.CtrServePanics, 1)
				s.logf("serve: recovered panic in flight %s: %v", r.URL.Path, rec)
				out = errorResult(fmt.Errorf("%w: %v", robust.ErrPanic, rec))
			}
			// Stamp fresh results with the computing request's trace ID;
			// results recycled from the cache re-check keep their original.
			if out != nil && out.traceID == "" && info != nil {
				out.traceID = info.traceID
			}
		}()
		// Re-check the cache now that this flight owns the key: a request
		// that missed the cache moments before an identical flight finished
		// would otherwise re-solve. Because the finished flight filled the
		// cache before being forgotten (below), passing this check means no
		// completed identical solve exists — together the two steps make
		// "exactly one solver run per unique request" hold even for
		// stragglers racing a finishing flight.
		if cached, ok := s.responses.Get(fctx, key); ok {
			return cached, nil
		}
		release, aerr := s.limiter.Acquire(fctx)
		if aerr != nil {
			if errors.Is(aerr, ErrShed) {
				obs.Count(fctx, obs.CtrServeShed, 1)
				return shedResult(s.limiter.RetryAfter()), nil
			}
			return errorResult(aerr), nil
		}
		defer release()
		sctx, cancel := context.WithTimeout(fctx, budget)
		defer cancel()
		out = compute(sctx)
		if out.cacheable {
			// Fill the cache from inside the flight, so by the time the
			// flight is forgotten the answer is already cached (see the
			// re-check above).
			s.responses.Put(fctx, key, out)
		}
		return out, nil
	})
	if err != nil {
		// This caller's own wait ended (client gone or connection
		// deadline); the flight may still complete for other waiters.
		s.writeError(w, r, err)
		return
	}
	if shared {
		obs.Count(ctx, obs.CtrServeCoalesced, 1)
		if info != nil {
			info.coalesced = true
		}
	}
	info.noteResultOrigin(res, false)
	s.writeResult(w, r, res, false)
}

// budget resolves a request's solve deadline: the route timeout,
// tightened by a positive timeout_ms.
func (s *Server) budget(timeoutMS int) time.Duration {
	b := s.cfg.RouteTimeout
	if timeoutMS > 0 {
		if t := time.Duration(timeoutMS) * time.Millisecond; t < b {
			b = t
		}
	}
	return b
}

// writeResult writes one apiResult, maintaining the serving counters.
func (s *Server) writeResult(w http.ResponseWriter, r *http.Request, res *apiResult, cached bool) {
	ctx := r.Context()
	if res.degraded {
		obs.Count(ctx, obs.CtrServeDegraded, 1)
		if info := reqInfoFrom(ctx); info != nil {
			info.degraded = true
		}
	}
	if res.status >= 400 && res.status != http.StatusTooManyRequests {
		obs.Count(ctx, obs.CtrServeErrors, 1)
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if cached {
		h.Set("X-Cache", "hit")
	}
	if res.retryAfter > 0 {
		secs := int(res.retryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		h.Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	w.WriteHeader(res.status)
	if _, err := w.Write(res.body); err != nil {
		s.logf("serve: writing %s response: %v", r.URL.Path, err)
	}
}

// writeError renders err through the taxonomy mapping.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	res := errorResult(err)
	if res.status >= http.StatusInternalServerError {
		s.logf("serve: %s: %v", r.URL.Path, err)
	}
	s.writeResult(w, r, res, false)
}

// writeJSON marshals v as the response body with the given status.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		s.writeError(w, r, fmt.Errorf("encoding response: %w", err))
		return
	}
	s.writeResult(w, r, &apiResult{status: status, body: body}, false)
}

// handleHealthz reports liveness: the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, map[string]any{"ok": true})
}

// handleReadyz reports readiness: 200 while accepting work, 503 once
// draining so load balancers route new traffic elsewhere while in-flight
// requests finish.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeJSON(w, r, http.StatusServiceUnavailable, map[string]any{"ready": false, "draining": true})
		return
	}
	s.writeJSON(w, r, http.StatusOK, map[string]any{"ready": true})
}

// handleMetrics exposes the process tracer in the Prometheus text
// format, through the same formatter as `gsueval -metrics prom`
// (robust.Metrics.WritePromWith → obs.WritePromText), followed by the
// serving-state gauges (in-flight requests, limiter occupancy, queue
// depth, trace-ring fill) and the process runtime/build-info families.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := robust.NewMetrics(0, 0)
	m.AddTrace(s.tracer)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := m.WritePromWith(w, s.tracer.Histograms()); err != nil {
		s.logf("serve: writing /metrics: %v", err)
		return
	}
	gauges := map[string]float64{
		"serve_inflight_requests": float64(s.inflight.Load()),
		"serve_active_solves":     float64(s.limiter.Active()),
		"serve_queue_depth":       float64(s.limiter.Queued()),
	}
	if s.ring != nil {
		stored, _ := s.ring.snapshot()
		gauges["serve_trace_ring_size"] = float64(len(stored))
	}
	if err := obs.WritePromGauges(w, gauges); err != nil {
		s.logf("serve: writing /metrics gauges: %v", err)
		return
	}
	if err := obs.WritePromRuntime(w, obs.CurrentBuildInfo(), obs.ReadRuntimeStats()); err != nil {
		s.logf("serve: writing /metrics runtime: %v", err)
	}
}

// debugTracesResponse is the GET /debug/traces document: the sampled
// trace ring, newest first, each entry an obs.TraceDoc exactly as
// obs.WriteTrace would emit it (same schema as `gsueval -trace`).
type debugTracesResponse struct {
	Capacity int            `json:"capacity"`
	Stored   int            `json:"stored"`
	Sampled  int64          `json:"sampled"`
	Traces   []obs.TraceDoc `json:"traces"`
}

// handleDebugTraces serves the sampled request-trace ring. With tracing
// disabled it reports an empty ring rather than erroring, so probes can
// hit the route unconditionally.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	resp := debugTracesResponse{Traces: []obs.TraceDoc{}}
	if s.ring != nil {
		resp.Traces, resp.Sampled = s.ring.snapshot()
		resp.Capacity = s.ring.capacity()
		resp.Stored = len(resp.Traces)
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}
