package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"guardedop/internal/obs"
)

// TestThousandCoalescedQueries is the coalescing acceptance test: a
// thousand concurrent identical curve queries must all succeed while the
// solver runs exactly once — every other request is served by the flight
// (coalesced) or the response cache, never by a duplicate solve.
func TestThousandCoalescedQueries(t *testing.T) {
	t.Parallel()
	tr := obs.NewTracer()
	s := New(Config{Tracer: tr})
	h := s.Handler()
	const n = 1000
	body := `{"points":20}`
	codes := make([]int, n)
	bodies := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := hit(h, http.MethodPost, "/v1/curve", body)
			codes[i] = rec.Code
			bodies[i] = rec.Body.String()
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, code, bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("request %d: response differs from request 0 — cache or flight corruption", i)
		}
	}
	// Exactly one underlying solver run for the one unique parameter set.
	if got := tr.Stages()["core.curve"].Count; got != 1 {
		t.Fatalf("core.curve ran %d times for %d identical queries, want exactly 1", got, n)
	}
	ctrs := tr.Counters()
	if ctrs[obs.CtrServeRequests] != n {
		t.Errorf("serve.requests = %d, want %d", ctrs[obs.CtrServeRequests], n)
	}
	// Every non-leader request was either coalesced onto the flight or
	// served from the response cache.
	served := ctrs[obs.CtrServeCoalesced] + ctrs[obs.CtrServeCacheHits]
	if served < n-1 {
		t.Errorf("coalesced (%d) + cache hits (%d) = %d, want >= %d",
			ctrs[obs.CtrServeCoalesced], ctrs[obs.CtrServeCacheHits], served, n-1)
	}
	if ctrs[obs.CtrServeShed] != 0 || ctrs[obs.CtrServeErrors] != 0 {
		t.Errorf("shed %d errors %d, want 0/0", ctrs[obs.CtrServeShed], ctrs[obs.CtrServeErrors])
	}
}

// TestSaturationBurstSheds is the load-shedding acceptance test: a burst
// of distinct queries against a deliberately tiny limiter must shed with
// 429 + Retry-After, never 5xx, while every admitted request completes.
func TestSaturationBurstSheds(t *testing.T) {
	t.Parallel()
	tr := obs.NewTracer()
	s := New(Config{
		Tracer:  tr,
		Workers: 1,
		Limiter: LimiterConfig{MaxConcurrent: 1, MaxQueue: 1},
	})
	h := s.Handler()
	// Each distinct solve must outlast a scheduler quantum (~10ms), so
	// that even on one core the burst genuinely overlaps at the limiter
	// instead of running back-to-back between preemption points.
	const n, points = 32, 600
	type outcome struct {
		code       int
		retryAfter string
		body       string
	}
	outcomes := make([]outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct λ per request: no coalescing, every request is new work.
			body := fmt.Sprintf(`{"params":{"lambda":%g},"points":%d}`, (1.0/48.0)*(1+float64(i)/100), points)
			rec := hit(h, http.MethodPost, "/v1/curve", body)
			outcomes[i] = outcome{rec.Code, rec.Header().Get("Retry-After"), rec.Body.String()}
		}(i)
	}
	wg.Wait()
	var ok200, shed429 int
	for i, o := range outcomes {
		switch o.code {
		case http.StatusOK:
			ok200++
			if !strings.Contains(o.body, fmt.Sprintf(`"points_returned":%d`, points+1)) {
				t.Errorf("admitted request %d returned an incomplete curve: %s", i, o.body[:min(120, len(o.body))])
			}
		case http.StatusTooManyRequests:
			shed429++
			if o.retryAfter == "" {
				t.Errorf("shed request %d missing Retry-After", i)
			}
			if !strings.Contains(o.body, `"class":"shed"`) {
				t.Errorf("shed request %d body = %s", i, o.body)
			}
		default:
			t.Errorf("request %d: status %d (body %s) — saturation must never 5xx", i, o.code, o.body)
		}
	}
	if shed429 == 0 {
		t.Error("no request shed: the burst did not saturate the limiter")
	}
	if ok200 == 0 {
		t.Error("no request admitted")
	}
	if got := tr.Counters()[obs.CtrServeShed]; got != int64(shed429) {
		t.Errorf("serve.shed = %d, but %d requests saw 429", got, shed429)
	}
	if got := tr.Counters()[obs.CtrServeErrors]; got != 0 {
		t.Errorf("serve.errors = %d under saturation, want 0", got)
	}
}

// TestGracefulDrain is the SIGTERM acceptance test over a real listener:
// requests in flight when Shutdown begins — including work still queued
// at the limiter — all complete; none are dropped.
func TestGracefulDrain(t *testing.T) {
	t.Parallel()
	tr := obs.NewTracer()
	s := New(Config{
		Tracer:  tr,
		Workers: 1,
		Limiter: LimiterConfig{MaxConcurrent: 2, MaxQueue: 8},
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	client := &http.Client{Timeout: 2 * time.Minute}

	const n = 8
	codes := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			// Slow enough (~tens of ms each, distinct params) that the
			// batch is still solving when the drain begins.
			body := fmt.Sprintf(`{"params":{"lambda":%g},"points":600}`, (1.0/48.0)*(1+float64(i)/50))
			req, err := http.NewRequest(http.MethodPost, base+"/v1/curve", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				codes <- -1
				return
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Errorf("request %d dropped during drain: %v", i, err)
				codes <- -1
				return
			}
			if cerr := resp.Body.Close(); cerr != nil {
				t.Error(cerr)
			}
			codes <- resp.StatusCode
		}(i)
	}

	// Wait until every request has made it into a handler — past the
	// listener, so closing it cannot refuse any of them — then begin the
	// drain while the batch is still solving.
	deadline := time.Now().Add(30 * time.Second)
	for tr.Counters()[obs.CtrServeRequests] < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests reached a handler", tr.Counters()[obs.CtrServeRequests], n)
		}
		time.Sleep(200 * time.Microsecond)
	}
	sctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if !s.Draining() {
		t.Error("server not marked draining after Shutdown")
	}

	for i := 0; i < n; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("in-flight request finished with %d, want 200", code)
		}
	}
	if got := tr.Counters()[obs.CtrServeRequests]; got != n {
		t.Errorf("serve.requests = %d, want %d", got, n)
	}
	// New connections are refused once drained.
	if _, err := client.Get(base + "/healthz"); err == nil {
		t.Error("drained server still accepting connections")
	}
}

// TestLoadSpecReplayable asserts the generator is deterministic: the
// same (seed, n, distinct) always yields the identical script.
func TestLoadSpecReplayable(t *testing.T) {
	t.Parallel()
	a := GenerateLoad(42, 200, 4)
	b := GenerateLoad(42, 200, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("GenerateLoad is not replayable: same seed produced different scripts")
	}
	c := GenerateLoad(43, 200, 4)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical scripts")
	}
	for i, r := range a.Requests {
		if !strings.HasPrefix(r.Path, "/v1/") || !strings.HasPrefix(r.Body, "{") {
			t.Fatalf("request %d malformed: %+v", i, r)
		}
	}
}

// TestRunLoadAgainstServer replays a generated script against a live
// server and asserts a clean aggregate: no transport errors, no 5xx.
func TestRunLoadAgainstServer(t *testing.T) {
	t.Parallel()
	tr := obs.NewTracer()
	s := New(Config{
		Tracer:  tr,
		Workers: 1,
		// Roomy queue: this test asserts clean completion, not shedding.
		Limiter: LimiterConfig{MaxConcurrent: 4, MaxQueue: 64},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := GenerateLoad(7, 120, 3)
	spec.Concurrency = 16
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	report, err := RunLoad(ctx, ts.Client(), ts.URL, spec)
	if err != nil {
		t.Fatal(err)
	}
	if report.Total != 120 || report.Transport != 0 {
		t.Fatalf("report: %s", report)
	}
	if report.Errors5xx != 0 {
		t.Fatalf("load run produced 5xx: %s", report)
	}
	if report.StatusCount[http.StatusOK] != 120 {
		t.Fatalf("want 120 clean 200s: %s", report)
	}
	// The palette has far fewer unique requests than total requests, so
	// coalescing and caching must have absorbed most of the work.
	ctrs := tr.Counters()
	if served := ctrs[obs.CtrServeCoalesced] + ctrs[obs.CtrServeCacheHits]; served == 0 {
		t.Error("neither coalescing nor caching absorbed any repeat work")
	}
}

// BenchmarkCoalescedCurveQueries measures the serving path's throughput
// for the hot case: concurrent identical queries absorbed by the flight
// and response cache.
func BenchmarkCoalescedCurveQueries(b *testing.B) {
	s := New(Config{})
	h := s.Handler()
	body := `{"points":20}`
	// Prime the cache so the benchmark measures steady-state serving.
	if rec := hit(h, http.MethodPost, "/v1/curve", body); rec.Code != http.StatusOK {
		b.Fatalf("priming request: %d", rec.Code)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if rec := hit(h, http.MethodPost, "/v1/curve", body); rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
}

// BenchmarkDistinctCurveQueries measures the cold path: a rotating
// palette wider than the response cache would coalesce, exercising the
// analyzer cache and limiter.
func BenchmarkDistinctCurveQueries(b *testing.B) {
	s := New(Config{Limiter: LimiterConfig{MaxConcurrent: 4, MaxQueue: 1 << 20}})
	h := s.Handler()
	bodies := make([]string, 8)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(`{"params":{"lambda":%g},"points":20}`, (1.0/48.0)*(1+float64(i)/16))
	}
	var i int
	var mu sync.Mutex
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			body := bodies[i%len(bodies)]
			i++
			mu.Unlock()
			if rec := hit(h, http.MethodPost, "/v1/curve", body); rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
}
