package serve

import (
	"sync"

	"guardedop/internal/obs"
)

// traceRing is the bounded in-memory store behind GET /debug/traces: the
// last N sampled trace documents, overwritten oldest-first. A fixed ring
// keeps the debug endpoint's memory bounded no matter how long the
// daemon runs or how hot the sampler is.
type traceRing struct {
	mu    sync.Mutex
	buf   []obs.TraceDoc
	next  int   // index the next push writes
	count int   // filled slots, ≤ len(buf)
	total int64 // documents ever pushed (≥ count once wrapped)
}

// newTraceRing returns a ring holding up to capacity documents.
func newTraceRing(capacity int) *traceRing {
	return &traceRing{buf: make([]obs.TraceDoc, capacity)}
}

// push stores one document, evicting the oldest when full.
func (r *traceRing) push(doc obs.TraceDoc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = doc
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.total++
}

// snapshot returns the stored documents newest-first, plus the
// total-ever-pushed count.
func (r *traceRing) snapshot() ([]obs.TraceDoc, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]obs.TraceDoc, 0, r.count)
	for i := 1; i <= r.count; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out, r.total
}

// capacity returns the ring's fixed size.
func (r *traceRing) capacity() int { return len(r.buf) }
