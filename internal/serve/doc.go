// Package serve is the performability-as-a-service layer behind cmd/gsuserve:
// a long-running stdlib net/http daemon answering Y(φ) curve, φ*
// optimization, and uncertainty-propagation queries as JSON API requests
// (docs/SERVING.md).
//
// The package is organised as small, independently tested robustness
// pieces that the Server composes:
//
//   - coalesce.go — request coalescing: identical in-flight parameter
//     sets share one solve (singleflight keyed on a canonical params
//     hash), so a thundering herd of the paper-grid query costs one
//     solver run.
//   - cache.go — a sharded, process-wide cache with size and TTL bounds,
//     holding both built analyzers (keyed by parameter set) and whole
//     responses (keyed by full request), with hit/miss/eviction counters
//     wired into internal/obs.
//   - limiter.go — load shedding: a bounded admission queue plus a
//     concurrency limiter; under saturation new work is rejected 429
//     with Retry-After while admitted work runs to completion.
//   - handlers.go — the API routes, threading each request's context
//     (server-enforced per-route deadline) into the solver stack and
//     degrading to partial curve results instead of failing whole
//     requests when the deadline lands mid-sweep.
//   - server.go — lifecycle: /healthz, /readyz (flips unready during
//     drain), panic-recovery middleware, robust error-taxonomy → HTTP
//     status mapping (robust.HTTPStatus), graceful drain.
//   - loadgen.go — a replayable, seeded load generator for benchmarks
//     and the CI smoke test.
package serve
