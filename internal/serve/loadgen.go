package serve

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// LoadRequest is one scripted query: a route path and the JSON body to
// POST to it. Specs are plain data so a run can be replayed exactly.
type LoadRequest struct {
	Path string `json:"path"`
	Body string `json:"body"`
}

// LoadSpec is a replayable load script: the request sequence plus the
// concurrency to drive it at. The same spec against the same server
// state asks for exactly the same work.
type LoadSpec struct {
	// Concurrency is the number of parallel clients (default 8).
	Concurrency int `json:"concurrency"`
	// Requests are issued in order, distributed round-robin across the
	// clients.
	Requests []LoadRequest `json:"requests"`
}

// LoadReport aggregates one load run.
type LoadReport struct {
	Total       int           `json:"total"`
	StatusCount map[int]int   `json:"status_count"`
	Degraded    int           `json:"degraded"`
	Shed        int           `json:"shed"`
	Errors5xx   int           `json:"errors_5xx"`
	Transport   int           `json:"transport_errors"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	P50         time.Duration `json:"p50_ns"`
	P95         time.Duration `json:"p95_ns"`
}

// String renders the report for humans.
func (r *LoadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d requests in %v (p50 %v, p95 %v)\n", r.Total, r.Elapsed.Round(time.Millisecond), r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond))
	statuses := make([]int, 0, len(r.StatusCount))
	for s := range r.StatusCount {
		statuses = append(statuses, s)
	}
	sort.Ints(statuses)
	for _, s := range statuses {
		fmt.Fprintf(&b, "  %d: %d\n", s, r.StatusCount[s])
	}
	fmt.Fprintf(&b, "  degraded: %d, shed: %d, 5xx: %d, transport errors: %d", r.Degraded, r.Shed, r.Errors5xx, r.Transport)
	return b.String()
}

// GenerateLoad builds a deterministic load script: n requests over a mix
// of curve, optimize, and propagate queries against a palette of
// `distinct` parameter sets (varying λ around the paper's value). The
// same (seed, n, distinct) triple always yields the same script, so a
// run is replayable bit-for-bit.
func GenerateLoad(seed int64, n, distinct int) LoadSpec {
	if distinct < 1 {
		distinct = 1
	}
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]LoadRequest, 0, n)
	for i := 0; i < n; i++ {
		// λ palette: scale the paper's 1/48 h⁻¹ by 1 + k/16 for k in
		// [0, distinct).
		lambda := (1.0 / 48.0) * (1 + float64(rng.Intn(distinct))/16)
		params := fmt.Sprintf(`"params":{"lambda":%g}`, lambda)
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5, 6: // curve-heavy mix
			reqs = append(reqs, LoadRequest{Path: "/v1/curve", Body: fmt.Sprintf(`{%s,"points":20}`, params)})
		case 7, 8:
			reqs = append(reqs, LoadRequest{Path: "/v1/optimize", Body: fmt.Sprintf(`{%s,"grid_points":20}`, params)})
		default:
			reqs = append(reqs, LoadRequest{Path: "/v1/propagate", Body: fmt.Sprintf(`{%s,"samples":8,"seed":7}`, params)})
		}
	}
	return LoadSpec{Concurrency: 8, Requests: reqs}
}

// RunLoad replays spec against the server at baseURL and aggregates the
// outcome. client may be nil (http.DefaultClient). ctx cancels the run
// early; requests already issued still count.
func RunLoad(ctx context.Context, client *http.Client, baseURL string, spec LoadSpec) (*LoadReport, error) {
	if client == nil {
		client = http.DefaultClient
	}
	conc := spec.Concurrency
	if conc < 1 {
		conc = 8
	}
	if conc > len(spec.Requests) && len(spec.Requests) > 0 {
		conc = len(spec.Requests)
	}
	report := &LoadReport{StatusCount: make(map[int]int)}
	latencies := make([]time.Duration, 0, len(spec.Requests))
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(spec.Requests); i += conc {
				if ctx.Err() != nil {
					return
				}
				lr := spec.Requests[i]
				t0 := time.Now()
				status, degraded, err := issue(ctx, client, baseURL, lr)
				lat := time.Since(t0)
				mu.Lock()
				report.Total++
				if err != nil {
					report.Transport++
				} else {
					report.StatusCount[status]++
					latencies = append(latencies, lat)
					switch {
					case status == http.StatusTooManyRequests:
						report.Shed++
					case status >= 500:
						report.Errors5xx++
					}
					if degraded {
						report.Degraded++
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	report.Elapsed = time.Since(start)
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		report.P50 = latencies[len(latencies)*50/100]
		report.P95 = latencies[len(latencies)*95/100]
	}
	if report.Total == 0 && len(spec.Requests) > 0 {
		return report, fmt.Errorf("serve: load run issued no requests: %w", ctx.Err())
	}
	return report, nil
}

// issue performs one scripted request, reporting the status and whether
// the response document carries the degraded marker.
func issue(ctx context.Context, client *http.Client, baseURL string, lr LoadRequest) (status int, degraded bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+lr.Path, strings.NewReader(lr.Body))
	if err != nil {
		return 0, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, false, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return resp.StatusCode, false, err
	}
	return resp.StatusCode, strings.Contains(string(body), `"degraded":true`), nil
}
