package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"guardedop/internal/core"
	"guardedop/internal/mdcd"
	"guardedop/internal/obs"
	"guardedop/internal/robust"
	"guardedop/internal/uncertainty"
)

// hit issues one in-process request through the server's full handler
// stack (recovery middleware included) and returns the recorder.
func hit(h http.Handler, method, target, body string) *httptest.ResponseRecorder {
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, target, nil)
	} else {
		req = httptest.NewRequest(method, target, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestCurveHappyPathAndResponseCache(t *testing.T) {
	t.Parallel()
	tr := obs.NewTracer()
	// Parametric "off" pins the numeric serving path (solves > 0); the
	// closed-form default is covered by TestCurveParametricDefault.
	s := New(Config{Tracer: tr, Parametric: "off"})
	h := s.Handler()

	rec := hit(h, http.MethodPost, "/v1/curve", `{"points":8}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var resp curveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if resp.Degraded || resp.PointsRequested != 9 || resp.PointsReturned != 9 || resp.Solves == 0 {
		t.Fatalf("response = %+v, want full 9-point undegraded curve with solves > 0", resp)
	}
	// Spot-check the numbers against the core analyzer directly.
	p := mdcd.DefaultParams()
	if resp.Params.Theta != p.Theta || resp.Params.Lambda != p.Lambda {
		t.Errorf("params echo = %+v, want resolved defaults", resp.Params)
	}
	a, err := core.NewAnalyzer(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 4, 8} {
		want, err := a.Evaluate(resp.Results[i].Phi)
		if err != nil {
			t.Fatal(err)
		}
		// The sweep's shared-propagation segments and the pointwise path
		// agree to solver tolerance, not bit-exactly.
		if got := resp.Results[i].Y; math.Abs(got-want.Y) > 1e-8*math.Abs(want.Y) {
			t.Errorf("Y(phi=%g) = %g over HTTP, %g direct", resp.Results[i].Phi, got, want.Y)
		}
	}

	// The identical query replays from the response cache, bit-for-bit.
	rec2 := hit(h, http.MethodPost, "/v1/curve", `{"points":8}`)
	if rec2.Code != http.StatusOK || rec2.Header().Get("X-Cache") != "hit" {
		t.Fatalf("repeat query: status %d, X-Cache %q, want cached 200", rec2.Code, rec2.Header().Get("X-Cache"))
	}
	if rec2.Body.String() != rec.Body.String() {
		t.Error("cached response differs from the original")
	}
	// Exactly one sweep ran in total.
	if got := tr.Stages()["core.curve"].Count; got != 1 {
		t.Errorf("core.curve ran %d times, want 1", got)
	}
}

// TestCurveParametricDefault pins the daemon's default serving path: the
// zero-value Config resolves to parametric "auto", so an in-domain curve
// is served from closed forms — zero CTMC solver passes — and still
// matches the numeric engine at the equivalence bound.
func TestCurveParametricDefault(t *testing.T) {
	t.Parallel()
	tr := obs.NewTracer()
	s := New(Config{Tracer: tr})
	rec := hit(s.Handler(), http.MethodPost, "/v1/curve", `{"points":8}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp curveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Degraded || resp.PointsReturned != 9 {
		t.Fatalf("response = %+v, want full undegraded curve", resp)
	}
	if resp.Solves != 0 {
		t.Errorf("solves = %d, want 0 (closed-form serving)", resp.Solves)
	}
	if got := tr.Counter(obs.CtrParametricHits); got != 9 {
		t.Errorf("parametric.hits = %d, want 9", got)
	}
	a, err := core.NewAnalyzer(mdcd.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 4, 8} {
		want, err := a.Evaluate(resp.Results[i].Phi)
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Results[i].Y; math.Abs(got-want.Y) > 1e-8*math.Abs(want.Y) {
			t.Errorf("Y(phi=%g) = %g parametric over HTTP, %g numeric direct", resp.Results[i].Phi, got, want.Y)
		}
	}
}

func TestCurveGETQuery(t *testing.T) {
	t.Parallel()
	s := New(Config{})
	rec := hit(s.Handler(), http.MethodGet, "/v1/curve?points=4&lambda=0.03", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp curveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Params.Lambda != 0.03 || resp.PointsReturned != 5 {
		t.Errorf("GET query: lambda = %g points = %d, want 0.03 / 5", resp.Params.Lambda, resp.PointsReturned)
	}
}

func TestOptimizeHappyPath(t *testing.T) {
	t.Parallel()
	s := New(Config{})
	rec := hit(s.Handler(), http.MethodPost, "/v1/optimize", `{"grid_points":10}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp optimizeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// The server defaults to the parametric fast path; the bit-exact
	// reference must run the same engine.
	a, err := core.NewAnalyzerWithOptions(mdcd.DefaultParams(), core.Options{Parametric: core.ParametricAuto})
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.OptimizePhiContext(context.Background(), core.OptimizeOptions{GridPoints: 10})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Best.Phi != want.Phi || resp.Best.Y != want.Y {
		t.Errorf("optimize over HTTP = (φ %g, Y %g), direct = (φ %g, Y %g)",
			resp.Best.Phi, resp.Best.Y, want.Phi, want.Y)
	}
}

func TestPropagateHappyPath(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 2})
	rec := hit(s.Handler(), http.MethodPost, "/v1/propagate", `{"samples":6,"seed":3,"grid_points":8}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp propagateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	p := mdcd.DefaultParams()
	want, err := uncertainty.Propagate(p, uncertainty.Gamma{Shape: 2, Rate: 2 / p.MuNew},
		uncertainty.PropagateOptions{Samples: 6, Seed: 3, GridPoints: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.RobustPhi != want.RobustPhi || resp.PlugInPhi != want.PlugInPhi || resp.SamplesUsed != want.SamplesUsed {
		t.Errorf("propagate over HTTP = %+v, direct robust φ %g plug-in φ %g used %d",
			resp, want.RobustPhi, want.PlugInPhi, want.SamplesUsed)
	}
	if resp.Degraded != (want.SamplesUsed < want.SamplesRequested) {
		t.Errorf("degraded = %v with %d/%d samples", resp.Degraded, resp.SamplesUsed, resp.SamplesRequested)
	}
}

func TestBadRequests(t *testing.T) {
	t.Parallel()
	s := New(Config{})
	h := s.Handler()
	cases := []struct {
		name, method, target, body string
	}{
		{"unknown field", http.MethodPost, "/v1/curve", `{"bogus":1}`},
		{"malformed JSON", http.MethodPost, "/v1/curve", `{`},
		{"points too large", http.MethodPost, "/v1/curve", fmt.Sprintf(`{"points":%d}`, maxCurvePoints+1)},
		{"grid_points too small", http.MethodPost, "/v1/optimize", `{"grid_points":1}`},
		{"samples too small", http.MethodPost, "/v1/propagate", `{"samples":1}`},
		{"half posterior", http.MethodPost, "/v1/propagate", `{"shape":2}`},
		{"invalid theta", http.MethodPost, "/v1/curve", `{"params":{"theta":-1}}`},
		{"bad query number", http.MethodGet, "/v1/curve?points=abc", ""},
		{"unsupported method", http.MethodPut, "/v1/curve", `{}`},
	}
	for _, tc := range cases {
		rec := hit(h, tc.method, tc.target, tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", tc.name, rec.Code, rec.Body.String())
		}
	}
}

// TestServeAPITaxonomyStatus drives fabricated compute outcomes through
// the full serveAPI pipeline and asserts the robust-taxonomy statuses
// reach the wire — the HTTP half of the no-default-500 contract.
func TestServeAPITaxonomyStatus(t *testing.T) {
	t.Parallel()
	tr := obs.NewTracer()
	s := New(Config{Tracer: tr})
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"canceled", fmt.Errorf("sweep: %w", robust.ErrCanceled), http.StatusGatewayTimeout},
		{"ill-conditioned", fmt.Errorf("solve: %w", robust.ErrIllConditioned), http.StatusUnprocessableEntity},
		{"invariant", fmt.Errorf("check: %w", robust.ErrInvariant), http.StatusUnprocessableEntity},
		{"not-converged", fmt.Errorf("uniformization: %w", robust.ErrNotConverged), http.StatusInternalServerError},
	}
	for i, tc := range cases {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/test", nil)
		req = req.WithContext(s.traced(req.Context()))
		key := fmt.Sprintf("taxonomy-%d", i)
		s.serveAPI(rec, req, key, time.Second, func(context.Context) *apiResult {
			return errorResult(tc.err)
		})
		if rec.Code != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, rec.Code, tc.want)
		}
		var env errEnvelope
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Fatalf("%s: decoding envelope: %v", tc.name, err)
		}
		if env.Class != tc.name {
			t.Errorf("%s: class = %q", tc.name, env.Class)
		}
	}
	if got := tr.Counters()[obs.CtrServeErrors]; got != int64(len(cases)) {
		t.Errorf("serve.errors = %d, want %d", got, len(cases))
	}
	// Error responses are never cached: the same key recomputes.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/test", nil)
	req = req.WithContext(s.traced(req.Context()))
	ran := false
	s.serveAPI(rec, req, "taxonomy-0", time.Second, func(context.Context) *apiResult {
		ran = true
		return jsonResult(map[string]bool{"ok": true}, false, true)
	})
	if !ran || rec.Code != http.StatusOK {
		t.Errorf("recompute after error: ran=%v status=%d, want fresh 200", ran, rec.Code)
	}
}

// TestPanicRecovery asserts both recovery layers: a panic in a plain
// handler and a panic inside a coalesced flight each become a 500 with
// the panic class, counted, without killing the process.
func TestPanicRecovery(t *testing.T) {
	t.Parallel()
	tr := obs.NewTracer()
	s := New(Config{Tracer: tr})
	s.mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	})
	rec := hit(s.Handler(), http.MethodGet, "/boom", "")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("handler panic: status = %d, want 500", rec.Code)
	}
	var env errEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Class != "panic" {
		t.Errorf("handler panic class = %q", env.Class)
	}

	// Flight panic: recovered inside the flight, shared as a 500.
	rec2 := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/test", nil)
	req = req.WithContext(s.traced(req.Context()))
	s.serveAPI(rec2, req, "flight-panic", time.Second, func(context.Context) *apiResult {
		panic("flight exploded")
	})
	if rec2.Code != http.StatusInternalServerError {
		t.Fatalf("flight panic: status = %d, want 500", rec2.Code)
	}
	if got := tr.Counters()[obs.CtrServePanics]; got != 2 {
		t.Errorf("serve.panics = %d, want 2", got)
	}
}

func TestHealthzReadyzAndDrainFlag(t *testing.T) {
	t.Parallel()
	s := New(Config{})
	h := s.Handler()
	if rec := hit(h, http.MethodGet, "/healthz", ""); rec.Code != http.StatusOK {
		t.Errorf("healthz = %d, want 200", rec.Code)
	}
	if rec := hit(h, http.MethodGet, "/readyz", ""); rec.Code != http.StatusOK {
		t.Errorf("readyz = %d, want 200", rec.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	rec := hit(h, http.MethodGet, "/readyz", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"draining":true`) {
		t.Errorf("draining readyz body = %s", rec.Body.String())
	}
	// Liveness is unaffected by drain.
	if rec := hit(h, http.MethodGet, "/healthz", ""); rec.Code != http.StatusOK {
		t.Errorf("draining healthz = %d, want 200", rec.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	t.Parallel()
	tr := obs.NewTracer()
	s := New(Config{Tracer: tr})
	h := s.Handler()
	if rec := hit(h, http.MethodPost, "/v1/curve", `{"points":4}`); rec.Code != http.StatusOK {
		t.Fatalf("curve priming request failed: %d", rec.Code)
	}
	rec := hit(h, http.MethodGet, "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"gsu_serve_requests_total",
		"gsu_serve_cache_misses_total",
		`gsu_stage_total{stage="core.curve"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestCurveDeadlinePartialHTTP is the HTTP half of the completed-prefix
// contract: a request whose budget expires mid-sweep gets 200 with
// degraded:true and the prefix of points solved before the deadline,
// matching a full solve point-for-point.
func TestCurveDeadlinePartialHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-calibrated test")
	}
	t.Parallel()
	const points = 1600 // 51 segments of 32: plenty of room for a mid-sweep deadline
	// Calibrate: how long does the full sweep take on this machine?
	full := New(Config{Workers: 1})
	t0 := time.Now()
	recFull := hit(full.Handler(), http.MethodPost, "/v1/curve", fmt.Sprintf(`{"points":%d}`, points))
	elapsed := time.Since(t0)
	if recFull.Code != http.StatusOK {
		t.Fatalf("calibration sweep failed: %d %s", recFull.Code, recFull.Body.String())
	}
	var fullResp curveResponse
	if err := json.Unmarshal(recFull.Body.Bytes(), &fullResp); err != nil {
		t.Fatal(err)
	}

	// Fresh server per attempt so no cache can short-circuit the deadline.
	for _, frac := range []float64{0.4, 0.2, 0.6, 0.1, 0.8} {
		ms := int(float64(elapsed.Milliseconds()) * frac)
		if ms < 1 {
			ms = 1
		}
		tr := obs.NewTracer()
		s := New(Config{Workers: 1, Tracer: tr})
		rec := hit(s.Handler(), http.MethodPost, "/v1/curve",
			fmt.Sprintf(`{"points":%d,"timeout_ms":%d}`, points, ms))
		switch rec.Code {
		case http.StatusGatewayTimeout:
			continue // deadline hit before any segment finished: tighter than intended
		case http.StatusOK:
		default:
			t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
		}
		var resp curveResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.Degraded {
			continue // sweep finished inside the budget: deadline too loose
		}
		if resp.PointsReturned == 0 || resp.PointsReturned >= resp.PointsRequested {
			t.Fatalf("degraded response returned %d/%d points", resp.PointsReturned, resp.PointsRequested)
		}
		if got := tr.Counters()[obs.CtrServeDegraded]; got != 1 {
			t.Errorf("serve.degraded = %d, want 1", got)
		}
		// The surviving points must match the full solve bit-for-bit: a
		// partial answer is a prefix, never an approximation.
		fullByPhi := make(map[float64]pointJSON, len(fullResp.Results))
		for _, pt := range fullResp.Results {
			fullByPhi[pt.Phi] = pt
		}
		for _, pt := range resp.Results {
			want, ok := fullByPhi[pt.Phi]
			if !ok {
				t.Fatalf("degraded point φ=%g not on the full grid", pt.Phi)
			}
			if pt.Y != want.Y {
				t.Fatalf("degraded Y(φ=%g) = %g, full solve = %g", pt.Phi, pt.Y, want.Y)
			}
		}
		return // success
	}
	t.Skip("no attempt landed mid-sweep on this machine; core-layer test covers the contract deterministically")
}
