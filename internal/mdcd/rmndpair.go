package mdcd

import (
	"context"
	"fmt"

	"guardedop/internal/ctmc"
	"guardedop/internal/obs"
	"guardedop/internal/sparse"
)

// RMNdPair solves two RMNd instantiations (the paper solves RMNd twice per
// φ: once with µ_new for the upgraded pair, once with µ_old for the
// recovered pair) in a single chain. The two generators are stacked
// block-diagonally, so the blocks evolve independently; starting each block
// at half its model's initial distribution and doubling its reward rates
// recovers both no-failure probabilities from one solver pass. The halving
// and doubling are exact in binary floating point, so stacking introduces
// no scaling error of its own.
type RMNdPair struct {
	chain *ctmc.Chain
	pi0   []float64
	// Doubled MARK(failure)==0 indicators, each supported on its own block.
	ratesFirst  []float64
	ratesSecond []float64
}

// NewRMNdPair stacks two generated RMNd models into one chain.
func NewRMNdPair(first, second *RMNd) (*RMNdPair, error) {
	if first == nil || second == nil || first.Space == nil || second.Space == nil {
		return nil, fmt.Errorf("mdcd: RMNdPair needs two generated models")
	}
	na, nb := first.Space.NumStates(), second.Space.NumStates()
	g := sparse.NewCOO(na+nb, na+nb)
	for r := 0; r < na; r++ {
		first.Space.Chain.Generator().Row(r, func(c int, v float64) {
			g.Add(r, c, v)
		})
	}
	for r := 0; r < nb; r++ {
		second.Space.Chain.Generator().Row(r, func(c int, v float64) {
			g.Add(na+r, na+c, v)
		})
	}
	chain, err := ctmc.New(g)
	if err != nil {
		return nil, fmt.Errorf("mdcd: stacking RMNd pair: %w", err)
	}
	p := &RMNdPair{
		chain:       chain,
		pi0:         make([]float64, na+nb),
		ratesFirst:  make([]float64, na+nb),
		ratesSecond: make([]float64, na+nb),
	}
	for i, v := range first.Space.Initial {
		p.pi0[i] = 0.5 * v
	}
	for i, v := range second.Space.Initial {
		p.pi0[na+i] = 0.5 * v
	}
	for i, v := range first.noFailRates {
		p.ratesFirst[i] = 2 * v
	}
	for i, v := range second.noFailRates {
		p.ratesSecond[na+i] = 2 * v
	}
	return p, nil
}

// NoFailure returns both models' P(no failure by t) from one solver pass.
func (p *RMNdPair) NoFailure(t float64) (first, second float64, err error) {
	return p.NoFailureContext(context.Background(), t)
}

// NoFailureContext is NoFailure under a caller-carried context.
func (p *RMNdPair) NoFailureContext(ctx context.Context, t float64) (first, second float64, err error) {
	fs, ss, err := p.NoFailureSeriesContext(ctx, []float64{t})
	if err != nil {
		return 0, 0, err
	}
	return fs[0], ss[0], nil
}

// NoFailureSeries returns both models' P(no failure by t) for every horizon
// in ts (unsorted input is aligned with the outputs), costing one shared
// incremental solver pass per gap of the sorted grid for the pair — half
// the passes of running the two models' series separately, a quarter of
// point-wise evaluation.
func (p *RMNdPair) NoFailureSeries(ts []float64) (first, second []float64, err error) {
	return p.NoFailureSeriesContext(context.Background(), ts)
}

// NoFailureSeriesContext is NoFailureSeries under a caller-carried context:
// the stacked-pair propagation runs inside one
// "mdcd.RMNdPair.no_failure_series" span.
func (p *RMNdPair) NoFailureSeriesContext(ctx context.Context, ts []float64) (first, second []float64, err error) {
	ctx, sp := obs.StartSpan(ctx, "mdcd.RMNdPair.no_failure_series")
	defer sp.End()
	sp.SetInt("points", int64(len(ts)))
	pis, err := p.chain.TransientSeriesContext(ctx, p.pi0, ts)
	if err != nil {
		return nil, nil, err
	}
	first = make([]float64, len(ts))
	second = make([]float64, len(ts))
	for i, pi := range pis {
		if first[i], err = dotReward("P(no failure|first)", p.ratesFirst, pi); err != nil {
			return nil, nil, fmt.Errorf("mdcd: stacked no-failure at t=%g: %w", ts[i], err)
		}
		if second[i], err = dotReward("P(no failure|second)", p.ratesSecond, pi); err != nil {
			return nil, nil, fmt.Errorf("mdcd: stacked no-failure at t=%g: %w", ts[i], err)
		}
	}
	return first, second, nil
}
