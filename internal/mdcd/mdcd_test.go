package mdcd

import (
	"math"
	"testing"
)

func TestDefaultParamsMatchTable3(t *testing.T) {
	p := DefaultParams()
	if p.Theta != 10000 || p.Lambda != 1200 || p.MuNew != 1e-4 || p.MuOld != 1e-8 ||
		p.Coverage != 0.95 || p.PExt != 0.1 || p.Alpha != 6000 || p.Beta != 6000 {
		t.Errorf("DefaultParams = %+v does not match Table 3", p)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

func TestParamsValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero theta", func(p *Params) { p.Theta = 0 }},
		{"negative lambda", func(p *Params) { p.Lambda = -1 }},
		{"NaN muNew", func(p *Params) { p.MuNew = math.NaN() }},
		{"coverage above one", func(p *Params) { p.Coverage = 1.5 }},
		{"zero pext", func(p *Params) { p.PExt = 0 }},
		{"infinite alpha", func(p *Params) { p.Alpha = math.Inf(1) }},
		{"zero beta", func(p *Params) { p.Beta = 0 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			tc.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("invalid params accepted")
			}
		})
	}
}

// --- RMGd ---------------------------------------------------------------

func TestRMGdStateSpaceIsSmallAndValid(t *testing.T) {
	gd, err := BuildRMGd(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	n := gd.Space.NumStates()
	if n < 10 || n > 60 {
		t.Errorf("RMGd has %d states, expected a few tens", n)
	}
	if len(gd.Space.Chain.AbsorbingStates()) == 0 {
		t.Error("RMGd must have absorbing failure states")
	}
}

// The four Table 1 instant-of-time measures partition the state space at
// any phi, so they must sum to one.
func TestRMGdMeasurePartition(t *testing.T) {
	gd, err := BuildRMGd(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, phi := range []float64{0, 100, 1000, 5000, 10000} {
		m, err := gd.Measures(phi)
		if err != nil {
			t.Fatal(err)
		}
		sum := m.PA1 + m.IntH + m.IntHF + m.PUndetectedFailure
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("phi=%v: partition sums to %.12f", phi, sum)
		}
	}
}

// With MuOld negligible, P(X'_phi in A'_1) is essentially the probability
// that P1new's fault has not manifested: exp(-MuNew*phi).
func TestRMGdPA1MatchesExponential(t *testing.T) {
	p := DefaultParams()
	gd, err := BuildRMGd(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, phi := range []float64{1000, 5000, 9000} {
		m, err := gd.Measures(phi)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Exp(-p.MuNew * phi)
		if math.Abs(m.PA1-want) > 2e-3 {
			t.Errorf("phi=%v: PA1 = %.6f, want ≈ %.6f", phi, m.PA1, want)
		}
	}
}

// Detection probability ≈ coverage × P(error manifested), because message
// sending is orders of magnitude faster than fault manifestation.
func TestRMGdDetectionSplitByCoverage(t *testing.T) {
	p := DefaultParams()
	gd, err := BuildRMGd(p)
	if err != nil {
		t.Fatal(err)
	}
	phi := 7000.0
	m, err := gd.Measures(phi)
	if err != nil {
		t.Fatal(err)
	}
	pErr := 1 - math.Exp(-p.MuNew*phi)
	if math.Abs(m.IntH-p.Coverage*pErr) > 5e-3 {
		t.Errorf("IntH = %.5f, want ≈ c·P(err) = %.5f", m.IntH, p.Coverage*pErr)
	}
	if math.Abs(m.PUndetectedFailure-(1-p.Coverage)*pErr) > 5e-3 {
		t.Errorf("P(undetected failure) = %.5f, want ≈ (1-c)·P(err) = %.5f",
			m.PUndetectedFailure, (1-p.Coverage)*pErr)
	}
	// Post-recovery failure within phi is driven by fresh MuOld faults: tiny.
	if m.IntHF > 1e-3 {
		t.Errorf("IntHF = %.6f, want ≈ 0 for MuOld=1e-8", m.IntHF)
	}
}

func TestRMGdMeasuresMonotoneInPhi(t *testing.T) {
	gd, err := BuildRMGd(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	prevH, prevA1 := -1.0, 2.0
	for _, phi := range []float64{0, 1000, 3000, 6000, 10000} {
		m, err := gd.Measures(phi)
		if err != nil {
			t.Fatal(err)
		}
		if m.IntH < prevH-1e-12 {
			t.Errorf("IntH not non-decreasing at phi=%v", phi)
		}
		if m.PA1 > prevA1+1e-12 {
			t.Errorf("PA1 not non-increasing at phi=%v", phi)
		}
		prevH, prevA1 = m.IntH, m.PA1
	}
}

func TestRMGdAtPhiZero(t *testing.T) {
	gd, err := BuildRMGd(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	m, err := gd.Measures(0)
	if err != nil {
		t.Fatal(err)
	}
	if m.PA1 != 1 || m.IntH != 0 || m.IntTauH != 0 || m.IntHF != 0 {
		t.Errorf("phi=0 measures = %+v, want PA1=1 and zeros", m)
	}
}

// The paper's Eq. (18) reward structure accumulates P(A'_2) - P(A'_4): the
// expected sojourn before the first error event. With the fast-message
// approximation that is (1 - exp(-MuNew*phi))/MuNew.
func TestRMGdIntTauHMatchesClosedForm(t *testing.T) {
	p := DefaultParams()
	gd, err := BuildRMGd(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, phi := range []float64{2000, 7000} {
		m, err := gd.Measures(phi)
		if err != nil {
			t.Fatal(err)
		}
		want := (1 - math.Exp(-p.MuNew*phi)) / p.MuNew
		if math.Abs(m.IntTauH-want) > 0.01*want {
			t.Errorf("phi=%v: IntTauH = %.1f, want ≈ %.1f", phi, m.IntTauH, want)
		}
	}
}

// Full coverage means undetected failures can only come from the
// "considered clean but contaminated" path, which needs a MuOld self-fault:
// essentially zero.
func TestRMGdFullCoverageEliminatesUndetectedFailure(t *testing.T) {
	p := DefaultParams()
	p.Coverage = 1
	gd, err := BuildRMGd(p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := gd.Measures(8000)
	if err != nil {
		t.Fatal(err)
	}
	if m.PUndetectedFailure > 1e-3 {
		t.Errorf("P(undetected failure) = %.6f with c=1, want ≈ 0", m.PUndetectedFailure)
	}
}

// With zero coverage every manifested error ends in failure: no detections.
func TestRMGdZeroCoverageNeverDetects(t *testing.T) {
	p := DefaultParams()
	p.Coverage = 0
	gd, err := BuildRMGd(p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := gd.Measures(8000)
	if err != nil {
		t.Fatal(err)
	}
	if m.IntH != 0 || m.IntHF != 0 {
		t.Errorf("detections with c=0: IntH=%v IntHF=%v", m.IntH, m.IntHF)
	}
	pErr := 1 - math.Exp(-p.MuNew*8000)
	if math.Abs(m.PUndetectedFailure-pErr) > 5e-3 {
		t.Errorf("P(failure) = %.5f, want ≈ %.5f", m.PUndetectedFailure, pErr)
	}
}

// --- RMGp ---------------------------------------------------------------

// The paper's Table 2 derived parameters: alpha=beta=6000 gives
// (rho1, rho2) ≈ (0.98, 0.95); alpha=beta=2500 gives ≈ (0.95, 0.90).
func TestRMGpRhoMatchesPaper(t *testing.T) {
	tests := []struct {
		alphaBeta          float64
		wantRho1, wantRho2 float64
		tolRho1, tolRho2   float64
	}{
		{6000, 0.98, 0.95, 0.005, 0.01},
		{2500, 0.95, 0.90, 0.005, 0.01},
	}
	for _, tc := range tests {
		p := DefaultParams()
		p.Alpha, p.Beta = tc.alphaBeta, tc.alphaBeta
		gp, err := BuildRMGp(p)
		if err != nil {
			t.Fatal(err)
		}
		m, err := gp.Measures()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.Rho1-tc.wantRho1) > tc.tolRho1 {
			t.Errorf("alpha=beta=%v: rho1 = %.4f, want %.2f±%.3f", tc.alphaBeta, m.Rho1, tc.wantRho1, tc.tolRho1)
		}
		if math.Abs(m.Rho2-tc.wantRho2) > tc.tolRho2 {
			t.Errorf("alpha=beta=%v: rho2 = %.4f, want %.2f±%.3f", tc.alphaBeta, m.Rho2, tc.wantRho2, tc.tolRho2)
		}
	}
}

func TestRMGpRhoBoundsAndOrdering(t *testing.T) {
	gp, err := BuildRMGp(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	m, err := gp.Measures()
	if err != nil {
		t.Fatal(err)
	}
	if m.Rho1 <= 0 || m.Rho1 >= 1 || m.Rho2 <= 0 || m.Rho2 >= 1 {
		t.Errorf("rho out of (0,1): %+v", m)
	}
	// P2 pays for checkpoints and ATs; P1new only for ATs. So rho1 > rho2.
	if m.Rho1 <= m.Rho2 {
		t.Errorf("expected rho1 > rho2, got %+v", m)
	}
}

// Overheads vanish as safeguard actions become infinitely fast.
func TestRMGpFastSafeguardsGiveNoOverhead(t *testing.T) {
	p := DefaultParams()
	p.Alpha, p.Beta = 1e9, 1e9
	gp, err := BuildRMGp(p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := gp.Measures()
	if err != nil {
		t.Fatal(err)
	}
	if m.Rho1 < 0.9999 || m.Rho2 < 0.9999 {
		t.Errorf("instant safeguards should give rho ≈ 1, got %+v", m)
	}
}

// Overhead grows as AT/checkpoint completion slows down.
func TestRMGpOverheadMonotoneInAlphaBeta(t *testing.T) {
	prevRho1, prevRho2 := 0.0, 0.0
	for _, ab := range []float64{1000, 2500, 6000, 20000} {
		p := DefaultParams()
		p.Alpha, p.Beta = ab, ab
		gp, err := BuildRMGp(p)
		if err != nil {
			t.Fatal(err)
		}
		m, err := gp.Measures()
		if err != nil {
			t.Fatal(err)
		}
		if m.Rho1 < prevRho1 || m.Rho2 < prevRho2 {
			t.Errorf("rho not monotone at alpha=beta=%v: %+v", ab, m)
		}
		prevRho1, prevRho2 = m.Rho1, m.Rho2
	}
}

// rho1 admits a closed-form renewal check: P1new's cycle is an exponential
// think time 1/lambda plus, with probability pext, an AT of mean 1/alpha.
func TestRMGpRho1MatchesRenewalFormula(t *testing.T) {
	p := DefaultParams()
	gp, err := BuildRMGp(p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := gp.Measures()
	if err != nil {
		t.Fatal(err)
	}
	atShare := p.PExt / p.Alpha
	want := 1 - atShare/(1/p.Lambda+atShare)
	if math.Abs(m.Rho1-want) > 1e-9 {
		t.Errorf("rho1 = %.10f, want renewal value %.10f", m.Rho1, want)
	}
}

// --- RMNd ---------------------------------------------------------------

func TestRMNdNoFailureProbability(t *testing.T) {
	p := DefaultParams()
	nd, err := BuildRMNd(p, p.MuNew)
	if err != nil {
		t.Fatal(err)
	}
	// With lambda >> mu the time to failure is dominated by the first fault
	// manifestation of either process: rate ≈ MuNew + MuOld.
	for _, tt := range []float64{1000, 5000, 10000} {
		got, err := nd.NoFailureProbability(tt)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Exp(-(p.MuNew + p.MuOld) * tt)
		if math.Abs(got-want) > 3e-3 {
			t.Errorf("t=%v: P(no failure) = %.6f, want ≈ %.6f", tt, got, want)
		}
	}
}

func TestRMNdOldVersionIsReliable(t *testing.T) {
	p := DefaultParams()
	nd, err := BuildRMNd(p, p.MuOld)
	if err != nil {
		t.Fatal(err)
	}
	got, err := nd.NoFailureProbability(10000)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.999 {
		t.Errorf("P(no failure, old pair, 10^4 h) = %.6f, want ≈ 1", got)
	}
}

func TestRMNdZeroTime(t *testing.T) {
	p := DefaultParams()
	nd, err := BuildRMNd(p, p.MuNew)
	if err != nil {
		t.Fatal(err)
	}
	got, err := nd.NoFailureProbability(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("P(no failure at 0) = %v, want 1", got)
	}
}

func TestRMNdRejectsBadMu(t *testing.T) {
	if _, err := BuildRMNd(DefaultParams(), math.NaN()); err == nil {
		t.Error("NaN mu1 accepted")
	}
	if _, err := BuildRMNd(DefaultParams(), -1); err == nil {
		t.Error("negative mu1 accepted")
	}
}

func TestBuildersRejectInvalidParams(t *testing.T) {
	bad := DefaultParams()
	bad.Theta = -1
	if _, err := BuildRMGd(bad); err == nil {
		t.Error("BuildRMGd accepted invalid params")
	}
	if _, err := BuildRMGp(bad); err == nil {
		t.Error("BuildRMGp accepted invalid params")
	}
	if _, err := BuildRMNd(bad, 1e-4); err == nil {
		t.Error("BuildRMNd accepted invalid params")
	}
}

func TestTable1StructuresExposed(t *testing.T) {
	gd, err := BuildRMGd(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	structs := gd.Table1Structures()
	for _, name := range []string{"int_h", "int_tau_h", "int_int_h_f", "P(A1)"} {
		s, ok := structs[name]
		if !ok || s.Len() == 0 {
			t.Errorf("structure %q missing or empty", name)
		}
	}
	// The P(A1) structure must give rate 1 in the initial (error-free)
	// marking and 0 after failure.
	init := gd.Space.Model.InitialMarking()
	if structs["P(A1)"].Rate(init) != 1 {
		t.Error("P(A1) rate in initial marking != 1")
	}
	failed := init.Clone()
	failed.Set(gd.Failure, 1)
	if structs["P(A1)"].Rate(failed) != 0 {
		t.Error("P(A1) rate in failed marking != 0")
	}
}

func TestGdOptionsValidation(t *testing.T) {
	if _, err := BuildRMGdWithOptions(DefaultParams(), GdOptions{RecoverySuccess: -0.1}); err == nil {
		t.Error("negative RecoverySuccess accepted")
	}
	if _, err := BuildRMGdWithOptions(DefaultParams(), GdOptions{RecoverySuccess: 1.1}); err == nil {
		t.Error("RecoverySuccess > 1 accepted")
	}
	// Zero means the paper's default of 1: measures must match BuildRMGd.
	a, err := BuildRMGd(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildRMGdWithOptions(DefaultParams(), GdOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ma, err := a.Measures(5000)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.Measures(5000)
	if err != nil {
		t.Fatal(err)
	}
	if ma.IntH != mb.IntH || ma.PA1 != mb.PA1 {
		t.Errorf("zero options differ from default build: %+v vs %+v", ma, mb)
	}
}
