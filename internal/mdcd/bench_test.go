package mdcd

import "testing"

func BenchmarkBuildRMGd(b *testing.B) {
	p := DefaultParams()
	for i := 0; i < b.N; i++ {
		if _, err := BuildRMGd(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildRMGp(b *testing.B) {
	p := DefaultParams()
	for i := 0; i < b.N; i++ {
		if _, err := BuildRMGp(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRMGdMeasures(b *testing.B) {
	gd, err := BuildRMGd(DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gd.Measures(7000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRMGpSteadyState(b *testing.B) {
	gp, err := BuildRMGp(DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gp.Measures(); err != nil {
			b.Fatal(err)
		}
	}
}
