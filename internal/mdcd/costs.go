package mdcd

import (
	"guardedop/internal/reward"
	"guardedop/internal/statespace"
)

// SafeguardRates are the long-run frequencies (events per hour) of the four
// safeguard operations performed under the G-OP mode, solved as
// steady-state impulse-reward rates on RMGp. Multiplying by a duration φ
// gives the expected operation counts of one guarded operation — the cost
// side of the performability tradeoff, which the rate rewards of Table 2
// summarise only as time fractions.
type SafeguardRates struct {
	// P1nAT is the acceptance-test rate on P1new's external messages.
	P1nAT float64
	// P2AT is the acceptance-test rate on P2's external messages.
	P2AT float64
	// P2Ckpt is P2's checkpoint-establishment rate.
	P2Ckpt float64
	// P1oCkpt is P1old's checkpoint-establishment rate.
	P1oCkpt float64
}

// Total returns the combined safeguard operation rate.
func (s SafeguardRates) Total() float64 { return s.P1nAT + s.P2AT + s.P2Ckpt + s.P1oCkpt }

// SafeguardRates solves the long-run safeguard frequencies. Completion of
// an operation is the final Erlang stage: the impulse is gated on the
// in-progress place holding exactly one remaining stage token.
func (r *RMGp) SafeguardRates() (SafeguardRates, error) {
	lastStage := func(pl interface{ Index() int }) func(int, *statespace.Space) bool {
		return func(stateIdx int, sp *statespace.Space) bool {
			return sp.States[stateIdx][pl.Index()] == 1
		}
	}
	var out SafeguardRates
	for _, item := range []struct {
		activity string
		place    interface{ Index() int }
		dst      *float64
	}{
		{"P1nAT", r.P1nExt, &out.P1nAT},
		{"P2AT", r.P2Ext, &out.P2AT},
		{"P2_CKPT", r.P1nInt, &out.P2Ckpt},
		{"P1o_CKPT", r.P1oCheck, &out.P1oCkpt},
	} {
		is := reward.NewImpulseStructure().AddWhen(item.activity, 1, lastStage(item.place))
		rate, err := reward.SteadyStateImpulseRate(r.Space, is)
		if err != nil {
			return SafeguardRates{}, err
		}
		*item.dst = rate
	}
	return out, nil
}
