package mdcd

import (
	"fmt"

	"guardedop/internal/compose"
	"guardedop/internal/san"
	"guardedop/internal/statespace"
)

// RMNdN generalises the normal-mode model RMNd to n concurrently
// interacting processes — the direction of the authors' follow-up work on
// "a more general class of distributed embedded systems" (the paper's
// reference [16]). Process i manifests faults at its own rate; internal
// messages propagate contamination across the complete interaction graph
// (a contaminated sender's internal message contaminates its recipient,
// chosen uniformly among the peers); the first erroneous external message
// fails the system.
type RMNdN struct {
	Space   *statespace.Space
	Ctn     []*san.Place // per-process contamination flags
	Failure *san.Place
}

// BuildRMNdN constructs the n-process normal-mode model with per-process
// fault-manifestation rates mus (n = len(mus) ≥ 2). It is assembled with
// the compose package: one process template instantiated per process over
// the shared contamination/failure places.
func BuildRMNdN(p Params, mus []float64) (*RMNdN, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(mus)
	if n < 2 {
		return nil, fmt.Errorf("mdcd: RMNdN needs at least 2 processes, got %d", n)
	}
	for i, mu := range mus {
		if mu < 0 {
			return nil, fmt.Errorf("mdcd: negative fault rate %g for process %d", mu, i)
		}
	}

	specs := []compose.SharedPlaceSpec{{Name: "failure", Initial: 0}}
	for i := range mus {
		specs = append(specs, compose.SharedPlaceSpec{Name: ctnName(i), Initial: 0})
	}

	parts := make(map[string]compose.Template, n)
	for i := range mus {
		i, mu := i, mus[i]
		parts[fmt.Sprintf("P%d", i)] = func(m *san.Model, prefix string, shared compose.Shared) error {
			failure := shared["failure"]
			own := shared[ctnName(i)]
			alive := func(mk san.Marking) bool { return mk.Get(failure) == 0 }

			fm := m.AddTimedActivity(prefix+"fm", san.ConstRate(mu)).
				AddInputGate("enabled", func(mk san.Marking) bool {
					return alive(mk) && mk.Get(own) == 0
				}, nil)
			fm.AddCase(san.ConstProb(1)).AddOutputFunc(func(mk san.Marking) { mk.Set(own, 1) })

			msg := m.AddTimedActivity(prefix+"msg", san.ConstRate(p.Lambda)).
				AddInputGate("alive", alive, nil)
			msg.AddCase(func(mk san.Marking) float64 { // erroneous external
				if mk.Get(own) == 1 {
					return p.PExt
				}
				return 0
			}).AddOutputFunc(func(mk san.Marking) {
				mk.Set(failure, 1)
				for j := range mus {
					mk.Set(shared[ctnName(j)], 0) // collapse failure states
				}
			})
			msg.AddCase(func(mk san.Marking) float64 { // clean external
				if mk.Get(own) == 0 {
					return p.PExt
				}
				return 0
			})
			// Internal message to each peer with equal probability.
			for j := range mus {
				if j == i {
					continue
				}
				peer := shared[ctnName(j)]
				msg.AddCase(san.ConstProb((1 - p.PExt) / float64(n-1))).
					AddOutputFunc(func(mk san.Marking) {
						if mk.Get(own) == 1 {
							mk.Set(peer, 1)
						}
					})
			}
			return nil
		}
	}

	model, shared, err := compose.Join("RMNdN", specs, parts)
	if err != nil {
		return nil, err
	}
	sp, err := statespace.Generate(model, statespace.Options{})
	if err != nil {
		return nil, err
	}
	r := &RMNdN{Space: sp, Failure: shared["failure"]}
	for i := range mus {
		r.Ctn = append(r.Ctn, shared[ctnName(i)])
	}
	return r, nil
}

func ctnName(i int) string { return fmt.Sprintf("ctn%d", i) }

// NoFailureProbability returns P(no failure by t) for the n-process system.
func (r *RMNdN) NoFailureProbability(t float64) (float64, error) {
	rates := make([]float64, r.Space.NumStates())
	for i, mk := range r.Space.States {
		if mk.Get(r.Failure) == 0 {
			rates[i] = 1
		}
	}
	return r.Space.Chain.TransientReward(r.Space.Initial, t, rates)
}
