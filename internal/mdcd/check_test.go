package mdcd

import (
	"strings"
	"testing"
)

// TestCheckModelsPaperBaseline verifies the acceptance gate of the static
// verifier: all constituent models of the paper's Table 3 baseline —
// RMGd, RMGp, and both RMNd instantiations — pass every modelcheck
// property.
func TestCheckModelsPaperBaseline(t *testing.T) {
	reports, err := CheckModels(DefaultParams())
	if err != nil {
		t.Fatalf("paper models fail modelcheck: %v", err)
	}
	if len(reports) != 4 {
		t.Fatalf("got %d reports, want 4", len(reports))
	}
	want := map[string]bool{
		"RMGd": false, "RMGp": false, "RMNd(mu_new)": false, "RMNd(mu_old)": false,
	}
	for _, rep := range reports {
		if !rep.OK() {
			t.Errorf("%s: %v", rep.Model, rep.Issues)
		}
		if rep.States == 0 {
			t.Errorf("%s: empty state space", rep.Model)
		}
		if _, known := want[rep.Model]; !known {
			t.Errorf("unexpected report %q", rep.Model)
		}
		want[rep.Model] = true
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("missing report for %s", name)
		}
	}
}

// TestCheckModelsStructure pins the structural facts the verifier relies
// on: the dependability models are absorbing, the performance model is
// irreducible.
func TestCheckModelsStructure(t *testing.T) {
	reports, err := CheckModels(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		switch {
		case rep.Model == "RMGp":
			if rep.Absorbing != 0 {
				t.Errorf("RMGp: %d absorbing states, want 0 (steady-state model)", rep.Absorbing)
			}
		case strings.HasPrefix(rep.Model, "RM"):
			if rep.Absorbing == 0 {
				t.Errorf("%s: no absorbing states, want at least the failure state", rep.Model)
			}
		}
	}
}

// TestCheckModelsRejectsBadParams covers the parameter-validation path.
func TestCheckModelsRejectsBadParams(t *testing.T) {
	p := DefaultParams()
	p.Coverage = 2
	if _, err := CheckModels(p); err == nil {
		t.Fatal("invalid parameters accepted")
	}
}
