package mdcd

import (
	"math"
	"testing"
)

// relClose asserts agreement within relTol relative (falling back to the
// same magnitude absolutely for values near zero).
func relClose(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	scale := math.Abs(want)
	if scale < 1 {
		scale = 1
	}
	if math.Abs(got-want) > relTol*scale {
		t.Errorf("%s: series %.15g vs point-wise %.15g (rel err %.3g)",
			name, got, want, math.Abs(got-want)/scale)
	}
}

// The shared-propagation series must agree with point-wise Measures within
// 1e-9 relative at paper parameters, including unsorted and duplicate φ.
func TestRMGdMeasuresSeriesMatchesPointwise(t *testing.T) {
	p := DefaultParams()
	gd, err := BuildRMGd(p)
	if err != nil {
		t.Fatal(err)
	}
	phis := []float64{
		7000, 1000, 0, 4000, 10000, 7000, 250, // unsorted, dup, endpoints
	}
	series, err := gd.MeasuresSeries(phis)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(phis) {
		t.Fatalf("got %d results for %d durations", len(series), len(phis))
	}
	for i, phi := range phis {
		want, err := gd.Measures(phi)
		if err != nil {
			t.Fatal(err)
		}
		got := series[i]
		relClose(t, "int_h", got.IntH, want.IntH, 1e-9)
		relClose(t, "int_tau_h", got.IntTauH, want.IntTauH, 1e-9)
		relClose(t, "int_int_h_f", got.IntHF, want.IntHF, 1e-9)
		relClose(t, "P(A1)", got.PA1, want.PA1, 1e-9)
		relClose(t, "P(A4)", got.PUndetectedFailure, want.PUndetectedFailure, 1e-9)
		relClose(t, "acc_detected", got.AccDetected, want.AccDetected, 1e-9)
		// Derived quotient: the φ·pDet − AccDetected cancellation amplifies
		// the primitives' 1e-9 agreement slightly.
		relClose(t, "mean detection time", got.MeanDetectionTime(), want.MeanDetectionTime(), 1e-8)
		// The state partition must survive the incremental pass too.
		total := got.PA1 + got.IntH + got.IntHF + got.PUndetectedFailure
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("phi=%g: partition sums to %.12f", phi, total)
		}
	}
	// Duplicate durations must come back identical.
	if series[0] != series[5] {
		t.Error("duplicate phi entries differ")
	}
}

func TestRMNdNoFailureSeriesMatchesPointwise(t *testing.T) {
	p := DefaultParams()
	for _, mu1 := range []float64{p.MuNew, p.MuOld} {
		nd, err := BuildRMNd(p, mu1)
		if err != nil {
			t.Fatal(err)
		}
		ts := []float64{12000, 3000, 0, 20000, 12000}
		series, err := nd.NoFailureProbabilitySeries(ts)
		if err != nil {
			t.Fatal(err)
		}
		for i, tt := range ts {
			want, err := nd.NoFailureProbability(tt)
			if err != nil {
				t.Fatal(err)
			}
			relClose(t, "P(no failure)", series[i], want, 1e-9)
		}
		if series[0] != series[4] {
			t.Error("duplicate horizons differ")
		}
	}
}

// The block-diagonal stacked pair must reproduce both separate RMNd
// solutions: stacking is exact by linearity (×0.5 on the initial
// distribution and ×2 on the rewards are exact binary operations), so only
// solver round-off separates the two paths.
func TestRMNdPairMatchesSeparateModels(t *testing.T) {
	p := DefaultParams()
	ndNew, err := BuildRMNd(p, p.MuNew)
	if err != nil {
		t.Fatal(err)
	}
	ndOld, err := BuildRMNd(p, p.MuOld)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := NewRMNdPair(ndNew, ndOld)
	if err != nil {
		t.Fatal(err)
	}
	ts := []float64{8000, 1000, 0, 20000, 8000}
	first, second, err := pair.NoFailureSeries(ts)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range ts {
		wantNew, err := ndNew.NoFailureProbability(tt)
		if err != nil {
			t.Fatal(err)
		}
		wantOld, err := ndOld.NoFailureProbability(tt)
		if err != nil {
			t.Fatal(err)
		}
		relClose(t, "stacked P(no failure|new)", first[i], wantNew, 1e-9)
		relClose(t, "stacked P(no failure|old)", second[i], wantOld, 1e-9)
	}
	// The single-point call solves its horizon in one gap while the series
	// propagated through intermediate points, so agreement is numerical,
	// not bit-wise.
	f1, s1, err := pair.NoFailure(8000)
	if err != nil {
		t.Fatal(err)
	}
	relClose(t, "single-point NoFailure (new)", f1, first[0], 1e-9)
	relClose(t, "single-point NoFailure (old)", s1, second[0], 1e-9)
}

func TestRMNdPairValidation(t *testing.T) {
	p := DefaultParams()
	nd, err := BuildRMNd(p, p.MuNew)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRMNdPair(nil, nd); err == nil {
		t.Error("nil first model accepted")
	}
	if _, err := NewRMNdPair(nd, &RMNd{}); err == nil {
		t.Error("ungenerated second model accepted")
	}
}
