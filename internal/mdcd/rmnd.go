package mdcd

import (
	"context"
	"fmt"
	"math"

	"guardedop/internal/obs"
	"guardedop/internal/san"
	"guardedop/internal/statespace"
)

// RMNd is the normal-mode dependability model (the paper's Figure 8): two
// active processes with no safeguard mechanisms. The first process's
// fault-manifestation rate is configurable — the paper assigns µ_new to it
// when solving P(X″_t ∈ A″₁) for the upgraded pair {P1new, P2}, and µ_old
// when solving ∫f for the recovered pair {P1old, P2}.
type RMNd struct {
	Space *statespace.Space

	P1ctn   *san.Place
	P2ctn   *san.Place
	Failure *san.Place

	// noFailRates is the MARK(failure)==0 indicator over the generated
	// space, evaluated once at build time instead of on every call.
	noFailRates []float64
}

// BuildRMNd constructs the normal-mode model with fault-manifestation rate
// mu1 for the first software component (the second uses p.MuOld).
func BuildRMNd(p Params, mu1 float64) (*RMNd, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if mu1 < 0 || math.IsNaN(mu1) || math.IsInf(mu1, 0) {
		return nil, fmt.Errorf("mdcd: mu1 = %g out of range", mu1)
	}
	m := san.NewModel("RMNd")
	r := &RMNd{
		P1ctn:   m.AddPlace("P1Nctn", 0),
		P2ctn:   m.AddPlace("P2ctn", 0),
		Failure: m.AddPlace("failure", 0),
	}
	alive := func(mk san.Marking) bool { return mk.Get(r.Failure) == 0 }
	fail := func(mk san.Marking) {
		mk.Set(r.Failure, 1)
		mk.Set(r.P1ctn, 0)
		mk.Set(r.P2ctn, 0)
	}

	p1fm := m.AddTimedActivity("P1Nfm", san.ConstRate(mu1)).
		AddInputGate("enabled", func(mk san.Marking) bool {
			return alive(mk) && mk.Get(r.P1ctn) == 0
		}, nil)
	p1fm.AddCase(san.ConstProb(1)).AddOutputFunc(func(mk san.Marking) { mk.Set(r.P1ctn, 1) })

	p2fm := m.AddTimedActivity("P2fm", san.ConstRate(p.MuOld)).
		AddInputGate("enabled", func(mk san.Marking) bool {
			return alive(mk) && mk.Get(r.P2ctn) == 0
		}, nil)
	p2fm.AddCase(san.ConstProb(1)).AddOutputFunc(func(mk san.Marking) { mk.Set(r.P2ctn, 1) })

	// addMsg wires a normal-mode message-sending activity for the process
	// whose contamination place is own, propagating to peer.
	addMsg := func(name string, own, peer *san.Place) {
		act := m.AddTimedActivity(name, san.ConstRate(p.Lambda)).
			AddInputGate("alive", alive, nil)
		act.AddCase(func(mk san.Marking) float64 { // erroneous external: failure
			if mk.Get(own) == 1 {
				return p.PExt
			}
			return 0
		}).AddOutputFunc(fail)
		act.AddCase(func(mk san.Marking) float64 { // clean external
			if mk.Get(own) == 0 {
				return p.PExt
			}
			return 0
		})
		act.AddCase(san.ConstProb(1 - p.PExt)). // internal: propagate
							AddOutputFunc(func(mk san.Marking) {
				if mk.Get(own) == 1 {
					mk.Set(peer, 1)
				}
			})
	}
	addMsg("P1Nmsg", r.P1ctn, r.P2ctn)
	addMsg("P2msg", r.P2ctn, r.P1ctn)

	sp, err := statespace.Generate(m, statespace.Options{})
	if err != nil {
		return nil, err
	}
	r.Space = sp
	r.noFailRates = make([]float64, sp.NumStates())
	for i, mk := range sp.States {
		if mk.Get(r.Failure) == 0 {
			r.noFailRates[i] = 1
		}
	}
	return r, nil
}

// NoFailureProbability returns P(failure has not occurred by t), the
// expected instant-of-time reward with predicate MARK(failure)==0 and rate 1
// (paper §5.2.3).
func (r *RMNd) NoFailureProbability(t float64) (float64, error) {
	return r.NoFailureProbabilityContext(context.Background(), t)
}

// NoFailureProbabilityContext is NoFailureProbability under a
// caller-carried context: the pass runs inside one
// "mdcd.RMNd.no_failure" span.
func (r *RMNd) NoFailureProbabilityContext(ctx context.Context, t float64) (float64, error) {
	ctx, sp := obs.StartSpan(ctx, "mdcd.RMNd.no_failure")
	defer sp.End()
	sp.SetFloat("t", t)
	return r.Space.Chain.TransientRewardContext(ctx, r.Space.Initial, t, r.noFailRates)
}

// NoFailureFromSolution reads P(no failure) off an already-solved
// state-probability vector of this model's chain: a dot product against
// the indicator prebuilt at construction, no solver work.
func (r *RMNd) NoFailureFromSolution(pi []float64) (float64, error) {
	return dotReward("P(no failure)", r.noFailRates, pi)
}

// NoFailureRates returns the MARK(failure)==0 indicator vector prebuilt
// at construction, for assemblers outside the package (the parametric
// layer). The returned slice is the model's backing array; callers must
// not modify it.
func (r *RMNd) NoFailureRates() []float64 { return r.noFailRates }

// NoFailureProbabilitySeries returns P(no failure by t) for every horizon
// in ts (unsorted input is aligned with the output), sharing one
// incremental propagation across the grid: one solver pass per gap instead
// of one full solve per horizon.
func (r *RMNd) NoFailureProbabilitySeries(ts []float64) ([]float64, error) {
	return r.NoFailureProbabilitySeriesContext(context.Background(), ts)
}

// NoFailureProbabilitySeriesContext is NoFailureProbabilitySeries under a
// caller-carried context.
func (r *RMNd) NoFailureProbabilitySeriesContext(ctx context.Context, ts []float64) ([]float64, error) {
	ctx, sp := obs.StartSpan(ctx, "mdcd.RMNd.no_failure_series")
	defer sp.End()
	sp.SetInt("points", int64(len(ts)))
	pis, err := r.Space.Chain.TransientSeriesContext(ctx, r.Space.Initial, ts)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(ts))
	for i, pi := range pis {
		if out[i], err = dotReward("P(no failure)", r.noFailRates, pi); err != nil {
			return nil, fmt.Errorf("mdcd: no-failure probability at t=%g: %w", ts[i], err)
		}
	}
	return out, nil
}
