package mdcd

import (
	"math"
	"testing"
)

func TestRMNdNMatchesRMNdForTwoProcesses(t *testing.T) {
	p := DefaultParams()
	nd2, err := BuildRMNd(p, p.MuNew)
	if err != nil {
		t.Fatal(err)
	}
	ndn, err := BuildRMNdN(p, []float64{p.MuNew, p.MuOld})
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{1000, 5000, 10000} {
		a, err := nd2.NoFailureProbability(tt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ndn.NoFailureProbability(tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("t=%v: RMNd %v vs RMNdN %v", tt, a, b)
		}
	}
}

func TestRMNdNSimultaneousUpgradesCompoundRisk(t *testing.T) {
	// With k components freshly upgraded (mu_new each) in a 4-process
	// system, survival degrades roughly as exp(-k*mu_new*t).
	p := DefaultParams()
	tEnd := p.Theta
	prev := 2.0
	for k := 1; k <= 4; k++ {
		mus := make([]float64, 4)
		for i := range mus {
			if i < k {
				mus[i] = p.MuNew
			} else {
				mus[i] = p.MuOld
			}
		}
		nd, err := BuildRMNdN(p, mus)
		if err != nil {
			t.Fatal(err)
		}
		got, err := nd.NoFailureProbability(tEnd)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Exp(-float64(k) * p.MuNew * tEnd)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("k=%d: survival %.4f, want ≈ %.4f", k, got, want)
		}
		if got >= prev {
			t.Errorf("survival not decreasing at k=%d", k)
		}
		prev = got
	}
}

func TestRMNdNStateSpaceScales(t *testing.T) {
	p := DefaultParams()
	nd3, err := BuildRMNdN(p, []float64{p.MuNew, p.MuOld, p.MuOld})
	if err != nil {
		t.Fatal(err)
	}
	// 2^3 contamination states + 1 failure state = 9.
	if nd3.Space.NumStates() != 9 {
		t.Errorf("3-process states = %d, want 9", nd3.Space.NumStates())
	}
	if len(nd3.Ctn) != 3 {
		t.Errorf("Ctn places = %d, want 3", len(nd3.Ctn))
	}
}

func TestRMNdNValidation(t *testing.T) {
	p := DefaultParams()
	if _, err := BuildRMNdN(p, []float64{1e-4}); err == nil {
		t.Error("single process accepted")
	}
	if _, err := BuildRMNdN(p, []float64{1e-4, -1}); err == nil {
		t.Error("negative rate accepted")
	}
	bad := p
	bad.PExt = 0
	if _, err := BuildRMNdN(bad, []float64{1e-4, 1e-8}); err == nil {
		t.Error("invalid params accepted")
	}
}
