package mdcd

import (
	"math"
	"testing"
)

// First-passage analysis provides an independent route to the detection
// measures: the probability of ever detecting an error must track the AT
// coverage, and the conditional mean detection time must track 1/mu_new
// (fault manifestation dominates the detection latency).
func TestDetectionViaFirstPassage(t *testing.T) {
	p := DefaultParams()
	gd, err := BuildRMGd(p)
	if err != nil {
		t.Fatal(err)
	}
	var detectedStates []int
	for i, mk := range gd.Space.States {
		if mk.Get(gd.Detected) == 1 {
			detectedStates = append(detectedStates, i)
		}
	}
	if len(detectedStates) == 0 {
		t.Fatal("no detected states in RMGd")
	}
	meanTime, hitProb, err := gd.Space.Chain.MeanFirstPassage(gd.Space.Initial, detectedStates)
	if err != nil {
		t.Fatal(err)
	}
	// Detection ever happens with probability ≈ c: the race between the
	// first erroneous external message being caught (c) or escaping
	// (failure). Propagation through P2 repeats the race, nudging the
	// total slightly above c.
	if hitProb < p.Coverage-0.01 || hitProb > p.Coverage+0.03 {
		t.Errorf("P(ever detected) = %.4f, want ≈ c = %.2f", hitProb, p.Coverage)
	}
	condMean := meanTime / hitProb
	if math.Abs(condMean-1/p.MuNew) > 0.05/p.MuNew {
		t.Errorf("conditional mean detection time = %.0f, want ≈ 1/mu = %.0f", condMean, 1/p.MuNew)
	}
	// Consistency with the truncated Table 1 measures: as phi -> theta-ish
	// horizons the truncated conditional mean approaches the untruncated
	// one from below.
	m, err := gd.Measures(1e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.MeanDetectionTime()-condMean) > 0.02*condMean {
		t.Errorf("large-phi truncated mean %v != first-passage mean %v",
			m.MeanDetectionTime(), condMean)
	}
}
