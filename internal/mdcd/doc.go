// Package mdcd builds the three SAN reward models of the guarded software
// upgrading (GSU) study — the message-driven confidence-driven (MDCD)
// protocol models of the paper's Figures 6–8:
//
//   - RMGd (Figure 6): dependability behaviour of the system during the
//     guarded-operation interval [0, φ], including error detection by
//     acceptance test (AT), undetected-error failures, recovery into the
//     normal mode, and post-recovery failures. AT is modelled as
//     instantaneous (its latency is negligible against fault inter-arrival
//     times), realised here by resolving the detect/miss alternative as
//     probabilistic cases of the message-sending activities.
//   - RMGp (Figure 7): performance-overhead behaviour under the G-OP mode
//     in an ideal (fault-free) environment: message passing, AT executions
//     at rate α, checkpoint establishments at rate β, and the
//     confidence-driven dirty-bit dynamics that decide when an AT or a
//     checkpoint is required. Its steady state yields the forward-progress
//     fractions ρ₁ (process P1new) and ρ₂ (process P2).
//   - RMNd (Figure 8): dependability behaviour of a two-process system in
//     the normal mode (no safeguards): fault manifestation, contamination
//     propagation through internal messages, and failure on the first
//     erroneous external message.
//
// The protocol semantics encoded here follow Section 2 and Section 5.1 of
// the paper:
//
//   - A process state is (actually) contaminated after its own fault
//     manifests or after it receives an internal message sent by a
//     contaminated process. An erroneous process state makes the process's
//     outgoing messages erroneous (the paper's key assumption).
//   - P1new is always *considered* potentially contaminated during G-OP, so
//     every external message of P1new undergoes AT. P2 (and P1old) share a
//     confidence view — the dirty bit: it is set when P2 receives an
//     unvalidated message from P1new and reset when an external message of
//     a clean sender passes AT.
//   - An erroneous external message is detected by AT with probability c
//     (coverage); an undetected erroneous external message is an immediate
//     system failure. Detection triggers recovery: P1old takes over, the
//     system enters the normal mode, and the recovered pair {P1old, P2} is
//     treated as clean except for prior contamination of P1old itself,
//     which recovery cannot undo.
//   - In the normal mode no AT or checkpointing is performed, so the first
//     erroneous external message causes failure.
//
// The constituent-measure reward structures of the paper's Tables 1 and 2
// are provided by the Measures type.
package mdcd
