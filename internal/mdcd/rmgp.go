package mdcd

import (
	"fmt"

	"guardedop/internal/san"
	"guardedop/internal/statespace"
)

// RMGp is the performance-overhead reward model of the G-OP mode (the
// paper's Figure 7). The environment is ideal (no faults); the model tracks
// which safeguard action, if any, each process is engaged in, and the
// confidence (dirty-bit) dynamics that decide when an action is required.
//
// Process lifecycle encoded in the places:
//
//   - P1new alternates between P1nReady (making forward progress between
//     message sends) and P1nExt (its external message undergoing an AT of
//     mean duration 1/α). P1new never checkpoints: its state is always
//     considered potentially contaminated. When P1new sends an internal
//     message to a P2 whose dirty bit is clear, P2 must establish a
//     checkpoint first: P1nInt is non-zero while that checkpoint (mean
//     duration 1/β) is in progress — the paper's predicate for P2's
//     checkpoint overhead is MARK(P1nInt)==1 && MARK(P2DB)==0.
//   - P2 alternates between P2Ready and P2Ext (its own external message
//     under AT, required only while P2DB==1). While P2 is establishing a
//     checkpoint (P1nInt>0) it makes no forward progress and sends no
//     messages. P2's internal messages to a clean P1old trigger P1old
//     checkpoints (P1oCheck/P1o_CKPT), which set P1oDB; senders do not
//     block on the receiver's checkpoint.
//   - A completed AT validates the sender's state and clears the dirty bits
//     downstream of it (confidence-driven revalidation).
//
// Safeguard durations are exponential by default (the paper's assumption).
// BuildRMGpErlang generalises them to Erlang-k with the same mean, encoded
// by loading k stage tokens into the in-progress place and completing one
// stage at rate k·α (or k·β); the reward predicates read "in progress" as
// a non-zero stage count, which coincides with the paper's MARK(..)==1 for
// k=1.
type RMGp struct {
	Space *statespace.Space

	// Stages is the Erlang stage count of AT and checkpoint durations
	// (1 = exponential, the paper's model).
	Stages int

	P1nReady *san.Place
	P1nExt   *san.Place // stage tokens of P1new's AT in progress
	P1nInt   *san.Place // stage tokens of P2's checkpoint in progress
	P2Ready  *san.Place
	P2Ext    *san.Place // stage tokens of P2's AT in progress
	P1oCheck *san.Place // stage tokens of P1old's checkpoint in progress
	P1oDB    *san.Place // dirty bit: P1old considered potentially contaminated
	P2DB     *san.Place // dirty bit: P2 considered potentially contaminated
}

// BuildRMGp constructs and generates the RMGp model with exponential
// safeguard durations, as in the paper.
func BuildRMGp(p Params) (*RMGp, error) {
	return BuildRMGpErlang(p, 1)
}

// BuildRMGpErlang constructs RMGp with Erlang-`stages` AT and checkpoint
// durations of unchanged mean — an ablation of the exponential-duration
// assumption. stages must be in [1, 16] (the state space grows linearly
// with it).
func BuildRMGpErlang(p Params, stages int) (*RMGp, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if stages < 1 || stages > 16 {
		return nil, fmt.Errorf("mdcd: Erlang stages = %d out of [1, 16]", stages)
	}
	m := san.NewModel("RMGp")
	r := &RMGp{
		Stages:   stages,
		P1nReady: m.AddPlace("P1nReady", 1),
		P1nExt:   m.AddPlace("P1nExt", 0),
		P1nInt:   m.AddPlace("P1nInt", 0),
		P2Ready:  m.AddPlace("P2Ready", 1),
		P2Ext:    m.AddPlace("P2Ext", 0),
		P1oCheck: m.AddPlace("P1oCheck", 0),
		P1oDB:    m.AddPlace("P1oDB", 0),
		P2DB:     m.AddPlace("P2DB", 0),
	}
	k := float64(stages)

	// --- P1new sends a message ------------------------------------------
	p1nMsg := m.AddTimedActivity("P1nMsg", san.ConstRate(p.Lambda)).
		AddInputArc(r.P1nReady, 1)
	// External: always AT'd (P1new is always potentially contaminated).
	p1nMsg.AddCase(san.ConstProb(p.PExt)).AddOutputArc(r.P1nExt, stages)
	// Internal to a clean P2 with no checkpoint already pending: P2 must
	// checkpoint before processing (MDCD rule). The sender continues.
	p1nMsg.AddCase(func(mk san.Marking) float64 {
		if mk.Get(r.P2DB) == 0 && mk.Get(r.P1nInt) == 0 {
			return 1 - p.PExt
		}
		return 0
	}).AddOutputArc(r.P1nReady, 1).AddOutputArc(r.P1nInt, stages)
	// Internal to an already-dirty P2 (or one already checkpointing): the
	// checkpoint is skipped (instantaneous activity P1oSkipCKPT/P2SkipCKPT
	// of Figure 7, folded into this case).
	p1nMsg.AddCase(func(mk san.Marking) float64 {
		if mk.Get(r.P2DB) == 1 || mk.Get(r.P1nInt) > 0 {
			return 1 - p.PExt
		}
		return 0
	}).AddOutputArc(r.P1nReady, 1)

	// P1new's AT progresses stage by stage; the final stage completes the
	// validation: P1new resumes, and the validated state clears the
	// downstream confidence chain ({P2, P1old} views).
	p1nAT := m.AddTimedActivity("P1nAT", san.ConstRate(k*p.Alpha)).
		AddInputArc(r.P1nExt, 1)
	p1nAT.AddCase(san.ConstProb(1)).AddOutputFunc(func(mk san.Marking) {
		if mk.Get(r.P1nExt) > 0 {
			return // stages remain
		}
		mk.Set(r.P1nReady, 1)
		mk.Set(r.P2DB, 0)
		mk.Set(r.P1oDB, 0)
	})

	// P2's checkpoint (for P1new's internal message) progresses stage by
	// stage; completion makes P2 potentially contaminated.
	p2Ckpt := m.AddTimedActivity("P2_CKPT", san.ConstRate(k*p.Beta)).
		AddInputArc(r.P1nInt, 1)
	p2Ckpt.AddCase(san.ConstProb(1)).AddOutputFunc(func(mk san.Marking) {
		if mk.Get(r.P1nInt) > 0 {
			return
		}
		mk.Set(r.P2DB, 1)
	})

	// --- P2 sends a message ----------------------------------------------
	// Disabled while P2 is establishing a checkpoint.
	p2Msg := m.AddTimedActivity("P2Msg", san.ConstRate(p.Lambda)).
		AddInputArc(r.P2Ready, 1).
		AddInputGate("notCheckpointing", func(mk san.Marking) bool {
			return mk.Get(r.P1nInt) == 0
		}, nil)
	// External while dirty: AT required.
	p2Msg.AddCase(func(mk san.Marking) float64 {
		if mk.Get(r.P2DB) == 1 {
			return p.PExt
		}
		return 0
	}).AddOutputArc(r.P2Ext, stages)
	// External while clean: no AT (instantaneous P2SkipAT of Figure 7).
	p2Msg.AddCase(func(mk san.Marking) float64 {
		if mk.Get(r.P2DB) == 0 {
			return p.PExt
		}
		return 0
	}).AddOutputArc(r.P2Ready, 1)
	// Internal from a dirty P2 to a clean P1old: P1old must checkpoint.
	p2Msg.AddCase(func(mk san.Marking) float64 {
		if mk.Get(r.P2DB) == 1 && mk.Get(r.P1oDB) == 0 && mk.Get(r.P1oCheck) == 0 {
			return 1 - p.PExt
		}
		return 0
	}).AddOutputArc(r.P2Ready, 1).AddOutputArc(r.P1oCheck, stages)
	// Internal otherwise: no checkpoint needed.
	p2Msg.AddCase(func(mk san.Marking) float64 {
		if mk.Get(r.P2DB) == 0 || mk.Get(r.P1oDB) == 1 || mk.Get(r.P1oCheck) > 0 {
			return 1 - p.PExt
		}
		return 0
	}).AddOutputArc(r.P2Ready, 1)

	// P2's AT: final stage completion resumes P2 and clears the dirty bits
	// derived from its (validated) state.
	p2AT := m.AddTimedActivity("P2AT", san.ConstRate(k*p.Alpha)).
		AddInputArc(r.P2Ext, 1)
	p2AT.AddCase(san.ConstProb(1)).AddOutputFunc(func(mk san.Marking) {
		if mk.Get(r.P2Ext) > 0 {
			return
		}
		mk.Set(r.P2Ready, 1)
		mk.Set(r.P2DB, 0)
		mk.Set(r.P1oDB, 0)
	})

	// P1old's checkpoint.
	p1oCkpt := m.AddTimedActivity("P1o_CKPT", san.ConstRate(k*p.Beta)).
		AddInputArc(r.P1oCheck, 1)
	p1oCkpt.AddCase(san.ConstProb(1)).AddOutputFunc(func(mk san.Marking) {
		if mk.Get(r.P1oCheck) > 0 {
			return
		}
		mk.Set(r.P1oDB, 1)
	})

	sp, err := statespace.Generate(m, statespace.Options{})
	if err != nil {
		return nil, err
	}
	r.Space = sp
	return r, nil
}
