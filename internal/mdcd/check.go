package mdcd

import (
	"fmt"

	"guardedop/internal/modelcheck"
	"guardedop/internal/robust"
)

// CheckModels builds the paper's constituent reward models for p and
// statically verifies each one with internal/modelcheck before anything is
// solved: the RMGd/RMNd first-passage models must have valid generators
// whose every state reaches the absorbing set, the RMGp steady-state model
// must be irreducible, and every Table 1/2 reward structure must stay
// within the [0, 1] bounds that keep Y(φ) an expectation ratio (Eq. 1).
//
// It returns the per-model reports (always, so callers can render them)
// and a non-nil error wrapping robust.ErrInvariant if any model fails.
func CheckModels(p Params) ([]*modelcheck.Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var reports []*modelcheck.Report

	gd, err := BuildRMGd(p)
	if err != nil {
		return nil, fmt.Errorf("mdcd: building RMGd: %w", err)
	}
	rep := modelcheck.CheckSpace("RMGd", gd.Space, modelcheck.Options{})
	for name, s := range gd.Table1Structures() {
		rep.CheckRewardRates(name, s.RateVector(gd.Space), 0, 1)
	}
	reports = append(reports, rep)

	gp, err := BuildRMGp(p)
	if err != nil {
		return nil, fmt.Errorf("mdcd: building RMGp: %w", err)
	}
	rep = modelcheck.CheckSpace("RMGp", gp.Space, modelcheck.Options{})
	rep.CheckRewardRates("1-rho1", gp.Overhead1Structure().RateVector(gp.Space), 0, 1)
	rep.CheckRewardRates("1-rho2", gp.Overhead2Structure().RateVector(gp.Space), 0, 1)
	reports = append(reports, rep)

	for _, nd := range []struct {
		label string
		mu    float64
	}{
		{"RMNd(mu_new)", p.MuNew},
		{"RMNd(mu_old)", p.MuOld},
	} {
		m, err := BuildRMNd(p, nd.mu)
		if err != nil {
			return nil, fmt.Errorf("mdcd: building %s: %w", nd.label, err)
		}
		rep = modelcheck.CheckSpace(nd.label, m.Space, modelcheck.Options{})
		rates := make([]float64, m.Space.NumStates())
		for i, mk := range m.Space.States {
			if mk.Get(m.Failure) == 0 {
				rates[i] = 1
			}
		}
		rep.CheckRewardRates("P(no failure)", rates, 0, 1)
		reports = append(reports, rep)
	}

	for _, r := range reports {
		if err := r.Err(); err != nil {
			return reports, fmt.Errorf("%w: %w", robust.ErrInvariant, err)
		}
	}
	return reports, nil
}
