package mdcd

import (
	"fmt"

	"guardedop/internal/reward"
	"guardedop/internal/san"
	"guardedop/internal/statespace"
)

// RMGd is the dependability reward model of the guarded-operation interval
// (the paper's Figure 6), generated to a tangible state space.
type RMGd struct {
	Space *statespace.Space

	// Places referenced by the Table 1 reward structures.
	P1Nctn   *san.Place // P1new state actually contaminated
	P1Octn   *san.Place // P1old state actually contaminated
	P2ctn    *san.Place // P2 state actually contaminated
	DirtyBit *san.Place // shared confidence view: {P2, P1old} potentially contaminated
	Detected *san.Place // an error has been detected (system recovered to normal mode)
	Failure  *san.Place // an undetected erroneous external message escaped (absorbing)

	// Reward-rate vectors of the Table 1 structures, evaluated once over the
	// generated space at build time: the predicates are pure functions of the
	// marking, so re-evaluating them on every Measures call only burned time.
	vIntH     []float64
	vIntTauH  []float64
	vIntHF    []float64
	vPA1      []float64
	vUndet    []float64
	vDetected []float64
}

// RateVectors returns the prebuilt Table 1 reward-rate vectors, indexed
// by state: the instant-of-time rates intH, pA1 and undetected, the
// interval-of-time rates intTauH and detected, and the failure indicator
// intHF. They exist for assemblers outside the package (the parametric
// layer) that project their own solution representation onto the same
// reward structures. The returned slices are the model's backing arrays;
// callers must not modify them.
func (r *RMGd) RateVectors() (intH, intTauH, intHF, pA1, undetected, detected []float64) {
	return r.vIntH, r.vIntTauH, r.vIntHF, r.vPA1, r.vUndet, r.vDetected
}

// GdOptions relaxes RMGd assumptions for ablation studies.
type GdOptions struct {
	// RecoverySuccess is the probability that error recovery succeeds
	// after a successful detection; the paper assumes 1 ("we anticipate
	// that the system will recover from an error successfully as long as
	// the detection is successful"). A failed recovery is a system
	// failure. Zero means the default of 1.
	RecoverySuccess float64
}

// BuildRMGd constructs and generates the RMGd model under the paper's
// assumptions (perfect recovery given detection).
func BuildRMGd(p Params) (*RMGd, error) {
	return BuildRMGdWithOptions(p, GdOptions{})
}

// BuildRMGdWithOptions constructs RMGd with relaxed assumptions.
//
// The marking encodes the G-OP/normal mode switch through the detected
// place: detected==0 means the system is still in the G-OP mode (P1new and
// P2 active, safeguards on); detected==1 means an error was caught, recovery
// succeeded, and {P1old, P2} run in the normal mode (no safeguards) for the
// remainder of [0, φ]. failure==1 is absorbing.
//
// AT-based validation is instantaneous in this model (paper §5.1): the
// detect/miss alternative is folded into probabilistic cases of the
// message-sending activities, which is the vanishing-marking elimination
// done by hand at the model level.
func BuildRMGdWithOptions(p Params, o GdOptions) (*RMGd, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if o.RecoverySuccess == 0 {
		o.RecoverySuccess = 1
	}
	if o.RecoverySuccess < 0 || o.RecoverySuccess > 1 {
		return nil, fmt.Errorf("mdcd: RecoverySuccess = %g out of (0,1]", o.RecoverySuccess)
	}
	rs := o.RecoverySuccess
	m := san.NewModel("RMGd")
	r := &RMGd{
		P1Nctn:   m.AddPlace("P1Nctn", 0),
		P1Octn:   m.AddPlace("P1Octn", 0),
		P2ctn:    m.AddPlace("P2ctn", 0),
		DirtyBit: m.AddPlace("dirty_bit", 0),
		Detected: m.AddPlace("detected", 0),
		Failure:  m.AddPlace("failure", 0),
	}

	alive := func(mk san.Marking) bool { return mk.Get(r.Failure) == 0 }
	gop := func(mk san.Marking) bool { return alive(mk) && mk.Get(r.Detected) == 0 }
	normal := func(mk san.Marking) bool { return alive(mk) && mk.Get(r.Detected) == 1 }

	// recover brings the system into the normal mode after a successful
	// detection: P1old takes over and the MDCD rollback/roll-forward
	// machinery restores a consistent global state. Message-borne
	// contamination always travels together with the dirty-bit view (a
	// contaminated P1new or P2 is also considered potentially
	// contaminated on the dominant paths), so rollback to the checkpoints
	// taken before those receipts discards it. The paper makes the same
	// approximation explicitly (§4.1): dormant error conditions surviving
	// recovery are negligible, so the recovered pair {P1old, P2} restarts
	// clean; fresh MuOld faults in the remainder of [0, φ] are what drive
	// post-recovery failures.
	recover := func(mk san.Marking) {
		mk.Set(r.Detected, 1)
		mk.Set(r.P1Nctn, 0) // P1new is retired; its state no longer matters
		mk.Set(r.P1Octn, 0) // rollback restores P1old's checkpointed clean state
		mk.Set(r.P2ctn, 0)  // rollback/roll-forward restores a valid P2 state
		mk.Set(r.DirtyBit, 0)
	}
	// fail enters the absorbing failure state, zeroing bookkeeping places so
	// failure states collapse to (at most) one per detected value.
	fail := func(mk san.Marking) {
		mk.Set(r.Failure, 1)
		mk.Set(r.P1Nctn, 0)
		mk.Set(r.P1Octn, 0)
		mk.Set(r.P2ctn, 0)
		mk.Set(r.DirtyBit, 0)
	}

	// --- Fault manifestations -------------------------------------------
	// P1new manifests design faults only while it is in service (G-OP mode).
	p1nfm := m.AddTimedActivity("P1Nfm", san.ConstRate(p.MuNew)).
		AddInputGate("enabled", func(mk san.Marking) bool {
			return gop(mk) && mk.Get(r.P1Nctn) == 0
		}, nil)
	p1nfm.AddCase(san.ConstProb(1)).AddOutputFunc(func(mk san.Marking) { mk.Set(r.P1Nctn, 1) })

	// P1old exists throughout [0, φ]: shadow during G-OP, active after
	// recovery. Its (old-version) faults manifest at MuOld in both modes.
	p1ofm := m.AddTimedActivity("P1Ofm", san.ConstRate(p.MuOld)).
		AddInputGate("enabled", func(mk san.Marking) bool {
			return alive(mk) && mk.Get(r.P1Octn) == 0
		}, nil)
	p1ofm.AddCase(san.ConstProb(1)).AddOutputFunc(func(mk san.Marking) { mk.Set(r.P1Octn, 1) })

	p2fm := m.AddTimedActivity("P2fm", san.ConstRate(p.MuOld)).
		AddInputGate("enabled", func(mk san.Marking) bool {
			return alive(mk) && mk.Get(r.P2ctn) == 0
		}, nil)
	p2fm.AddCase(san.ConstProb(1)).AddOutputFunc(func(mk san.Marking) { mk.Set(r.P2ctn, 1) })

	// --- P1new message sending (G-OP mode only) -------------------------
	// P1new is always considered potentially contaminated, so every external
	// message undergoes AT. An erroneous external message (P1Nctn==1) is
	// detected with probability c, otherwise the system fails. A clean
	// external message passes AT and validates the confidence chain,
	// resetting the shared dirty bit (gate P1Nok_ext of Figure 6).
	// Internal messages go to P2: they mark P2 potentially contaminated and,
	// if P1new's state is erroneous, actually contaminate P2.
	p1nmsg := m.AddTimedActivity("P1Nmsg", san.ConstRate(p.Lambda)).
		AddInputGate("gop", gop, nil)
	p1nmsg.AddCase(func(mk san.Marking) float64 { // P1Nerr_ext, detected & recovered
		if mk.Get(r.P1Nctn) == 1 {
			return p.PExt * p.Coverage * rs
		}
		return 0
	}).AddOutputFunc(recover)
	p1nmsg.AddCase(func(mk san.Marking) float64 { // P1Nerr_ext, undetected or recovery failed
		if mk.Get(r.P1Nctn) == 1 {
			return p.PExt * (1 - p.Coverage*rs)
		}
		return 0
	}).AddOutputFunc(fail)
	p1nmsg.AddCase(func(mk san.Marking) float64 { // P1Nok_ext
		if mk.Get(r.P1Nctn) == 0 {
			return p.PExt
		}
		return 0
	}).AddOutputFunc(func(mk san.Marking) { mk.Set(r.DirtyBit, 0) })
	p1nmsg.AddCase(san.ConstProb(1 - p.PExt)). // internal to P2
							AddOutputFunc(func(mk san.Marking) {
			mk.Set(r.DirtyBit, 1)
			if mk.Get(r.P1Nctn) == 1 {
				mk.Set(r.P2ctn, 1)
			}
		})

	// --- P2 message sending (both modes) --------------------------------
	// G-OP mode: P2's external messages undergo AT only while P2 is
	// considered potentially contaminated (dirty bit set). An erroneous
	// external message from a P2 considered clean escapes validation and
	// fails the system directly (the paper's scenario 3). Normal mode: no
	// AT at all, so an erroneous external message always fails the system.
	p2msg := m.AddTimedActivity("P2msg", san.ConstRate(p.Lambda)).
		AddInputGate("alive", alive, nil)
	p2msg.AddCase(func(mk san.Marking) float64 { // P2err_ext, detected & recovered
		if gop(mk) && mk.Get(r.P2ctn) == 1 && mk.Get(r.DirtyBit) == 1 {
			return p.PExt * p.Coverage * rs
		}
		return 0
	}).AddOutputFunc(recover)
	p2msg.AddCase(func(mk san.Marking) float64 { // P2err_ext, failure
		switch {
		case gop(mk) && mk.Get(r.P2ctn) == 1 && mk.Get(r.DirtyBit) == 1:
			return p.PExt * (1 - p.Coverage*rs) // AT miss or failed recovery
		case gop(mk) && mk.Get(r.P2ctn) == 1 && mk.Get(r.DirtyBit) == 0:
			return p.PExt // no AT: P2 considered clean
		case normal(mk) && mk.Get(r.P2ctn) == 1:
			return p.PExt // no AT in normal mode
		default:
			return 0
		}
	}).AddOutputFunc(fail)
	p2msg.AddCase(func(mk san.Marking) float64 { // P2ok_ext
		if mk.Get(r.P2ctn) == 0 {
			return p.PExt
		}
		return 0
	}).AddOutputFunc(func(mk san.Marking) {
		// A clean P2 external message passes AT (if one was required) and
		// resets the confidence view, as gate P2ok_ext in Figure 6.
		if mk.Get(r.Detected) == 0 {
			mk.Set(r.DirtyBit, 0)
		}
	})
	p2msg.AddCase(san.ConstProb(1 - p.PExt)). // internal
							AddOutputFunc(func(mk san.Marking) {
			if mk.Get(r.P2ctn) != 1 {
				return
			}
			// G-OP: both P1 replicas receive P2's messages; normal mode:
			// only P1old remains.
			mk.Set(r.P1Octn, 1)
			if mk.Get(r.Detected) == 0 {
				mk.Set(r.P1Nctn, 1)
			}
		})

	// --- P1old message sending (normal mode only) -----------------------
	// During G-OP P1old's outgoing messages are suppressed (shadow mode),
	// so they can neither fail the system nor propagate contamination.
	// After recovery P1old is active and its messages behave like P2's in
	// the normal mode.
	p1omsg := m.AddTimedActivity("P1Omsg", san.ConstRate(p.Lambda)).
		AddInputGate("normal", normal, nil)
	p1omsg.AddCase(func(mk san.Marking) float64 { // erroneous external
		if mk.Get(r.P1Octn) == 1 {
			return p.PExt
		}
		return 0
	}).AddOutputFunc(fail)
	p1omsg.AddCase(func(mk san.Marking) float64 { // clean external
		if mk.Get(r.P1Octn) == 0 {
			return p.PExt
		}
		return 0
	})
	p1omsg.AddCase(san.ConstProb(1 - p.PExt)). // internal to P2
							AddOutputFunc(func(mk san.Marking) {
			if mk.Get(r.P1Octn) == 1 {
				mk.Set(r.P2ctn, 1)
			}
		})

	sp, err := statespace.Generate(m, statespace.Options{})
	if err != nil {
		return nil, err
	}
	r.Space = sp
	r.buildRateVectors()
	return r, nil
}

// buildRateVectors evaluates every Table 1 reward structure over the
// generated space once, so per-φ measure evaluation is pure dot products.
func (r *RMGd) buildRateVectors() {
	r.vIntH = r.structIntH().RateVector(r.Space)
	r.vIntTauH = r.structIntTauH().RateVector(r.Space)
	r.vIntHF = r.structIntHF().RateVector(r.Space)
	r.vPA1 = r.structPA1().RateVector(r.Space)
	r.vUndet = reward.NewStructure().Add("!detected && failure", func(mk san.Marking) bool {
		return mk.Get(r.Detected) == 0 && mk.Get(r.Failure) == 1
	}, 1).RateVector(r.Space)
	r.vDetected = reward.NewStructure().Add("detected", func(mk san.Marking) bool {
		return mk.Get(r.Detected) == 1
	}, 1).RateVector(r.Space)
}
