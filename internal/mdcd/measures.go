package mdcd

import (
	"guardedop/internal/reward"
	"guardedop/internal/san"
)

// GdMeasures are the constituent measures solved in RMGd (paper Table 1)
// for a particular G-OP duration φ.
type GdMeasures struct {
	// IntH = ∫₀^φ h(τ)dτ: probability that an error occurs and is detected
	// by φ. Instant-of-time reward at φ with predicate
	// detected==1 && failure==0.
	IntH float64
	// IntTauH = ∫₀^φ τh(τ)dτ: mean time to error detection (truncated at
	// φ). Accumulated reward over [0,φ] with rate 1 on detected==0 and
	// rate -1 on detected==0 && failure==1.
	IntTauH float64
	// IntHF = ∫₀^φ∫_τ^φ h(τ)f(x)dx dτ: probability that an error is
	// detected during G-OP and the recovered system fails by φ.
	// Instant-of-time reward at φ with predicate detected==1 && failure==1.
	IntHF float64
	// PA1 = P(X′_φ ∈ A′₁): probability no error has occurred by φ.
	// Instant-of-time reward at φ with predicate detected==0 && failure==0.
	PA1 float64
	// PUndetectedFailure = P(X′_φ ∈ A′₄): probability the system failed by
	// φ without detection. Not part of Table 1, but completes the state
	// partition (PA1 + IntH + IntHF + PUndetectedFailure = 1) and is used
	// by validation tests.
	PUndetectedFailure float64
	// AccDetected = ∫₀^φ P(detected by u)du. Not part of Table 1; it
	// enables the exact conditional mean detection time used by the
	// γ-policy ablation (see MeanDetectionTime).
	AccDetected float64
	// phi records the duration the measures were solved at.
	phi float64
}

// PDetected returns P(an error has been detected by φ), whether or not the
// recovered system subsequently failed.
func (m GdMeasures) PDetected() float64 { return m.IntH + m.IntHF }

// MeanDetectionTime returns the exact conditional mean time to error
// detection, E[τ | τ ≤ φ]. Detection is monotone (the detected place is
// never reset), so E[τ·1(τ≤φ)] = φ·P(detected by φ) − ∫₀^φ P(detected by
// u)du. It returns 0 when detection has probability 0.
//
// Contrast with the paper's Table 1 ∫τh reward (IntTauH), which
// accumulates sojourn before the FIRST ERROR EVENT and counts the full φ
// for error-free paths; that quantity exceeds this conditional mean.
func (m GdMeasures) MeanDetectionTime() float64 {
	pDet := m.PDetected()
	if pDet <= 0 {
		return 0
	}
	return (m.phi*pDet - m.AccDetected) / pDet
}

// structIntH is the Table 1 reward structure for ∫h.
func (r *RMGd) structIntH() *reward.Structure {
	return reward.NewStructure().Add("detected && !failure", func(mk san.Marking) bool {
		return mk.Get(r.Detected) == 1 && mk.Get(r.Failure) == 0
	}, 1)
}

// structIntTauH is the Table 1 reward structure for ∫τh.
func (r *RMGd) structIntTauH() *reward.Structure {
	return reward.NewStructure().
		Add("!detected", func(mk san.Marking) bool {
			return mk.Get(r.Detected) == 0
		}, 1).
		Add("!detected && failure", func(mk san.Marking) bool {
			return mk.Get(r.Detected) == 0 && mk.Get(r.Failure) == 1
		}, -1)
}

// structIntHF is the Table 1 reward structure for ∫∫hf.
func (r *RMGd) structIntHF() *reward.Structure {
	return reward.NewStructure().Add("detected && failure", func(mk san.Marking) bool {
		return mk.Get(r.Detected) == 1 && mk.Get(r.Failure) == 1
	}, 1)
}

// structPA1 is the Table 1 reward structure for P(X′_φ ∈ A′₁).
func (r *RMGd) structPA1() *reward.Structure {
	return reward.NewStructure().Add("!detected && !failure", func(mk san.Marking) bool {
		return mk.Get(r.Detected) == 0 && mk.Get(r.Failure) == 0
	}, 1)
}

// Table1Structures returns the named Table 1 reward structures, keyed by the
// paper's measure notation. Used for diagnostics and the table1 experiment.
func (r *RMGd) Table1Structures() map[string]*reward.Structure {
	return map[string]*reward.Structure{
		"int_h":       r.structIntH(),
		"int_tau_h":   r.structIntTauH(),
		"int_int_h_f": r.structIntHF(),
		"P(A1)":       r.structPA1(),
	}
}

// Measures solves all Table 1 constituent measures at G-OP duration phi.
func (r *RMGd) Measures(phi float64) (GdMeasures, error) {
	var out GdMeasures
	var err error
	if out.IntH, err = reward.InstantOfTime(r.Space, r.structIntH(), phi); err != nil {
		return out, err
	}
	if out.IntTauH, err = reward.Accumulated(r.Space, r.structIntTauH(), phi); err != nil {
		return out, err
	}
	if out.IntHF, err = reward.InstantOfTime(r.Space, r.structIntHF(), phi); err != nil {
		return out, err
	}
	if out.PA1, err = reward.InstantOfTime(r.Space, r.structPA1(), phi); err != nil {
		return out, err
	}
	if out.PUndetectedFailure, err = reward.StateProbability(r.Space, func(mk san.Marking) bool {
		return mk.Get(r.Detected) == 0 && mk.Get(r.Failure) == 1
	}, phi); err != nil {
		return out, err
	}
	detected := reward.NewStructure().Add("detected", func(mk san.Marking) bool {
		return mk.Get(r.Detected) == 1
	}, 1)
	if out.AccDetected, err = reward.Accumulated(r.Space, detected, phi); err != nil {
		return out, err
	}
	out.phi = phi
	return out, nil
}

// GpMeasures are the steady-state overhead measures solved in RMGp (paper
// Table 2).
type GpMeasures struct {
	// Rho1 is the fraction of time P1new makes forward progress.
	Rho1 float64
	// Rho2 is the fraction of time P2 makes forward progress.
	Rho2 float64
}

// structOverhead1 is the Table 2 reward structure for 1-ρ₁:
// MARK(P1nExt)==1. The non-zero test generalises the paper's ==1 to the
// Erlang-staged variant, where the place holds the remaining stage count;
// the two coincide for the paper's exponential model.
func (r *RMGp) structOverhead1() *reward.Structure {
	return reward.NewStructure().Add("P1nExt", func(mk san.Marking) bool {
		return mk.Get(r.P1nExt) > 0
	}, 1)
}

// structOverhead2 is the Table 2 reward structure for 1-ρ₂:
// (MARK(P1nInt)==1 && MARK(P2DB)==0) || (MARK(P2Ext)==1 && MARK(P2DB)==1),
// with the same non-zero generalisation as structOverhead1.
func (r *RMGp) structOverhead2() *reward.Structure {
	return reward.NewStructure().Add("P2 ckpt or AT", func(mk san.Marking) bool {
		return (mk.Get(r.P1nInt) > 0 && mk.Get(r.P2DB) == 0) ||
			(mk.Get(r.P2Ext) > 0 && mk.Get(r.P2DB) == 1)
	}, 1)
}

// Overhead1Structure returns the Table 2 reward structure for 1-ρ₁.
func (r *RMGp) Overhead1Structure() *reward.Structure { return r.structOverhead1() }

// Overhead2Structure returns the Table 2 reward structure for 1-ρ₂.
func (r *RMGp) Overhead2Structure() *reward.Structure { return r.structOverhead2() }

// Measures solves the Table 2 steady-state overhead measures.
func (r *RMGp) Measures() (GpMeasures, error) {
	oh1, err := reward.SteadyState(r.Space, r.structOverhead1())
	if err != nil {
		return GpMeasures{}, err
	}
	oh2, err := reward.SteadyState(r.Space, r.structOverhead2())
	if err != nil {
		return GpMeasures{}, err
	}
	return GpMeasures{Rho1: 1 - oh1, Rho2: 1 - oh2}, nil
}
