package mdcd

import (
	"context"
	"fmt"

	"guardedop/internal/obs"
	"guardedop/internal/reward"
	"guardedop/internal/robust"
	"guardedop/internal/san"
)

// GdMeasures are the constituent measures solved in RMGd (paper Table 1)
// for a particular G-OP duration φ.
type GdMeasures struct {
	// IntH = ∫₀^φ h(τ)dτ: probability that an error occurs and is detected
	// by φ. Instant-of-time reward at φ with predicate
	// detected==1 && failure==0.
	IntH float64
	// IntTauH = ∫₀^φ τh(τ)dτ: mean time to error detection (truncated at
	// φ). Accumulated reward over [0,φ] with rate 1 on detected==0 and
	// rate -1 on detected==0 && failure==1.
	IntTauH float64
	// IntHF = ∫₀^φ∫_τ^φ h(τ)f(x)dx dτ: probability that an error is
	// detected during G-OP and the recovered system fails by φ.
	// Instant-of-time reward at φ with predicate detected==1 && failure==1.
	IntHF float64
	// PA1 = P(X′_φ ∈ A′₁): probability no error has occurred by φ.
	// Instant-of-time reward at φ with predicate detected==0 && failure==0.
	PA1 float64
	// PUndetectedFailure = P(X′_φ ∈ A′₄): probability the system failed by
	// φ without detection. Not part of Table 1, but completes the state
	// partition (PA1 + IntH + IntHF + PUndetectedFailure = 1) and is used
	// by validation tests.
	PUndetectedFailure float64
	// AccDetected = ∫₀^φ P(detected by u)du. Not part of Table 1; it
	// enables the exact conditional mean detection time used by the
	// γ-policy ablation (see MeanDetectionTime).
	AccDetected float64
	// phi records the duration the measures were solved at.
	phi float64
}

// WithPhi returns a copy of m with the duration used by
// MeanDetectionTime set to phi. It exists for assemblers outside the
// package (the parametric layer) that fill the measure fields without
// going through this package's solvers.
func (m GdMeasures) WithPhi(phi float64) GdMeasures {
	m.phi = phi
	return m
}

// PDetected returns P(an error has been detected by φ), whether or not the
// recovered system subsequently failed.
func (m GdMeasures) PDetected() float64 { return m.IntH + m.IntHF }

// MeanDetectionTime returns the exact conditional mean time to error
// detection, E[τ | τ ≤ φ]. Detection is monotone (the detected place is
// never reset), so E[τ·1(τ≤φ)] = φ·P(detected by φ) − ∫₀^φ P(detected by
// u)du. It returns 0 when detection has probability 0.
//
// Contrast with the paper's Table 1 ∫τh reward (IntTauH), which
// accumulates sojourn before the FIRST ERROR EVENT and counts the full φ
// for error-free paths; that quantity exceeds this conditional mean.
func (m GdMeasures) MeanDetectionTime() float64 {
	pDet := m.PDetected()
	if pDet <= 0 {
		return 0
	}
	return (m.phi*pDet - m.AccDetected) / pDet
}

// structIntH is the Table 1 reward structure for ∫h.
func (r *RMGd) structIntH() *reward.Structure {
	return reward.NewStructure().Add("detected && !failure", func(mk san.Marking) bool {
		return mk.Get(r.Detected) == 1 && mk.Get(r.Failure) == 0
	}, 1)
}

// structIntTauH is the Table 1 reward structure for ∫τh.
func (r *RMGd) structIntTauH() *reward.Structure {
	return reward.NewStructure().
		Add("!detected", func(mk san.Marking) bool {
			return mk.Get(r.Detected) == 0
		}, 1).
		Add("!detected && failure", func(mk san.Marking) bool {
			return mk.Get(r.Detected) == 0 && mk.Get(r.Failure) == 1
		}, -1)
}

// structIntHF is the Table 1 reward structure for ∫∫hf.
func (r *RMGd) structIntHF() *reward.Structure {
	return reward.NewStructure().Add("detected && failure", func(mk san.Marking) bool {
		return mk.Get(r.Detected) == 1 && mk.Get(r.Failure) == 1
	}, 1)
}

// structPA1 is the Table 1 reward structure for P(X′_φ ∈ A′₁).
func (r *RMGd) structPA1() *reward.Structure {
	return reward.NewStructure().Add("!detected && !failure", func(mk san.Marking) bool {
		return mk.Get(r.Detected) == 0 && mk.Get(r.Failure) == 0
	}, 1)
}

// Table1Structures returns the named Table 1 reward structures, keyed by the
// paper's measure notation. Used for diagnostics and the table1 experiment.
func (r *RMGd) Table1Structures() map[string]*reward.Structure {
	return map[string]*reward.Structure{
		"int_h":       r.structIntH(),
		"int_tau_h":   r.structIntTauH(),
		"int_int_h_f": r.structIntHF(),
		"P(A1)":       r.structPA1(),
	}
}

// Measures solves all Table 1 constituent measures at G-OP duration phi,
// one full transient or accumulated solve per measure against the reward
// vectors prebuilt at model construction. This is the point-wise reference
// path; φ-grids should use MeasuresSeries, which shares a single
// incremental propagation across the whole grid.
func (r *RMGd) Measures(phi float64) (GdMeasures, error) {
	return r.MeasuresContext(context.Background(), phi)
}

// MeasuresContext is Measures under a caller-carried context: one
// "mdcd.RMGd.measures" span covers the call, with a child
// "mdcd.measure" span per Table 1 constituent so a trace shows which
// measure each solver pass served.
func (r *RMGd) MeasuresContext(ctx context.Context, phi float64) (GdMeasures, error) {
	ctx, sp := obs.StartSpan(ctx, "mdcd.RMGd.measures")
	defer sp.End()
	sp.SetFloat("phi", phi)
	ch, init := r.Space.Chain, r.Space.Initial
	solve := func(name string, accumulated bool, rates []float64) (float64, error) {
		mctx, msp := obs.StartSpan(ctx, "mdcd.measure")
		defer msp.End()
		msp.SetStr("measure", name)
		if accumulated {
			return ch.AccumulatedRewardContext(mctx, init, phi, rates)
		}
		return ch.TransientRewardContext(mctx, init, phi, rates)
	}
	var out GdMeasures
	var err error
	if out.IntH, err = solve("int_h", false, r.vIntH); err != nil {
		return out, err
	}
	if out.IntTauH, err = solve("int_tau_h", true, r.vIntTauH); err != nil {
		return out, err
	}
	if out.IntHF, err = solve("int_int_h_f", false, r.vIntHF); err != nil {
		return out, err
	}
	if out.PA1, err = solve("P(A1)", false, r.vPA1); err != nil {
		return out, err
	}
	if out.PUndetectedFailure, err = solve("P(A4)", false, r.vUndet); err != nil {
		return out, err
	}
	if out.AccDetected, err = solve("acc_detected", true, r.vDetected); err != nil {
		return out, err
	}
	out.phi = phi
	return out, nil
}

// MeasuresFromSolution assembles the Table 1 measures at duration phi from
// an already-solved state-probability vector π(φ) and accumulated-sojourn
// vector L(φ) = ∫₀^φ π(u)du of this model's chain. Every measure is a dot
// product against the prebuilt reward vectors — no solver work.
func (r *RMGd) MeasuresFromSolution(phi float64, pi, acc []float64) (GdMeasures, error) {
	out := GdMeasures{phi: phi}
	var err error
	if out.IntH, err = dotReward("int_h", r.vIntH, pi); err != nil {
		return out, err
	}
	if out.IntTauH, err = dotReward("int_tau_h", r.vIntTauH, acc); err != nil {
		return out, err
	}
	if out.IntHF, err = dotReward("int_int_h_f", r.vIntHF, pi); err != nil {
		return out, err
	}
	if out.PA1, err = dotReward("P(A1)", r.vPA1, pi); err != nil {
		return out, err
	}
	if out.PUndetectedFailure, err = dotReward("P(A4)", r.vUndet, pi); err != nil {
		return out, err
	}
	if out.AccDetected, err = dotReward("acc_detected", r.vDetected, acc); err != nil {
		return out, err
	}
	return out, nil
}

// MeasuresSeries solves the Table 1 measures for every duration in phis
// (unsorted input is aligned with the output) with one shared incremental
// propagation: a single combined transient+accumulated solver pass per gap
// of the sorted grid serves all six measures of every point, instead of the
// six independent full-horizon solves Measures spends per φ.
func (r *RMGd) MeasuresSeries(phis []float64) ([]GdMeasures, error) {
	return r.MeasuresSeriesContext(context.Background(), phis)
}

// MeasuresSeriesContext is MeasuresSeries under a caller-carried context:
// the shared propagation runs inside one "mdcd.RMGd.measures_series" span.
func (r *RMGd) MeasuresSeriesContext(ctx context.Context, phis []float64) ([]GdMeasures, error) {
	ctx, sp := obs.StartSpan(ctx, "mdcd.RMGd.measures_series")
	defer sp.End()
	sp.SetInt("points", int64(len(phis)))
	pis, accs, err := r.Space.Chain.TransientAccumulatedSeriesContext(ctx, r.Space.Initial, phis)
	if err != nil {
		return nil, err
	}
	out := make([]GdMeasures, len(phis))
	for i, phi := range phis {
		if out[i], err = r.MeasuresFromSolution(phi, pis[i], accs[i]); err != nil {
			return nil, fmt.Errorf("mdcd: measures at phi=%g: %w", phi, err)
		}
	}
	return out, nil
}

// dotReward contracts a prebuilt reward-rate vector against a solved state
// vector, guarding the result against non-finite contamination.
func dotReward(name string, rates, vec []float64) (float64, error) {
	if len(rates) != len(vec) {
		return 0, fmt.Errorf("mdcd: reward vector %s has %d states, solution has %d",
			name, len(rates), len(vec))
	}
	sum := 0.0
	for i, rr := range rates {
		sum += rr * vec[i]
	}
	if err := robust.CheckFinite(name, sum); err != nil {
		return 0, fmt.Errorf("mdcd: %w", err)
	}
	return sum, nil
}

// GpMeasures are the steady-state overhead measures solved in RMGp (paper
// Table 2).
type GpMeasures struct {
	// Rho1 is the fraction of time P1new makes forward progress.
	Rho1 float64
	// Rho2 is the fraction of time P2 makes forward progress.
	Rho2 float64
}

// structOverhead1 is the Table 2 reward structure for 1-ρ₁:
// MARK(P1nExt)==1. The non-zero test generalises the paper's ==1 to the
// Erlang-staged variant, where the place holds the remaining stage count;
// the two coincide for the paper's exponential model.
func (r *RMGp) structOverhead1() *reward.Structure {
	return reward.NewStructure().Add("P1nExt", func(mk san.Marking) bool {
		return mk.Get(r.P1nExt) > 0
	}, 1)
}

// structOverhead2 is the Table 2 reward structure for 1-ρ₂:
// (MARK(P1nInt)==1 && MARK(P2DB)==0) || (MARK(P2Ext)==1 && MARK(P2DB)==1),
// with the same non-zero generalisation as structOverhead1.
func (r *RMGp) structOverhead2() *reward.Structure {
	return reward.NewStructure().Add("P2 ckpt or AT", func(mk san.Marking) bool {
		return (mk.Get(r.P1nInt) > 0 && mk.Get(r.P2DB) == 0) ||
			(mk.Get(r.P2Ext) > 0 && mk.Get(r.P2DB) == 1)
	}, 1)
}

// Overhead1Structure returns the Table 2 reward structure for 1-ρ₁.
func (r *RMGp) Overhead1Structure() *reward.Structure { return r.structOverhead1() }

// Overhead2Structure returns the Table 2 reward structure for 1-ρ₂.
func (r *RMGp) Overhead2Structure() *reward.Structure { return r.structOverhead2() }

// Measures solves the Table 2 steady-state overhead measures.
func (r *RMGp) Measures() (GpMeasures, error) {
	oh1, err := reward.SteadyState(r.Space, r.structOverhead1())
	if err != nil {
		return GpMeasures{}, err
	}
	oh2, err := reward.SteadyState(r.Space, r.structOverhead2())
	if err != nil {
		return GpMeasures{}, err
	}
	return GpMeasures{Rho1: 1 - oh1, Rho2: 1 - oh2}, nil
}
