package mdcd

import (
	"fmt"
	"math"
)

// Params holds the model parameters of the paper's Table 3. All rates are
// per hour; Theta and durations are in hours.
type Params struct {
	// Theta is the time to the next scheduled onboard upgrade.
	Theta float64
	// Lambda is the message-sending rate of a process.
	Lambda float64
	// MuNew is the fault-manifestation rate of the newly upgraded version.
	MuNew float64
	// MuOld is the fault-manifestation rate of an old software version.
	MuOld float64
	// Coverage is the acceptance-test coverage c.
	Coverage float64
	// PExt is the probability that a message is external.
	PExt float64
	// Alpha is the acceptance-test completion rate.
	Alpha float64
	// Beta is the checkpoint-establishment completion rate.
	Beta float64
}

// DefaultParams returns the paper's Table 3 base assignment:
// θ=10000 h, λ=1200/h, µ_new=1e-4/h, µ_old=1e-8/h, c=0.95, p_ext=0.1,
// α=6000/h, β=6000/h.
func DefaultParams() Params {
	return Params{
		Theta:    10000,
		Lambda:   1200,
		MuNew:    1e-4,
		MuOld:    1e-8,
		Coverage: 0.95,
		PExt:     0.1,
		Alpha:    6000,
		Beta:     6000,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	check := func(name string, v float64, allowZero bool) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || (!allowZero && v == 0) {
			return fmt.Errorf("mdcd: parameter %s = %g out of range", name, v)
		}
		return nil
	}
	if err := check("Theta", p.Theta, false); err != nil {
		return err
	}
	if err := check("Lambda", p.Lambda, false); err != nil {
		return err
	}
	if err := check("MuNew", p.MuNew, true); err != nil {
		return err
	}
	if err := check("MuOld", p.MuOld, true); err != nil {
		return err
	}
	if err := check("Alpha", p.Alpha, false); err != nil {
		return err
	}
	if err := check("Beta", p.Beta, false); err != nil {
		return err
	}
	if p.Coverage < 0 || p.Coverage > 1 || math.IsNaN(p.Coverage) {
		return fmt.Errorf("mdcd: Coverage = %g, want [0,1]", p.Coverage)
	}
	if p.PExt <= 0 || p.PExt > 1 || math.IsNaN(p.PExt) {
		return fmt.Errorf("mdcd: PExt = %g, want (0,1]", p.PExt)
	}
	return nil
}
