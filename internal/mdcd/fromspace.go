package mdcd

import (
	"fmt"

	"guardedop/internal/san"
	"guardedop/internal/statespace"
)

// NewRMGdFromSpace wraps an externally generated state space as an RMGd.
//
// The Table 1 reward structures — and therefore every measure the
// analyzer asks of a Gd model — are pure functions of the detected and
// failure places, so any SAN whose marking carries those two flags with
// the paper's semantics (detected==1 ⇒ recovered to normal mode,
// failure==1 ⇒ absorbing undetected failure) yields a valid Gd model
// regardless of how many processes, guard policies, or contamination
// places the scenario template generated around them. The per-process
// place handles of the handwritten model stay nil: they exist only for
// the monolithic simulator, which runs exclusively on the handwritten
// two-process model.
func NewRMGdFromSpace(sp *statespace.Space, detected, failure *san.Place) (*RMGd, error) {
	if sp == nil || detected == nil || failure == nil {
		return nil, fmt.Errorf("mdcd: NewRMGdFromSpace: nil space or place")
	}
	r := &RMGd{Space: sp, Detected: detected, Failure: failure}
	r.buildRateVectors()
	return r, nil
}

// NewRMNdFromSpace wraps an externally generated state space as an RMNd.
// The normal-mode model's only measure, P(no failure by t), reads the
// failure place alone; the contamination place handles stay nil as in
// NewRMGdFromSpace.
func NewRMNdFromSpace(sp *statespace.Space, failure *san.Place) (*RMNd, error) {
	if sp == nil || failure == nil {
		return nil, fmt.Errorf("mdcd: NewRMNdFromSpace: nil space or place")
	}
	r := &RMNd{Space: sp, Failure: failure}
	r.noFailRates = make([]float64, sp.NumStates())
	for i, mk := range sp.States {
		if mk.Get(failure) == 0 {
			r.noFailRates[i] = 1
		}
	}
	return r, nil
}
