package mdcd

import (
	"math"
	"testing"
)

func TestSafeguardRatesBaseParams(t *testing.T) {
	p := DefaultParams()
	gp, err := BuildRMGp(p)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := gp.SafeguardRates()
	if err != nil {
		t.Fatal(err)
	}
	// P1new's AT rate has a closed renewal form: ATs complete once per
	// external message, and P1new emits externals at lambda*pext*rho1.
	m, err := gp.Measures()
	if err != nil {
		t.Fatal(err)
	}
	wantP1nAT := p.Lambda * p.PExt * m.Rho1
	if math.Abs(rates.P1nAT-wantP1nAT) > 1e-6*wantP1nAT {
		t.Errorf("P1nAT rate = %.4f, want %.4f", rates.P1nAT, wantP1nAT)
	}
	// Consistency: time fraction in P1new's AT equals rate x mean duration.
	if overhead := rates.P1nAT / p.Alpha; math.Abs(overhead-(1-m.Rho1)) > 1e-9 {
		t.Errorf("P1nAT occupancy = %.6f, want 1-rho1 = %.6f", overhead, 1-m.Rho1)
	}
	// All four safeguard operations occur with positive frequency.
	if rates.P2AT <= 0 || rates.P2Ckpt <= 0 || rates.P1oCkpt <= 0 {
		t.Errorf("expected all safeguard rates positive: %+v", rates)
	}
	if rates.Total() <= rates.P1nAT {
		t.Errorf("Total() = %v not cumulative", rates.Total())
	}
	// Dirty-bit resets are driven by AT completions, so P2's checkpoints
	// (one per dirty-bit set) cannot outnumber AT completions plus one.
	if rates.P2Ckpt > rates.P1nAT+rates.P2AT+1 {
		t.Errorf("checkpoint rate %v implausibly exceeds AT rates %+v", rates.P2Ckpt, rates)
	}
}

// Occupancy identities must hold for Erlang stages too: rate x mean
// duration = time fraction, independent of the stage count.
func TestSafeguardRatesErlangConsistency(t *testing.T) {
	p := DefaultParams()
	for _, k := range []int{1, 2, 4} {
		gp, err := BuildRMGpErlang(p, k)
		if err != nil {
			t.Fatal(err)
		}
		rates, err := gp.SafeguardRates()
		if err != nil {
			t.Fatal(err)
		}
		m, err := gp.Measures()
		if err != nil {
			t.Fatal(err)
		}
		if occ := rates.P1nAT / p.Alpha; math.Abs(occ-(1-m.Rho1)) > 1e-8 {
			t.Errorf("k=%d: P1nAT occupancy %.6f != 1-rho1 %.6f", k, occ, 1-m.Rho1)
		}
	}
}

func TestErlangStagesPreserveRho(t *testing.T) {
	p := DefaultParams()
	base, err := BuildRMGp(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Measures()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4} {
		gp, err := BuildRMGpErlang(p, k)
		if err != nil {
			t.Fatal(err)
		}
		if gp.Stages != k {
			t.Errorf("Stages = %d, want %d", gp.Stages, k)
		}
		got, err := gp.Measures()
		if err != nil {
			t.Fatal(err)
		}
		// The overhead fractions depend on the safeguard-duration means
		// only (an insensitivity result): Erlang stages must not move rho
		// by more than a few 1e-4.
		if math.Abs(got.Rho1-want.Rho1) > 5e-4 || math.Abs(got.Rho2-want.Rho2) > 5e-4 {
			t.Errorf("k=%d: rho = (%.5f, %.5f), exponential gives (%.5f, %.5f)",
				k, got.Rho1, got.Rho2, want.Rho1, want.Rho2)
		}
	}
}

func TestErlangStateSpaceGrowth(t *testing.T) {
	p := DefaultParams()
	g1, err := BuildRMGpErlang(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	g4, err := BuildRMGpErlang(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g4.Space.NumStates() <= g1.Space.NumStates() {
		t.Errorf("Erlang-4 state space (%d) not larger than exponential (%d)",
			g4.Space.NumStates(), g1.Space.NumStates())
	}
}

func TestBuildRMGpErlangValidation(t *testing.T) {
	if _, err := BuildRMGpErlang(DefaultParams(), 0); err == nil {
		t.Error("stages=0 accepted")
	}
	if _, err := BuildRMGpErlang(DefaultParams(), 17); err == nil {
		t.Error("stages=17 accepted")
	}
}
