package sensitivity

import (
	"math"
	"testing"

	"guardedop/internal/mdcd"
)

func TestAnalyzeRanksCoverageAndFaultRateHighest(t *testing.T) {
	results, err := Analyze(mdcd.DefaultParams(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(AllParameters()) {
		t.Fatalf("got %d results, want %d", len(results), len(AllParameters()))
	}
	rank := make(map[Parameter]int, len(results))
	byParam := make(map[Parameter]Result, len(results))
	for i, r := range results {
		rank[r.Parameter] = i
		byParam[r.Parameter] = r
	}

	// The paper's qualitative findings, as sensitivities:
	// coverage strongly increases Y (Fig. 11)...
	if byParam[Coverage].YElasticity <= 0 {
		t.Errorf("coverage elasticity = %v, want > 0", byParam[Coverage].YElasticity)
	}
	// ...mu_old is immaterial at 1e-8...
	if math.Abs(byParam[MuOld].YElasticity) > 0.01 {
		t.Errorf("mu_old elasticity = %v, want ≈ 0", byParam[MuOld].YElasticity)
	}
	if rank[MuOld] < rank[Coverage] {
		t.Error("mu_old ranked above coverage")
	}
	// ...and faster safeguards (larger alpha/beta) raise Y.
	if byParam[Alpha].YElasticity <= 0 || byParam[Beta].YElasticity <= 0 {
		t.Errorf("alpha/beta elasticities = %v, %v, want > 0",
			byParam[Alpha].YElasticity, byParam[Beta].YElasticity)
	}

	// Results are sorted by |elasticity| descending.
	for i := 1; i < len(results); i++ {
		if math.Abs(results[i].YElasticity) > math.Abs(results[i-1].YElasticity)+1e-12 {
			t.Errorf("results not sorted at %d", i)
		}
	}
}

func TestAnalyzeFaultRateShiftsPhi(t *testing.T) {
	// Fig. 9: smaller mu_new favours shorter guarding, so phi* must grow
	// with mu_new: UpPhi > DownPhi.
	results, err := Analyze(mdcd.DefaultParams(), Options{
		RelDelta:   0.3,
		Parameters: []Parameter{MuNew},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.PhiShift <= 0 {
		t.Errorf("mu_new phi shift = %v, want > 0 (Fig. 9 direction)", r.PhiShift)
	}
}

func TestAnalyzeSubsetAndDelta(t *testing.T) {
	results, err := Analyze(mdcd.DefaultParams(), Options{
		RelDelta:   0.05,
		Parameters: []Parameter{Coverage, MuNew},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for _, r := range results {
		if r.RelDelta != 0.05 {
			t.Errorf("RelDelta = %v, want 0.05", r.RelDelta)
		}
		if r.BaseY < 1 {
			t.Errorf("BaseY = %v, want > 1 at Table 3", r.BaseY)
		}
	}
}

func TestAnalyzeValidation(t *testing.T) {
	bad := mdcd.DefaultParams()
	bad.Lambda = -1
	if _, err := Analyze(bad, Options{}); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := Analyze(mdcd.DefaultParams(), Options{RelDelta: 1.5}); err == nil {
		t.Error("RelDelta >= 1 accepted")
	}
	if _, err := Analyze(mdcd.DefaultParams(), Options{Parameters: []Parameter{"bogus"}}); err == nil {
		t.Error("unknown parameter accepted")
	}
}

func TestApplyCoverageClamped(t *testing.T) {
	p := mdcd.DefaultParams()
	up, err := apply(p, Coverage, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if up.Coverage > 1 {
		t.Errorf("coverage = %v, want clamped to 1", up.Coverage)
	}
}
