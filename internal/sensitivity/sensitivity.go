// Package sensitivity quantifies how the optimal guarded-operation
// decision responds to each model parameter: a central-finite-difference
// local sensitivity analysis of the maximum performability index Y* and
// the optimal duration φ* around a base parameter set.
//
// This is the design-oriented reading of the paper's Section 6: Figures
// 9-12 vary one parameter at a time by hand; this package systematises the
// exercise into elasticities (d ln Y* / d ln p), ranking the parameters by
// influence — the tornado view a designer would want before committing to
// a duration.
package sensitivity

import (
	"fmt"
	"math"
	"sort"

	"guardedop/internal/core"
	"guardedop/internal/mdcd"
)

// Parameter identifies one scalar model parameter.
type Parameter string

// The perturbable parameters.
const (
	Theta    Parameter = "theta"
	Lambda   Parameter = "lambda"
	MuNew    Parameter = "mu_new"
	MuOld    Parameter = "mu_old"
	Coverage Parameter = "coverage"
	PExt     Parameter = "p_ext"
	Alpha    Parameter = "alpha"
	Beta     Parameter = "beta"
)

// AllParameters lists every perturbable parameter in report order.
func AllParameters() []Parameter {
	return []Parameter{Theta, Lambda, MuNew, MuOld, Coverage, PExt, Alpha, Beta}
}

// apply returns a copy of p with the parameter scaled by factor. Coverage
// is clamped to 1 (it is a probability).
func apply(p mdcd.Params, param Parameter, factor float64) (mdcd.Params, error) {
	switch param {
	case Theta:
		p.Theta *= factor
	case Lambda:
		p.Lambda *= factor
	case MuNew:
		p.MuNew *= factor
	case MuOld:
		p.MuOld *= factor
	case Coverage:
		p.Coverage = math.Min(p.Coverage*factor, 1)
	case PExt:
		p.PExt = math.Min(p.PExt*factor, 1)
	case Alpha:
		p.Alpha *= factor
	case Beta:
		p.Beta *= factor
	default:
		return p, fmt.Errorf("sensitivity: unknown parameter %q", param)
	}
	return p, nil
}

// Result is the local sensitivity of the optimal decision to one parameter.
type Result struct {
	Parameter Parameter
	// RelDelta is the relative perturbation applied in each direction.
	RelDelta float64
	// BaseY/BasePhi describe the unperturbed optimum.
	BaseY, BasePhi float64
	// UpY/UpPhi and DownY/DownPhi describe the optima at p·(1+δ) and
	// p·(1−δ).
	UpY, UpPhi     float64
	DownY, DownPhi float64
	// YElasticity is d ln Y* / d ln p by central difference: the percent
	// change of the achievable index per percent change of the parameter.
	YElasticity float64
	// PhiShift is the φ* swing across the perturbation, in hours:
	// UpPhi − DownPhi.
	PhiShift float64
}

// Options tunes the analysis.
type Options struct {
	// RelDelta is the relative perturbation (default 0.10).
	RelDelta float64
	// Parameters restricts the analysis (default: all).
	Parameters []Parameter
	// Optimize configures the per-point optimal-φ search. The default
	// uses a θ/200 tolerance, accurate enough for elasticities while
	// keeping the 2·|Parameters|+1 optimizer runs fast.
	Optimize core.OptimizeOptions
}

func (o Options) withDefaults(theta float64) Options {
	if o.RelDelta == 0 {
		o.RelDelta = 0.10
	}
	if len(o.Parameters) == 0 {
		o.Parameters = AllParameters()
	}
	if o.Optimize.Tolerance == 0 {
		o.Optimize.Tolerance = theta / 200
	}
	return o
}

// Analyze perturbs each parameter by ±RelDelta, re-optimises φ, and returns
// per-parameter sensitivities sorted by descending |YElasticity|.
func Analyze(p mdcd.Params, opts Options) ([]Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(p.Theta)
	if opts.RelDelta <= 0 || opts.RelDelta >= 1 || math.IsNaN(opts.RelDelta) {
		return nil, fmt.Errorf("sensitivity: RelDelta = %g out of (0,1)", opts.RelDelta)
	}

	optimum := func(params mdcd.Params) (y, phi float64, err error) {
		a, err := core.NewAnalyzer(params)
		if err != nil {
			return 0, 0, err
		}
		opt := opts.Optimize
		// Scale the φ tolerance with the (possibly perturbed) horizon so a
		// θ perturbation searches at the same relative resolution.
		opt.Tolerance = opts.Optimize.Tolerance * params.Theta / p.Theta
		best, err := a.OptimizePhi(opt)
		if err != nil {
			return 0, 0, err
		}
		return best.Y, best.Phi, nil
	}

	baseY, basePhi, err := optimum(p)
	if err != nil {
		return nil, fmt.Errorf("sensitivity: base optimum: %w", err)
	}

	out := make([]Result, 0, len(opts.Parameters))
	for _, param := range opts.Parameters {
		up, err := apply(p, param, 1+opts.RelDelta)
		if err != nil {
			return nil, err
		}
		down, err := apply(p, param, 1-opts.RelDelta)
		if err != nil {
			return nil, err
		}
		upY, upPhi, err := optimum(up)
		if err != nil {
			return nil, fmt.Errorf("sensitivity: %s up: %w", param, err)
		}
		downY, downPhi, err := optimum(down)
		if err != nil {
			return nil, fmt.Errorf("sensitivity: %s down: %w", param, err)
		}
		r := Result{
			Parameter: param,
			RelDelta:  opts.RelDelta,
			BaseY:     baseY, BasePhi: basePhi,
			UpY: upY, UpPhi: upPhi,
			DownY: downY, DownPhi: downPhi,
			PhiShift: upPhi - downPhi,
		}
		if baseY > 0 {
			r.YElasticity = (upY - downY) / (2 * opts.RelDelta * baseY)
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		return math.Abs(out[i].YElasticity) > math.Abs(out[j].YElasticity)
	})
	return out, nil
}
