package obs

import (
	"context"
	"testing"
	"time"
)

// TestRequestTracerPropagatesAggregates pins the parent/child contract:
// counters, stage statistics and histogram observations recorded on a
// request tracer reach the parent live, while span objects stay local.
func TestRequestTracerPropagatesAggregates(t *testing.T) {
	parent := NewTracer()
	child := NewRequestTracer(parent)

	ctx := WithTracer(context.Background(), child)
	ctx, root := StartSpan(ctx, "serve.http.curve")
	_, inner := StartSpan(ctx, "core.curve")
	Count(ctx, CtrSolvePasses, 3)
	inner.End()

	// Aggregates must be visible on the parent before the root span ends
	// (the graceful-drain test polls the process tracer mid-request).
	if got := parent.Counter(CtrSolvePasses); got != 3 {
		t.Fatalf("parent counter mid-request = %d, want 3", got)
	}
	if st := parent.Stages()["core.curve"]; st.Count != 1 {
		t.Fatalf("parent core.curve stage mid-request = %+v, want count 1", st)
	}
	root.End()

	if n := parent.SpanCount(); n != 0 {
		t.Fatalf("parent holds %d span objects, want 0 (aggregates only)", n)
	}
	if n := child.SpanCount(); n != 2 {
		t.Fatalf("child holds %d span objects, want 2", n)
	}
	if st := parent.Stages()["serve.http.curve"]; st.Count != 1 {
		t.Fatalf("parent serve.http.curve stage = %+v, want count 1", st)
	}
	if st := child.Stages()["core.curve"]; st.Count != 1 {
		t.Fatalf("child core.curve stage = %+v, want count 1", st)
	}
	if h, ok := parent.Histograms()["core.curve"]; !ok || h.Count != 1 {
		t.Fatalf("parent core.curve histogram = %+v, want one observation", h)
	}
	if got := child.Counter(CtrSolvePasses); got != 3 {
		t.Fatalf("child counter = %d, want 3", got)
	}
}

// TestRequestTracerObservePropagates covers the span-less Observe path.
func TestRequestTracerObservePropagates(t *testing.T) {
	parent := NewTracer()
	child := NewRequestTracer(parent)
	child.Observe("ctmc.axpy", 5*time.Millisecond)
	for name, tr := range map[string]*Tracer{"child": child, "parent": parent} {
		h, ok := tr.Histograms()["ctmc.axpy"]
		if !ok || h.Count != 1 {
			t.Fatalf("%s histogram = %+v, want one observation", name, h)
		}
	}
	// Observe never creates a stage entry — stages are span aggregates.
	if _, ok := parent.Stages()["ctmc.axpy"]; ok {
		t.Fatal("Observe created a stage entry on the parent")
	}
}

// TestRequestTracerGrandparent pins two-level propagation.
func TestRequestTracerGrandparent(t *testing.T) {
	grand := NewTracer()
	mid := NewRequestTracer(grand)
	leaf := NewRequestTracer(mid)
	leaf.Count(CtrServeRequests, 1)
	leaf.observeStage("core.evaluate", 100)
	for name, tr := range map[string]*Tracer{"grand": grand, "mid": mid} {
		if got := tr.Counter(CtrServeRequests); got != 1 {
			t.Fatalf("%s counter = %d, want 1", name, got)
		}
		if st := tr.Stages()["core.evaluate"]; st.Count != 1 || st.Nanos != 100 {
			t.Fatalf("%s stage = %+v, want {1 100}", name, st)
		}
	}
}

// TestAdoptTrace pins the flight-adoption contract: the destination keeps
// its own cancellation while work lands on the source's tracer and under
// its current span.
func TestAdoptTrace(t *testing.T) {
	tr := NewTracer()
	src := WithTracer(context.Background(), tr)
	src, root := StartSpan(src, "serve.http.curve")

	dst, cancel := context.WithCancel(context.Background())
	defer cancel()
	adopted := AdoptTrace(dst, src)

	if got := TracerFrom(adopted); got != tr {
		t.Fatalf("adopted tracer = %p, want %p", got, tr)
	}
	actx, sp := StartSpan(adopted, "core.curve")
	sp.End()
	root.End()
	_ = actx

	doc := Snapshot(tr, Manifest{Tool: "test"})
	if len(doc.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(doc.Spans))
	}
	var child SpanRecord
	for _, s := range doc.Spans {
		if s.Name == "core.curve" {
			child = s
		}
	}
	if child.Parent == 0 {
		t.Fatal("adopted span is not parented under the source's current span")
	}

	// Cancellation follows dst, not src.
	cancel()
	if adopted.Err() == nil {
		t.Fatal("adopted context did not inherit dst's cancellation")
	}
	if src.Err() != nil {
		t.Fatal("canceling dst leaked into src")
	}

	// No traced position on src: dst comes back unchanged.
	if got := AdoptTrace(dst, context.Background()); got != dst {
		t.Fatal("AdoptTrace with untraced src should return dst unchanged")
	}
}

// TestManifestTraceIDRoundTrip pins the additive manifest fields.
func TestManifestTraceIDRoundTrip(t *testing.T) {
	tr := NewTracer()
	doc := Snapshot(tr, Manifest{Tool: "gsuserve", TraceID: "abc123", Route: "curve"})
	if doc.Manifest.TraceID != "abc123" || doc.Manifest.Route != "curve" {
		t.Fatalf("manifest = %+v, want trace id and route preserved", doc.Manifest)
	}
	if doc.Manifest.SchemaVersion != TraceSchemaVersion {
		t.Fatalf("schema version = %d, want %d", doc.Manifest.SchemaVersion, TraceSchemaVersion)
	}
}
