package pprofutil

import (
	"os"
	"path/filepath"
	"testing"
)

// The cpu and mem specs must produce non-empty profile files at the
// requested paths once stop runs.
func TestStartPprofFileModes(t *testing.T) {
	dir := t.TempDir()
	for _, mode := range []string{"cpu", "mem"} {
		path := filepath.Join(dir, mode+".pprof")
		stop, err := StartPprof(mode + "=" + path)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		// Burn a little CPU so the profile has something to record.
		x := 0.0
		for i := 0; i < 1_000_00; i++ {
			x += float64(i) * 1e-9
		}
		_ = x
		if err := stop(); err != nil {
			t.Fatalf("%s stop: %v", mode, err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s profile missing: %v", mode, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s profile is empty", mode)
		}
	}
}

// The HTTP mode must come up on a real listener and shut down cleanly.
func TestStartPprofServer(t *testing.T) {
	stop, err := StartPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// A malformed spec must be rejected up front.
func TestStartPprofBadSpec(t *testing.T) {
	if _, err := StartPprof("bogus"); err == nil {
		t.Fatal("expected an error for a bogus -pprof spec")
	}
}
