// Package pprofutil wires Go's runtime profilers to a -pprof CLI flag.
//
// It lives apart from internal/obs on purpose: the net/http/pprof server
// drags the whole HTTP stack into any binary that links it, and merely
// linking that graph into the solver test binaries measurably perturbs
// the curve-engine hot loops (~10% on BenchmarkCurveEngine, with zero
// obs calls executed — see docs/OBSERVABILITY.md). Solver packages import
// obs, which must therefore stay free of net/http; only the command
// mains import pprofutil.
package pprofutil

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	rtpprof "runtime/pprof"
	"strings"
	"time"
)

// StartPprof wires a profiling hook from a -pprof flag value and returns
// the function that finalizes it (write the profile file, or shut the
// server down). Specs:
//
//	cpu[=file]    CPU profile over the whole run (default cpu.pprof)
//	mem[=file]    heap profile written at exit (default mem.pprof)
//	host:port     net/http/pprof server (e.g. localhost:6060), live
//	              until stop is called
//
// The returned stop is never nil on success and is safe to call exactly
// once; it reports file-write or shutdown failures so a run whose profile
// was lost says so instead of exiting cleanly.
func StartPprof(spec string) (stop func() error, err error) {
	mode, arg, _ := strings.Cut(spec, "=")
	switch mode {
	case "cpu":
		if arg == "" {
			arg = "cpu.pprof"
		}
		f, err := os.Create(arg)
		if err != nil {
			return nil, fmt.Errorf("pprofutil: cpu: %w", err)
		}
		if err := rtpprof.StartCPUProfile(f); err != nil {
			if cerr := f.Close(); cerr != nil {
				err = fmt.Errorf("%w (also failed closing %s: %v)", err, arg, cerr)
			}
			return nil, fmt.Errorf("pprofutil: cpu: %w", err)
		}
		return func() error {
			rtpprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				return fmt.Errorf("pprofutil: cpu: %w", err)
			}
			return nil
		}, nil

	case "mem":
		if arg == "" {
			arg = "mem.pprof"
		}
		// Fail on an unwritable path now, not after the run.
		f, err := os.Create(arg)
		if err != nil {
			return nil, fmt.Errorf("pprofutil: mem: %w", err)
		}
		return func() error {
			runtime.GC() // materialize live-heap accounting before the snapshot
			if err := rtpprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("pprofutil: mem: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("pprofutil: mem: %w", err)
			}
			return nil
		}, nil

	default:
		if !strings.Contains(spec, ":") {
			return nil, fmt.Errorf("pprofutil: -pprof wants cpu[=file], mem[=file] or host:port, got %q", spec)
		}
		ln, err := net.Listen("tcp", spec)
		if err != nil {
			return nil, fmt.Errorf("pprofutil: server: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", ln.Addr())
		return func() error {
			if err := srv.Close(); err != nil {
				return fmt.Errorf("pprofutil: server: %w", err)
			}
			if err := <-done; err != nil && err != http.ErrServerClosed {
				return fmt.Errorf("pprofutil: server: %w", err)
			}
			return nil
		}, nil
	}
}
