package obs

// histBounds are the histogram bucket upper bounds in nanoseconds:
// decades from 1µs to 10s. Solver passes span roughly 100µs (small dense
// chains) to seconds (stiff uniformization), so decade resolution tells a
// perf investigation which regime a run lived in without per-span math.
var histBounds = [...]int64{
	1_000, 10_000, 100_000, 1_000_000, 10_000_000,
	100_000_000, 1_000_000_000, 10_000_000_000,
}

// Histogram is a fixed-bucket duration histogram (nanoseconds). The zero
// value is ready to use. Not safe for concurrent use on its own — the
// Tracer serializes access.
type Histogram struct {
	counts [len(histBounds) + 1]int64 // counts[len] = overflow bucket
	sum    int64
	n      int64
}

// observe folds one duration (in nanoseconds) into the histogram.
func (h *Histogram) observe(ns int64) {
	i := 0
	for i < len(histBounds) && ns > histBounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += ns
	h.n++
}

// HistSnapshot is the serializable state of one histogram. Counts is
// per-bucket, not cumulative: Counts[i] is the number of observations in
// (BoundsNanos[i-1], BoundsNanos[i]], and the final entry — one past the
// last bound — is the overflow bucket holding every observation above
// the top bound, so the entries of Counts always sum to Count and no
// observation is dropped from an exposition.
type HistSnapshot struct {
	BoundsNanos []int64 `json:"bounds_ns"`
	Counts      []int64 `json:"counts"`
	SumNanos    int64   `json:"sum_ns"`
	Count       int64   `json:"count"`
}

// snapshot copies the histogram state.
func (h *Histogram) snapshot() HistSnapshot {
	return HistSnapshot{
		BoundsNanos: append([]int64(nil), histBounds[:]...),
		Counts:      append([]int64(nil), h.counts[:]...),
		SumNanos:    h.sum,
		Count:       h.n,
	}
}
