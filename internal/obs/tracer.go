package obs

import (
	"context"
	"sync"
	"time"
)

// Well-known counter names shared across the solver layers, so sinks and
// dashboards see one vocabulary regardless of which layer emitted a count.
const (
	// CtrSolvePasses counts CTMC transient/accumulated solver passes
	// (uniformization sweeps, dense matrix exponentials).
	CtrSolvePasses = "ctmc.solve_passes"
	// CtrCacheHits / CtrCacheMisses / CtrCacheEvictions count SolveCache
	// traffic.
	CtrCacheHits      = "ctmc.cache.hits"
	CtrCacheMisses    = "ctmc.cache.misses"
	CtrCacheEvictions = "ctmc.cache.evictions"
	// CtrFallbackPoints counts curve-engine grid points that fell back to
	// point-wise evaluation after their segment solve failed.
	CtrFallbackPoints = "core.fallback_points"
	// CtrParametricHits / CtrParametricFallbacks count point evaluations
	// served by the closed-form parametric layer versus routed to the
	// numeric engine while a parametric mode was requested (out-of-domain
	// parameters, a declined query, an unstable expansion, a non-finite
	// intermediate). Points evaluated with the layer off count under
	// neither, so hits + fallbacks accounts for every point of a
	// parametric-mode run.
	CtrParametricHits      = "parametric.hits"
	CtrParametricFallbacks = "parametric.fallbacks"
	// CtrRetries counts batch-item retry attempts.
	CtrRetries = "robust.retries"
	// CtrTemplateInstances counts constituent models generated from
	// scenario templates; CtrTemplateStates accumulates their tangible
	// state counts, so a run manifest shows the structural size of the
	// scenario it solved.
	CtrTemplateInstances = "template.instances"
	CtrTemplateStates    = "template.states"

	// Serving-path counters (internal/serve, cmd/gsuserve). They share
	// the dotted-vocabulary convention so the daemon's /metrics endpoint
	// exposes them as gsu_serve_*_total next to the solver families.
	//
	// CtrServeRequests counts admitted API requests (shed requests are
	// counted under CtrServeShed instead).
	CtrServeRequests = "serve.requests"
	// CtrServeCoalesced counts requests that joined another request's
	// in-flight solve instead of starting their own (singleflight
	// followers; the leader is not counted).
	CtrServeCoalesced = "serve.coalesced"
	// CtrServeShed counts requests rejected 429 by the admission queue.
	CtrServeShed = "serve.shed"
	// CtrServeDegraded counts requests answered with a partial
	// ("degraded": true) result instead of a full one.
	CtrServeDegraded = "serve.degraded"
	// CtrServePanics counts handler panics recovered by the server's
	// recovery middleware.
	CtrServePanics = "serve.panics"
	// CtrServeErrors counts admitted requests that ended in a non-2xx
	// status other than shedding.
	CtrServeErrors = "serve.errors"
	// CtrServeCacheHits / CtrServeCacheMisses / CtrServeCacheEvictions /
	// CtrServeCacheExpired count the process-wide sharded serving cache's
	// traffic (analyzer reuse and whole-response reuse; distinct from the
	// per-analyzer ctmc.cache.* solve memo).
	CtrServeCacheHits      = "serve.cache.hits"
	CtrServeCacheMisses    = "serve.cache.misses"
	CtrServeCacheEvictions = "serve.cache.evictions"
	CtrServeCacheExpired   = "serve.cache.expired"
	// CtrServeTracesSampled / CtrServeTracesDropped count the per-request
	// trace documents retained in versus dropped from the /debug/traces
	// ring by the sampling decision (inbound trace header and 5xx always
	// retain; everything else is subject to the configured probability).
	CtrServeTracesSampled = "serve.traces.sampled"
	CtrServeTracesDropped = "serve.traces.dropped"
)

// Attr is one key/value annotation on a span. Values are restricted to
// the JSON-friendly kinds the setters accept (int64, float64, string).
type Attr struct {
	Key   string
	Value any
}

// Event is a timestamped point annotation within a span (a retry, a
// fallback, a steady-state detection).
type Event struct {
	Name string `json:"name"`
	// AtNanos is the event time as an offset from the tracer start.
	AtNanos int64 `json:"at_ns"`
}

// Span is one timed node of the trace tree. Spans are created by
// StartSpan and finished by End; all methods are nil-receiver-safe, so
// untraced code paths can call them unconditionally. A span is owned by
// the goroutine that started it: annotate and End it there.
type Span struct {
	tracer *Tracer
	id     uint64
	parent uint64 // 0 = root
	name   string
	start  time.Duration // offset from tracer start
	dur    time.Duration // set by End
	attrs  []Attr
	events []Event
	ended  bool
}

// SetInt annotates the span with an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

// SetFloat annotates the span with a float attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

// SetStr annotates the span with a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

// Event records a timestamped point annotation within the span.
func (s *Span) Event(name string) {
	if s == nil {
		return
	}
	s.events = append(s.events, Event{Name: name, AtNanos: int64(s.tracer.since())})
}

// End closes the span and hands it to the tracer, folding its duration
// into the per-name histogram. End is idempotent; annotations after End
// are lost.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.dur = s.tracer.since() - s.start
	s.tracer.finish(s)
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Tracer collects the spans, counters and duration histograms of one run.
// It is safe for concurrent use: parallel batch workers feed one tracer.
// A nil *Tracer is a valid no-op for every method.
type Tracer struct {
	start time.Time
	// parent, when set (NewRequestTracer), receives this tracer's
	// aggregates live — counters, stage statistics, histogram
	// observations — while the span objects themselves stay local, so a
	// per-request tracer yields a self-contained trace document and the
	// process tracer's /metrics totals still update as work happens, not
	// when the request ends.
	parent *Tracer

	mu       sync.Mutex
	nextID   uint64
	spans    []*Span // finished spans, in End order
	counters map[string]int64
	stats    map[string]StageStats // per-name aggregates of finished spans
	hists    map[string]*Histogram
}

// NewTracer returns an empty collector.
func NewTracer() *Tracer {
	return &Tracer{
		start:    time.Now(),
		counters: make(map[string]int64),
		stats:    make(map[string]StageStats),
		hists:    make(map[string]*Histogram),
	}
}

// NewRequestTracer returns an empty collector parented to parent: every
// counter increment, finished span and histogram observation recorded
// here also folds into parent (and its ancestors) as an aggregate, while
// the span objects remain local to the child. This is the serving
// layer's per-request collector — the request gets its own span tree for
// the /debug/traces ring, and the process tracer keeps live totals. A
// nil parent is equivalent to NewTracer.
func NewRequestTracer(parent *Tracer) *Tracer {
	t := NewTracer()
	t.parent = parent
	return t
}

// since returns the monotonic offset from the tracer start.
func (t *Tracer) since() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// newSpan allocates a started span under the given parent (nil = root).
func (t *Tracer) newSpan(name string, parent *Span) *Span {
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	sp := &Span{tracer: t, id: id, name: name, start: t.since()}
	if parent != nil {
		sp.parent = parent.id
	}
	return sp
}

// finish records a completed span and propagates its aggregate (name,
// duration) to the parent chain.
func (t *Tracer) finish(s *Span) {
	ns := s.dur.Nanoseconds()
	t.mu.Lock()
	t.spans = append(t.spans, s)
	h := t.hists[s.name]
	if h == nil {
		h = &Histogram{}
		t.hists[s.name] = h
	}
	h.observe(ns)
	st := t.stats[s.name]
	st.Count++
	st.Nanos += ns
	t.stats[s.name] = st
	t.mu.Unlock()
	if t.parent != nil {
		t.parent.observeStage(s.name, ns)
	}
}

// observeStage folds one finished-span aggregate into the tracer's stage
// statistics and histogram without recording a span object — the form in
// which child-tracer spans reach their ancestors.
func (t *Tracer) observeStage(name string, ns int64) {
	t.mu.Lock()
	h := t.hists[name]
	if h == nil {
		h = &Histogram{}
		t.hists[name] = h
	}
	h.observe(ns)
	st := t.stats[name]
	st.Count++
	st.Nanos += ns
	t.stats[name] = st
	t.mu.Unlock()
	if t.parent != nil {
		t.parent.observeStage(name, ns)
	}
}

// Count adds delta to the named counter, and to every ancestor's.
func (t *Tracer) Count(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counters[name] += delta
	t.mu.Unlock()
	if t.parent != nil {
		t.parent.Count(name, delta)
	}
}

// Observe folds one duration into the named histogram without creating a
// span (for cheap repeated operations not worth a trace node each). Like
// spans and counters, the observation propagates to every ancestor.
func (t *Tracer) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	h := t.hists[name]
	if h == nil {
		h = &Histogram{}
		t.hists[name] = h
	}
	h.observe(d.Nanoseconds())
	t.mu.Unlock()
	if t.parent != nil {
		t.parent.Observe(name, d)
	}
}

// Counter returns the current value of one counter.
func (t *Tracer) Counter(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[name]
}

// Counters returns a copy of every counter.
func (t *Tracer) Counters() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counters))
	for k, v := range t.counters {
		out[k] = v
	}
	return out
}

// StageStats is the compact aggregate of one span name: how many spans
// finished under it and their total wall clock. This is the form merged
// into robust.Metrics.
type StageStats struct {
	Count int64 `json:"count"`
	Nanos int64 `json:"nanos"`
}

// Stages aggregates the finished spans by name — the tracer's own plus,
// for a tracer with request-tracer children, every span aggregate those
// children propagated up.
func (t *Tracer) Stages() map[string]StageStats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]StageStats, len(t.stats))
	for k, v := range t.stats {
		out[k] = v
	}
	return out
}

// Histograms returns a snapshot of every duration histogram.
func (t *Tracer) Histograms() map[string]HistSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]HistSnapshot, len(t.hists))
	for k, h := range t.hists {
		out[k] = h.snapshot()
	}
	return out
}

// SpanCount returns the number of finished spans.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Scope is a nested counter scope: counts routed through a context reach
// every scope enclosing it, so a layer can read an exact per-region delta
// (the curve engine's solver-pass budget) while outer layers and the
// tracer still see the totals. Safe for concurrent use.
type Scope struct {
	parent *Scope
	mu     sync.Mutex
	counts map[string]int64
}

// add accumulates into this scope and every ancestor.
func (s *Scope) add(name string, delta int64) {
	for c := s; c != nil; c = c.parent {
		c.mu.Lock()
		if c.counts == nil {
			c.counts = make(map[string]int64)
		}
		c.counts[name] += delta
		c.mu.Unlock()
	}
}

// Counter returns the scope's accumulated value of one counter.
func (s *Scope) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[name]
}

// Counters returns a copy of the scope's counters.
func (s *Scope) Counters() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// ctxKey indexes the single obs context value.
type ctxKey struct{}

// node is the traced position a context carries: the collector, the
// current parent span, and the innermost counter scope.
type node struct {
	tracer *Tracer
	span   *Span
	scope  *Scope
}

// WithTracer installs a tracer in the context, preserving any scope
// already present. A nil tracer returns ctx unchanged.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	if tr == nil {
		return ctx
	}
	n := nodeFrom(ctx)
	nn := &node{tracer: tr}
	if n != nil {
		nn.scope = n.scope
	}
	return context.WithValue(ctx, ctxKey{}, nn)
}

// TracerFrom returns the tracer carried by the context, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	if n := nodeFrom(ctx); n != nil {
		return n.tracer
	}
	return nil
}

// nodeFrom fetches the obs node without allocating.
func nodeFrom(ctx context.Context) *node {
	n, _ := ctx.Value(ctxKey{}).(*node)
	return n
}

// WithScope derives a context whose counts also accumulate into a fresh
// Scope nested inside any scope already present. The returned scope is
// never nil, so callers can read deltas unconditionally even when the
// context carries no tracer.
func WithScope(ctx context.Context) (context.Context, *Scope) {
	n := nodeFrom(ctx)
	sc := &Scope{}
	nn := &node{scope: sc}
	if n != nil {
		nn.tracer, nn.span, sc.parent = n.tracer, n.span, n.scope
	}
	return context.WithValue(ctx, ctxKey{}, nn), sc
}

// StartSpan begins a child span of the context's current span (or a root
// span) and returns a context carrying it as the new parent. When the
// context has no tracer, it returns ctx unchanged and a nil span at zero
// allocations — the no-op fast path of every instrumented layer.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	n := nodeFrom(ctx)
	if n == nil || n.tracer == nil {
		return ctx, nil
	}
	sp := n.tracer.newSpan(name, n.span)
	return context.WithValue(ctx, ctxKey{}, &node{tracer: n.tracer, span: sp, scope: n.scope}), sp
}

// CurrentSpan returns the context's current span, or nil.
func CurrentSpan(ctx context.Context) *Span {
	if n := nodeFrom(ctx); n != nil {
		return n.span
	}
	return nil
}

// AddEvent records a point annotation on the context's current span.
func AddEvent(ctx context.Context, name string) {
	CurrentSpan(ctx).Event(name)
}

// Count adds delta to the named counter of the context's tracer and of
// every enclosing Scope. With neither installed it is a single context
// lookup and no allocation.
func Count(ctx context.Context, name string, delta int64) {
	n := nodeFrom(ctx)
	if n == nil {
		return
	}
	if n.scope != nil {
		n.scope.add(name, delta)
	}
	n.tracer.Count(name, delta)
}

// ObserveDuration folds one duration into the context tracer's named
// histogram; a no-op without a tracer.
func ObserveDuration(ctx context.Context, name string, d time.Duration) {
	TracerFrom(ctx).Observe(name, d)
}

// AdoptTrace transplants src's traced position — tracer, current span,
// counter scope — onto dst, which keeps dst's cancellation and values
// otherwise. This is how a coalesced flight, which must run on the
// server-lifetime context rather than any one request's, still records
// its work under the leader request's trace. When src carries no traced
// position, dst is returned unchanged.
func AdoptTrace(dst, src context.Context) context.Context {
	n := nodeFrom(src)
	if n == nil {
		return dst
	}
	return context.WithValue(dst, ctxKey{}, n)
}
