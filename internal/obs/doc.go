// Package obs is the observability subsystem of the solve stack: a
// lightweight hierarchical span tracer with typed counters and duration
// histograms, threaded through the solver layers (ctmc → mdcd → core →
// robust) via the context, plus the sinks that make a run inspectable —
// an in-memory aggregate merged into robust.Metrics, a JSON trace/manifest
// document (gsueval -trace), a Prometheus-style text exposition (gsueval
// -metrics prom), and pprof profiling hooks for the binaries.
//
// # Cost model
//
// The package is built so an untraced run pays nothing measurable: every
// entry point is nil-safe, and when no Tracer is installed in the context,
// StartSpan returns the context unchanged with a nil *Span and Count is a
// single context lookup — zero allocations on both paths (asserted by
// TestNoopZeroAlloc). Instrumentation therefore sits directly on the
// solver hot paths, where one span brackets one solver pass (milliseconds
// of matrix work), never inner loops.
//
// # Attribution
//
// Counters are scoped, not global: Count feeds the Tracer installed by
// WithTracer and the Scope installed by WithScope (scopes nest — a count
// reaches every enclosing scope). A layer that needs an exact per-run
// total — core's curve engine accounting its solver-pass budget — opens a
// Scope around the region of interest and reads the delta from it, so
// concurrent analyzers never pollute each other the way the process-global
// ctmc.SolveOps fallback can. See docs/OBSERVABILITY.md.
package obs
