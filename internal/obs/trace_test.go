package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanLayer(t *testing.T) {
	for name, want := range map[string]string{
		"ctmc.uniformize":                 "ctmc",
		"mdcd.RMGd.measures_series":       "mdcd",
		"core.segment":                    "core",
		"robust.item":                     "robust",
		"bare":                            "bare",
		"mdcd.RMNdPair.no_failure_series": "mdcd",
	} {
		if got := SpanLayer(name); got != want {
			t.Errorf("SpanLayer(%q) = %q, want %q", name, got, want)
		}
	}
}

// WriteTrace must emit a valid JSON document whose manifest is stamped
// with the schema version and auto-filled with the tracer's counters and
// solver-pass total when the caller left them unset.
func TestWriteTraceManifestAutofill(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	c, sp := StartSpan(ctx, "core.curve")
	Count(c, CtrSolvePasses, 42)
	Count(c, CtrCacheHits, 3)
	sp.End()

	var buf bytes.Buffer
	man := Manifest{
		Tool:       "gsueval",
		Params:     map[string]float64{"theta": 10000},
		Workers:    2,
		GridPoints: 50,
		Caches:     map[string]CacheStats{"RMGd": {Hits: 3, Misses: 4, Evictions: 1, Len: 4}},
	}
	if err := WriteTrace(&buf, tr, man); err != nil {
		t.Fatal(err)
	}

	var doc TraceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	m := doc.Manifest
	if m.SchemaVersion != TraceSchemaVersion {
		t.Fatalf("schema_version = %d, want %d", m.SchemaVersion, TraceSchemaVersion)
	}
	if m.SolverPasses != 42 {
		t.Fatalf("solver_passes = %d, want auto-filled 42", m.SolverPasses)
	}
	if m.Counters[CtrCacheHits] != 3 {
		t.Fatalf("counters = %+v, want cache hits 3", m.Counters)
	}
	if m.Caches["RMGd"].Misses != 4 {
		t.Fatalf("caches = %+v", m.Caches)
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Layer != "core" {
		t.Fatalf("spans = %+v", doc.Spans)
	}
}

// A caller-set SolverPasses must not be overwritten by the autofill.
func TestSnapshotKeepsExplicitSolverPasses(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	Count(ctx, CtrSolvePasses, 10)
	doc := Snapshot(tr, Manifest{SolverPasses: 7})
	if doc.Manifest.SolverPasses != 7 {
		t.Fatalf("solver_passes = %d, want explicit 7", doc.Manifest.SolverPasses)
	}
}

// Span ids must come out sorted so the serialized span list reads as a
// stable tree regardless of End order.
func TestSnapshotSortsSpansByID(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx1, a := StartSpan(ctx, "a")
	_, b := StartSpan(ctx1, "b")
	b.End()
	a.End() // ends after b: End order is b, a; id order is a, b
	doc := Snapshot(tr, Manifest{})
	if len(doc.Spans) != 2 || doc.Spans[0].Name != "a" || doc.Spans[1].Name != "b" {
		t.Fatalf("spans out of id order: %+v", doc.Spans)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.observe(500)            // ≤1µs bucket
	h.observe(5_000_000)      // ≤10ms bucket
	h.observe(20_000_000_000) // overflow
	s := h.snapshot()
	if s.Count != 3 || s.SumNanos != 500+5_000_000+20_000_000_000 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Counts[0] != 1 {
		t.Fatalf("1µs bucket = %d, want 1", s.Counts[0])
	}
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.Counts[len(s.Counts)-1])
	}
}

// The Prometheus exposition must name counters under the gsu namespace,
// label stages and histogram buckets, and order output deterministically.
func TestWritePromText(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	c, sp := StartSpan(ctx, "ctmc.uniformize")
	Count(c, CtrSolvePasses, 5)
	sp.End()
	tr.Observe("core.evaluate", 2*time.Millisecond)

	var buf bytes.Buffer
	if err := tr.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE gsu_ctmc_solve_passes_total counter",
		"gsu_ctmc_solve_passes_total 5",
		`gsu_stage_total{stage="ctmc.uniformize"} 1`,
		"# TYPE gsu_span_duration_seconds histogram",
		`gsu_span_duration_seconds_count{span="core.evaluate"} 1`,
		`le="+Inf"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
	var buf2 bytes.Buffer
	if err := tr.WriteProm(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("prom output is not deterministic across identical snapshots")
	}
}
