package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promNamespace prefixes every exposed metric family.
const promNamespace = "gsu"

// promName sanitizes a dotted counter/span name into a Prometheus metric
// name component: [a-zA-Z0-9_] with everything else collapsed to '_'.
func promName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel escapes a label value per the text exposition format.
func promLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// sortedKeys returns the keys of a map in deterministic order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WritePromText renders counters, span-stage aggregates and duration
// histograms in the Prometheus text exposition format (version 0.0.4).
// Counters become one family each (gsu_<name>_total); stages become the
// labelled pair gsu_stage_total / gsu_stage_nanos_total; histograms
// become the labelled family gsu_span_duration_seconds. Output ordering
// is deterministic so CI can diff two runs.
func WritePromText(w io.Writer, counters map[string]int64, stages map[string]StageStats, hists map[string]HistSnapshot) error {
	for _, name := range sortedKeys(counters) {
		fam := promNamespace + "_" + promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", fam, fam, counters[name]); err != nil {
			return fmt.Errorf("obs: writing prom counters: %w", err)
		}
	}
	if len(stages) > 0 {
		if _, err := fmt.Fprintf(w, "# TYPE %s_stage_total counter\n# TYPE %s_stage_nanos_total counter\n",
			promNamespace, promNamespace); err != nil {
			return fmt.Errorf("obs: writing prom stages: %w", err)
		}
		for _, name := range sortedKeys(stages) {
			st := stages[name]
			if _, err := fmt.Fprintf(w, "%s_stage_total{stage=%q} %d\n%s_stage_nanos_total{stage=%q} %d\n",
				promNamespace, promLabel(name), st.Count, promNamespace, promLabel(name), st.Nanos); err != nil {
				return fmt.Errorf("obs: writing prom stages: %w", err)
			}
		}
	}
	if len(hists) > 0 {
		fam := promNamespace + "_span_duration_seconds"
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", fam); err != nil {
			return fmt.Errorf("obs: writing prom histograms: %w", err)
		}
		for _, name := range sortedKeys(hists) {
			h := hists[name]
			cum := int64(0)
			for i, c := range h.Counts {
				cum += c
				le := "+Inf"
				if i < len(h.BoundsNanos) {
					le = fmt.Sprintf("%g", float64(h.BoundsNanos[i])/1e9)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{span=%q,le=%q} %d\n", fam, promLabel(name), le, cum); err != nil {
					return fmt.Errorf("obs: writing prom histograms: %w", err)
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum{span=%q} %g\n%s_count{span=%q} %d\n",
				fam, promLabel(name), float64(h.SumNanos)/1e9, fam, promLabel(name), h.Count); err != nil {
				return fmt.Errorf("obs: writing prom histograms: %w", err)
			}
		}
	}
	return nil
}

// WriteProm renders the tracer's own counters, stages and histograms in
// the Prometheus text exposition format.
func (t *Tracer) WriteProm(w io.Writer) error {
	return WritePromText(w, t.Counters(), t.Stages(), t.Histograms())
}
