package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// TraceSchemaVersion identifies the layout of the JSON trace document.
// Bump it on any change that could break a dashboard reading the file.
const TraceSchemaVersion = 1

// CacheStats is one solve cache's traffic summary, carried in the run
// manifest (ctmc.SolveCache reports itself in this form).
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Len       int    `json:"len"`
}

// Manifest describes the run that produced a trace: what was solved,
// with which parameters, at what parallelism, and what it cost. It is the
// record a future perf PR compares against instead of re-running ad-hoc
// benchmarks.
type Manifest struct {
	SchemaVersion int    `json:"schema_version"`
	Tool          string `json:"tool"`
	// TraceID and Route identify one served request's trace in the
	// daemon's /debug/traces ring (additive to schema version 1; empty on
	// whole-run CLI traces). TraceID is the request's X-Trace-Id value,
	// so a document can be found from an access-log line and vice versa.
	TraceID string `json:"trace_id,omitempty"`
	Route   string `json:"route,omitempty"`
	// Params is the solved parameter set, keyed by flag name.
	Params map[string]float64 `json:"params,omitempty"`
	// Seed is the RNG seed of simulation-backed runs; 0 for analytic runs.
	Seed int64 `json:"seed,omitempty"`
	// Workers is the configured worker-pool bound (0 = all cores).
	Workers int `json:"workers"`
	// GridPoints is the φ-grid size of sweep runs.
	GridPoints int `json:"grid_points,omitempty"`
	// SolverPasses is the run's CTMC solver-pass total (the curve engine's
	// budget observable).
	SolverPasses int64 `json:"solver_passes"`
	// Caches summarises every per-analyzer solve cache, keyed by model.
	Caches map[string]CacheStats `json:"caches,omitempty"`
	// Counters carries every tracer counter of the run.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// SpanRecord is the serialized form of one finished span.
type SpanRecord struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Layer is the solver layer that emitted the span: the span name's
	// dotted prefix (ctmc, mdcd, core, robust, ...).
	Layer      string         `json:"layer"`
	StartNanos int64          `json:"start_ns"`
	DurNanos   int64          `json:"dur_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Events     []Event        `json:"events,omitempty"`
}

// TraceDoc is the full JSON trace document: the manifest plus the span
// tree and the duration histograms.
type TraceDoc struct {
	Manifest   Manifest                `json:"manifest"`
	Spans      []SpanRecord            `json:"spans"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// SpanLayer returns the solver layer of a span name: its dotted prefix,
// or the whole name when it has none.
func SpanLayer(name string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i]
	}
	return name
}

// Snapshot assembles the trace document from the tracer's finished spans
// under the given manifest. It stamps the schema version, and fills the
// manifest's Counters (from the tracer) and SolverPasses (from the
// CtrSolvePasses counter) when the caller left them unset.
func Snapshot(tr *Tracer, man Manifest) TraceDoc {
	man.SchemaVersion = TraceSchemaVersion
	if man.Counters == nil {
		man.Counters = tr.Counters()
	}
	if man.SolverPasses == 0 {
		man.SolverPasses = man.Counters[CtrSolvePasses]
	}
	doc := TraceDoc{Manifest: man, Spans: []SpanRecord{}, Histograms: tr.Histograms()}
	if tr == nil {
		return doc
	}
	tr.mu.Lock()
	spans := append([]*Span(nil), tr.spans...)
	tr.mu.Unlock()
	// End order is completion order; start order reads as a tree.
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].id < spans[j].id })
	for _, s := range spans {
		rec := SpanRecord{
			ID:         s.id,
			Parent:     s.parent,
			Name:       s.name,
			Layer:      SpanLayer(s.name),
			StartNanos: s.start.Nanoseconds(),
			DurNanos:   s.dur.Nanoseconds(),
			Events:     s.events,
		}
		if len(s.attrs) > 0 {
			rec.Attrs = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				rec.Attrs[a.Key] = a.Value
			}
		}
		doc.Spans = append(doc.Spans, rec)
	}
	return doc
}

// WriteTrace writes the tracer's trace document as indented JSON.
func WriteTrace(w io.Writer, tr *Tracer, man Manifest) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(Snapshot(tr, man)); err != nil {
		return fmt.Errorf("obs: writing trace: %w", err)
	}
	return nil
}
