package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// The untraced fast path must stay free: a context without a tracer makes
// StartSpan, Count and AddEvent no-ops with zero heap allocations, which is
// what lets the solver hot paths call them unconditionally.
func TestUntracedPathAllocatesNothing(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() {
		c, sp := StartSpan(ctx, "ctmc.uniformize")
		sp.SetInt("states", 5)
		sp.Event("nope")
		sp.End()
		Count(c, CtrSolvePasses, 1)
		AddEvent(c, "nope")
	}); n != 0 {
		t.Fatalf("untraced span path allocated %.1f times per run, want 0", n)
	}
}

// Nil-receiver safety: every Span method must tolerate the nil span the
// untraced path hands out.
func TestNilSpanMethodsAreNoOps(t *testing.T) {
	var sp *Span
	sp.SetInt("k", 1)
	sp.SetFloat("k", 1)
	sp.SetStr("k", "v")
	sp.Event("e")
	sp.End()
	if got := sp.Name(); got != "" {
		t.Fatalf("nil span name = %q, want empty", got)
	}
	var tr *Tracer
	tr.Count("c", 1)
	tr.Observe("h", time.Millisecond)
	if tr.Counter("c") != 0 || tr.SpanCount() != 0 {
		t.Fatal("nil tracer must read as empty")
	}
}

// StartSpan must build a parent/child tree through the context, and End
// must fold each span's duration into the per-name histogram.
func TestSpanTreeAndStages(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)

	ctx1, root := StartSpan(ctx, "core.curve")
	ctx2, child := StartSpan(ctx1, "ctmc.series")
	if CurrentSpan(ctx2) != child {
		t.Fatal("context does not carry the innermost span")
	}
	child.SetInt("points", 7)
	child.Event("steady_state_detected")
	child.End()
	_, sibling := StartSpan(ctx1, "ctmc.series")
	sibling.End()
	root.End()

	if got := tr.SpanCount(); got != 3 {
		t.Fatalf("SpanCount = %d, want 3", got)
	}
	doc := Snapshot(tr, Manifest{})
	byName := map[string][]SpanRecord{}
	for _, s := range doc.Spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	if len(byName["core.curve"]) != 1 || len(byName["ctmc.series"]) != 2 {
		t.Fatalf("unexpected span inventory: %+v", byName)
	}
	rootRec := byName["core.curve"][0]
	if rootRec.Parent != 0 {
		t.Fatalf("root span has parent %d, want 0", rootRec.Parent)
	}
	for _, c := range byName["ctmc.series"] {
		if c.Parent != rootRec.ID {
			t.Fatalf("child parent = %d, want root id %d", c.Parent, rootRec.ID)
		}
	}
	if got := byName["ctmc.series"][0].Attrs["points"]; got != int64(7) {
		t.Fatalf("points attr = %v (%T), want int64(7)", got, got)
	}
	if evs := byName["ctmc.series"][0].Events; len(evs) != 1 || evs[0].Name != "steady_state_detected" {
		t.Fatalf("events = %+v", evs)
	}

	stages := tr.Stages()
	if stages["ctmc.series"].Count != 2 || stages["core.curve"].Count != 1 {
		t.Fatalf("stages = %+v", stages)
	}
	if h := tr.Histograms()["ctmc.series"]; h.Count != 2 {
		t.Fatalf("histogram count = %d, want 2", h.Count)
	}
}

// Counts must reach the tracer and every enclosing scope, and an inner
// scope must see only its own region's counts — the attribution mechanism
// that keeps concurrent analyzers from polluting each other's Solves.
func TestScopeNesting(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, outer := WithScope(ctx)
	Count(ctx, CtrSolvePasses, 2)

	ictx, inner := WithScope(ctx)
	Count(ictx, CtrSolvePasses, 3)

	if got := inner.Counter(CtrSolvePasses); got != 3 {
		t.Fatalf("inner scope = %d, want 3", got)
	}
	if got := outer.Counter(CtrSolvePasses); got != 5 {
		t.Fatalf("outer scope = %d, want 5", got)
	}
	if got := tr.Counter(CtrSolvePasses); got != 5 {
		t.Fatalf("tracer = %d, want 5", got)
	}
	if got := outer.Counters()[CtrSolvePasses]; got != 5 {
		t.Fatalf("Counters() copy = %d, want 5", got)
	}
}

// WithScope must hand out a usable scope even without any tracer, so the
// curve engine can read its solver-pass delta unconditionally.
func TestScopeWithoutTracer(t *testing.T) {
	ctx, sc := WithScope(context.Background())
	if sc == nil {
		t.Fatal("WithScope returned a nil scope")
	}
	Count(ctx, CtrSolvePasses, 4)
	if got := sc.Counter(CtrSolvePasses); got != 4 {
		t.Fatalf("scope = %d, want 4", got)
	}
}

// One tracer must absorb spans and counts from many goroutines at once —
// the shape of a parallel CurvePartialWorkers sweep. Run under -race this
// is the concurrency regression test for the collector.
func TestConcurrentSpansAndCounts(t *testing.T) {
	tr := NewTracer()
	root := WithTracer(context.Background(), tr)
	ctx, scope := WithScope(root)

	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c, sp := StartSpan(ctx, "robust.item")
				sp.SetInt("index", int64(i))
				Count(c, CtrSolvePasses, 1)
				ObserveDuration(c, "extra", time.Microsecond)
				sp.End()
			}
		}()
	}
	wg.Wait()

	want := int64(workers * perWorker)
	if got := tr.Counter(CtrSolvePasses); got != want {
		t.Fatalf("tracer counter = %d, want %d", got, want)
	}
	if got := scope.Counter(CtrSolvePasses); got != want {
		t.Fatalf("scope counter = %d, want %d", got, want)
	}
	if got := tr.SpanCount(); got != int(want) {
		t.Fatalf("span count = %d, want %d", got, want)
	}
	ids := map[uint64]bool{}
	for _, s := range Snapshot(tr, Manifest{}).Spans {
		if ids[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		ids[s.ID] = true
	}
}

// End must be idempotent: a double End records the span once.
func TestEndIdempotent(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	_, sp := StartSpan(ctx, "x")
	sp.End()
	sp.End()
	if got := tr.SpanCount(); got != 1 {
		t.Fatalf("SpanCount = %d after double End, want 1", got)
	}
}
