package obs

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary for the gsu_build_info metric:
// the standard info-pseudo-gauge pattern, where the interesting values
// ride as labels on a constant-1 sample so dashboards can join them onto
// any other series.
type BuildInfo struct {
	// Version is the main module version ("(devel)" for plain builds).
	Version string
	// GoVersion is the toolchain that built the binary.
	GoVersion string
	// Revision is the VCS commit hash stamped by the go tool, or
	// "unknown" when the binary was built outside a checkout.
	Revision string
	// Modified is "true" when the working tree was dirty at build time,
	// "false" when clean, "unknown" without VCS stamping.
	Modified string
}

// CurrentBuildInfo reads the binary's embedded build metadata via
// debug.ReadBuildInfo. Every field is populated — absent information
// degrades to "unknown" rather than an empty label.
func CurrentBuildInfo() BuildInfo {
	bi := BuildInfo{
		Version:   "unknown",
		GoVersion: runtime.Version(),
		Revision:  "unknown",
		Modified:  "unknown",
	}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if info.Main.Version != "" {
		bi.Version = info.Main.Version
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.Revision = s.Value
		case "vcs.modified":
			bi.Modified = s.Value
		}
	}
	return bi
}

// RuntimeStats is a point-in-time snapshot of process health for the
// /metrics endpoint: scheduler pressure (goroutines), memory footprint
// (heap), and cumulative GC cost.
type RuntimeStats struct {
	Goroutines     int
	HeapAllocBytes uint64
	HeapSysBytes   uint64
	GCCycles       uint32
	GCPauseNanos   uint64
}

// ReadRuntimeStats samples the Go runtime. ReadMemStats stops the world
// briefly; call this at scrape time, not per request.
func ReadRuntimeStats() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		GCCycles:       ms.NumGC,
		GCPauseNanos:   ms.PauseTotalNs,
	}
}

// WritePromGauges renders one gauge family per entry (gsu_<name>) in the
// Prometheus text exposition format, in deterministic name order.
func WritePromGauges(w io.Writer, gauges map[string]float64) error {
	for _, name := range sortedKeys(gauges) {
		fam := promNamespace + "_" + promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", fam, fam, gauges[name]); err != nil {
			return fmt.Errorf("obs: writing prom gauges: %w", err)
		}
	}
	return nil
}

// WritePromRuntime renders the build-info pseudo-gauge and the process
// runtime gauges/counters. The family set is pinned by a golden test —
// extending it means updating the golden key set deliberately.
func WritePromRuntime(w io.Writer, bi BuildInfo, rs RuntimeStats) error {
	if _, err := fmt.Fprintf(w,
		"# TYPE %s_build_info gauge\n%s_build_info{version=%q,go=%q,vcs_revision=%q,vcs_modified=%q} 1\n",
		promNamespace, promNamespace,
		promLabel(bi.Version), promLabel(bi.GoVersion), promLabel(bi.Revision), promLabel(bi.Modified)); err != nil {
		return fmt.Errorf("obs: writing prom build info: %w", err)
	}
	if err := WritePromGauges(w, map[string]float64{
		"goroutines":       float64(rs.Goroutines),
		"heap_alloc_bytes": float64(rs.HeapAllocBytes),
		"heap_sys_bytes":   float64(rs.HeapSysBytes),
	}); err != nil {
		return err
	}
	// The GC families are cumulative, so they carry the counter type and
	// the _total suffix despite being sampled like gauges.
	for _, c := range []struct {
		name string
		val  float64
	}{
		{"gc_cycles_total", float64(rs.GCCycles)},
		{"gc_pause_seconds_total", float64(rs.GCPauseNanos) / 1e9},
	} {
		fam := promNamespace + "_" + c.name
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %g\n", fam, fam, c.val); err != nil {
			return fmt.Errorf("obs: writing prom runtime counters: %w", err)
		}
	}
	return nil
}
