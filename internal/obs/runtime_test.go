package obs

import (
	"bufio"
	"bytes"
	"sort"
	"strings"
	"testing"
)

// promFamilies extracts the family names of one exposition (the first
// token of each # TYPE line).
func promFamilies(t *testing.T, text string) []string {
	t.Helper()
	var fams []string
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) >= 3 && fields[0] == "#" && fields[1] == "TYPE" {
			fams = append(fams, fields[2])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	sort.Strings(fams)
	return fams
}

// TestWritePromRuntimeGoldenKeySet pins the runtime/build-info exposition
// family set: a dashboard keying on these names must not lose them to an
// accidental rename. Extending the set means updating this list
// deliberately.
func TestWritePromRuntimeGoldenKeySet(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePromRuntime(&buf, CurrentBuildInfo(), ReadRuntimeStats()); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"gsu_build_info",
		"gsu_gc_cycles_total",
		"gsu_gc_pause_seconds_total",
		"gsu_goroutines",
		"gsu_heap_alloc_bytes",
		"gsu_heap_sys_bytes",
	}
	got := promFamilies(t, buf.String())
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("runtime exposition families = %v, want %v", got, want)
	}
	// The info pseudo-gauge carries its values as labels on a 1 sample.
	if !strings.Contains(buf.String(), `gsu_build_info{version=`) {
		t.Fatalf("missing build_info labels:\n%s", buf.String())
	}
	for _, label := range []string{"go=", "vcs_revision=", "vcs_modified="} {
		if !strings.Contains(buf.String(), label) {
			t.Fatalf("build_info missing %s label:\n%s", label, buf.String())
		}
	}
}

// TestCurrentBuildInfoNeverEmpty pins the degradation contract: absent
// metadata becomes "unknown", never an empty label value.
func TestCurrentBuildInfoNeverEmpty(t *testing.T) {
	bi := CurrentBuildInfo()
	for name, v := range map[string]string{
		"Version": bi.Version, "GoVersion": bi.GoVersion,
		"Revision": bi.Revision, "Modified": bi.Modified,
	} {
		if v == "" {
			t.Errorf("BuildInfo.%s is empty, want a value or \"unknown\"", name)
		}
	}
	if !strings.HasPrefix(bi.GoVersion, "go") {
		t.Errorf("GoVersion = %q, want a go toolchain version", bi.GoVersion)
	}
}

// TestWritePromGaugesDeterministic pins ordering and format.
func TestWritePromGaugesDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		if err := WritePromGauges(&buf, map[string]float64{
			"serve_queue_depth":       3,
			"serve_inflight_requests": 7,
		}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("gauge rendering not deterministic:\n%s\nvs\n%s", a, b)
	}
	want := "# TYPE gsu_serve_inflight_requests gauge\ngsu_serve_inflight_requests 7\n" +
		"# TYPE gsu_serve_queue_depth gauge\ngsu_serve_queue_depth 3\n"
	if a != want {
		t.Fatalf("gauge exposition:\n%s\nwant:\n%s", a, want)
	}
}
