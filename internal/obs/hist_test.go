package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestHistogramOverflowBucketAccounting is the regression test for
// observations above the top decade bound (10s): they must land in the
// overflow bucket — never be dropped — so Counts always sums to Count
// and both /debug/traces documents and Prometheus expositions account
// for every observation.
func TestHistogramOverflowBucketAccounting(t *testing.T) {
	var h Histogram
	top := histBounds[len(histBounds)-1]
	h.observe(500)       // first bucket
	h.observe(top)       // exactly the top bound: last bounded bucket
	h.observe(top + 1)   // just past the top bound: overflow
	h.observe(100 * top) // deep overflow
	h.observe(1 << 62)   // pathological overflow
	snap := h.snapshot()

	if len(snap.Counts) != len(snap.BoundsNanos)+1 {
		t.Fatalf("Counts has %d entries for %d bounds, want bounds+1 (overflow)",
			len(snap.Counts), len(snap.BoundsNanos))
	}
	var sum int64
	for _, c := range snap.Counts {
		sum += c
	}
	if sum != snap.Count || snap.Count != 5 {
		t.Fatalf("Counts sums to %d with Count = %d, want both 5 (observations dropped?)", sum, snap.Count)
	}
	if got := snap.Counts[len(snap.Counts)-1]; got != 3 {
		t.Fatalf("overflow bucket = %d, want 3", got)
	}
	if got := snap.Counts[len(snap.Counts)-2]; got != 1 {
		t.Fatalf("top bounded bucket = %d, want 1 (the exactly-at-bound observation)", got)
	}
}

// TestHistogramOverflowInPromExposition pins the exposition side: the
// +Inf cumulative bucket equals the observation count even when every
// observation overflows the bounded buckets.
func TestHistogramOverflowInPromExposition(t *testing.T) {
	tr := NewTracer()
	tr.Observe("ctmc.solve", 25*time.Second) // above the 10s top bound
	tr.Observe("ctmc.solve", time.Minute)

	var buf bytes.Buffer
	if err := WritePromText(&buf, nil, nil, tr.Histograms()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `gsu_span_duration_seconds_bucket{span="ctmc.solve",le="+Inf"} 2`) {
		t.Fatalf("+Inf bucket does not account for overflow observations:\n%s", out)
	}
	if !strings.Contains(out, `gsu_span_duration_seconds_count{span="ctmc.solve"} 2`) {
		t.Fatalf("histogram count wrong:\n%s", out)
	}
	// Every bounded bucket is empty; the two observations exist only past
	// the top bound.
	if !strings.Contains(out, `gsu_span_duration_seconds_bucket{span="ctmc.solve",le="10"} 0`) {
		t.Fatalf("bounded buckets should be empty for overflow-only data:\n%s", out)
	}
}

// TestHistogramOverflowInTraceDoc pins the /debug/traces side of the same
// contract through Snapshot.
func TestHistogramOverflowInTraceDoc(t *testing.T) {
	tr := NewTracer()
	tr.Observe("core.curve", time.Hour)
	doc := Snapshot(tr, Manifest{Tool: "test"})
	h, ok := doc.Histograms["core.curve"]
	if !ok {
		t.Fatal("histogram missing from trace doc")
	}
	if got := h.Counts[len(h.Counts)-1]; got != 1 || h.Count != 1 {
		t.Fatalf("overflow observation lost in trace doc: overflow=%d count=%d, want 1/1", got, h.Count)
	}
}
