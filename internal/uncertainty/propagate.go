package uncertainty

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"guardedop/internal/core"
	"guardedop/internal/mdcd"
	"guardedop/internal/robust"
)

// PropagateOptions tunes the Monte-Carlo propagation.
type PropagateOptions struct {
	// Samples is the number of posterior draws (default 200).
	Samples int
	// Seed seeds the deterministic draw stream (default 1).
	Seed int64
	// GridPoints is the φ-grid resolution used both for the per-sample
	// optimum and the robust choice (default 20 intervals over [0, θ]).
	GridPoints int
	// MinSurvivalFraction is the fraction of posterior draws that must
	// evaluate successfully for the propagation to stand (default 0.5:
	// fail only when fewer than half the samples survive). Draws that hit
	// a degenerate parameter region are skipped and recorded in the
	// report, not fatal.
	MinSurvivalFraction float64
}

func (o PropagateOptions) withDefaults() PropagateOptions {
	if o.Samples == 0 {
		o.Samples = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.GridPoints == 0 {
		o.GridPoints = 20
	}
	if o.MinSurvivalFraction == 0 {
		o.MinSurvivalFraction = 0.5
	}
	return o
}

// Propagation holds the posterior-propagated decision quantities.
type Propagation struct {
	// MuSamples are the posterior draws of µ_new that evaluated
	// successfully (sorted).
	MuSamples []float64
	// PhiStars are the per-draw optimal durations, aligned with MuSamples'
	// original draw order and then sorted.
	PhiStars []float64
	// MaxYs are the per-draw maximal indices (sorted).
	MaxYs []float64
	// RobustPhi maximises the posterior-expected index E_µ[Y(φ)] over the
	// grid, and RobustEY is that expected index.
	RobustPhi float64
	RobustEY  float64
	// PlugInPhi is the optimum computed at the posterior-mean rate — the
	// non-Bayesian plug-in decision, for comparison.
	PlugInPhi float64
	// SamplesRequested and SamplesUsed count the posterior draws submitted
	// and surviving; Report details the skipped draws (Failed() == 0 when
	// every draw succeeded).
	SamplesRequested int
	SamplesUsed      int
	Report           *robust.Report
}

// newAnalyzer builds the per-draw analyzer; a package variable so tests
// can inject solver failures.
var newAnalyzer = core.NewAnalyzer

// Propagate draws µ_new from the posterior, evaluates the Y(φ) curve for
// each draw, and aggregates the optimal-duration distribution together
// with the robust (posterior-expected-Y) duration choice.
func Propagate(p mdcd.Params, posterior Gamma, opts PropagateOptions) (*Propagation, error) {
	return PropagateContext(context.Background(), p, posterior, opts)
}

// sampleEval is the per-draw outcome fed to the aggregation step.
type sampleEval struct {
	mu      float64
	ys      []float64
	bestPhi float64
	bestY   float64
}

// PropagateContext is Propagate with cancellation support and
// fault-tolerant sampling: a posterior draw whose model evaluation fails
// (degenerate rate, invariant violation, non-finite solve) is skipped and
// recorded in the result's Report instead of aborting the run. The call
// errors only when the context is canceled or fewer than
// opts.MinSurvivalFraction of the draws survive (wrapping
// robust.ErrTooManyFailures).
func PropagateContext(ctx context.Context, p mdcd.Params, posterior Gamma, opts PropagateOptions) (*Propagation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := posterior.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.Samples < 2 {
		return nil, fmt.Errorf("uncertainty: need at least 2 samples, got %d", opts.Samples)
	}

	// Draw every µ up front so the stream stays deterministic regardless
	// of which draws later fail.
	rng := rand.New(rand.NewSource(opts.Seed))
	mus := make([]float64, opts.Samples)
	for s := range mus {
		mus[s] = posterior.Sample(rng)
	}
	grid := core.SweepGrid(p.Theta, opts.GridPoints)

	pr, err := robust.RunBatch(ctx, mus, func(_ context.Context, mu float64) (sampleEval, error) {
		params := p
		params.MuNew = mu
		a, err := newAnalyzer(params)
		if err != nil {
			return sampleEval{}, fmt.Errorf("uncertainty: draw mu=%g: %w", mu, err)
		}
		results, err := a.Curve(grid)
		if err != nil {
			return sampleEval{}, fmt.Errorf("uncertainty: draw mu=%g: %w", mu, err)
		}
		ev := sampleEval{mu: mu, ys: make([]float64, len(results))}
		best := results[0]
		for i, r := range results {
			ev.ys[i] = r.Y
			if r.Y > best.Y {
				best = r
			}
		}
		ev.bestPhi, ev.bestY = best.Phi, best.Y
		return ev, nil
	}, robust.BatchOptions{MinSuccessFraction: opts.MinSurvivalFraction})
	if err != nil {
		if pr != nil && pr.Report.Failed() > 0 {
			return nil, fmt.Errorf("uncertainty: %w\n%s", err, pr.Report.Summary())
		}
		return nil, fmt.Errorf("uncertainty: %w", err)
	}

	out := &Propagation{
		SamplesRequested: opts.Samples,
		SamplesUsed:      pr.Report.Succeeded(),
		Report:           pr.Report,
	}
	sumY := make([]float64, len(grid))
	for _, ev := range pr.Successes() {
		for i, y := range ev.ys {
			sumY[i] += y
		}
		out.MuSamples = append(out.MuSamples, ev.mu)
		out.PhiStars = append(out.PhiStars, ev.bestPhi)
		out.MaxYs = append(out.MaxYs, ev.bestY)
	}

	bestIdx := 0
	for i := range sumY {
		if sumY[i] > sumY[bestIdx] {
			bestIdx = i
		}
	}
	out.RobustPhi = grid[bestIdx]
	out.RobustEY = sumY[bestIdx] / float64(out.SamplesUsed)

	plugIn := p
	plugIn.MuNew = posterior.Mean()
	a, err := newAnalyzer(plugIn)
	if err != nil {
		return nil, err
	}
	best, err := a.OptimalPhi(grid)
	if err != nil {
		return nil, err
	}
	out.PlugInPhi = best.Phi

	sort.Float64s(out.MuSamples)
	sort.Float64s(out.PhiStars)
	sort.Float64s(out.MaxYs)
	return out, nil
}
