package uncertainty

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"guardedop/internal/core"
	"guardedop/internal/mdcd"
	"guardedop/internal/robust"
)

// PropagateOptions tunes the Monte-Carlo propagation.
type PropagateOptions struct {
	// Samples is the number of posterior draws (default 200).
	Samples int
	// Seed seeds the deterministic draw stream. The zero value selects
	// the default seed 1 — a literal seed of 0 is not expressible; pick
	// any other seed for an independent stream.
	Seed int64
	// GridPoints is the φ-grid resolution used both for the per-sample
	// optimum and the robust choice (default 20 intervals over [0, θ]).
	GridPoints int
	// MinSurvivalFraction is the fraction of posterior draws that must
	// evaluate successfully for the propagation to stand. Zero applies
	// the default 0.5 (fail only when fewer than half the samples
	// survive); any negative value disables the floor entirely, so a
	// propagation stands on any nonzero number of surviving draws. Draws
	// that hit a degenerate parameter region are skipped and recorded in
	// the report, not fatal.
	MinSurvivalFraction float64
	// Workers bounds how many posterior draws are evaluated concurrently:
	// 0 (the default) uses every core (runtime.GOMAXPROCS), 1 evaluates
	// sequentially. The µ stream is pre-drawn, so the result is identical
	// for every worker count.
	Workers int
	// Parametric selects the analyzer's closed-form fast path for the
	// per-draw curve evaluations (core.ParametricAuto collapses each
	// in-domain draw from solver runs to formula evaluations). The zero
	// value keeps the numeric engine, like core.Options.
	Parametric core.ParametricMode
}

func (o PropagateOptions) withDefaults() PropagateOptions {
	if o.Samples == 0 {
		o.Samples = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.GridPoints == 0 {
		o.GridPoints = 20
	}
	if o.MinSurvivalFraction == 0 {
		o.MinSurvivalFraction = 0.5
	}
	return o
}

// batchSurvivalFloor maps the option's "negative disables" convention to
// RunBatch's "zero disables" one.
func batchSurvivalFloor(f float64) float64 {
	if f < 0 {
		return 0
	}
	return f
}

// DrawResult is one surviving posterior draw's paired per-draw record:
// the µ_new draw together with the optimal duration and maximal index it
// induces. Unlike the sorted marginals below, the tuple stays intact.
type DrawResult struct {
	// Index is the draw's position in the pre-drawn µ stream, so skipped
	// draws leave visible gaps and two runs can be joined draw-by-draw.
	Index int
	// Mu is the posterior draw of µ_new.
	Mu float64
	// PhiStar is the duration maximising Y(φ) under this draw.
	PhiStar float64
	// MaxY is the index achieved at PhiStar.
	MaxY float64
}

// Propagation holds the posterior-propagated decision quantities.
type Propagation struct {
	// Draws are the surviving posterior draws in original draw order,
	// each pairing (µ, φ*, Y*); the metrics dump and any per-draw
	// post-processing should read these.
	Draws []DrawResult
	// MuSamples are the posterior draws of µ_new that evaluated
	// successfully, sorted ascending — the marginal distribution of the
	// rate, for quantile summaries.
	MuSamples []float64
	// PhiStars are the per-draw optimal durations, sorted ascending — the
	// marginal distribution of φ*. Sorting each slice independently
	// destroys the (µ, φ*, Y*) pairing; use Draws to recover per-draw
	// tuples.
	PhiStars []float64
	// MaxYs are the per-draw maximal indices, sorted ascending (the
	// marginal of Y*; see PhiStars about pairing).
	MaxYs []float64
	// RobustPhi maximises the posterior-expected index E_µ[Y(φ)] over the
	// grid, and RobustEY is that expected index.
	RobustPhi float64
	RobustEY  float64
	// PlugInPhi is the optimum computed at the posterior-mean rate — the
	// non-Bayesian plug-in decision, for comparison.
	PlugInPhi float64
	// SamplesRequested and SamplesUsed count the posterior draws submitted
	// and surviving; Report details the skipped draws (Failed() == 0 when
	// every draw succeeded).
	SamplesRequested int
	SamplesUsed      int
	Report           *robust.Report
}

// newAnalyzer builds the per-draw analyzer; a package variable so tests
// can inject solver failures.
var newAnalyzer = core.NewAnalyzerWithOptions

// Propagate draws µ_new from the posterior, evaluates the Y(φ) curve for
// each draw, and aggregates the optimal-duration distribution together
// with the robust (posterior-expected-Y) duration choice.
func Propagate(p mdcd.Params, posterior Gamma, opts PropagateOptions) (*Propagation, error) {
	return PropagateContext(context.Background(), p, posterior, opts)
}

// sampleEval is the per-draw outcome fed to the aggregation step.
type sampleEval struct {
	mu      float64
	ys      []float64
	bestPhi float64
	bestY   float64
}

// PropagateContext is Propagate with cancellation support and
// fault-tolerant sampling: a posterior draw whose model evaluation fails
// (degenerate rate, invariant violation, non-finite solve) is skipped and
// recorded in the result's Report instead of aborting the run. The call
// errors only when the context is canceled or too few draws survive —
// fewer than opts.MinSurvivalFraction, or none at all with the floor
// disabled (both wrapping robust.ErrTooManyFailures).
//
// Draws are evaluated on a bounded worker pool (opts.Workers). The µ
// stream is drawn up front from opts.Seed, so every worker count — and
// any pattern of skipped draws — yields the same numbers.
func PropagateContext(ctx context.Context, p mdcd.Params, posterior Gamma, opts PropagateOptions) (*Propagation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := posterior.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.Samples < 2 {
		return nil, fmt.Errorf("uncertainty: need at least 2 samples, got %d", opts.Samples)
	}

	// Draw every µ up front so the stream stays deterministic regardless
	// of which draws later fail.
	rng := rand.New(rand.NewSource(opts.Seed))
	mus := make([]float64, opts.Samples)
	for s := range mus {
		mus[s] = posterior.Sample(rng)
	}
	grid := core.SweepGrid(p.Theta, opts.GridPoints)

	pr, err := robust.RunBatch(ctx, mus, func(_ context.Context, mu float64) (sampleEval, error) {
		params := p
		params.MuNew = mu
		a, err := newAnalyzer(params, core.Options{Parametric: opts.Parametric})
		if err != nil {
			return sampleEval{}, fmt.Errorf("uncertainty: draw mu=%g: %w", mu, err)
		}
		results, err := a.Curve(grid)
		if err != nil {
			return sampleEval{}, fmt.Errorf("uncertainty: draw mu=%g: %w", mu, err)
		}
		ev := sampleEval{mu: mu, ys: make([]float64, len(results))}
		best := results[0]
		for i, r := range results {
			ev.ys[i] = r.Y
			if r.Y > best.Y {
				best = r
			}
		}
		ev.bestPhi, ev.bestY = best.Phi, best.Y
		return ev, nil
	}, robust.BatchOptions{
		MinSuccessFraction: batchSurvivalFloor(opts.MinSurvivalFraction),
		Workers:            opts.Workers,
	})
	if err != nil {
		if pr != nil && pr.Report.Failed() > 0 {
			return nil, fmt.Errorf("uncertainty: %w\n%s", err, pr.Report.Summary())
		}
		return nil, fmt.Errorf("uncertainty: %w", err)
	}
	if pr.Report.Succeeded() == 0 {
		// Reachable only with the survival floor disabled: nothing to
		// aggregate is still a failed propagation.
		return nil, fmt.Errorf("uncertainty: no posterior draw survived: %w\n%s",
			robust.ErrTooManyFailures, pr.Report.Summary())
	}

	out := &Propagation{
		SamplesRequested: opts.Samples,
		SamplesUsed:      pr.Report.Succeeded(),
		Report:           pr.Report,
	}
	sumY := make([]float64, len(grid))
	for i, ok := range pr.OK {
		if !ok {
			continue
		}
		ev := pr.Results[i]
		for j, y := range ev.ys {
			sumY[j] += y
		}
		out.Draws = append(out.Draws, DrawResult{Index: i, Mu: ev.mu, PhiStar: ev.bestPhi, MaxY: ev.bestY})
		out.MuSamples = append(out.MuSamples, ev.mu)
		out.PhiStars = append(out.PhiStars, ev.bestPhi)
		out.MaxYs = append(out.MaxYs, ev.bestY)
	}

	bestIdx := 0
	for i := range sumY {
		if sumY[i] > sumY[bestIdx] {
			bestIdx = i
		}
	}
	out.RobustPhi = grid[bestIdx]
	out.RobustEY = sumY[bestIdx] / float64(out.SamplesUsed)

	plugIn := p
	plugIn.MuNew = posterior.Mean()
	a, err := newAnalyzer(plugIn, core.Options{Parametric: opts.Parametric})
	if err != nil {
		return nil, err
	}
	best, err := a.OptimalPhi(grid)
	if err != nil {
		return nil, err
	}
	out.PlugInPhi = best.Phi

	sort.Float64s(out.MuSamples)
	sort.Float64s(out.PhiStars)
	sort.Float64s(out.MaxYs)
	return out, nil
}
