package uncertainty

import (
	"fmt"
	"math/rand"
	"sort"

	"guardedop/internal/core"
	"guardedop/internal/mdcd"
)

// PropagateOptions tunes the Monte-Carlo propagation.
type PropagateOptions struct {
	// Samples is the number of posterior draws (default 200).
	Samples int
	// Seed seeds the deterministic draw stream (default 1).
	Seed int64
	// GridPoints is the φ-grid resolution used both for the per-sample
	// optimum and the robust choice (default 20 intervals over [0, θ]).
	GridPoints int
}

func (o PropagateOptions) withDefaults() PropagateOptions {
	if o.Samples == 0 {
		o.Samples = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.GridPoints == 0 {
		o.GridPoints = 20
	}
	return o
}

// Propagation holds the posterior-propagated decision quantities.
type Propagation struct {
	// MuSamples are the posterior draws of µ_new (sorted).
	MuSamples []float64
	// PhiStars are the per-draw optimal durations, aligned with MuSamples'
	// original draw order and then sorted.
	PhiStars []float64
	// MaxYs are the per-draw maximal indices (sorted).
	MaxYs []float64
	// RobustPhi maximises the posterior-expected index E_µ[Y(φ)] over the
	// grid, and RobustEY is that expected index.
	RobustPhi float64
	RobustEY  float64
	// PlugInPhi is the optimum computed at the posterior-mean rate — the
	// non-Bayesian plug-in decision, for comparison.
	PlugInPhi float64
}

// Propagate draws µ_new from the posterior, evaluates the Y(φ) curve for
// each draw, and aggregates the optimal-duration distribution together
// with the robust (posterior-expected-Y) duration choice.
func Propagate(p mdcd.Params, posterior Gamma, opts PropagateOptions) (*Propagation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := posterior.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.Samples < 2 {
		return nil, fmt.Errorf("uncertainty: need at least 2 samples, got %d", opts.Samples)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	grid := core.SweepGrid(p.Theta, opts.GridPoints)
	sumY := make([]float64, len(grid))

	out := &Propagation{}
	for s := 0; s < opts.Samples; s++ {
		mu := posterior.Sample(rng)
		params := p
		params.MuNew = mu
		a, err := core.NewAnalyzer(params)
		if err != nil {
			return nil, fmt.Errorf("uncertainty: sample %d (mu=%g): %w", s, mu, err)
		}
		results, err := a.Curve(grid)
		if err != nil {
			return nil, fmt.Errorf("uncertainty: sample %d (mu=%g): %w", s, mu, err)
		}
		best := results[0]
		for i, r := range results {
			sumY[i] += r.Y
			if r.Y > best.Y {
				best = r
			}
		}
		out.MuSamples = append(out.MuSamples, mu)
		out.PhiStars = append(out.PhiStars, best.Phi)
		out.MaxYs = append(out.MaxYs, best.Y)
	}

	bestIdx := 0
	for i := range sumY {
		if sumY[i] > sumY[bestIdx] {
			bestIdx = i
		}
	}
	out.RobustPhi = grid[bestIdx]
	out.RobustEY = sumY[bestIdx] / float64(opts.Samples)

	plugIn := p
	plugIn.MuNew = posterior.Mean()
	a, err := core.NewAnalyzer(plugIn)
	if err != nil {
		return nil, err
	}
	best, err := a.OptimalPhi(grid)
	if err != nil {
		return nil, err
	}
	out.PlugInPhi = best.Phi

	sort.Float64s(out.MuSamples)
	sort.Float64s(out.PhiStars)
	sort.Float64s(out.MaxYs)
	return out, nil
}
