package uncertainty

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"guardedop/internal/core"
	"guardedop/internal/mdcd"
)

func TestGammaValidate(t *testing.T) {
	if err := (Gamma{Shape: 2, Rate: 3}).Validate(); err != nil {
		t.Errorf("valid gamma rejected: %v", err)
	}
	for _, g := range []Gamma{{0, 1}, {1, 0}, {-1, 1}, {math.NaN(), 1}, {1, math.Inf(1)}} {
		if err := g.Validate(); err == nil {
			t.Errorf("invalid gamma %+v accepted", g)
		}
	}
}

func TestGammaSampleMoments(t *testing.T) {
	for _, g := range []Gamma{
		{Shape: 2, Rate: 1e4},  // onboard-validation-ish posterior
		{Shape: 0.5, Rate: 2},  // shape < 1 branch
		{Shape: 9, Rate: 0.25}, // large shape
	} {
		rng := rand.New(rand.NewSource(13))
		const n = 200000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := g.Sample(rng)
			if x <= 0 {
				t.Fatalf("non-positive gamma sample %v", x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-g.Mean()) > 0.02*g.Mean() {
			t.Errorf("%+v: sample mean %v, want %v", g, mean, g.Mean())
		}
		if math.Abs(variance-g.Variance()) > 0.05*g.Variance() {
			t.Errorf("%+v: sample variance %v, want %v", g, variance, g.Variance())
		}
	}
}

// TestNonzeroUniform drives the zero-uniform guard directly: a stream
// that opens with exact zeros (which rand.Float64 can produce) must be
// skipped until a positive value arrives.
func TestNonzeroUniform(t *testing.T) {
	stream := []float64{0, 0, 0, 0.25}
	i := 0
	next := func() float64 {
		v := stream[i]
		i++
		return v
	}
	if got := nonzeroUniform(next); got != 0.25 {
		t.Errorf("nonzeroUniform = %v, want 0.25 (after skipping the zeros)", got)
	}
	if i != 4 {
		t.Errorf("consumed %d stream values, want 4", i)
	}
}

// TestGammaSampleShapeBelowOneNeverZero is the regression for the
// shape<1 boost path: boost = U^{1/k} with U drawn raw from rand.Float64
// could collapse to zero, handing the downstream analyzer a zero rate.
// Every draw through the boost path must stay strictly positive.
func TestGammaSampleShapeBelowOneNeverZero(t *testing.T) {
	g := Gamma{Shape: 0.1, Rate: 2} // tiny shape makes U^{1/k} crush small uniforms
	for seed := int64(1); seed <= 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			x := g.Sample(rng)
			if !(x > 0) || math.IsInf(x, 0) || math.IsNaN(x) {
				t.Fatalf("seed %d draw %d: degenerate sample %v from shape<1 boost", seed, i, x)
			}
		}
	}
}

func TestPosteriorRateConjugacy(t *testing.T) {
	prior := Gamma{Shape: 1, Rate: 1000}
	post, err := PosteriorRate(prior, 2, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if post.Shape != 3 || post.Rate != 6000 {
		t.Errorf("posterior = %+v, want shape 3 rate 6000", post)
	}
	// More exposure with no faults tightens the rate downward.
	quiet, err := PosteriorRate(prior, 0, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if quiet.Mean() >= prior.Mean() {
		t.Errorf("fault-free exposure did not lower the mean: %v vs %v", quiet.Mean(), prior.Mean())
	}
	if _, err := PosteriorRate(prior, -1, 10); err == nil {
		t.Error("negative fault count accepted")
	}
	if _, err := PosteriorRate(prior, 0, math.NaN()); err == nil {
		t.Error("NaN exposure accepted")
	}
	if _, err := PosteriorRate(Gamma{}, 0, 10); err == nil {
		t.Error("invalid prior accepted")
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(s, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile not NaN")
	}
}

func TestPropagateDecisionStructure(t *testing.T) {
	p := mdcd.DefaultParams()
	// Posterior centred near the Table 3 rate with a factor-ish spread:
	// Gamma(4, 4e4) has mean 1e-4 and CV 0.5.
	posterior := Gamma{Shape: 4, Rate: 4e4}
	prop, err := Propagate(p, posterior, PropagateOptions{Samples: 60, Seed: 5, GridPoints: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(prop.PhiStars) != 60 || len(prop.MaxYs) != 60 {
		t.Fatalf("sample counts wrong: %d, %d", len(prop.PhiStars), len(prop.MaxYs))
	}
	if !sort.Float64sAreSorted(prop.PhiStars) || !sort.Float64sAreSorted(prop.MuSamples) {
		t.Error("outputs not sorted")
	}
	// The plug-in optimum at the posterior mean must lie inside the
	// posterior phi* range.
	if prop.PlugInPhi < prop.PhiStars[0] || prop.PlugInPhi > prop.PhiStars[len(prop.PhiStars)-1] {
		t.Errorf("plug-in phi %v outside posterior range [%v, %v]",
			prop.PlugInPhi, prop.PhiStars[0], prop.PhiStars[len(prop.PhiStars)-1])
	}
	// The robust expected index is bounded by the best per-sample indices.
	if prop.RobustEY <= 1 || prop.RobustEY > prop.MaxYs[len(prop.MaxYs)-1] {
		t.Errorf("robust E[Y] = %v out of band", prop.RobustEY)
	}
	if prop.RobustPhi <= 0 || prop.RobustPhi >= p.Theta {
		t.Errorf("robust phi = %v, want interior", prop.RobustPhi)
	}
}

func TestPropagateDeterministic(t *testing.T) {
	p := mdcd.DefaultParams()
	posterior := Gamma{Shape: 4, Rate: 4e4}
	a, err := Propagate(p, posterior, PropagateOptions{Samples: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Propagate(p, posterior, PropagateOptions{Samples: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.RobustPhi != b.RobustPhi || a.MuSamples[0] != b.MuSamples[0] {
		t.Error("propagation not deterministic per seed")
	}
}

func TestPropagateValidation(t *testing.T) {
	p := mdcd.DefaultParams()
	if _, err := Propagate(p, Gamma{}, PropagateOptions{}); err == nil {
		t.Error("invalid posterior accepted")
	}
	if _, err := Propagate(p, Gamma{Shape: 1, Rate: 1}, PropagateOptions{Samples: 1}); err == nil {
		t.Error("single sample accepted")
	}
	bad := p
	bad.Theta = -1
	if _, err := Propagate(bad, Gamma{Shape: 1, Rate: 1e4}, PropagateOptions{}); err == nil {
		t.Error("invalid params accepted")
	}
}

// TestPropagateParametricMatchesNumeric threads the closed-form fast path
// through a full propagation: the same seed under ParametricAuto must
// reproduce the numeric run's decision quantities (identical draws, the
// same grid argmaxes, and expected indices within the engines' 1e-9
// equivalence bound).
func TestPropagateParametricMatchesNumeric(t *testing.T) {
	p := mdcd.DefaultParams()
	posterior := Gamma{Shape: 4, Rate: 4e4}
	opts := PropagateOptions{Samples: 30, Seed: 5, GridPoints: 10}
	numeric, err := Propagate(p, posterior, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parametric = core.ParametricAuto
	par, err := Propagate(p, posterior, opts)
	if err != nil {
		t.Fatal(err)
	}
	if par.SamplesUsed != numeric.SamplesUsed {
		t.Fatalf("survivors differ: %d vs %d", par.SamplesUsed, numeric.SamplesUsed)
	}
	if par.RobustPhi != numeric.RobustPhi || par.PlugInPhi != numeric.PlugInPhi {
		t.Errorf("decisions differ: robust %v vs %v, plug-in %v vs %v",
			par.RobustPhi, numeric.RobustPhi, par.PlugInPhi, numeric.PlugInPhi)
	}
	if rel := math.Abs(par.RobustEY-numeric.RobustEY) / numeric.RobustEY; rel > 1e-9 {
		t.Errorf("robust E[Y] differs by %.3g relative: %v vs %v", rel, par.RobustEY, numeric.RobustEY)
	}
	for i := range numeric.MaxYs {
		if rel := math.Abs(par.MaxYs[i]-numeric.MaxYs[i]) / numeric.MaxYs[i]; rel > 1e-9 {
			t.Errorf("draw %d: max Y differs by %.3g relative", i, rel)
		}
	}
}
