package uncertainty

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"guardedop/internal/core"
	"guardedop/internal/mdcd"
	"guardedop/internal/robust"
)

// withFailingAnalyzer swaps the analyzer constructor for one that fails
// deterministically on a subset of draws, restoring it on cleanup.
func withFailingAnalyzer(t *testing.T, failEvery int) *int {
	t.Helper()
	calls := 0
	orig := newAnalyzer
	newAnalyzer = func(p mdcd.Params) (*core.Analyzer, error) {
		calls++
		if failEvery > 0 && calls%failEvery == 0 {
			return nil, fmt.Errorf("injected solver failure (call %d): %w", calls, robust.ErrIllConditioned)
		}
		return orig(p)
	}
	t.Cleanup(func() { newAnalyzer = orig })
	return &calls
}

func TestPropagateSkipsFailedDraws(t *testing.T) {
	withFailingAnalyzer(t, 4) // every 4th draw fails (25%)
	p := mdcd.DefaultParams()
	prop, err := Propagate(p, Gamma{Shape: 4, Rate: 4e4}, PropagateOptions{Samples: 24, Seed: 7, GridPoints: 6})
	if err != nil {
		t.Fatalf("propagation with 25%% failures aborted: %v", err)
	}
	if prop.Report.Failed() == 0 {
		t.Fatal("report shows no skipped draws")
	}
	if prop.SamplesUsed+prop.Report.Failed() != prop.SamplesRequested {
		t.Errorf("sample accounting: used %d + failed %d != requested %d",
			prop.SamplesUsed, prop.Report.Failed(), prop.SamplesRequested)
	}
	if len(prop.MuSamples) != prop.SamplesUsed || len(prop.PhiStars) != prop.SamplesUsed {
		t.Errorf("outputs sized %d/%d, want %d", len(prop.MuSamples), len(prop.PhiStars), prop.SamplesUsed)
	}
	for _, f := range prop.Report.Failures {
		if !errors.Is(f.Err, robust.ErrIllConditioned) {
			t.Errorf("skipped draw %d lost its typed cause: %v", f.Index, f.Err)
		}
	}
	if prop.RobustPhi < 0 || prop.RobustPhi > p.Theta || prop.RobustEY <= 0 {
		t.Errorf("robust decision degenerate: phi=%g EY=%g", prop.RobustPhi, prop.RobustEY)
	}
}

func TestPropagateFailsWhenMajorityOfDrawsDie(t *testing.T) {
	withFailingAnalyzer(t, 1) // every draw fails
	_, err := Propagate(mdcd.DefaultParams(), Gamma{Shape: 4, Rate: 4e4},
		PropagateOptions{Samples: 10, Seed: 7, GridPoints: 4})
	if !errors.Is(err, robust.ErrTooManyFailures) {
		t.Fatalf("err = %v, want ErrTooManyFailures", err)
	}
}

func TestPropagateContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := PropagateContext(ctx, mdcd.DefaultParams(), Gamma{Shape: 4, Rate: 4e4},
		PropagateOptions{Samples: 10, Seed: 7, GridPoints: 4})
	if !errors.Is(err, robust.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestPropagateDeterministicAcrossFailures(t *testing.T) {
	// The µ draw stream must not depend on which draws fail: a clean run
	// and a run with failures share the surviving draws.
	p := mdcd.DefaultParams()
	opts := PropagateOptions{Samples: 12, Seed: 3, GridPoints: 4}
	clean, err := Propagate(p, Gamma{Shape: 4, Rate: 4e4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	withFailingAnalyzer(t, 3)
	partial, err := Propagate(p, Gamma{Shape: 4, Rate: 4e4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	cleanSet := make(map[float64]bool, len(clean.MuSamples))
	for _, mu := range clean.MuSamples {
		cleanSet[mu] = true
	}
	for _, mu := range partial.MuSamples {
		if !cleanSet[mu] {
			t.Errorf("surviving draw mu=%g not in the clean stream", mu)
		}
	}
}
