package uncertainty

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"

	"guardedop/internal/core"
	"guardedop/internal/mdcd"
	"guardedop/internal/robust"
)

// withFailingAnalyzer swaps the analyzer constructor for one that fails
// a fixed fraction of calls, restoring it on cleanup. The counter is
// atomic because draws are evaluated on a worker pool by default.
func withFailingAnalyzer(t *testing.T, failEvery int) *atomic.Int64 {
	t.Helper()
	var calls atomic.Int64
	orig := newAnalyzer
	newAnalyzer = func(p mdcd.Params, o core.Options) (*core.Analyzer, error) {
		c := calls.Add(1)
		if failEvery > 0 && c%int64(failEvery) == 0 {
			return nil, fmt.Errorf("injected solver failure (call %d): %w", c, robust.ErrIllConditioned)
		}
		return orig(p, o)
	}
	t.Cleanup(func() { newAnalyzer = orig })
	return &calls
}

func TestPropagateSkipsFailedDraws(t *testing.T) {
	withFailingAnalyzer(t, 4) // every 4th draw fails (25%)
	p := mdcd.DefaultParams()
	prop, err := Propagate(p, Gamma{Shape: 4, Rate: 4e4}, PropagateOptions{Samples: 24, Seed: 7, GridPoints: 6})
	if err != nil {
		t.Fatalf("propagation with 25%% failures aborted: %v", err)
	}
	if prop.Report.Failed() == 0 {
		t.Fatal("report shows no skipped draws")
	}
	if prop.SamplesUsed+prop.Report.Failed() != prop.SamplesRequested {
		t.Errorf("sample accounting: used %d + failed %d != requested %d",
			prop.SamplesUsed, prop.Report.Failed(), prop.SamplesRequested)
	}
	if len(prop.MuSamples) != prop.SamplesUsed || len(prop.PhiStars) != prop.SamplesUsed {
		t.Errorf("outputs sized %d/%d, want %d", len(prop.MuSamples), len(prop.PhiStars), prop.SamplesUsed)
	}
	for _, f := range prop.Report.Failures {
		if !errors.Is(f.Err, robust.ErrIllConditioned) {
			t.Errorf("skipped draw %d lost its typed cause: %v", f.Index, f.Err)
		}
	}
	if prop.RobustPhi < 0 || prop.RobustPhi > p.Theta || prop.RobustEY <= 0 {
		t.Errorf("robust decision degenerate: phi=%g EY=%g", prop.RobustPhi, prop.RobustEY)
	}
}

func TestPropagateFailsWhenMajorityOfDrawsDie(t *testing.T) {
	withFailingAnalyzer(t, 1) // every draw fails
	_, err := Propagate(mdcd.DefaultParams(), Gamma{Shape: 4, Rate: 4e4},
		PropagateOptions{Samples: 10, Seed: 7, GridPoints: 4})
	if !errors.Is(err, robust.ErrTooManyFailures) {
		t.Fatalf("err = %v, want ErrTooManyFailures", err)
	}
}

func TestPropagateContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := PropagateContext(ctx, mdcd.DefaultParams(), Gamma{Shape: 4, Rate: 4e4},
		PropagateOptions{Samples: 10, Seed: 7, GridPoints: 4})
	if !errors.Is(err, robust.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestPropagateParallelMatchesSequential locks the acceptance criterion:
// every worker count yields the same numbers, because the µ stream is
// pre-drawn and the batch layer never reorders outcomes.
func TestPropagateParallelMatchesSequential(t *testing.T) {
	p := mdcd.DefaultParams()
	posterior := Gamma{Shape: 4, Rate: 4e4}
	base := PropagateOptions{Samples: 16, Seed: 5, GridPoints: 5, Workers: 1}
	seq, err := Propagate(p, posterior, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		opts := base
		opts.Workers = workers
		par, err := Propagate(p, posterior, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(seq.Draws, par.Draws) {
			t.Errorf("workers=%d: Draws diverge", workers)
		}
		if !reflect.DeepEqual(seq.MuSamples, par.MuSamples) ||
			!reflect.DeepEqual(seq.PhiStars, par.PhiStars) ||
			!reflect.DeepEqual(seq.MaxYs, par.MaxYs) {
			t.Errorf("workers=%d: sorted marginals diverge", workers)
		}
		if seq.RobustPhi != par.RobustPhi || seq.RobustEY != par.RobustEY || seq.PlugInPhi != par.PlugInPhi {
			t.Errorf("workers=%d: decision diverges: phi %v vs %v, EY %v vs %v",
				workers, seq.RobustPhi, par.RobustPhi, seq.RobustEY, par.RobustEY)
		}
	}
}

// TestPropagateDrawsPairing verifies the paired per-draw records: the
// sorted projections of Draws reproduce the marginals, the indices point
// into the pre-drawn stream, and each (µ, φ*, Y*) tuple is internally
// consistent — re-evaluating the draw's µ reproduces its φ* and Y*.
func TestPropagateDrawsPairing(t *testing.T) {
	withFailingAnalyzer(t, 4)
	p := mdcd.DefaultParams()
	opts := PropagateOptions{Samples: 16, Seed: 7, GridPoints: 5}
	prop, err := Propagate(p, Gamma{Shape: 4, Rate: 4e4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(prop.Draws) != prop.SamplesUsed {
		t.Fatalf("Draws sized %d, want %d", len(prop.Draws), prop.SamplesUsed)
	}
	mus := make([]float64, 0, len(prop.Draws))
	phis := make([]float64, 0, len(prop.Draws))
	ys := make([]float64, 0, len(prop.Draws))
	lastIdx := -1
	for _, d := range prop.Draws {
		if d.Index <= lastIdx || d.Index >= opts.Samples {
			t.Fatalf("draw indices not increasing within the stream: %d after %d", d.Index, lastIdx)
		}
		lastIdx = d.Index
		mus = append(mus, d.Mu)
		phis = append(phis, d.PhiStar)
		ys = append(ys, d.MaxY)
	}
	sort.Float64s(mus)
	sort.Float64s(phis)
	sort.Float64s(ys)
	if !reflect.DeepEqual(mus, prop.MuSamples) || !reflect.DeepEqual(phis, prop.PhiStars) || !reflect.DeepEqual(ys, prop.MaxYs) {
		t.Error("sorted projections of Draws do not reproduce the marginals")
	}

	// Re-evaluate one draw's curve independently: the paired (φ*, Y*)
	// must be exactly the curve's maximum at that µ.
	d := prop.Draws[0]
	params := p
	params.MuNew = d.Mu
	a, err := core.NewAnalyzer(params)
	if err != nil {
		t.Fatal(err)
	}
	results, err := a.Curve(core.SweepGrid(p.Theta, opts.GridPoints))
	if err != nil {
		t.Fatal(err)
	}
	best := results[0]
	for _, r := range results {
		if r.Y > best.Y {
			best = r
		}
	}
	if best.Phi != d.PhiStar || best.Y != d.MaxY {
		t.Errorf("draw %d pairing broken: recorded (phi*=%g, Y*=%g), curve says (%g, %g)",
			d.Index, d.PhiStar, d.MaxY, best.Phi, best.Y)
	}
}

// failAllBut makes the analyzer constructor fail every draw except each
// keepEvery-th call, for survival fractions below one half. Only the
// first draws calls are sabotaged so the plug-in analyzer built after
// the batch still succeeds.
func failAllBut(t *testing.T, keepEvery int, draws int) {
	t.Helper()
	var calls atomic.Int64
	orig := newAnalyzer
	newAnalyzer = func(p mdcd.Params, o core.Options) (*core.Analyzer, error) {
		c := calls.Add(1)
		if c <= int64(draws) && c%int64(keepEvery) != 0 {
			return nil, fmt.Errorf("injected solver failure (call %d): %w", c, robust.ErrIllConditioned)
		}
		return orig(p, o)
	}
	t.Cleanup(func() { newAnalyzer = orig })
}

// TestPropagateNegativeSurvivalFractionDisablesFloor covers the
// zero-value disambiguation: MinSurvivalFraction 0 still applies the 0.5
// default, while a negative value disables the floor so a propagation
// stands on any nonzero number of survivors.
func TestPropagateNegativeSurvivalFractionDisablesFloor(t *testing.T) {
	p := mdcd.DefaultParams()
	posterior := Gamma{Shape: 4, Rate: 4e4}
	opts := PropagateOptions{Samples: 16, Seed: 7, GridPoints: 4}

	failAllBut(t, 4, opts.Samples) // 25% survival: below the default floor
	if _, err := Propagate(p, posterior, opts); !errors.Is(err, robust.ErrTooManyFailures) {
		t.Fatalf("zero (default) floor accepted 25%% survival: err = %v", err)
	}

	failAllBut(t, 4, opts.Samples)
	opts.MinSurvivalFraction = -1
	prop, err := Propagate(p, posterior, opts)
	if err != nil {
		t.Fatalf("disabled floor rejected 25%% survival: %v", err)
	}
	if prop.SamplesUsed == 0 || prop.SamplesUsed == prop.SamplesRequested {
		t.Errorf("expected a partial run, got %d/%d", prop.SamplesUsed, prop.SamplesRequested)
	}

	// Even with the floor disabled, zero survivors cannot stand.
	withFailingAnalyzer(t, 1)
	if _, err := Propagate(p, posterior, opts); !errors.Is(err, robust.ErrTooManyFailures) {
		t.Fatalf("zero survivors accepted with disabled floor: err = %v", err)
	}
}

// TestPropagateSeedZeroIsDocumentedDefault pins the documented Seed
// contract: the zero value selects the default stream (seed 1).
func TestPropagateSeedZeroIsDocumentedDefault(t *testing.T) {
	p := mdcd.DefaultParams()
	posterior := Gamma{Shape: 4, Rate: 4e4}
	zero, err := Propagate(p, posterior, PropagateOptions{Samples: 8, GridPoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Propagate(p, posterior, PropagateOptions{Samples: 8, Seed: 1, GridPoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zero.MuSamples, one.MuSamples) {
		t.Error("Seed 0 does not select the documented default stream (seed 1)")
	}
}

func TestPropagateDeterministicAcrossFailures(t *testing.T) {
	// The µ draw stream must not depend on which draws fail: a clean run
	// and a run with failures share the surviving draws.
	p := mdcd.DefaultParams()
	opts := PropagateOptions{Samples: 12, Seed: 3, GridPoints: 4}
	clean, err := Propagate(p, Gamma{Shape: 4, Rate: 4e4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	withFailingAnalyzer(t, 3)
	partial, err := Propagate(p, Gamma{Shape: 4, Rate: 4e4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	cleanSet := make(map[float64]bool, len(clean.MuSamples))
	for _, mu := range clean.MuSamples {
		cleanSet[mu] = true
	}
	for _, mu := range partial.MuSamples {
		if !cleanSet[mu] {
			t.Errorf("surviving draw mu=%g not in the clean stream", mu)
		}
	}
}
