// Package uncertainty propagates parameter uncertainty through the
// performability analysis.
//
// The paper determines µ_new, the upgraded component's fault-manifestation
// rate, from onboard validation ("onboard extended testing leads to a
// better estimation of the fault-manifestation rate", Section 2, citing
// Bayesian reliability analysis). That estimate is uncertain, and the
// optimal guarded-operation duration is sensitive to it (Figure 9). This
// package closes the loop:
//
//   - a conjugate Gamma posterior for an exponential fault rate, updated
//     from the validation exposure (hours observed, faults seen);
//   - Monte-Carlo propagation of that posterior through the analyzer,
//     yielding distributions of the optimal duration φ* and the achievable
//     index Y*;
//   - a robust duration choice: the φ maximising the posterior-expected
//     index E_µ[Y(φ)], which hedges against the rate being worse than its
//     point estimate.
package uncertainty

import (
	"fmt"
	"math"
	"math/rand"
)

// Gamma is a Gamma(shape k, rate λ) distribution over a positive rate
// parameter; mean k/λ, variance k/λ².
type Gamma struct {
	Shape float64
	Rate  float64
}

// Validate checks the distribution parameters.
func (g Gamma) Validate() error {
	if g.Shape <= 0 || math.IsNaN(g.Shape) || math.IsInf(g.Shape, 0) {
		return fmt.Errorf("uncertainty: gamma shape %g must be positive", g.Shape)
	}
	if g.Rate <= 0 || math.IsNaN(g.Rate) || math.IsInf(g.Rate, 0) {
		return fmt.Errorf("uncertainty: gamma rate %g must be positive", g.Rate)
	}
	return nil
}

// Mean returns k/λ.
func (g Gamma) Mean() float64 { return g.Shape / g.Rate }

// Variance returns k/λ².
func (g Gamma) Variance() float64 { return g.Shape / (g.Rate * g.Rate) }

// nonzeroUniform draws from next until it returns a value in (0, 1).
// rand.Float64 can return exactly 0, which the squeeze method must never
// see: Pow(0, 1/k) makes the shape<1 boost collapse the draw to a zero
// rate (poisoning every downstream analyzer with a degenerate µ), and
// Log(0) = -Inf silently accepts the acceptance test.
func nonzeroUniform(next func() float64) float64 {
	for {
		if u := next(); u > 0 {
			return u
		}
	}
}

// Sample draws one variate by the Marsaglia–Tsang squeeze method (with the
// standard boost for shape < 1). Every uniform it consumes is drawn
// through nonzeroUniform, so the returned variate is strictly positive.
func (g Gamma) Sample(rng *rand.Rand) float64 {
	shape := g.Shape
	boost := 1.0
	if shape < 1 {
		// X_k = X_{k+1} · U^{1/k}.
		boost = math.Pow(nonzeroUniform(rng.Float64), 1/shape)
		shape++
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := nonzeroUniform(rng.Float64)
		if u < 1-0.0331*x*x*x*x {
			return boost * d * v / g.Rate
		}
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return boost * d * v / g.Rate
		}
	}
}

// PosteriorRate performs the conjugate update for an exponential event rate
// observed over an exposure: prior Gamma(k, λ), data "faults events in
// hours of exposure" → posterior Gamma(k + faults, λ + hours). This is the
// classical Bayesian treatment of the onboard-validation fault log.
func PosteriorRate(prior Gamma, faults int, hours float64) (Gamma, error) {
	if err := prior.Validate(); err != nil {
		return Gamma{}, err
	}
	if faults < 0 {
		return Gamma{}, fmt.Errorf("uncertainty: negative fault count %d", faults)
	}
	if hours < 0 || math.IsNaN(hours) || math.IsInf(hours, 0) {
		return Gamma{}, fmt.Errorf("uncertainty: invalid exposure %g", hours)
	}
	return Gamma{Shape: prior.Shape + float64(faults), Rate: prior.Rate + hours}, nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of a sample by linear
// interpolation of the order statistics. The input slice must be sorted.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
