package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LibPanicPass flags panic calls in library packages that are not part of
// the package's documented contract. A panic that escapes a solver tears
// down a whole batch run; the robust layer recovers them, but only
// *documented* programmer-error panics are acceptable in libraries.
//
// A panic is allowed when any of these hold:
//
//   - the package is a command (package main) — CLIs may crash;
//   - the enclosing function's name starts with Must (the MustNew idiom:
//     the name itself is the documentation);
//   - the enclosing function's doc comment mentions "panic", making the
//     contract explicit to callers;
//   - the enclosing function also calls recover(), i.e. the panic is part
//     of a local recovery path (re-panic of a foreign value).
//
// Everything else either returns an error or carries a //lint:ignore with
// a reason.
type LibPanicPass struct{}

// Name implements Pass.
func (LibPanicPass) Name() string { return "libpanic" }

// Doc implements Pass.
func (LibPanicPass) Doc() string {
	return "library panics must be documented (doc comment or Must* name) or be recovery-path re-panics"
}

// Run implements Pass.
func (p LibPanicPass) Run(u *Unit) []Diagnostic {
	if u.IsCommand {
		return nil
	}
	var out []Diagnostic
	for _, f := range u.Files {
		if isTestFile(u, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltinCall(u, call, "panic") {
				return true
			}
			fd := enclosingFuncDecl(u, call.Pos())
			if fd != nil && panicAllowed(u, fd) {
				return true
			}
			where := "package-level initializer"
			if fd != nil {
				where = "function " + fd.Name.Name
			}
			out = append(out, diag(u, call.Pos(), p.Name(),
				"undocumented panic in %s: document it in the doc comment, rename to Must*, or return an error", where))
			return true
		})
	}
	return out
}

// panicAllowed reports whether fd's contract covers panics.
func panicAllowed(u *Unit, fd *ast.FuncDecl) bool {
	if strings.HasPrefix(fd.Name.Name, "Must") {
		return true
	}
	if fd.Doc != nil && strings.Contains(strings.ToLower(fd.Doc.Text()), "panic") {
		return true
	}
	recovered := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isBuiltinCall(u, call, "recover") {
			recovered = true
		}
		return !recovered
	})
	return recovered
}

// isBuiltinCall reports whether call invokes the named predeclared builtin.
func isBuiltinCall(u *Unit, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := u.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}
