package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlowPass enforces context propagation: a function that accepts a
// context.Context must actually thread it onward. Swallowing the context
// breaks the cancellation chain that the robust batch layer relies on —
// a -timeout flag that "works" except inside one subtree is worse than
// none.
//
// Two defects are reported:
//
//   - a context.Context parameter that is never used in the body (the
//     caller's deadline silently dies here); and
//   - a call to context.Background() or context.TODO() inside a function
//     that already has a context parameter (a fresh root context forks
//     the cancellation chain).
//
// The nil-guard idiom `if ctx == nil { ctx = context.Background() }` is
// recognised and allowed: it assigns the fresh context *to* the parameter,
// keeping a single chain.
type CtxFlowPass struct{}

// Name implements Pass.
func (CtxFlowPass) Name() string { return "ctxflow" }

// Doc implements Pass.
func (CtxFlowPass) Doc() string {
	return "context.Context parameters must be propagated (no unused ctx, no fresh roots inside)"
}

// Run implements Pass.
func (p CtxFlowPass) Run(u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, f := range u.Files {
		if isTestFile(u, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			params := ctxParams(u, fd)
			if len(params) == 0 {
				continue
			}
			out = append(out, p.checkFunc(u, fd, params)...)
		}
	}
	return out
}

// checkFunc reports ctxflow defects within one ctx-taking function.
func (p CtxFlowPass) checkFunc(u *Unit, fd *ast.FuncDecl, params map[types.Object]*ast.Ident) []Diagnostic {
	var out []Diagnostic
	used := make(map[types.Object]bool)
	allowedRoots := make(map[*ast.CallExpr]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := u.Info.Uses[n]; obj != nil {
				if _, isParam := params[obj]; isParam {
					used[obj] = true
				}
			}
		case *ast.AssignStmt:
			// Nil-guard: ctx = context.Background() with ctx the parameter.
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if id, ok := n.Lhs[0].(*ast.Ident); ok {
					if obj := u.Info.Uses[id]; obj != nil {
						if _, isParam := params[obj]; isParam {
							if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isContextRoot(u, call) != "" {
								allowedRoots[call] = true
							}
						}
					}
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || allowedRoots[call] {
			return true
		}
		if name := isContextRoot(u, call); name != "" {
			out = append(out, diag(u, call.Pos(), p.Name(),
				"context.%s() inside a function that already receives a context: propagate the parameter instead", name))
		}
		return true
	})

	for obj, id := range params {
		if !used[obj] {
			out = append(out, diag(u, id.Pos(), p.Name(),
				"context parameter %s is never used: propagate it to callees or drop it", id.Name))
		}
	}
	return out
}

// ctxParams returns the named, non-blank context.Context parameters of fd.
func ctxParams(u *Unit, fd *ast.FuncDecl) map[types.Object]*ast.Ident {
	out := make(map[types.Object]*ast.Ident)
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := u.Info.Defs[name]
			if obj == nil {
				continue
			}
			if named, ok := obj.Type().(*types.Named); ok {
				tn := named.Obj()
				if tn.Name() == "Context" && tn.Pkg() != nil && tn.Pkg().Path() == "context" {
					out[obj] = name
				}
			}
		}
	}
	return out
}

// isContextRoot returns "Background" or "TODO" when call creates a fresh
// root context, and "" otherwise.
func isContextRoot(u *Unit, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := u.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}
