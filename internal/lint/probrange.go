package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strconv"
)

// ProbRangePass sanity-checks constant arguments flowing into the SAN
// model-construction API: a case probability handed to san.ConstProb must
// lie in [0, 1], and an activity rate handed to san.ConstRate must be
// non-negative. Both mistakes produce generators that fail (at best) at
// state-space generation time, far from the line that introduced them;
// this rule moves the failure to the editor.
//
// Only compile-time constant arguments are checked — expressions like
// ConstProb(1 - p.PExt) are the runtime validator's job (and
// internal/modelcheck re-verifies the generated chain).
type ProbRangePass struct{}

// sanPath is the import path of the model-construction package whose
// constructors this pass watches.
const sanPath = "guardedop/internal/san"

// Name implements Pass.
func (ProbRangePass) Name() string { return "probrange" }

// Doc implements Pass.
func (ProbRangePass) Doc() string {
	return "constant san.ConstProb args must be in [0,1]; constant san.ConstRate args must be >= 0"
}

// Run implements Pass.
func (p ProbRangePass) Run(u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			fn := calleeFunc(u, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != sanPath {
				return true
			}
			tv, ok := u.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil {
				return true
			}
			v := tv.Value
			switch fn.Name() {
			case "ConstProb":
				if constant.Compare(v, token.LSS, constant.MakeInt64(0)) ||
					constant.Compare(v, token.GTR, constant.MakeInt64(1)) {
					out = append(out, diag(u, call.Args[0].Pos(), p.Name(),
						"probability %s passed to san.ConstProb is outside [0, 1]", constStr(v)))
				}
			case "ConstRate":
				if constant.Compare(v, token.LSS, constant.MakeInt64(0)) {
					out = append(out, diag(u, call.Args[0].Pos(), p.Name(),
						"negative rate %s passed to san.ConstRate", constStr(v)))
				}
			}
			return true
		})
	}
	return out
}

// constStr renders a constant for diagnostics in plain decimal form.
func constStr(v constant.Value) string {
	f, _ := constant.Float64Val(v)
	return strconv.FormatFloat(f, 'g', -1, 64)
}
