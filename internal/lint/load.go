package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns (relative to dir), parses their
// non-test sources, and type-checks them against the export data of their
// dependencies. It shells out to the go tool the same way `go vet` does; no
// module-resolution logic is reimplemented here.
func Load(dir string, patterns ...string) ([]*Unit, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)
	sizes := types.SizesFor("gc", build.Default.GOARCH)

	var units []*Unit
	for _, p := range pkgs {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		u, err := typeCheck(fset, imp, sizes, p)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("lint: no packages matched %v", patterns)
	}
	return units, nil
}

// goList runs `go list -deps -export -json` and decodes the package stream.
// -deps -export makes the go tool emit export data for every dependency, so
// type checking needs no source-level import resolution.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// typeCheck parses and type-checks one listed package into a Unit.
func typeCheck(fset *token.FileSet, imp types.Importer, sizes types.Sizes, p *listedPackage) (*Unit, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp, Sizes: sizes}
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", p.ImportPath, err)
	}
	return &Unit{
		ImportPath: p.ImportPath,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		IsCommand:  p.Name == "main",
	}, nil
}
