package lint

import (
	"go/ast"
	"go/types"
)

// ErrCheckPass flags dropped errors: a call whose error result is neither
// assigned nor checked, a blank assignment (`_ = ...`) of an error-typed
// value, and `go`/`defer` statements discarding a callee's error.
//
// In a solver toolkit a dropped error is a silent wrong number: every
// ctmc/sparse/reward entry point reports numeric breakdown through its
// error result, and ignoring it turns ErrNotConverged into a plausible
// -looking Y(φ).
//
// Built-in exclusions (documented in docs/STATIC_ANALYSIS.md): the fmt
// print family and methods of strings.Builder / bytes.Buffer, whose error
// results are either meaningless for this repo's in-memory report writers
// or documented to be always nil.
type ErrCheckPass struct{}

// Name implements Pass.
func (ErrCheckPass) Name() string { return "errcheck" }

// Doc implements Pass.
func (ErrCheckPass) Doc() string {
	return "error results must be checked (no bare calls, no `_ =` discards)"
}

// Run implements Pass.
func (p ErrCheckPass) Run(u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, f := range u.Files {
		if isTestFile(u, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					out = append(out, p.checkCall(u, call, "result of %s ignored")...)
				}
			case *ast.GoStmt:
				out = append(out, p.checkCall(u, n.Call, "error result of %s discarded by go statement")...)
			case *ast.DeferStmt:
				out = append(out, p.checkCall(u, n.Call, "error result of %s discarded by defer")...)
			case *ast.AssignStmt:
				out = append(out, p.checkAssign(u, n)...)
			}
			return true
		})
	}
	return out
}

// checkCall flags call if it returns an error that the caller cannot see.
func (p ErrCheckPass) checkCall(u *Unit, call *ast.CallExpr, format string) []Diagnostic {
	if !returnsError(u, call) || p.excluded(u, call) {
		return nil
	}
	return []Diagnostic{diag(u, call.Pos(), p.Name(), format, calleeName(u, call))}
}

// checkAssign flags assignments whose every error-typed value lands in the
// blank identifier.
func (p ErrCheckPass) checkAssign(u *Unit, n *ast.AssignStmt) []Diagnostic {
	// Tuple form: v, _ := f()  /  _, _ = f()
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		call, ok := n.Rhs[0].(*ast.CallExpr)
		if !ok || p.excluded(u, call) {
			return nil
		}
		tuple, ok := u.Info.Types[call].Type.(*types.Tuple)
		if !ok {
			return nil
		}
		sawError, allBlank := false, true
		for i := 0; i < tuple.Len() && i < len(n.Lhs); i++ {
			if !isErrorType(tuple.At(i).Type()) {
				continue
			}
			sawError = true
			if !isBlank(n.Lhs[i]) {
				allBlank = false
			}
		}
		if sawError && allBlank {
			return []Diagnostic{diag(u, n.Pos(), p.Name(), "error result of %s discarded with _", calleeName(u, call))}
		}
		return nil
	}
	// One-to-one form: _ = expr with expr of type error.
	var out []Diagnostic
	if len(n.Lhs) == len(n.Rhs) {
		for i := range n.Lhs {
			if !isBlank(n.Lhs[i]) {
				continue
			}
			tv, ok := u.Info.Types[n.Rhs[i]]
			if !ok || !isErrorType(tv.Type) {
				continue
			}
			if call, ok := n.Rhs[i].(*ast.CallExpr); ok && p.excluded(u, call) {
				continue
			}
			out = append(out, diag(u, n.Lhs[i].Pos(), p.Name(), "error value discarded with _"))
		}
	}
	return out
}

// excluded reports whether the call is on the built-in exclusion list.
func (p ErrCheckPass) excluded(u *Unit, call *ast.CallExpr) bool {
	fn := calleeFunc(u, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch types.TypeString(sig.Recv().Type(), nil) {
		case "*strings.Builder", "*bytes.Buffer", "strings.Builder", "bytes.Buffer":
			return true
		}
	}
	return false
}

// returnsError reports whether the call has at least one error result.
// Conversions and error-free builtins are not calls in this sense.
func returnsError(u *Unit, call *ast.CallExpr) bool {
	tv, ok := u.Info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		if funTV, ok := u.Info.Types[call.Fun]; ok && funTV.IsType() {
			return false // conversion, not a call
		}
		return isErrorType(tv.Type)
	}
}

// calleeFunc resolves the called function object, if statically known.
func calleeFunc(u *Unit, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := u.Info.Uses[id].(*types.Func)
	return fn
}

// calleeName renders the callee for diagnostics.
func calleeName(u *Unit, call *ast.CallExpr) string {
	if fn := calleeFunc(u, call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return types.TypeString(sig.Recv().Type(), types.RelativeTo(u.Pkg)) + "." + fn.Name()
		}
		if fn.Pkg() != nil && fn.Pkg() != u.Pkg {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "call"
}

// isErrorType reports whether t is the predeclared error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
