// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and solves forward dataflow problems on them. It is the
// flow-sensitive substrate of the gsulint rules that reason about paths —
// ctxcancel (cancel funcs invoked on every path to return) and
// lockbalance (mutex pairing on every path) — where the older rules only
// had to look at one node at a time.
//
// Like the rest of internal/lint, the package is standard library only:
// no golang.org/x/tools. The graph is deliberately modest — basic blocks
// of statement nodes with successor edges — but it models the full Go
// statement grammar: if/else, for (including range), switch and type
// switch with fallthrough, select, labeled break/continue, goto, and the
// terminating forms (return, panic, os.Exit, runtime.Goexit, log.Fatal).
//
// Defer is modeled by placement, not by an exit trampoline: a DeferStmt
// appears as an ordinary node at its push point. For the "must happen by
// function exit" facts the lint passes compute, a deferred call that is
// pushed on a path is guaranteed to run when that path leaves the
// function, so applying its effect at the push point is sound — and it
// keeps the conditional-defer and defer-in-loop cases honest, because a
// path that never reaches the DeferStmt never sees its effect.
//
// Paths that end in panic (or Goexit/Exit/Fatal) terminate without an
// edge to Exit: they never reach a return, so must-reach-return analyses
// correctly ignore them, and recovery/unwinding is the deferred calls'
// business, which the passes already credit at the push point.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one basic block: a maximal run of straight-line statements.
// Nodes holds the statements (and branch conditions) in execution order;
// the last node decides where control goes next via Succs.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable, 0 = entry).
	Index int
	// Kind is a short structural label ("entry", "exit", "if.then",
	// "for.cond", ...) used by tests and debug output.
	Kind string
	// Nodes are the block's AST nodes in execution order. Conditions of
	// if/for appear as bare ast.Expr nodes; everything else is an
	// ast.Stmt. A function body that can fall off its closing brace gets
	// a synthetic *ImplicitReturn as the final node before Exit.
	Nodes []ast.Node
	// Succs are the possible control-flow successors.
	Succs []*Block
	// Preds are the corresponding reverse edges.
	Preds []*Block
}

// Graph is the control-flow graph of one function body. Entry is the
// unique start block; Exit is a virtual block reached by every return
// (explicit or implicit) and by nothing else.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// ImplicitReturn is the synthetic node marking control falling off the
// end of a function body (the implicit return of a void function). It
// implements ast.Node so dataflow passes can treat it exactly like an
// *ast.ReturnStmt when checking exit facts.
type ImplicitReturn struct {
	// Brace is the position of the body's closing brace.
	Brace token.Pos
}

// Pos implements ast.Node.
func (r *ImplicitReturn) Pos() token.Pos { return r.Brace }

// End implements ast.Node.
func (r *ImplicitReturn) End() token.Pos { return r.Brace + 1 }

// New builds the control-flow graph of one function body. The body is
// walked at statement granularity: expressions are not decomposed, and
// nested function literals are opaque (they are separate functions with
// separate graphs — build one per literal).
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		g:      &Graph{},
		labels: make(map[string]*Block),
	}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	b.stmtList(body.List)
	// Control that reaches the closing brace returns implicitly.
	if b.cur != nil {
		b.append(&ImplicitReturn{Brace: body.Rbrace})
		b.edge(b.cur, b.g.Exit)
	}
	return b.g
}

// frame is one enclosing breakable/continuable construct.
type frame struct {
	label      string // loop/switch/select label, "" if none
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

// builder carries the construction state.
type builder struct {
	g   *Graph
	cur *Block // nil while control is dead (just branched/returned)

	frames []*frame
	// labels maps label names to their target blocks, for goto and for
	// labeled statements (created on demand so forward gotos resolve).
	labels map[string]*Block
	// nextLabel is the pending label to attach to the next loop/switch/
	// select frame (set by LabeledStmt).
	nextLabel string
}

// newBlock appends a fresh block to the graph.
func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge links from → to (idempotent).
func (b *builder) edge(from, to *Block) {
	if from == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// append adds a node to the current block; dead control appends nowhere
// but revives into an unreachable block so later statements keep their
// structure (they simply have no predecessors).
func (b *builder) append(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// live returns the current block, reviving dead control into an
// unreachable block (same policy as append).
func (b *builder) live() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

// labelBlock returns (creating on demand) the block a label names.
func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

// findBreak resolves a break target: the innermost frame, or the frame
// carrying the label.
func (b *builder) findBreak(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label == "" || f.label == label {
			return f.breakTo
		}
	}
	return nil
}

// findContinue resolves a continue target (loops only).
func (b *builder) findContinue(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if f.continueTo == nil {
			continue
		}
		if label == "" || f.label == label {
			return f.continueTo
		}
	}
	return nil
}

// takeLabel consumes the pending label for the construct being built.
func (b *builder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// stmt translates one statement, leaving b.cur at the fall-through block
// (or nil when the statement never falls through).
func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.EmptyStmt:
		// nothing

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.live(), lb)
		b.cur = lb
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.nextLabel = s.Label.Name
		}
		b.stmt(s.Stmt)

	case *ast.ReturnStmt:
		b.append(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if t := b.findBreak(label); t != nil {
				b.edge(b.live(), t)
			}
			b.cur = nil
		case token.CONTINUE:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if t := b.findContinue(label); t != nil {
				b.edge(b.live(), t)
			}
			b.cur = nil
		case token.GOTO:
			b.edge(b.live(), b.labelBlock(s.Label.Name))
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by the switch builder (it inspects the clause tail);
			// reaching here means a stray fallthrough — treat as no-op.
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.append(s.Init)
		}
		b.append(s.Cond)
		condB := b.live()
		thenB := b.newBlock("if.then")
		b.edge(condB, thenB)
		var elseB *Block
		if s.Else != nil {
			elseB = b.newBlock("if.else")
			b.edge(condB, elseB)
		}
		afterB := b.newBlock("if.after")
		if s.Else == nil {
			b.edge(condB, afterB)
		}
		b.cur = thenB
		b.stmt(s.Body)
		b.edge(b.cur, afterB)
		if elseB != nil {
			b.cur = elseB
			b.stmt(s.Else)
			b.edge(b.cur, afterB)
		}
		b.cur = afterB

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.append(s.Init)
		}
		condB := b.newBlock("for.cond")
		b.edge(b.live(), condB)
		afterB := b.newBlock("for.after")
		bodyB := b.newBlock("for.body")
		b.cur = condB
		if s.Cond != nil {
			b.append(s.Cond)
			b.edge(condB, afterB)
		}
		b.edge(condB, bodyB)
		continueTo := condB
		var postB *Block
		if s.Post != nil {
			postB = b.newBlock("for.post")
			postB.Nodes = append(postB.Nodes, s.Post)
			b.edge(postB, condB)
			continueTo = postB
		}
		b.frames = append(b.frames, &frame{label: label, breakTo: afterB, continueTo: continueTo})
		b.cur = bodyB
		b.stmt(s.Body)
		b.edge(b.cur, continueTo)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = afterB

	case *ast.RangeStmt:
		label := b.takeLabel()
		headB := b.newBlock("range.head")
		b.edge(b.live(), headB)
		// Only the ranged expression is a node: appending the whole
		// RangeStmt would embed the body's statements in the head and
		// double-count their effects. Key/value per-iteration assignment
		// is not modeled.
		headB.Nodes = append(headB.Nodes, s.X)
		bodyB := b.newBlock("range.body")
		afterB := b.newBlock("range.after")
		b.edge(headB, bodyB)
		b.edge(headB, afterB)
		b.frames = append(b.frames, &frame{label: label, breakTo: afterB, continueTo: headB})
		b.cur = bodyB
		b.stmt(s.Body)
		b.edge(b.cur, headB)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = afterB

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.append(s.Init)
		}
		if s.Tag != nil {
			b.append(s.Tag)
		}
		b.switchClauses(label, s.Body.List, func(c ast.Stmt) ([]ast.Stmt, bool) {
			cc := c.(*ast.CaseClause)
			return cc.Body, cc.List == nil
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.append(s.Init)
		}
		b.append(s.Assign)
		b.switchClauses(label, s.Body.List, func(c ast.Stmt) ([]ast.Stmt, bool) {
			cc := c.(*ast.CaseClause)
			return cc.Body, cc.List == nil
		})

	case *ast.SelectStmt:
		label := b.takeLabel()
		headB := b.live()
		if len(s.Body.List) == 0 {
			// select{} blocks forever: no successors.
			b.cur = nil
			return
		}
		afterB := b.newBlock("select.after")
		b.frames = append(b.frames, &frame{label: label, breakTo: afterB})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			clauseB := b.newBlock("select.clause")
			b.edge(headB, clauseB)
			b.cur = clauseB
			if cc.Comm != nil {
				b.append(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, afterB)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = afterB

	case *ast.ExprStmt:
		b.append(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && terminatesFlow(call) {
			b.cur = nil
		}

	case *ast.GoStmt, *ast.DeferStmt, *ast.SendStmt, *ast.IncDecStmt,
		*ast.AssignStmt, *ast.DeclStmt:
		b.append(s)

	default:
		// Future statement kinds: keep them visible to the dataflow even
		// if we do not model their control transfer.
		b.append(s)
	}
}

// switchClauses builds the clause blocks of a (type) switch. clauseInfo
// extracts a clause's body and whether it is the default clause.
func (b *builder) switchClauses(label string, clauses []ast.Stmt, clauseInfo func(ast.Stmt) ([]ast.Stmt, bool)) {
	headB := b.live()
	afterB := b.newBlock("switch.after")
	b.frames = append(b.frames, &frame{label: label, breakTo: afterB})

	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock("switch.case")
		b.edge(headB, blocks[i])
		if _, isDefault := clauseInfo(c); isDefault {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(headB, afterB)
	}
	for i, c := range clauses {
		body, _ := clauseInfo(c)
		// A trailing fallthrough transfers into the next clause's body.
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = i+1 < len(blocks)
				body = body[:n-1]
			}
		}
		b.cur = blocks[i]
		b.stmtList(body)
		if fallsThrough {
			b.edge(b.cur, blocks[i+1])
		} else {
			b.edge(b.cur, afterB)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = afterB
}

// terminatesFlow reports whether a call statement never returns to the
// caller, judged syntactically: the builtin panic, runtime.Goexit,
// os.Exit, and the log.Fatal family. (A shadowed `panic` would be
// misjudged; the repo's libpanic rule keeps panics rare enough not to
// care.)
func terminatesFlow(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "runtime.Goexit", "os.Exit":
			return true
		case "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}

// String renders the graph compactly for tests and debugging: one line
// per block with its kind, node count and successor indices.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		succs := make([]string, len(blk.Succs))
		for i, s := range blk.Succs {
			succs[i] = fmt.Sprint(s.Index)
		}
		fmt.Fprintf(&sb, "b%d[%s] nodes=%d -> {%s}\n", blk.Index, blk.Kind, len(blk.Nodes), strings.Join(succs, ","))
	}
	return sb.String()
}
