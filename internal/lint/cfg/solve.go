package cfg

import "go/ast"

// Analysis defines one forward dataflow problem over a Graph. Facts are
// opaque values; the three callbacks give them meaning. A may-analysis
// uses a union-like Join, a must-analysis an intersection-like one — the
// solver does not care, it only needs Join to be monotone and the fact
// lattice to be finite (or widened by Transfer) so the fixpoint
// terminates.
type Analysis struct {
	// Entry is the boundary fact at function entry.
	Entry any
	// Transfer applies one node's effect to the fact flowing into it and
	// returns the fact flowing out. It must treat facts as immutable
	// (return a fresh value when anything changes).
	Transfer func(n ast.Node, in any) any
	// Join merges the facts of two converging paths. It is only called
	// with two reached facts; an unreached predecessor contributes
	// nothing.
	Join func(a, b any) any
	// Equal reports whether two facts are equal; the fixpoint iteration
	// stops when no block's input fact changes.
	Equal func(a, b any) bool
}

// Result holds the solved fixpoint: the fact flowing into every reached
// block. Blocks unreachable from entry are absent.
type Result struct {
	In map[*Block]any
	a  Analysis
}

// maxVisitsPerBlock bounds fixpoint iteration as a defensive backstop
// against a non-converging (infinite-lattice, unwidened) analysis. The
// shipped analyses all use finite lattices and converge in a handful of
// passes; hitting the cap leaves a sound-but-stale approximation.
const maxVisitsPerBlock = 64

// Forward solves the analysis to a fixpoint with a reverse-post-order
// worklist over the blocks reachable from g.Entry.
func Forward(g *Graph, a Analysis) *Result {
	order := postorder(g)
	// Reverse postorder: roughly topological, so loop-free regions solve
	// in one pass.
	rpo := make([]*Block, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		rpo = append(rpo, order[i])
	}

	res := &Result{In: make(map[*Block]any, len(rpo)), a: a}
	res.In[g.Entry] = a.Entry

	inList := make(map[*Block]bool, len(rpo))
	var work []*Block
	for _, blk := range rpo {
		work = append(work, blk)
		inList[blk] = true
	}
	visits := make(map[*Block]int, len(rpo))

	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inList[blk] = false

		in, reached := res.In[blk]
		if !reached {
			continue
		}
		if visits[blk]++; visits[blk] > maxVisitsPerBlock {
			continue
		}
		out := in
		for _, n := range blk.Nodes {
			out = a.Transfer(n, out)
		}
		for _, succ := range blk.Succs {
			prev, ok := res.In[succ]
			next := out
			if ok {
				next = a.Join(prev, out)
			}
			if ok && a.Equal(prev, next) {
				continue
			}
			res.In[succ] = next
			if !inList[succ] {
				work = append(work, succ)
				inList[succ] = true
			}
		}
	}
	return res
}

// Visit replays the transfer function through every reached block,
// calling f with each node and the fact flowing into it. This is how
// passes read the solved state at interesting nodes (returns, unlocks)
// without re-deriving block internals.
func (r *Result) Visit(g *Graph, f func(n ast.Node, before any)) {
	for _, blk := range g.Blocks {
		in, reached := r.In[blk]
		if !reached {
			continue
		}
		fact := in
		for _, n := range blk.Nodes {
			f(n, fact)
			fact = r.a.Transfer(n, fact)
		}
	}
}

// postorder returns the blocks reachable from entry in DFS postorder.
func postorder(g *Graph) []*Block {
	seen := make(map[*Block]bool, len(g.Blocks))
	var order []*Block
	var dfs func(*Block)
	dfs = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		order = append(order, b)
	}
	dfs(g.Entry)
	return order
}
