package cfg

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"strings"
	"testing"
)

// parseFunc parses src (one or more declarations) and returns the first
// function declaration with a body.
func parseFunc(t *testing.T, src string) (*token.FileSet, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "test.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parsing %q: %v", src, err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fset, fd
		}
	}
	t.Fatal("no function declaration in source")
	return nil, nil
}

// build parses src and builds its CFG.
func build(t *testing.T, src string) (*token.FileSet, *Graph) {
	t.Helper()
	fset, fd := parseFunc(t, src)
	return fset, New(fd.Body)
}

// nodeStr renders a node's source text for matching.
func nodeStr(fset *token.FileSet, n ast.Node) string {
	if _, ok := n.(*ImplicitReturn); ok {
		return "<implicit return>"
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return "<unprintable>"
	}
	return buf.String()
}

// blockWith finds the unique block containing a node whose source text
// contains substr.
func blockWith(t *testing.T, fset *token.FileSet, g *Graph, substr string) *Block {
	t.Helper()
	var found *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if strings.Contains(nodeStr(fset, n), substr) {
				if found != nil && found != b {
					t.Fatalf("node %q appears in blocks b%d and b%d:\n%s", substr, found.Index, b.Index, g)
				}
				found = b
			}
		}
	}
	if found == nil {
		t.Fatalf("no block contains %q:\n%s", substr, g)
	}
	return found
}

func hasEdge(a, b *Block) bool {
	for _, s := range a.Succs {
		if s == b {
			return true
		}
	}
	return false
}

// hasPath reports whether b is reachable from a along successor edges.
func hasPath(a, b *Block) bool {
	seen := map[*Block]bool{}
	var dfs func(*Block) bool
	dfs = func(x *Block) bool {
		if x == b {
			return true
		}
		if seen[x] {
			return false
		}
		seen[x] = true
		for _, s := range x.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(a)
}

func TestIfDiamond(t *testing.T) {
	fset, g := build(t, `func f(c bool) int {
		x := 0
		if c {
			x = 1
		} else {
			x = 2
		}
		return x
	}`)
	cond := blockWith(t, fset, g, "c")
	then := blockWith(t, fset, g, "x = 1")
	els := blockWith(t, fset, g, "x = 2")
	ret := blockWith(t, fset, g, "return x")
	if !hasEdge(cond, then) || !hasEdge(cond, els) {
		t.Fatalf("condition must branch to both arms:\n%s", g)
	}
	if hasEdge(cond, ret) {
		t.Fatalf("if/else must not fall through past both arms:\n%s", g)
	}
	if !hasPath(then, ret) || !hasPath(els, ret) {
		t.Fatalf("both arms must rejoin before the return:\n%s", g)
	}
	if !hasEdge(ret, g.Exit) {
		t.Fatalf("return must edge to exit:\n%s", g)
	}
}

func TestForLoopSkipAndBackEdge(t *testing.T) {
	fset, g := build(t, `func f(n int) int {
		s := 0
		for i := 0; i < n; i++ {
			s += i
		}
		return s
	}`)
	cond := blockWith(t, fset, g, "i < n")
	body := blockWith(t, fset, g, "s += i")
	post := blockWith(t, fset, g, "i++")
	ret := blockWith(t, fset, g, "return s")
	if !hasEdge(cond, body) {
		t.Fatalf("cond must enter body:\n%s", g)
	}
	if !hasEdge(cond, ret) {
		t.Fatalf("cond must be able to skip the body entirely:\n%s", g)
	}
	if !hasEdge(body, post) || !hasEdge(post, cond) {
		t.Fatalf("body -> post -> cond back edge missing:\n%s", g)
	}
}

func TestInfiniteLoopOnlyExitsViaBreak(t *testing.T) {
	fset, g := build(t, `func f(c bool) int {
		for {
			if c {
				break
			}
		}
		return 1
	}`)
	ret := blockWith(t, fset, g, "return 1")
	cond := blockWith(t, fset, g, "c")
	if !hasPath(cond, ret) {
		t.Fatalf("break must reach the loop exit:\n%s", g)
	}
	// The loop head itself must not skip to after (no condition).
	for _, b := range g.Blocks {
		if b.Kind == "for.cond" && hasEdge(b, ret) {
			t.Fatalf("infinite loop head must not edge to after:\n%s", g)
		}
	}
}

func TestLabeledBreakAndContinue(t *testing.T) {
	fset, g := build(t, `func f(m, n int) int {
		s := 0
	outer:
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if j == 3 {
					continue outer
				}
				if j == 5 {
					break outer
				}
				s++
			}
		}
		return s
	}`)
	ret := blockWith(t, fset, g, "return s")
	contSrc := blockWith(t, fset, g, "j == 3")
	breakSrc := blockWith(t, fset, g, "j == 5")
	outerPost := blockWith(t, fset, g, "i++")
	innerCond := blockWith(t, fset, g, "j < n")

	// continue outer jumps straight to the outer post (the branch lives in
	// the empty then-block hanging off the condition).
	foundCont := false
	for _, s := range contSrc.Succs {
		if len(s.Nodes) == 0 && len(s.Succs) == 1 && s.Succs[0] == outerPost {
			foundCont = true
		}
	}
	if !foundCont {
		t.Fatalf("continue outer must edge to the outer for.post:\n%s", g)
	}
	// break outer jumps straight past both loops.
	foundBreak := false
	for _, s := range breakSrc.Succs {
		if hasPath(s, ret) && !hasPath(s, innerCond) {
			foundBreak = true
		}
	}
	if !foundBreak {
		t.Fatalf("break outer must leave both loops:\n%s", g)
	}
}

func TestDeferInLoopStaysInBody(t *testing.T) {
	fset, g := build(t, `func f(files []string) {
		for _, f := range files {
			h := open(f)
			defer h.Close()
		}
	}`)
	deferB := blockWith(t, fset, g, "defer h.Close()")
	if deferB.Kind != "range.body" {
		t.Fatalf("defer in a range body must live in the body block, got %q:\n%s", deferB.Kind, g)
	}
	// The zero-iteration path must bypass the defer: head -> after without
	// passing the body.
	head := blockWith(t, fset, g, "files")
	bypass := false
	for _, s := range head.Succs {
		if s != deferB && !hasPath(s, deferB) {
			bypass = true
		}
	}
	if !bypass {
		t.Fatalf("range head must have a body-skipping edge (defer may run zero times):\n%s", g)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	fset, g := build(t, `func f(v int) int {
		s := 0
		switch v {
		case 1:
			s = 1
			fallthrough
		case 2:
			s += 2
		case 3:
			s = 3
		}
		return s
	}`)
	c1 := blockWith(t, fset, g, "s = 1")
	c2 := blockWith(t, fset, g, "s += 2")
	c3 := blockWith(t, fset, g, "s = 3")
	ret := blockWith(t, fset, g, "return s")
	if !hasEdge(c1, c2) {
		t.Fatalf("fallthrough must edge clause 1 into clause 2:\n%s", g)
	}
	if hasEdge(c1, ret) {
		t.Fatalf("fallthrough clause must not edge to after:\n%s", g)
	}
	if !hasEdge(c2, ret) || !hasEdge(c3, ret) {
		t.Fatalf("non-fallthrough clauses must edge to after:\n%s", g)
	}
	// No default: the tag block must be able to skip every clause.
	tag := blockWith(t, fset, g, "v")
	if !hasEdge(tag, ret) {
		t.Fatalf("switch without default must have a skip edge:\n%s", g)
	}
}

func TestSwitchWithDefaultHasNoSkipEdge(t *testing.T) {
	fset, g := build(t, `func f(n int) int {
		s := 0
		switch {
		case n > 0:
			s = 1
		default:
			s = 2
		}
		return s
	}`)
	ret := blockWith(t, fset, g, "return s")
	for _, b := range g.Blocks {
		if b.Kind == "entry" && hasEdge(b, ret) {
			t.Fatalf("switch with default must not skip all clauses:\n%s", g)
		}
	}
}

func TestSelectClauses(t *testing.T) {
	fset, g := build(t, `func f(a, b chan int, done chan struct{}) int {
		s := 0
		select {
		case v := <-a:
			s = v
		case v := <-b:
			s = -v
		case <-done:
			return 0
		}
		return s
	}`)
	ca := blockWith(t, fset, g, "s = v")
	cb := blockWith(t, fset, g, "s = -v")
	cd := blockWith(t, fset, g, "return 0")
	ret := blockWith(t, fset, g, "return s")
	head := blockWith(t, fset, g, "s := 0")
	if !hasEdge(head, ca) || !hasEdge(head, cb) || !hasPath(head, cd) {
		t.Fatalf("select head must edge to every clause:\n%s", g)
	}
	// No default: the select blocks; it must not skip directly to after.
	if hasEdge(head, ret) {
		t.Fatalf("select without default must not have a bypass edge:\n%s", g)
	}
	if !hasEdge(cd, g.Exit) {
		t.Fatalf("clause return must edge to exit:\n%s", g)
	}
}

func TestEmptySelectTerminates(t *testing.T) {
	_, g := build(t, `func f() {
		select {}
	}`)
	// Nothing after select{} is reachable; in particular no implicit
	// return reaches exit.
	if len(g.Exit.Preds) != 0 {
		t.Fatalf("select{} must not reach exit:\n%s", g)
	}
}

func TestPanicTerminatesPath(t *testing.T) {
	fset, g := build(t, `func f(c bool) int {
		if c {
			panic("boom")
		}
		return 1
	}`)
	pb := blockWith(t, fset, g, `panic("boom")`)
	if len(pb.Succs) != 0 {
		t.Fatalf("panic block must have no successors:\n%s", g)
	}
	ret := blockWith(t, fset, g, "return 1")
	if !hasEdge(ret, g.Exit) {
		t.Fatalf("surviving path must still return:\n%s", g)
	}
	if len(g.Exit.Preds) != 1 {
		t.Fatalf("only the return reaches exit, got %d preds:\n%s", len(g.Exit.Preds), g)
	}
}

func TestRecoverPathKeepsFlowing(t *testing.T) {
	fset, g := build(t, `func f() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = wrap(r)
			}
		}()
		step()
		return nil
	}`)
	// The deferred recover literal is opaque (a separate function); the
	// outer flow is linear: defer, call, return.
	d := blockWith(t, fset, g, "defer func()")
	ret := blockWith(t, fset, g, "return nil")
	if !hasPath(d, ret) {
		t.Fatalf("defer must not break straight-line flow:\n%s", g)
	}
	if !hasPath(g.Entry, g.Exit) {
		t.Fatalf("function must reach exit:\n%s", g)
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	fset, g := build(t, `func f(c bool) int {
		i := 0
	again:
		i++
		if c {
			goto done
		}
		if i < 10 {
			goto again
		}
	done:
		return i
	}`)
	inc := blockWith(t, fset, g, "i++")
	ret := blockWith(t, fset, g, "return i")
	if !hasPath(g.Entry, ret) {
		t.Fatalf("goto done must reach the label:\n%s", g)
	}
	// Backward goto forms a loop: the label block must be reachable from
	// itself.
	if !hasPath(inc, inc) {
		t.Fatalf("goto again must form a back edge:\n%s", g)
	}
}

func TestImplicitReturn(t *testing.T) {
	fset, g := build(t, `func f(c bool) {
		if c {
			step()
		}
	}`)
	ir := blockWith(t, fset, g, "<implicit return>")
	if !hasEdge(ir, g.Exit) {
		t.Fatalf("implicit return must edge to exit:\n%s", g)
	}
	n := ir.Nodes[len(ir.Nodes)-1]
	if _, ok := n.(*ImplicitReturn); !ok {
		t.Fatalf("last node must be *ImplicitReturn, got %T", n)
	}
}

func TestUnreachableCodeHasNoPreds(t *testing.T) {
	fset, g := build(t, `func f() int {
		return 1
		step()
		return 2
	}`)
	dead := blockWith(t, fset, g, "step()")
	if len(dead.Preds) != 0 {
		t.Fatalf("statements after return must be unreachable:\n%s", g)
	}
	if !hasPath(g.Entry, g.Exit) {
		t.Fatalf("live return must reach exit:\n%s", g)
	}
}
