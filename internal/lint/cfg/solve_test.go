package cfg

import (
	"go/ast"
	"sort"
	"strings"
	"testing"
)

// assignSet is the test fact: the set of variable names assigned so far.
type assignSet map[string]bool

func (s assignSet) clone() assignSet {
	out := make(assignSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func (s assignSet) names() string {
	var ns []string
	for k := range s {
		ns = append(ns, k)
	}
	sort.Strings(ns)
	return strings.Join(ns, ",")
}

// assignTransfer records simple `x = ...` / `x := ...` assignments.
func assignTransfer(n ast.Node, in any) any {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return in
	}
	out := in.(assignSet).clone()
	for _, l := range as.Lhs {
		if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
			out[id.Name] = true
		}
	}
	return out
}

func setEqual(a, b any) bool {
	as, bs := a.(assignSet), b.(assignSet)
	if len(as) != len(bs) {
		return false
	}
	for k := range as {
		if !bs[k] {
			return false
		}
	}
	return true
}

func unionJoin(a, b any) any {
	out := a.(assignSet).clone()
	for k := range b.(assignSet) {
		out[k] = true
	}
	return out
}

func intersectJoin(a, b any) any {
	as, bs := a.(assignSet), b.(assignSet)
	out := make(assignSet)
	for k := range as {
		if bs[k] {
			out[k] = true
		}
	}
	return out
}

// factAtReturn solves the analysis and returns the fact flowing into the
// first return statement (explicit or implicit).
func factAtReturn(t *testing.T, g *Graph, a Analysis) assignSet {
	t.Helper()
	res := Forward(g, a)
	var got assignSet
	res.Visit(g, func(n ast.Node, before any) {
		switch n.(type) {
		case *ast.ReturnStmt, *ImplicitReturn:
			if got == nil {
				got = before.(assignSet)
			}
		}
	})
	if got == nil {
		t.Fatal("no return reached")
	}
	return got
}

func TestMustAssignIntersectsBranches(t *testing.T) {
	_, g := build(t, `func f(c bool) int {
		var x, y int
		if c {
			x = 1
		} else {
			x = 2
			y = 3
		}
		return x + y
	}`)
	must := factAtReturn(t, g, Analysis{
		Entry:    assignSet{},
		Transfer: assignTransfer,
		Join:     intersectJoin,
		Equal:    setEqual,
	})
	if got := must.names(); got != "x" {
		t.Fatalf("must-assigned at return = {%s}, want {x} (y only on one branch)", got)
	}
	may := factAtReturn(t, g, Analysis{
		Entry:    assignSet{},
		Transfer: assignTransfer,
		Join:     unionJoin,
		Equal:    setEqual,
	})
	if got := may.names(); got != "x,y" {
		t.Fatalf("may-assigned at return = {%s}, want {x,y}", got)
	}
}

func TestLoopFixpointConverges(t *testing.T) {
	_, g := build(t, `func f(n int) int {
		s := 0
		for i := 0; i < n; i++ {
			y := i
			s = s + y
		}
		return s
	}`)
	// Must: the loop may run zero times, so y is not must-assigned at the
	// return, while s (assigned before the loop) is.
	must := factAtReturn(t, g, Analysis{
		Entry:    assignSet{},
		Transfer: assignTransfer,
		Join:     intersectJoin,
		Equal:    setEqual,
	})
	if got := must.names(); got != "i,s" {
		t.Fatalf("must-assigned at return = {%s}, want {i,s}", got)
	}
	// May: the back edge feeds y into the loop head and out the exit edge.
	may := factAtReturn(t, g, Analysis{
		Entry:    assignSet{},
		Transfer: assignTransfer,
		Join:     unionJoin,
		Equal:    setEqual,
	})
	if got := may.names(); got != "i,s,y" {
		t.Fatalf("may-assigned at return = {%s}, want {i,s,y}", got)
	}
}

func TestSelectJoinAcrossClauses(t *testing.T) {
	_, g := build(t, `func f(a, b chan int) int {
		var x, y int
		select {
		case v := <-a:
			x = v
		case w := <-b:
			x = w
			y = w
		}
		return x + y
	}`)
	must := factAtReturn(t, g, Analysis{
		Entry:    assignSet{},
		Transfer: assignTransfer,
		Join:     intersectJoin,
		Equal:    setEqual,
	})
	if got := must.names(); got != "x" {
		t.Fatalf("must-assigned after select = {%s}, want {x}", got)
	}
}

func TestUnreachableBlocksHaveNoFacts(t *testing.T) {
	_, g := build(t, `func f() int {
		x := 1
		return x
		x = 2
		return x
	}`)
	res := Forward(g, Analysis{
		Entry:    assignSet{},
		Transfer: assignTransfer,
		Join:     unionJoin,
		Equal:    setEqual,
	})
	for b := range res.In {
		if len(b.Preds) == 0 && b != g.Entry {
			t.Fatalf("unreachable block b%d received a fact:\n%s", b.Index, g)
		}
	}
}

func TestVisitSeesIntermediateFacts(t *testing.T) {
	_, g := build(t, `func f() int {
		a := 1
		b := 2
		return a + b
	}`)
	res := Forward(g, Analysis{
		Entry:    assignSet{},
		Transfer: assignTransfer,
		Join:     unionJoin,
		Equal:    setEqual,
	})
	var seq []string
	res.Visit(g, func(n ast.Node, before any) {
		seq = append(seq, before.(assignSet).names())
	})
	// Before a:=1 nothing; before b:=2 {a}; before the return {a,b};
	// before the exit nothing more is visited (exit has no nodes).
	want := []string{"", "a", "a,b"}
	if len(seq) != len(want) {
		t.Fatalf("visited %d nodes, want %d: %v", len(seq), len(want), seq)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("visit %d saw {%s}, want {%s}", i, seq[i], want[i])
		}
	}
}
