// Package lint is the repository's domain-specific static analyzer.
//
// It is built on the standard library only (go/parser, go/ast, go/types —
// no golang.org/x/tools dependency): packages are loaded with export data
// produced by `go list -export`, type-checked with the gc importer, and
// each registered Pass walks the typed syntax trees reporting
// position-accurate diagnostics.
//
// The rules encode correctness discipline specific to a numerical
// performability toolkit: solver errors must never be dropped, floating
// point must not be compared with ==, library packages must not panic
// undocumented, contexts must flow to callees, and probability/rate
// literals handed to model constructors must be sane. See
// docs/STATIC_ANALYSIS.md for the rule catalog.
//
// Diagnostics can be suppressed with a comment on (or immediately above)
// the offending line:
//
//	//lint:ignore <rule> <reason>
//
// The reason is mandatory; suppressions without one are themselves
// reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Unit is one type-checked package presented to the passes.
type Unit struct {
	// ImportPath is the package's import path (e.g. guardedop/internal/ctmc).
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	// IsCommand reports whether the package is a main package; several
	// rules relax for commands (a CLI may panic, for instance).
	IsCommand bool
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Pass is one lint rule. Passes must be stateless: Run may be called for
// many units in any order.
type Pass interface {
	// Name is the rule identifier used in output and //lint:ignore.
	Name() string
	// Doc is a one-line description of the rule.
	Doc() string
	// Run reports the rule's findings for one package.
	Run(u *Unit) []Diagnostic
}

// AllPasses returns the full registered rule set, sorted by name.
func AllPasses() []Pass {
	passes := []Pass{
		ErrCheckPass{},
		FloatEqPass{},
		LibPanicPass{},
		CtxFlowPass{},
		ProbRangePass{},
		CtxCancelPass{},
		LockBalancePass{},
		GoLifetimePass{},
		ExhaustivePass{},
	}
	sort.Slice(passes, func(i, j int) bool { return passes[i].Name() < passes[j].Name() })
	return passes
}

// SelectPasses resolves a comma-separated rule list ("" or "all" means
// every rule).
func SelectPasses(names string) ([]Pass, error) {
	all := AllPasses()
	if names == "" || names == "all" {
		return all, nil
	}
	byName := make(map[string]Pass, len(all))
	for _, p := range all {
		byName[p.Name()] = p
	}
	var out []Pass
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		p, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q (have %s)", n, ruleNames(all))
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: empty rule selection")
	}
	return out, nil
}

func ruleNames(passes []Pass) string {
	names := make([]string, len(passes))
	for i, p := range passes {
		names[i] = p.Name()
	}
	return strings.Join(names, ", ")
}

// Run applies the passes to every unit, honours //lint:ignore suppressions,
// and returns the surviving diagnostics sorted by position.
func Run(units []*Unit, passes []Pass) []Diagnostic {
	var out []Diagnostic
	for _, u := range units {
		sup := collectSuppressions(u)
		for _, p := range passes {
			for _, d := range p.Run(u) {
				if sup.covers(d) {
					continue
				}
				out = append(out, d)
			}
		}
		out = append(out, sup.malformed...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// enclosingFuncDecl returns the innermost top-level function declaration
// covering pos, or nil for package-level positions.
func enclosingFuncDecl(u *Unit, pos token.Pos) *ast.FuncDecl {
	for _, f := range u.Files {
		if f.Pos() <= pos && pos < f.End() {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos < fd.End() {
					return fd
				}
			}
		}
	}
	return nil
}

// isTestFile reports whether pos lies in a _test.go file.
func isTestFile(u *Unit, pos token.Pos) bool {
	return strings.HasSuffix(u.Fset.Position(pos).Filename, "_test.go")
}

// diag builds a Diagnostic at pos.
func diag(u *Unit, pos token.Pos, rule, format string, args ...any) Diagnostic {
	return Diagnostic{Pos: u.Fset.Position(pos), Rule: rule, Message: fmt.Sprintf(format, args...)}
}
