package lint

import (
	"strings"
)

// ignoreDirective is the suppression comment prefix.
const ignoreDirective = "//lint:ignore"

// suppressions indexes the //lint:ignore directives of one unit.
type suppressions struct {
	// byLine maps file -> line -> set of suppressed rules ("*" suppresses
	// every rule). A directive covers its own line (trailing-comment
	// placement) and the immediately following line (comment-above
	// placement).
	byLine map[string]map[int]map[string]bool
	// malformed collects directives missing a rule or a reason; they are
	// reported as diagnostics of the pseudo-rule "lint-directive".
	malformed []Diagnostic
}

// collectSuppressions scans every comment of the unit for directives.
func collectSuppressions(u *Unit) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int]map[string]bool)}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(c.Text, ignoreDirective))
				pos := u.Fset.Position(c.Pos())
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Pos:     pos,
						Rule:    "lint-directive",
						Message: "malformed //lint:ignore: want \"//lint:ignore <rule> <reason>\"",
					})
					continue
				}
				rule := fields[0]
				s.add(pos.Filename, pos.Line, rule)
				s.add(pos.Filename, pos.Line+1, rule)
			}
		}
	}
	return s
}

func (s *suppressions) add(file string, line int, rule string) {
	m, ok := s.byLine[file]
	if !ok {
		m = make(map[int]map[string]bool)
		s.byLine[file] = m
	}
	set, ok := m[line]
	if !ok {
		set = make(map[string]bool)
		m[line] = set
	}
	set[rule] = true
}

// covers reports whether d is suppressed by a directive.
func (s *suppressions) covers(d Diagnostic) bool {
	m, ok := s.byLine[d.Pos.Filename]
	if !ok {
		return false
	}
	set, ok := m[d.Pos.Line]
	if !ok {
		return false
	}
	return set[d.Rule] || set["*"]
}
