// Package ctxcancelfix seeds ctxcancel violations for the golden lint test.
package ctxcancelfix

import (
	"context"
	"time"
)

// LeakOnEarlyReturn forgets cancel on the fast path.
func LeakOnEarlyReturn(ctx context.Context, fast bool) error {
	wctx, cancel := context.WithCancel(ctx) // want ctxcancel
	if fast {
		return work(wctx)
	}
	cancel()
	return work(wctx)
}

// DiscardedCancel throws the cancel away at birth.
func DiscardedCancel(ctx context.Context) context.Context {
	wctx, _ := context.WithTimeout(ctx, time.Second) // want ctxcancel
	return wctx
}

// ConditionalDefer pushes the defer on only one branch, so the other
// branch's return leaks.
func ConditionalDefer(ctx context.Context, guard bool) error {
	wctx, cancel := context.WithDeadline(ctx, time.Now().Add(time.Second)) // want ctxcancel
	if guard {
		defer cancel()
	}
	return work(wctx)
}

// DeferredImmediately is the canonical correct idiom.
func DeferredImmediately(ctx context.Context) error {
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return work(wctx)
}

// CanceledOnEveryPath calls cancel explicitly on both branches.
func CanceledOnEveryPath(ctx context.Context, fast bool) error {
	wctx, cancel := context.WithCancel(ctx)
	if fast {
		cancel()
		return nil
	}
	err := work(wctx)
	cancel()
	return err
}

// Handoff stores the cancel for a later shutdown: lifecycle ownership
// moves to the struct, so the pass stays silent.
type Handoff struct {
	cancel context.CancelFunc
}

// NewHandoff hands the cancel func to the returned struct.
func NewHandoff(ctx context.Context) (*Handoff, context.Context) {
	wctx, cancel := context.WithCancel(ctx)
	return &Handoff{cancel: cancel}, wctx
}

// work consumes the derived context.
func work(ctx context.Context) error { return ctx.Err() }
