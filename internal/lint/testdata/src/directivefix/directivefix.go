// Package directivefix seeds a malformed suppression directive for the
// golden lint test: the rule name is present but the mandatory reason is
// missing, so the directive itself is reported.
package directivefix

//lint:ignore floateq
func placeholder() {}
