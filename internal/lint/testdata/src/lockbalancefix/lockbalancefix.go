// Package lockbalancefix seeds lockbalance violations for the golden lint test.
package lockbalancefix

import "sync"

// Counter guards a running total with a plain mutex.
type Counter struct {
	mu sync.Mutex
	n  int
}

// HeldOnErrorPath forgets the unlock on the early return.
func (c *Counter) HeldOnErrorPath(limit int) int {
	c.mu.Lock()
	if c.n > limit {
		return -1 // want lockbalance
	}
	c.n++
	c.mu.Unlock()
	return c.n
}

// DoubleUnlock releases twice on the same path.
func (c *Counter) DoubleUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.mu.Unlock() // want lockbalance
}

// ForgetsUnlockEntirely never releases before falling off the end.
func (c *Counter) ForgetsUnlockEntirely() {
	c.mu.Lock()
	c.n *= 2
} // want lockbalance

// Add is the canonical defer idiom.
func (c *Counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
}

// release is a dedicated unlock helper: its body never locks, so the
// unheld unlock is deliberate and not flagged. (Callers that rely on it
// are beyond an intraprocedural analysis and are not checked.)
func (c *Counter) release() { c.mu.Unlock() }

var _ = (*Counter).release

// Table guards a map with an RWMutex; read and write sides are tracked
// independently.
type Table struct {
	mu   sync.RWMutex
	rows map[string]int
}

// SnapshotLeaksReadLock returns while still holding the read lock when
// the key is missing.
func (t *Table) SnapshotLeaksReadLock(key string) (int, bool) {
	t.mu.RLock()
	v, ok := t.rows[key]
	if !ok {
		return 0, false // want lockbalance
	}
	t.mu.RUnlock()
	return v, true
}

// Get uses the early-unlock-then-return idiom correctly on both paths.
func (t *Table) Get(key string) (int, bool) {
	t.mu.RLock()
	v, ok := t.rows[key]
	if !ok {
		t.mu.RUnlock()
		return 0, false
	}
	t.mu.RUnlock()
	return v, true
}

// Put upgrades correctly: write lock with defer.
func (t *Table) Put(key string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rows == nil {
		t.rows = make(map[string]int)
	}
	t.rows[key] = v
}
