// Package libpanicfix seeds libpanic violations for the golden lint test.
package libpanicfix

// Index returns v[i] with a home-grown bounds check.
func Index(v []float64, i int) float64 {
	if i < 0 || i >= len(v) {
		panic("index out of range") // want libpanic
	}
	return v[i]
}

// MustIndex is Index for correct-by-construction callers; the Must prefix
// is the documented panic idiom, so it is allowed.
func MustIndex(v []float64, i int) float64 {
	if i < 0 || i >= len(v) {
		panic("index out of range")
	}
	return v[i]
}

// Checked panics if i is negative (a caller bug) — documented, allowed.
func Checked(i int) int {
	if i < 0 {
		panic("negative")
	}
	return i
}

// Guarded re-panics foreign values inside its own recovery path — allowed.
func Guarded(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			panic(r)
		}
	}()
	fn()
	return nil
}
