// Package errcheckfix seeds errcheck violations for the golden lint test.
package errcheckfix

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

// Solve stands in for a solver entry point whose error must be checked.
func Solve() (float64, error) { return 0, errors.New("did not converge") }

// Run exercises every shape of dropped error.
func Run() float64 {
	Solve()            // want errcheck
	_, _ = Solve()     // want errcheck
	v, _ := Solve()    // want errcheck
	_ = errors.New("") // want errcheck
	defer Solve()      // want errcheck
	go Solve()         // want errcheck golifetime

	//lint:ignore errcheck suppression fixture: this drop is deliberate
	Solve()

	// Checked forms: not flagged.
	if _, err := Solve(); err != nil {
		return 0
	}
	w, err := Solve()
	if err != nil {
		return w
	}

	// Built-in exclusions: the fmt print family and in-memory builders.
	fmt.Println("report")
	var b strings.Builder
	b.WriteString("report")
	fmt.Fprintf(&b, "%g", v)

	return v
}

// Remove drops an error through a named stdlib call.
func Remove(path string) {
	os.Remove(path) // want errcheck
}
