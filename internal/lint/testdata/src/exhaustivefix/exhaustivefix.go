// Package exhaustivefix seeds exhaustive violations for the golden lint test.
package exhaustivefix

import (
	"context"

	"guardedop/internal/obs"
	"guardedop/internal/robust"
)

// retryableByClass forgets most of the taxonomy: only two classes are
// named and there is no default, so the switch is not exhaustive.
func retryableByClass(c robust.Class) bool {
	switch c { // want exhaustive
	case robust.ClassNotConverged:
		return true
	case robust.ClassCanceled:
		return false
	}
	return false
}

// severityByClass hides the remainder behind a deliberate default, which
// the rule accepts.
func severityByClass(c robust.Class) int {
	switch c {
	case robust.ClassPanic, robust.ClassInvariant:
		return 2
	default:
		return 1
	}
}

// incompleteLabels drops ClassOther from a Class-keyed map literal.
var incompleteLabels = map[robust.Class]string{ // want exhaustive
	robust.ClassPanic:           "bug",
	robust.ClassCanceled:        "deadline",
	robust.ClassTooManyFailures: "degenerate",
	robust.ClassNotConverged:    "numeric",
	robust.ClassIllConditioned:  "numeric",
	robust.ClassNonFinite:       "numeric",
	robust.ClassInvariant:       "model",
}

// completeLabels names the whole taxonomy.
var completeLabels = map[robust.Class]string{
	robust.ClassPanic:           "bug",
	robust.ClassCanceled:        "deadline",
	robust.ClassTooManyFailures: "degenerate",
	robust.ClassNotConverged:    "numeric",
	robust.ClassIllConditioned:  "numeric",
	robust.ClassNonFinite:       "numeric",
	robust.ClassInvariant:       "model",
	robust.ClassOther:           "unknown",
}

// CountThings exercises the counter-name vocabulary at both call shapes.
func CountThings(ctx context.Context, tr *obs.Tracer) {
	obs.Count(ctx, obs.CtrRetries, 1)
	obs.Count(ctx, "serve.requets", 1) // want exhaustive
	tr.Count(obs.CtrCacheHits, 1)
	tr.Count("cache.hit", 1) // want exhaustive
	// The parametric fast-path counters are vocabulary like any other —
	// the constants pass, near-miss free-form spellings do not.
	obs.Count(ctx, obs.CtrParametricHits, 1)
	tr.Count(obs.CtrParametricFallbacks, 1)
	obs.Count(ctx, "parametric.hit", 1) // want exhaustive
	// The trace-sampling counters joined the vocabulary with the serve
	// tracer; the singular near-miss is the classic dashboard splitter.
	tr.Count(obs.CtrServeTracesSampled, 1)
	tr.Count(obs.CtrServeTracesDropped, 1)
	obs.Count(ctx, "serve.trace.sampled", 1) // want exhaustive
}

// CountDynamic builds the name at runtime, which is out of scope.
func CountDynamic(ctx context.Context, name string) {
	obs.Count(ctx, name, 1)
}
