// Package ctxflowfix seeds ctxflow violations for the golden lint test.
package ctxflowfix

import "context"

// Dropped accepts a context and silently ignores it.
func Dropped(ctx context.Context, n int) int { // want ctxflow
	return n + 1
}

// FreshRoot forks the cancellation chain with a new root context.
func FreshRoot(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return work(context.Background()) // want ctxflow
}

// NilGuard shows the allowed idiom: the fresh root is assigned to the
// parameter itself, keeping a single chain.
func NilGuard(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return work(ctx)
}

// work consumes the context properly.
func work(ctx context.Context) error { return ctx.Err() }
