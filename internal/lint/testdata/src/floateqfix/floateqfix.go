// Package floateqfix seeds floateq violations for the golden lint test.
package floateqfix

// Close reports whether two solver outputs coincide (badly).
func Close(a, b float64) bool {
	if a == b { // want floateq
		return true
	}
	if a != 0.5 { // want floateq
		return false
	}
	var f32 float32
	if f32 == 1 { // want floateq
		return false
	}
	return a == 0 // exact-zero sentinel: allowed
}
