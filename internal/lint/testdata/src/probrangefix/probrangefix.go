// Package probrangefix seeds probrange violations for the golden lint test.
package probrangefix

import "guardedop/internal/san"

// halfExt mimics a model parameter known at compile time.
const halfExt = 0.5

var (
	badHigh = san.ConstProb(1.5)      // want probrange
	badLow  = san.ConstProb(-0.1)     // want probrange
	badSum  = san.ConstProb(1 + 0.25) // want probrange
	badRate = san.ConstRate(-2)       // want probrange

	okEdge = san.ConstProb(1)
	okZero = san.ConstProb(0)
	okMid  = san.ConstProb(1 - halfExt)
	okRate = san.ConstRate(0)
)
