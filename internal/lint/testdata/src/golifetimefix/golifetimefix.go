// Package golifetimefix seeds golifetime violations for the golden lint test.
package golifetimefix

import (
	"context"
	"sync"
)

// DetachedLoop spawns a goroutine nothing can join or cancel.
func DetachedLoop() {
	go spin() // want golifetime
}

// DetachedLiteral inlines the same leak as a literal.
func DetachedLiteral(n int) {
	go func() { // want golifetime
		for i := 0; i < n; i++ {
			sink = i
		}
	}()
}

// JoinedByWaitGroup is the canonical bounded spawn.
func JoinedByWaitGroup(items []int) int {
	var wg sync.WaitGroup
	total := 0
	var mu sync.Mutex
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total += it
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

// BoundedBySend ties the goroutine to a reader.
func BoundedBySend(v int) <-chan int {
	out := make(chan int, 1)
	go func() {
		out <- v * v
	}()
	return out
}

// BoundedByContext consults cancellation.
func BoundedByContext(ctx context.Context) {
	go func() {
		<-ctx.Done()
		sink = 1
	}()
}

// DelegatedToCallee hands the callee a channel, so the join protocol is
// the callee's documented contract.
func DelegatedToCallee(ch chan int) {
	go pump(ch)
}

// JustifiedDetached demonstrates the escape hatch for a deliberate
// process-lifetime goroutine.
func JustifiedDetached() {
	//lint:ignore golifetime metrics flusher runs for the process lifetime by design
	go spin()
}

// spin is an unbounded worker body.
func spin() {
	for {
		sink++
	}
}

// pump drains its channel and stops when it closes.
func pump(ch chan int) {
	for v := range ch {
		sink = v
	}
}

var sink int
