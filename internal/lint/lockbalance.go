package lint

import (
	"go/ast"
	"go/types"

	"guardedop/internal/lint/cfg"
)

// LockBalancePass checks that sync.Mutex / sync.RWMutex acquisitions are
// balanced on every control-flow path. The two bug shapes it exists for:
//
//   - return-while-held: an early `return err` between Lock and Unlock
//     leaves the mutex locked forever (the cache and coalescer both use
//     the early-unlock-then-return idiom, which is one edit away from
//     this bug);
//   - unlock-while-unheld: an Unlock on a path where no Lock ran, which
//     panics at runtime.
//
// The pass tracks, per lock expression (keyed by its printed receiver,
// with read and write sides of an RWMutex tracked independently), the
// set of possible hold depths along each path. A `defer mu.Unlock()` is
// credited at its push point: a defer pushed on a path is guaranteed to
// run before that path leaves the function, so the exit balance is what
// matters. Both diagnostics fire only on "must" conditions — a return is
// flagged only when every path reaching it holds the lock, an unlock
// only when no path reaching it can hold it — so merge points with
// correlated conditions do not produce noise. Unlock-while-unheld is
// additionally reported only in bodies that also lock the same key,
// which exempts dedicated unlock-helper methods and unlocking closures.
type LockBalancePass struct{}

// Name implements Pass.
func (LockBalancePass) Name() string { return "lockbalance" }

// Doc implements Pass.
func (LockBalancePass) Doc() string {
	return "mutex Lock/Unlock (and RLock/RUnlock) must balance on every path"
}

// maxLockDepth caps tracked recursion: depths beyond it saturate, which
// keeps the fact lattice finite (Go mutexes are not recursive, so real
// code never gets near it).
const maxLockDepth = 4

// lockFact maps a lock key to a bitmask of its possible hold depths
// (bit d set = some path reaches here holding the lock d times). A key
// absent from the map is definitely unheld (mask 1<<0).
type lockFact map[string]uint8

func (f lockFact) clone() lockFact {
	out := make(lockFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func (f lockFact) mask(key string) uint8 {
	if m, ok := f[key]; ok {
		return m
	}
	return 1 << 0
}

// lockOp is one Lock/Unlock-family call found in a CFG node.
type lockOp struct {
	key     string // receiver expr + "/r" or "/w"
	acquire bool
	call    *ast.CallExpr
}

// Run implements Pass.
func (p LockBalancePass) Run(u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, fb := range funcBodies(u) {
		out = append(out, p.checkBody(u, fb)...)
	}
	return out
}

func (p LockBalancePass) checkBody(u *Unit, fb funcBody) []Diagnostic {
	// A body with no lock operations at all is the common case; skip the
	// CFG build entirely.
	locked := make(map[string]bool) // keys acquired somewhere in this body
	anyOp := false
	for _, stmt := range fb.body.List {
		inspectShallow(stmt, func(n ast.Node) bool {
			if op := lockOpOf(u, n); op != nil {
				anyOp = true
				if op.acquire {
					locked[op.key] = true
				}
			}
			return true
		})
	}
	if !anyOp {
		return nil
	}

	var out []Diagnostic
	g := cfg.New(fb.body)
	res := cfg.Forward(g, cfg.Analysis{
		Entry: lockFact{},
		Transfer: func(n ast.Node, in any) any {
			fact := in.(lockFact)
			var next lockFact
			inspectShallow(n, func(m ast.Node) bool {
				op := lockOpOf(u, m)
				if op == nil {
					return true
				}
				if next == nil {
					next = fact.clone()
				}
				mask := next.mask(op.key)
				if op.acquire {
					shifted := mask << 1
					if mask&(1<<maxLockDepth) != 0 {
						shifted |= 1 << maxLockDepth // saturate
					}
					next[op.key] = shifted & ((1 << (maxLockDepth + 1)) - 1)
				} else {
					shifted := mask >> 1
					if mask&1 != 0 {
						shifted |= 1 // unlocking while unheld stays unheld
					}
					next[op.key] = shifted
				}
				return true
			})
			if next != nil {
				return next
			}
			return fact
		},
		Join: func(a, b any) any {
			af, bf := a.(lockFact), b.(lockFact)
			out := af.clone()
			for k, v := range bf {
				out[k] = out.mask(k) | v
			}
			for k := range af {
				if _, ok := bf[k]; !ok {
					out[k] = out.mask(k) | 1<<0
				}
			}
			return out
		},
		Equal: func(a, b any) bool {
			af, bf := a.(lockFact), b.(lockFact)
			keys := make(map[string]bool, len(af)+len(bf))
			for k := range af {
				keys[k] = true
			}
			for k := range bf {
				keys[k] = true
			}
			for k := range keys {
				if af.mask(k) != bf.mask(k) {
					return false
				}
			}
			return true
		},
	})

	res.Visit(g, func(n ast.Node, before any) {
		fact := before.(lockFact)
		switch n.(type) {
		case *ast.ReturnStmt, *cfg.ImplicitReturn:
			for key, mask := range fact {
				if mask != 0 && mask&1 == 0 {
					out = append(out, diag(u, n.Pos(), p.Name(),
						"%s is still held on this return: every path from its Lock must reach an Unlock (or defer one)", keyLabel(key)))
				}
			}
			return
		}
		inspectShallow(n, func(m ast.Node) bool {
			op := lockOpOf(u, m)
			if op == nil || op.acquire {
				return true
			}
			if fact.mask(op.key) == 1<<0 && locked[op.key] {
				out = append(out, diag(u, op.call.Pos(), p.Name(),
					"%s cannot be held here: this unlock runs on a path with no matching Lock and would panic", keyLabel(op.key)))
			}
			// Within a multi-op node the fact is stale after the first op,
			// but nodes are single statements, so at most one op each in
			// practice; stop after the first to stay sound.
			return true
		})
	})
	return out
}

// keyLabel renders a lock key for a diagnostic: "mu" or "s.mu (read side)".
func keyLabel(key string) string {
	expr := key[:len(key)-2]
	if key[len(key)-1] == 'r' {
		return expr + " (read side)"
	}
	return expr
}

// lockOpOf recognizes mu.Lock / mu.Unlock / mu.RLock / mu.RUnlock where
// the method is sync.Mutex's or sync.RWMutex's (including promoted
// embedded fields), and returns the op keyed by the receiver's printed
// form plus the read/write side. TryLock/TryRLock are ignored: their
// success is a runtime value no path-insensitive key can model.
func lockOpOf(u *Unit, n ast.Node) *lockOp {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := u.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	ptr, ok := recv.Type().(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return nil
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return nil
	}
	var acquire bool
	var side string
	switch fn.Name() {
	case "Lock":
		acquire, side = true, "w"
	case "Unlock":
		acquire, side = false, "w"
	case "RLock":
		acquire, side = true, "r"
	case "RUnlock":
		acquire, side = false, "r"
	default:
		return nil
	}
	return &lockOp{key: types.ExprString(sel.X) + "/" + side, acquire: acquire, call: call}
}
