package lint

import (
	"go/ast"

	"guardedop/internal/lint/cfg"
)

// funcBody is one analyzable function body: a top-level declaration or a
// function literal. The flow-sensitive passes build one CFG per body and
// analyze each independently — a literal's paths are its own, not its
// enclosing function's.
type funcBody struct {
	// decl is the enclosing top-level declaration (for diagnostics and
	// test-file filtering); nil only for package-level literals.
	decl *ast.FuncDecl
	// lit is the literal itself when the body belongs to one.
	lit *ast.FuncLit
	// body is the block to analyze.
	body *ast.BlockStmt
}

// funcBodies enumerates every function body of the unit's non-test files:
// each FuncDecl body and, separately, each FuncLit body (at any nesting
// depth), so no statement is analyzed under two different CFGs.
func funcBodies(u *Unit) []funcBody {
	var out []funcBody
	for _, f := range u.Files {
		if isTestFile(u, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, funcBody{decl: fd, body: fd.Body})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					out = append(out, funcBody{decl: fd, lit: lit, body: lit.Body})
				}
				return true
			})
		}
	}
	return out
}

// inspectShallow walks n like ast.Inspect but does not descend into
// nested function literals: a CFG node's effects are its own statements',
// not those of closures it merely creates. Synthetic cfg nodes (which are
// not part of the go/ast node taxonomy) are skipped entirely.
func inspectShallow(n ast.Node, f func(ast.Node) bool) {
	if _, ok := n.(*cfg.ImplicitReturn); ok {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return f(m)
	})
}
