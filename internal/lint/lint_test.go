package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// loadFixture loads one seeded-violation package from testdata/src.
func loadFixture(t *testing.T, name string) []*Unit {
	t.Helper()
	units, err := Load(".", "./testdata/src/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return units
}

// expectation is one "// want <rule>" marker in a fixture file.
type expectation struct {
	file string
	line int
	rule string
}

func (e expectation) String() string {
	return fmt.Sprintf("%s:%d: %s", filepath.Base(e.file), e.line, e.rule)
}

// wantRe matches "// want rule1 rule2 ...": one marker may expect
// several rules when a single line violates more than one.
var wantRe = regexp.MustCompile(`// want ((?:\S+ ?)+)`)

// scanWants extracts the expectations seeded in the fixture sources.
func scanWants(t *testing.T, dir string) []expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []expectation
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if m := wantRe.FindStringSubmatch(sc.Text()); m != nil {
				for _, rule := range strings.Fields(m[1]) {
					out = append(out, expectation{file: e.Name(), line: line, rule: rule})
				}
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestGoldenFixtures checks, for every rule, that the seeded violations are
// reported at exactly the expected file/line and that nothing else is.
func TestGoldenFixtures(t *testing.T) {
	fixtures := []string{
		"errcheckfix", "floateqfix", "libpanicfix", "ctxflowfix", "probrangefix",
		"ctxcancelfix", "lockbalancefix", "golifetimefix", "exhaustivefix",
	}
	for _, name := range fixtures {
		t.Run(name, func(t *testing.T) {
			units := loadFixture(t, name)
			diags := Run(units, AllPasses())

			var got []expectation
			for _, d := range diags {
				got = append(got, expectation{
					file: filepath.Base(d.Pos.Filename),
					line: d.Pos.Line,
					rule: d.Rule,
				})
			}
			want := scanWants(t, filepath.Join("testdata", "src", name))
			sortExp := func(s []expectation) {
				sort.Slice(s, func(i, j int) bool {
					a, b := s[i], s[j]
					if a.file != b.file {
						return a.file < b.file
					}
					if a.line != b.line {
						return a.line < b.line
					}
					return a.rule < b.rule
				})
			}
			sortExp(got)
			sortExp(want)
			if len(want) == 0 {
				t.Fatalf("fixture %s seeds no expectations", name)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("diagnostics mismatch\n got: %v\nwant: %v", got, want)
			}
		})
	}
}

// TestMalformedDirective checks that a //lint:ignore without a reason is
// itself reported (and, being malformed, suppresses nothing).
func TestMalformedDirective(t *testing.T) {
	units := loadFixture(t, "directivefix")
	diags := Run(units, AllPasses())
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Rule != "lint-directive" || filepath.Base(d.Pos.Filename) != "directivefix.go" || d.Pos.Line != 6 {
		t.Errorf("got %v, want lint-directive at directivefix.go:6", d)
	}
}

func TestSelectPasses(t *testing.T) {
	all, err := SelectPasses("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 9 {
		t.Fatalf("got %d passes, want 9", len(all))
	}
	two, err := SelectPasses("floateq, errcheck")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 {
		t.Fatalf("got %d passes, want 2", len(two))
	}
	if _, err := SelectPasses("nosuchrule"); err == nil {
		t.Fatal("unknown rule not rejected")
	}
	if _, err := SelectPasses(" , "); err == nil {
		t.Fatal("empty selection not rejected")
	}
}

// TestRuleDocs keeps every pass self-describing: names are non-empty,
// unique, and lowercase (they double as //lint:ignore keys).
func TestRuleDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range AllPasses() {
		name := p.Name()
		if name == "" || p.Doc() == "" {
			t.Errorf("pass %T lacks a name or doc", p)
		}
		if seen[name] {
			t.Errorf("duplicate rule name %q", name)
		}
		seen[name] = true
		if name != strings.ToLower(name) || strings.ContainsAny(name, " \t") {
			t.Errorf("rule name %q not a lowercase token", name)
		}
	}
}
