package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"guardedop/internal/lint/cfg"
)

// CtxCancelPass proves, path-sensitively, that every cancel function
// returned by context.WithCancel / WithTimeout / WithDeadline (and their
// Cause variants) is invoked on every path from its creation to a
// return. A forgotten cancel leaks the context's timer and goroutine
// until the parent dies — in the serving layer that parent is the server
// lifetime, so one missed early return turns every shed request into a
// permanent goroutine. The old AST-local rules could not see this; the
// pass runs a must-cancel dataflow over the package cfg engine.
//
// A `defer cancel()` counts as cancellation at its push point: a
// deferred call pushed on a path is guaranteed to run when that path
// leaves the function. A defer inside a conditional or a loop therefore
// only covers the paths that actually execute it — exactly the flight
// -lifetime bug class this rule exists for.
//
// Assigning the cancel func to the blank identifier is reported
// outright. A cancel func that escapes the function — stored in a
// struct, passed as an argument, returned, or captured by a closure — is
// assumed to be someone else's responsibility and is not tracked
// (reporting it would second-guess deliberate lifecycle handoffs like
// the server's shutdown cancel).
type CtxCancelPass struct{}

// Name implements Pass.
func (CtxCancelPass) Name() string { return "ctxcancel" }

// Doc implements Pass.
func (CtxCancelPass) Doc() string {
	return "context cancel funcs must be called (or deferred) on every path to return"
}

// cancelFact is the dataflow fact: the set of cancel-func objects that
// are live (created on this path and not yet canceled). May-analysis:
// join is union, so a variable canceled on only one arm stays live.
type cancelFact map[types.Object]bool

func (f cancelFact) clone() cancelFact {
	out := make(cancelFact, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

// Run implements Pass.
func (p CtxCancelPass) Run(u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, fb := range funcBodies(u) {
		out = append(out, p.checkBody(u, fb)...)
	}
	return out
}

// cancelVar is one tracked cancel function variable.
type cancelVar struct {
	obj     types.Object
	created token.Pos // the context.With* call position
	fn      string    // "WithCancel", ... for the message
}

// checkBody analyzes one function body.
func (p CtxCancelPass) checkBody(u *Unit, fb funcBody) []Diagnostic {
	var out []Diagnostic

	// Pass 1: find cancel-creating assignments directly in this body.
	vars := make(map[types.Object]*cancelVar)
	for _, stmt := range bodyStmts(fb.body) {
		inspectShallow(stmt, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
				return true
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := contextWithFunc(u, call)
			if fn == "" {
				return true
			}
			id, ok := as.Lhs[1].(*ast.Ident)
			if !ok {
				return true
			}
			if id.Name == "_" {
				out = append(out, diag(u, call.Pos(), p.Name(),
					"the cancel function returned by context.%s is discarded: a context without its cancel leaks until the parent dies", fn))
				return true
			}
			obj := u.Info.Defs[id]
			if obj == nil {
				obj = u.Info.Uses[id]
			}
			if obj != nil {
				vars[obj] = &cancelVar{obj: obj, created: call.Pos(), fn: fn}
			}
			return true
		})
	}
	if len(vars) == 0 {
		return out
	}

	// Pass 2: drop variables that escape. Any use that is not the callee
	// of a direct call in *this* body (or the defining assignment) hands
	// the cancel to someone else — including captures by nested literals.
	calls := directCancelCalls(fb.body, u, vars)
	ast.Inspect(fb.body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := u.Info.Uses[id]
		if obj == nil {
			return true
		}
		if _, tracked := vars[obj]; tracked && !calls[id] {
			delete(vars, obj)
		}
		return true
	})
	if len(vars) == 0 {
		return out
	}

	// Pass 3: must-cancel dataflow over the CFG.
	g := cfg.New(fb.body)
	res := cfg.Forward(g, cfg.Analysis{
		Entry: cancelFact{},
		Transfer: func(n ast.Node, in any) any {
			fact := in.(cancelFact)
			var next cancelFact
			mutate := func() cancelFact {
				if next == nil {
					next = fact.clone()
				}
				return next
			}
			inspectShallow(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.AssignStmt:
					if len(m.Rhs) == 1 && len(m.Lhs) == 2 {
						if call, ok := ast.Unparen(m.Rhs[0]).(*ast.CallExpr); ok && contextWithFunc(u, call) != "" {
							if id, ok := m.Lhs[1].(*ast.Ident); ok {
								if obj := objOf(u, id); obj != nil {
									if _, tracked := vars[obj]; tracked {
										mutate()[obj] = true
									}
								}
							}
						}
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok {
						if obj := u.Info.Uses[id]; obj != nil {
							if _, tracked := vars[obj]; tracked {
								delete(mutate(), obj)
							}
						}
					}
				}
				return true
			})
			if next != nil {
				return next
			}
			return fact
		},
		Join: func(a, b any) any {
			af, bf := a.(cancelFact), b.(cancelFact)
			out := af.clone()
			for k := range bf {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b any) bool {
			af, bf := a.(cancelFact), b.(cancelFact)
			if len(af) != len(bf) {
				return false
			}
			for k := range af {
				if !bf[k] {
					return false
				}
			}
			return true
		},
	})

	// Any return reached with a live cancel is a leak. Report once per
	// variable, at the creation site, naming the first offending return.
	reported := make(map[types.Object]bool)
	res.Visit(g, func(n ast.Node, before any) {
		switch n.(type) {
		case *ast.ReturnStmt, *cfg.ImplicitReturn:
		default:
			return
		}
		fact := before.(cancelFact)
		for obj := range fact {
			v := vars[obj]
			if v == nil || reported[obj] {
				continue
			}
			reported[obj] = true
			out = append(out, diag(u, v.created, p.Name(),
				"%s's cancel function is not called on the path returning at line %d: call it or defer it on every path",
				"context."+v.fn, u.Fset.Position(n.Pos()).Line))
		}
	})
	return out
}

// bodyStmts returns the body's statements for shallow scanning.
func bodyStmts(body *ast.BlockStmt) []ast.Stmt { return body.List }

// directCancelCalls finds the identifiers of tracked cancel vars that
// appear as the callee of a direct call (or deferred call) in the body,
// outside nested function literals.
func directCancelCalls(body *ast.BlockStmt, u *Unit, vars map[types.Object]*cancelVar) map[*ast.Ident]bool {
	calls := make(map[*ast.Ident]bool)
	for _, stmt := range body.List {
		inspectShallow(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if obj := u.Info.Uses[id]; obj != nil {
				if _, tracked := vars[obj]; tracked {
					calls[id] = true
				}
			}
			return true
		})
	}
	return calls
}

// objOf resolves an identifier to its object, definition or use.
func objOf(u *Unit, id *ast.Ident) types.Object {
	if obj := u.Info.Defs[id]; obj != nil {
		return obj
	}
	return u.Info.Uses[id]
}

// contextWithFunc returns the bare name ("WithCancel", "WithTimeout",
// "WithDeadline", or a Cause variant) when call is one of the
// cancel-returning context constructors, and "" otherwise.
func contextWithFunc(u *Unit, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := u.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	switch fn.Name() {
	case "WithCancel", "WithTimeout", "WithDeadline",
		"WithCancelCause", "WithTimeoutCause", "WithDeadlineCause":
		return fn.Name()
	}
	return ""
}
