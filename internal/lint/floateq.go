package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEqPass flags == and != between floating-point operands. Solver
// results carry rounding error by construction, so exact comparison is
// almost always a latent bug — the repo's numeric guards compare against
// tolerances instead.
//
// One comparison survives: testing against an exact constant zero. Zero is
// the sentinel this codebase uses for "feature disabled" / "no mass on
// this case" (rates and probabilities are set to literal 0, never computed
// to it), and 0 is exactly representable, so `x == 0` is well defined.
// Every other constant (including 1, which solvers only approach) must use
// a tolerance or carry a //lint:ignore with justification.
type FloatEqPass struct{}

// Name implements Pass.
func (FloatEqPass) Name() string { return "floateq" }

// Doc implements Pass.
func (FloatEqPass) Doc() string {
	return "no == / != on floating-point operands (exact-zero sentinel checks excepted)"
}

// Run implements Pass.
func (p FloatEqPass) Run(u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, f := range u.Files {
		if isTestFile(u, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(u, be.X) && !isFloat(u, be.Y) {
				return true
			}
			if isExactZero(u, be.X) || isExactZero(u, be.Y) {
				return true
			}
			out = append(out, diag(u, be.OpPos, p.Name(),
				"floating-point %s comparison: use a tolerance (or compare to an exact 0 sentinel)", be.Op))
			return true
		})
	}
	return out
}

// isFloat reports whether e has floating-point type.
func isFloat(u *Unit, e ast.Expr) bool {
	tv, ok := u.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isExactZero reports whether e is a compile-time constant equal to zero.
func isExactZero(u *Unit, e ast.Expr) bool {
	tv, ok := u.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
}
