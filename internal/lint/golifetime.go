package lint

import (
	"go/ast"
	"go/types"
)

// GoLifetimePass requires every `go` statement in a library package to
// carry a visible termination signal. A goroutine nothing can join or
// cancel outlives the request (or the test, or the batch) that spawned
// it; under the daemon it accumulates until the process dies. The pass
// does not try to prove termination — that is undecidable — it checks
// for the idioms that make a lifetime auditable:
//
//   - the goroutine body calls Done on a sync.WaitGroup (someone Waits),
//   - the goroutine body touches a channel — send, receive, close, or a
//     range over one — tying it to a peer that can unblock or drain it,
//   - the goroutine body consults a context (ctx.Done, ctx.Err), so
//     cancellation reaches it; or
//   - a named callee is handed a channel, *sync.WaitGroup, or
//     context.Context argument, delegating one of the above.
//
// A deliberate detached goroutine (a process-lifetime acceptor loop, for
// instance) is fine — but it must say so with a
// `//lint:ignore golifetime <reason>` so the justification is in the
// diff, not in somebody's head. Commands are exempt: a main package's
// goroutines die with the process by construction.
type GoLifetimePass struct{}

// Name implements Pass.
func (GoLifetimePass) Name() string { return "golifetime" }

// Doc implements Pass.
func (GoLifetimePass) Doc() string {
	return "library goroutines must have a bounded lifetime (WaitGroup, channel, or context)"
}

// Run implements Pass.
func (p GoLifetimePass) Run(u *Unit) []Diagnostic {
	if u.IsCommand {
		return nil
	}
	var out []Diagnostic
	for _, f := range u.Files {
		if isTestFile(u, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !p.bounded(u, gs.Call) {
				out = append(out, diag(u, gs.Pos(), p.Name(),
					"goroutine has no visible termination signal (WaitGroup.Done, channel op, or context check): join it, make it cancelable, or justify it with //lint:ignore golifetime <reason>"))
			}
			return true
		})
	}
	return out
}

// bounded reports whether the spawned call carries a lifetime signal.
func (p GoLifetimePass) bounded(u *Unit, call *ast.CallExpr) bool {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return bodyHasLifetimeSignal(u, lit)
	}
	// Named callee: a lifetime-bearing argument delegates the signal.
	for _, arg := range call.Args {
		if tv, ok := u.Info.Types[arg]; ok && isLifetimeType(tv.Type) {
			return true
		}
	}
	// A method whose receiver is itself a channel-ish value is out of
	// scope; the receiver expression is part of Fun, so check its base.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := u.Info.Types[sel.X]; ok && isLifetimeType(tv.Type) {
			return true
		}
	}
	return false
}

// bodyHasLifetimeSignal scans a goroutine literal's body (including its
// nested literals — a signal handled by an inner closure the goroutine
// runs still bounds it) for any of the recognised idioms.
func bodyHasLifetimeSignal(u *Unit, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := u.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "close" && u.Info.Uses[fun] == types.Universe.Lookup("close") {
					found = true
				}
			case *ast.SelectorExpr:
				if isLifetimeMethod(u, fun) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isLifetimeMethod reports whether sel is WaitGroup.Done/Wait or a
// context's Done/Err — the method forms of the termination idioms.
func isLifetimeMethod(u *Unit, sel *ast.SelectorExpr) bool {
	fn, ok := u.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sync":
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil {
			return false
		}
		if ptr, ok := recv.Type().(*types.Pointer); ok {
			if named, ok := ptr.Elem().(*types.Named); ok && named.Obj().Name() == "WaitGroup" {
				return fn.Name() == "Done" || fn.Name() == "Wait"
			}
		}
	case "context":
		return fn.Name() == "Done" || fn.Name() == "Err"
	}
	return false
}

// isLifetimeType reports whether t is a channel, *sync.WaitGroup, or
// context.Context — the types whose possession implies a join/cancel
// protocol with the spawner.
func isLifetimeType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() == nil {
			return false
		}
		switch {
		case obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup":
			return true
		case obj.Pkg().Path() == "context" && obj.Name() == "Context":
			return true
		}
	}
	return false
}
