package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// robustPkgPath and obsPkgPath locate the two vocabulary-bearing
// packages. The pass reads both vocabularies out of type-checked export
// data, so it needs no compile-time dependency on either package and
// works identically whether the linted unit is the package itself or an
// importer.
const (
	robustPkgPath = "guardedop/internal/robust"
	obsPkgPath    = "guardedop/internal/obs"
)

// ExhaustivePass keeps the repository's two closed vocabularies closed:
//
//   - the robustness error taxonomy (robust.Class): a switch over a
//     Class-typed value with no default clause, and any Class-keyed map
//     literal, must name every Class constant. The HTTP status table is
//     the motivating site — a class added to the taxonomy without a
//     deliberate status entry would silently fall through to 500, and
//     the runtime table test only catches it when tests run; this pass
//     catches it at lint time with the line of the incomplete literal.
//   - the observability counter vocabulary (obs.Ctr*): a constant
//     counter name handed to obs.Count or (*obs.Tracer).Count must be
//     the value of one of the Ctr constants. Free-form names fragment
//     dashboards — "cache.hit" and "cache.hits" chart as two series.
//     Dynamically built names (fields, parameters) are out of scope.
//
// Both vocabularies are discovered from the constants the type-checker
// sees, so extending one is a single const addition — the pass follows.
type ExhaustivePass struct{}

// Name implements Pass.
func (ExhaustivePass) Name() string { return "exhaustive" }

// Doc implements Pass.
func (ExhaustivePass) Doc() string {
	return "robust.Class switches/maps must cover the taxonomy; counter names must be obs.Ctr* values"
}

// Run implements Pass.
func (p ExhaustivePass) Run(u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, f := range u.Files {
		if isTestFile(u, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				out = append(out, p.checkSwitch(u, n)...)
			case *ast.CompositeLit:
				out = append(out, p.checkMapLit(u, n)...)
			case *ast.CallExpr:
				out = append(out, p.checkCounterName(u, n)...)
			}
			return true
		})
	}
	return out
}

// checkSwitch reports taxonomy classes missing from a Class-typed switch
// that has no default clause.
func (p ExhaustivePass) checkSwitch(u *Unit, sw *ast.SwitchStmt) []Diagnostic {
	if sw.Tag == nil {
		return nil
	}
	tv, ok := u.Info.Types[sw.Tag]
	if !ok || !isRobustClass(tv.Type) {
		return nil
	}
	vocab := classVocabulary(tv.Type)
	if vocab == nil {
		return nil
	}
	seen := make(map[string]bool)
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return nil // default clause: the remainder is handled deliberately
		}
		for _, e := range cc.List {
			if v, ok := constStringOf(u, e); ok {
				seen[v] = true
			}
		}
	}
	missing := missingFrom(vocab, seen)
	if len(missing) == 0 {
		return nil
	}
	return []Diagnostic{diag(u, sw.Switch, p.Name(),
		"switch over robust.Class does not cover: %s (add the cases or a deliberate default)",
		strings.Join(missing, ", "))}
}

// checkMapLit reports taxonomy classes missing from a Class-keyed map
// literal. Unlike a switch there is no default to hide behind: the map
// either names the whole taxonomy or some class falls through whatever
// lookup-miss path the caller wrote.
func (p ExhaustivePass) checkMapLit(u *Unit, lit *ast.CompositeLit) []Diagnostic {
	tv, ok := u.Info.Types[lit]
	if !ok {
		return nil
	}
	m, ok := tv.Type.Underlying().(*types.Map)
	if !ok || !isRobustClass(m.Key()) {
		return nil
	}
	vocab := classVocabulary(m.Key())
	if vocab == nil {
		return nil
	}
	seen := make(map[string]bool)
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if v, ok := constStringOf(u, kv.Key); ok {
			seen[v] = true
		}
	}
	missing := missingFrom(vocab, seen)
	if len(missing) == 0 {
		return nil
	}
	return []Diagnostic{diag(u, lit.Pos(), p.Name(),
		"robust.Class-keyed map literal is missing: %s", strings.Join(missing, ", "))}
}

// checkCounterName reports constant counter names outside the obs.Ctr*
// vocabulary at obs.Count / (*obs.Tracer).Count call sites.
func (p ExhaustivePass) checkCounterName(u *Unit, call *ast.CallExpr) []Diagnostic {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := u.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Count" || fn.Pkg() == nil || fn.Pkg().Path() != obsPkgPath {
		return nil
	}
	// Package function Count(ctx, name, delta) carries the name second;
	// the Tracer method Count(name, delta) carries it first.
	argIdx := 1
	if fn.Type().(*types.Signature).Recv() != nil {
		argIdx = 0
	}
	if len(call.Args) <= argIdx {
		return nil
	}
	name, ok := constStringOf(u, call.Args[argIdx])
	if !ok {
		return nil // dynamically built name: out of scope
	}
	vocab := ctrVocabulary(fn.Pkg())
	if vocab == nil || vocab[name] {
		return nil
	}
	return []Diagnostic{diag(u, call.Args[argIdx].Pos(), p.Name(),
		"counter name %q is not the value of any obs.Ctr* constant: add one to the vocabulary or reuse an existing counter", name)}
}

// isRobustClass reports whether t is the named type robust.Class.
func isRobustClass(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Class" && obj.Pkg() != nil && obj.Pkg().Path() == robustPkgPath
}

// classVocabulary enumerates the string values of every Class-typed
// constant in the robust package's scope, reading the same export data
// the type-checker used.
func classVocabulary(classType types.Type) map[string]bool {
	named, ok := classType.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	scope := named.Obj().Pkg().Scope()
	vocab := make(map[string]bool)
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), classType) {
			continue
		}
		if c.Val().Kind() == constant.String {
			vocab[constant.StringVal(c.Val())] = true
		}
	}
	if len(vocab) == 0 {
		return nil
	}
	return vocab
}

// ctrVocabulary enumerates the string values of the obs package's Ctr*
// constants.
func ctrVocabulary(pkg *types.Package) map[string]bool {
	scope := pkg.Scope()
	vocab := make(map[string]bool)
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Ctr") {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.String {
			continue
		}
		vocab[constant.StringVal(c.Val())] = true
	}
	if len(vocab) == 0 {
		return nil
	}
	return vocab
}

// constStringOf resolves e to its compile-time string value, if it has one.
func constStringOf(u *Unit, e ast.Expr) (string, bool) {
	tv, ok := u.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// missingFrom returns vocab's entries absent from seen, sorted.
func missingFrom(vocab, seen map[string]bool) []string {
	var out []string
	for v := range vocab {
		if !seen[v] {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}
