package benchreg

import (
	"strings"
	"testing"
)

// baseline builds a two-benchmark report the compare tests doctor.
func baseline() *Report {
	rep := NewReport(1)
	rep.Results = []Result{
		{
			Name:     "grid",
			Runs:     3,
			Wall:     Wall{MinNanos: 900, MedianNanos: 1000, MaxNanos: 1100},
			Counters: map[string]int64{"ctmc.solve_passes": 98, "parametric.hits": 50},
			Rules:    map[string]Rule{"parametric.hits": {Op: "ge", Value: 50}},
		},
		{
			Name:     "serve",
			Runs:     3,
			Wall:     Wall{MinNanos: 90, MedianNanos: 100, MaxNanos: 110},
			Counters: map[string]int64{"serve.requests": 256},
			Rules:    map[string]Rule{"serve.requests": {Op: "eq", Value: 256}},
		},
	}
	return rep
}

func failsOfKind(diffs []Diff, kind string) int {
	n := 0
	for _, d := range diffs {
		if d.Kind == kind && d.Fail {
			n++
		}
	}
	return n
}

func TestCompareIdenticalReportsClean(t *testing.T) {
	diffs := Compare(baseline(), baseline(), 0)
	if len(diffs) != 0 {
		t.Fatalf("identical reports produced diffs: %v", diffs)
	}
	if Failed(diffs) {
		t.Fatal("Failed(empty) = true")
	}
}

func TestCompareCounterRegressionFails(t *testing.T) {
	new := baseline()
	new.Result("grid").Counters["ctmc.solve_passes"] = 120 // cost counter up

	diffs := Compare(baseline(), new, 0)
	if failsOfKind(diffs, "counter-regression") != 1 || !Failed(diffs) {
		t.Fatalf("injected regression not gated: %v", diffs)
	}
}

func TestCompareCounterImprovementIsNote(t *testing.T) {
	new := baseline()
	new.Result("grid").Counters["ctmc.solve_passes"] = 50 // cost counter down

	diffs := Compare(baseline(), new, 0)
	if Failed(diffs) {
		t.Fatalf("improvement gated as failure: %v", diffs)
	}
	if failsOfKind(diffs, "counter-improvement") != 0 {
		t.Fatalf("improvement marked Fail: %v", diffs)
	}
	found := false
	for _, d := range diffs {
		if d.Kind == "counter-improvement" {
			found = true
		}
	}
	if !found {
		t.Fatalf("improvement not noted: %v", diffs)
	}
}

func TestCompareGeRuleFlipsDirection(t *testing.T) {
	// parametric.hits carries a ge rule: it counts useful work, so a
	// DECREASE regresses and an increase improves.
	down := baseline()
	down.Result("grid").Counters["parametric.hits"] = 10
	if diffs := Compare(baseline(), down, 0); failsOfKind(diffs, "counter-regression") != 1 {
		t.Fatalf("ge-counter decrease not gated: %v", diffs)
	}

	up := baseline()
	up.Result("grid").Counters["parametric.hits"] = 60
	if diffs := Compare(baseline(), up, 0); Failed(diffs) {
		t.Fatalf("ge-counter increase gated: %v", diffs)
	}
}

func TestCompareEqRuleGatesAnyChange(t *testing.T) {
	for _, v := range []int64{255, 257} {
		new := baseline()
		new.Result("serve").Counters["serve.requests"] = v
		if diffs := Compare(baseline(), new, 0); failsOfKind(diffs, "counter-regression") != 1 {
			t.Fatalf("eq-counter change to %d not gated: %v", v, diffs)
		}
	}
}

func TestCompareWallTolerance(t *testing.T) {
	slower := baseline()
	slower.Result("grid").Wall.MedianNanos = 1600 // +60% > default 50%
	diffs := Compare(baseline(), slower, 0)
	if failsOfKind(diffs, "wall-regression") != 1 {
		t.Fatalf("+60%% wall not gated at default tolerance: %v", diffs)
	}

	// The same report passes under a wider band.
	if diffs := Compare(baseline(), slower, 0.75); Failed(diffs) {
		t.Fatalf("+60%% wall gated at 75%% tolerance: %v", diffs)
	}

	faster := baseline()
	faster.Result("grid").Wall.MedianNanos = 200
	diffs = Compare(baseline(), faster, 0)
	if Failed(diffs) {
		t.Fatalf("wall improvement gated: %v", diffs)
	}
	if failsOfKind(diffs, "wall-improvement") != 0 {
		t.Fatalf("wall improvement marked Fail: %v", diffs)
	}
}

func TestCompareMissingAndAddedBenchmarks(t *testing.T) {
	new := baseline()
	new.Results = new.Results[:1] // drop "serve"
	new.Results = append(new.Results, Result{Name: "fresh", Counters: map[string]int64{"n": 1}})

	diffs := Compare(baseline(), new, 0)
	if failsOfKind(diffs, "missing") != 1 {
		t.Fatalf("dropped benchmark not gated: %v", diffs)
	}
	added := 0
	for _, d := range diffs {
		if d.Kind == "added" {
			added++
			if d.Fail {
				t.Fatalf("added benchmark gated: %v", d)
			}
		}
	}
	if added != 1 {
		t.Fatalf("added benchmark not noted: %v", diffs)
	}
}

func TestCompareCounterDriftIsNote(t *testing.T) {
	new := baseline()
	delete(new.Result("grid").Counters, "parametric.hits")
	new.Result("grid").Counters["brand.new"] = 4

	diffs := Compare(baseline(), new, 0)
	if Failed(diffs) {
		t.Fatalf("counter drift gated: %v", diffs)
	}
	drift := 0
	for _, d := range diffs {
		if d.Kind == "counter-drift" {
			drift++
		}
	}
	if drift != 2 {
		t.Fatalf("want 2 drift notes (disappeared + new), got %v", diffs)
	}
}

func TestDiffString(t *testing.T) {
	fail := Diff{Benchmark: "grid", Kind: "counter-regression", Detail: "x", Fail: true}
	if s := fail.String(); !strings.HasPrefix(s, "[FAIL] grid") {
		t.Fatalf("Fail diff string = %q", s)
	}
	note := Diff{Benchmark: "grid", Kind: "added", Detail: "x"}
	if s := note.String(); !strings.HasPrefix(s, "[note] grid") {
		t.Fatalf("note diff string = %q", s)
	}
}
