package benchreg

import (
	"context"
	"strings"
	"testing"
)

func TestSuiteNamesUniqueAndPinned(t *testing.T) {
	suite := Suite()
	if len(suite) < 8 {
		t.Fatalf("suite has %d benchmarks, want at least 8", len(suite))
	}
	seen := map[string]bool{}
	for _, b := range suite {
		if b.Name == "" || b.Run == nil {
			t.Fatalf("malformed benchmark: %+v", b)
		}
		if seen[b.Name] {
			t.Fatalf("duplicate benchmark name %q", b.Name)
		}
		seen[b.Name] = true
	}
	for _, want := range []string{
		"grid50.numeric", "grid50.parametric",
		"evaluate.numeric", "evaluate.parametric",
		"template.n3", "template.n8",
		"serve.coalesced", "serve.distinct",
	} {
		if !seen[want] {
			t.Errorf("suite is missing %q", want)
		}
	}
}

// TestSuiteCountersRepeat is the acceptance check behind the whole
// observatory: running the suite twice yields byte-identical
// deterministic-counter sections, and the current build satisfies every
// pinned rule, so Compare over consecutive runs is clean.
func TestSuiteCountersRepeat(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite execution in -short mode")
	}
	run := func() *Report {
		rep, violations, err := Run(context.Background(), Suite(), Options{Runs: 1})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if len(violations) != 0 {
			t.Fatalf("pinned rules violated: %v", violations)
		}
		return rep
	}
	first, second := run(), run()

	diffs := Compare(first, second, 0)
	for _, d := range diffs {
		// Wall-clock notes are legitimate on a noisy runner; any counter
		// finding means a benchmark's counters are not deterministic.
		if strings.HasPrefix(d.Kind, "counter") || d.Fail {
			t.Errorf("back-to-back suite runs differ: %v", d)
		}
	}
}
