// Package benchreg is the continuous performance observatory behind
// cmd/gsubench: a pinned benchmark suite over the repo's hot paths, a
// schema-versioned BENCH_<seq>.json report format, and a regression
// differ.
//
// Each report entry combines two signals with very different noise
// profiles. Wall-clock statistics (min/median/max over repetitions) are
// environment-dependent, so the differ only flags them past a generous
// tolerance band. The deterministic work counters from the trace
// vocabulary (solver passes, parametric hits/fallbacks, template
// instances, coalescing absorption) are exact: the runner re-executes
// every benchmark under a fresh tracer per repetition and refuses to
// report a counter that varies between repetitions, so any change
// between two reports is a real behavioural change — detectable even on
// the noisiest CI runner. See docs/BENCHMARKING.md.
package benchreg
