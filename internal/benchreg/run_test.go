package benchreg

import (
	"context"
	"strings"
	"testing"

	"guardedop/internal/obs"
)

// fakeBench returns a benchmark whose counters come from calling fn on
// the repetition index (0-based).
func fakeBench(name string, rules map[string]Rule, fn func(rep int) map[string]int64) Benchmark {
	rep := 0
	return Benchmark{
		Name:  name,
		Rules: rules,
		Run: func(ctx context.Context, tr *obs.Tracer) (map[string]int64, error) {
			c := fn(rep)
			rep++
			return c, nil
		},
	}
}

func TestRunDeterministicSuite(t *testing.T) {
	benches := []Benchmark{
		fakeBench("a", map[string]Rule{"work": {Op: "eq", Value: 7}},
			func(int) map[string]int64 { return map[string]int64{"work": 7} }),
		fakeBench("b", nil,
			func(int) map[string]int64 { return map[string]int64{"items": 3} }),
	}
	var lines []string
	rep, violations, err := Run(context.Background(), benches, Options{
		Runs:     2,
		Progress: func(format string, args ...any) { lines = append(lines, format) },
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(violations) != 0 {
		t.Fatalf("violations = %v, want none", violations)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(rep.Results))
	}
	a := rep.Result("a")
	if a.Runs != 2 || a.Counters["work"] != 7 {
		t.Fatalf("result a = %+v", a)
	}
	if a.Wall.MinNanos > a.Wall.MedianNanos || a.Wall.MedianNanos > a.Wall.MaxNanos {
		t.Fatalf("wall stats unordered: %+v", a.Wall)
	}
	if len(lines) != 2 {
		t.Fatalf("progress lines = %d, want 2", len(lines))
	}
}

func TestRunRejectsNondeterministicCounters(t *testing.T) {
	benches := []Benchmark{
		fakeBench("flaky", nil, func(rep int) map[string]int64 {
			return map[string]int64{"work": int64(rep)}
		}),
	}
	_, _, err := Run(context.Background(), benches, Options{Runs: 2})
	if err == nil || !strings.Contains(err.Error(), "nondeterministic") {
		t.Fatalf("Run err = %v, want nondeterministic-counter error", err)
	}
}

func TestRunReportsRuleViolations(t *testing.T) {
	benches := []Benchmark{
		fakeBench("pinned", map[string]Rule{
			"work":  {Op: "eq", Value: 98},
			"spill": {Op: "le", Value: 0},
		}, func(int) map[string]int64 {
			return map[string]int64{"work": 99, "spill": 0}
		}),
	}
	rep, violations, err := Run(context.Background(), benches, Options{Runs: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(violations) != 1 || !strings.Contains(violations[0], "work = 99") {
		t.Fatalf("violations = %v, want one about work = 99", violations)
	}
	// The report is still produced: the violation gates the CLI exit
	// code, not the artifact.
	if rep.Result("pinned") == nil {
		t.Fatal("violating benchmark missing from report")
	}
}

func TestRunMatchFilterAndPerBenchRuns(t *testing.T) {
	calls := 0
	benches := []Benchmark{
		{
			Name: "keep.this",
			Runs: 5,
			Run: func(ctx context.Context, tr *obs.Tracer) (map[string]int64, error) {
				calls++
				return map[string]int64{"n": 1}, nil
			},
		},
		fakeBench("drop.this", nil, func(int) map[string]int64 {
			t.Fatal("filtered benchmark ran")
			return nil
		}),
	}
	rep, _, err := Run(context.Background(), benches, Options{
		Runs:  2,
		Match: func(name string) bool { return strings.HasPrefix(name, "keep") },
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Name != "keep.this" {
		t.Fatalf("results = %+v, want only keep.this", rep.Results)
	}
	if calls != 5 {
		t.Fatalf("per-bench Runs override ignored: %d calls, want 5", calls)
	}
}

func TestRunHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Run(ctx, []Benchmark{
		fakeBench("never", nil, func(int) map[string]int64 {
			t.Fatal("benchmark ran under cancelled context")
			return nil
		}),
	}, Options{Runs: 1})
	if err == nil {
		t.Fatal("Run under cancelled context succeeded")
	}
}
