package benchreg

import (
	"fmt"
	"sort"
	"time"
)

// DefaultWallTolerance is the relative wall-clock band within which a
// median change is considered runner noise. CI machines are shared and
// thermally unpredictable; the deterministic counters are the precise
// signal, wall clock only catches order-of-magnitude cliffs.
const DefaultWallTolerance = 0.5

// Diff is one finding of a report comparison.
type Diff struct {
	Benchmark string
	// Kind is one of counter-regression, counter-improvement,
	// counter-drift, wall-regression, wall-improvement, missing, added.
	Kind   string
	Detail string
	// Fail marks findings the CI gate must reject.
	Fail bool
}

func (d Diff) String() string {
	verdict := "note"
	if d.Fail {
		verdict = "FAIL"
	}
	return fmt.Sprintf("[%s] %s %s: %s", verdict, d.Benchmark, d.Kind, d.Detail)
}

// Compare diffs two reports benchmark by benchmark. Deterministic
// counters gate hard: by default a counter is cost-like (lower is
// better), so any increase is a regression; a "ge" rule in the new
// report flips the direction (the counter measures useful work, a
// decrease regresses), and an "eq" rule makes any change a failure.
// Wall-clock medians only fail beyond wallTol (≤0 selects
// DefaultWallTolerance). A benchmark present in old but missing from new
// fails — a silently shrinking suite would read as "no regressions".
func Compare(old, new *Report, wallTol float64) []Diff {
	if wallTol <= 0 {
		wallTol = DefaultWallTolerance
	}
	var diffs []Diff
	for i := range old.Results {
		or := &old.Results[i]
		nr := new.Result(or.Name)
		if nr == nil {
			diffs = append(diffs, Diff{
				Benchmark: or.Name, Kind: "missing", Fail: true,
				Detail: "benchmark present in old report but absent from new",
			})
			continue
		}
		diffs = append(diffs, compareCounters(or, nr)...)
		diffs = append(diffs, compareWall(or, nr, wallTol)...)
	}
	for i := range new.Results {
		nr := &new.Results[i]
		if old.Result(nr.Name) == nil {
			diffs = append(diffs, Diff{
				Benchmark: nr.Name, Kind: "added",
				Detail: "new benchmark, no baseline to compare",
			})
		}
	}
	return diffs
}

// Failed reports whether any finding is gating.
func Failed(diffs []Diff) bool {
	for _, d := range diffs {
		if d.Fail {
			return true
		}
	}
	return false
}

func compareCounters(or *Result, nr *Result) []Diff {
	var diffs []Diff
	keys := make([]string, 0, len(or.Counters))
	for k := range or.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ov := or.Counters[k]
		nv, ok := nr.Counters[k]
		if !ok {
			diffs = append(diffs, Diff{
				Benchmark: nr.Name, Kind: "counter-drift",
				Detail: fmt.Sprintf("counter %s disappeared (was %d)", k, ov),
			})
			continue
		}
		if nv == ov {
			continue
		}
		dir := "le" // default: cost counter, lower is better
		if rule, ok := nr.Rules[k]; ok && (rule.Op == "ge" || rule.Op == "eq") {
			dir = rule.Op
		}
		worse := nv > ov
		if dir == "ge" {
			worse = nv < ov
		}
		detail := fmt.Sprintf("counter %s: %d -> %d", k, ov, nv)
		if dir == "eq" || worse {
			diffs = append(diffs, Diff{Benchmark: nr.Name, Kind: "counter-regression", Detail: detail, Fail: true})
		} else {
			diffs = append(diffs, Diff{Benchmark: nr.Name, Kind: "counter-improvement", Detail: detail})
		}
	}
	for k, nv := range nr.Counters {
		if _, ok := or.Counters[k]; !ok {
			diffs = append(diffs, Diff{
				Benchmark: nr.Name, Kind: "counter-drift",
				Detail: fmt.Sprintf("new counter %s = %d, no baseline", k, nv),
			})
		}
	}
	return diffs
}

func compareWall(or *Result, nr *Result, tol float64) []Diff {
	ov, nv := or.Wall.MedianNanos, nr.Wall.MedianNanos
	if ov <= 0 {
		return nil
	}
	rel := float64(nv-ov) / float64(ov)
	detail := fmt.Sprintf("wall median %v -> %v (%+.0f%%, tolerance ±%.0f%%)",
		time.Duration(ov).Round(time.Microsecond), time.Duration(nv).Round(time.Microsecond),
		rel*100, tol*100)
	switch {
	case rel > tol:
		return []Diff{{Benchmark: nr.Name, Kind: "wall-regression", Detail: detail, Fail: true}}
	case rel < -tol:
		return []Diff{{Benchmark: nr.Name, Kind: "wall-improvement", Detail: detail}}
	default:
		return nil
	}
}
