package benchreg

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReportRoundTrip(t *testing.T) {
	rep := NewReport(3)
	rep.Results = append(rep.Results, Result{
		Name:     "demo",
		Runs:     2,
		Wall:     Wall{MinNanos: 10, MedianNanos: 20, MaxNanos: 30},
		Counters: map[string]int64{"ctmc.solve_passes": 98},
		Rules:    map[string]Rule{"ctmc.solve_passes": {Op: "eq", Value: 98}},
	})

	var buf bytes.Buffer
	if err := Write(&buf, rep); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.SchemaVersion != SchemaVersion || got.Tool != "gsubench" || got.Seq != 3 {
		t.Fatalf("header mismatch: %+v", got)
	}
	r := got.Result("demo")
	if r == nil {
		t.Fatal("Result(demo) = nil")
	}
	if r.Counters["ctmc.solve_passes"] != 98 || r.Wall.MedianNanos != 20 {
		t.Fatalf("body mismatch: %+v", r)
	}
	if rule := r.Rules["ctmc.solve_passes"]; rule.Op != "eq" || rule.Value != 98 {
		t.Fatalf("rules not round-tripped: %+v", r.Rules)
	}
	if got.Result("absent") != nil {
		t.Fatal("Result(absent) should be nil")
	}
}

func TestLoadRejectsForeignDocuments(t *testing.T) {
	cases := map[string]string{
		"wrong schema": `{"schema_version": 99, "tool": "gsubench"}`,
		"wrong tool":   `{"schema_version": 1, "tool": "otherbench"}`,
		"not json":     `BENCH report goes here`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: Load accepted %q", name, doc)
		}
	}
}

func TestRuleCheck(t *testing.T) {
	cases := []struct {
		rule Rule
		v    int64
		want bool
	}{
		{Rule{Op: "eq", Value: 5}, 5, true},
		{Rule{Op: "eq", Value: 5}, 6, false},
		{Rule{Op: "le", Value: 5}, 5, true},
		{Rule{Op: "le", Value: 5}, 6, false},
		{Rule{Op: "ge", Value: 5}, 5, true},
		{Rule{Op: "ge", Value: 5}, 4, false},
		{Rule{Op: "lt", Value: 5}, 4, false}, // unknown op never passes
	}
	for _, c := range cases {
		if got := c.rule.check(c.v); got != c.want {
			t.Errorf("Rule{%s %d}.check(%d) = %v, want %v", c.rule.Op, c.rule.Value, c.v, got, c.want)
		}
	}
}

func TestSeqPathAndNextSeq(t *testing.T) {
	dir := t.TempDir()
	if got := NextSeq(dir); got != 1 {
		t.Fatalf("NextSeq(empty) = %d, want 1", got)
	}
	if got := NextSeq(filepath.Join(dir, "missing")); got != 1 {
		t.Fatalf("NextSeq(missing) = %d, want 1", got)
	}
	if got := LatestPath(dir); got != "" {
		t.Fatalf("LatestPath(empty) = %q, want empty", got)
	}

	for _, seq := range []int{1, 2, 10} {
		if err := WriteFile(SeqPath(dir, seq), NewReport(seq)); err != nil {
			t.Fatalf("WriteFile(seq %d): %v", seq, err)
		}
	}
	// Stray files must not confuse the scan.
	if err := os.WriteFile(filepath.Join(dir, "BENCH_notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	if got := NextSeq(dir); got != 11 {
		t.Fatalf("NextSeq = %d, want 11", got)
	}
	if got, want := LatestPath(dir), SeqPath(dir, 10); got != want {
		t.Fatalf("LatestPath = %q, want %q", got, want)
	}
	rep, err := LoadFile(SeqPath(dir, 10))
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if rep.Seq != 10 {
		t.Fatalf("Seq = %d, want 10", rep.Seq)
	}
}
