package benchreg

import (
	"context"
	"fmt"
	"maps"
	"sort"
	"time"

	"guardedop/internal/obs"
)

// Benchmark is one pinned suite entry. Run executes the workload once
// under a context carrying a fresh tracer and returns the deterministic
// counter section to record — typically a hand-picked, possibly derived
// subset of the tracer's counters (raw counters whose split is
// scheduling-dependent, like coalesced-vs-cache-hit, must be summed into
// a deterministic aggregate before being reported).
type Benchmark struct {
	Name string
	// Runs overrides the runner's repetition count when positive.
	Runs int
	// Rules pins absolute expectations on the returned counters.
	Rules map[string]Rule
	Run   func(ctx context.Context, tr *obs.Tracer) (map[string]int64, error)
}

// Options configures one suite run.
type Options struct {
	// Runs is the default repetition count per benchmark (3 when zero).
	Runs int
	// Match filters benchmarks by name; nil runs everything.
	Match func(name string) bool
	// Progress, when non-nil, receives one line per finished benchmark.
	Progress func(format string, args ...any)
}

// Run executes the benchmarks and assembles a report. It returns the
// report, the list of rule violations (hard failures for the CLI gate:
// a violated rule means pinned behaviour changed in this very run), and
// the first execution error. Counters that differ between repetitions
// of one benchmark are an execution error — a nondeterministic counter
// would poison every later comparison.
func Run(ctx context.Context, benches []Benchmark, opts Options) (*Report, []string, error) {
	reps := opts.Runs
	if reps <= 0 {
		reps = 3
	}
	rep := NewReport(0)
	var violations []string
	for _, b := range benches {
		if opts.Match != nil && !opts.Match(b.Name) {
			continue
		}
		n := reps
		if b.Runs > 0 {
			n = b.Runs
		}
		var counters map[string]int64
		walls := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			tr := obs.NewTracer()
			start := time.Now()
			got, err := b.Run(obs.WithTracer(ctx, tr), tr)
			walls = append(walls, time.Since(start))
			if err != nil {
				return nil, nil, fmt.Errorf("benchreg: %s (rep %d): %w", b.Name, i+1, err)
			}
			if got == nil {
				got = map[string]int64{}
			}
			if i == 0 {
				counters = got
				continue
			}
			if !maps.Equal(counters, got) {
				return nil, nil, fmt.Errorf(
					"benchreg: %s: counters differ between repetitions (%v vs %v); "+
						"a nondeterministic counter cannot gate regressions", b.Name, counters, got)
			}
		}
		for _, name := range sortedKeys(b.Rules) {
			rule := b.Rules[name]
			if v := counters[name]; !rule.check(v) {
				violations = append(violations, fmt.Sprintf(
					"%s: counter %s = %d violates pinned rule %s %d",
					b.Name, name, v, rule.Op, rule.Value))
			}
		}
		sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
		res := Result{
			Name: b.Name,
			Runs: n,
			Wall: Wall{
				MinNanos:    walls[0].Nanoseconds(),
				MedianNanos: walls[len(walls)/2].Nanoseconds(),
				MaxNanos:    walls[len(walls)-1].Nanoseconds(),
			},
			Counters: counters,
			Rules:    b.Rules,
		}
		rep.Results = append(rep.Results, res)
		if opts.Progress != nil {
			opts.Progress("%-20s median %-12v counters %d rules %d",
				b.Name, time.Duration(res.Wall.MedianNanos).Round(time.Microsecond),
				len(res.Counters), len(res.Rules))
		}
	}
	return rep, violations, nil
}

// sortedKeys returns the map's keys in stable order.
func sortedKeys(m map[string]Rule) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
