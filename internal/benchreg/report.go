package benchreg

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion is bumped on incompatible changes to the report
// document; additive fields do not bump it. Load refuses documents from
// a different major schema, so the CI gate fails loudly instead of
// comparing apples to oranges.
const SchemaVersion = 1

// Wall is the wall-clock summary of one benchmark's repetitions.
type Wall struct {
	MinNanos    int64 `json:"min_ns"`
	MedianNanos int64 `json:"median_ns"`
	MaxNanos    int64 `json:"max_ns"`
}

// Rule pins an absolute expectation on one deterministic counter: the
// runner checks it at run time (a violated rule is a failed run, not a
// report entry to diff later), and the differ reuses its Op as the
// counter's regression direction.
type Rule struct {
	// Op is "eq", "le" or "ge", relating the measured counter to Value.
	Op string `json:"op"`
	// Value is the pinned bound.
	Value int64 `json:"value"`
}

// check evaluates the rule against a measured value.
func (r Rule) check(v int64) bool {
	switch r.Op {
	case "eq":
		return v == r.Value
	case "le":
		return v <= r.Value
	case "ge":
		return v >= r.Value
	default:
		return false
	}
}

// Result is one benchmark's entry in a report.
type Result struct {
	Name string `json:"name"`
	// Runs is the repetition count behind the wall statistics.
	Runs int  `json:"runs"`
	Wall Wall `json:"wall"`
	// Counters is the deterministic work-counter section: identical
	// across repetitions by construction (the runner enforces it), so
	// identical across whole runs unless behaviour changed.
	Counters map[string]int64 `json:"counters"`
	// Rules records the absolute expectations this run was checked
	// against, making the report self-describing for the differ.
	Rules map[string]Rule `json:"rules,omitempty"`
}

// Report is one BENCH_<seq>.json document.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Tool          string `json:"tool"`
	// Seq is the monotone sequence number in the report directory.
	Seq       int      `json:"seq"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Results   []Result `json:"results"`
}

// NewReport returns an empty report stamped with the current schema and
// environment.
func NewReport(seq int) *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Tool:          "gsubench",
		Seq:           seq,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
	}
}

// Result returns the named entry, or nil.
func (r *Report) Result(name string) *Result {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// Write emits the report as indented JSON.
func Write(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path.
func WriteFile(path string, r *Report) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("benchreg: %w", err)
	}
	werr := Write(f, r)
	if cerr := f.Close(); werr == nil && cerr != nil {
		werr = fmt.Errorf("benchreg: %w", cerr)
	}
	return werr
}

// Load reads and validates one report document.
func Load(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("benchreg: decoding report: %w", err)
	}
	if rep.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("benchreg: report schema v%d, this build reads v%d",
			rep.SchemaVersion, SchemaVersion)
	}
	if rep.Tool != "gsubench" {
		return nil, fmt.Errorf("benchreg: report tool %q, want gsubench", rep.Tool)
	}
	return &rep, nil
}

// LoadFile reads one report from path.
func LoadFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("benchreg: %w", err)
	}
	rep, err := Load(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("benchreg: %w", cerr)
	}
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return rep, nil
}

// SeqPath names the report file for one sequence number, zero-padded so
// lexical listings sort chronologically.
func SeqPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("BENCH_%04d.json", seq))
}

// NextSeq scans dir for BENCH_*.json files and returns one past the
// highest sequence number found (1 in an empty or missing directory).
func NextSeq(dir string) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 1
	}
	max := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "BENCH_") || !strings.HasSuffix(name, ".json") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "BENCH_"), ".json"))
		if err == nil && n > max {
			max = n
		}
	}
	return max + 1
}

// LatestPath returns the highest-sequence BENCH_*.json in dir, or ""
// when none exists.
func LatestPath(dir string) string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return ""
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "BENCH_") && strings.HasSuffix(name, ".json") {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names)
	return filepath.Join(dir, names[len(names)-1])
}
