package benchreg

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"guardedop/internal/core"
	"guardedop/internal/mdcd"
	"guardedop/internal/obs"
	"guardedop/internal/serve"
	"guardedop/internal/template"
)

// Suite returns the pinned benchmark suite: the repo's hot paths, each
// reporting the deterministic work counters that gate regressions. The
// eq-pinned rule values are this repo's current measured behaviour —
// changing them is a deliberate act reviewed with the code change that
// caused it, exactly like updating a golden test.
func Suite() []Benchmark {
	return []Benchmark{
		gridBench("grid50.numeric", core.ParametricOff),
		gridBench("grid50.parametric", core.ParametricAuto),
		evaluateBench("evaluate.numeric", core.ParametricOff),
		evaluateBench("evaluate.parametric", core.ParametricAuto),
		templateBench("template.n3", 3, 5, 276),
		templateBench("template.n8", 8, 0, 1796),
		serveCoalescedBench(),
		serveDistinctBench(),
	}
}

// gridBench sweeps the paper-scale 50-point φ grid through the curve
// engine (segment solves + per-point fallback), the same workload as
// BenchmarkCurveEngine, under one explicit engine mode.
func gridBench(name string, mode core.ParametricMode) Benchmark {
	rules := map[string]Rule{
		"curve.points":             {Op: "eq", Value: 50},
		obs.CtrFallbackPoints:      {Op: "eq", Value: 0},
		obs.CtrParametricFallbacks: {Op: "eq", Value: 0},
	}
	if mode == core.ParametricOff {
		rules[obs.CtrParametricHits] = Rule{Op: "eq", Value: 0}
		// 98 is the engine's measured budget on the paper grid — the
		// repo's canonical solver-pass pin. Counters are deterministic, so
		// any other value is a behavioural change in the curve engine, not
		// noise.
		rules[obs.CtrSolvePasses] = Rule{Op: "eq", Value: 98}
	} else {
		rules[obs.CtrParametricHits] = Rule{Op: "eq", Value: 50}
		rules[obs.CtrSolvePasses] = Rule{Op: "eq", Value: 0}
	}
	return Benchmark{
		Name:  name,
		Rules: rules,
		Run: func(ctx context.Context, tr *obs.Tracer) (map[string]int64, error) {
			a, err := core.NewAnalyzerWithOptions(mdcd.DefaultParams(), core.Options{Parametric: mode})
			if err != nil {
				return nil, err
			}
			grid := core.SweepGrid(10000, 49)
			pr, err := a.CurvePartialWorkers(ctx, grid, 1)
			if err != nil {
				return nil, err
			}
			if got := pr.Report.Succeeded(); got != len(grid) {
				return nil, fmt.Errorf("%d/%d grid points failed", len(grid)-got, len(grid))
			}
			c := tr.Counters()
			return map[string]int64{
				"curve.points":             int64(len(grid)),
				obs.CtrSolvePasses:         c[obs.CtrSolvePasses],
				obs.CtrParametricHits:      c[obs.CtrParametricHits],
				obs.CtrParametricFallbacks: c[obs.CtrParametricFallbacks],
				obs.CtrFallbackPoints:      c[obs.CtrFallbackPoints],
			}, nil
		},
	}
}

// evaluateBench measures the point-wise Evaluate path (memo caches cold,
// 40 distinct φ) — the code the curve engine falls back to and the
// optimizer leans on.
func evaluateBench(name string, mode core.ParametricMode) Benchmark {
	rules := map[string]Rule{
		"evaluate.points":          {Op: "eq", Value: 40},
		obs.CtrParametricFallbacks: {Op: "eq", Value: 0},
	}
	if mode == core.ParametricOff {
		// Three full-horizon solves per fresh point (the RMGd transient,
		// the two RMNd accumulations), all memo misses on a cold cache.
		rules[obs.CtrSolvePasses] = Rule{Op: "eq", Value: 120}
		rules[obs.CtrCacheMisses] = Rule{Op: "eq", Value: 120}
		rules[obs.CtrParametricHits] = Rule{Op: "eq", Value: 0}
	} else {
		rules[obs.CtrSolvePasses] = Rule{Op: "eq", Value: 0}
		rules[obs.CtrParametricHits] = Rule{Op: "eq", Value: 40}
	}
	return Benchmark{
		Name:  name,
		Rules: rules,
		Run: func(ctx context.Context, tr *obs.Tracer) (map[string]int64, error) {
			a, err := core.NewAnalyzerWithOptions(mdcd.DefaultParams(), core.Options{Parametric: mode})
			if err != nil {
				return nil, err
			}
			for _, phi := range core.SweepGrid(10000, 39) {
				if _, err := a.EvaluateContext(ctx, phi); err != nil {
					return nil, err
				}
			}
			c := tr.Counters()
			return map[string]int64{
				"evaluate.points":          40,
				obs.CtrSolvePasses:         c[obs.CtrSolvePasses],
				obs.CtrCacheHits:           c[obs.CtrCacheHits],
				obs.CtrCacheMisses:         c[obs.CtrCacheMisses],
				obs.CtrParametricHits:      c[obs.CtrParametricHits],
				obs.CtrParametricFallbacks: c[obs.CtrParametricFallbacks],
			}, nil
		},
	}
}

// benchSpec is the N-node scenario the template benchmarks build: the
// paper baseline widened with plain nodes, the same family the
// examples/scenarios specs describe.
func benchSpec(nodes int) *template.Spec {
	spec := template.PaperSpec()
	spec.Name = fmt.Sprintf("bench-%dnode", nodes)
	for i := len(spec.Nodes); i < nodes; i++ {
		spec.Nodes = append(spec.Nodes, template.NodeSpec{Name: fmt.Sprintf("P%d", i+1)})
	}
	spec.Limits.MaxStates = 1 << 15
	return spec
}

// templateBench generates the N-node scenario model family and — when
// points > 0 — sweeps a small curve over the scenario analyzer. The
// solve stage is what the sparse-solver roadmap item must beat: at N=8
// the generated chains (≈1.8k tangible states) already price the dense
// expm path out of a benchmark budget, so that entry is build-only and
// pins the structural size counters instead; the day a sparse backend
// lands, giving it a points > 0 solve stage is the intended upgrade.
func templateBench(name string, nodes, points, states int) Benchmark {
	return Benchmark{
		Name: name,
		Rules: map[string]Rule{
			obs.CtrTemplateInstances: {Op: "eq", Value: 1},
			// The family's total tangible states is a pure function of the
			// spec: a drift means the generator's structure changed.
			obs.CtrTemplateStates: {Op: "eq", Value: int64(states)},
		},
		Run: func(ctx context.Context, tr *obs.Tracer) (map[string]int64, error) {
			spec := benchSpec(nodes)
			inst, err := template.Build(ctx, spec)
			if err != nil {
				return nil, err
			}
			counters := func() map[string]int64 {
				c := tr.Counters()
				return map[string]int64{
					obs.CtrTemplateInstances: c[obs.CtrTemplateInstances],
					obs.CtrTemplateStates:    c[obs.CtrTemplateStates],
					obs.CtrSolvePasses:       c[obs.CtrSolvePasses],
					"curve.points":           int64(points),
				}
			}
			if points <= 0 {
				return counters(), nil
			}
			a, err := core.NewScenarioAnalyzer(core.ScenarioModels{
				Params: inst.Params,
				Gd:     inst.Gd,
				NdNew:  inst.NdNew,
				NdOld:  inst.NdOld,
				Rhos:   inst.Rhos,
			}, core.Options{})
			if err != nil {
				return nil, err
			}
			grid := core.SweepGrid(spec.Theta, points-1)
			pr, err := a.CurvePartialWorkers(ctx, grid, 1)
			if err != nil {
				return nil, err
			}
			if got := pr.Report.Succeeded(); got != len(grid) {
				return nil, fmt.Errorf("%d/%d scenario grid points failed", len(grid)-got, len(grid))
			}
			return counters(), nil
		},
	}
}

// discardWriter is the minimal http.ResponseWriter the serve benchmarks
// drive the handler with (httptest would register CLI flags).
type discardWriter struct {
	h      http.Header
	status int
}

func newDiscardWriter() *discardWriter { return &discardWriter{h: make(http.Header)} }

func (w *discardWriter) Header() http.Header { return w.h }

func (w *discardWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
}

func (w *discardWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return len(b), nil
}

// serveHit drives one in-process request through the handler stack.
func serveHit(ctx context.Context, h http.Handler, body string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "/v1/curve", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	w := newDiscardWriter()
	h.ServeHTTP(w, req)
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.status, nil
}

// serveCoalescedBench replays the thousand-identical-queries shape at
// benchmark scale: 256 concurrent identical curve requests must collapse
// onto one solve, with every non-leader absorbed by the flight or the
// response cache. The coalesced-vs-cache-hit split is scheduling
// dependent, so only their deterministic sum is reported.
func serveCoalescedBench() Benchmark {
	const n = 256
	return Benchmark{
		Name: "serve.coalesced",
		Rules: map[string]Rule{
			obs.CtrServeRequests: {Op: "eq", Value: n},
			"serve.absorbed":     {Op: "eq", Value: n - 1},
			"core.curve.count":   {Op: "eq", Value: 1},
			obs.CtrServeShed:     {Op: "eq", Value: 0},
			obs.CtrServeErrors:   {Op: "eq", Value: 0},
		},
		Run: func(ctx context.Context, tr *obs.Tracer) (map[string]int64, error) {
			s := serve.New(serve.Config{Tracer: tr, Workers: 1})
			h := s.Handler()
			errs := make(chan error, n)
			for i := 0; i < n; i++ {
				go func() {
					status, err := serveHit(ctx, h, `{"points":20}`)
					if err == nil && status != http.StatusOK {
						err = fmt.Errorf("status %d", status)
					}
					errs <- err
				}()
			}
			for i := 0; i < n; i++ {
				if err := <-errs; err != nil {
					return nil, err
				}
			}
			c := tr.Counters()
			return map[string]int64{
				obs.CtrServeRequests: c[obs.CtrServeRequests],
				"serve.absorbed":     c[obs.CtrServeCoalesced] + c[obs.CtrServeCacheHits],
				"core.curve.count":   tr.Stages()["core.curve"].Count,
				obs.CtrSolvePasses:   c[obs.CtrSolvePasses],
				obs.CtrServeShed:     c[obs.CtrServeShed],
				obs.CtrServeErrors:   c[obs.CtrServeErrors],
			}, nil
		},
	}
}

// serveDistinctBench issues distinct queries sequentially: every request
// misses the response cache, the analyzer builds once and is reused, and
// each distinct grid solves fresh — the worst-case (uncacheable) serving
// cost.
func serveDistinctBench() Benchmark {
	const n = 8
	return Benchmark{
		Name: "serve.distinct",
		Rules: map[string]Rule{
			obs.CtrServeRequests:  {Op: "eq", Value: n},
			obs.CtrServeCoalesced: {Op: "eq", Value: 0},
			obs.CtrServeErrors:    {Op: "eq", Value: 0},
			"core.curve.count":    {Op: "eq", Value: n},
		},
		Run: func(ctx context.Context, tr *obs.Tracer) (map[string]int64, error) {
			s := serve.New(serve.Config{Tracer: tr, Workers: 1})
			h := s.Handler()
			for i := 0; i < n; i++ {
				status, err := serveHit(ctx, h, fmt.Sprintf(`{"points":%d}`, 3+i))
				if err != nil {
					return nil, err
				}
				if status != http.StatusOK {
					return nil, fmt.Errorf("request %d: status %d", i, status)
				}
			}
			c := tr.Counters()
			return map[string]int64{
				obs.CtrServeRequests:    c[obs.CtrServeRequests],
				obs.CtrServeCoalesced:   c[obs.CtrServeCoalesced],
				obs.CtrServeCacheHits:   c[obs.CtrServeCacheHits],
				obs.CtrServeCacheMisses: c[obs.CtrServeCacheMisses],
				obs.CtrSolvePasses:      c[obs.CtrSolvePasses],
				"core.curve.count":      tr.Stages()["core.curve"].Count,
				obs.CtrServeErrors:      c[obs.CtrServeErrors],
			}, nil
		},
	}
}
