package ctmc

import (
	"context"
	"sync/atomic"

	"guardedop/internal/obs"
)

// solveOps counts transient/accumulated solver passes process-wide: one
// increment per uniformization vector iteration or dense matrix-exponential
// evaluation, whether it produces π(t), L(t), or both at once. The counter
// is the observable behind the curve-engine performance contract — a shared
// incremental pass over a φ-grid must register far fewer passes than
// point-wise evaluation.
//
// The counter is monotone and global, retained as a fallback for callers
// with no context to carry attribution. Concurrent solver work elsewhere
// in the process inflates a delta between two readings, so scoped
// measurements — the curve engine's per-run Metrics.Solves, budget
// assertions in tests — go through obs.Count instead: every solver pass
// also reports to the obs.Scope and obs.Tracer carried by its context,
// which concurrent analyzers cannot pollute (see internal/obs).
var solveOps atomic.Uint64

// SolveOps returns the process-wide count of transient/accumulated solver
// passes completed so far. Subtract two readings to measure a region —
// valid only when nothing else solves concurrently; scoped measurements
// use obs.WithScope.
func SolveOps() uint64 { return solveOps.Load() }

// countSolveOp records one solver pass: always on the global fallback
// counter, and on whatever scope/tracer the context carries.
func countSolveOp(ctx context.Context) {
	solveOps.Add(1)
	obs.Count(ctx, obs.CtrSolvePasses, 1)
}
