package ctmc

import "sync/atomic"

// solveOps counts transient/accumulated solver passes process-wide: one
// increment per uniformization vector iteration or dense matrix-exponential
// evaluation, whether it produces π(t), L(t), or both at once. The counter
// is the observable behind the curve-engine performance contract — a shared
// incremental pass over a φ-grid must register far fewer passes than
// point-wise evaluation — and is folded into robust.Metrics by the batch
// layers (core.Analyzer curve runs) so CI can assert the fast path did not
// silently regress to per-point solving.
//
// The counter is monotone and global; meaningful measurements are deltas
// taken around a region of interest. Concurrent solver work elsewhere in
// the process inflates a delta, so budget assertions belong in sequential
// tests.
var solveOps atomic.Uint64

// SolveOps returns the process-wide count of transient/accumulated solver
// passes completed so far. Subtract two readings to measure a region.
func SolveOps() uint64 { return solveOps.Load() }

// countSolveOp records one solver pass.
func countSolveOp() { solveOps.Add(1) }
