package ctmc

import (
	"context"
	"errors"
	"math"
	"testing"

	"guardedop/internal/robust"
	"guardedop/internal/sparse"
)

// The drift renormalization must accept round-off growth proportional to the
// number of propagation steps taken, and reject the same deviation when no
// steps can explain it — with a typed, classifiable error either way.
func TestPropagateDriftBudgetScalesWithSteps(t *testing.T) {
	c := twoState(t, 1.5, 0.5)
	drifted := []float64{0.7, 0.3 + 3e-6} // mass 1 + 3e-6, past the 1e-6 floor

	// At step zero nothing can explain the drift: typed rejection.
	if _, err := c.propagate(append([]float64(nil), drifted...), 1, 0); err == nil {
		t.Fatal("drift beyond the floor accepted at step 0")
	} else if !errors.Is(err, robust.ErrNonFinite) {
		t.Fatalf("drift rejection not classifiable as ErrNonFinite: %v", err)
	}

	// After 3000 incremental steps the same drift is within budget
	// (1e-6 + 3000·1e-9 = 4e-6): renormalize and keep going.
	got, err := c.propagate(append([]float64(nil), drifted...), 1, 3000)
	if err != nil {
		t.Fatalf("round-off drift rejected despite step budget: %v", err)
	}
	norm := make([]float64, len(drifted))
	total := drifted[0] + drifted[1]
	for i, v := range drifted {
		norm[i] = v / total
	}
	want, err := c.Transient(norm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.L1Dist(got, want) != 0 {
		t.Errorf("renormalized propagation deviates by %g", sparse.L1Dist(got, want))
	}

	// Destroyed mass is never renormalizable, at any step count.
	for _, bad := range [][]float64{{math.NaN(), 0.5}, {math.Inf(1), 0.5}, {-0.5, 0.5}} {
		if _, err := c.propagate(bad, 1, 1e6); !errors.Is(err, robust.ErrNonFinite) {
			t.Errorf("mass %v: got %v, want ErrNonFinite", bad, err)
		}
	}
}

// Regression for the old fixed 1e-6 cutoff: a long many-gap series must
// survive whatever drift its own propagation accrues instead of the solver
// rejecting its own output mid-series.
func TestTransientSeriesLongManyGapGrid(t *testing.T) {
	c := birthDeath(t, 8, 2.0, 3.0)
	pi0, _ := c.PointMass(0)
	ts := make([]float64, 1500)
	for i := range ts {
		ts[i] = 0.01 * float64(i+1)
	}
	series, err := c.TransientSeries(pi0, ts)
	if err != nil {
		t.Fatalf("many-gap series failed: %v", err)
	}
	lastT := ts[len(ts)-1]
	want, err := c.Transient(pi0, lastT)
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.L1Dist(series[len(ts)-1], want); d > 1e-8 {
		t.Errorf("after %d gaps, series deviates from direct solve by %g", len(ts), d)
	}
}

func TestAccumulatedSeriesMatchesPointwise(t *testing.T) {
	c := birthDeath(t, 6, 2.0, 3.0)
	pi0, _ := c.PointMass(0)
	ts := []float64{5, 0.5, 2, 0, 5} // unsorted, duplicate, zero
	accs, err := c.AccumulatedSeries(pi0, ts)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range ts {
		want, err := c.Accumulated(pi0, tt)
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.L1Dist(accs[i], want); d > 1e-8*(1+tt) {
			t.Errorf("t=%v: accumulated series deviates by %g", tt, d)
		}
	}
	if sparse.L1Dist(accs[0], accs[4]) != 0 {
		t.Error("duplicate time points differ")
	}
	// Total accumulated sojourn must equal the elapsed horizon exactly
	// (mass conservation through the incremental pass).
	for i, tt := range ts {
		if math.Abs(sparse.Sum(accs[i])-tt) > 1e-8*(1+tt) {
			t.Errorf("t=%v: sum L(t) = %v", tt, sparse.Sum(accs[i]))
		}
	}
}

func TestTransientAccumulatedSeriesConsistent(t *testing.T) {
	c := birthDeath(t, 6, 2.0, 3.0)
	pi0, _ := c.PointMass(0)
	ts := []float64{0.5, 3, 1, 7}
	pis, accs, err := c.TransientAccumulatedSeries(pi0, ts)
	if err != nil {
		t.Fatal(err)
	}
	wantPis, err := c.TransientSeries(pi0, ts)
	if err != nil {
		t.Fatal(err)
	}
	wantAccs, err := c.AccumulatedSeries(pi0, ts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ts {
		if d := sparse.L1Dist(pis[i], wantPis[i]); d > 1e-9 {
			t.Errorf("t=%v: combined pi deviates by %g", ts[i], d)
		}
		if d := sparse.L1Dist(accs[i], wantAccs[i]); d != 0 {
			t.Errorf("t=%v: combined acc deviates by %g", ts[i], d)
		}
	}
}

// The combined dense path must agree with the separate expm solvers: one Van
// Loan augmented exponential serving both views.
func TestTransientAccumulatedExpmMatchesSeparate(t *testing.T) {
	c := birthDeath(t, 5, 1.2, 0.7)
	pi0, _ := c.PointMass(0)
	for _, tt := range []float64{0, 0.5, 4} {
		pi, acc, err := c.transientAccumulatedExpm(context.Background(), pi0, tt)
		if err != nil {
			t.Fatal(err)
		}
		wantPi, err := c.TransientExpm(pi0, tt)
		if err != nil {
			t.Fatal(err)
		}
		wantAcc, err := c.AccumulatedExpm(pi0, tt)
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.L1Dist(pi, wantPi); d > 1e-12 {
			t.Errorf("t=%v: pi deviates by %g", tt, d)
		}
		if d := sparse.L1Dist(acc, wantAcc); d != 0 {
			t.Errorf("t=%v: acc deviates by %g", tt, d)
		}
	}
}

// Solver-pass accounting: a series over k distinct positive horizons must
// cost k passes, while the equivalent point-wise transient+accumulated
// evaluation costs 2k.
func TestSolveOpsSeriesVsPointwise(t *testing.T) {
	c := birthDeath(t, 6, 2.0, 3.0)
	pi0, _ := c.PointMass(0)
	ts := []float64{1, 2.5, 4}

	before := SolveOps()
	if _, _, err := c.TransientAccumulatedSeries(pi0, ts); err != nil {
		t.Fatal(err)
	}
	seriesOps := SolveOps() - before

	before = SolveOps()
	for _, tt := range ts {
		if _, err := c.Transient(pi0, tt); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Accumulated(pi0, tt); err != nil {
			t.Fatal(err)
		}
	}
	pointOps := SolveOps() - before

	if seriesOps != uint64(len(ts)) {
		t.Errorf("series cost %d solver passes, want %d", seriesOps, len(ts))
	}
	if pointOps != uint64(2*len(ts)) {
		t.Errorf("point-wise cost %d solver passes, want %d", pointOps, 2*len(ts))
	}
}

func TestSolveCacheHitsAreIdentical(t *testing.T) {
	c := birthDeath(t, 6, 2.0, 3.0)
	pi0, _ := c.PointMass(0)
	cache, err := NewSolveCache(c, pi0, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	pi1, acc1, err := cache.TransientAccumulated(3.5)
	if err != nil {
		t.Fatal(err)
	}
	pi2, acc2, err := cache.TransientAccumulated(3.5)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.L1Dist(pi1, pi2) != 0 || sparse.L1Dist(acc1, acc2) != 0 {
		t.Error("cache hit returned different values than the fill")
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
	// Cached values must match the uncached solvers.
	wantPi, err := c.Transient(pi0, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	wantAcc, err := c.Accumulated(pi0, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.L1Dist(pi1, wantPi); d > 1e-12 {
		t.Errorf("cached pi deviates by %g", d)
	}
	if d := sparse.L1Dist(acc1, wantAcc); d != 0 {
		t.Errorf("cached acc deviates by %g", d)
	}
}

func TestSolveCacheBoundedFIFO(t *testing.T) {
	c := twoState(t, 1.5, 0.5)
	pi0, _ := c.PointMass(0)
	cache, err := NewSolveCache(c, pi0, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{1, 2, 3} {
		if _, err := cache.Transient(tt); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d entries past capacity 2", cache.Len())
	}
	// t=1 was evicted first: re-requesting it is a miss, t=3 is still a hit.
	if _, err := cache.Transient(3); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Transient(1); err != nil {
		t.Fatal(err)
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 4 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 4)", hits, misses)
	}
}

func TestSolveCacheValidation(t *testing.T) {
	c := twoState(t, 1, 1)
	pi0, _ := c.PointMass(0)
	if _, err := NewSolveCache(nil, pi0, 4, false); err == nil {
		t.Error("nil chain accepted")
	}
	if _, err := NewSolveCache(c, []float64{2, 3}, 4, false); err == nil {
		t.Error("non-distribution accepted")
	}
	cache, err := NewSolveCache(c, pi0, 0, false) // capacity raised to 1
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cache.TransientAccumulated(1); err == nil {
		t.Error("accumulated view served by a transient-only cache")
	}
	if _, err := cache.Transient(-1); err == nil {
		t.Error("negative horizon accepted")
	}
}

// monotoneProbes must clamp jittering observations of a non-decreasing
// function into history-consistent values.
func TestMonotoneProbesClamp(t *testing.T) {
	m := newMonotoneProbes()
	if got := m.clamp(1, 0.5); got != 0.5 {
		t.Fatalf("first probe altered: %g", got)
	}
	// Later time, infinitesimally lower value: clamped up.
	if got := m.clamp(2, 0.5-1e-12); got != 0.5 {
		t.Errorf("non-monotone jitter not clamped up: %.15g", got)
	}
	// Earlier time, higher value: clamped down to the later observation.
	if got := m.clamp(0.5, 0.6); got != 0.5 {
		t.Errorf("non-monotone jitter not clamped down: %.15g", got)
	}
	// In-range observations pass through untouched.
	if got := m.clamp(0.25, 0.3); got != 0.3 {
		t.Errorf("consistent probe altered: %g", got)
	}
	if got := m.clamp(3, 0.8); got != 0.8 {
		t.Errorf("consistent probe altered: %g", got)
	}
}

// A quantile on a near-flat CDF plateau: half the mass absorbs almost
// instantly, the rest leaks in at 1e-7, so around q=0.5 the CDF is flat to
// ~8 decimal places and solver jitter dwarfs the local slope. The bisection
// must still land on the crossing instead of stalling on inconsistent
// probes.
func TestAbsorptionTimeQuantileNearFlatPlateau(t *testing.T) {
	g := sparse.NewCOO(4, 4)
	g.Add(0, 1, 50) // fast absorption: half the mass
	g.Add(0, 2, 50) // fast hand-off to the slow branch
	g.Add(0, 0, -100)
	g.Add(2, 3, 1e-7) // slow absorption: the plateau
	g.Add(2, 2, -1e-7)
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	pi0, _ := c.PointMass(0)
	got, err := c.AbsorptionTimeQuantile(pi0, 0.5, 1e-6)
	if err != nil {
		t.Fatalf("plateau quantile failed: %v", err)
	}
	// Verify against the CDF itself: the returned point must sit at the
	// crossing — CDF at got reaches 0.5, CDF slightly below does not.
	cdf, err := c.AbsorptionTimeCDF(pi0, []float64{got * (1 + 1e-5), got * (1 - 1e-2)})
	if err != nil {
		t.Fatal(err)
	}
	if cdf[0] < 0.5-1e-9 {
		t.Errorf("CDF just above the quantile is %.12f < 0.5", cdf[0])
	}
	if cdf[1] >= 0.5 {
		t.Errorf("CDF well below the quantile already reaches %.12f", cdf[1])
	}
}
