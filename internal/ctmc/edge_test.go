package ctmc

import (
	"math"
	"testing"

	"guardedop/internal/sparse"
)

func TestUniformizationMaxIterations(t *testing.T) {
	c := twoState(t, 100, 100)
	pi0, _ := c.PointMass(0)
	_, err := c.TransientUniformization(pi0, 1000, UniformizationOptions{
		MaxIterations:               10,
		DisableSteadyStateDetection: true,
	})
	if err == nil {
		t.Fatal("iteration cap not enforced")
	}
}

func TestUniformizationWithoutSteadyStateDetection(t *testing.T) {
	a, b := 3.0, 1.0
	c := twoState(t, a, b)
	pi0, _ := c.PointMass(0)
	tt := 5.0
	with, err := c.TransientUniformization(pi0, tt, UniformizationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := c.TransientUniformization(pi0, tt, UniformizationOptions{
		DisableSteadyStateDetection: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sparse.L1Dist(with, without) > 1e-10 {
		t.Errorf("steady-state detection changed the answer: %v vs %v", with, without)
	}
}

func TestUniformizationCustomEpsilonAndPadding(t *testing.T) {
	c := twoState(t, 2, 1)
	pi0, _ := c.PointMass(0)
	coarse, err := c.TransientUniformization(pi0, 1, UniformizationOptions{Epsilon: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := c.TransientUniformization(pi0, 1, UniformizationOptions{Epsilon: 1e-14, RatePadding: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if sparse.L1Dist(coarse, fine) > 1e-3 {
		t.Errorf("epsilon sensitivity too large: %v vs %v", coarse, fine)
	}
}

func TestSteadyPowerRejectsAllAbsorbing(t *testing.T) {
	g := sparse.NewCOO(2, 2)
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SteadyState(SteadyStateOptions{Method: SteadyPower}); err == nil {
		t.Error("all-absorbing chain accepted by power method")
	}
	if _, err := c.SteadyState(SteadyStateOptions{Method: SteadyMethod(99)}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestExpmRejectsNonSquare(t *testing.T) {
	if _, err := Expm(sparse.NewDense(2, 3)); err == nil {
		t.Error("non-square matrix accepted")
	}
}

func TestExpmEmptyAndIdentityCases(t *testing.T) {
	e, err := Expm(sparse.NewDense(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if e.Rows() != 0 {
		t.Errorf("exp of empty = %dx%d", e.Rows(), e.Cols())
	}
	// exp(0) = I.
	z, err := Expm(sparse.NewDense(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := 0.0
			if r == c {
				want = 1
			}
			if math.Abs(z.At(r, c)-want) > 1e-14 {
				t.Errorf("exp(0)[%d][%d] = %v", r, c, z.At(r, c))
			}
		}
	}
}

func TestExpmKnownScalarCase(t *testing.T) {
	// exp([[a]]) = [[e^a]], including a norm large enough to force scaling.
	for _, a := range []float64{0.5, -2, 40} {
		m := sparse.NewDense(1, 1)
		m.Set(0, 0, a)
		e, err := Expm(m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(e.At(0, 0)-math.Exp(a)) > 1e-9*math.Exp(a) {
			t.Errorf("exp(%v) = %v, want %v", a, e.At(0, 0), math.Exp(a))
		}
	}
}

func TestExpmNilpotentExact(t *testing.T) {
	// For nilpotent N (strictly upper triangular), exp(N) = I + N + N²/2.
	n := sparse.NewDense(3, 3)
	n.Set(0, 1, 2)
	n.Set(1, 2, 3)
	e, err := Expm(n)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{1, 2, 3}, {0, 1, 3}, {0, 0, 1}}
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if math.Abs(e.At(r, c)-want[r][c]) > 1e-12 {
				t.Errorf("exp(N)[%d][%d] = %v, want %v", r, c, e.At(r, c), want[r][c])
			}
		}
	}
}

func TestClampProbabilities(t *testing.T) {
	// Tiny negatives are clipped and the vector renormalized.
	v := []float64{-1e-12, 0.5, 0.5}
	clampProbabilities(v)
	if v[0] != 0 {
		t.Errorf("tiny negative not clipped: %v", v[0])
	}
	if math.Abs(sparse.Sum(v)-1) > 1e-9 {
		t.Errorf("not renormalized: sum=%v", sparse.Sum(v))
	}
	// Large negatives are left visible (solver-bug canary).
	w := []float64{-0.5, 1.5}
	clampProbabilities(w)
	if w[0] != -0.5 {
		t.Errorf("large negative papered over: %v", w)
	}
}

func TestAccumulatedExpmZeroTime(t *testing.T) {
	c := twoState(t, 1, 1)
	pi0, _ := c.PointMass(0)
	acc, err := c.AccumulatedExpm(pi0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if acc[0] != 0 || acc[1] != 0 {
		t.Errorf("accumulated at 0 = %v, want zeros", acc)
	}
}

func TestMustNewPanicsOnBadGenerator(t *testing.T) {
	g := sparse.NewCOO(1, 1)
	g.Add(0, 0, 1) // positive diagonal: invalid
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(g)
}

func TestGeneratorAccessors(t *testing.T) {
	c := twoState(t, 3, 1)
	if c.NumStates() != 2 {
		t.Errorf("NumStates = %d", c.NumStates())
	}
	if c.MaxExitRate() != 3 {
		t.Errorf("MaxExitRate = %v, want 3", c.MaxExitRate())
	}
	if c.Generator().At(0, 1) != 3 {
		t.Errorf("Generator()(0,1) = %v", c.Generator().At(0, 1))
	}
}

func TestAutoSelectionConsistency(t *testing.T) {
	// The same chain solved just below and just above the uniformization
	// budget must agree (the auto-switch must be seamless).
	c := twoState(t, 50, 10)
	pi0, _ := c.PointMass(0)
	// q*t around the budget boundary: q ≈ 50, so t = budget/50.
	tBoundary := uniformizationBudget / 50
	below, err := c.Transient(pi0, tBoundary*0.99)
	if err != nil {
		t.Fatal(err)
	}
	above, err := c.Transient(pi0, tBoundary*1.01)
	if err != nil {
		t.Fatal(err)
	}
	// Both are (essentially) the stationary distribution at these horizons.
	if sparse.L1Dist(below, above) > 1e-9 {
		t.Errorf("method switch produced inconsistent results: %v vs %v", below, above)
	}
}
