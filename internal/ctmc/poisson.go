package ctmc

import (
	"fmt"
	"math"

	"guardedop/internal/robust"
)

// poissonWindow holds a truncated Poisson probability mass function computed
// in the style of Fox & Glynn (1988): the weights w[k-Left] approximate
// Poisson(mean) pmf values for k in [Left, Right], chosen so that the
// truncated mass outside the window is below the requested tolerance, and
// computed by recurrence outward from the mode to avoid cancellation.
type poissonWindow struct {
	Mean        float64
	Left, Right int
	Weights     []float64 // Weights[i] = pmf(Left + i), renormalized
}

// maxPoissonTerms caps the number of pmf terms a window may hold. A
// window this wide (~33M terms, hundreds of MB of weights, and as many
// matrix-vector products downstream) is far past anything the solvers
// can usefully iterate; refusing up front turns an hours-long death
// march into an immediate, diagnosable error.
const maxPoissonTerms = 32 << 20

// newPoissonWindow computes the truncated Poisson(mean) pmf with total
// truncated tail mass at most eps (split across the two tails).
func newPoissonWindow(mean, eps float64) (*poissonWindow, error) {
	switch {
	case math.IsNaN(mean) || mean < 0:
		return nil, fmt.Errorf("ctmc: invalid Poisson mean %g", mean)
	case eps <= 0 || eps >= 1:
		return nil, fmt.Errorf("ctmc: invalid Poisson truncation tolerance %g", eps)
	}
	if mean == 0 {
		return &poissonWindow{Mean: 0, Left: 0, Right: 0, Weights: []float64{1}}, nil
	}

	// spread bounds each tail walk. The Poisson(mean) tail beyond
	// mean + c·(√mean+1) is below eps for c ~ √(2·ln(1/eps)), so the
	// coefficient here — an order of magnitude beyond that — is only
	// reachable if the walk has stopped converging. Checking the width
	// before walking fails fast: a mean of 1e18 used to grind through
	// ~1e9 recurrence steps and an unbounded weights slice before the
	// old mean+1e9 guard tripped.
	spread := (math.Sqrt(mean) + 1) * (25 + 10*math.Log(1/eps))
	if 2*spread+1 > maxPoissonTerms {
		return nil, fmt.Errorf("ctmc: Poisson window for mean %g needs ~%.3g terms (cap %d): %w",
			mean, 2*spread+1, maxPoissonTerms, robust.ErrNotConverged)
	}

	mode := int(math.Floor(mean))
	// log pmf at the mode, via the log-gamma function for stability at any mean.
	lg, _ := math.Lgamma(float64(mode) + 1)
	logPMode := -mean + float64(mode)*math.Log(mean) - lg
	pMode := math.Exp(logPMode)
	if pMode == 0 {
		return nil, fmt.Errorf("ctmc: Poisson mode pmf underflows for mean %g", mean)
	}

	// Walk left from the mode until the running tail bound drops below eps/2.
	// pmf(k-1) = pmf(k) * k / mean.
	half := eps / 2
	left := mode
	pl := pMode
	var leftVals []float64 // values from mode down to left, inclusive
	leftVals = append(leftVals, pMode)
	for left > 0 {
		next := pl * float64(left) / mean
		// Bound the remaining left tail by a geometric series with ratio
		// left/mean (< 1 below the mode).
		ratio := float64(left) / mean
		if ratio < 1 && next/(1-ratio) < half {
			break
		}
		pl = next
		left--
		leftVals = append(leftVals, pl)
	}

	// Walk right from the mode. pmf(k+1) = pmf(k) * mean / (k+1).
	right := mode
	pr := pMode
	var rightVals []float64 // values from mode+1 up to right
	for {
		next := pr * mean / float64(right+1)
		ratio := mean / float64(right+2)
		if ratio < 1 && next/(1-ratio) < half {
			break
		}
		pr = next
		right++
		rightVals = append(rightVals, pr)
		if float64(right) > mean+spread {
			return nil, fmt.Errorf("ctmc: Poisson right truncation did not converge within mean+%.3g for mean %g: %w",
				spread, mean, robust.ErrNotConverged)
		}
	}

	w := make([]float64, right-left+1)
	for i, v := range leftVals {
		w[mode-left-i] = v
	}
	for i, v := range rightVals {
		w[mode-left+1+i] = v
	}
	// Renormalize so the window sums to exactly 1; this keeps probability
	// vectors produced by uniformization summing to 1.
	total := 0.0
	for _, v := range w {
		total += v
	}
	for i := range w {
		w[i] /= total
	}
	return &poissonWindow{Mean: mean, Left: left, Right: right, Weights: w}, nil
}

// PMF returns the (renormalized, truncated) pmf at k; zero outside the window.
func (p *poissonWindow) PMF(k int) float64 {
	if k < p.Left || k > p.Right {
		return 0
	}
	return p.Weights[k-p.Left]
}
