package ctmc

import (
	"context"
	"sync"
	"testing"

	"guardedop/internal/obs"
)

// TestSolveCacheConcurrentHammer drives one SolveCache from many
// goroutines at once — the gsuserve serving path's access pattern, where
// concurrent requests on the same parameter set share one analyzer and
// therefore one set of memo caches. Run under -race (the short CI gate
// covers this package) it verifies the single-mutex story documented on
// SolveCache: concurrent lookups, fills of distinct horizons, and FIFO
// evictions may interleave freely without a data race, every returned
// vector is bit-identical to a fresh uncached solve, and the final
// hit/miss/eviction accounting balances.
func TestSolveCacheConcurrentHammer(t *testing.T) {
	c := twoState(t, 1.5, 0.5)
	pi0, _ := c.PointMass(0)

	// Capacity below the horizon count forces evictions and refills while
	// readers hold previously returned entries — the returned slices must
	// stay valid (they are never mutated, only dropped from the map).
	horizons := []float64{0.25, 0.5, 1, 2, 3, 4, 5, 8}
	cache, err := NewSolveCache(c, pi0, len(horizons)/2, true)
	if err != nil {
		t.Fatal(err)
	}

	// Reference solves, computed uncached up front.
	wantPi := make(map[float64][]float64, len(horizons))
	wantAcc := make(map[float64][]float64, len(horizons))
	for _, h := range horizons {
		pi, acc, err := c.transientAccumulated(context.Background(), pi0, h)
		if err != nil {
			t.Fatal(err)
		}
		wantPi[h], wantAcc[h] = pi, acc
	}

	const (
		workers       = 16
		opsPerWorker  = 200
		horizonStride = 3 // coprime with len(horizons): every worker visits all
	)
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for op := 0; op < opsPerWorker; op++ {
				h := horizons[(w+op*horizonStride)%len(horizons)]
				pi, acc, err := cache.TransientAccumulatedContext(ctx, h)
				if err != nil {
					errs <- err
					return
				}
				for i := range pi {
					if pi[i] != wantPi[h][i] || acc[i] != wantAcc[h][i] {
						t.Errorf("horizon %g: cached vector differs from fresh solve at state %d", h, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	snap := cache.Snapshot()
	total := snap.Hits + snap.Misses
	if total != workers*opsPerWorker {
		t.Fatalf("hits+misses = %d, want %d lookups", total, workers*opsPerWorker)
	}
	if snap.Misses < uint64(len(horizons)) {
		t.Errorf("misses = %d, want at least one per horizon (%d)", snap.Misses, len(horizons))
	}
	if snap.Len > len(horizons)/2 {
		t.Errorf("cache holds %d entries, capacity is %d", snap.Len, len(horizons)/2)
	}
	if snap.Evictions != snap.Misses-uint64(snap.Len) {
		t.Errorf("evictions = %d, want misses-len = %d", snap.Evictions, snap.Misses-uint64(snap.Len))
	}
	// The traced counters must agree with the cache's own accounting.
	if got := uint64(tr.Counter(obs.CtrCacheHits)); got != snap.Hits {
		t.Errorf("traced hits = %d, snapshot says %d", got, snap.Hits)
	}
	if got := uint64(tr.Counter(obs.CtrCacheMisses)); got != snap.Misses {
		t.Errorf("traced misses = %d, snapshot says %d", got, snap.Misses)
	}
}
