package ctmc

import (
	"fmt"
	"math"
	"sort"
)

// AbsorptionTimeCDF returns P(absorbed by t) for each horizon in ts: the
// cumulative distribution of the time to absorption, evaluated by the
// transient solver on the absorbing set. The chain must have at least one
// absorbing state.
func (c *Chain) AbsorptionTimeCDF(pi0 []float64, ts []float64) ([]float64, error) {
	abs := c.AbsorbingStates()
	if len(abs) == 0 {
		return nil, fmt.Errorf("ctmc: chain has no absorbing states")
	}
	isAbs := make([]bool, c.n)
	for _, s := range abs {
		isAbs[s] = true
	}
	pis, err := c.TransientSeries(pi0, ts)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(ts))
	for i, pi := range pis {
		total := 0.0
		for s, p := range pi {
			if isAbs[s] {
				total += p
			}
		}
		out[i] = total
	}
	return out, nil
}

// AbsorptionTimeQuantile returns the q-quantile (0 < q < 1) of the
// absorption-time distribution by bisection on the CDF, to relative
// precision relTol (default 1e-6 when zero). It errors when the chain
// absorbs with total probability below q (the quantile is infinite).
func (c *Chain) AbsorptionTimeQuantile(pi0 []float64, q, relTol float64) (float64, error) {
	if q <= 0 || q >= 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("ctmc: quantile level %g out of (0,1)", q)
	}
	if relTol <= 0 {
		relTol = 1e-6
	}
	// The true absorption-time CDF is non-decreasing, but each probe is an
	// independent transient solve carrying its own round-off, so on a
	// near-flat plateau a later probe can come back infinitesimally below an
	// earlier one at a smaller t. Bisection assumes monotonicity; feed it
	// values clamped against the probe history instead of raw solves.
	probes := newMonotoneProbes()
	cdfAt := func(t float64) (float64, error) {
		v, err := c.AbsorptionTimeCDF(pi0, []float64{t})
		if err != nil {
			return 0, err
		}
		return probes.clamp(t, v[0]), nil
	}
	// Bracket: grow the horizon until the CDF clears q (or provably cannot).
	lo, hi := 0.0, 1/math.Max(c.MaxExitRate(), 1e-12)
	for i := 0; ; i++ {
		v, err := cdfAt(hi)
		if err != nil {
			return 0, err
		}
		if v >= q {
			break
		}
		if i > 60 {
			return 0, fmt.Errorf("ctmc: absorption probability stalls at %.6g below quantile %g", v, q)
		}
		lo = hi
		hi *= 4
	}
	for hi-lo > relTol*hi {
		mid := 0.5 * (lo + hi)
		v, err := cdfAt(mid)
		if err != nil {
			return 0, err
		}
		if v >= q {
			hi = mid
		} else {
			lo = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

// monotoneProbes records (t, value) probes of a function known to be
// non-decreasing and clamps each new observation to be consistent with the
// history: at least the largest value seen at any earlier time, at most the
// smallest value seen at any later time.
type monotoneProbes struct {
	ts []float64 // sorted ascending
	vs []float64 // vs[i] is the clamped value at ts[i]
}

func newMonotoneProbes() *monotoneProbes {
	return &monotoneProbes{}
}

// clamp records the probe and returns its history-consistent value.
func (m *monotoneProbes) clamp(t, v float64) float64 {
	// i is the insertion point: probes before i have smaller or equal t.
	i := sort.SearchFloat64s(m.ts, t)
	//lint:ignore floateq exact equality detects re-probes of the identical abscissa; nearby-but-distinct t must stay distinct probes
	for i < len(m.ts) && m.ts[i] == t {
		i++
	}
	if i > 0 && v < m.vs[i-1] {
		v = m.vs[i-1]
	}
	if i < len(m.ts) && v > m.vs[i] {
		v = m.vs[i]
	}
	m.ts = append(m.ts, 0)
	m.vs = append(m.vs, 0)
	copy(m.ts[i+1:], m.ts[i:])
	copy(m.vs[i+1:], m.vs[i:])
	m.ts[i] = t
	m.vs[i] = v
	return v
}
