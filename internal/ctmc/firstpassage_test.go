package ctmc

import (
	"math"
	"testing"

	"guardedop/internal/sparse"
)

func TestFirstPassageTandem(t *testing.T) {
	// 0 -> 1 -> 2 with rates r0, r1: hitting time of {2} from 0 is
	// 1/r0 + 1/r1, with probability 1.
	r0, r1 := 2.0, 5.0
	g := sparse.NewCOO(3, 3)
	g.Add(0, 1, r0)
	g.Add(0, 0, -r0)
	g.Add(1, 2, r1)
	g.Add(1, 1, -r1)
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := c.FirstPassageAnalysis([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fp.MeanTime[0]-(1/r0+1/r1)) > 1e-12 {
		t.Errorf("hitting time from 0 = %v, want %v", fp.MeanTime[0], 1/r0+1/r1)
	}
	if fp.HitProbability[0] != 1 || fp.HitProbability[2] != 1 || fp.MeanTime[2] != 0 {
		t.Errorf("target/hit bookkeeping wrong: %+v", fp)
	}
}

func TestFirstPassageWithCompetingTrap(t *testing.T) {
	// 0 races to target 1 (rate a) and trap 2 (rate b): hit probability
	// a/(a+b), E[T·1(hit)] = a/(a+b)^2.
	a, b := 3.0, 7.0
	g := sparse.NewCOO(3, 3)
	g.Add(0, 1, a)
	g.Add(0, 2, b)
	g.Add(0, 0, -(a + b))
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := c.FirstPassageAnalysis([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fp.HitProbability[0]-a/(a+b)) > 1e-12 {
		t.Errorf("hit probability = %v, want %v", fp.HitProbability[0], a/(a+b))
	}
	want := a / math.Pow(a+b, 2)
	if math.Abs(fp.MeanTime[0]-want) > 1e-12 {
		t.Errorf("E[T·1(hit)] = %v, want %v", fp.MeanTime[0], want)
	}
	// The trap never reaches the target.
	if fp.HitProbability[2] != 0 {
		t.Errorf("trap hit probability = %v, want 0", fp.HitProbability[2])
	}
}

func TestFirstPassageCyclicChain(t *testing.T) {
	// On the ergodic two-state cycle, the hitting time of {1} from 0 is
	// exponential with the forward rate.
	c := twoState(t, 3, 1)
	meanTime, hitProb, err := c.MeanFirstPassage([]float64{1, 0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hitProb-1) > 1e-12 {
		t.Errorf("hit probability = %v, want 1", hitProb)
	}
	if math.Abs(meanTime-1.0/3.0) > 1e-12 {
		t.Errorf("mean hitting time = %v, want 1/3", meanTime)
	}
}

func TestFirstPassageValidation(t *testing.T) {
	c := twoState(t, 1, 1)
	if _, err := c.FirstPassageAnalysis(nil); err == nil {
		t.Error("empty target set accepted")
	}
	if _, err := c.FirstPassageAnalysis([]int{5}); err == nil {
		t.Error("out-of-range target accepted")
	}
	if _, _, err := c.MeanFirstPassage([]float64{0.5, 0.4}, []int{1}); err == nil {
		t.Error("non-normalized distribution accepted")
	}
}

func TestFirstPassageAllTargets(t *testing.T) {
	c := twoState(t, 1, 1)
	fp, err := c.FirstPassageAnalysis([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if fp.MeanTime[0] != 0 || fp.MeanTime[1] != 0 || fp.HitProbability[0] != 1 {
		t.Errorf("all-target analysis wrong: %+v", fp)
	}
}

func TestFirstPassageMatchesRMGdStyleDetection(t *testing.T) {
	// A miniature of the paper's detection question: 0 (clean) -> 1
	// (contaminated) at rate mu; 1 -> 2 detected (rate c*r) or 3 failed
	// (rate (1-c)*r). Hitting {2}: probability c (since mu leads to 1
	// surely), mean time ~ 1/mu + 1/r on hitting paths.
	mu, r, cov := 1e-3, 10.0, 0.9
	g := sparse.NewCOO(4, 4)
	g.Add(0, 1, mu)
	g.Add(0, 0, -mu)
	g.Add(1, 2, cov*r)
	g.Add(1, 3, (1-cov)*r)
	g.Add(1, 1, -r)
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	meanTime, hitProb, err := c.MeanFirstPassage([]float64{1, 0, 0, 0}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hitProb-cov) > 1e-12 {
		t.Errorf("detection probability = %v, want %v", hitProb, cov)
	}
	condMean := meanTime / hitProb
	want := 1/mu + 1/r
	if math.Abs(condMean-want) > 1e-6*want {
		t.Errorf("conditional detection time = %v, want %v", condMean, want)
	}
}

func TestTimeAveragedReward(t *testing.T) {
	a, b := 3.0, 1.0
	c := twoState(t, a, b)
	pi0, _ := c.PointMass(0)
	rates := []float64{0, 1}
	// Long-run time average tends to the steady-state probability of 1.
	avg, err := c.TimeAveragedReward(pi0, 10000, rates)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg-a/(a+b)) > 1e-3 {
		t.Errorf("long-run average = %v, want %v", avg, a/(a+b))
	}
	// t = 0 falls back to the instant reward.
	at0, err := c.TimeAveragedReward(pi0, 0, rates)
	if err != nil {
		t.Fatal(err)
	}
	if at0 != 0 {
		t.Errorf("average at 0 = %v, want 0", at0)
	}
}
