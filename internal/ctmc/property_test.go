package ctmc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"guardedop/internal/sparse"
)

// randomGenerator builds a random irreducible-ish generator on n states with
// rates spanning several orders of magnitude.
func randomGenerator(rng *rand.Rand, n int, maxRate float64) *sparse.COO {
	g := sparse.NewCOO(n, n)
	for r := 0; r < n; r++ {
		exit := 0.0
		for c := 0; c < n; c++ {
			if c == r {
				continue
			}
			if rng.Float64() < 0.6 {
				rate := maxRate * math.Pow(10, -3*rng.Float64()) * rng.Float64()
				g.Add(r, c, rate)
				exit += rate
			}
		}
		// Guarantee at least one exit so the chain stays ergodic.
		if exit == 0 {
			c := (r + 1) % n
			rate := maxRate * rng.Float64()
			if rate == 0 {
				rate = maxRate / 2
			}
			g.Add(r, c, rate)
			exit += rate
		}
		g.Add(r, r, -exit)
	}
	return g
}

func randomDistribution(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64() + 1e-3
	}
	sparse.Normalize(v)
	return v
}

// Property: uniformization output is a probability vector for random chains,
// random initial distributions, and random horizons.
func TestUniformizationIsStochasticProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		c, err := New(randomGenerator(rng, n, 10))
		if err != nil {
			return false
		}
		pi0 := randomDistribution(rng, n)
		tt := rng.Float64() * 20
		pi, err := c.TransientUniformization(pi0, tt, UniformizationOptions{})
		if err != nil {
			return false
		}
		sum := 0.0
		for _, p := range pi {
			if p < -1e-12 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}

// Property: expm and uniformization agree on non-stiff random chains.
func TestExpmMatchesUniformizationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		c, err := New(randomGenerator(rng, n, 5))
		if err != nil {
			return false
		}
		pi0 := randomDistribution(rng, n)
		tt := rng.Float64() * 10
		a, err := c.TransientUniformization(pi0, tt, UniformizationOptions{})
		if err != nil {
			return false
		}
		b, err := c.TransientExpm(pi0, tt)
		if err != nil {
			return false
		}
		return sparse.L1Dist(a, b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}

// Property: accumulated solvers agree and conserve total time.
func TestAccumulatedAgreementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		c, err := New(randomGenerator(rng, n, 4))
		if err != nil {
			return false
		}
		pi0 := randomDistribution(rng, n)
		tt := rng.Float64() * 8
		a, err := c.AccumulatedUniformization(pi0, tt, UniformizationOptions{})
		if err != nil {
			return false
		}
		b, err := c.AccumulatedExpm(pi0, tt)
		if err != nil {
			return false
		}
		if sparse.L1Dist(a, b) > 1e-6*(1+tt) {
			return false
		}
		return math.Abs(sparse.Sum(a)-tt) < 1e-8*(1+tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the steady-state vector satisfies πQ ≈ 0 and transient solutions
// converge to it for large t.
func TestSteadyStateResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		c, err := New(randomGenerator(rng, n, 3))
		if err != nil {
			return false
		}
		pi, err := c.SteadyState(SteadyStateOptions{})
		if err != nil {
			return false
		}
		res := make([]float64, n)
		c.Generator().VecMul(res, pi)
		if sparse.InfNormVec(res) > 1e-8 {
			return false
		}
		// Long-horizon transient should be close to steady state. Mixing is
		// governed by the slowest exit rate, so scale the horizon by it.
		minExit := math.Inf(1)
		for s := 0; s < n; s++ {
			if r := -c.Generator().At(s, s); r < minExit {
				minExit = r
			}
		}
		pi0 := randomDistribution(rng, n)
		long, err := c.Transient(pi0, 5000/math.Max(minExit, 1e-6))
		if err != nil {
			return false
		}
		return sparse.L1Dist(long, pi) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Poisson windows have non-negative weights summing to one and a
// window containing the mean.
func TestPoissonWindowProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mean := math.Pow(10, 6*rng.Float64()-2) // 1e-2 .. 1e4
		win, err := newPoissonWindow(mean, 1e-12)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, w := range win.Weights {
			if w < 0 {
				return false
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-12 {
			return false
		}
		mode := int(mean)
		return win.Left <= mode && mode <= win.Right
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonWindowMatchesDirectPMF(t *testing.T) {
	// Compare against directly computed pmf for a small mean.
	mean := 3.7
	win, err := newPoissonWindow(mean, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	fact := 1.0
	for k := 0; k <= 20; k++ {
		if k > 0 {
			fact *= float64(k)
		}
		want := math.Exp(-mean) * math.Pow(mean, float64(k)) / fact
		if got := win.PMF(k); math.Abs(got-want) > 1e-12 {
			t.Errorf("PMF(%d) = %.15f, want %.15f", k, got, want)
		}
	}
}

func TestPoissonWindowEdgeCases(t *testing.T) {
	if _, err := newPoissonWindow(-1, 1e-10); err == nil {
		t.Error("accepted negative mean")
	}
	if _, err := newPoissonWindow(1, 0); err == nil {
		t.Error("accepted zero tolerance")
	}
	win, err := newPoissonWindow(0, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if win.PMF(0) != 1 || win.PMF(1) != 0 {
		t.Errorf("mean-0 window pmf = (%v,%v), want (1,0)", win.PMF(0), win.PMF(1))
	}
}

// The stiff regime exercised by the paper: fast rates ~1e3, slow ~1e-8,
// horizon 1e4. Verify the auto-selected method matches a semi-analytic
// result on a chain simple enough to solve by hand.
func TestStiffTransientMatchesAnalytic(t *testing.T) {
	// 0 --mu--> 1 --lambda--> 2 (absorbing), mu=1e-4, lambda=1200.
	// P(still in 0 at t) = e^{-mu t};
	// P(absorbed at t) = 1 - (lambda e^{-mu t} - mu e^{-lambda t})/(lambda-mu).
	mu, lambda := 1e-4, 1200.0
	g := sparse.NewCOO(3, 3)
	g.Add(0, 1, mu)
	g.Add(0, 0, -mu)
	g.Add(1, 2, lambda)
	g.Add(1, 1, -lambda)
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	pi0, _ := c.PointMass(0)
	tt := 1e4
	got, err := c.Transient(pi0, tt)
	if err != nil {
		t.Fatal(err)
	}
	want0 := math.Exp(-mu * tt)
	want2 := 1 - (lambda*math.Exp(-mu*tt)-mu*math.Exp(-lambda*tt))/(lambda-mu)
	if math.Abs(got[0]-want0) > 1e-9 {
		t.Errorf("stiff P(0) = %.12f, want %.12f", got[0], want0)
	}
	if math.Abs(got[2]-want2) > 1e-9 {
		t.Errorf("stiff P(2) = %.12f, want %.12f", got[2], want2)
	}
}
