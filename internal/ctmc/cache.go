package ctmc

import (
	"context"
	"fmt"
	"sync"

	"guardedop/internal/obs"
)

// SolveCache memoizes full-horizon solves of one chain from one fixed
// initial distribution, keyed by the exact (bit-identical) time point. It
// backs the analyzer's repeated-evaluation hot paths — optimization
// refinement revisiting overlapping φ, repeated Evaluate calls, the several
// rewards of one model sharing a horizon — where the same (model, t) pair
// is solved over and over.
//
// Every fill is a fresh solve from t=0, so a hit returns bit-identical
// values to a miss and cache state (including eviction order) can never
// change a result. The cache is bounded: beyond capacity the oldest entry
// is evicted (FIFO), which is ideal for grid-plus-refinement access
// patterns where old horizons are not revisited.
//
// Concurrency: the cache is safe for any number of concurrent readers and
// fillers. One mutex guards the map, the FIFO order and the counters, and
// it is deliberately held across a miss's fill solve — so concurrent
// requests for the same horizon can never duplicate the solve (the second
// arrival finds the entry filled), at the cost of serializing concurrent
// fills of distinct horizons on the lock. That trade is right for both of
// the cache's uses: the per-analyzer memo paths are sequential, and on
// the gsuserve serving path (many requests sharing one cached analyzer,
// see docs/SERVING.md) duplicate-solve suppression is exactly the
// behaviour wanted under a thundering herd. Evicted entries are only
// dropped from the map, never mutated, so vectors returned before an
// eviction stay valid. TestSolveCacheConcurrentHammer exercises all of
// this under the race detector.
//
// Returned slices are the cache's backing arrays: callers must treat them
// as read-only.
type SolveCache struct {
	chain    *Chain
	pi0      []float64
	capacity int
	withAcc  bool

	mu        sync.Mutex
	entries   map[float64]*solveEntry
	order     []float64 // insertion order, for FIFO eviction
	hits      uint64
	misses    uint64
	evictions uint64
}

// solveEntry is one memoized horizon; acc is nil when the cache was built
// without accumulated solves.
type solveEntry struct {
	pi  []float64
	acc []float64
}

// NewSolveCache builds a cache over chain solves from the initial
// distribution pi0 (copied). capacity bounds the number of retained
// horizons (minimum 1; values below are raised). When withAccumulated is
// set every fill performs one combined transient+accumulated pass and both
// vectors are served; otherwise only π(t) is computed and requesting the
// accumulated view is an error. The mode is fixed at construction so a
// given horizon is always produced by the same solver path, keeping cached
// and uncached results bit-identical.
func NewSolveCache(chain *Chain, pi0 []float64, capacity int, withAccumulated bool) (*SolveCache, error) {
	if chain == nil {
		return nil, fmt.Errorf("ctmc: SolveCache needs a chain")
	}
	if err := chain.checkDistribution(pi0); err != nil {
		return nil, err
	}
	if capacity < 1 {
		capacity = 1
	}
	return &SolveCache{
		chain:    chain,
		pi0:      append([]float64(nil), pi0...),
		capacity: capacity,
		withAcc:  withAccumulated,
		entries:  make(map[float64]*solveEntry),
	}, nil
}

// Transient returns π(t), solving and memoizing on first use.
func (s *SolveCache) Transient(t float64) ([]float64, error) {
	return s.TransientContext(context.Background(), t)
}

// TransientContext is Transient under a caller-carried context: hits,
// misses, evictions, and any fill's solver pass report to the context's
// obs scope/tracer.
func (s *SolveCache) TransientContext(ctx context.Context, t float64) ([]float64, error) {
	e, err := s.lookup(ctx, t)
	if err != nil {
		return nil, err
	}
	return e.pi, nil
}

// TransientAccumulated returns π(t) and L(t) = ∫₀ᵗ π(u)du from one
// memoized combined pass. The cache must have been built with
// withAccumulated set.
func (s *SolveCache) TransientAccumulated(t float64) (pi, acc []float64, err error) {
	return s.TransientAccumulatedContext(context.Background(), t)
}

// TransientAccumulatedContext is TransientAccumulated under a
// caller-carried context.
func (s *SolveCache) TransientAccumulatedContext(ctx context.Context, t float64) (pi, acc []float64, err error) {
	if !s.withAcc {
		return nil, nil, fmt.Errorf("ctmc: SolveCache was built without accumulated solves")
	}
	e, err := s.lookup(ctx, t)
	if err != nil {
		return nil, nil, err
	}
	return e.pi, e.acc, nil
}

// lookup serves a horizon from the memo, filling it with a full-horizon
// solve on a miss.
func (s *SolveCache) lookup(ctx context.Context, t float64) (*solveEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[t]; ok {
		s.hits++
		obs.Count(ctx, obs.CtrCacheHits, 1)
		return e, nil
	}
	s.misses++
	obs.Count(ctx, obs.CtrCacheMisses, 1)
	e := &solveEntry{}
	var err error
	if s.withAcc {
		e.pi, e.acc, err = s.chain.transientAccumulated(ctx, s.pi0, t)
	} else {
		e.pi, err = s.chain.TransientContext(ctx, s.pi0, t)
	}
	if err != nil {
		return nil, err
	}
	if len(s.order) >= s.capacity {
		evict := s.order[0]
		s.order = s.order[1:]
		delete(s.entries, evict)
		s.evictions++
		obs.Count(ctx, obs.CtrCacheEvictions, 1)
	}
	s.entries[t] = e
	s.order = append(s.order, t)
	return e, nil
}

// Stats returns the hit and miss counts so far, for tests and metrics.
func (s *SolveCache) Stats() (hits, misses uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// Snapshot returns the full cache statistics — hits, misses, evictions,
// and the number of currently memoized horizons — for run manifests.
func (s *SolveCache) Snapshot() obs.CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return obs.CacheStats{
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
		Len:       len(s.entries),
	}
}

// Len returns the number of memoized horizons.
func (s *SolveCache) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
