package ctmc

import (
	"math"
	"testing"

	"guardedop/internal/sparse"
)

func TestTransientSeriesMatchesIndividualSolves(t *testing.T) {
	c := birthDeath(t, 6, 2.0, 3.0)
	pi0, _ := c.PointMass(0)
	ts := []float64{5, 0.5, 2, 0, 5} // unsorted, with a duplicate and zero
	series, err := c.TransientSeries(pi0, ts)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(ts) {
		t.Fatalf("got %d results", len(series))
	}
	for i, tt := range ts {
		want, err := c.Transient(pi0, tt)
		if err != nil {
			t.Fatal(err)
		}
		if sparse.L1Dist(series[i], want) > 1e-8 {
			t.Errorf("t=%v: series deviates by %g", tt, sparse.L1Dist(series[i], want))
		}
	}
	// The duplicate entries must be identical.
	if sparse.L1Dist(series[0], series[4]) != 0 {
		t.Error("duplicate time points differ")
	}
}

func TestTransientSeriesStiff(t *testing.T) {
	// Incremental propagation across the stiff regime: the 3-state chain
	// of TestStiffTransientMatchesAnalytic evaluated on a grid.
	mu, lambda := 1e-4, 1200.0
	g := sparse.NewCOO(3, 3)
	g.Add(0, 1, mu)
	g.Add(0, 0, -mu)
	g.Add(1, 2, lambda)
	g.Add(1, 1, -lambda)
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	pi0, _ := c.PointMass(0)
	ts := []float64{1000, 5000, 10000}
	series, err := c.TransientSeries(pi0, ts)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range ts {
		want := math.Exp(-mu * tt)
		if math.Abs(series[i][0]-want) > 1e-8 {
			t.Errorf("t=%v: P(0) = %.12f, want %.12f", tt, series[i][0], want)
		}
	}
}

func TestTransientSeriesValidation(t *testing.T) {
	c := twoState(t, 1, 1)
	pi0, _ := c.PointMass(0)
	if _, err := c.TransientSeries(pi0, []float64{1, -2}); err == nil {
		t.Error("negative time accepted")
	}
	out, err := c.TransientSeries(pi0, nil)
	if err != nil || out != nil {
		t.Errorf("empty series: %v, %v", out, err)
	}
	if _, err := c.TransientSeries([]float64{1}, []float64{1}); err == nil {
		t.Error("bad distribution accepted")
	}
}

// Chains past the dense-solver size limit must route through
// uniformization even at stiff horizons, and still conserve total time in
// the accumulated solution.
func TestLargeChainAccumulatedUsesUniformization(t *testing.T) {
	if testing.Short() {
		t.Skip("large-chain solver test skipped in -short mode")
	}
	n := denseTransientLimit + 6
	c := birthDeath(t, n, 2.0, 3.0)
	pi0, _ := c.PointMass(0)
	// q*t above the uniformization budget: the n > denseTransientLimit
	// guard must still pick uniformization (dense expm on 2n x 2n would be
	// the wrong tool here).
	tt := (uniformizationBudget + 1e4) / (c.MaxExitRate() * 1.02)
	acc, err := c.Accumulated(pi0, tt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sparse.Sum(acc)-tt) > 1e-6*tt {
		t.Errorf("sum L(t) = %v, want %v", sparse.Sum(acc), tt)
	}
	pi, err := c.Transient(pi0, tt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sparse.Sum(pi)-1) > 1e-9 {
		t.Errorf("transient mass = %v", sparse.Sum(pi))
	}
}
