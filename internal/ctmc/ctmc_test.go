package ctmc

import (
	"math"
	"testing"

	"guardedop/internal/sparse"
)

// twoState builds the classic two-state chain 0 --a--> 1, 1 --b--> 0.
func twoState(t *testing.T, a, b float64) *Chain {
	t.Helper()
	g := sparse.NewCOO(2, 2)
	g.Add(0, 0, -a)
	g.Add(0, 1, a)
	g.Add(1, 0, b)
	g.Add(1, 1, -b)
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// birthDeath builds an M/M/1-like truncated birth-death chain on n states.
func birthDeath(t *testing.T, n int, lambda, mu float64) *Chain {
	t.Helper()
	g := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		if i+1 < n {
			g.Add(i, i+1, lambda)
			g.Add(i, i, -lambda)
		}
		if i > 0 {
			g.Add(i, i-1, mu)
			g.Add(i, i, -mu)
		}
	}
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadGenerators(t *testing.T) {
	tests := []struct {
		name  string
		build func() *sparse.COO
	}{
		{"non-square", func() *sparse.COO {
			return sparse.NewCOO(2, 3)
		}},
		{"negative off-diagonal", func() *sparse.COO {
			g := sparse.NewCOO(2, 2)
			g.Add(0, 1, -1)
			g.Add(0, 0, 1)
			return g
		}},
		{"positive diagonal", func() *sparse.COO {
			g := sparse.NewCOO(2, 2)
			g.Add(0, 0, 1)
			g.Add(0, 1, -1)
			return g
		}},
		{"row sum nonzero", func() *sparse.COO {
			g := sparse.NewCOO(2, 2)
			g.Add(0, 1, 2)
			g.Add(0, 0, -1)
			return g
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.build()); err == nil {
				t.Fatal("New accepted an invalid generator")
			}
		})
	}
}

func TestAbsorbingStateDetection(t *testing.T) {
	g := sparse.NewCOO(3, 3)
	g.Add(0, 1, 1)
	g.Add(0, 0, -1)
	g.Add(1, 2, 2)
	g.Add(1, 1, -2)
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.IsAbsorbing(0) || c.IsAbsorbing(1) || !c.IsAbsorbing(2) {
		t.Errorf("absorbing flags = (%v,%v,%v), want (false,false,true)",
			c.IsAbsorbing(0), c.IsAbsorbing(1), c.IsAbsorbing(2))
	}
	abs := c.AbsorbingStates()
	if len(abs) != 1 || abs[0] != 2 {
		t.Errorf("AbsorbingStates = %v, want [2]", abs)
	}
}

// Analytic transient solution for the two-state chain:
// P(in 1 at t | start 0) = a/(a+b) (1 - e^{-(a+b)t}).
func TestTwoStateTransientAnalytic(t *testing.T) {
	a, b := 3.0, 1.0
	c := twoState(t, a, b)
	pi0, _ := c.PointMass(0)
	for _, tt := range []float64{0, 0.01, 0.1, 0.5, 1, 5, 50} {
		want := a / (a + b) * (1 - math.Exp(-(a+b)*tt))
		got, err := c.TransientUniformization(pi0, tt, UniformizationOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got[1]-want) > 1e-10 {
			t.Errorf("t=%v: P(state 1) = %.15f, want %.15f", tt, got[1], want)
		}
		gotE, err := c.TransientExpm(pi0, tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gotE[1]-want) > 1e-10 {
			t.Errorf("t=%v: expm P(state 1) = %.15f, want %.15f", tt, gotE[1], want)
		}
	}
}

// Analytic accumulated solution for the two-state chain:
// ∫₀ᵗ P(in 1 at u)du = a/(a+b)·t - a/(a+b)²·(1 - e^{-(a+b)t}).
func TestTwoStateAccumulatedAnalytic(t *testing.T) {
	a, b := 2.0, 5.0
	c := twoState(t, a, b)
	pi0, _ := c.PointMass(0)
	for _, tt := range []float64{0, 0.2, 1, 4, 20} {
		s := a + b
		want := a/s*tt - a/(s*s)*(1-math.Exp(-s*tt))
		got, err := c.AccumulatedUniformization(pi0, tt, UniformizationOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got[1]-want) > 1e-9 {
			t.Errorf("t=%v: unif L_1 = %.12f, want %.12f", tt, got[1], want)
		}
		gotE, err := c.AccumulatedExpm(pi0, tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gotE[1]-want) > 1e-8 {
			t.Errorf("t=%v: expm L_1 = %.12f, want %.12f", tt, gotE[1], want)
		}
	}
}

func TestAccumulatedSumsToT(t *testing.T) {
	// Σ_s L_s(t) == t for any chain (total time is conserved).
	c := birthDeath(t, 6, 2.0, 3.0)
	pi0, _ := c.PointMass(0)
	for _, tt := range []float64{0.5, 3, 17} {
		acc, err := c.AccumulatedUniformization(pi0, tt, UniformizationOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sparse.Sum(acc)-tt) > 1e-8 {
			t.Errorf("sum L(t) = %v, want %v", sparse.Sum(acc), tt)
		}
		accE, err := c.AccumulatedExpm(pi0, tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sparse.Sum(accE)-tt) > 1e-7 {
			t.Errorf("expm sum L(t) = %v, want %v", sparse.Sum(accE), tt)
		}
	}
}

func TestTransientRejectsBadInput(t *testing.T) {
	c := twoState(t, 1, 1)
	if _, err := c.TransientUniformization([]float64{1}, 1, UniformizationOptions{}); err == nil {
		t.Error("accepted wrong-length distribution")
	}
	if _, err := c.TransientUniformization([]float64{0.5, 0.4}, 1, UniformizationOptions{}); err == nil {
		t.Error("accepted non-normalized distribution")
	}
	pi0, _ := c.PointMass(0)
	if _, err := c.TransientUniformization(pi0, -1, UniformizationOptions{}); err == nil {
		t.Error("accepted negative time")
	}
	if _, err := c.TransientExpm(pi0, math.Inf(1)); err == nil {
		t.Error("accepted infinite time")
	}
}

func TestAllAbsorbingChainTransient(t *testing.T) {
	g := sparse.NewCOO(2, 2)
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	pi0 := []float64{0.3, 0.7}
	got, err := c.TransientUniformization(pi0, 10, UniformizationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0.3 || got[1] != 0.7 {
		t.Errorf("frozen chain moved: %v", got)
	}
	acc, err := c.AccumulatedUniformization(pi0, 10, UniformizationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc[0]-3) > 1e-12 || math.Abs(acc[1]-7) > 1e-12 {
		t.Errorf("frozen chain accumulated %v, want [3 7]", acc)
	}
}

func TestPointMassRange(t *testing.T) {
	c := twoState(t, 1, 1)
	if _, err := c.PointMass(2); err == nil {
		t.Error("PointMass accepted out-of-range state")
	}
	if _, err := c.PointMass(-1); err == nil {
		t.Error("PointMass accepted negative state")
	}
}
