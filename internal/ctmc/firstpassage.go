package ctmc

import (
	"errors"
	"fmt"

	"guardedop/internal/sparse"
)

// FirstPassage holds expected hitting times and hitting probabilities for a
// target state set.
type FirstPassage struct {
	// HitProbability[s] is the probability the chain started in s ever
	// enters the target set.
	HitProbability []float64
	// MeanTime[s] is E[T·1(hit)] from s: the expected first-passage time
	// accumulated on hitting trajectories only. When HitProbability[s] is
	// one this is the classical expected hitting time; otherwise divide by
	// HitProbability[s] for the conditional mean. Target states have 0.
	MeanTime []float64
}

// errEmptyTargets guards FirstPassageAnalysis.
var errEmptyTargets = errors.New("ctmc: empty first-passage target set")

// FirstPassageAnalysis computes, for every state, the probability of ever
// reaching the target set and the expected first-passage time. Target
// states themselves have probability 1 and time 0. The analysis treats the
// targets as absorbing: transitions out of them are ignored.
func (c *Chain) FirstPassageAnalysis(targets []int) (*FirstPassage, error) {
	if len(targets) == 0 {
		return nil, errEmptyTargets
	}
	isTarget := make(map[int]bool, len(targets))
	for _, s := range targets {
		if s < 0 || s >= c.n {
			return nil, fmt.Errorf("ctmc: target state %d out of range [0,%d)", s, c.n)
		}
		isTarget[s] = true
	}

	fp := &FirstPassage{
		HitProbability: make([]float64, c.n),
		MeanTime:       make([]float64, c.n),
	}
	for s := range isTarget {
		fp.HitProbability[s] = 1
	}

	// Restrict the linear system to non-target states that can reach the
	// target at all (reverse reachability from the target set); states
	// that cannot — absorbing traps or closed classes avoiding the target
	// — have hitting probability 0 and contribute no hitting time, and
	// would make the restricted block singular if kept.
	canReach := c.reverseReachable(isTarget)
	var rest []int
	restIdx := make(map[int]int)
	for s := 0; s < c.n; s++ {
		if !isTarget[s] && canReach[s] {
			restIdx[s] = len(rest)
			rest = append(rest, s)
		}
	}
	nr := len(rest)
	if nr == 0 {
		return fp, nil
	}

	// Hitting probabilities h solve  Q_RR h + r = 0  with
	// r[i] = Σ_{t in targets} Q(rest[i], t); equivalently (-Q_RR) h = r.
	// Mean times m solve (-Q_RR) m = h (unconditional expectation
	// accumulates time only along hitting trajectories when h < 1; when
	// h == 1 this is the classical hitting-time system (-Q_RR) m = 1).
	qrr := sparse.NewDense(nr, nr)
	r := make([]float64, nr)
	for i, s := range rest {
		c.gen.Row(s, func(t int, v float64) {
			if j, ok := restIdx[t]; ok {
				qrr.Set(i, j, -v)
			} else if t != s && isTarget[t] {
				// Rates into the target feed the hitting probability;
				// rates into excluded states (traps that cannot reach the
				// target) are pure loss and appear only through the
				// diagonal exit rate.
				r[i] += v
			}
		})
	}
	f, err := sparse.FactorLU(qrr)
	if err != nil {
		// A singular restricted block means some state can neither reach
		// the target nor leave its component: hitting probability 0 there.
		return nil, fmt.Errorf("ctmc: first-passage system singular (states that never move): %w", err)
	}
	h, err := f.Solve(r)
	if err != nil {
		return nil, err
	}
	m, err := f.Solve(h)
	if err != nil {
		return nil, err
	}
	for i, s := range rest {
		p := h[i]
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		fp.HitProbability[s] = p
		fp.MeanTime[s] = m[i]
	}
	return fp, nil
}

// reverseReachable returns, for every state, whether the target set is
// reachable from it, by breadth-first search over reversed transitions.
func (c *Chain) reverseReachable(isTarget map[int]bool) []bool {
	// Build reverse adjacency once.
	radj := make([][]int, c.n)
	for s := 0; s < c.n; s++ {
		c.gen.Row(s, func(t int, v float64) {
			if t != s && v > 0 {
				radj[t] = append(radj[t], s)
			}
		})
	}
	seen := make([]bool, c.n)
	var queue []int
	for s := range isTarget {
		seen[s] = true
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, pred := range radj[s] {
			if !seen[pred] {
				seen[pred] = true
				queue = append(queue, pred)
			}
		}
	}
	return seen
}

// MeanFirstPassage returns the expected first-passage time into the target
// set from the given initial distribution, together with the probability of
// ever hitting it. When the hitting probability is below one, the returned
// time is the unconditional expectation (time accrued only on hitting
// trajectories).
func (c *Chain) MeanFirstPassage(pi0 []float64, targets []int) (meanTime, hitProb float64, err error) {
	if err := c.checkDistribution(pi0); err != nil {
		return 0, 0, err
	}
	fp, err := c.FirstPassageAnalysis(targets)
	if err != nil {
		return 0, 0, err
	}
	for s, p := range pi0 {
		if p == 0 {
			continue
		}
		meanTime += p * fp.MeanTime[s]
		hitProb += p * fp.HitProbability[s]
	}
	return meanTime, hitProb, nil
}

// TimeAveragedReward returns the expected time-averaged reward over [0, t]:
// the accumulated reward divided by the interval length. For t == 0 it
// returns the instant-of-time reward at 0.
func (c *Chain) TimeAveragedReward(pi0 []float64, t float64, rates []float64) (float64, error) {
	if t == 0 {
		return c.TransientReward(pi0, 0, rates)
	}
	acc, err := c.AccumulatedReward(pi0, t, rates)
	if err != nil {
		return 0, err
	}
	return acc / t, nil
}
