package ctmc

import (
	"math"
	"testing"

	"guardedop/internal/sparse"
)

// singleExit builds 0 --rate--> 1 (absorbing): absorption time is
// exponential(rate).
func singleExit(t *testing.T, rate float64) *Chain {
	t.Helper()
	g := sparse.NewCOO(2, 2)
	g.Add(0, 1, rate)
	g.Add(0, 0, -rate)
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAbsorptionTimeCDFExponential(t *testing.T) {
	rate := 0.3
	c := singleExit(t, rate)
	pi0, _ := c.PointMass(0)
	ts := []float64{0, 1, 5, 10}
	cdf, err := c.AbsorptionTimeCDF(pi0, ts)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range ts {
		want := 1 - math.Exp(-rate*tt)
		if math.Abs(cdf[i]-want) > 1e-10 {
			t.Errorf("CDF(%v) = %.12f, want %.12f", tt, cdf[i], want)
		}
	}
}

func TestAbsorptionTimeQuantileExponential(t *testing.T) {
	rate := 2.0
	c := singleExit(t, rate)
	pi0, _ := c.PointMass(0)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got, err := c.AbsorptionTimeQuantile(pi0, q, 1e-8)
		if err != nil {
			t.Fatal(err)
		}
		want := -math.Log(1-q) / rate
		if math.Abs(got-want) > 1e-6*want {
			t.Errorf("q=%v: quantile = %.9f, want %.9f", q, got, want)
		}
	}
}

func TestAbsorptionTimeQuantileDefective(t *testing.T) {
	// 0 races to absorbing trap 1 (prob 0.5) or stays forever in the
	// 2 <-> 0 cycle... build: 0 -> 1 (rate 1), 0 -> 2 (rate 1), 2 -> 0
	// (rate 1): every path eventually absorbs (2 always returns to 0), so
	// instead make 2 absorbing as well but ask for a quantile above the
	// reachable mass of state 1 alone — the CDF counts ALL absorbing
	// states, so use a chain where total absorption is genuinely partial:
	// no finite CTMC has that, so verify the error path via an ergodic
	// chain instead.
	c := twoState(t, 1, 1)
	pi0, _ := c.PointMass(0)
	if _, err := c.AbsorptionTimeCDF(pi0, []float64{1}); err == nil {
		t.Error("ergodic chain accepted")
	}
	if _, err := c.AbsorptionTimeQuantile(pi0, 0.5, 0); err == nil {
		t.Error("ergodic chain accepted by quantile")
	}
}

func TestAbsorptionTimeQuantileValidation(t *testing.T) {
	c := singleExit(t, 1)
	pi0, _ := c.PointMass(0)
	for _, q := range []float64{0, 1, -0.5, math.NaN()} {
		if _, err := c.AbsorptionTimeQuantile(pi0, q, 0); err == nil {
			t.Errorf("quantile level %v accepted", q)
		}
	}
}

// The guarded-operation reliability question the toolkit now answers
// directly: the 10th-percentile time to mission failure for the unguarded
// upgraded pair.
func TestAbsorptionQuantileMatchesRMNdStyleChain(t *testing.T) {
	mu, lambda := 1e-4, 120.0
	g := sparse.NewCOO(3, 3)
	g.Add(0, 1, mu)
	g.Add(0, 0, -mu)
	g.Add(1, 2, lambda)
	g.Add(1, 1, -lambda)
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	pi0, _ := c.PointMass(0)
	got, err := c.AbsorptionTimeQuantile(pi0, 0.1, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Failure time ≈ exponential(mu) (the lambda stage is negligible).
	want := -math.Log(0.9) / mu
	if math.Abs(got-want) > 0.01*want {
		t.Errorf("10th percentile = %.1f, want ≈ %.1f", got, want)
	}
}
