// Package ctmc implements continuous-time Markov chain analysis: transient
// state-probability solution, accumulated (time-integrated) state
// probabilities, steady-state solution, and absorbing-state analysis.
//
// A chain is described by its infinitesimal generator Q (off-diagonal entries
// are transition rates, diagonal entries make rows sum to zero) and an
// initial probability distribution.
//
// # Transient solution
//
// Two engines are provided and selected automatically by Transient /
// TransientAccumulated:
//
//   - Uniformization (Jensen's method) with Fox–Glynn-style Poisson weight
//     computation and optional steady-state detection. This is exact up to
//     truncation error and cheap when q·t is moderate, where q is the
//     uniformization rate (max |Q_ii| padding) and t the horizon.
//   - Dense matrix exponential via Padé(13) approximation with scaling and
//     squaring (Higham 2005). Cost is O(log2(‖Q‖t)·n³), independent of
//     stiffness, which makes it the right tool for the stiff horizons that
//     arise in the guarded-operation study (message rates of 1200/h against
//     fault rates of 1e-8/h over 10⁴ h, i.e. q·t ≈ 7·10⁷).
//
// Accumulated probabilities ∫₀ᵗ π(u) du — the kernel of expected
// interval-of-time reward variables — are computed either by the
// uniformization complementary-CDF formula or by exponentiating the
// augmented generator [[Q, I], [0, 0]], whose top-right block is the
// integral (Van Loan 1978).
//
// # Steady state
//
// SteadyState solves πQ = 0, Σπ = 1 by dense LU for small chains and by
// SOR/Gauss–Seidel or uniformized power iteration for larger ones.
//
// # Absorbing chains
//
// AbsorbingAnalysis partitions states into transient and absorbing sets and
// computes eventual absorption probabilities and the mean time to
// absorption via the fundamental matrix.
package ctmc
