package ctmc

import (
	"context"
	"fmt"
	"math"

	"guardedop/internal/obs"
	"guardedop/internal/robust"
	"guardedop/internal/sparse"
)

// UniformizationOptions tunes the uniformization transient solver.
type UniformizationOptions struct {
	// Epsilon is the permitted Poisson truncation error (default 1e-12).
	Epsilon float64
	// RatePadding multiplies the uniformization rate above max|Q_ii| to keep
	// the DTMC aperiodic; default 1.02.
	RatePadding float64
	// SteadyStateDetection stops the vector iteration once successive DTMC
	// iterates differ by less than SteadyStateTol in L1, folding the
	// remaining Poisson mass onto the converged vector. Default on.
	DisableSteadyStateDetection bool
	// SteadyStateTol is the detection threshold (default 1e-14).
	SteadyStateTol float64
	// MaxIterations caps the number of matrix-vector products; 0 means
	// a generous default derived from the Poisson window.
	MaxIterations int
}

// withDefaults resolves zero values and rejects degenerate settings.
// Every field is validated, not just defaulted: a negative RatePadding
// used to produce q < 0 and silently build a garbage uniformized DTMC,
// and a negative SteadyStateTol silently disabled steady-state detection
// (no iterate distance is < 0). Both now fail loudly as invariant
// violations instead of corrupting or degrading the solve.
func (o UniformizationOptions) withDefaults() (UniformizationOptions, error) {
	if o.Epsilon == 0 {
		o.Epsilon = 1e-12
	}
	if math.IsNaN(o.Epsilon) || o.Epsilon < 0 || o.Epsilon >= 1 {
		return o, fmt.Errorf("ctmc: uniformization Epsilon %g outside (0, 1): %w", o.Epsilon, robust.ErrInvariant)
	}
	if o.RatePadding == 0 {
		o.RatePadding = 1.02
	}
	// Padding below 1 is as broken as a negative value: q then undercuts
	// max|Q_ii| and the uniformized DTMC picks up negative diagonals.
	if math.IsNaN(o.RatePadding) || o.RatePadding < 1 {
		return o, fmt.Errorf("ctmc: uniformization RatePadding %g must be >= 1: %w", o.RatePadding, robust.ErrInvariant)
	}
	if o.SteadyStateTol == 0 {
		o.SteadyStateTol = 1e-14
	}
	if math.IsNaN(o.SteadyStateTol) || o.SteadyStateTol < 0 {
		return o, fmt.Errorf("ctmc: uniformization SteadyStateTol %g must be >= 0: %w", o.SteadyStateTol, robust.ErrInvariant)
	}
	if o.MaxIterations < 0 {
		return o, fmt.Errorf("ctmc: uniformization MaxIterations %d must be >= 0: %w", o.MaxIterations, robust.ErrInvariant)
	}
	return o, nil
}

// TransientUniformization computes the state-probability vector π(t) from
// initial distribution pi0 by uniformization. It also works for t == 0
// (returning a copy of pi0).
func (c *Chain) TransientUniformization(pi0 []float64, t float64, opts UniformizationOptions) ([]float64, error) {
	pi, _, err := c.uniformize(context.Background(), pi0, t, opts, false)
	return pi, err
}

// AccumulatedUniformization computes L(t) = ∫₀ᵗ π(u) du, the vector of
// expected total sojourn times per state over [0, t], by the uniformization
// complementary-CDF formula:
//
//	L(t) = (1/q) Σ_k (1 − F(k; qt)) · π₀ Pᵏ
//
// where F is the Poisson CDF and P the uniformized DTMC matrix.
func (c *Chain) AccumulatedUniformization(pi0 []float64, t float64, opts UniformizationOptions) ([]float64, error) {
	_, acc, err := c.uniformize(context.Background(), pi0, t, opts, true)
	return acc, err
}

// uniformize runs the shared vector iteration. When wantAccumulated is true
// the second return value holds ∫₀ᵗ π(u)du; the first holds π(t) always.
// One call is one solver pass: it counts against the context's solve-pass
// scope and, when a tracer is attached, emits one "ctmc.uniformize" span
// annotated with the state count, the Poisson truncation point, and the
// number of vector iterations actually spent.
func (c *Chain) uniformize(ctx context.Context, pi0 []float64, t float64, opts UniformizationOptions, wantAccumulated bool) ([]float64, []float64, error) {
	if err := c.checkDistribution(pi0); err != nil {
		return nil, nil, err
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, nil, fmt.Errorf("%w: t=%g", errNegativeTime, t)
	}
	countSolveOp(ctx)
	_, sp := obs.StartSpan(ctx, "ctmc.uniformize")
	defer sp.End()
	sp.SetInt("states", int64(c.n))
	sp.SetFloat("t", t)
	iterations := 0
	defer func() { sp.SetInt("iterations", int64(iterations)) }()
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, nil, err
	}

	pi := append([]float64(nil), pi0...)
	acc := make([]float64, c.n)
	if t == 0 {
		return pi, acc, nil
	}
	q := c.q * opts.RatePadding
	if q == 0 {
		// All states absorbing: distribution never moves.
		if wantAccumulated {
			for i := range acc {
				acc[i] = pi0[i] * t
			}
		}
		return pi, acc, nil
	}

	win, err := newPoissonWindow(q*t, opts.Epsilon)
	if err != nil {
		return nil, nil, err
	}
	sp.SetInt("poisson_right", int64(win.Right))
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = win.Right + 2
	}

	p := c.uniformized(q)
	v := append([]float64(nil), pi0...) // v_k = pi0 * P^k
	next := make([]float64, c.n)
	out := make([]float64, c.n)

	// cdf tracks F(k) over the truncated window; accWeight tracks
	// Σ_{j<=k} (1-F(j))/q so steady-state folding can use t - accWeight.
	cdf := 0.0
	accWeight := 0.0
	for k := 0; ; k++ {
		wk := win.PMF(k)
		cdf += wk
		sparse.Axpy(out, wk, v)
		if wantAccumulated {
			ccdf := 1 - cdf
			if ccdf < 0 {
				ccdf = 0
			}
			sparse.Axpy(acc, ccdf/q, v)
			accWeight += ccdf / q
		}
		if k >= win.Right {
			break
		}
		// The cap is on matrix-vector products (the doc contract), so it is
		// checked against the product count immediately before the product.
		// Checking k after the window break made the guard dead under
		// defaults: maxIter = win.Right + 2 could never be reached once the
		// loop broke at k >= win.Right.
		if iterations >= maxIter {
			return nil, nil, fmt.Errorf("ctmc: uniformization exceeded %d matrix-vector products (qt=%g): %w",
				maxIter, q*t, robust.ErrNotConverged)
		}
		p.VecMul(next, v)
		iterations++
		if !opts.DisableSteadyStateDetection {
			if sparse.L1Dist(next, v) < opts.SteadyStateTol {
				sp.Event("steady_state_detected")
				// The DTMC iterates have converged; fold all remaining
				// Poisson mass (and accumulated weight) onto v.
				sparse.Axpy(out, 1-cdf, next)
				if wantAccumulated {
					rem := t - accWeight
					if rem > 0 {
						sparse.Axpy(acc, rem, next)
					}
				}
				copy(pi, out)
				return pi, acc, checkUniformized(pi, acc, wantAccumulated)
			}
		}
		v, next = next, v
	}
	copy(pi, out)
	return pi, acc, checkUniformized(pi, acc, wantAccumulated)
}

// checkUniformized guards the uniformization outputs against NaN/Inf
// contamination (which a pathological generator can smuggle through the
// vector iteration without tripping any intermediate check).
func checkUniformized(pi, acc []float64, wantAccumulated bool) error {
	if err := robust.CheckFiniteSlice("pi", pi); err != nil {
		return fmt.Errorf("ctmc: uniformization output: %w", err)
	}
	if wantAccumulated {
		if err := robust.CheckFiniteSlice("acc", acc); err != nil {
			return fmt.Errorf("ctmc: uniformization accumulated output: %w", err)
		}
	}
	return nil
}
