package ctmc

import (
	"math"
	"testing"
)

// FuzzPoissonWindow drives the truncated-Poisson computation across the
// full mean range the solvers use, checking normalization, non-negativity
// and window sanity for arbitrary inputs.
func FuzzPoissonWindow(f *testing.F) {
	f.Add(3.7, 1e-12)
	f.Add(0.0, 1e-10)
	f.Add(1e5, 1e-12)
	f.Add(0.004, 1e-9)
	f.Fuzz(func(t *testing.T, mean, eps float64) {
		win, err := newPoissonWindow(mean, eps)
		if err != nil {
			return // invalid inputs must be reported, not panic
		}
		if win.Left < 0 || win.Right < win.Left {
			t.Fatalf("bad window [%d, %d] for mean %g", win.Left, win.Right, mean)
		}
		sum := 0.0
		for _, w := range win.Weights {
			if w < 0 || math.IsNaN(w) {
				t.Fatalf("bad weight %g for mean %g", w, mean)
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("weights sum to %g for mean %g", sum, mean)
		}
	})
}

// FuzzTwoStateTransient checks the closed-form two-state solution for
// arbitrary positive rates and horizons — the solver must agree with the
// formula wherever the inputs are representable.
func FuzzTwoStateTransient(f *testing.F) {
	f.Add(3.0, 1.0, 0.5)
	f.Add(1e-6, 5e3, 10.0)
	f.Fuzz(func(t *testing.T, a, b, horizon float64) {
		if !(a > 1e-9 && a < 1e6) || !(b > 1e-9 && b < 1e6) || !(horizon >= 0 && horizon < 1e4) {
			return
		}
		if a*horizon > 1e7 || b*horizon > 1e7 {
			return // beyond the supported stiffness budget for this fuzz target
		}
		c := twoState(t, a, b)
		pi0, _ := c.PointMass(0)
		got, err := c.Transient(pi0, horizon)
		if err != nil {
			t.Fatal(err)
		}
		want := a / (a + b) * (1 - math.Exp(-(a+b)*horizon))
		if math.Abs(got[1]-want) > 1e-7 {
			t.Fatalf("a=%g b=%g t=%g: P(1) = %.12f, want %.12f", a, b, horizon, got[1], want)
		}
	})
}
