package ctmc

import (
	"fmt"
	"math"
	"sort"
)

// TransientSeries computes π(t) for every time point in ts (which need not
// be sorted; the result is aligned with the input order). Rather than
// solving from zero for each point, the distribution is propagated
// incrementally between consecutive sorted times — for k points this costs
// one transient solve per gap instead of one per horizon, which matters for
// the long stiff horizons of the guarded-operation study.
func (c *Chain) TransientSeries(pi0 []float64, ts []float64) ([][]float64, error) {
	if err := c.checkDistribution(pi0); err != nil {
		return nil, err
	}
	if len(ts) == 0 {
		return nil, nil
	}
	order := make([]int, len(ts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ts[order[a]] < ts[order[b]] })

	out := make([][]float64, len(ts))
	cur := append([]float64(nil), pi0...)
	last := 0.0
	for _, idx := range order {
		t := ts[idx]
		if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return nil, fmt.Errorf("%w: t=%g", errNegativeTime, t)
		}
		dt := t - last
		if dt > 0 {
			next, err := c.propagate(cur, dt)
			if err != nil {
				return nil, err
			}
			cur = next
			last = t
		}
		out[idx] = append([]float64(nil), cur...)
	}
	return out, nil
}

// propagate advances a distribution by dt with automatic method selection.
// Unlike Transient it accepts an already-propagated distribution whose sum
// may have drifted by round-off, renormalizing defensively.
func (c *Chain) propagate(pi []float64, dt float64) ([]float64, error) {
	// Renormalize round-off drift so the distribution check passes.
	total := 0.0
	for _, v := range pi {
		total += v
	}
	if total > 0 && math.Abs(total-1) < 1e-6 {
		scaled := make([]float64, len(pi))
		for i, v := range pi {
			scaled[i] = v / total
		}
		pi = scaled
	}
	return c.Transient(pi, dt)
}
