package ctmc

import (
	"context"
	"fmt"
	"math"
	"sort"

	"guardedop/internal/obs"
	"guardedop/internal/robust"
	"guardedop/internal/sparse"
)

// TransientSeries computes π(t) for every time point in ts (which need not
// be sorted; the result is aligned with the input order). Rather than
// solving from zero for each point, the distribution is propagated
// incrementally between consecutive sorted times — for k points this costs
// one transient solve per gap instead of one per horizon, which matters for
// the long stiff horizons of the guarded-operation study.
func (c *Chain) TransientSeries(pi0 []float64, ts []float64) ([][]float64, error) {
	pis, _, err := c.seriesWalk(context.Background(), pi0, ts, false)
	return pis, err
}

// TransientSeriesContext is TransientSeries under a caller-carried
// context: the shared propagation emits one "ctmc.series" span covering
// every per-gap solver pass.
func (c *Chain) TransientSeriesContext(ctx context.Context, pi0 []float64, ts []float64) ([][]float64, error) {
	pis, _, err := c.seriesWalk(ctx, pi0, ts, false)
	return pis, err
}

// AccumulatedSeries computes L(t) = ∫₀ᵗ π(u)du for every time point in ts
// (unsorted input is aligned like TransientSeries), sharing one incremental
// propagation across the whole series: L(t_k) = L(t_{k−1}) + ∫ over the gap,
// with the gap integral solved from the propagated distribution.
func (c *Chain) AccumulatedSeries(pi0 []float64, ts []float64) ([][]float64, error) {
	_, accs, err := c.seriesWalk(context.Background(), pi0, ts, true)
	return accs, err
}

// TransientAccumulatedSeries computes both π(t) and L(t) = ∫₀ᵗ π(u)du for
// every time point in ts in a single shared incremental pass — the solver
// core of the curve engine, where every instant-of-time and accumulated
// reward of a φ-grid point is a dot product against these two vectors.
func (c *Chain) TransientAccumulatedSeries(pi0 []float64, ts []float64) (pis, accs [][]float64, err error) {
	return c.seriesWalk(context.Background(), pi0, ts, true)
}

// TransientAccumulatedSeriesContext is TransientAccumulatedSeries under a
// caller-carried context.
func (c *Chain) TransientAccumulatedSeriesContext(ctx context.Context, pi0 []float64, ts []float64) (pis, accs [][]float64, err error) {
	return c.seriesWalk(ctx, pi0, ts, true)
}

// seriesWalk is the shared series engine: it visits the time points in
// sorted order, advancing one distribution (and, when wantAcc is set, one
// running accumulated-sojourn vector) across the gaps between consecutive
// distinct times. Outputs are aligned with the input order; duplicate time
// points receive identical copies.
func (c *Chain) seriesWalk(ctx context.Context, pi0, ts []float64, wantAcc bool) (pis, accs [][]float64, err error) {
	if err := c.checkDistribution(pi0); err != nil {
		return nil, nil, err
	}
	if len(ts) == 0 {
		return nil, nil, nil
	}
	ctx, sp := obs.StartSpan(ctx, "ctmc.series")
	defer sp.End()
	sp.SetInt("states", int64(c.n))
	sp.SetInt("points", int64(len(ts)))
	order := make([]int, len(ts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ts[order[a]] < ts[order[b]] })

	pis = make([][]float64, len(ts))
	if wantAcc {
		accs = make([][]float64, len(ts))
	}
	cur := append([]float64(nil), pi0...)
	var cum []float64
	if wantAcc {
		cum = make([]float64, c.n)
	}
	last := 0.0
	steps := 0
	for _, idx := range order {
		t := ts[idx]
		if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return nil, nil, fmt.Errorf("%w: t=%g", errNegativeTime, t)
		}
		if dt := t - last; dt > 0 {
			renorm, err := renormalizeDrift(cur, steps)
			if err != nil {
				return nil, nil, err
			}
			if wantAcc {
				next, gapAcc, err := c.transientAccumulated(ctx, renorm, dt)
				if err != nil {
					return nil, nil, err
				}
				cur = next
				sparse.Axpy(cum, 1, gapAcc)
			} else {
				next, err := c.TransientContext(ctx, renorm, dt)
				if err != nil {
					return nil, nil, err
				}
				cur = next
			}
			steps++
			last = t
		}
		pis[idx] = append([]float64(nil), cur...)
		if wantAcc {
			accs[idx] = append([]float64(nil), cum...)
		}
	}
	sp.SetInt("gaps", int64(steps))
	return pis, accs, nil
}

// propagate advances a distribution by dt with automatic method selection.
// Unlike Transient it accepts an already-propagated distribution whose sum
// may have drifted by round-off over the steps incremental steps taken so
// far, renormalizing defensively within the step-scaled drift budget.
func (c *Chain) propagate(pi []float64, dt float64, steps int) ([]float64, error) {
	renorm, err := renormalizeDrift(pi, steps)
	if err != nil {
		return nil, err
	}
	return c.Transient(renorm, dt)
}

// Drift bounds for incrementally propagated distributions. Each solver pass
// can misplace probability mass only at round-off scale, so the tolerated
// deviation of the total mass from one grows linearly with the number of
// steps taken: the floor keeps the historical single-step allowance, and
// the per-step budget is orders of magnitude above what one uniformization
// or Padé pass actually loses (≈1e-12) while staying far below any genuine
// solver failure.
const (
	seriesDriftFloor   = 1e-6
	seriesDriftPerStep = 1e-9
)

// renormalizeDrift rescales a propagated distribution back to total mass
// one when the deviation is attributable to round-off growth over the
// steps propagated so far. A deviation beyond the step-scaled budget — or a
// non-finite or non-positive total — is a solver-integrity failure and is
// returned as an error classifiable as robust.ErrNonFinite, instead of
// silently handing the drifted vector to Transient to be rejected
// mid-series with an unclassifiable message.
func renormalizeDrift(pi []float64, steps int) ([]float64, error) {
	total := 0.0
	for _, v := range pi {
		total += v
	}
	if math.IsNaN(total) || math.IsInf(total, 0) || total <= 0 {
		return nil, fmt.Errorf("ctmc: propagated distribution mass is %g after %d steps: %w",
			total, steps, robust.ErrNonFinite)
	}
	drift := math.Abs(total - 1)
	if drift == 0 {
		return pi, nil
	}
	if tol := seriesDriftFloor + float64(steps)*seriesDriftPerStep; drift > tol {
		return nil, fmt.Errorf("ctmc: propagated distribution mass drifted to %g after %d steps (tolerance %g): %w",
			total, steps, tol, robust.ErrNonFinite)
	}
	scaled := make([]float64, len(pi))
	for i, v := range pi {
		scaled[i] = v / total
	}
	return scaled, nil
}
