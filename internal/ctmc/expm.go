package ctmc

import (
	"context"
	"fmt"
	"math"

	"guardedop/internal/obs"
	"guardedop/internal/robust"
	"guardedop/internal/sparse"
)

// padeTheta13 is the maximum infinity norm for which the order-13 Padé
// approximant achieves full double precision without scaling (Higham 2005).
const padeTheta13 = 5.371920351148152

// pade13Coeffs are the numerator coefficients of the [13/13] Padé
// approximant to the exponential.
var pade13Coeffs = [14]float64{
	64764752532480000, 32382376266240000, 7771770303897600, 1187353796428800,
	129060195264000, 10559470521600, 670442572800, 33522128640,
	1323241920, 40840800, 960960, 16380, 182, 1,
}

// Expm computes the matrix exponential e^A of a square dense matrix using
// the order-13 Padé approximant with scaling and squaring.
func Expm(a *sparse.Dense) (*sparse.Dense, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("ctmc: Expm needs a square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	n := a.Rows()
	if n == 0 {
		return sparse.NewDense(0, 0), nil
	}

	norm := a.InfNorm()
	s := 0
	if norm > padeTheta13 {
		s = int(math.Ceil(math.Log2(norm / padeTheta13)))
	}
	scaled := a.Scale(math.Ldexp(1, -s))

	x, err := pade13(scaled)
	if err != nil {
		return nil, err
	}
	for i := 0; i < s; i++ {
		x = x.Mul(x)
	}
	return x, nil
}

// pade13 evaluates the [13/13] Padé approximant of e^A for ‖A‖∞ ≤ θ13.
func pade13(a *sparse.Dense) (*sparse.Dense, error) {
	n := a.Rows()
	b := pade13Coeffs
	ident := sparse.Identity(n)
	a2 := a.Mul(a)
	a4 := a2.Mul(a2)
	a6 := a4.Mul(a2)

	// U = A (A6 (b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I)
	w1 := a6.Scale(b[13]).Add(a4.Scale(b[11])).Add(a2.Scale(b[9]))
	w2 := a6.Scale(b[7]).Add(a4.Scale(b[5])).Add(a2.Scale(b[3])).Add(ident.Scale(b[1]))
	u := a.Mul(a6.Mul(w1).Add(w2))

	// V = A6 (b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
	z1 := a6.Scale(b[12]).Add(a4.Scale(b[10])).Add(a2.Scale(b[8]))
	z2 := a6.Scale(b[6]).Add(a4.Scale(b[4])).Add(a2.Scale(b[2])).Add(ident.Scale(b[0]))
	v := a6.Mul(z1).Add(z2)

	// Solve (V - U) X = (V + U).
	num := v.Add(u)
	den := v.Add(u.Scale(-1))
	f, err := sparse.FactorLU(den)
	if err != nil {
		return nil, fmt.Errorf("ctmc: Padé denominator is singular: %w", err)
	}
	return f.SolveMatrix(num)
}

// TransientExpm computes π(t) = π₀ e^{Qt} by dense matrix exponential.
func (c *Chain) TransientExpm(pi0 []float64, t float64) ([]float64, error) {
	return c.transientExpm(context.Background(), pi0, t)
}

// transientExpm is TransientExpm under a caller-carried context: the pass
// counts against the context's solve scope and emits one "ctmc.expm" span.
func (c *Chain) transientExpm(ctx context.Context, pi0 []float64, t float64) ([]float64, error) {
	if err := c.checkDistribution(pi0); err != nil {
		return nil, err
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("%w: t=%g", errNegativeTime, t)
	}
	if t == 0 {
		return append([]float64(nil), pi0...), nil
	}
	countSolveOp(ctx)
	_, sp := obs.StartSpan(ctx, "ctmc.expm")
	defer sp.End()
	sp.SetInt("states", int64(c.n))
	sp.SetFloat("t", t)
	qt := c.gen.ToDense().Scale(t)
	e, err := Expm(qt)
	if err != nil {
		return nil, err
	}
	out := make([]float64, c.n)
	e.VecMul(out, pi0)
	clampProbabilities(out)
	if err := robust.CheckFiniteSlice("pi", out); err != nil {
		return nil, fmt.Errorf("ctmc: TransientExpm output: %w", err)
	}
	return out, nil
}

// AccumulatedExpm computes L(t) = ∫₀ᵗ π(u) du using the Van Loan augmented
// generator: exp([[Q, I], [0, 0]] t) has ∫₀ᵗ e^{Qu}du as its (1,2) block.
func (c *Chain) AccumulatedExpm(pi0 []float64, t float64) ([]float64, error) {
	_, acc, err := c.transientAccumulatedExpm(context.Background(), pi0, t)
	return acc, err
}

// transientAccumulatedExpm reads π(t) and L(t) off a single Van Loan
// augmented exponential: the (1,1) block of exp([[Q, I], [0, 0]] t) is
// e^{Qt} and the (1,2) block is ∫₀ᵗ e^{Qu}du, so one dense solver pass
// serves both the instant-of-time and the accumulated view.
func (c *Chain) transientAccumulatedExpm(ctx context.Context, pi0 []float64, t float64) (pi, acc []float64, err error) {
	if err := c.checkDistribution(pi0); err != nil {
		return nil, nil, err
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, nil, fmt.Errorf("%w: t=%g", errNegativeTime, t)
	}
	n := c.n
	acc = make([]float64, n)
	if t == 0 {
		return append([]float64(nil), pi0...), acc, nil
	}
	countSolveOp(ctx)
	_, sp := obs.StartSpan(ctx, "ctmc.expm_vanloan")
	defer sp.End()
	sp.SetInt("states", int64(n))
	sp.SetFloat("t", t)
	aug := sparse.NewDense(2*n, 2*n)
	for r := 0; r < n; r++ {
		c.gen.Row(r, func(cc int, v float64) {
			aug.Set(r, cc, v*t)
		})
		aug.Set(r, n+r, t)
	}
	e, err := Expm(aug)
	if err != nil {
		return nil, nil, err
	}
	pi = make([]float64, n)
	for j := 0; j < n; j++ {
		piSum, accSum := 0.0, 0.0
		for i := 0; i < n; i++ {
			piSum += pi0[i] * e.At(i, j)
			accSum += pi0[i] * e.At(i, n+j)
		}
		if accSum < 0 {
			accSum = 0
		}
		pi[j], acc[j] = piSum, accSum
	}
	clampProbabilities(pi)
	if err := robust.CheckFiniteSlice("pi", pi); err != nil {
		return nil, nil, fmt.Errorf("ctmc: augmented expm output: %w", err)
	}
	if err := robust.CheckFiniteSlice("acc", acc); err != nil {
		return nil, nil, fmt.Errorf("ctmc: augmented expm accumulated output: %w", err)
	}
	return pi, acc, nil
}

// clampProbabilities clips tiny negative round-off values to zero and
// renormalizes when the total is within round-off of one.
func clampProbabilities(v []float64) {
	sum := 0.0
	for i, x := range v {
		if x < 0 {
			if x < -1e-8 {
				// A genuinely negative probability indicates a solver bug;
				// leave it visible rather than papering over it.
				return
			}
			v[i] = 0
			x = 0
		}
		sum += x
	}
	if sum > 0 && math.Abs(sum-1) < 1e-6 {
		sparse.ScaleVec(v, 1/sum)
	}
}
