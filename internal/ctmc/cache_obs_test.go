package ctmc

import (
	"context"
	"testing"

	"guardedop/internal/obs"
)

// Snapshot must report hits, misses, evictions and the live entry count,
// and the same traffic must reach the obs counters carried by the context.
func TestSolveCacheSnapshotAndCounters(t *testing.T) {
	c := twoState(t, 1.5, 0.5)
	pi0, _ := c.PointMass(0)
	cache, err := NewSolveCache(c, pi0, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)

	// 3 distinct horizons through capacity 2: 3 misses, 1 eviction.
	for _, tt := range []float64{1, 2, 3} {
		if _, err := cache.TransientContext(ctx, tt); err != nil {
			t.Fatal(err)
		}
	}
	// One hit on a retained horizon.
	if _, err := cache.TransientContext(ctx, 3); err != nil {
		t.Fatal(err)
	}

	snap := cache.Snapshot()
	want := obs.CacheStats{Hits: 1, Misses: 3, Evictions: 1, Len: 2}
	if snap != want {
		t.Fatalf("Snapshot() = %+v, want %+v", snap, want)
	}
	if got := tr.Counter(obs.CtrCacheHits); got != 1 {
		t.Errorf("traced hits = %d, want 1", got)
	}
	if got := tr.Counter(obs.CtrCacheMisses); got != 3 {
		t.Errorf("traced misses = %d, want 3", got)
	}
	if got := tr.Counter(obs.CtrCacheEvictions); got != 1 {
		t.Errorf("traced evictions = %d, want 1", got)
	}
	// Each miss filled by one transient solve, each counted as a pass.
	if got := tr.Counter(obs.CtrSolvePasses); got != 3 {
		t.Errorf("traced solve passes = %d, want 3", got)
	}
}

// Context-carried scopes must see exactly the solver passes of their own
// region even when another goroutine's solves run concurrently on the
// global counter — the attribution fix for per-run Metrics.Solves.
func TestScopedSolveCountsUnpollutedByConcurrentSolves(t *testing.T) {
	c := twoState(t, 1.5, 0.5)
	pi0, _ := c.PointMass(0)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := c.Transient(pi0, 0.5); err != nil {
					return
				}
			}
		}
	}()

	ctx, scope := obs.WithScope(context.Background())
	const passes = 20
	for i := 0; i < passes; i++ {
		if _, err := c.TransientContext(ctx, pi0, float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	<-done

	if got := scope.Counter(obs.CtrSolvePasses); got != passes {
		t.Fatalf("scoped passes = %d, want exactly %d despite concurrent background solves", got, passes)
	}
}
