package ctmc

import (
	"errors"
	"math"
	"testing"

	"guardedop/internal/robust"
	"guardedop/internal/sparse"
)

func TestSteadyStateTwoStateAnalytic(t *testing.T) {
	a, b := 3.0, 1.0
	c := twoState(t, a, b)
	want1 := a / (a + b)
	for _, m := range []SteadyMethod{SteadyDirect, SteadySOR, SteadyPower} {
		pi, err := c.SteadyState(SteadyStateOptions{Method: m})
		if err != nil {
			t.Fatalf("method %d: %v", m, err)
		}
		if math.Abs(pi[1]-want1) > 1e-9 {
			t.Errorf("method %d: pi[1] = %.12f, want %.12f", m, pi[1], want1)
		}
	}
}

func TestSteadyStateBirthDeathAnalytic(t *testing.T) {
	// Truncated birth-death: pi_i ∝ (lambda/mu)^i.
	n, lambda, mu := 8, 2.0, 5.0
	c := birthDeath(t, n, lambda, mu)
	rho := lambda / mu
	norm := 0.0
	for i := 0; i < n; i++ {
		norm += math.Pow(rho, float64(i))
	}
	for _, m := range []SteadyMethod{SteadyDirect, SteadySOR, SteadyPower} {
		pi, err := c.SteadyState(SteadyStateOptions{Method: m})
		if err != nil {
			t.Fatalf("method %d: %v", m, err)
		}
		for i := 0; i < n; i++ {
			want := math.Pow(rho, float64(i)) / norm
			if math.Abs(pi[i]-want) > 1e-8 {
				t.Errorf("method %d: pi[%d] = %.12f, want %.12f", m, i, pi[i], want)
			}
		}
	}
}

func TestSteadyStateSORRejectsAbsorbing(t *testing.T) {
	g := sparse.NewCOO(2, 2)
	g.Add(0, 1, 1)
	g.Add(0, 0, -1)
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SteadyState(SteadyStateOptions{Method: SteadySOR}); !errors.Is(err, ErrNotErgodic) {
		t.Errorf("err = %v, want ErrNotErgodic", err)
	}
}

func TestSteadyStateRewardMatchesManual(t *testing.T) {
	c := twoState(t, 1, 1)
	r, err := c.SteadyStateReward([]float64{0, 2}, SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-10 {
		t.Errorf("steady reward = %v, want 1", r)
	}
	if _, err := c.SteadyStateReward([]float64{1}, SteadyStateOptions{}); err == nil {
		t.Error("accepted wrong-length reward vector")
	}
}

func TestSORWithRelaxation(t *testing.T) {
	c := birthDeath(t, 10, 1.0, 2.0)
	pi, err := c.SteadyState(SteadyStateOptions{Method: SteadySOR, Omega: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.SteadyState(SteadyStateOptions{Method: SteadyDirect})
	if err != nil {
		t.Fatal(err)
	}
	if sparse.L1Dist(pi, ref) > 1e-8 {
		t.Errorf("SOR(1.2) differs from direct by %g", sparse.L1Dist(pi, ref))
	}
}

func TestAbsorbingAnalysisCompetingRisks(t *testing.T) {
	// State 0 races to absorbing 1 (rate a) and absorbing 2 (rate b).
	a, b := 3.0, 7.0
	g := sparse.NewCOO(3, 3)
	g.Add(0, 1, a)
	g.Add(0, 2, b)
	g.Add(0, 0, -(a + b))
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	abs, err := c.AbsorbingAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	pi0, _ := c.PointMass(0)
	p1, err := abs.AbsorptionProbability(pi0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1-a/(a+b)) > 1e-12 {
		t.Errorf("P(absorb in 1) = %v, want %v", p1, a/(a+b))
	}
	if mt := abs.ExpectedTimeToAbsorption(pi0); math.Abs(mt-1/(a+b)) > 1e-12 {
		t.Errorf("mean time = %v, want %v", mt, 1/(a+b))
	}
	if _, err := abs.AbsorptionProbability(pi0, 0); err == nil {
		t.Error("AbsorptionProbability accepted non-absorbing state")
	}
}

func TestAbsorbingAnalysisTandem(t *testing.T) {
	// 0 -> 1 -> 2 (absorbing); mean time = 1/r0 + 1/r1.
	r0, r1 := 2.0, 5.0
	g := sparse.NewCOO(3, 3)
	g.Add(0, 1, r0)
	g.Add(0, 0, -r0)
	g.Add(1, 2, r1)
	g.Add(1, 1, -r1)
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	abs, err := c.AbsorbingAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	pi0, _ := c.PointMass(0)
	if mt := abs.ExpectedTimeToAbsorption(pi0); math.Abs(mt-(1/r0+1/r1)) > 1e-12 {
		t.Errorf("mean time = %v, want %v", mt, 1/r0+1/r1)
	}
	p, err := abs.AbsorptionProbability(pi0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1) > 1e-12 {
		t.Errorf("P(absorb) = %v, want 1", p)
	}
	// Mass already on the absorbing state counts as absorbed.
	p2, err := abs.AbsorptionProbability([]float64{0, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != 1 {
		t.Errorf("P(absorb | start absorbed) = %v, want 1", p2)
	}
}

func TestAbsorbingAnalysisNoAbsorbing(t *testing.T) {
	c := twoState(t, 1, 1)
	if _, err := c.AbsorbingAnalysis(); err == nil {
		t.Error("AbsorbingAnalysis accepted chain with no absorbing states")
	}
}

func TestTransientAndAccumulatedRewards(t *testing.T) {
	// Rewards on the two-state chain: rate 1 in state 0, 0 in state 1.
	a, b := 3.0, 1.0
	c := twoState(t, a, b)
	pi0, _ := c.PointMass(0)
	tt := 0.7
	s := a + b
	p0 := b/s + a/s*math.Exp(-s*tt)
	r, err := c.TransientReward(pi0, tt, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-p0) > 1e-10 {
		t.Errorf("transient reward = %v, want %v", r, p0)
	}
	// Accumulated time in state 0 over [0,t].
	wantAcc := b/s*tt + a/(s*s)*(1-math.Exp(-s*tt))
	ra, err := c.AccumulatedReward(pi0, tt, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ra-wantAcc) > 1e-9 {
		t.Errorf("accumulated reward = %v, want %v", ra, wantAcc)
	}
}

func TestAccumulatedUntilAbsorption(t *testing.T) {
	// 0 -> 1 -> 2 (absorbing): expected time in 0 is 1/r0, in 1 is 1/r1.
	r0, r1 := 2.0, 5.0
	g := sparse.NewCOO(3, 3)
	g.Add(0, 1, r0)
	g.Add(0, 0, -r0)
	g.Add(1, 2, r1)
	g.Add(1, 1, -r1)
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	pi0, _ := c.PointMass(0)
	// Reward 1 in state 1 only: expected total = 1/r1.
	got, err := c.AccumulatedUntilAbsorption(pi0, []float64{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1/r1) > 1e-12 {
		t.Errorf("reward until absorption = %v, want %v", got, 1/r1)
	}
	// Reward 1 everywhere: total lifetime 1/r0 + 1/r1.
	got, err = c.AccumulatedUntilAbsorption(pi0, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(1/r0+1/r1)) > 1e-12 {
		t.Errorf("lifetime = %v, want %v", got, 1/r0+1/r1)
	}
	// Mass on the absorbing state earns nothing.
	got, err = c.AccumulatedUntilAbsorption([]float64{0, 0, 1}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("absorbed start earned %v", got)
	}
	if _, err := c.AccumulatedUntilAbsorption(pi0, []float64{1}); err == nil {
		t.Error("short reward vector accepted")
	}
}

func TestAccumulatedUntilAbsorptionMatchesLongHorizon(t *testing.T) {
	// For an absorbing chain, reward until absorption equals the t->inf
	// limit of the accumulated interval reward.
	mu, lambda := 1e-2, 5.0
	g := sparse.NewCOO(3, 3)
	g.Add(0, 1, mu)
	g.Add(0, 0, -mu)
	g.Add(1, 2, lambda)
	g.Add(1, 1, -lambda)
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	pi0, _ := c.PointMass(0)
	rates := []float64{1, 0.5, 0}
	exact, err := c.AccumulatedUntilAbsorption(pi0, rates)
	if err != nil {
		t.Fatal(err)
	}
	longRun, err := c.AccumulatedReward(pi0, 5000, rates)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-longRun) > 1e-6*exact {
		t.Errorf("until-absorption %v vs long-horizon %v", exact, longRun)
	}
}

func TestErrNotErgodicClassifiesAsNotConverged(t *testing.T) {
	if !errors.Is(ErrNotErgodic, robust.ErrNotConverged) {
		t.Error("ErrNotErgodic does not wrap robust.ErrNotConverged")
	}
}
