package ctmc

import (
	"errors"
	"fmt"

	"guardedop/internal/sparse"
)

func errRewardLength(got, want int) error {
	return fmt.Errorf("ctmc: reward vector has length %d, want %d", got, want)
}

// Absorbing holds the results of absorbing-chain analysis: the partition
// into transient and absorbing states, eventual absorption probabilities,
// and expected times to absorption.
type Absorbing struct {
	// TransientStates and AbsorbingStates partition 0..N-1 (both sorted).
	TransientStates []int
	AbsorbingStates []int
	// Probabilities[i][j] is the probability that the chain started in
	// TransientStates[i] is eventually absorbed in AbsorbingStates[j].
	Probabilities [][]float64
	// MeanTime[i] is the expected time to absorption from TransientStates[i].
	MeanTime []float64

	transientIdx map[int]int
	absorbingIdx map[int]int
}

// AbsorbingAnalysis computes eventual absorption probabilities and mean
// times to absorption. It requires at least one absorbing state, and every
// transient state must reach some absorbing state with probability one
// (otherwise the fundamental-matrix solve fails and an error is returned).
func (c *Chain) AbsorbingAnalysis() (*Absorbing, error) {
	abs := c.AbsorbingStates()
	if len(abs) == 0 {
		return nil, errors.New("ctmc: chain has no absorbing states")
	}
	isAbs := make(map[int]bool, len(abs))
	for _, s := range abs {
		isAbs[s] = true
	}
	var trans []int
	for s := 0; s < c.n; s++ {
		if !isAbs[s] {
			trans = append(trans, s)
		}
	}
	a := &Absorbing{
		TransientStates: trans,
		AbsorbingStates: abs,
		transientIdx:    make(map[int]int, len(trans)),
		absorbingIdx:    make(map[int]int, len(abs)),
	}
	for i, s := range trans {
		a.transientIdx[s] = i
	}
	for j, s := range abs {
		a.absorbingIdx[s] = j
	}
	nt := len(trans)
	if nt == 0 {
		a.Probabilities = [][]float64{}
		a.MeanTime = []float64{}
		return a, nil
	}

	// Build the negated transient block -Q_TT (dense) and the coupling
	// block R = Q_TA.
	qtt := sparse.NewDense(nt, nt)
	r := sparse.NewDense(nt, len(abs))
	for i, s := range trans {
		c.gen.Row(s, func(cc int, v float64) {
			if ti, ok := a.transientIdx[cc]; ok {
				qtt.Set(i, ti, -v)
			} else {
				r.Set(i, a.absorbingIdx[cc], v)
			}
		})
	}
	f, err := sparse.FactorLU(qtt)
	if err != nil {
		return nil, fmt.Errorf("ctmc: transient block is singular (some state never absorbs): %w", err)
	}
	// Absorption probabilities: B = (-Q_TT)^{-1} R.
	b, err := f.SolveMatrix(r)
	if err != nil {
		return nil, err
	}
	a.Probabilities = make([][]float64, nt)
	for i := 0; i < nt; i++ {
		row := make([]float64, len(abs))
		copy(row, b.RowSlice(i))
		a.Probabilities[i] = row
	}
	// Mean time to absorption: τ = (-Q_TT)^{-1} 1.
	ones := make([]float64, nt)
	for i := range ones {
		ones[i] = 1
	}
	tau, err := f.Solve(ones)
	if err != nil {
		return nil, err
	}
	a.MeanTime = tau
	return a, nil
}

// AccumulatedUntilAbsorption returns Σ_s rates[s]·E[total time in s before
// absorption], starting from pi0 — the expected total reward earned over
// the chain's whole (finite) lifetime. Mass starting on absorbing states
// earns nothing. Every transient state must reach absorption with
// probability one.
func (c *Chain) AccumulatedUntilAbsorption(pi0, rates []float64) (float64, error) {
	if err := c.checkDistribution(pi0); err != nil {
		return 0, err
	}
	if len(rates) != c.n {
		return 0, errRewardLength(len(rates), c.n)
	}
	a, err := c.AbsorbingAnalysis()
	if err != nil {
		return 0, err
	}
	nt := len(a.TransientStates)
	if nt == 0 {
		return 0, nil
	}
	// Solve (-Q_TT)ᵀ y = pi0_T for the expected occupancy measure, then
	// contract with the rates; equivalently solve (-Q_TT) x = r_T and take
	// pi0_T · x (one solve either way — use the latter).
	qtt := sparse.NewDense(nt, nt)
	for i, s := range a.TransientStates {
		c.gen.Row(s, func(cc int, v float64) {
			if j, ok := a.transientIdx[cc]; ok {
				qtt.Set(i, j, -v)
			}
		})
	}
	rT := make([]float64, nt)
	for i, s := range a.TransientStates {
		rT[i] = rates[s]
	}
	x, err := sparse.SolveDense(qtt, rT)
	if err != nil {
		return 0, fmt.Errorf("ctmc: reward-until-absorption solve failed: %w", err)
	}
	total := 0.0
	for i, s := range a.TransientStates {
		total += pi0[s] * x[i]
	}
	return total, nil
}

// AbsorptionProbability returns the probability of eventual absorption in
// state absState starting from distribution pi0 (mass already on absorbing
// states counts as absorbed there).
func (a *Absorbing) AbsorptionProbability(pi0 []float64, absState int) (float64, error) {
	j, ok := a.absorbingIdx[absState]
	if !ok {
		return 0, fmt.Errorf("ctmc: state %d is not absorbing", absState)
	}
	total := 0.0
	for s, p := range pi0 {
		if p == 0 {
			continue
		}
		if s == absState {
			total += p
			continue
		}
		if i, isTrans := a.transientIdx[s]; isTrans {
			total += p * a.Probabilities[i][j]
		}
	}
	return total, nil
}

// ExpectedTimeToAbsorption returns the expected absorption time starting
// from distribution pi0; mass on absorbing states contributes zero.
func (a *Absorbing) ExpectedTimeToAbsorption(pi0 []float64) float64 {
	total := 0.0
	for s, p := range pi0 {
		if p == 0 {
			continue
		}
		if i, ok := a.transientIdx[s]; ok {
			total += p * a.MeanTime[i]
		}
	}
	return total
}
