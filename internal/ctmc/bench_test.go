package ctmc

import (
	"math/rand"
	"testing"

	"guardedop/internal/sparse"
)

func benchChain(b *testing.B, n int, maxRate float64) *Chain {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	c, err := New(randomGenerator(rng, n, maxRate))
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkTransientUniformization(b *testing.B) {
	c := benchChain(b, 50, 100)
	pi0, _ := c.PointMass(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.TransientUniformization(pi0, 5, UniformizationOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransientExpmStiff(b *testing.B) {
	// The paper's stiff regime: fast message rates against slow fault
	// rates over a long horizon.
	g := sparse.NewCOO(24, 24)
	for i := 0; i < 23; i++ {
		rate := 1e-4
		if i%3 == 0 {
			rate = 1200
		}
		g.Add(i, i+1, rate)
		g.Add(i, i, -rate)
	}
	c, err := New(g)
	if err != nil {
		b.Fatal(err)
	}
	pi0, _ := c.PointMass(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.TransientExpm(pi0, 1e4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccumulatedExpm(b *testing.B) {
	c := benchChain(b, 24, 1000)
	pi0, _ := c.PointMass(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.AccumulatedExpm(pi0, 1e4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSteadyStateDirect(b *testing.B) {
	c := benchChain(b, 64, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SteadyState(SteadyStateOptions{Method: SteadyDirect}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSteadyStateSOR(b *testing.B) {
	c := benchChain(b, 64, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SteadyState(SteadyStateOptions{Method: SteadySOR}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoissonWindowLargeMean(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newPoissonWindow(1e5, 1e-12); err != nil {
			b.Fatal(err)
		}
	}
}
