package ctmc

import (
	"errors"
	"fmt"

	"guardedop/internal/robust"
	"guardedop/internal/sparse"
)

// SteadyStateOptions tunes the iterative steady-state solvers.
type SteadyStateOptions struct {
	// Method selects the solver; default is SteadyAuto.
	Method SteadyMethod
	// Tolerance is the L1 convergence threshold for iterative methods
	// (default 1e-12).
	Tolerance float64
	// MaxIterations caps iterative sweeps (default 200000).
	MaxIterations int
	// Omega is the SOR relaxation factor (default 1.0 = Gauss-Seidel).
	Omega float64
}

// SteadyMethod identifies a steady-state solution algorithm.
type SteadyMethod int

// Steady-state solver choices.
const (
	SteadyAuto   SteadyMethod = iota // direct for small chains, SOR otherwise
	SteadyDirect                     // dense LU on the normal equations
	SteadySOR                        // successive over-relaxation on πQ = 0
	SteadyPower                      // power iteration on the uniformized DTMC
)

// directSteadyStateLimit is the largest chain solved by dense LU under
// SteadyAuto.
const directSteadyStateLimit = 512

// ErrNotErgodic is returned when an iterative steady-state solver cannot
// make progress, typically because the chain is reducible. It wraps
// robust.ErrNotConverged so callers can classify it with the shared
// taxonomy.
var ErrNotErgodic = fmt.Errorf("ctmc: steady-state iteration failed to converge (chain may be reducible): %w", robust.ErrNotConverged)

func (o SteadyStateOptions) withDefaults() SteadyStateOptions {
	if o.Tolerance == 0 {
		o.Tolerance = 1e-12
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 200000
	}
	if o.Omega == 0 {
		o.Omega = 1.0
	}
	return o
}

// SteadyState solves πQ = 0 with Σπ = 1. The chain must have a unique
// stationary distribution (one recurrent class); for chains with absorbing
// states use AbsorbingAnalysis instead.
func (c *Chain) SteadyState(opts SteadyStateOptions) ([]float64, error) {
	opts = opts.withDefaults()
	if c.n == 0 {
		return nil, errors.New("ctmc: empty chain")
	}
	method := opts.Method
	if method == SteadyAuto {
		if c.n <= directSteadyStateLimit {
			method = SteadyDirect
		} else {
			method = SteadySOR
		}
	}
	switch method {
	case SteadyDirect:
		return c.steadyDirect()
	case SteadySOR:
		return c.steadySOR(opts)
	case SteadyPower:
		return c.steadyPower(opts)
	default:
		return nil, fmt.Errorf("ctmc: unknown steady-state method %d", method)
	}
}

// steadyDirect solves the transposed system Qᵀ x = 0 with the last equation
// replaced by the normalization Σx = 1, by dense LU.
func (c *Chain) steadyDirect() ([]float64, error) {
	n := c.n
	a := sparse.NewDense(n, n)
	for r := 0; r < n; r++ {
		c.gen.Row(r, func(cc int, v float64) {
			a.Set(cc, r, v) // transpose
		})
	}
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	b := make([]float64, n)
	b[n-1] = 1
	x, err := sparse.SolveDense(a, b)
	if err != nil {
		return nil, fmt.Errorf("ctmc: direct steady-state solve failed: %w", err)
	}
	for i, v := range x {
		if v < 0 {
			if v < -1e-8 {
				return nil, fmt.Errorf("ctmc: direct steady-state produced negative probability %g at state %d", v, i)
			}
			x[i] = 0
		}
	}
	sparse.Normalize(x)
	return x, nil
}

// steadySOR runs (over-)relaxed Gauss-Seidel sweeps on πQ = 0 using the
// column-oriented form x_j = (1-ω) x_j − ω (Σ_{i≠j} x_i Q_ij) / Q_jj,
// renormalizing after every sweep.
func (c *Chain) steadySOR(opts SteadyStateOptions) ([]float64, error) {
	n := c.n
	qt := c.gen.Transpose() // row j of qt holds column j of Q
	diag := make([]float64, n)
	for j := 0; j < n; j++ {
		diag[j] = c.gen.At(j, j)
		if diag[j] == 0 {
			return nil, fmt.Errorf("%w: state %d is absorbing", ErrNotErgodic, j)
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	prev := make([]float64, n)
	for iter := 0; iter < opts.MaxIterations; iter++ {
		copy(prev, x)
		for j := 0; j < n; j++ {
			sum := 0.0
			qt.Row(j, func(i int, v float64) {
				if i != j {
					sum += x[i] * v
				}
			})
			gs := -sum / diag[j]
			nx := (1-opts.Omega)*x[j] + opts.Omega*gs
			if nx < 0 {
				nx = 0
			}
			x[j] = nx
		}
		if sparse.Normalize(x) == 0 {
			return nil, ErrNotErgodic
		}
		if sparse.L1Dist(x, prev) < opts.Tolerance {
			if err := robust.CheckFiniteSlice("pi", x); err != nil {
				return nil, fmt.Errorf("ctmc: SOR steady state: %w", err)
			}
			return x, nil
		}
	}
	return nil, ErrNotErgodic
}

// steadyPower iterates v ← vP on the uniformized DTMC until the iterates
// stabilise. The rate padding keeps P aperiodic.
func (c *Chain) steadyPower(opts SteadyStateOptions) ([]float64, error) {
	if c.q == 0 {
		return nil, fmt.Errorf("%w: all states absorbing", ErrNotErgodic)
	}
	p := c.uniformized(c.q * 1.02)
	x := make([]float64, c.n)
	for i := range x {
		x[i] = 1 / float64(c.n)
	}
	next := make([]float64, c.n)
	for iter := 0; iter < opts.MaxIterations; iter++ {
		p.VecMul(next, x)
		sparse.Normalize(next)
		if sparse.L1Dist(next, x) < opts.Tolerance {
			if err := robust.CheckFiniteSlice("pi", next); err != nil {
				return nil, fmt.Errorf("ctmc: power-iteration steady state: %w", err)
			}
			return next, nil
		}
		x, next = next, x
	}
	return nil, ErrNotErgodic
}
