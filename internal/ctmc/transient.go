package ctmc

import (
	"context"
	"fmt"

	"guardedop/internal/robust"
)

// uniformizationBudget is the largest q·t for which uniformization is chosen
// automatically. Beyond it (stiff horizons) the dense matrix exponential is
// asymptotically far cheaper: O(log2(qt)·n³) instead of O(qt·nnz).
const uniformizationBudget = 2e5

// denseTransientLimit is the largest state count for which the dense matrix
// exponential path is permitted under automatic selection.
const denseTransientLimit = 1024

// Transient computes π(t) choosing between uniformization and the dense
// matrix exponential based on the stiffness q·t and the chain size.
func (c *Chain) Transient(pi0 []float64, t float64) ([]float64, error) {
	return c.TransientContext(context.Background(), pi0, t)
}

// TransientContext is Transient under a caller-carried context: the
// solver pass reports to the obs scope/tracer the context carries, so
// batch layers attribute the cost to the right run.
func (c *Chain) TransientContext(ctx context.Context, pi0 []float64, t float64) ([]float64, error) {
	if c.q*t <= uniformizationBudget || c.n > denseTransientLimit {
		pi, _, err := c.uniformize(ctx, pi0, t, UniformizationOptions{}, false)
		return pi, err
	}
	return c.transientExpm(ctx, pi0, t)
}

// Accumulated computes ∫₀ᵗ π(u) du with the same automatic method selection
// as Transient.
func (c *Chain) Accumulated(pi0 []float64, t float64) ([]float64, error) {
	return c.AccumulatedContext(context.Background(), pi0, t)
}

// AccumulatedContext is Accumulated under a caller-carried context.
func (c *Chain) AccumulatedContext(ctx context.Context, pi0 []float64, t float64) ([]float64, error) {
	if c.q*t <= uniformizationBudget || c.n > denseTransientLimit {
		_, acc, err := c.uniformize(ctx, pi0, t, UniformizationOptions{}, true)
		return acc, err
	}
	_, acc, err := c.transientAccumulatedExpm(ctx, pi0, t)
	return acc, err
}

// transientAccumulated computes π(t) and L(t) = ∫₀ᵗ π(u)du together in a
// single solver pass: the uniformization iteration produces both for one
// sweep of matrix-vector products, and the dense path reads both off one
// Van Loan augmented exponential. This halves the solver passes of callers
// that need an instant-of-time and an accumulated view at the same horizon
// (the curve engine's per-gap workload).
func (c *Chain) transientAccumulated(ctx context.Context, pi0 []float64, t float64) (pi, acc []float64, err error) {
	if c.q*t <= uniformizationBudget || c.n > denseTransientLimit {
		return c.uniformize(ctx, pi0, t, UniformizationOptions{}, true)
	}
	return c.transientAccumulatedExpm(ctx, pi0, t)
}

// TransientReward returns Σ_s rates[s]·π_s(t): the expected instant-of-time
// reward at t for the rate-reward vector rates.
func (c *Chain) TransientReward(pi0 []float64, t float64, rates []float64) (float64, error) {
	return c.TransientRewardContext(context.Background(), pi0, t, rates)
}

// TransientRewardContext is TransientReward under a caller-carried context.
func (c *Chain) TransientRewardContext(ctx context.Context, pi0 []float64, t float64, rates []float64) (float64, error) {
	pi, err := c.TransientContext(ctx, pi0, t)
	if err != nil {
		return 0, err
	}
	return dotChecked(rates, pi)
}

// AccumulatedReward returns Σ_s rates[s]·∫₀ᵗ π_s(u)du: the expected
// accumulated interval-of-time reward over [0, t].
func (c *Chain) AccumulatedReward(pi0 []float64, t float64, rates []float64) (float64, error) {
	return c.AccumulatedRewardContext(context.Background(), pi0, t, rates)
}

// AccumulatedRewardContext is AccumulatedReward under a caller-carried
// context.
func (c *Chain) AccumulatedRewardContext(ctx context.Context, pi0 []float64, t float64, rates []float64) (float64, error) {
	acc, err := c.AccumulatedContext(ctx, pi0, t)
	if err != nil {
		return 0, err
	}
	return dotChecked(rates, acc)
}

// SteadyStateReward returns Σ_s rates[s]·π_s for the stationary distribution.
func (c *Chain) SteadyStateReward(rates []float64, opts SteadyStateOptions) (float64, error) {
	pi, err := c.SteadyState(opts)
	if err != nil {
		return 0, err
	}
	return dotChecked(rates, pi)
}

func dotChecked(rates, pi []float64) (float64, error) {
	if len(rates) != len(pi) {
		return 0, errRewardLength(len(rates), len(pi))
	}
	sum := 0.0
	for i, r := range rates {
		sum += r * pi[i]
	}
	if err := robust.CheckFinite("reward", sum); err != nil {
		return 0, fmt.Errorf("ctmc: %w", err)
	}
	return sum, nil
}
