package ctmc

import (
	"errors"
	"fmt"
	"math"

	"guardedop/internal/sparse"
)

// Chain is a continuous-time Markov chain over states 0..N-1.
type Chain struct {
	n   int
	gen *sparse.CSR // generator matrix Q, rows sum to zero
	q   float64     // uniformization rate: max |Q_ii| (cached)
}

// generatorRowSumTol bounds the acceptable deviation of a generator row sum
// from zero, relative to the magnitude of the row's diagonal entry.
const generatorRowSumTol = 1e-9

// New validates the generator held in the builder and returns the chain.
//
// Validation enforces the generator properties: a square matrix whose
// off-diagonal entries are non-negative and whose rows sum to (numerically)
// zero. Rows of an absorbing state are all zero, which trivially satisfies
// both conditions.
func New(gen *sparse.COO) (*Chain, error) {
	if gen.Rows() != gen.Cols() {
		return nil, fmt.Errorf("ctmc: generator must be square, got %dx%d", gen.Rows(), gen.Cols())
	}
	csr := gen.ToCSR()
	n := csr.Rows()
	q := 0.0
	for r := 0; r < n; r++ {
		sum, diag := 0.0, 0.0
		var badCol int
		bad := false
		csr.Row(r, func(c int, v float64) {
			sum += v
			if c == r {
				diag = v
			} else if v < 0 && !bad {
				bad, badCol = true, c
			}
		})
		if bad {
			return nil, fmt.Errorf("ctmc: negative off-diagonal rate at (%d,%d)", r, badCol)
		}
		if diag > 0 {
			return nil, fmt.Errorf("ctmc: positive diagonal entry at state %d", r)
		}
		tol := generatorRowSumTol * math.Max(1, math.Abs(diag))
		if math.Abs(sum) > tol {
			return nil, fmt.Errorf("ctmc: row %d sums to %g, want 0 (±%g)", r, sum, tol)
		}
		if -diag > q {
			q = -diag
		}
	}
	return &Chain{n: n, gen: csr, q: q}, nil
}

// MustNew is New but panics on error; intended for tests and for model
// builders whose generators are correct by construction.
func MustNew(gen *sparse.COO) *Chain {
	c, err := New(gen)
	if err != nil {
		panic(err)
	}
	return c
}

// NewUnchecked builds a chain without validating the generator. It exists
// for callers that deliberately need a malformed chain — above all the
// static-verifier tests in internal/modelcheck, which must exercise
// rejection paths New makes unreachable — and for assembly pipelines whose
// generators are validated elsewhere. Run internal/modelcheck on anything
// built this way before solving; the solvers assume New's invariants.
func NewUnchecked(gen *sparse.COO) *Chain {
	csr := gen.ToCSR()
	n := csr.Rows()
	q := 0.0
	for r := 0; r < n; r++ {
		csr.Row(r, func(c int, v float64) {
			if c == r && -v > q {
				q = -v
			}
		})
	}
	return &Chain{n: n, gen: csr, q: q}
}

// NumStates returns the number of states.
func (c *Chain) NumStates() int { return c.n }

// Generator returns the generator matrix. The caller must not mutate it.
func (c *Chain) Generator() *sparse.CSR { return c.gen }

// MaxExitRate returns max_i |Q_ii|, the minimal valid uniformization rate.
func (c *Chain) MaxExitRate() float64 { return c.q }

// IsAbsorbing reports whether state s has no outgoing transitions.
func (c *Chain) IsAbsorbing(s int) bool {
	absorbing := true
	c.gen.Row(s, func(cc int, v float64) {
		if cc != s && v > 0 {
			absorbing = false
		}
	})
	return absorbing
}

// AbsorbingStates returns the (sorted) list of absorbing states.
func (c *Chain) AbsorbingStates() []int {
	var out []int
	for s := 0; s < c.n; s++ {
		if c.IsAbsorbing(s) {
			out = append(out, s)
		}
	}
	return out
}

// uniformized returns the DTMC transition matrix P = I + Q/q for the given
// uniformization rate q (which must be >= MaxExitRate and > 0).
func (c *Chain) uniformized(q float64) *sparse.CSR {
	coo := sparse.NewCOO(c.n, c.n)
	for r := 0; r < c.n; r++ {
		coo.Add(r, r, 1)
		c.gen.Row(r, func(cc int, v float64) {
			coo.Add(r, cc, v/q)
		})
	}
	return coo.ToCSR()
}

// checkDistribution validates that pi0 is a probability vector of length n.
func (c *Chain) checkDistribution(pi0 []float64) error {
	if len(pi0) != c.n {
		return fmt.Errorf("ctmc: initial distribution has length %d, want %d", len(pi0), c.n)
	}
	sum := 0.0
	for i, p := range pi0 {
		if p < -1e-12 || math.IsNaN(p) {
			return fmt.Errorf("ctmc: initial distribution entry %d is %g", i, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("ctmc: initial distribution sums to %g, want 1", sum)
	}
	return nil
}

// PointMass returns the distribution concentrated on state s.
func (c *Chain) PointMass(s int) ([]float64, error) {
	if s < 0 || s >= c.n {
		return nil, fmt.Errorf("ctmc: state %d out of range [0,%d)", s, c.n)
	}
	v := make([]float64, c.n)
	v[s] = 1
	return v, nil
}

// errNegativeTime is returned by transient solvers for t < 0.
var errNegativeTime = errors.New("ctmc: negative time horizon")
