package ctmc

import (
	"errors"
	"math"
	"testing"
	"time"

	"guardedop/internal/robust"
)

// TestUniformizationMaxIterationsCapsProducts pins the MaxIterations
// contract at its exact boundary: the cap counts matrix-vector products
// and is checked before each product, so a window needing exactly
// win.Right products completes under a cap of win.Right and fails under
// win.Right-1. The old placement (after the k >= win.Right break) made
// the default cap of win.Right+2 unreachable.
func TestUniformizationMaxIterationsCapsProducts(t *testing.T) {
	c := twoState(t, 100, 100)
	pi0, _ := c.PointMass(0)
	const horizon = 1.0
	// Reproduce the solver's window: q = maxExitRate * default padding.
	win, err := newPoissonWindow(c.MaxExitRate()*1.02*horizon, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	products := win.Right // the full window costs exactly win.Right products

	cases := []struct {
		name    string
		maxIter int
		wantErr bool
	}{
		{"default cap never fires", 0, false},
		{"cap exactly at window cost", products, false},
		{"cap one product short", products - 1, true},
		{"small explicit cap", 3, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.TransientUniformization(pi0, horizon, UniformizationOptions{
				MaxIterations:               tc.maxIter,
				DisableSteadyStateDetection: true,
			})
			if tc.wantErr {
				if !errors.Is(err, robust.ErrNotConverged) {
					t.Fatalf("MaxIterations=%d: got %v, want ErrNotConverged", tc.maxIter, err)
				}
			} else if err != nil {
				t.Fatalf("MaxIterations=%d: unexpected error %v", tc.maxIter, err)
			}
		})
	}
}

// TestUniformizationOptionValidation table-tests the degenerate option
// combinations that used to slip through withDefaults: negative or NaN
// fields must be rejected as invariant violations, not silently build a
// garbage DTMC (RatePadding) or disable steady-state detection
// (SteadyStateTol).
func TestUniformizationOptionValidation(t *testing.T) {
	c := twoState(t, 3, 1)
	pi0, _ := c.PointMass(0)

	cases := []struct {
		name string
		opts UniformizationOptions
	}{
		{"negative epsilon", UniformizationOptions{Epsilon: -1e-9}},
		{"epsilon at one", UniformizationOptions{Epsilon: 1}},
		{"NaN epsilon", UniformizationOptions{Epsilon: math.NaN()}},
		{"negative rate padding", UniformizationOptions{RatePadding: -0.5}},
		{"sub-unit rate padding", UniformizationOptions{RatePadding: 0.5}},
		{"NaN rate padding", UniformizationOptions{RatePadding: math.NaN()}},
		{"negative steady-state tol", UniformizationOptions{SteadyStateTol: -1e-14}},
		{"NaN steady-state tol", UniformizationOptions{SteadyStateTol: math.NaN()}},
		{"negative max iterations", UniformizationOptions{MaxIterations: -1}},
		{"several at once", UniformizationOptions{Epsilon: -1, RatePadding: -1, SteadyStateTol: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := c.TransientUniformization(pi0, 1, tc.opts); !errors.Is(err, robust.ErrInvariant) {
				t.Fatalf("options %+v: got %v, want ErrInvariant", tc.opts, err)
			}
			if _, err := c.AccumulatedUniformization(pi0, 1, tc.opts); !errors.Is(err, robust.ErrInvariant) {
				t.Fatalf("accumulated with options %+v: got %v, want ErrInvariant", tc.opts, err)
			}
		})
	}

	// The all-zero options still resolve to the documented defaults.
	if _, err := c.TransientUniformization(pi0, 1, UniformizationOptions{}); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
}

// TestPoissonWindowExtremeMean pins the fail-fast behavior at extreme
// qt: a mean of 1e18 used to run ~1e9 recurrence iterations growing an
// unbounded weights slice before the old mean+1e9 guard tripped. The
// width check must now reject it immediately.
func TestPoissonWindowExtremeMean(t *testing.T) {
	start := time.Now()
	_, err := newPoissonWindow(1e18, 1e-12)
	if !errors.Is(err, robust.ErrNotConverged) {
		t.Fatalf("mean 1e18: got %v, want ErrNotConverged", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("extreme mean took %v to reject; the guard must fail fast", elapsed)
	}

	// End to end through the solver entry point: an absurd q·t surfaces
	// the same typed error instead of grinding.
	c := twoState(t, 1e12, 1e12)
	pi0, _ := c.PointMass(0)
	if _, err := c.TransientUniformization(pi0, 1e6, UniformizationOptions{}); !errors.Is(err, robust.ErrNotConverged) {
		t.Fatalf("qt=1e18 solve: got %v, want ErrNotConverged", err)
	}

	// Means inside the cap still build sane windows.
	win, err := newPoissonWindow(2e5, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if win.Right <= win.Left {
		t.Fatalf("bad window [%d, %d]", win.Left, win.Right)
	}
}
