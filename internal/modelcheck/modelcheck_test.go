package modelcheck_test

import (
	"math"
	"strings"
	"testing"

	"guardedop/internal/ctmc"
	"guardedop/internal/modelcheck"
	"guardedop/internal/reward"
	"guardedop/internal/sparse"
	"guardedop/internal/statespace"
)

// space assembles a bare state space around an (optionally malformed)
// generator, the way a broken translation stage might.
func space(t *testing.T, n int, entries [][3]float64, initial []float64, trs []statespace.Transition) *statespace.Space {
	t.Helper()
	coo := sparse.NewCOO(n, n)
	for _, e := range entries {
		coo.Add(int(e[0]), int(e[1]), e[2])
	}
	return &statespace.Space{
		Chain:       ctmc.NewUnchecked(coo),
		Initial:     initial,
		Transitions: trs,
	}
}

// hasIssue reports whether the report contains a finding of the check.
func hasIssue(rep *modelcheck.Report, check string) bool {
	for _, i := range rep.Issues {
		if i.Check == check {
			return true
		}
	}
	return false
}

func TestBrokenGeneratorRejected(t *testing.T) {
	cases := []struct {
		name    string
		entries [][3]float64
		check   string
	}{
		{
			name:    "row sum nonzero",
			entries: [][3]float64{{0, 0, -2}, {0, 1, 1}, {1, 1, 0}},
			check:   "generator-row-sum",
		},
		{
			name:    "negative off-diagonal",
			entries: [][3]float64{{0, 0, 1}, {0, 1, -1}},
			check:   "generator-offdiag",
		},
		{
			name:    "positive diagonal",
			entries: [][3]float64{{0, 0, 1}, {0, 1, -1}},
			check:   "generator-diag",
		},
		{
			name:    "non-finite rate",
			entries: [][3]float64{{0, 0, math.Inf(-1)}, {0, 1, math.Inf(1)}},
			check:   "generator-finite",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := space(t, 2, tc.entries, []float64{1, 0}, nil)
			rep := modelcheck.CheckSpace("broken", sp, modelcheck.Options{})
			if rep.OK() {
				t.Fatal("malformed generator accepted")
			}
			if !hasIssue(rep, tc.check) {
				t.Errorf("missing %s finding; got %v", tc.check, rep.Issues)
			}
			if rep.Err() == nil {
				t.Error("Err() is nil for a failing report")
			}
		})
	}
}

func TestUnreachableStateRejected(t *testing.T) {
	// 0 -> 1 (absorbing); state 2 is isolated and carries no initial mass.
	sp := space(t, 3,
		[][3]float64{{0, 0, -1}, {0, 1, 1}},
		[]float64{1, 0, 0},
		[]statespace.Transition{{From: 0, To: 1, Rate: 1, Activity: "a"}},
	)
	rep := modelcheck.CheckSpace("unreachable", sp, modelcheck.Options{})
	if !hasIssue(rep, "unreachable-state") {
		t.Errorf("missing unreachable-state finding; got %v", rep.Issues)
	}
}

func TestAbsorbingUnreachableRejected(t *testing.T) {
	// 0 <-> 1 is a recurrent pair that can never reach the absorbing
	// state 2 (which holds initial mass of its own): first-passage
	// measures to absorption diverge from states 0 and 1.
	sp := space(t, 3,
		[][3]float64{{0, 0, -1}, {0, 1, 1}, {1, 1, -1}, {1, 0, 1}},
		[]float64{0.5, 0, 0.5},
		[]statespace.Transition{
			{From: 0, To: 1, Rate: 1, Activity: "a"},
			{From: 1, To: 0, Rate: 1, Activity: "b"},
		},
	)
	rep := modelcheck.CheckSpace("trapped", sp, modelcheck.Options{})
	if !hasIssue(rep, "absorbing-unreachable") {
		t.Errorf("missing absorbing-unreachable finding; got %v", rep.Issues)
	}
}

func TestNotIrreducibleRejected(t *testing.T) {
	// No absorbing states, but 2<->3 is unreachable backwards from 0<->1
	// once entered: two communicating classes, so steady-state measures
	// are ill-defined.
	sp := space(t, 4,
		[][3]float64{
			{0, 0, -2}, {0, 1, 1}, {0, 2, 1},
			{1, 1, -1}, {1, 0, 1},
			{2, 2, -1}, {2, 3, 1},
			{3, 3, -1}, {3, 2, 1},
		},
		[]float64{1, 0, 0, 0},
		[]statespace.Transition{
			{From: 0, To: 1, Rate: 1, Activity: "a"},
			{From: 0, To: 2, Rate: 1, Activity: "a"},
			{From: 1, To: 0, Rate: 1, Activity: "b"},
			{From: 2, To: 3, Rate: 1, Activity: "c"},
			{From: 3, To: 2, Rate: 1, Activity: "d"},
		},
	)
	rep := modelcheck.CheckSpace("reducible", sp, modelcheck.Options{})
	if !hasIssue(rep, "not-irreducible") {
		t.Errorf("missing not-irreducible finding; got %v", rep.Issues)
	}
}

func TestTransitionConsistencyRejected(t *testing.T) {
	// The labelled transition list disagrees with the generator: the
	// 0->1 rate is understated and a phantom 1->0 edge is listed.
	sp := space(t, 2,
		[][3]float64{{0, 0, -2}, {0, 1, 2}},
		[]float64{1, 0},
		[]statespace.Transition{
			{From: 0, To: 1, Rate: 1.5, Activity: "a"},
			{From: 1, To: 0, Rate: 0.5, Activity: "ghost"},
		},
	)
	rep := modelcheck.CheckSpace("mislabelled", sp, modelcheck.Options{})
	if !hasIssue(rep, "transition-consistency") {
		t.Errorf("missing transition-consistency finding; got %v", rep.Issues)
	}
}

func TestBrokenInitialDistributionRejected(t *testing.T) {
	sp := space(t, 2,
		[][3]float64{{0, 0, -1}, {0, 1, 1}},
		[]float64{0.5, 0.4}, // sums to 0.9
		[]statespace.Transition{{From: 0, To: 1, Rate: 1, Activity: "a"}},
	)
	rep := modelcheck.CheckSpace("lossy", sp, modelcheck.Options{})
	if !hasIssue(rep, "initial-mass") {
		t.Errorf("missing initial-mass finding; got %v", rep.Issues)
	}
}

func TestBrokenRewardStructureRejected(t *testing.T) {
	sp := space(t, 2,
		[][3]float64{{0, 0, -1}, {0, 1, 1}},
		[]float64{1, 0},
		[]statespace.Transition{{From: 0, To: 1, Rate: 1, Activity: "a"}},
	)
	rep := modelcheck.CheckSpace("rewards", sp, modelcheck.Options{})
	if !rep.OK() {
		t.Fatalf("base space unexpectedly dirty: %v", rep.Issues)
	}

	rep.CheckRewardRates("too-hot", []float64{0, 1.5}, 0, 1)
	if !hasIssue(rep, "reward-bounds") {
		t.Errorf("missing reward-bounds finding; got %v", rep.Issues)
	}
	rep.CheckRewardRates("nan", []float64{math.NaN(), 0}, 0, 1)
	if !hasIssue(rep, "reward-finite") {
		t.Errorf("missing reward-finite finding; got %v", rep.Issues)
	}
	rep.CheckRewardRates("short", []float64{1}, 0, 1)
	if !hasIssue(rep, "reward-length") {
		t.Errorf("missing reward-length finding; got %v", rep.Issues)
	}
	rep.CheckImpulses("negative", reward.NewImpulseStructure().Add("a", -1))
	if !hasIssue(rep, "impulse-negative") {
		t.Errorf("missing impulse-negative finding; got %v", rep.Issues)
	}
	rep.CheckImpulses("inf", reward.NewImpulseStructure().Add("a", math.Inf(1)))
	if !hasIssue(rep, "impulse-finite") {
		t.Errorf("missing impulse-finite finding; got %v", rep.Issues)
	}
}

func TestIssueCapKeepsReportReadable(t *testing.T) {
	// A 64-state generator with every row summing to 1 produces 64
	// row-sum findings; the default cap keeps 5 and counts the rest.
	n := 64
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
	}
	sp := &statespace.Space{Chain: ctmc.NewUnchecked(coo), Initial: make([]float64, n)}
	sp.Initial[0] = 1
	rep := modelcheck.CheckSpace("noisy", sp, modelcheck.Options{})
	count := 0
	for _, i := range rep.Issues {
		if i.Check == "generator-row-sum" {
			count++
		}
	}
	if count != 5 {
		t.Errorf("got %d row-sum findings, want capped 5", count)
	}
	if rep.Elided == 0 {
		t.Error("elided count not recorded")
	}
	if err := rep.Err(); err == nil || !strings.Contains(err.Error(), "further findings") {
		t.Errorf("Err() should mention elided findings: %v", err)
	}
}

func TestCountersReportFindingsElisionsAndCleanChecks(t *testing.T) {
	// Same over-cap generator as the elision test: 64 row-sum findings
	// against a cap of 5.
	n := 64
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
	}
	sp := &statespace.Space{Chain: ctmc.NewUnchecked(coo), Initial: make([]float64, n)}
	sp.Initial[0] = 1
	rep := modelcheck.CheckSpace("noisy", sp, modelcheck.Options{})
	c := rep.Counters()
	if got := c["generator-row-sum"]; got.Findings != 64 || got.Elided != 59 {
		t.Errorf("generator-row-sum counters = %+v, want findings 64 elided 59", got)
	}
	// A check that ran and found nothing still appears, with zeros: the
	// counter dump doubles as a record of verification coverage.
	clean, ok := c["generator-offdiag"]
	if !ok {
		t.Fatalf("clean check missing from counters: %v", c)
	}
	if clean.Findings != 0 || clean.Elided != 0 {
		t.Errorf("clean check counters = %+v, want zeros", clean)
	}
}

func TestCleanSpacePasses(t *testing.T) {
	// A healthy absorbing birth-death chain: PASS report, nil Err, and a
	// text rendering that says so.
	sp := space(t, 3,
		[][3]float64{{0, 0, -1}, {0, 1, 1}, {1, 1, -2}, {1, 0, 1}, {1, 2, 1}},
		[]float64{1, 0, 0},
		[]statespace.Transition{
			{From: 0, To: 1, Rate: 1, Activity: "up"},
			{From: 1, To: 0, Rate: 1, Activity: "down"},
			{From: 1, To: 2, Rate: 1, Activity: "die"},
		},
	)
	rep := modelcheck.CheckSpace("clean", sp, modelcheck.Options{})
	if !rep.OK() || rep.Err() != nil {
		t.Fatalf("clean space rejected: %v", rep.Issues)
	}
	var b strings.Builder
	rep.WriteText(&b)
	if !strings.Contains(b.String(), "PASS") || !strings.Contains(b.String(), "clean") {
		t.Errorf("report rendering missing PASS/model name:\n%s", b.String())
	}
	if rep.States != 3 || rep.Absorbing != 1 {
		t.Errorf("stats: got %d states / %d absorbing, want 3 / 1", rep.States, rep.Absorbing)
	}
}
