// Package modelcheck statically verifies translated reward models before
// they are solved.
//
// The successive-translation approach is only sound if every intermediate
// artifact is well-formed: the SAN-to-CTMC translation must produce a
// valid generator (rows summing to zero, non-negative off-diagonal rates),
// the reachability structure must match the measures asked of it
// (absorbing states reachable for first-passage quantities, a single
// closed communicating class for steady-state quantities), and the reward
// structures must keep Y(φ) an expectation ratio (finite rates within
// their documented bounds, non-negative impulses — the preconditions of
// the paper's Eq. 1).
//
// ctmc.New already rejects malformed generators at construction time;
// modelcheck re-derives the same properties independently from the stored
// CSR — plus the structural properties ctmc.New cannot see — so a bug in
// any translation stage (or a chain assembled by a future code path that
// bypasses New) is caught before it becomes a plausible-looking number.
package modelcheck

import (
	"fmt"
	"math"

	"guardedop/internal/statespace"
)

// Severity grades an issue.
type Severity int

const (
	// SevWarning marks a smell that does not invalidate the solve.
	SevWarning Severity = iota
	// SevError marks a property violation that makes solves unsound.
	SevError
)

// String renders the severity.
func (s Severity) String() string {
	if s == SevError {
		return "ERROR"
	}
	return "WARNING"
}

// Issue is one finding of the verifier.
type Issue struct {
	// Check identifies the property, e.g. "generator-row-sum".
	Check    string
	Severity Severity
	Detail   string
}

// String renders the issue on one line.
func (i Issue) String() string { return fmt.Sprintf("%s %s: %s", i.Severity, i.Check, i.Detail) }

// Options tunes the verifier. The zero value applies the defaults.
type Options struct {
	// RowSumTol bounds |Σ_j Q_ij| relative to max(1, |Q_ii|)
	// (default 1e-9, matching ctmc.New).
	RowSumTol float64
	// MaxIssuesPerCheck caps repeated findings of one check so a
	// completely broken model stays readable (default 5; the report
	// records how many were elided).
	MaxIssuesPerCheck int
}

func (o Options) withDefaults() Options {
	if o.RowSumTol == 0 {
		o.RowSumTol = 1e-9
	}
	if o.MaxIssuesPerCheck == 0 {
		o.MaxIssuesPerCheck = 5
	}
	return o
}

// CheckSpace verifies a generated state space: generator validity,
// initial-distribution sanity, reachability, labelled-transition
// consistency, and absorbing/ergodic structure. name labels the report.
func CheckSpace(name string, sp *statespace.Space, opts Options) *Report {
	opts = opts.withDefaults()
	r := newReport(name, opts)
	if sp == nil || sp.Chain == nil {
		r.add(Issue{Check: "space", Severity: SevError, Detail: "nil state space"})
		return r
	}
	n := sp.Chain.NumStates()
	r.States = n
	r.Transitions = len(sp.Transitions)
	absorbing := sp.Chain.AbsorbingStates()
	r.Absorbing = len(absorbing)

	r.checkGenerator(sp)
	r.checkInitial(sp)
	r.checkTransitions(sp)
	reach := r.checkReachability(sp)
	r.checkClasses(sp, absorbing, reach)
	return r
}

// checkGenerator re-verifies the CTMC generator from its stored CSR.
func (r *Report) checkGenerator(sp *statespace.Space) {
	r.ran("generator-shape", "generator-finite", "generator-offdiag", "generator-diag", "generator-row-sum")
	gen := sp.Chain.Generator()
	n := sp.Chain.NumStates()
	if gen.Rows() != n || gen.Cols() != n {
		r.add(Issue{Check: "generator-shape", Severity: SevError,
			Detail: fmt.Sprintf("generator is %dx%d for %d states", gen.Rows(), gen.Cols(), n)})
		return
	}
	for i := 0; i < n; i++ {
		sum, diag := 0.0, 0.0
		gen.Row(i, func(j int, v float64) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				r.add(Issue{Check: "generator-finite", Severity: SevError,
					Detail: fmt.Sprintf("Q[%d,%d] = %g", i, j, v)})
			}
			if i == j {
				diag = v
			} else if v < 0 {
				r.add(Issue{Check: "generator-offdiag", Severity: SevError,
					Detail: fmt.Sprintf("negative off-diagonal rate Q[%d,%d] = %g", i, j, v)})
			}
			sum += v
		})
		if diag > 0 {
			r.add(Issue{Check: "generator-diag", Severity: SevError,
				Detail: fmt.Sprintf("positive diagonal Q[%d,%d] = %g", i, i, diag)})
		}
		if tol := r.opts.RowSumTol * math.Max(1, math.Abs(diag)); math.Abs(sum) > tol {
			r.add(Issue{Check: "generator-row-sum", Severity: SevError,
				Detail: fmt.Sprintf("row %d sums to %g, want 0 (±%g)", i, sum, tol)})
		}
	}
}

// checkInitial verifies the initial distribution.
func (r *Report) checkInitial(sp *statespace.Space) {
	r.ran("initial-length", "initial-entry", "initial-mass")
	n := sp.Chain.NumStates()
	if len(sp.Initial) != n {
		r.add(Issue{Check: "initial-length", Severity: SevError,
			Detail: fmt.Sprintf("initial distribution has length %d, want %d", len(sp.Initial), n)})
		return
	}
	sum := 0.0
	for i, p := range sp.Initial {
		if math.IsNaN(p) || p < 0 || p > 1 {
			r.add(Issue{Check: "initial-entry", Severity: SevError,
				Detail: fmt.Sprintf("initial[%d] = %g outside [0, 1]", i, p)})
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		r.add(Issue{Check: "initial-mass", Severity: SevError,
			Detail: fmt.Sprintf("initial distribution sums to %g, want 1", sum)})
	}
}

// checkTransitions verifies the labelled transition list against the
// generator: endpoints in range, non-negative finite rates, and per-pair
// aggregate agreement with the generator's off-diagonal entries (dangling
// or phantom transitions break impulse rewards even when state
// probabilities are right).
func (r *Report) checkTransitions(sp *statespace.Space) {
	r.ran("transition-range", "transition-rate", "transition-consistency")
	n := sp.Chain.NumStates()
	agg := make(map[[2]int]float64, len(sp.Transitions))
	for _, tr := range sp.Transitions {
		if tr.From < 0 || tr.From >= n || tr.To < 0 || tr.To >= n {
			r.add(Issue{Check: "transition-range", Severity: SevError,
				Detail: fmt.Sprintf("transition %q %d->%d outside [0,%d)", tr.Activity, tr.From, tr.To, n)})
			continue
		}
		if tr.Rate < 0 || math.IsNaN(tr.Rate) || math.IsInf(tr.Rate, 0) {
			r.add(Issue{Check: "transition-rate", Severity: SevError,
				Detail: fmt.Sprintf("transition %q %d->%d has rate %g", tr.Activity, tr.From, tr.To, tr.Rate)})
			continue
		}
		if tr.From != tr.To { // self-loops are deliberately kept out of the generator
			agg[[2]int{tr.From, tr.To}] += tr.Rate
		}
	}
	gen := sp.Chain.Generator()
	for i := 0; i < n; i++ {
		gen.Row(i, func(j int, v float64) {
			if i == j {
				return
			}
			got := agg[[2]int{i, j}]
			if math.Abs(got-v) > 1e-9*math.Max(1, math.Abs(v)) {
				r.add(Issue{Check: "transition-consistency", Severity: SevError,
					Detail: fmt.Sprintf("labelled rate %d->%d is %g, generator has %g", i, j, got, v)})
			}
			delete(agg, [2]int{i, j})
		})
	}
	for pair, rate := range agg {
		if rate != 0 {
			r.add(Issue{Check: "transition-consistency", Severity: SevError,
				Detail: fmt.Sprintf("labelled transition %d->%d (rate %g) missing from generator", pair[0], pair[1], rate)})
		}
	}
}

// checkReachability flags states unreachable from the initial support and
// returns the reachable set.
func (r *Report) checkReachability(sp *statespace.Space) []bool {
	r.ran("unreachable-state")
	n := sp.Chain.NumStates()
	succ := adjacency(sp, false)
	reach := make([]bool, n)
	var queue []int
	for i, p := range sp.Initial {
		if i < n && p > 0 && !reach[i] {
			reach[i] = true
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, t := range succ[s] {
			if !reach[t] {
				reach[t] = true
				queue = append(queue, t)
			}
		}
	}
	for i := 0; i < n; i++ {
		if !reach[i] {
			r.add(Issue{Check: "unreachable-state", Severity: SevError,
				Detail: fmt.Sprintf("state %d (%s) carries no probability from the initial distribution", i, stateLabel(sp, i))})
		}
	}
	return reach
}

// checkClasses verifies the communicating structure against the measures
// the model supports. With absorbing states present (RMGd/RMNd-style
// first-passage models), every reachable state must reach an absorbing
// state or the absorption-time measures diverge. With none (RMGp-style
// steady-state models), the reachable chain must be a single communicating
// class or the steady-state distribution is not unique.
func (r *Report) checkClasses(sp *statespace.Space, absorbing []int, reach []bool) {
	n := sp.Chain.NumStates()
	if len(absorbing) > 0 {
		r.ran("absorbing-unreachable")
		pred := adjacency(sp, true)
		canAbsorb := make([]bool, n)
		queue := append([]int(nil), absorbing...)
		for _, a := range absorbing {
			canAbsorb[a] = true
		}
		for len(queue) > 0 {
			s := queue[0]
			queue = queue[1:]
			for _, t := range pred[s] {
				if !canAbsorb[t] {
					canAbsorb[t] = true
					queue = append(queue, t)
				}
			}
		}
		for i := 0; i < n; i++ {
			if reach[i] && !canAbsorb[i] {
				r.add(Issue{Check: "absorbing-unreachable", Severity: SevError,
					Detail: fmt.Sprintf("state %d (%s) cannot reach any absorbing state; first-passage measures diverge", i, stateLabel(sp, i))})
			}
		}
		return
	}
	// No absorbing states: require one communicating class over the
	// reachable states (forward- and backward-reachability from any
	// reachable seed must agree).
	r.ran("not-irreducible")
	seed := -1
	for i := 0; i < n; i++ {
		if reach[i] {
			seed = i
			break
		}
	}
	if seed < 0 {
		return // reachability check already reported the empty support
	}
	fwd := closure(adjacency(sp, false), seed)
	bwd := closure(adjacency(sp, true), seed)
	for i := 0; i < n; i++ {
		if reach[i] && (!fwd[i] || !bwd[i]) {
			r.add(Issue{Check: "not-irreducible", Severity: SevError,
				Detail: fmt.Sprintf("state %d (%s) is not in the communicating class of state %d; steady-state measures are ill-defined", i, stateLabel(sp, i), seed)})
		}
	}
}

// adjacency builds successor (or predecessor) lists over positive
// generator rates.
func adjacency(sp *statespace.Space, reverse bool) [][]int {
	n := sp.Chain.NumStates()
	out := make([][]int, n)
	gen := sp.Chain.Generator()
	for i := 0; i < n; i++ {
		gen.Row(i, func(j int, v float64) {
			if i == j || v <= 0 {
				return
			}
			if reverse {
				out[j] = append(out[j], i)
			} else {
				out[i] = append(out[i], j)
			}
		})
	}
	return out
}

// closure returns the set reachable from seed over adj.
func closure(adj [][]int, seed int) []bool {
	seen := make([]bool, len(adj))
	seen[seed] = true
	queue := []int{seed}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, t := range adj[s] {
			if !seen[t] {
				seen[t] = true
				queue = append(queue, t)
			}
		}
	}
	return seen
}

// stateLabel renders a state's marking for diagnostics.
func stateLabel(sp *statespace.Space, i int) string {
	if i < 0 || i >= len(sp.States) {
		return "?"
	}
	return sp.States[i].Key()
}
