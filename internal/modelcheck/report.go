package modelcheck

import (
	"fmt"
	"io"
	"math"

	"guardedop/internal/reward"
	"guardedop/internal/robust"
)

// Report is the outcome of verifying one model.
type Report struct {
	// Model is the caller-supplied label (e.g. "RMGd").
	Model string
	// States, Transitions, Absorbing summarise the verified space.
	States      int
	Transitions int
	Absorbing   int
	// Issues are the findings, in check order.
	Issues []Issue
	// Elided counts findings dropped by Options.MaxIssuesPerCheck.
	Elided int

	opts     Options
	perCheck map[string]int
}

func newReport(model string, opts Options) *Report {
	return &Report{Model: model, opts: opts, perCheck: make(map[string]int)}
}

// add records an issue, enforcing the per-check cap.
func (r *Report) add(i Issue) {
	r.perCheck[i.Check]++
	if r.perCheck[i.Check] > r.opts.MaxIssuesPerCheck {
		r.Elided++
		return
	}
	r.Issues = append(r.Issues, i)
}

// ran registers checks as executed so Counters reports them with zero
// findings on a clean model — a dump that names the checks that ran is
// evidence of coverage, not just of silence.
func (r *Report) ran(checks ...string) {
	for _, c := range checks {
		if _, ok := r.perCheck[c]; !ok {
			r.perCheck[c] = 0
		}
	}
}

// Counters returns the per-check finding and elision counts, keyed by
// check name: Findings is how many findings the check produced in total
// (zero for a check that ran clean), Elided how many of them the
// per-check cap dropped from Issues. The result plugs straight into
// robust.(*Metrics).AddChecks, which is how the CLI routes
// model-verification health through the same metrics structure as solver
// health (docs/ROBUSTNESS.md).
func (r *Report) Counters() map[string]robust.CheckCounters {
	out := make(map[string]robust.CheckCounters, len(r.perCheck))
	for check, n := range r.perCheck {
		c := robust.CheckCounters{Findings: n}
		if r.opts.MaxIssuesPerCheck > 0 && n > r.opts.MaxIssuesPerCheck {
			c.Elided = n - r.opts.MaxIssuesPerCheck
		}
		out[check] = c
	}
	return out
}

// OK reports whether no error-severity issue was found.
func (r *Report) OK() bool {
	for _, i := range r.Issues {
		if i.Severity == SevError {
			return false
		}
	}
	return true
}

// Err returns nil when the report is clean, and otherwise an error naming
// the model and its first violation (with a count of the rest).
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	var first *Issue
	errs := 0
	for idx := range r.Issues {
		if r.Issues[idx].Severity == SevError {
			if first == nil {
				first = &r.Issues[idx]
			}
			errs++
		}
	}
	if errs == 1 && r.Elided == 0 {
		return fmt.Errorf("modelcheck: %s: %s", r.Model, first)
	}
	return fmt.Errorf("modelcheck: %s: %s (and %d further findings)", r.Model, first, errs-1+r.Elided)
}

// WriteText renders the report.
func (r *Report) WriteText(w io.Writer) {
	verdict := "PASS"
	if !r.OK() {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "%-6s %s: %d states, %d transitions, %d absorbing\n",
		verdict, r.Model, r.States, r.Transitions, r.Absorbing)
	for _, i := range r.Issues {
		fmt.Fprintf(w, "  %s\n", i)
	}
	if r.Elided > 0 {
		fmt.Fprintf(w, "  (%d further findings elided)\n", r.Elided)
	}
}

// CheckRewardRates verifies a rate-reward vector over the model's states:
// every entry must be finite and lie in [lo, hi]. For the paper's
// indicator-style structures (Tables 1–2) the bounds are [0, 1], which is
// exactly the precondition keeping Y(φ) = E[W_φ]/E[W_I] an expectation
// ratio (Eq. 1): a per-state work rate above the ideal rate, or below
// zero, would let the "fraction of ideal work" leave [0, 1].
func (r *Report) CheckRewardRates(name string, rates []float64, lo, hi float64) {
	r.ran("reward-length", "reward-finite", "reward-bounds")
	if r.States > 0 && len(rates) != r.States {
		r.add(Issue{Check: "reward-length", Severity: SevError,
			Detail: fmt.Sprintf("reward %q has %d rates for %d states", name, len(rates), r.States)})
		return
	}
	for i, v := range rates {
		switch {
		case math.IsNaN(v) || math.IsInf(v, 0):
			r.add(Issue{Check: "reward-finite", Severity: SevError,
				Detail: fmt.Sprintf("reward %q rate[%d] = %g", name, i, v)})
		case v < lo || v > hi:
			r.add(Issue{Check: "reward-bounds", Severity: SevError,
				Detail: fmt.Sprintf("reward %q rate[%d] = %g outside [%g, %g]", name, i, v, lo, hi)})
		}
	}
}

// CheckImpulses verifies an impulse-reward structure: impulses must be
// finite and non-negative (a negative event reward would let accumulated
// work decrease on a completion, breaking the monotonicity E[W] proofs
// rely on).
func (r *Report) CheckImpulses(name string, s *reward.ImpulseStructure) {
	r.ran("impulse-finite", "impulse-negative")
	for _, item := range s.Items() {
		if math.IsNaN(item.Impulse) || math.IsInf(item.Impulse, 0) {
			r.add(Issue{Check: "impulse-finite", Severity: SevError,
				Detail: fmt.Sprintf("impulse structure %q: activity %q has impulse %g", name, item.Activity, item.Impulse)})
		} else if item.Impulse < 0 {
			r.add(Issue{Check: "impulse-negative", Severity: SevError,
				Detail: fmt.Sprintf("impulse structure %q: activity %q has impulse %g", name, item.Activity, item.Impulse)})
		}
	}
}
