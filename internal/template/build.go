package template

import (
	"context"
	"fmt"

	"guardedop/internal/mdcd"
	"guardedop/internal/modelcheck"
	"guardedop/internal/obs"
	"guardedop/internal/statespace"
)

// Instance is a fully built scenario: the three generated constituent
// reward models plus the solved overhead measures, ready to hand to the
// analyzer's translation layer (core.ScenarioModels).
type Instance struct {
	Spec   *Spec
	Params mdcd.Params

	// Gd is the G-OP dependability model; NdNew and NdOld the normal-mode
	// models with upgraded and all-proven software.
	Gd    *mdcd.RMGd
	NdNew *mdcd.RMNd
	NdOld *mdcd.RMNd

	// Rhos[i] is node i's forward-progress fraction during G-OP, in spec
	// node order.
	Rhos []float64

	// GpStates is the joint overhead model's state count (0 when the
	// mean-field approximation was used) and GpMeanField records which
	// path solved the overhead measures. GpSpace is the joint state
	// space itself, nil on the mean-field path.
	GpStates    int
	GpMeanField bool
	GpSpace     *statespace.Space

	// TotalStates sums the generated state spaces (Gd, Nd pair, and the
	// joint Gp when built) — the value reported on obs.CtrTemplateStates.
	TotalStates int
}

// Build validates spec, generates the scenario's constituent models,
// model-checks every generated state space, and solves the overhead
// measures. Counters template.instances and template.states are emitted
// on the ctx tracer (if any).
func Build(ctx context.Context, spec *Spec) (*Instance, error) {
	if spec == nil {
		return nil, specErr("nil spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	nodes, err := spec.resolve()
	if err != nil {
		return nil, err
	}
	opts := statespace.Options{
		MaxStates:         spec.Limits.MaxStates,
		MaxVanishingDepth: spec.Limits.MaxVanishingDepth,
	}

	gd, err := buildGd(spec, nodes, opts)
	if err != nil {
		return nil, err
	}
	ndNew, err := buildNd(spec, nodes, true, opts)
	if err != nil {
		return nil, err
	}
	ndOld, err := buildNd(spec, nodes, false, opts)
	if err != nil {
		return nil, err
	}
	gp, err := buildGp(spec, nodes)
	if err != nil {
		return nil, err
	}

	// Model-check every generated chain before anything is solved on it:
	// generated models earn the same scrutiny the handwritten ones get.
	checks := []struct {
		name string
		sp   *statespace.Space
	}{
		{"template Gd(" + spec.Name + ")", gd.Space},
		{"template Nd-new(" + spec.Name + ")", ndNew.Space},
		{"template Nd-old(" + spec.Name + ")", ndOld.Space},
	}
	if gp.Space != nil {
		checks = append(checks, struct {
			name string
			sp   *statespace.Space
		}{"template Gp(" + spec.Name + ")", gp.Space})
	}
	total := 0
	for _, c := range checks {
		if rep := modelcheck.CheckSpace(c.name, c.sp, modelcheck.Options{}); !rep.OK() {
			return nil, fmt.Errorf("template: %w", rep.Err())
		}
		total += c.sp.NumStates()
	}

	obs.Count(ctx, obs.CtrTemplateInstances, 1)
	obs.Count(ctx, obs.CtrTemplateStates, int64(total))

	return &Instance{
		Spec:        spec,
		Params:      spec.Params(),
		Gd:          gd,
		NdNew:       ndNew,
		NdOld:       ndOld,
		Rhos:        gp.Rhos,
		GpStates:    gp.States,
		GpMeanField: gp.MeanField,
		GpSpace:     gp.Space,
		TotalStates: total,
	}, nil
}
