package template

import (
	"fmt"

	"guardedop/internal/compose"
	"guardedop/internal/mdcd"
	"guardedop/internal/san"
	"guardedop/internal/statespace"
)

// buildNd generates the scenario's normal-mode dependability model: every
// node runs exactly one software version with no safeguards. With
// newVersions true the upgraded nodes run their new version (the model
// behind P(S1), no failure during [0, θ]); with false every node runs
// proven software (the post-recovery model behind p_θ).
func buildNd(spec *Spec, nodes []node, newVersions bool, opts statespace.Options) (*mdcd.RMNd, error) {
	var failure *san.Place
	ctn := make([]*san.Place, len(nodes))

	shared := make([]compose.SharedPlaceSpec, 0, len(nodes)+1)
	shared = append(shared, compose.SharedPlaceSpec{Name: plFailure})
	for _, n := range nodes {
		shared = append(shared, compose.SharedPlaceSpec{Name: n.name + ".ctn"})
	}

	bind := func(sh compose.Shared) {
		if failure != nil {
			return
		}
		failure = sh[plFailure]
		for _, n := range nodes {
			ctn[n.idx] = sh[n.name+".ctn"]
		}
	}
	alive := func(mk san.Marking) bool { return mk.Get(failure) == 0 }
	fail := func(mk san.Marking) {
		mk.Set(failure, 1)
		for _, pl := range ctn {
			mk.Set(pl, 0)
		}
	}

	parts := make(map[string]compose.Template, len(nodes))
	for _, n := range nodes {
		n := n
		mu := n.muOld
		if newVersions && n.upgraded {
			mu = n.muNew
		}
		parts[n.name] = func(m *san.Model, prefix string, sh compose.Shared) error {
			bind(sh)
			self := ctn[n.idx]

			fm := m.AddTimedActivity(prefix+"fm", san.ConstRate(mu)).
				AddInputGate("enabled", func(mk san.Marking) bool {
					return alive(mk) && mk.Get(self) == 0
				}, nil)
			fm.AddCase(san.ConstProb(1)).AddOutputFunc(func(mk san.Marking) { mk.Set(self, 1) })

			msg := m.AddTimedActivity(prefix+"msg", san.ConstRate(n.lambda)).
				AddInputGate("alive", alive, nil)
			msg.AddCase(func(mk san.Marking) float64 { // erroneous external
				if mk.Get(self) == 1 {
					return n.pext
				}
				return 0
			}).AddOutputFunc(fail)
			msg.AddCase(func(mk san.Marking) float64 { // clean external
				if mk.Get(self) == 0 {
					return n.pext
				}
				return 0
			})
			for _, r := range nodes {
				if r.idx == n.idx {
					continue
				}
				dst := ctn[r.idx]
				msg.AddCase(func(mk san.Marking) float64 { // internal to r
					return (1 - n.pext) / float64(len(nodes)-1)
				}).AddOutputFunc(func(mk san.Marking) {
					if mk.Get(self) == 1 {
						mk.Set(dst, 1)
					}
				})
			}
			return nil
		}
	}

	variant := "old"
	if newVersions {
		variant = "new"
	}
	m, _, err := compose.Join("Nd("+variant+"):"+spec.Name, shared, parts)
	if err != nil {
		return nil, fmt.Errorf("template: composing Nd(%s): %w", variant, err)
	}
	sp, err := statespace.Generate(m, opts)
	if err != nil {
		return nil, fmt.Errorf("template: generating Nd(%s) space: %w", variant, err)
	}
	return mdcd.NewRMNdFromSpace(sp, failure)
}
