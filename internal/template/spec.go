// Package template generates the GSU (guarded software-upgrade) model
// family from declarative scenario specs: N nodes, multiple simultaneous
// upgrades, alternative guard policies, and heterogeneous per-node rates.
//
// The paper's study hardwires one scenario — two processes, one upgraded,
// a global guard duration φ — into the handwritten internal/mdcd models.
// Following Montecchi et al.'s SAN Templates approach, this package
// parameterizes that structure: a Spec describes the scenario, Build
// mechanically regenerates the three constituent reward models (the
// guarded-operation dependability model Gd, the performance-overhead
// model Gp, and the normal-mode models Nd), verifies every generated
// state space with internal/modelcheck, and hands the results to
// internal/core, whose translation layer (Eqs. 5–21 generalized to N
// active processes) runs unchanged.
//
// The canonical two-node spec (PaperSpec) regenerates state spaces
// isomorphic to the handwritten models and reproduces the paper's Y(φ)
// curve to 1e-9 relative error; the equivalence tests pin both.
package template

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"regexp"

	"guardedop/internal/mdcd"
	"guardedop/internal/robust"
)

// GuardPolicy names how detections end (or restart) the guarded
// operation. See docs/TEMPLATES.md for the catalog.
type GuardPolicy string

const (
	// PolicyGlobal is the paper's policy: one detection anywhere retires
	// every upgraded component and drops the whole system to the proven
	// configuration for the rest of [0, θ].
	PolicyGlobal GuardPolicy = "global"
	// PolicyPerNode retires only the upgraded node whose own external
	// message was caught; a detection attributed to the confidence chain
	// (a contaminated plain node) cannot be localised and retires every
	// remaining suspect. The G-OP mode ends when all suspects are retired.
	PolicyPerNode GuardPolicy = "per-node"
	// PolicyStaged rolls the upgrades out one suspect at a time: only one
	// upgraded node is under guard at once, and it is committed (trusted,
	// AT switched off) when one of its external messages passes the AT.
	// A detection aborts the whole rollout.
	PolicyStaged GuardPolicy = "staged"
	// PolicyAbortRetry gives the upgrade a retry budget: a detection
	// rolls the system back but keeps the suspects in service until the
	// budget is exhausted, after which it behaves like PolicyGlobal.
	PolicyAbortRetry GuardPolicy = "abort-retry"
)

// Policies lists every supported guard policy.
func Policies() []GuardPolicy {
	return []GuardPolicy{PolicyGlobal, PolicyPerNode, PolicyStaged, PolicyAbortRetry}
}

// NodeDefaults carries the per-node rate defaults a NodeSpec may override.
type NodeDefaults struct {
	// Lambda is the message-sending rate (per hour).
	Lambda float64 `json:"lambda"`
	// PExt is the probability a message is external.
	PExt float64 `json:"p_ext"`
	// MuOld is the fault-manifestation rate of proven (old-version)
	// software.
	MuOld float64 `json:"mu_old"`
}

// UpgradeSpec marks a node as running upgraded software during G-OP.
type UpgradeSpec struct {
	// MuNew is the fault-manifestation rate of the upgraded version.
	MuNew float64 `json:"mu_new"`
}

// NodeSpec describes one node. Zero-valued rate fields inherit the spec
// defaults.
type NodeSpec struct {
	Name   string  `json:"name"`
	Lambda float64 `json:"lambda,omitempty"`
	PExt   float64 `json:"p_ext,omitempty"`
	MuOld  float64 `json:"mu_old,omitempty"`
	// Upgrade is non-nil for nodes running upgraded software.
	Upgrade *UpgradeSpec `json:"upgrade,omitempty"`
}

// GuardSpec selects the guard policy.
type GuardSpec struct {
	// Policy is the guard policy; empty means PolicyGlobal.
	Policy GuardPolicy `json:"policy,omitempty"`
	// Retries is PolicyAbortRetry's rollback budget (0 with that policy
	// degenerates to PolicyGlobal; other policies require it unset).
	Retries int `json:"retries,omitempty"`
}

// Limits bounds state-space generation for the scenario's models,
// mapping onto statespace.Options. Zero fields keep the statespace
// defaults.
type Limits struct {
	MaxStates         int `json:"max_states,omitempty"`
	MaxVanishingDepth int `json:"max_vanishing_depth,omitempty"`
}

// Spec is a declarative GSU scenario.
type Spec struct {
	Name string `json:"name"`
	// Theta is the mission duration θ (hours).
	Theta float64 `json:"theta"`
	// Coverage is the AT error-detection coverage c.
	Coverage float64 `json:"coverage"`
	// Alpha and Beta are the AT and checkpoint completion rates.
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`

	Defaults NodeDefaults `json:"defaults"`
	Guard    GuardSpec    `json:"guard"`
	Nodes    []NodeSpec   `json:"nodes"`
	Limits   Limits       `json:"limits,omitempty"`
}

// node is one resolved node: defaults applied, indices assigned.
type node struct {
	name     string
	lambda   float64
	pext     float64
	muOld    float64
	upgraded bool
	muNew    float64
	idx      int // position among all nodes
	uidx     int // position among upgraded nodes; -1 for plain nodes
}

var nodeNameRe = regexp.MustCompile(`^[A-Za-z][A-Za-z0-9_-]*$`)

func specErr(format string, args ...any) error {
	return fmt.Errorf("template: "+format+": %w", append(args, robust.ErrInvariant)...)
}

func checkRate(what string, v float64, allowZero bool) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || (!allowZero && v == 0) {
		return specErr("%s = %g out of range", what, v)
	}
	return nil
}

// Validate checks the spec's structural and numeric constraints.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return specErr("scenario name is empty")
	}
	if err := checkRate("theta", s.Theta, false); err != nil {
		return err
	}
	if math.IsNaN(s.Coverage) || s.Coverage <= 0 || s.Coverage > 1 {
		return specErr("coverage = %g out of (0, 1]", s.Coverage)
	}
	if err := checkRate("alpha", s.Alpha, false); err != nil {
		return err
	}
	if err := checkRate("beta", s.Beta, false); err != nil {
		return err
	}
	switch s.Guard.Policy {
	case "", PolicyGlobal, PolicyPerNode, PolicyStaged:
		if s.Guard.Retries != 0 {
			return specErr("guard.retries = %d requires the %q policy", s.Guard.Retries, PolicyAbortRetry)
		}
	case PolicyAbortRetry:
		if s.Guard.Retries < 0 {
			return specErr("guard.retries = %d is negative", s.Guard.Retries)
		}
	default:
		return specErr("unknown guard policy %q", s.Guard.Policy)
	}
	if s.Limits.MaxStates < 0 || s.Limits.MaxVanishingDepth < 0 {
		return specErr("limits must be non-negative, got %+v", s.Limits)
	}
	_, err := s.resolve()
	return err
}

// resolve applies defaults and validates the node list.
func (s *Spec) resolve() ([]node, error) {
	if len(s.Nodes) < 2 {
		return nil, specErr("scenario needs at least 2 nodes, got %d", len(s.Nodes))
	}
	nodes := make([]node, len(s.Nodes))
	seen := make(map[string]bool, len(s.Nodes))
	upgrades := 0
	for i, ns := range s.Nodes {
		if !nodeNameRe.MatchString(ns.Name) {
			return nil, specErr("node %d name %q is not a valid identifier", i, ns.Name)
		}
		if seen[ns.Name] {
			return nil, specErr("duplicate node name %q", ns.Name)
		}
		seen[ns.Name] = true
		n := node{
			name:   ns.Name,
			lambda: ns.Lambda,
			pext:   ns.PExt,
			muOld:  ns.MuOld,
			idx:    i,
			uidx:   -1,
		}
		if n.lambda == 0 {
			n.lambda = s.Defaults.Lambda
		}
		if n.pext == 0 {
			n.pext = s.Defaults.PExt
		}
		if n.muOld == 0 {
			n.muOld = s.Defaults.MuOld
		}
		if err := checkRate(fmt.Sprintf("node %q lambda", n.name), n.lambda, false); err != nil {
			return nil, err
		}
		if math.IsNaN(n.pext) || n.pext <= 0 || n.pext >= 1 {
			return nil, specErr("node %q p_ext = %g out of (0, 1)", n.name, n.pext)
		}
		if err := checkRate(fmt.Sprintf("node %q mu_old", n.name), n.muOld, true); err != nil {
			return nil, err
		}
		if ns.Upgrade != nil {
			n.upgraded = true
			n.muNew = ns.Upgrade.MuNew
			n.uidx = upgrades
			upgrades++
			if err := checkRate(fmt.Sprintf("node %q mu_new", n.name), n.muNew, true); err != nil {
				return nil, err
			}
		}
		nodes[i] = n
	}
	if upgrades == 0 {
		return nil, specErr("scenario has no upgraded node")
	}
	if upgrades == len(nodes) {
		return nil, specErr("scenario needs at least one plain (non-upgraded) node")
	}
	return nodes, nil
}

// Params derives the translation-layer parameter set the analyzer needs:
// θ, the safeguard rates, and the default node rates (heterogeneous
// per-node overrides live in the generated models themselves; the Params
// fields describe the scenario's baseline).
func (s *Spec) Params() mdcd.Params {
	p := mdcd.Params{
		Theta:    s.Theta,
		Lambda:   s.Defaults.Lambda,
		MuOld:    s.Defaults.MuOld,
		Coverage: s.Coverage,
		PExt:     s.Defaults.PExt,
		Alpha:    s.Alpha,
		Beta:     s.Beta,
	}
	for _, ns := range s.Nodes {
		if ns.Upgrade != nil {
			p.MuNew = ns.Upgrade.MuNew
			break
		}
	}
	return p
}

// Policy returns the spec's guard policy with the default applied.
func (s *Spec) Policy() GuardPolicy {
	if s.Guard.Policy == "" {
		return PolicyGlobal
	}
	return s.Guard.Policy
}

// Hash returns a hex digest of the spec's canonical JSON encoding, used
// as a cache key by the serving layer. It panics if the spec cannot be
// marshaled, which cannot happen for this plain data struct.
func (s *Spec) Hash() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Spec is a plain data struct; Marshal cannot fail on it.
		panic(fmt.Sprintf("template: marshaling spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Parse decodes and validates a JSON spec.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, specErr("decoding spec: %v", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and validates a JSON spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("template: reading spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("template: spec %s: %w", path, err)
	}
	return s, nil
}

// PaperSpec returns the canonical scenario: the paper's Table 3 baseline
// as a template — two logical nodes, the first upgraded, global guard
// policy. Building it regenerates state spaces isomorphic to the
// handwritten internal/mdcd models.
func PaperSpec() *Spec {
	p := mdcd.DefaultParams()
	return &Spec{
		Name:     "paper-baseline",
		Theta:    p.Theta,
		Coverage: p.Coverage,
		Alpha:    p.Alpha,
		Beta:     p.Beta,
		Defaults: NodeDefaults{Lambda: p.Lambda, PExt: p.PExt, MuOld: p.MuOld},
		Guard:    GuardSpec{Policy: PolicyGlobal},
		Nodes: []NodeSpec{
			{Name: "P1", Upgrade: &UpgradeSpec{MuNew: p.MuNew}},
			{Name: "P2"},
		},
	}
}
