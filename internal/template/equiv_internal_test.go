package template

import (
	"math"
	"testing"

	"guardedop/internal/mdcd"
	"guardedop/internal/san"
	"guardedop/internal/statespace"
)

// assertIso checks that tpl is isomorphic to hw under the given
// hw-place-name → tpl-place-name mapping: a marking-level bijection of
// states that preserves the initial distribution and every aggregated
// transition rate.
func assertIso(t *testing.T, hw, tpl *statespace.Space, placeMap map[string]string) {
	t.Helper()
	assertIsoFunc(t, hw, tpl, func(mk, tm san.Marking) {
		for _, hp := range hw.Model.Places() {
			name, ok := placeMap[hp.Name()]
			if !ok {
				t.Fatalf("no mapping for handwritten place %q", hp.Name())
			}
			tp := tpl.Model.PlaceByName(name)
			if tp == nil {
				t.Fatalf("template has no place %q (mapped from %q)", name, hp.Name())
			}
			tm.Set(tp, mk.Get(hp))
		}
	})
}

// assertIsoFunc is assertIso with an arbitrary marking translation:
// translate fills the (zeroed) tpl marking tm from the hw marking mk.
func assertIsoFunc(t *testing.T, hw, tpl *statespace.Space, translate func(mk, tm san.Marking)) {
	t.Helper()
	if hw.NumStates() != tpl.NumStates() {
		t.Fatalf("state counts differ: handwritten %d, template %d", hw.NumStates(), tpl.NumStates())
	}
	perm := make([]int, hw.NumStates())
	seen := make(map[int]bool, hw.NumStates())
	for i, mk := range hw.States {
		tm := tpl.Model.InitialMarking()
		for _, p := range tpl.Model.Places() {
			tm.Set(p, 0)
		}
		translate(mk, tm)
		j := tpl.StateIndex(tm)
		if j < 0 {
			t.Fatalf("handwritten state %d %s has no template counterpart",
				i, mk.Format(hw.Model))
		}
		if seen[j] {
			t.Fatalf("template state %d matched twice", j)
		}
		seen[j] = true
		perm[i] = j
	}
	for i := range hw.Initial {
		if math.Abs(hw.Initial[i]-tpl.Initial[perm[i]]) > 1e-15 {
			t.Fatalf("initial probability differs at state %d: %g vs %g",
				i, hw.Initial[i], tpl.Initial[perm[i]])
		}
	}
	agg := func(ts []statespace.Transition, remap []int) map[[2]int]float64 {
		out := make(map[[2]int]float64, len(ts))
		for _, tr := range ts {
			from, to := tr.From, tr.To
			if remap != nil {
				from, to = remap[from], remap[to]
			}
			out[[2]int{from, to}] += tr.Rate
		}
		return out
	}
	hwAgg := agg(hw.Transitions, perm)
	tplAgg := agg(tpl.Transitions, nil)
	if len(hwAgg) != len(tplAgg) {
		t.Fatalf("transition counts differ: handwritten %d, template %d", len(hwAgg), len(tplAgg))
	}
	for k, r := range hwAgg {
		tr, ok := tplAgg[k]
		if !ok {
			t.Fatalf("template lacks transition %d->%d (rate %g)", k[0], k[1], r)
		}
		if math.Abs(tr-r) > 1e-12*math.Max(1, math.Abs(r)) {
			t.Fatalf("rate differs on %d->%d: handwritten %g, template %g", k[0], k[1], r, tr)
		}
	}
}

func paperNodes(t *testing.T) (*Spec, []node) {
	t.Helper()
	spec := PaperSpec()
	nodes, err := spec.resolve()
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	return spec, nodes
}

// TestGdIsomorphicToHandwritten pins the tentpole's core claim: the
// canonical two-node spec regenerates the paper's RMGd exactly.
func TestGdIsomorphicToHandwritten(t *testing.T) {
	spec, nodes := paperNodes(t)
	gd, err := buildGd(spec, nodes, statespace.Options{})
	if err != nil {
		t.Fatalf("buildGd: %v", err)
	}
	hw, err := mdcd.BuildRMGd(spec.Params())
	if err != nil {
		t.Fatalf("BuildRMGd: %v", err)
	}
	assertIso(t, hw.Space, gd.Space, map[string]string{
		"P1Nctn":    "P1.ctnN",
		"P1Octn":    "P1.ctnO",
		"P2ctn":     "P2.ctn",
		"dirty_bit": "dirty_bit",
		"detected":  "detected",
		"failure":   "failure",
	})
}

// TestGdPolicyReductions: the alternative guard policies degenerate to
// the global policy at their trivial parameter points, state for state.
func TestGdPolicyReductions(t *testing.T) {
	base, _ := paperNodes(t)
	global, err := buildGd(base, mustResolve(t, base), statespace.Options{})
	if err != nil {
		t.Fatalf("buildGd(global): %v", err)
	}
	cases := []struct {
		name  string
		guard GuardSpec
	}{
		{"per-node single upgrade", GuardSpec{Policy: PolicyPerNode}},
		{"abort-retry zero budget", GuardSpec{Policy: PolicyAbortRetry, Retries: 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := PaperSpec()
			spec.Guard = tc.guard
			gd, err := buildGd(spec, mustResolve(t, spec), statespace.Options{})
			if err != nil {
				t.Fatalf("buildGd: %v", err)
			}
			// The variant's policy places are a function of the shared
			// places at the degenerate point: retired tracks detected
			// (except in collapsed failure states, where fail resets
			// it), and the zero retry budget stays zero.
			assertIsoFunc(t, global.Space, gd.Space, func(mk, tm san.Marking) {
				for _, hp := range global.Space.Model.Places() {
					tm.Set(gd.Space.Model.PlaceByName(hp.Name()), mk.Get(hp))
				}
				if tc.guard.Policy == PolicyPerNode {
					retired := gd.Space.Model.PlaceByName("retired.P1")
					if retired == nil {
						t.Fatal("per-node variant lacks retired.P1")
					}
					det := global.Space.Model.PlaceByName("detected")
					fl := global.Space.Model.PlaceByName("failure")
					if mk.Get(fl) == 0 {
						tm.Set(retired, mk.Get(det))
					}
				}
			})
		})
	}
}

func mustResolve(t *testing.T, s *Spec) []node {
	t.Helper()
	nodes, err := s.resolve()
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	return nodes
}

// TestNdIsomorphicToHandwritten covers both normal-mode variants.
func TestNdIsomorphicToHandwritten(t *testing.T) {
	spec, nodes := paperNodes(t)
	p := spec.Params()
	m := map[string]string{"P1Nctn": "P1.ctn", "P2ctn": "P2.ctn", "failure": "failure"}
	for _, tc := range []struct {
		name string
		mu   float64
		new  bool
	}{
		{"new", p.MuNew, true},
		{"old", p.MuOld, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nd, err := buildNd(spec, nodes, tc.new, statespace.Options{})
			if err != nil {
				t.Fatalf("buildNd: %v", err)
			}
			hw, err := mdcd.BuildRMNd(p, tc.mu)
			if err != nil {
				t.Fatalf("BuildRMNd: %v", err)
			}
			assertIso(t, hw.Space, nd.Space, m)
		})
	}
}

// TestGpIsomorphicToHandwritten: the joint overhead model regenerates the
// paper's RMGp (the plain node's checkpoint-in-progress place is owned by
// the sender there, by the recipient here; the dynamics coincide).
func TestGpIsomorphicToHandwritten(t *testing.T) {
	spec, nodes := paperNodes(t)
	gp, err := buildGpJoint(spec, nodes)
	if err != nil {
		t.Fatalf("buildGpJoint: %v", err)
	}
	hw, err := mdcd.BuildRMGp(spec.Params())
	if err != nil {
		t.Fatalf("BuildRMGp: %v", err)
	}
	assertIso(t, hw.Space, gp.Space, map[string]string{
		"P1nReady": "P1.sready",
		"P1nExt":   "P1.sext",
		"P1nInt":   "P2.ckpt",
		"P2Ready":  "P2.ready",
		"P2Ext":    "P2.ext",
		"P1oCheck": "P1.ocheck",
		"P1oDB":    "P1.odb",
		"P2DB":     "P2.db",
	})

	// And the solved overhead measures agree with the handwritten ones.
	hwm, err := hw.Measures()
	if err != nil {
		t.Fatalf("Measures: %v", err)
	}
	for i, want := range []float64{hwm.Rho1, hwm.Rho2} {
		if got := gp.Rhos[i]; math.Abs(got-want) > 1e-9*want {
			t.Errorf("rho[%d] = %.15g, handwritten %.15g", i, got, want)
		}
	}
}

// TestGpMeanFieldClose sanity-checks the mean-field fallback against the
// exact joint solution on the canonical scenario: an approximation, but
// it must land in the right neighbourhood (the overheads are small, so a
// loose relative tolerance on 1-ρ is the meaningful comparison).
func TestGpMeanFieldClose(t *testing.T) {
	spec, nodes := paperNodes(t)
	joint, err := buildGpJoint(spec, nodes)
	if err != nil {
		t.Fatalf("buildGpJoint: %v", err)
	}
	mf, err := gpMeanField(spec, nodes)
	if err != nil {
		t.Fatalf("gpMeanField: %v", err)
	}
	for i := range joint.Rhos {
		ohJoint, ohMF := 1-joint.Rhos[i], 1-mf[i]
		if math.Abs(ohJoint-ohMF) > 0.25*ohJoint {
			t.Errorf("node %d overhead: joint %.6g, mean-field %.6g (>25%% apart)",
				i, ohJoint, ohMF)
		}
	}
}
