package template

import (
	"fmt"

	"guardedop/internal/compose"
	"guardedop/internal/mdcd"
	"guardedop/internal/san"
	"guardedop/internal/statespace"
)

// Shared dependability place names. The per-node contamination places are
// named "<node>.ctn" (plain), "<node>.ctnN"/"<node>.ctnO" (upgraded new
// and old replica), and the per-node policy places "retired.<node>".
const (
	plDetected = "detected"
	plFailure  = "failure"
	plDirty    = "dirty_bit"
	plStage    = "stage"
	plRetry    = "retry"
)

// gdModel is the generated scenario dependability model before it is
// wrapped into an mdcd.RMGd: the composed SAN plus the place handles the
// activity closures share.
type gdModel struct {
	spec  *Spec
	nodes []node

	detected *san.Place
	failure  *san.Place
	dirty    *san.Place
	stage    *san.Place   // staged policy only
	retry    *san.Place   // abort-retry policy only
	retired  []*san.Place // per-node policy: indexed by uidx

	ctnN []*san.Place // per upgraded node (by uidx): new-replica contamination
	ctnO []*san.Place // per upgraded node (by uidx): old-replica contamination
	ctn  []*san.Place // per node (by idx): plain contamination; nil for upgraded
}

// buildGd generates the scenario's guarded-operation dependability model
// and wraps it as an mdcd.RMGd. opts bounds the state-space exploration.
func buildGd(spec *Spec, nodes []node, opts statespace.Options) (*mdcd.RMGd, error) {
	g := &gdModel{spec: spec, nodes: nodes}

	shared := []compose.SharedPlaceSpec{
		{Name: plDetected},
		{Name: plFailure},
		{Name: plDirty},
	}
	switch spec.Policy() {
	case PolicyPerNode:
		for _, n := range nodes {
			if n.upgraded {
				shared = append(shared, compose.SharedPlaceSpec{Name: "retired." + n.name})
			}
		}
	case PolicyStaged:
		shared = append(shared, compose.SharedPlaceSpec{Name: plStage})
	case PolicyAbortRetry:
		shared = append(shared, compose.SharedPlaceSpec{Name: plRetry, Initial: spec.Guard.Retries})
	}
	for _, n := range nodes {
		if n.upgraded {
			shared = append(shared,
				compose.SharedPlaceSpec{Name: n.name + ".ctnN"},
				compose.SharedPlaceSpec{Name: n.name + ".ctnO"})
		} else {
			shared = append(shared, compose.SharedPlaceSpec{Name: n.name + ".ctn"})
		}
	}

	parts := make(map[string]compose.Template, len(nodes))
	for _, n := range nodes {
		n := n
		parts[n.name] = func(m *san.Model, prefix string, sh compose.Shared) error {
			if g.detected == nil {
				if err := g.bindPlaces(sh); err != nil {
					return err
				}
			}
			if n.upgraded {
				g.addUpgradedNode(m, prefix, n)
			} else {
				g.addPlainNode(m, prefix, n)
			}
			return nil
		}
	}

	m, _, err := compose.Join("Gd:"+spec.Name, shared, parts)
	if err != nil {
		return nil, fmt.Errorf("template: composing Gd: %w", err)
	}
	sp, err := statespace.Generate(m, opts)
	if err != nil {
		return nil, fmt.Errorf("template: generating Gd space: %w", err)
	}
	return mdcd.NewRMGdFromSpace(sp, g.detected, g.failure)
}

func (g *gdModel) upgradedCount() int {
	k := 0
	for _, n := range g.nodes {
		if n.upgraded {
			k++
		}
	}
	return k
}

// bindPlaces resolves the shared place handles once, on the first
// template instantiation.
func (g *gdModel) bindPlaces(sh compose.Shared) error {
	g.detected = sh[plDetected]
	g.failure = sh[plFailure]
	g.dirty = sh[plDirty]
	g.stage = sh[plStage]
	g.retry = sh[plRetry]
	g.ctnN = make([]*san.Place, g.upgradedCount())
	g.ctnO = make([]*san.Place, g.upgradedCount())
	g.retired = make([]*san.Place, g.upgradedCount())
	g.ctn = make([]*san.Place, len(g.nodes))
	for _, n := range g.nodes {
		if n.upgraded {
			g.ctnN[n.uidx] = sh[n.name+".ctnN"]
			g.ctnO[n.uidx] = sh[n.name+".ctnO"]
			g.retired[n.uidx] = sh["retired."+n.name]
		} else {
			g.ctn[n.idx] = sh[n.name+".ctn"]
		}
	}
	for i, n := range g.nodes {
		if n.upgraded && (g.ctnN[n.uidx] == nil || g.ctnO[n.uidx] == nil) {
			return fmt.Errorf("template: missing shared places for node %q", n.name)
		}
		if !n.upgraded && g.ctn[i] == nil {
			return fmt.Errorf("template: missing shared place for node %q", n.name)
		}
	}
	return nil
}

// --- mode predicates (policy-dependent) --------------------------------

func (g *gdModel) alive(mk san.Marking) bool { return mk.Get(g.failure) == 0 }

// newInService reports whether u's upgraded replica is running.
func (g *gdModel) newInService(u node, mk san.Marking) bool {
	switch g.spec.Policy() {
	case PolicyPerNode:
		return mk.Get(g.retired[u.uidx]) == 0
	case PolicyStaged:
		return mk.Get(g.detected) == 0 && u.uidx <= mk.Get(g.stage)
	default: // global, abort-retry
		return mk.Get(g.detected) == 0
	}
}

// newGuarded reports whether u's upgraded replica is under guard (its
// external messages acceptance-tested). Under the staged policy a
// committed upgrade is in service but trusted.
func (g *gdModel) newGuarded(u node, mk san.Marking) bool {
	if g.spec.Policy() == PolicyStaged {
		return mk.Get(g.detected) == 0 && u.uidx == mk.Get(g.stage)
	}
	return g.newInService(u, mk)
}

// oldActive reports whether u's proven replica is actively sending
// messages (rather than shadowing).
func (g *gdModel) oldActive(u node, mk san.Marking) bool {
	switch g.spec.Policy() {
	case PolicyPerNode:
		return mk.Get(g.retired[u.uidx]) == 1
	case PolicyStaged:
		return mk.Get(g.detected) == 1 || u.uidx > mk.Get(g.stage)
	default:
		return mk.Get(g.detected) == 1
	}
}

// plainGuarded reports whether plain nodes' potentially-contaminated
// external messages are acceptance-tested.
func (g *gdModel) plainGuarded(mk san.Marking) bool {
	if mk.Get(g.detected) != 0 {
		return false
	}
	if g.spec.Policy() == PolicyStaged {
		return mk.Get(g.stage) < g.upgradedCount()
	}
	return true
}

// --- recovery and failure actions --------------------------------------

// rollback restores every node to a consistent clean state: the MDCD
// rollback/roll-forward machinery discards message-borne contamination
// along with the confidence view, exactly as the handwritten model's
// recover action (see BuildRMGdWithOptions for the paper's argument).
func (g *gdModel) rollback(mk san.Marking) {
	for _, pl := range g.ctnN {
		mk.Set(pl, 0)
	}
	for _, pl := range g.ctnO {
		mk.Set(pl, 0)
	}
	for _, pl := range g.ctn {
		if pl != nil {
			mk.Set(pl, 0)
		}
	}
	mk.Set(g.dirty, 0)
}

// retireAll ends the G-OP mode outright. The stage counter is reset so
// post-detection states collapse regardless of how far the rollout got.
func (g *gdModel) retireAll(mk san.Marking) {
	mk.Set(g.detected, 1)
	for _, pl := range g.retired {
		if pl != nil {
			mk.Set(pl, 1)
		}
	}
	if g.stage != nil {
		mk.Set(g.stage, 0)
	}
	g.rollback(mk)
}

// recoverSuspect handles a detection attributed to upgraded node u (its
// own erroneous external message was caught by the AT).
func (g *gdModel) recoverSuspect(u node, mk san.Marking) {
	switch g.spec.Policy() {
	case PolicyPerNode:
		mk.Set(g.retired[u.uidx], 1)
		g.rollback(mk)
		for _, pl := range g.retired {
			if mk.Get(pl) == 0 {
				return // suspects remain: G-OP continues for them
			}
		}
		mk.Set(g.detected, 1)
	case PolicyAbortRetry:
		if r := mk.Get(g.retry); r > 0 {
			mk.Set(g.retry, r-1)
			g.rollback(mk) // abort the bad state, retry the upgrade
			return
		}
		g.retireAll(mk)
	default: // global, staged (a detection aborts the whole rollout)
		g.retireAll(mk)
	}
}

// recoverDirty handles a detection attributed to the confidence chain (a
// contaminated plain node's external message was caught): the erroneous
// state cannot be localised to one suspect.
func (g *gdModel) recoverDirty(mk san.Marking) {
	switch g.spec.Policy() {
	case PolicyAbortRetry:
		if r := mk.Get(g.retry); r > 0 {
			mk.Set(g.retry, r-1)
			g.rollback(mk)
			return
		}
		g.retireAll(mk)
	default:
		g.retireAll(mk)
	}
}

// fail enters the absorbing failure state, zeroing the bookkeeping places
// so failure states collapse to (at most) one per detected value.
func (g *gdModel) fail(mk san.Marking) {
	mk.Set(g.failure, 1)
	g.rollback(mk)
	for _, pl := range g.retired {
		if pl != nil {
			mk.Set(pl, 0)
		}
	}
	if g.stage != nil {
		mk.Set(g.stage, 0)
	}
	if g.retry != nil {
		mk.Set(g.retry, 0)
	}
}

// contaminate spreads sender-borne contamination to recipient r: a plain
// node's single state, or an upgraded node's shadow plus — while it is in
// service — its new replica.
func (g *gdModel) contaminate(r node, mk san.Marking) {
	if !r.upgraded {
		mk.Set(g.ctn[r.idx], 1)
		return
	}
	mk.Set(g.ctnO[r.uidx], 1)
	if g.newInService(r, mk) {
		mk.Set(g.ctnN[r.uidx], 1)
	}
}

// peers returns every node other than n, the recipients of its internal
// messages (uniform routing, probability (1-pext)/(N-1) each).
func (g *gdModel) peers(n node) []node {
	out := make([]node, 0, len(g.nodes)-1)
	for _, o := range g.nodes {
		if o.idx != n.idx {
			out = append(out, o)
		}
	}
	return out
}

// --- node activity templates -------------------------------------------

// addUpgradedNode wires the fault-manifestation and message-sending
// activities of upgraded node u: its new replica (guarded while under
// AT, trusted once committed by the staged policy) and its proven
// replica (shadow while the new one serves, active afterwards).
func (g *gdModel) addUpgradedNode(m *san.Model, prefix string, u node) {
	ctnN, ctnO := g.ctnN[u.uidx], g.ctnO[u.uidx]
	cov := g.spec.Coverage
	staged := g.spec.Policy() == PolicyStaged

	// New-replica (upgraded software) faults manifest while in service.
	fmN := m.AddTimedActivity(prefix+"fmN", san.ConstRate(u.muNew)).
		AddInputGate("enabled", func(mk san.Marking) bool {
			return g.alive(mk) && g.newInService(u, mk) && mk.Get(ctnN) == 0
		}, nil)
	fmN.AddCase(san.ConstProb(1)).AddOutputFunc(func(mk san.Marking) { mk.Set(ctnN, 1) })

	// Old-replica faults manifest throughout [0, φ] (shadow or active).
	fmO := m.AddTimedActivity(prefix+"fmO", san.ConstRate(u.muOld)).
		AddInputGate("enabled", func(mk san.Marking) bool {
			return g.alive(mk) && mk.Get(ctnO) == 0
		}, nil)
	fmO.AddCase(san.ConstProb(1)).AddOutputFunc(func(mk san.Marking) { mk.Set(ctnO, 1) })

	// New-replica message sending. While guarded, every external message
	// undergoes AT (the node is always considered potentially
	// contaminated); a committed upgrade (staged policy) sends unchecked.
	msgN := m.AddTimedActivity(prefix+"msgN", san.ConstRate(u.lambda)).
		AddInputGate("inService", func(mk san.Marking) bool {
			return g.alive(mk) && g.newInService(u, mk)
		}, nil)
	msgN.AddCase(func(mk san.Marking) float64 { // erroneous external, detected
		if mk.Get(ctnN) == 1 && g.newGuarded(u, mk) {
			return u.pext * cov
		}
		return 0
	}).AddOutputFunc(func(mk san.Marking) { g.recoverSuspect(u, mk) })
	msgN.AddCase(func(mk san.Marking) float64 { // erroneous external, escaped
		if mk.Get(ctnN) != 1 {
			return 0
		}
		if g.newGuarded(u, mk) {
			return u.pext * (1 - cov)
		}
		return u.pext // trusted: no AT between the error and the consumer
	}).AddOutputFunc(g.fail)
	msgN.AddCase(func(mk san.Marking) float64 { // clean external
		if mk.Get(ctnN) == 0 {
			return u.pext
		}
		return 0
	}).AddOutputFunc(func(mk san.Marking) {
		if !g.newGuarded(u, mk) {
			return
		}
		// Passing the AT validates the confidence chain downstream.
		mk.Set(g.dirty, 0)
		if staged {
			// The committed suspect is trusted from here on; the next
			// pending upgrade (if any) comes under guard.
			mk.Set(g.stage, mk.Get(g.stage)+1)
		}
	})
	for _, r := range g.peers(u) {
		r := r
		msgN.AddCase(func(mk san.Marking) float64 { // internal message to r
			return (1 - u.pext) / float64(len(g.nodes)-1)
		}).AddOutputFunc(func(mk san.Marking) {
			if g.newGuarded(u, mk) {
				// A suspect's internal message marks its recipients
				// potentially contaminated.
				mk.Set(g.dirty, 1)
			}
			if mk.Get(ctnN) == 1 {
				g.contaminate(r, mk)
			}
		})
	}

	// Old-replica message sending: suppressed while shadowing, active in
	// the recovered (or not-yet-upgraded, staged policy) configuration.
	// No safeguards apply to it.
	msgO := m.AddTimedActivity(prefix+"msgO", san.ConstRate(u.lambda)).
		AddInputGate("active", func(mk san.Marking) bool {
			return g.alive(mk) && g.oldActive(u, mk)
		}, nil)
	msgO.AddCase(func(mk san.Marking) float64 { // erroneous external
		if mk.Get(ctnO) == 1 {
			return u.pext
		}
		return 0
	}).AddOutputFunc(g.fail)
	msgO.AddCase(func(mk san.Marking) float64 { // clean external
		if mk.Get(ctnO) == 0 {
			return u.pext
		}
		return 0
	})
	for _, r := range g.peers(u) {
		r := r
		msgO.AddCase(func(mk san.Marking) float64 {
			return (1 - u.pext) / float64(len(g.nodes)-1)
		}).AddOutputFunc(func(mk san.Marking) {
			if mk.Get(ctnO) == 1 {
				g.contaminate(r, mk)
			}
		})
	}
}

// addPlainNode wires the activities of plain node n: its external
// messages are acceptance-tested only while the confidence view (the
// shared dirty bit) marks it potentially contaminated and the G-OP mode
// is still guarding.
func (g *gdModel) addPlainNode(m *san.Model, prefix string, n node) {
	ctn := g.ctn[n.idx]
	cov := g.spec.Coverage

	fm := m.AddTimedActivity(prefix+"fm", san.ConstRate(n.muOld)).
		AddInputGate("enabled", func(mk san.Marking) bool {
			return g.alive(mk) && mk.Get(ctn) == 0
		}, nil)
	fm.AddCase(san.ConstProb(1)).AddOutputFunc(func(mk san.Marking) { mk.Set(ctn, 1) })

	msg := m.AddTimedActivity(prefix+"msg", san.ConstRate(n.lambda)).
		AddInputGate("alive", g.alive, nil)
	msg.AddCase(func(mk san.Marking) float64 { // erroneous external, detected
		if g.plainGuarded(mk) && mk.Get(ctn) == 1 && mk.Get(g.dirty) == 1 {
			return n.pext * cov
		}
		return 0
	}).AddOutputFunc(g.recoverDirty)
	msg.AddCase(func(mk san.Marking) float64 { // erroneous external, failure
		if mk.Get(ctn) != 1 {
			return 0
		}
		if g.plainGuarded(mk) && mk.Get(g.dirty) == 1 {
			return n.pext * (1 - cov) // AT miss
		}
		return n.pext // considered clean, or no AT outside the guard
	}).AddOutputFunc(g.fail)
	msg.AddCase(func(mk san.Marking) float64 { // clean external
		if mk.Get(ctn) == 0 {
			return n.pext
		}
		return 0
	}).AddOutputFunc(func(mk san.Marking) {
		// A clean external message passes whatever AT was required and
		// resets the confidence view (gate P2ok_ext of Figure 6).
		if g.plainGuarded(mk) {
			mk.Set(g.dirty, 0)
		}
	})
	for _, r := range g.peers(n) {
		r := r
		msg.AddCase(func(mk san.Marking) float64 {
			return (1 - n.pext) / float64(len(g.nodes)-1)
		}).AddOutputFunc(func(mk san.Marking) {
			if mk.Get(ctn) == 1 {
				g.contaminate(r, mk)
			}
		})
	}
}
