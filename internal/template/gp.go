package template

import (
	"errors"
	"fmt"
	"math"

	"guardedop/internal/compose"
	"guardedop/internal/reward"
	"guardedop/internal/san"
	"guardedop/internal/statespace"
)

// gpJointMaxStates caps the exact joint performance-overhead model. The
// Gp state space is a product over nodes (≈5–6 local states each), so it
// explodes combinatorially; beyond the cap buildGp switches to the
// mean-field approximation.
const gpJointMaxStates = 4096

// gpResult carries the steady-state overhead solution for a scenario.
type gpResult struct {
	// Rhos[i] is node i's forward-progress fraction ρ_i (spec node order).
	Rhos []float64
	// States is the joint model's state count, 0 if the mean-field
	// approximation was used.
	States int
	// MeanField records that the joint model exceeded gpJointMaxStates
	// and the per-node fixed point was used instead.
	MeanField bool
	// Space is the joint state space (nil under the mean-field path),
	// exposed so Build can model-check it.
	Space *statespace.Space
}

// buildGp solves the scenario's G-OP performance-overhead measures: the
// fraction of time each node makes forward progress while the safeguards
// (acceptance tests on suspect and dirty externals, pre-processing
// checkpoints on clean recipients) are active.
//
// The model generalises the paper's Figure 7 and is guard-policy
// independent: it describes the overhead while every upgrade is under
// guard, the regime the Y(φ) translation weighs by the G-OP sojourn. Up
// to gpJointMaxStates the exact joint chain is generated and solved; past
// it a standard mean-field fixed point over the per-node marginals is
// used (each node sees the others only through their steady-state
// sending and AT-completion rates).
func buildGp(spec *Spec, nodes []node) (*gpResult, error) {
	res, err := buildGpJoint(spec, nodes)
	if err == nil {
		return res, nil
	}
	if !errors.Is(err, statespace.ErrStateSpaceTooLarge) {
		return nil, err
	}
	rhos, mfErr := gpMeanField(spec, nodes)
	if mfErr != nil {
		return nil, mfErr
	}
	return &gpResult{Rhos: rhos, MeanField: true}, nil
}

// buildGpJoint generates and solves the exact joint overhead model.
//
// Per upgraded node u (suspect): "<u>.sready" (1 token) / "<u>.sext" — the
// new replica's send/AT cycle, every external AT'd — plus the shadow old
// replica's confidence state "<u>.odb" and checkpoint-in-progress
// "<u>.ocheck". Per plain node j: "<j>.ready" (1) / "<j>.ext" / "<j>.db" /
// "<j>.ckpt"; j blocks (no sends) while its checkpoint is in progress,
// and only dirty externals are AT'd. Any completed AT validates the
// sender's state and clears every dirty bit downstream (the confidence
// chain revalidation of the handwritten RMGp).
func buildGpJoint(spec *Spec, nodes []node) (*gpResult, error) {
	nUp := 0
	for _, n := range nodes {
		if n.upgraded {
			nUp++
		}
	}
	sready := make([]*san.Place, nUp)
	sext := make([]*san.Place, nUp)
	ocheck := make([]*san.Place, nUp)
	odb := make([]*san.Place, nUp)
	ready := make([]*san.Place, len(nodes))
	ext := make([]*san.Place, len(nodes))
	ckpt := make([]*san.Place, len(nodes))
	db := make([]*san.Place, len(nodes))

	var shared []compose.SharedPlaceSpec
	for _, n := range nodes {
		if n.upgraded {
			shared = append(shared,
				compose.SharedPlaceSpec{Name: n.name + ".sready", Initial: 1},
				compose.SharedPlaceSpec{Name: n.name + ".sext"},
				compose.SharedPlaceSpec{Name: n.name + ".ocheck"},
				compose.SharedPlaceSpec{Name: n.name + ".odb"})
		} else {
			shared = append(shared,
				compose.SharedPlaceSpec{Name: n.name + ".ready", Initial: 1},
				compose.SharedPlaceSpec{Name: n.name + ".ext"},
				compose.SharedPlaceSpec{Name: n.name + ".ckpt"},
				compose.SharedPlaceSpec{Name: n.name + ".db"})
		}
	}

	bound := false
	bind := func(sh compose.Shared) {
		if bound {
			return
		}
		bound = true
		for _, n := range nodes {
			if n.upgraded {
				sready[n.uidx] = sh[n.name+".sready"]
				sext[n.uidx] = sh[n.name+".sext"]
				ocheck[n.uidx] = sh[n.name+".ocheck"]
				odb[n.uidx] = sh[n.name+".odb"]
			} else {
				ready[n.idx] = sh[n.name+".ready"]
				ext[n.idx] = sh[n.name+".ext"]
				ckpt[n.idx] = sh[n.name+".ckpt"]
				db[n.idx] = sh[n.name+".db"]
			}
		}
	}
	// clearDBs is the confidence-chain revalidation on AT completion.
	clearDBs := func(mk san.Marking) {
		for _, pl := range odb {
			mk.Set(pl, 0)
		}
		for _, pl := range db {
			if pl != nil {
				mk.Set(pl, 0)
			}
		}
	}
	// contaminateCkpt triggers recipient r's pre-processing checkpoint for
	// a potentially contaminated sender, unless r's affected state is
	// already dirty or already checkpointing. Upgraded recipients
	// checkpoint only their shadow (the new replica is itself a suspect
	// and never checkpoints).
	contaminateCkpt := func(r node, mk san.Marking) {
		if r.upgraded {
			if mk.Get(odb[r.uidx]) == 0 && mk.Get(ocheck[r.uidx]) == 0 {
				mk.Set(ocheck[r.uidx], 1)
			}
			return
		}
		if mk.Get(db[r.idx]) == 0 && mk.Get(ckpt[r.idx]) == 0 {
			mk.Set(ckpt[r.idx], 1)
		}
	}

	parts := make(map[string]compose.Template, len(nodes))
	for _, n := range nodes {
		n := n
		parts[n.name] = func(m *san.Model, prefix string, sh compose.Shared) error {
			bind(sh)
			peers := make([]node, 0, len(nodes)-1)
			for _, o := range nodes {
				if o.idx != n.idx {
					peers = append(peers, o)
				}
			}
			split := (1 - n.pext) / float64(len(nodes)-1)

			if n.upgraded {
				u := n
				msg := m.AddTimedActivity(prefix+"msg", san.ConstRate(u.lambda)).
					AddInputArc(sready[u.uidx], 1)
				// External: always AT'd.
				msg.AddCase(san.ConstProb(u.pext)).AddOutputArc(sext[u.uidx], 1)
				// Internal: sender continues; the recipient (always
				// potentially contaminated by a suspect) may need to
				// checkpoint first.
				for _, r := range peers {
					r := r
					msg.AddCase(san.ConstProb(split)).
						AddOutputArc(sready[u.uidx], 1).
						AddOutputFunc(func(mk san.Marking) { contaminateCkpt(r, mk) })
				}

				at := m.AddTimedActivity(prefix+"at", san.ConstRate(spec.Alpha)).
					AddInputArc(sext[u.uidx], 1)
				at.AddCase(san.ConstProb(1)).AddOutputFunc(func(mk san.Marking) {
					mk.Set(sready[u.uidx], 1)
					clearDBs(mk)
				})

				// Shadow old replica's checkpoint (triggered by dirty
				// internal traffic) completes into the dirty state.
				ock := m.AddTimedActivity(prefix+"ockpt", san.ConstRate(spec.Beta)).
					AddInputArc(ocheck[u.uidx], 1)
				ock.AddCase(san.ConstProb(1)).AddOutputFunc(func(mk san.Marking) {
					mk.Set(odb[u.uidx], 1)
				})
				return nil
			}

			j := n
			msg := m.AddTimedActivity(prefix+"msg", san.ConstRate(j.lambda)).
				AddInputArc(ready[j.idx], 1).
				AddInputGate("notCheckpointing", func(mk san.Marking) bool {
					return mk.Get(ckpt[j.idx]) == 0
				}, nil)
			// External while dirty: AT required.
			msg.AddCase(func(mk san.Marking) float64 {
				if mk.Get(db[j.idx]) == 1 {
					return j.pext
				}
				return 0
			}).AddOutputArc(ext[j.idx], 1)
			// External while clean: no AT.
			msg.AddCase(func(mk san.Marking) float64 {
				if mk.Get(db[j.idx]) == 0 {
					return j.pext
				}
				return 0
			}).AddOutputArc(ready[j.idx], 1)
			// Internal: contaminating only while dirty.
			for _, r := range peers {
				r := r
				msg.AddCase(san.ConstProb(split)).
					AddOutputArc(ready[j.idx], 1).
					AddOutputFunc(func(mk san.Marking) {
						if mk.Get(db[j.idx]) == 1 {
							contaminateCkpt(r, mk)
						}
					})
			}

			at := m.AddTimedActivity(prefix+"at", san.ConstRate(spec.Alpha)).
				AddInputArc(ext[j.idx], 1)
			at.AddCase(san.ConstProb(1)).AddOutputFunc(func(mk san.Marking) {
				mk.Set(ready[j.idx], 1)
				clearDBs(mk)
			})

			ck := m.AddTimedActivity(prefix+"ckpt", san.ConstRate(spec.Beta)).
				AddInputArc(ckpt[j.idx], 1)
			ck.AddCase(san.ConstProb(1)).AddOutputFunc(func(mk san.Marking) {
				mk.Set(db[j.idx], 1)
			})
			return nil
		}
	}

	m, _, err := compose.Join("Gp:"+spec.Name, shared, parts)
	if err != nil {
		return nil, fmt.Errorf("template: composing Gp: %w", err)
	}
	capStates := gpJointMaxStates
	if spec.Limits.MaxStates > 0 && spec.Limits.MaxStates < capStates {
		capStates = spec.Limits.MaxStates
	}
	sp, err := statespace.Generate(m, statespace.Options{
		MaxStates:         capStates,
		MaxVanishingDepth: spec.Limits.MaxVanishingDepth,
	})
	if err != nil {
		if errors.Is(err, statespace.ErrStateSpaceTooLarge) {
			return nil, err
		}
		return nil, fmt.Errorf("template: generating Gp space: %w", err)
	}

	rhos := make([]float64, len(nodes))
	for _, n := range nodes {
		var s *reward.Structure
		if n.upgraded {
			pl := sext[n.uidx]
			s = reward.NewStructure().Add(n.name+" AT", func(mk san.Marking) bool {
				return mk.Get(pl) > 0
			}, 1)
		} else {
			ckptPl, dbPl, extPl := ckpt[n.idx], db[n.idx], ext[n.idx]
			s = reward.NewStructure().Add(n.name+" ckpt or AT", func(mk san.Marking) bool {
				return (mk.Get(ckptPl) > 0 && mk.Get(dbPl) == 0) ||
					(mk.Get(extPl) > 0 && mk.Get(dbPl) == 1)
			}, 1)
		}
		oh, err := reward.SteadyState(sp, s)
		if err != nil {
			return nil, fmt.Errorf("template: solving Gp overhead for %q: %w", n.name, err)
		}
		rhos[n.idx] = 1 - oh
	}
	return &gpResult{Rhos: rhos, States: sp.NumStates(), Space: sp}, nil
}

// Mean-field marginal states of a plain node (position × dirty bit; the
// (ckpt, db=1) combination is unreachable: checkpoints are triggered and
// run only while clean).
const (
	mfReadyClean = iota // ready, db=0
	mfReadyDirty        // ready, db=1
	mfCkpt              // checkpoint in progress (db=0)
	mfExtDirty          // own AT in progress, db=1
	mfExtClean          // own AT in progress, db cleared by a peer's AT
	mfStates
)

// gpMeanField solves the overhead measures by a fixed point over per-node
// marginals. Suspects are exact and self-contained: their send/AT cycle
// never blocks on peers, so ρ_u = α/(α + λ_u·p_ext). Each plain node is a
// 5-state chain driven by two aggregate Poisson influences — the rate of
// potentially-contaminated internal messages reaching it (checkpoint
// triggers) and the rate of peer AT completions (dirty-bit clears) —
// both computed from the other marginals and iterated to convergence.
func gpMeanField(spec *Spec, nodes []node) ([]float64, error) {
	alpha, beta := spec.Alpha, spec.Beta
	nRecv := float64(len(nodes) - 1)

	rhos := make([]float64, len(nodes))
	extOcc := make([]float64, len(nodes))    // P(node's AT in progress)
	sendDirty := make([]float64, len(nodes)) // P(sending position ∧ dirty)

	var plains []int
	for _, n := range nodes {
		if n.upgraded {
			extOcc[n.idx] = n.lambda * n.pext / (alpha + n.lambda*n.pext)
			rhos[n.idx] = 1 - extOcc[n.idx]
			sendDirty[n.idx] = 1 - extOcc[n.idx] // a suspect is always dirty
		} else {
			plains = append(plains, n.idx)
		}
	}

	pi := make([][]float64, len(nodes))
	for _, j := range plains {
		pi[j] = []float64{1, 0, 0, 0, 0}
	}

	const (
		maxIter = 1000
		tol     = 1e-12
	)
	for iter := 0; iter < maxIter; iter++ {
		maxDelta := 0.0
		for _, j := range plains {
			nj := nodes[j]
			// Aggregate influences from every other node.
			var trig, clear float64
			for _, o := range nodes {
				if o.idx == j {
					continue
				}
				trig += o.lambda * (1 - o.pext) / nRecv * sendDirty[o.idx]
				clear += alpha * extOcc[o.idx]
			}
			next, err := solveMarginal(nj.lambda*nj.pext, alpha, beta, trig, clear)
			if err != nil {
				return nil, err
			}
			for s := 0; s < mfStates; s++ {
				if d := math.Abs(next[s] - pi[j][s]); d > maxDelta {
					maxDelta = d
				}
			}
			pi[j] = next
			extOcc[j] = next[mfExtDirty] + next[mfExtClean]
			sendDirty[j] = next[mfReadyDirty]
		}
		if maxDelta < tol {
			for _, j := range plains {
				rhos[j] = 1 - (pi[j][mfCkpt] + pi[j][mfExtDirty])
			}
			return rhos, nil
		}
	}
	return nil, fmt.Errorf("template: Gp mean-field fixed point did not converge in %d iterations", maxIter)
}

// solveMarginal computes the steady state of one plain node's marginal
// chain given its own dirty-external rate lamExt = λ·p_ext, the safeguard
// rates, and the aggregate trigger/clear influences.
func solveMarginal(lamExt, alpha, beta, trig, clear float64) ([]float64, error) {
	// Generator (row = from, column = to).
	var q [mfStates][mfStates]float64
	set := func(from, to int, rate float64) {
		q[from][to] += rate
		q[from][from] -= rate
	}
	set(mfReadyClean, mfCkpt, trig)
	set(mfCkpt, mfReadyDirty, beta)
	set(mfReadyDirty, mfExtDirty, lamExt)
	set(mfReadyDirty, mfReadyClean, clear)
	set(mfExtDirty, mfReadyClean, alpha) // own AT completes, clearing own db
	set(mfExtDirty, mfExtClean, clear)
	set(mfExtClean, mfReadyClean, alpha)

	// Solve πQ = 0, Σπ = 1 by Gaussian elimination on Qᵀ with the last
	// equation replaced by normalisation.
	var a [mfStates][mfStates + 1]float64
	for col := 0; col < mfStates; col++ {
		for row := 0; row < mfStates; row++ {
			a[col][row] = q[row][col]
		}
	}
	for row := 0; row < mfStates; row++ {
		a[mfStates-1][row] = 1
	}
	a[mfStates-1][mfStates] = 1

	for c := 0; c < mfStates; c++ {
		piv := c
		for r := c + 1; r < mfStates; r++ {
			if math.Abs(a[r][c]) > math.Abs(a[piv][c]) {
				piv = r
			}
		}
		if math.Abs(a[piv][c]) < 1e-300 {
			return nil, fmt.Errorf("template: singular Gp marginal system")
		}
		a[c], a[piv] = a[piv], a[c]
		for r := 0; r < mfStates; r++ {
			if r == c || a[r][c] == 0 {
				continue
			}
			f := a[r][c] / a[c][c]
			for k := c; k <= mfStates; k++ {
				a[r][k] -= f * a[c][k]
			}
		}
	}
	out := make([]float64, mfStates)
	for s := 0; s < mfStates; s++ {
		out[s] = a[s][mfStates] / a[s][s]
		if out[s] < 0 && out[s] > -1e-12 {
			out[s] = 0
		}
		if out[s] < 0 || math.IsNaN(out[s]) {
			return nil, fmt.Errorf("template: Gp marginal probability %g out of range", out[s])
		}
	}
	return out, nil
}
