package template_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"guardedop/internal/core"
	"guardedop/internal/obs"
	"guardedop/internal/robust"
	"guardedop/internal/template"
)

func scenarioAnalyzer(t *testing.T, spec *template.Spec, o core.Options) (*template.Instance, *core.Analyzer) {
	t.Helper()
	inst, err := template.Build(context.Background(), spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ana, err := core.NewScenarioAnalyzer(core.ScenarioModels{
		Params: inst.Params,
		Gd:     inst.Gd,
		NdNew:  inst.NdNew,
		NdOld:  inst.NdOld,
		Rhos:   inst.Rhos,
	}, o)
	if err != nil {
		t.Fatalf("NewScenarioAnalyzer: %v", err)
	}
	return inst, ana
}

// TestPaperSpecReproducesYCurve is the tentpole acceptance gate: the
// templated canonical scenario reproduces the handwritten pipeline's
// Y(φ) over the paper's sweep grid to 1e-9 relative.
func TestPaperSpecReproducesYCurve(t *testing.T) {
	spec := template.PaperSpec()
	_, scen := scenarioAnalyzer(t, spec, core.Options{})
	hand, err := core.NewAnalyzer(spec.Params())
	if err != nil {
		t.Fatalf("NewAnalyzer: %v", err)
	}
	phis := core.SweepGrid(spec.Theta, 50)
	if len(phis) < 50 {
		t.Fatalf("SweepGrid returned %d points, want at least 50", len(phis))
	}
	for _, phi := range phis {
		want, err := hand.Evaluate(phi)
		if err != nil {
			t.Fatalf("handwritten Evaluate(%g): %v", phi, err)
		}
		got, err := scen.Evaluate(phi)
		if err != nil {
			t.Fatalf("scenario Evaluate(%g): %v", phi, err)
		}
		if rel := math.Abs(got.Y-want.Y) / math.Abs(want.Y); rel > 1e-9 {
			t.Fatalf("Y(%g) = %.15g, handwritten %.15g (rel %.3g > 1e-9)",
				phi, got.Y, want.Y, rel)
		}
	}
}

// TestPolicyCurvesOrdered solves a small sweep under every guard policy:
// all must produce finite curves, and the degenerate reductions must
// agree with the global policy exactly.
func TestPolicyCurvesOrdered(t *testing.T) {
	var yGlobal float64
	for _, policy := range template.Policies() {
		spec := template.PaperSpec()
		spec.Name = "paper-" + string(policy)
		spec.Guard = template.GuardSpec{Policy: policy}
		if policy == template.PolicyAbortRetry {
			spec.Guard.Retries = 2
		}
		_, ana := scenarioAnalyzer(t, spec, core.Options{})
		res, err := ana.Evaluate(spec.Theta / 20)
		if err != nil {
			t.Fatalf("%s: Evaluate: %v", policy, err)
		}
		if !(res.Y > 0 && res.Y < 2*spec.Theta) {
			t.Fatalf("%s: Y = %g out of (0, 2θ)", policy, res.Y)
		}
		if policy == template.PolicyGlobal {
			yGlobal = res.Y
		}
	}
	// Per-node with a single upgrade is the global policy.
	spec := template.PaperSpec()
	spec.Guard = template.GuardSpec{Policy: template.PolicyPerNode}
	_, ana := scenarioAnalyzer(t, spec, core.Options{})
	res, err := ana.Evaluate(spec.Theta / 20)
	if err != nil {
		t.Fatalf("per-node Evaluate: %v", err)
	}
	if rel := math.Abs(res.Y-yGlobal) / yGlobal; rel > 1e-9 {
		t.Fatalf("per-node K=1 Y = %.15g differs from global %.15g (rel %g)",
			res.Y, yGlobal, rel)
	}
}

// threeNodeSpec is the smallest beyond-paper scenario: three nodes, one
// upgraded, paper rates.
func threeNodeSpec() *template.Spec {
	s := template.PaperSpec()
	s.Name = "three-node"
	s.Nodes = append(s.Nodes, template.NodeSpec{Name: "P3"})
	return s
}

// eightNodeSpec exercises the scale path: eight nodes, two simultaneous
// upgrades, heterogeneous rates. The rates are scaled down relative to
// the paper's so the uniformization budget covers the ~10^3-state chain.
func eightNodeSpec() *template.Spec {
	s := &template.Spec{
		Name:     "eight-node",
		Theta:    100,
		Coverage: 0.95,
		Alpha:    360,
		Beta:     720,
		Defaults: template.NodeDefaults{Lambda: 6, PExt: 0.3, MuOld: 0.0002},
		Guard:    template.GuardSpec{Policy: template.PolicyPerNode},
	}
	for i := 0; i < 8; i++ {
		ns := template.NodeSpec{Name: nodeName(i)}
		switch i {
		case 0:
			ns.Upgrade = &template.UpgradeSpec{MuNew: 0.002}
		case 1:
			ns.Upgrade = &template.UpgradeSpec{MuNew: 0.004}
			ns.Lambda = 9
		case 2:
			ns.PExt = 0.5
		}
		s.Nodes = append(s.Nodes, ns)
	}
	return s
}

func nodeName(i int) string { return string(rune('A'+i)) + "node" }

// TestScaledScenarios builds and solves beyond-paper scenarios through
// the full pipeline, checking counters and basic sanity of the results.
func TestScaledScenarios(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec *template.Spec
	}{
		{"three-node", threeNodeSpec()},
		{"eight-node", eightNodeSpec()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := obs.NewTracer()
			ctx := obs.WithTracer(context.Background(), tr)
			inst, err := template.Build(ctx, tc.spec)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if got := tr.Counter(obs.CtrTemplateInstances); got != 1 {
				t.Errorf("template.instances = %d, want 1", got)
			}
			if got := tr.Counter(obs.CtrTemplateStates); got != int64(inst.TotalStates) || got == 0 {
				t.Errorf("template.states = %d, want %d (non-zero)", got, inst.TotalStates)
			}
			if len(inst.Rhos) != len(tc.spec.Nodes) {
				t.Fatalf("got %d rhos for %d nodes", len(inst.Rhos), len(tc.spec.Nodes))
			}
			wantMF := tc.name == "eight-node"
			if inst.GpMeanField != wantMF {
				t.Errorf("GpMeanField = %v, want %v", inst.GpMeanField, wantMF)
			}
			for i, rho := range inst.Rhos {
				if !(rho > 0 && rho <= 1) {
					t.Fatalf("rho[%d] = %g out of (0, 1]", i, rho)
				}
			}
			ana, err := core.NewScenarioAnalyzer(core.ScenarioModels{
				Params: inst.Params,
				Gd:     inst.Gd,
				NdNew:  inst.NdNew,
				NdOld:  inst.NdOld,
				Rhos:   inst.Rhos,
			}, core.Options{})
			if err != nil {
				t.Fatalf("NewScenarioAnalyzer: %v", err)
			}
			for _, frac := range []float64{0.02, 0.1, 0.5} {
				res, err := ana.Evaluate(frac * tc.spec.Theta)
				if err != nil {
					t.Fatalf("Evaluate(%g·θ): %v", frac, err)
				}
				limit := float64(len(tc.spec.Nodes)) * tc.spec.Theta
				if !(res.Y > 0 && res.Y < limit) {
					t.Fatalf("Y(%g·θ) = %g out of (0, %g)", frac, res.Y, limit)
				}
			}
		})
	}
}

// TestSpecValidation is the table over malformed specs: every rejection
// must be a typed robust.ErrInvariant.
func TestSpecValidation(t *testing.T) {
	mutate := func(f func(*template.Spec)) *template.Spec {
		s := template.PaperSpec()
		f(s)
		return s
	}
	cases := []struct {
		name string
		spec *template.Spec
	}{
		{"empty name", mutate(func(s *template.Spec) { s.Name = "" })},
		{"zero theta", mutate(func(s *template.Spec) { s.Theta = 0 })},
		{"negative theta", mutate(func(s *template.Spec) { s.Theta = -1 })},
		{"coverage above one", mutate(func(s *template.Spec) { s.Coverage = 1.5 })},
		{"zero alpha", mutate(func(s *template.Spec) { s.Alpha = 0 })},
		{"unknown policy", mutate(func(s *template.Spec) { s.Guard.Policy = "optimistic" })},
		{"retries without abort-retry", mutate(func(s *template.Spec) { s.Guard.Retries = 1 })},
		{"negative retries", mutate(func(s *template.Spec) {
			s.Guard = template.GuardSpec{Policy: template.PolicyAbortRetry, Retries: -1}
		})},
		{"negative limits", mutate(func(s *template.Spec) { s.Limits.MaxStates = -1 })},
		{"single node", mutate(func(s *template.Spec) { s.Nodes = s.Nodes[:1] })},
		{"bad node name", mutate(func(s *template.Spec) { s.Nodes[1].Name = "2nd node" })},
		{"duplicate node name", mutate(func(s *template.Spec) { s.Nodes[1].Name = "P1" })},
		{"p_ext out of range", mutate(func(s *template.Spec) { s.Nodes[1].PExt = 1 })},
		{"no upgraded node", mutate(func(s *template.Spec) { s.Nodes[0].Upgrade = nil })},
		{"all nodes upgraded", mutate(func(s *template.Spec) {
			s.Nodes[1].Upgrade = &template.UpgradeSpec{MuNew: 0.1}
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid spec")
			}
			if !errors.Is(err, robust.ErrInvariant) {
				t.Fatalf("error %v is not robust.ErrInvariant", err)
			}
		})
	}
	if err := template.PaperSpec().Validate(); err != nil {
		t.Fatalf("PaperSpec invalid: %v", err)
	}
}

// TestParseRoundTrip: a spec survives JSON encode/parse with its hash
// stable, and Parse rejects malformed JSON with a typed error.
func TestParseRoundTrip(t *testing.T) {
	spec := template.PaperSpec()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := template.Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got.Hash() != spec.Hash() {
		t.Fatalf("hash changed across round trip: %s vs %s", got.Hash(), spec.Hash())
	}
	if _, err := template.Parse([]byte("{not json")); !errors.Is(err, robust.ErrInvariant) {
		t.Fatalf("malformed JSON error %v is not robust.ErrInvariant", err)
	}
}
