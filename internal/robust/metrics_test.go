package robust

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestRunBatchCollectsMetrics(t *testing.T) {
	transient := errors.New("transient")
	pr, err := RunBatch(context.Background(), []int{0, 1, 2, 3}, func(_ context.Context, v int) (int, error) {
		switch v {
		case 1:
			return 0, fmt.Errorf("v=1: %w", ErrIllConditioned)
		case 2:
			panic("boom")
		case 3:
			return 0, fmt.Errorf("v=3: %w", transient)
		}
		return v, nil
	}, BatchOptions{Retries: 2, Retryable: func(err error) bool { return errors.Is(err, transient) }, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := pr.Report.Metrics
	if m == nil {
		t.Fatal("RunBatch left Report.Metrics nil")
	}
	// Item 3 is retried twice after its first attempt: 1+1+1+3 attempts.
	if m.Attempts != 6 || m.Retries != 2 || m.Panics != 1 {
		t.Errorf("attempts/retries/panics = %d/%d/%d, want 6/2/1", m.Attempts, m.Retries, m.Panics)
	}
	if m.Errors["ill-conditioned"] != 1 || m.Errors["panic"] != 1 || m.Errors["other"] != 1 {
		t.Errorf("error classes = %v", m.Errors)
	}
	if len(m.ItemNanos) != 4 {
		t.Fatalf("ItemNanos sized %d, want 4", len(m.ItemNanos))
	}
	for i, n := range m.ItemNanos {
		if n <= 0 {
			t.Errorf("item %d wall clock = %d, want > 0", i, n)
		}
	}
	if m.WallNanos <= 0 || m.Workers != 1 {
		t.Errorf("wall=%d workers=%d", m.WallNanos, m.Workers)
	}
}

func TestErrorClass(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{fmt.Errorf("x: %w", ErrNotConverged), "not-converged"},
		{fmt.Errorf("x: %w", ErrIllConditioned), "ill-conditioned"},
		{fmt.Errorf("x: %w", ErrNonFinite), "non-finite"},
		{fmt.Errorf("x: %w", ErrInvariant), "invariant"},
		{fmt.Errorf("x: %w", ErrPanic), "panic"},
		{fmt.Errorf("x: %w", ErrTooManyFailures), "too-many-failures"},
		// A cancellation that interrupted a transient failure counts as
		// canceled, not as the underlying class.
		{fmt.Errorf("%w: deadline (interrupted retry of: %w)", ErrCanceled, ErrNotConverged), "canceled"},
		{errors.New("unclassified"), "other"},
	}
	for _, c := range cases {
		if got := ErrorClass(c.err); string(got) != c.want {
			t.Errorf("ErrorClass(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestMetricsAddChecksAndMerge(t *testing.T) {
	m := NewMetrics(2, 1)
	m.Attempts, m.Retries = 3, 1
	m.Errors["other"] = 1
	m.AddChecks("RMGd", map[string]CheckCounters{
		"reward-bounds": {Findings: 7, Elided: 2},
	})
	m.AddChecks("RMGd", map[string]CheckCounters{
		"reward-bounds": {Findings: 1},
		"reachability":  {Findings: 1},
	})
	if c := m.Checks["RMGd/reward-bounds"]; c.Findings != 8 || c.Elided != 2 {
		t.Errorf("accumulated counters = %+v", c)
	}

	other := NewMetrics(1, 1)
	other.Attempts, other.Panics = 2, 1
	other.Errors["panic"] = 1
	other.AddChecks("RMGp", map[string]CheckCounters{"ergodic": {Findings: 1}})
	m.Merge(other)
	if m.Attempts != 5 || m.Panics != 1 || m.Errors["panic"] != 1 {
		t.Errorf("merged counters: attempts=%d panics=%d errors=%v", m.Attempts, m.Panics, m.Errors)
	}
	if len(m.ItemNanos) != 3 {
		t.Errorf("merged ItemNanos sized %d, want 3", len(m.ItemNanos))
	}
	if _, ok := m.Checks["RMGp/ergodic"]; !ok {
		t.Errorf("merged checks = %v", m.Checks)
	}
}

func TestMetricsSolves(t *testing.T) {
	m := NewMetrics(1, 1)
	m.AddSolves(3)
	m.AddSolves(0)  // no-op
	m.AddSolves(-5) // guarded no-op
	if m.Solves != 3 {
		t.Errorf("Solves = %d, want 3", m.Solves)
	}
	var nilM *Metrics
	nilM.AddSolves(1) // must not panic

	other := NewMetrics(1, 1)
	other.AddSolves(4)
	m.Merge(other)
	if m.Solves != 7 {
		t.Errorf("merged Solves = %d, want 7", m.Solves)
	}

	var sb strings.Builder
	m.WriteText(&sb)
	if !strings.Contains(sb.String(), "solver passes: 7") {
		t.Errorf("text dump missing solver passes:\n%s", sb.String())
	}
	// Zero solves stays out of the dump — most batches never solve.
	sb.Reset()
	NewMetrics(1, 1).WriteText(&sb)
	if strings.Contains(sb.String(), "solver passes") {
		t.Errorf("zero-solve dump mentions solver passes:\n%s", sb.String())
	}
}

func TestMetricsWriteTextAndJSON(t *testing.T) {
	m := NewMetrics(3, 2)
	m.Attempts, m.Retries, m.Panics = 5, 2, 1
	m.Errors["canceled"] = 1
	m.ItemNanos = []int64{100, 0, 300}
	m.WallNanos = 450
	m.AddChecks("RMGd", map[string]CheckCounters{"reward-bounds": {Findings: 2, Elided: 1}})

	var sb strings.Builder
	m.WriteText(&sb)
	text := sb.String()
	for _, want := range []string{
		"3 items on 2 workers",
		"attempts 5, retries 2, panics recovered 1",
		"canceled=1",
		"max 300ns (item 2)",
		"RMGd/reward-bounds: findings=2 elided=1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text dump missing %q:\n%s", want, text)
		}
	}

	sb.Reset()
	if err := m.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back Metrics
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("JSON dump not parseable: %v\n%s", err, sb.String())
	}
	if back.Attempts != 5 || back.Errors["canceled"] != 1 || back.Checks["RMGd/reward-bounds"].Findings != 2 {
		t.Errorf("JSON round-trip lost counters: %+v", back)
	}

	var nilM *Metrics
	sb.Reset()
	nilM.WriteText(&sb) // must not panic
	if !strings.Contains(sb.String(), "none") {
		t.Errorf("nil metrics text = %q", sb.String())
	}
}
