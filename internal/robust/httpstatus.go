package robust

import (
	"context"
	"errors"
	"net/http"
)

// httpStatusByClass is the deliberate mapping from every error class of
// the taxonomy (the labels ErrorClass returns) to an HTTP status code.
// The serving layer (cmd/gsuserve, internal/serve) uses it to turn solver
// failures into stable, documented statuses instead of a blanket 500:
//
//   - "canceled" → 504: the request's deadline expired before the solve
//     finished; the client may retry with a longer budget.
//   - "invariant", "non-finite", "ill-conditioned" → 422: the parameter
//     set drove the translation into a degenerate region — the request is
//     well-formed but unprocessable, and retrying it is pointless.
//   - "too-many-failures" → 422: most of a propagation's posterior draws
//     landed in a degenerate region, same verdict as above.
//   - "not-converged" → 500: the solver exhausted its iteration budget on
//     a model it should handle — a genuine server-side numeric failure.
//   - "panic" → 500: a recovered programmer error.
//   - "other" → 500: a failure outside the taxonomy.
//
// Every known class appears here explicitly, twice over: the gsulint
// `exhaustive` pass statically requires a Class-keyed map literal to
// name every Class constant, and the table test in httpstatus_test.go
// (driven by AllErrorClasses) fails if an entry is missing at runtime.
// No known failure ever reaches clients through an accidental
// default-500 fallthrough.
var httpStatusByClass = map[Class]int{
	ClassCanceled:        http.StatusGatewayTimeout,
	ClassInvariant:       http.StatusUnprocessableEntity,
	ClassNonFinite:       http.StatusUnprocessableEntity,
	ClassIllConditioned:  http.StatusUnprocessableEntity,
	ClassTooManyFailures: http.StatusUnprocessableEntity,
	ClassNotConverged:    http.StatusInternalServerError,
	ClassPanic:           http.StatusInternalServerError,
	ClassOther:           http.StatusInternalServerError,
}

// HTTPStatus maps an error from the solve stack onto its HTTP status
// code via the taxonomy (see ErrorClass and httpStatusByClass). Wrapped
// causes are honoured through errors.Is; a bare context cancellation or
// deadline that never passed through the taxonomy still maps to 504. A
// nil error is 200.
func HTTPStatus(err error) int {
	if err == nil {
		return http.StatusOK
	}
	class := ErrorClass(err)
	if class == ClassOther && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		class = ClassCanceled
	}
	if code, ok := httpStatusByClass[class]; ok {
		return code
	}
	return http.StatusInternalServerError
}
