package robust

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestDiagnoseWrapsAndClassifies(t *testing.T) {
	base := fmt.Errorf("solver: %w", ErrNonFinite)
	err := Diagnose("RMGd", struct{ Theta float64 }{1e4}, 2500, base)
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("errors.Is(ErrNonFinite) = false for %v", err)
	}
	var diag *DiagnosticError
	if !errors.As(err, &diag) {
		t.Fatalf("errors.As(*DiagnosticError) = false for %v", err)
	}
	if diag.Model != "RMGd" || diag.Phi != 2500 {
		t.Errorf("diagnostic fields = %+v", diag)
	}
	for _, want := range []string{"RMGd", "phi=2500", "Theta:10000", "non-finite"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error message %q missing %q", err.Error(), want)
		}
	}
}

func TestDiagnoseNaNPhiOmitted(t *testing.T) {
	err := Diagnose("core.Analyzer", nil, math.NaN(), ErrInvariant)
	if strings.Contains(err.Error(), "phi=") {
		t.Errorf("NaN phi rendered: %q", err.Error())
	}
}

func TestDiagnoseNilError(t *testing.T) {
	if err := Diagnose("m", nil, 0, nil); err != nil {
		t.Fatalf("Diagnose(nil) = %v, want nil", err)
	}
}

func TestCheckFinite(t *testing.T) {
	if err := CheckFinite("y", 1.5); err != nil {
		t.Fatalf("finite value rejected: %v", err)
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		err := CheckFinite("y", v)
		if !errors.Is(err, ErrNonFinite) {
			t.Errorf("CheckFinite(%g) = %v, want ErrNonFinite", v, err)
		}
	}
}

func TestCheckFiniteSlice(t *testing.T) {
	if err := CheckFiniteSlice("pi", []float64{0, 0.5, 0.5}); err != nil {
		t.Fatalf("finite slice rejected: %v", err)
	}
	err := CheckFiniteSlice("pi", []float64{0, math.NaN(), 1})
	if !errors.Is(err, ErrNonFinite) || !strings.Contains(err.Error(), "pi[1]") {
		t.Errorf("CheckFiniteSlice = %v, want ErrNonFinite at index 1", err)
	}
}

func TestCheckProbability(t *testing.T) {
	if err := CheckProbability("p", 1+1e-12, 1e-9); err != nil {
		t.Fatalf("within-tolerance probability rejected: %v", err)
	}
	if err := CheckProbability("p", 1.01, 1e-9); !errors.Is(err, ErrInvariant) {
		t.Errorf("CheckProbability(1.01) = %v, want ErrInvariant", err)
	}
	if err := CheckProbability("p", -0.5, 1e-9); !errors.Is(err, ErrInvariant) {
		t.Errorf("CheckProbability(-0.5) = %v, want ErrInvariant", err)
	}
	if err := CheckProbability("p", math.NaN(), 1e-9); !errors.Is(err, ErrNonFinite) {
		t.Errorf("CheckProbability(NaN) = %v, want ErrNonFinite", err)
	}
}

func TestCheckBound(t *testing.T) {
	if err := CheckBound("E[W]", 9.999, 10, 1e-6); err != nil {
		t.Fatalf("value under bound rejected: %v", err)
	}
	if err := CheckBound("E[W]", 11, 10, 1e-6); !errors.Is(err, ErrInvariant) {
		t.Errorf("CheckBound over = %v, want ErrInvariant", err)
	}
}
