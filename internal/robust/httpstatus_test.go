package robust

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"testing"
)

// taxonomy lists every sentinel error of the robustness taxonomy. Keep it
// in sync with errors.go — TestHTTPStatusCoversTaxonomy walks it to prove
// the status mapping is total.
var taxonomy = []error{
	ErrNonFinite,
	ErrNotConverged,
	ErrIllConditioned,
	ErrCanceled,
	ErrInvariant,
	ErrPanic,
	ErrTooManyFailures,
}

// TestHTTPStatusCoversTaxonomy asserts that every typed error in the
// taxonomy maps to a deliberate status: its ErrorClass label must have an
// explicit entry in httpStatusByClass, so no known class can ever fall
// through to the generic 500 by accident.
func TestHTTPStatusCoversTaxonomy(t *testing.T) {
	for _, sentinel := range taxonomy {
		class := ErrorClass(sentinel)
		if class == "" || class == "other" {
			t.Errorf("sentinel %v has no taxonomy class of its own (got %q)", sentinel, class)
			continue
		}
		if _, ok := httpStatusByClass[class]; !ok {
			t.Errorf("class %q (sentinel %v) has no deliberate HTTP status entry", class, sentinel)
		}
	}
	// The fallthrough class itself must also be a deliberate decision.
	if _, ok := httpStatusByClass["other"]; !ok {
		t.Error(`class "other" has no deliberate HTTP status entry`)
	}
}

// TestHTTPStatusMapping pins the chosen status for each class, wrapped
// the way the solve stack actually delivers errors.
func TestHTTPStatusMapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, http.StatusOK},
		{"canceled", fmt.Errorf("sweep: %w", ErrCanceled), http.StatusGatewayTimeout},
		{"context deadline", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"context canceled", fmt.Errorf("rq: %w", context.Canceled), http.StatusGatewayTimeout},
		{"invariant", Diagnose("core.Analyzer", nil, 100, ErrInvariant), http.StatusUnprocessableEntity},
		{"non-finite", fmt.Errorf("solve: %w", ErrNonFinite), http.StatusUnprocessableEntity},
		{"ill-conditioned", fmt.Errorf("lu: %w", ErrIllConditioned), http.StatusUnprocessableEntity},
		{"too-many-failures", fmt.Errorf("propagate: %w", ErrTooManyFailures), http.StatusUnprocessableEntity},
		{"not-converged", fmt.Errorf("uniformization: %w", ErrNotConverged), http.StatusInternalServerError},
		{"panic", fmt.Errorf("item: %w", ErrPanic), http.StatusInternalServerError},
		{"unclassified", errors.New("disk on fire"), http.StatusInternalServerError},
		{"diagnostic wrap", Diagnose("RMGd", nil, math.NaN(), fmt.Errorf("x: %w", ErrCanceled)), http.StatusGatewayTimeout},
	}
	for _, c := range cases {
		if got := HTTPStatus(c.err); got != c.want {
			t.Errorf("%s: HTTPStatus(%v) = %d, want %d", c.name, c.err, got, c.want)
		}
	}
}

// TestHTTPStatusClassPrecedence mirrors ErrorClass precedence: an error
// wrapping both a cancellation and a transient cause (the mid-retry
// cancellation shape) must map as a cancellation, not as the cause.
func TestHTTPStatusClassPrecedence(t *testing.T) {
	err := fmt.Errorf("%w: deadline (interrupted retry of: %w)", ErrCanceled, ErrNotConverged)
	if got := HTTPStatus(err); got != http.StatusGatewayTimeout {
		t.Fatalf("cancellation wrapping a transient cause mapped to %d, want 504", got)
	}
}
