package robust

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"testing"
)

// taxonomy lists every sentinel error of the robustness taxonomy. Keep it
// in sync with errors.go — TestHTTPStatusCoversTaxonomy walks it to prove
// the status mapping is total.
var taxonomy = []error{
	ErrNonFinite,
	ErrNotConverged,
	ErrIllConditioned,
	ErrCanceled,
	ErrInvariant,
	ErrPanic,
	ErrTooManyFailures,
}

// TestHTTPStatusCoversTaxonomy asserts that the status mapping is total
// over the canonical enumeration: every class in AllErrorClasses has an
// explicit entry in httpStatusByClass, and every sentinel's class is in
// the enumeration — so no known failure can ever fall through to the
// generic 500 by accident. The gsulint `exhaustive` pass enforces the
// same totality statically from the same constant set; this test is the
// runtime half of that single source of truth.
func TestHTTPStatusCoversTaxonomy(t *testing.T) {
	inEnum := make(map[Class]bool)
	for _, class := range AllErrorClasses() {
		inEnum[class] = true
		if _, ok := httpStatusByClass[class]; !ok {
			t.Errorf("class %q has no deliberate HTTP status entry", class)
		}
	}
	if got, want := len(httpStatusByClass), len(AllErrorClasses()); got != want {
		t.Errorf("httpStatusByClass has %d entries, AllErrorClasses has %d: the map carries a class outside the taxonomy", got, want)
	}
	for _, sentinel := range taxonomy {
		class := ErrorClass(sentinel)
		if class == "" || class == ClassOther {
			t.Errorf("sentinel %v has no taxonomy class of its own (got %q)", sentinel, class)
			continue
		}
		if !inEnum[class] {
			t.Errorf("sentinel %v maps to class %q, which AllErrorClasses does not enumerate", sentinel, class)
		}
	}
}

// TestHTTPStatusMapping pins the chosen status for each class, wrapped
// the way the solve stack actually delivers errors.
func TestHTTPStatusMapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, http.StatusOK},
		{"canceled", fmt.Errorf("sweep: %w", ErrCanceled), http.StatusGatewayTimeout},
		{"context deadline", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"context canceled", fmt.Errorf("rq: %w", context.Canceled), http.StatusGatewayTimeout},
		{"invariant", Diagnose("core.Analyzer", nil, 100, ErrInvariant), http.StatusUnprocessableEntity},
		{"non-finite", fmt.Errorf("solve: %w", ErrNonFinite), http.StatusUnprocessableEntity},
		{"ill-conditioned", fmt.Errorf("lu: %w", ErrIllConditioned), http.StatusUnprocessableEntity},
		{"too-many-failures", fmt.Errorf("propagate: %w", ErrTooManyFailures), http.StatusUnprocessableEntity},
		{"not-converged", fmt.Errorf("uniformization: %w", ErrNotConverged), http.StatusInternalServerError},
		{"panic", fmt.Errorf("item: %w", ErrPanic), http.StatusInternalServerError},
		{"unclassified", errors.New("disk on fire"), http.StatusInternalServerError},
		{"diagnostic wrap", Diagnose("RMGd", nil, math.NaN(), fmt.Errorf("x: %w", ErrCanceled)), http.StatusGatewayTimeout},
	}
	for _, c := range cases {
		if got := HTTPStatus(c.err); got != c.want {
			t.Errorf("%s: HTTPStatus(%v) = %d, want %d", c.name, c.err, got, c.want)
		}
	}
}

// TestHTTPStatusClassPrecedence mirrors ErrorClass precedence: an error
// wrapping both a cancellation and a transient cause (the mid-retry
// cancellation shape) must map as a cancellation, not as the cause.
func TestHTTPStatusClassPrecedence(t *testing.T) {
	err := fmt.Errorf("%w: deadline (interrupted retry of: %w)", ErrCanceled, ErrNotConverged)
	if got := HTTPStatus(err); got != http.StatusGatewayTimeout {
		t.Fatalf("cancellation wrapping a transient cause mapped to %d, want 504", got)
	}
}
