package robust

// Class identifies one class of the robustness error taxonomy — the
// stable label under which a failure is counted, reported, and mapped to
// an HTTP status. It is a named type (rather than a bare string) so the
// gsulint `exhaustive` pass can recognise switches and map literals over
// the taxonomy statically: the pass enumerates the Class constants below
// from export data and requires every one of them to appear.
//
// The empty Class is reserved for "no error" (ErrorClass(nil)); it is
// deliberately not part of the enumerated taxonomy.
type Class string

// The taxonomy. Adding a constant here is the single step that extends
// the taxonomy everywhere: ErrorClass must learn to produce it (the
// runtime table test in httpstatus_test.go checks that), and every
// exhaustive switch or map over Class — above all httpStatusByClass —
// fails the static `exhaustive` lint gate until it handles the newcomer.
const (
	// ClassPanic counts recovered programmer errors.
	ClassPanic Class = "panic"
	// ClassCanceled counts context cancellations and expired deadlines.
	ClassCanceled Class = "canceled"
	// ClassTooManyFailures counts propagations whose posterior draws
	// mostly landed in a degenerate region.
	ClassTooManyFailures Class = "too-many-failures"
	// ClassNotConverged counts solver iteration-budget exhaustion.
	ClassNotConverged Class = "not-converged"
	// ClassIllConditioned counts numerically hopeless systems.
	ClassIllConditioned Class = "ill-conditioned"
	// ClassNonFinite counts NaN/Inf contamination.
	ClassNonFinite Class = "non-finite"
	// ClassInvariant counts violated model invariants.
	ClassInvariant Class = "invariant"
	// ClassOther counts failures outside the taxonomy.
	ClassOther Class = "other"
)

// AllErrorClasses returns every class of the taxonomy, in precedence
// order (the order ErrorClass tests them, with ClassOther last). It is
// the canonical runtime enumeration: table tests range over it so that a
// class added above is exercised without touching the tests.
func AllErrorClasses() []Class {
	return []Class{
		ClassPanic,
		ClassCanceled,
		ClassTooManyFailures,
		ClassNotConverged,
		ClassIllConditioned,
		ClassNonFinite,
		ClassInvariant,
		ClassOther,
	}
}
