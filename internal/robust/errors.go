package robust

import (
	"errors"
	"fmt"
	"math"
)

// Sentinel errors of the taxonomy. Numeric packages wrap these (with
// fmt.Errorf("...: %w", ...)) so callers can classify failures with
// errors.Is regardless of which layer produced them.
var (
	// ErrNonFinite marks a NaN or ±Inf where a finite value was required —
	// typically a solver output or a derived measure.
	ErrNonFinite = errors.New("non-finite value")

	// ErrNotConverged marks an iterative method that exhausted its
	// iteration budget without meeting its tolerance.
	ErrNotConverged = errors.New("iteration did not converge")

	// ErrIllConditioned marks a linear system whose solution cannot be
	// trusted: the refined residual still exceeds tolerance, or a
	// condition estimate rules the answer meaningless.
	ErrIllConditioned = errors.New("system is ill-conditioned beyond tolerance")

	// ErrCanceled marks work abandoned because its context was canceled
	// or timed out.
	ErrCanceled = errors.New("evaluation canceled")

	// ErrInvariant marks a model-level invariant violation: a probability
	// outside [0,1], an expected worth exceeding the ideal bound, and the
	// like. It usually indicates a degenerate parameter set rather than a
	// solver defect.
	ErrInvariant = errors.New("model invariant violated")

	// ErrPanic marks a recovered panic inside a batch item.
	ErrPanic = errors.New("evaluation panicked")

	// ErrTooManyFailures marks a batch whose surviving fraction fell below
	// the caller's minimum.
	ErrTooManyFailures = errors.New("too many batch items failed")
)

// DiagnosticError attaches model provenance to a failure: which model (or
// pipeline stage) was being evaluated, the parameter set, and the G-OP
// duration φ that produced it. It unwraps to the underlying cause so
// errors.Is/As keep working through it.
type DiagnosticError struct {
	// Model names the model or stage, e.g. "RMGd" or "core.Analyzer".
	Model string
	// Params is a compact rendering of the parameter set under evaluation.
	Params string
	// Phi is the guarded-operation duration, or NaN when not applicable.
	Phi float64
	// Err is the underlying cause.
	Err error
}

// Error renders the diagnostic in one line.
func (e *DiagnosticError) Error() string {
	msg := e.Model
	if e.Params != "" {
		msg += " " + e.Params
	}
	if !math.IsNaN(e.Phi) {
		msg += fmt.Sprintf(" phi=%g", e.Phi)
	}
	return msg + ": " + e.Err.Error()
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *DiagnosticError) Unwrap() error { return e.Err }

// Diagnose wraps err in a DiagnosticError carrying the model name, a %+v
// rendering of params, and φ (pass math.NaN() when no duration applies).
// It returns nil when err is nil.
func Diagnose(model string, params any, phi float64, err error) error {
	if err == nil {
		return nil
	}
	rendered := ""
	if params != nil {
		rendered = fmt.Sprintf("%+v", params)
	}
	return &DiagnosticError{Model: model, Params: rendered, Phi: phi, Err: err}
}
