package robust

import (
	"fmt"
	"math"
)

// CheckFinite returns an error wrapping ErrNonFinite unless v is a finite
// float. name labels the quantity in the message.
func CheckFinite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%s = %g: %w", name, v, ErrNonFinite)
	}
	return nil
}

// CheckFiniteSlice returns an error wrapping ErrNonFinite if any entry of
// xs is NaN or ±Inf, identifying the first offending index.
func CheckFiniteSlice(name string, xs []float64) error {
	for i, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%s[%d] = %g: %w", name, i, v, ErrNonFinite)
		}
	}
	return nil
}

// CheckProbability returns an error wrapping ErrInvariant unless v lies in
// [0−tol, 1+tol] (and is finite). Solvers legitimately produce values a few
// ulps outside [0,1]; tol absorbs that while still catching real
// violations. A non-positive tol means a strict [0,1] check.
func CheckProbability(name string, v, tol float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%s = %g: %w", name, v, ErrNonFinite)
	}
	if tol < 0 {
		tol = 0
	}
	if v < -tol || v > 1+tol {
		return fmt.Errorf("%s = %g outside [0,1] (tol %g): %w", name, v, tol, ErrInvariant)
	}
	return nil
}

// CheckBound returns an error wrapping ErrInvariant unless v ≤ bound+tol.
// It is the guard behind assertions such as E[W_φ] ≤ E[W_I].
func CheckBound(name string, v, bound, tol float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%s = %g: %w", name, v, ErrNonFinite)
	}
	if v > bound+tol {
		return fmt.Errorf("%s = %g exceeds bound %g (tol %g): %w", name, v, bound, tol, ErrInvariant)
	}
	return nil
}
