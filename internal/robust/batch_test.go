package robust

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestRunBatchAllSucceed(t *testing.T) {
	items := []int{1, 2, 3, 4}
	pr, err := RunBatch(context.Background(), items, func(_ context.Context, v int) (int, error) {
		return v * v, nil
	}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := pr.Successes(); len(got) != 4 || got[3] != 16 {
		t.Errorf("Successes() = %v", got)
	}
	if pr.Report.Failed() != 0 || pr.Report.Err() != nil {
		t.Errorf("report = %+v", pr.Report)
	}
	if pr.Report.Summary() != "all 4 items succeeded" {
		t.Errorf("Summary() = %q", pr.Report.Summary())
	}
}

func TestRunBatchSkipsAndRecordsFailures(t *testing.T) {
	boom := errors.New("boom")
	items := []int{0, 1, 2, 3, 4}
	pr, err := RunBatch(context.Background(), items, func(_ context.Context, v int) (int, error) {
		if v%2 == 1 {
			return 0, fmt.Errorf("item %d: %w", v, boom)
		}
		return v * 10, nil
	}, BatchOptions{})
	if err != nil {
		t.Fatalf("skip-and-record batch returned %v", err)
	}
	if pr.Report.Failed() != 2 || pr.Report.Succeeded() != 3 {
		t.Fatalf("report counts = %d failed / %d ok", pr.Report.Failed(), pr.Report.Succeeded())
	}
	if got := pr.SuccessIndices(); len(got) != 3 || got[0] != 0 || got[2] != 4 {
		t.Errorf("SuccessIndices() = %v", got)
	}
	if !errors.Is(pr.Report.Err(), boom) {
		t.Errorf("Report.Err() = %v, want wrapped boom", pr.Report.Err())
	}
	if pr.Report.Failures[0].Index != 1 || pr.Report.Failures[1].Index != 3 {
		t.Errorf("failure indices = %+v", pr.Report.Failures)
	}
}

func TestRunBatchStopOnError(t *testing.T) {
	calls := 0
	_, err := RunBatch(context.Background(), []int{1, 2, 3}, func(_ context.Context, v int) (int, error) {
		calls++
		if v == 2 {
			return 0, errors.New("fatal")
		}
		return v, nil
	}, BatchOptions{StopOnError: true})
	if err == nil {
		t.Fatal("StopOnError batch returned nil error")
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2 (stopped at first failure)", calls)
	}
}

func TestRunBatchPanicRecovery(t *testing.T) {
	pr, err := RunBatch(context.Background(), []int{1, 2, 3}, func(_ context.Context, v int) (int, error) {
		if v == 2 {
			panic("index out of range")
		}
		return v, nil
	}, BatchOptions{Retries: 3, Retryable: func(error) bool { return true }})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Report.Failed() != 1 {
		t.Fatalf("report = %+v", pr.Report)
	}
	f := pr.Report.Failures[0]
	if !errors.Is(f.Err, ErrPanic) {
		t.Errorf("panic not classified: %v", f.Err)
	}
	if f.Attempts != 1 {
		t.Errorf("panicked item retried: attempts = %d, want 1", f.Attempts)
	}
}

func TestRunBatchRetryTransient(t *testing.T) {
	transient := errors.New("transient")
	attempts := 0
	pr, err := RunBatch(context.Background(), []int{1}, func(_ context.Context, v int) (int, error) {
		attempts++
		if attempts < 3 {
			return 0, transient
		}
		return 42, nil
	}, BatchOptions{Retries: 2, Retryable: func(err error) bool { return errors.Is(err, transient) }})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 || !pr.OK[0] || pr.Results[0] != 42 {
		t.Errorf("attempts = %d, result = %+v", attempts, pr)
	}
}

func TestRunBatchRetryExhausted(t *testing.T) {
	transient := errors.New("transient")
	pr, err := RunBatch(context.Background(), []int{1}, func(_ context.Context, v int) (int, error) {
		return 0, transient
	}, BatchOptions{Retries: 2, Retryable: func(err error) bool { return true }})
	if err != nil {
		t.Fatal(err)
	}
	if got := pr.Report.Failures[0].Attempts; got != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries)", got)
	}
}

func TestRunBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	pr, err := RunBatch(ctx, []int{1, 2, 3, 4}, func(_ context.Context, v int) (int, error) {
		if v == 2 {
			cancel()
		}
		return v, nil
	}, BatchOptions{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled batch returned %v, want ErrCanceled", err)
	}
	// Items 1 and 2 ran before the cancellation was observed; 3 and 4 are
	// recorded as canceled.
	if pr.Report.Succeeded() != 2 || pr.Report.Failed() != 2 {
		t.Errorf("report counts = %d ok / %d failed", pr.Report.Succeeded(), pr.Report.Failed())
	}
	for _, f := range pr.Report.Failures {
		if !errors.Is(f.Err, ErrCanceled) {
			t.Errorf("remaining item %d error = %v, want ErrCanceled", f.Index, f.Err)
		}
	}
}

func TestRunBatchMinSuccessFraction(t *testing.T) {
	fail := errors.New("bad draw")
	fn := func(_ context.Context, v int) (int, error) {
		if v < 6 {
			return 0, fail
		}
		return v, nil
	}
	items := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9} // 4 of 10 succeed
	pr, err := RunBatch(context.Background(), items, fn, BatchOptions{MinSuccessFraction: 0.5})
	if !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("err = %v, want ErrTooManyFailures", err)
	}
	if pr.Report.Succeeded() != 4 {
		t.Errorf("succeeded = %d", pr.Report.Succeeded())
	}
	if _, err := RunBatch(context.Background(), items, fn, BatchOptions{MinSuccessFraction: 0.4}); err != nil {
		t.Fatalf("40%% floor rejected 40%% survival: %v", err)
	}
}

func TestRunBatchEmpty(t *testing.T) {
	pr, err := RunBatch(context.Background(), nil, func(_ context.Context, v int) (int, error) {
		return v, nil
	}, BatchOptions{MinSuccessFraction: 0.5})
	if err != nil || pr.Report.Total != 0 {
		t.Fatalf("empty batch: %v, %+v", err, pr.Report)
	}
}
