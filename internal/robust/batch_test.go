package robust

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunBatchAllSucceed(t *testing.T) {
	items := []int{1, 2, 3, 4}
	pr, err := RunBatch(context.Background(), items, func(_ context.Context, v int) (int, error) {
		return v * v, nil
	}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := pr.Successes(); len(got) != 4 || got[3] != 16 {
		t.Errorf("Successes() = %v", got)
	}
	if pr.Report.Failed() != 0 || pr.Report.Err() != nil {
		t.Errorf("report = %+v", pr.Report)
	}
	if pr.Report.Summary() != "all 4 items succeeded" {
		t.Errorf("Summary() = %q", pr.Report.Summary())
	}
}

func TestRunBatchSkipsAndRecordsFailures(t *testing.T) {
	boom := errors.New("boom")
	items := []int{0, 1, 2, 3, 4}
	pr, err := RunBatch(context.Background(), items, func(_ context.Context, v int) (int, error) {
		if v%2 == 1 {
			return 0, fmt.Errorf("item %d: %w", v, boom)
		}
		return v * 10, nil
	}, BatchOptions{})
	if err != nil {
		t.Fatalf("skip-and-record batch returned %v", err)
	}
	if pr.Report.Failed() != 2 || pr.Report.Succeeded() != 3 {
		t.Fatalf("report counts = %d failed / %d ok", pr.Report.Failed(), pr.Report.Succeeded())
	}
	if got := pr.SuccessIndices(); len(got) != 3 || got[0] != 0 || got[2] != 4 {
		t.Errorf("SuccessIndices() = %v", got)
	}
	if !errors.Is(pr.Report.Err(), boom) {
		t.Errorf("Report.Err() = %v, want wrapped boom", pr.Report.Err())
	}
	if pr.Report.Failures[0].Index != 1 || pr.Report.Failures[1].Index != 3 {
		t.Errorf("failure indices = %+v", pr.Report.Failures)
	}
}

func TestRunBatchStopOnError(t *testing.T) {
	calls := 0
	_, err := RunBatch(context.Background(), []int{1, 2, 3}, func(_ context.Context, v int) (int, error) {
		calls++
		if v == 2 {
			return 0, errors.New("fatal")
		}
		return v, nil
	}, BatchOptions{StopOnError: true})
	if err == nil {
		t.Fatal("StopOnError batch returned nil error")
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2 (stopped at first failure)", calls)
	}
}

func TestRunBatchPanicRecovery(t *testing.T) {
	pr, err := RunBatch(context.Background(), []int{1, 2, 3}, func(_ context.Context, v int) (int, error) {
		if v == 2 {
			panic("index out of range")
		}
		return v, nil
	}, BatchOptions{Retries: 3, Retryable: func(error) bool { return true }})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Report.Failed() != 1 {
		t.Fatalf("report = %+v", pr.Report)
	}
	f := pr.Report.Failures[0]
	if !errors.Is(f.Err, ErrPanic) {
		t.Errorf("panic not classified: %v", f.Err)
	}
	if f.Attempts != 1 {
		t.Errorf("panicked item retried: attempts = %d, want 1", f.Attempts)
	}
}

func TestRunBatchRetryTransient(t *testing.T) {
	transient := errors.New("transient")
	attempts := 0
	pr, err := RunBatch(context.Background(), []int{1}, func(_ context.Context, v int) (int, error) {
		attempts++
		if attempts < 3 {
			return 0, transient
		}
		return 42, nil
	}, BatchOptions{Retries: 2, Retryable: func(err error) bool { return errors.Is(err, transient) }})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 || !pr.OK[0] || pr.Results[0] != 42 {
		t.Errorf("attempts = %d, result = %+v", attempts, pr)
	}
}

func TestRunBatchRetryExhausted(t *testing.T) {
	transient := errors.New("transient")
	pr, err := RunBatch(context.Background(), []int{1}, func(_ context.Context, v int) (int, error) {
		return 0, transient
	}, BatchOptions{Retries: 2, Retryable: func(err error) bool { return true }})
	if err != nil {
		t.Fatal(err)
	}
	if got := pr.Report.Failures[0].Attempts; got != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries)", got)
	}
}

func TestRunBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	pr, err := RunBatch(ctx, []int{1, 2, 3, 4}, func(_ context.Context, v int) (int, error) {
		if v == 2 {
			cancel()
		}
		return v, nil
	}, BatchOptions{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled batch returned %v, want ErrCanceled", err)
	}
	// Items 1 and 2 ran before the cancellation was observed; 3 and 4 are
	// recorded as canceled.
	if pr.Report.Succeeded() != 2 || pr.Report.Failed() != 2 {
		t.Errorf("report counts = %d ok / %d failed", pr.Report.Succeeded(), pr.Report.Failed())
	}
	for _, f := range pr.Report.Failures {
		if !errors.Is(f.Err, ErrCanceled) {
			t.Errorf("remaining item %d error = %v, want ErrCanceled", f.Index, f.Err)
		}
	}
}

func TestRunBatchMinSuccessFraction(t *testing.T) {
	fail := errors.New("bad draw")
	fn := func(_ context.Context, v int) (int, error) {
		if v < 6 {
			return 0, fail
		}
		return v, nil
	}
	items := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9} // 4 of 10 succeed
	pr, err := RunBatch(context.Background(), items, fn, BatchOptions{MinSuccessFraction: 0.5})
	if !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("err = %v, want ErrTooManyFailures", err)
	}
	if pr.Report.Succeeded() != 4 {
		t.Errorf("succeeded = %d", pr.Report.Succeeded())
	}
	if _, err := RunBatch(context.Background(), items, fn, BatchOptions{MinSuccessFraction: 0.4}); err != nil {
		t.Fatalf("40%% floor rejected 40%% survival: %v", err)
	}
}

// TestRunBatchParallelMatchesSequential locks the determinism contract:
// the same items, fn and failure pattern produce identical Results, OK
// and Report at every worker count.
func TestRunBatchParallelMatchesSequential(t *testing.T) {
	transient := errors.New("transient")
	hard := errors.New("hard failure")
	items := make([]int, 40)
	for i := range items {
		items[i] = i
	}
	mkFn := func() func(context.Context, int) (int, error) {
		var mu sync.Mutex
		tries := make(map[int]int)
		return func(_ context.Context, v int) (int, error) {
			mu.Lock()
			tries[v]++
			n := tries[v]
			mu.Unlock()
			switch {
			case v%7 == 3:
				return 0, fmt.Errorf("item %d: %w", v, hard)
			case v%5 == 2 && n == 1:
				return 0, fmt.Errorf("item %d: %w", v, transient)
			}
			return v * v, nil
		}
	}
	opts := BatchOptions{Retries: 2, Retryable: func(err error) bool { return errors.Is(err, transient) }}

	opts.Workers = 1
	seq, seqErr := RunBatch(context.Background(), items, mkFn(), opts)
	for _, workers := range []int{2, 4, 16} {
		opts.Workers = workers
		par, parErr := RunBatch(context.Background(), items, mkFn(), opts)
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("workers=%d error mismatch: %v vs %v", workers, seqErr, parErr)
		}
		if !reflect.DeepEqual(seq.Results, par.Results) || !reflect.DeepEqual(seq.OK, par.OK) {
			t.Errorf("workers=%d results diverge", workers)
		}
		if seq.Report.Completed != par.Report.Completed || len(seq.Report.Failures) != len(par.Report.Failures) {
			t.Fatalf("workers=%d report counts diverge: %s vs %s",
				workers, seq.Report.Summary(), par.Report.Summary())
		}
		for i, f := range par.Report.Failures {
			sf := seq.Report.Failures[i]
			if f.Index != sf.Index || f.Attempts != sf.Attempts || f.Err.Error() != sf.Err.Error() {
				t.Errorf("workers=%d failure[%d] = %+v, want %+v", workers, i, f, sf)
			}
		}
		if !sort.SliceIsSorted(par.Report.Failures, func(i, j int) bool {
			return par.Report.Failures[i].Index < par.Report.Failures[j].Index
		}) {
			t.Errorf("workers=%d failures not sorted by index", workers)
		}
	}
}

// TestRunBatchParallelRunsConcurrently proves the pool actually runs
// items at the configured width: every item blocks until all four are in
// flight, which deadlocks unless four workers run them together.
func TestRunBatchParallelRunsConcurrently(t *testing.T) {
	var barrier sync.WaitGroup
	barrier.Add(4)
	pr, err := RunBatch(context.Background(), []int{0, 1, 2, 3}, func(_ context.Context, v int) (int, error) {
		barrier.Done()
		barrier.Wait()
		return v, nil
	}, BatchOptions{Workers: 4})
	if err != nil || pr.Report.Succeeded() != 4 {
		t.Fatalf("concurrent batch: err=%v report=%s", err, pr.Report.Summary())
	}
	if got := pr.Report.Metrics.Workers; got != 4 {
		t.Errorf("resolved workers = %d, want 4", got)
	}
}

// TestRunBatchCancelDuringRetry covers the mid-retry cancellation path: a
// context canceled from inside fn between attempts must record the item
// as canceled (not as an ordinary solver failure) and stop the batch with
// the same remaining-items-canceled accounting as the pre-item check.
func TestRunBatchCancelDuringRetry(t *testing.T) {
	transient := errors.New("transient solver wobble")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	attempts := 0
	pr, err := RunBatch(ctx, []int{10, 20, 30}, func(_ context.Context, v int) (int, error) {
		if v == 20 {
			attempts++
			cancel() // dies mid-item; a retry would otherwise follow
			return 0, transient
		}
		return v, nil
	}, BatchOptions{Retries: 3, Retryable: func(err error) bool { return errors.Is(err, transient) }})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("batch error = %v, want ErrCanceled", err)
	}
	if attempts != 1 {
		t.Errorf("canceled item retried anyway: attempts = %d", attempts)
	}
	if pr.Report.Succeeded() != 1 || pr.Report.Failed() != 2 {
		t.Fatalf("report counts = %d ok / %d failed, want 1/2: %s",
			pr.Report.Succeeded(), pr.Report.Failed(), pr.Report.Summary())
	}
	interrupted := pr.Report.Failures[0]
	if interrupted.Index != 1 || !errors.Is(interrupted.Err, ErrCanceled) {
		t.Errorf("interrupted item not recorded as canceled: %+v", interrupted)
	}
	if !errors.Is(interrupted.Err, transient) {
		t.Errorf("interrupted item lost its triggering error: %v", interrupted.Err)
	}
	remaining := pr.Report.Failures[1]
	if remaining.Index != 2 || !errors.Is(remaining.Err, ErrCanceled) || remaining.Attempts != 0 {
		t.Errorf("remaining item not accounted as canceled: %+v", remaining)
	}
}

// TestRunBatchParallelCancellation checks the canceled accounting stays
// complete under a real pool: every item is either a success, a recorded
// failure, or a recorded cancellation.
func TestRunBatchParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	items := make([]int, 32)
	for i := range items {
		items[i] = i
	}
	pr, err := RunBatch(ctx, items, func(c context.Context, v int) (int, error) {
		if v == 3 {
			cancel()
		}
		return v, nil
	}, BatchOptions{Workers: 4})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if got := pr.Report.Completed + pr.Report.Failed(); got != len(items) {
		t.Errorf("accounting incomplete: %d completed + %d failed != %d items",
			pr.Report.Completed, pr.Report.Failed(), len(items))
	}
	for _, f := range pr.Report.Failures {
		if !errors.Is(f.Err, ErrCanceled) {
			t.Errorf("item %d failure is not a cancellation: %v", f.Index, f.Err)
		}
	}
}

// TestRunBatchStopOnErrorIgnoresWorkers: a StopOnError batch runs
// sequentially whatever Workers says, so nothing runs past the failure.
func TestRunBatchStopOnErrorIgnoresWorkers(t *testing.T) {
	var calls atomic.Int64
	pr, err := RunBatch(context.Background(), []int{0, 1, 2, 3, 4, 5, 6, 7}, func(_ context.Context, v int) (int, error) {
		calls.Add(1)
		if v == 2 {
			return 0, errors.New("fatal")
		}
		return v, nil
	}, BatchOptions{StopOnError: true, Workers: 8})
	if err == nil {
		t.Fatal("StopOnError batch returned nil error")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("calls = %d, want 3 (nothing past the first failure)", got)
	}
	if pr.Report.Metrics.Workers != 1 {
		t.Errorf("StopOnError pool size = %d, want 1", pr.Report.Metrics.Workers)
	}
}

func TestRunBatchEmpty(t *testing.T) {
	pr, err := RunBatch(context.Background(), nil, func(_ context.Context, v int) (int, error) {
		return v, nil
	}, BatchOptions{MinSuccessFraction: 0.5})
	if err != nil || pr.Report.Total != 0 {
		t.Fatalf("empty batch: %v, %+v", err, pr.Report)
	}
}
