// Package robust is the fault-tolerance layer of the toolkit: a typed
// error taxonomy shared by the numeric packages, finite-value and
// probability guards, and a context-aware batch runner that turns "one
// bad sample kills the sweep" into "skip, record, and keep going".
//
// The package applies the paper's own philosophy — graceful degradation
// under faults — to the evaluation machinery itself. A design-space
// exploration sweeps thousands of parameter sets; some of them are
// degenerate (singular transient blocks, probabilities driven to the
// boundary, overflowing horizons) and the tooling has to survive those
// regions to be usable.
//
// Layering: robust depends only on the standard library, so every other
// package (sparse, ctmc, core, uncertainty, experiments, the commands)
// can import it without cycles.
package robust
