package robust

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"guardedop/internal/obs"
)

// BatchOptions tunes RunBatch.
type BatchOptions struct {
	// Retries is the number of additional attempts per item after the
	// first (default 0: one attempt).
	Retries int
	// Retryable reports whether a failure is transient and worth another
	// attempt. Nil means no error is retried. Panics are never retried.
	Retryable func(error) bool
	// StopOnError aborts the batch at the first failed item instead of
	// the default skip-and-record behaviour. A StopOnError batch always
	// runs sequentially (Workers is ignored) so "nothing runs past the
	// first failure" stays exact.
	StopOnError bool
	// MinSuccessFraction in (0,1] makes RunBatch return an error wrapping
	// ErrTooManyFailures when fewer than this fraction of items succeed.
	// Zero disables the floor (any number of survivors is acceptable).
	MinSuccessFraction float64
	// Workers bounds how many items are evaluated concurrently: 0 (the
	// default) uses runtime.GOMAXPROCS(0), 1 runs the batch sequentially
	// in the calling goroutine, and any larger value is the pool size
	// (capped at the item count). Results, OK and the Report are
	// index-aligned and identical for every worker count — items must not
	// share mutable state through fn, but the batch layer itself never
	// reorders outcomes. Only the wall-clock metrics vary between runs.
	Workers int
}

// workerCount resolves the configured pool size against the item count.
func (o BatchOptions) workerCount(items int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if o.StopOnError {
		w = 1
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ItemError records one failed batch item.
type ItemError struct {
	// Index is the item's position in the input slice.
	Index int
	// Attempts is how many times the item was tried.
	Attempts int
	// Err is the final failure.
	Err error
}

// Report aggregates the per-item failures of one batch run.
type Report struct {
	// Total is the number of items submitted.
	Total int
	// Completed is the number of items that ran to success. In a batch
	// stopped early (StopOnError, cancellation) it can be smaller than
	// Total − len(Failures) would suggest, which is why it is tracked
	// explicitly.
	Completed int
	// Failures lists the failed items in input order.
	Failures []ItemError
	// Metrics carries the observability counters of the run. RunBatch
	// always populates it; hand-built reports may leave it nil.
	Metrics *Metrics
}

// Failed returns the number of failed items.
func (r *Report) Failed() int { return len(r.Failures) }

// Succeeded returns the number of items that ran to success.
func (r *Report) Succeeded() int { return r.Completed }

// Summary renders a compact human-readable account of the failures, one
// line per failed item, or "all N items succeeded".
func (r *Report) Summary() string {
	if len(r.Failures) == 0 {
		return fmt.Sprintf("all %d items succeeded", r.Total)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d items failed:", len(r.Failures), r.Total)
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "\n  item %d (attempts %d): %v", f.Index, f.Attempts, f.Err)
	}
	return b.String()
}

// Err returns nil when every item succeeded, otherwise an error naming the
// failure count and wrapping the first per-item error.
func (r *Report) Err() error {
	if len(r.Failures) == 0 {
		return nil
	}
	first := r.Failures[0]
	return fmt.Errorf("robust: %d/%d batch items failed, first at %d: %w",
		len(r.Failures), r.Total, first.Index, first.Err)
}

// PartialResult carries a batch's successes alongside its failure report.
type PartialResult[R any] struct {
	// Results has one entry per input item, aligned by index; entries of
	// failed items hold the zero value.
	Results []R
	// OK[i] reports whether item i succeeded.
	OK []bool
	// Report records the failures.
	Report *Report
}

// Successes returns the successful results compacted in input order.
func (p *PartialResult[R]) Successes() []R {
	out := make([]R, 0, p.Report.Succeeded())
	for i, ok := range p.OK {
		if ok {
			out = append(out, p.Results[i])
		}
	}
	return out
}

// SuccessIndices returns the input indices of the successful items.
func (p *PartialResult[R]) SuccessIndices() []int {
	out := make([]int, 0, p.Report.Succeeded())
	for i, ok := range p.OK {
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// itemState is one item's outcome, written by exactly one worker and read
// only after the pool has drained.
type itemState[R any] struct {
	res      R
	err      error
	attempts int
	panicked bool
	nanos    int64
	started  bool
}

// RunBatch runs fn over items on a bounded worker pool (see
// BatchOptions.Workers) with per-item panic recovery, bounded retry of
// transient failures, and cancellation between items. A failed item is
// skipped and recorded in the report rather than aborting the batch
// (unless opts.StopOnError is set).
//
// The outcome is deterministic in everything but wall-clock: Results and
// OK are aligned with the input, Report.Failures is sorted by item index,
// and a given (items, fn, opts) produces the same successes, failures and
// attempt counts at every worker count. Cancellation marks every item
// that had not started when the context ended as ErrCanceled; items
// already in flight run to completion and keep their results.
//
// The returned PartialResult is never nil. The error is non-nil only when
// the batch as a whole is unusable: the context was canceled (wraps
// ErrCanceled), StopOnError hit a failure, or fewer than
// opts.MinSuccessFraction of the items survived (wraps ErrTooManyFailures).
// Per-item failures otherwise live only in the report.
func RunBatch[T, R any](ctx context.Context, items []T, fn func(ctx context.Context, item T) (R, error), opts BatchOptions) (*PartialResult[R], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.workerCount(len(items))
	ctx, bsp := obs.StartSpan(ctx, "robust.batch")
	defer bsp.End()
	bsp.SetInt("items", int64(len(items)))
	bsp.SetInt("workers", int64(workers))
	out := &PartialResult[R]{
		Results: make([]R, len(items)),
		OK:      make([]bool, len(items)),
		Report:  &Report{Total: len(items), Metrics: NewMetrics(len(items), workers)},
	}

	states := make([]itemState[R], len(items))
	var (
		next    atomic.Int64
		stopped atomic.Bool // StopOnError tripped
	)
	start := time.Now()
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(items) {
				return
			}
			if ctx.Err() != nil || stopped.Load() {
				return
			}
			st := &states[i]
			st.started = true
			// Each worker goroutine starts, annotates and ends its own item
			// spans, honouring the span ownership rule; only the enclosing
			// batch span is shared, and workers never touch it.
			ictx, isp := obs.StartSpan(ctx, "robust.item")
			isp.SetInt("index", int64(i))
			runAttempts(ictx, items[i], fn, opts, st)
			isp.SetInt("attempts", int64(st.attempts))
			isp.End()
			if st.err != nil && opts.StopOnError {
				stopped.Store(true)
			}
		}
	}
	if workers == 1 {
		work()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				work()
			}()
		}
		wg.Wait()
	}

	// Aggregate in input order so Report.Failures comes out sorted by item
	// index regardless of completion order.
	m := out.Report.Metrics
	ctxErr := ctx.Err()
	ran := 0
	canceledItem := false
	for i := range states {
		st := &states[i]
		if !st.started {
			// Items a StopOnError batch never reached stay unrecorded (the
			// historical sequential contract); items a cancellation cut off
			// are accounted as canceled so the report stays complete.
			if ctxErr != nil {
				cerr := fmt.Errorf("%w: %v", ErrCanceled, ctxErr)
				m.countError(cerr)
				out.Report.Failures = append(out.Report.Failures, ItemError{Index: i, Err: cerr})
				canceledItem = true
			}
			continue
		}
		ran++
		m.Attempts += int64(st.attempts)
		if st.attempts > 1 {
			m.Retries += int64(st.attempts - 1)
		}
		if st.panicked {
			m.Panics++
		}
		m.ItemNanos[i] = st.nanos
		if st.err != nil {
			m.countError(st.err)
			if errors.Is(st.err, ErrCanceled) {
				canceledItem = true
			}
			out.Report.Failures = append(out.Report.Failures, ItemError{Index: i, Attempts: st.attempts, Err: st.err})
			continue
		}
		out.Results[i] = st.res
		out.OK[i] = true
		out.Report.Completed++
	}
	m.WallNanos = time.Since(start).Nanoseconds()

	if ctxErr != nil && canceledItem {
		return out, fmt.Errorf("robust: batch stopped after %d/%d items: %w (%v)",
			ran, len(items), ErrCanceled, ctxErr)
	}
	if opts.StopOnError && len(out.Report.Failures) > 0 {
		f := out.Report.Failures[0]
		return out, fmt.Errorf("robust: batch stopped at item %d: %w", f.Index, f.Err)
	}
	if f := opts.MinSuccessFraction; f > 0 && len(items) > 0 {
		if got := float64(out.Report.Succeeded()) / float64(len(items)); got < f {
			return out, fmt.Errorf("robust: only %d/%d items succeeded, need fraction %g: %w",
				out.Report.Succeeded(), len(items), f, ErrTooManyFailures)
		}
	}
	return out, nil
}

// runAttempts executes one item's attempt/retry loop, recording the
// outcome and its wall clock into st. A cancellation observed where a
// retry would otherwise happen is recorded as the item's failure wrapped
// in ErrCanceled (with the triggering attempt error still reachable via
// errors.Is), not as an ordinary solver failure.
func runAttempts[T, R any](ctx context.Context, item T, fn func(context.Context, T) (R, error), opts BatchOptions, st *itemState[R]) {
	t0 := time.Now()
	defer func() { st.nanos = time.Since(t0).Nanoseconds() }()
	for {
		st.attempts++
		res, err, panicked := runItem(ctx, item, fn)
		if err == nil {
			st.res, st.err = res, nil
			return
		}
		st.err = err
		st.panicked = st.panicked || panicked
		if panicked || st.attempts > opts.Retries ||
			opts.Retryable == nil || !opts.Retryable(err) {
			return
		}
		if cerr := ctx.Err(); cerr != nil {
			st.err = fmt.Errorf("%w: %v (interrupted retry of: %w)", ErrCanceled, cerr, err)
			return
		}
		obs.AddEvent(ctx, "retry")
		obs.Count(ctx, obs.CtrRetries, 1)
	}
}

// runItem executes one attempt with panic recovery.
func runItem[T, R any](ctx context.Context, item T, fn func(context.Context, T) (R, error)) (res R, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			err = fmt.Errorf("%w: %v", ErrPanic, r)
		}
	}()
	res, err = fn(ctx, item)
	return res, err, false
}
