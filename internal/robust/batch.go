package robust

import (
	"context"
	"fmt"
	"strings"
)

// BatchOptions tunes RunBatch.
type BatchOptions struct {
	// Retries is the number of additional attempts per item after the
	// first (default 0: one attempt).
	Retries int
	// Retryable reports whether a failure is transient and worth another
	// attempt. Nil means no error is retried. Panics are never retried.
	Retryable func(error) bool
	// StopOnError aborts the batch at the first failed item instead of
	// the default skip-and-record behaviour.
	StopOnError bool
	// MinSuccessFraction in (0,1] makes RunBatch return an error wrapping
	// ErrTooManyFailures when fewer than this fraction of items succeed.
	// Zero disables the floor (any number of survivors is acceptable).
	MinSuccessFraction float64
}

// ItemError records one failed batch item.
type ItemError struct {
	// Index is the item's position in the input slice.
	Index int
	// Attempts is how many times the item was tried.
	Attempts int
	// Err is the final failure.
	Err error
}

// Report aggregates the per-item failures of one batch run.
type Report struct {
	// Total is the number of items submitted.
	Total int
	// Completed is the number of items that ran to success. In a batch
	// stopped early (StopOnError, cancellation) it can be smaller than
	// Total − len(Failures) would suggest, which is why it is tracked
	// explicitly.
	Completed int
	// Failures lists the failed items in input order.
	Failures []ItemError
}

// Failed returns the number of failed items.
func (r *Report) Failed() int { return len(r.Failures) }

// Succeeded returns the number of items that ran to success.
func (r *Report) Succeeded() int { return r.Completed }

// Summary renders a compact human-readable account of the failures, one
// line per failed item, or "all N items succeeded".
func (r *Report) Summary() string {
	if len(r.Failures) == 0 {
		return fmt.Sprintf("all %d items succeeded", r.Total)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d items failed:", len(r.Failures), r.Total)
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "\n  item %d (attempts %d): %v", f.Index, f.Attempts, f.Err)
	}
	return b.String()
}

// Err returns nil when every item succeeded, otherwise an error naming the
// failure count and wrapping the first per-item error.
func (r *Report) Err() error {
	if len(r.Failures) == 0 {
		return nil
	}
	first := r.Failures[0]
	return fmt.Errorf("robust: %d/%d batch items failed, first at %d: %w",
		len(r.Failures), r.Total, first.Index, first.Err)
}

// PartialResult carries a batch's successes alongside its failure report.
type PartialResult[R any] struct {
	// Results has one entry per input item, aligned by index; entries of
	// failed items hold the zero value.
	Results []R
	// OK[i] reports whether item i succeeded.
	OK []bool
	// Report records the failures.
	Report *Report
}

// Successes returns the successful results compacted in input order.
func (p *PartialResult[R]) Successes() []R {
	out := make([]R, 0, p.Report.Succeeded())
	for i, ok := range p.OK {
		if ok {
			out = append(out, p.Results[i])
		}
	}
	return out
}

// SuccessIndices returns the input indices of the successful items.
func (p *PartialResult[R]) SuccessIndices() []int {
	out := make([]int, 0, p.Report.Succeeded())
	for i, ok := range p.OK {
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// RunBatch runs fn over items sequentially with per-item panic recovery,
// bounded retry of transient failures, and cancellation between items. A
// failed item is skipped and recorded in the report rather than aborting
// the batch (unless opts.StopOnError is set).
//
// The returned PartialResult is never nil. The error is non-nil only when
// the batch as a whole is unusable: the context was canceled (wraps
// ErrCanceled), StopOnError hit a failure, or fewer than
// opts.MinSuccessFraction of the items survived (wraps ErrTooManyFailures).
// Per-item failures otherwise live only in the report.
func RunBatch[T, R any](ctx context.Context, items []T, fn func(ctx context.Context, item T) (R, error), opts BatchOptions) (*PartialResult[R], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := &PartialResult[R]{
		Results: make([]R, len(items)),
		OK:      make([]bool, len(items)),
		Report:  &Report{Total: len(items)},
	}
	record := func(i, attempts int, err error) {
		out.Report.Failures = append(out.Report.Failures, ItemError{Index: i, Attempts: attempts, Err: err})
	}
	for i, item := range items {
		if err := ctx.Err(); err != nil {
			// Mark this and every remaining item as canceled so the
			// report stays a complete account of the batch.
			for j := i; j < len(items); j++ {
				record(j, 0, fmt.Errorf("%w: %v", ErrCanceled, err))
			}
			return out, fmt.Errorf("robust: batch stopped after %d/%d items: %w (%v)",
				i, len(items), ErrCanceled, err)
		}
		var (
			res      R
			err      error
			panicked bool
			attempts int
		)
		for {
			attempts++
			res, err, panicked = runItem(ctx, item, fn)
			if err == nil || panicked || attempts > opts.Retries ||
				opts.Retryable == nil || !opts.Retryable(err) || ctx.Err() != nil {
				break
			}
		}
		if err != nil {
			record(i, attempts, err)
			if opts.StopOnError {
				return out, fmt.Errorf("robust: batch stopped at item %d: %w", i, err)
			}
			continue
		}
		out.Results[i] = res
		out.OK[i] = true
		out.Report.Completed++
	}
	if f := opts.MinSuccessFraction; f > 0 && len(items) > 0 {
		if got := float64(out.Report.Succeeded()) / float64(len(items)); got < f {
			return out, fmt.Errorf("robust: only %d/%d items succeeded, need fraction %g: %w",
				out.Report.Succeeded(), len(items), f, ErrTooManyFailures)
		}
	}
	return out, nil
}

// runItem executes one attempt with panic recovery.
func runItem[T, R any](ctx context.Context, item T, fn func(context.Context, T) (R, error)) (res R, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			err = fmt.Errorf("%w: %v", ErrPanic, r)
		}
	}()
	res, err = fn(ctx, item)
	return res, err, false
}
