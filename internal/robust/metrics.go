package robust

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"guardedop/internal/obs"
)

// MetricsSchemaVersion identifies the JSON layout written by
// Metrics.WriteJSON. Bump it on any breaking change to the document's
// key set or field semantics; consumers of `gsueval -metrics json` pin
// against it (see the golden schema test in cmd/gsueval).
const MetricsSchemaVersion = 1

// Metrics aggregates the observability counters of one batch run. RunBatch
// always collects one into Report.Metrics; callers may fold in further
// counters — above all the static model-verification findings of
// internal/modelcheck, routed through AddChecks — so one structure feeds
// both solver-health and model-health dashboards (docs/ROBUSTNESS.md).
//
// A Metrics is written by a single goroutine (the batch aggregation step
// runs after the worker pool has drained); it is not safe for concurrent
// mutation.
type Metrics struct {
	// SchemaVersion is stamped by WriteJSON (MetricsSchemaVersion); it is
	// zero on in-memory instances so Merge never has to reconcile versions.
	SchemaVersion int `json:"schema_version,omitempty"`
	// Attempts counts every fn invocation, including retries.
	Attempts int64 `json:"attempts"`
	// Retries counts the invocations beyond each item's first.
	Retries int64 `json:"retries"`
	// Panics counts the recovered panics.
	Panics int64 `json:"panics"`
	// Errors counts failed items by taxonomy class (see ErrorClass).
	Errors map[string]int64 `json:"errors,omitempty"`
	// ItemNanos is the per-item wall clock in nanoseconds, aligned with
	// the batch input; zero for items that never started.
	ItemNanos []int64 `json:"item_nanos"`
	// WallNanos is the whole-batch wall clock in nanoseconds.
	WallNanos int64 `json:"wall_nanos"`
	// Workers is the resolved worker-pool size of the run.
	Workers int `json:"workers"`
	// Solves counts the CTMC solver passes (uniformization sweeps and dense
	// matrix exponentials) spent on the batch, folded in by callers via
	// AddSolves. It is the budget the shared-propagation curve engine
	// optimizes: a regression to per-point solving shows up here long
	// before it shows up in wall clock.
	Solves int64 `json:"solves,omitempty"`
	// Checks carries model-verification counters keyed "model/check",
	// e.g. "RMGd/reward-bounds".
	Checks map[string]CheckCounters `json:"checks,omitempty"`
	// Counters carries the named observability counters folded in from a
	// run's obs.Tracer via AddTrace (solver passes, cache traffic,
	// fallbacks, retries — see the obs.Ctr* vocabulary).
	Counters map[string]int64 `json:"counters,omitempty"`
	// Stages aggregates the run's trace spans by name: how many finished
	// and their total wall clock, folded in via AddTrace.
	Stages map[string]obs.StageStats `json:"stages,omitempty"`
}

// CheckCounters counts one static-analysis check's findings and how many
// of them were elided from the rendered report by the per-check cap.
type CheckCounters struct {
	Findings int `json:"findings"`
	Elided   int `json:"elided"`
}

// NewMetrics returns a Metrics sized for a batch of items run on the
// given worker count.
func NewMetrics(items, workers int) *Metrics {
	return &Metrics{
		Errors:    make(map[string]int64),
		ItemNanos: make([]int64, items),
		Workers:   workers,
	}
}

// ErrorClass returns err's place in the robustness taxonomy, for
// counting failures by kind. Wrapped causes are honoured through
// errors.Is; an error outside the taxonomy is ClassOther, and a nil
// error is the empty Class.
func ErrorClass(err error) Class {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrPanic):
		return ClassPanic
	case errors.Is(err, ErrCanceled):
		return ClassCanceled
	case errors.Is(err, ErrTooManyFailures):
		return ClassTooManyFailures
	case errors.Is(err, ErrNotConverged):
		return ClassNotConverged
	case errors.Is(err, ErrIllConditioned):
		return ClassIllConditioned
	case errors.Is(err, ErrNonFinite):
		return ClassNonFinite
	case errors.Is(err, ErrInvariant):
		return ClassInvariant
	default:
		return ClassOther
	}
}

// countError tallies one failed item under its taxonomy class.
func (m *Metrics) countError(err error) {
	if m == nil || err == nil {
		return
	}
	if m.Errors == nil {
		m.Errors = make(map[string]int64)
	}
	m.Errors[string(ErrorClass(err))]++
}

// AddChecks folds one model's per-check verification counters into the
// metrics under "model/check" keys, accumulating across calls.
func (m *Metrics) AddChecks(model string, counters map[string]CheckCounters) {
	if m == nil || len(counters) == 0 {
		return
	}
	if m.Checks == nil {
		m.Checks = make(map[string]CheckCounters)
	}
	for check, c := range counters {
		key := model + "/" + check
		prev := m.Checks[key]
		prev.Findings += c.Findings
		prev.Elided += c.Elided
		m.Checks[key] = prev
	}
}

// AddSolves folds a count of CTMC solver passes into the metrics,
// accumulating across calls.
func (m *Metrics) AddSolves(n int64) {
	if m == nil || n <= 0 {
		return
	}
	m.Solves += n
}

// AddTrace folds a tracer's counters and per-stage span aggregates into
// the metrics, accumulating across calls. A nil tracer is a no-op, so
// untraced runs can call it unconditionally.
func (m *Metrics) AddTrace(tr *obs.Tracer) {
	if m == nil || tr == nil {
		return
	}
	for name, v := range tr.Counters() {
		if m.Counters == nil {
			m.Counters = make(map[string]int64)
		}
		m.Counters[name] += v
	}
	for name, st := range tr.Stages() {
		if m.Stages == nil {
			m.Stages = make(map[string]obs.StageStats)
		}
		prev := m.Stages[name]
		prev.Count += st.Count
		prev.Nanos += st.Nanos
		m.Stages[name] = prev
	}
}

// Merge accumulates another run's counters into m. Per-item wall clocks
// are appended, so merging reports of consecutive batches keeps every
// item's timing.
func (m *Metrics) Merge(other *Metrics) {
	if m == nil || other == nil {
		return
	}
	m.Attempts += other.Attempts
	m.Retries += other.Retries
	m.Panics += other.Panics
	m.WallNanos += other.WallNanos
	m.Solves += other.Solves
	for class, n := range other.Errors {
		if m.Errors == nil {
			m.Errors = make(map[string]int64)
		}
		m.Errors[class] += n
	}
	m.ItemNanos = append(m.ItemNanos, other.ItemNanos...)
	for key, c := range other.Checks {
		if m.Checks == nil {
			m.Checks = make(map[string]CheckCounters)
		}
		prev := m.Checks[key]
		prev.Findings += c.Findings
		prev.Elided += c.Elided
		m.Checks[key] = prev
	}
	for name, v := range other.Counters {
		if m.Counters == nil {
			m.Counters = make(map[string]int64)
		}
		m.Counters[name] += v
	}
	for name, st := range other.Stages {
		if m.Stages == nil {
			m.Stages = make(map[string]obs.StageStats)
		}
		prev := m.Stages[name]
		prev.Count += st.Count
		prev.Nanos += st.Nanos
		m.Stages[name] = prev
	}
}

// itemStats summarises the per-item wall clocks of the started items.
func (m *Metrics) itemStats() (started int, total, maxNanos int64, maxIdx int) {
	maxIdx = -1
	for i, n := range m.ItemNanos {
		if n == 0 {
			continue
		}
		started++
		total += n
		if n > maxNanos {
			maxNanos, maxIdx = n, i
		}
	}
	return started, total, maxNanos, maxIdx
}

// WriteText renders the metrics as a compact human-readable block with
// deterministic line ordering.
func (m *Metrics) WriteText(w io.Writer) {
	if m == nil {
		fmt.Fprintln(w, "metrics: none collected")
		return
	}
	fmt.Fprintf(w, "batch: %d items on %d workers, wall %v\n",
		len(m.ItemNanos), m.Workers, time.Duration(m.WallNanos))
	fmt.Fprintf(w, "attempts %d, retries %d, panics recovered %d\n",
		m.Attempts, m.Retries, m.Panics)
	if m.Solves > 0 {
		fmt.Fprintf(w, "solver passes: %d\n", m.Solves)
	}
	if len(m.Errors) > 0 {
		classes := make([]string, 0, len(m.Errors))
		for c := range m.Errors {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		fmt.Fprint(w, "errors:")
		for _, c := range classes {
			fmt.Fprintf(w, " %s=%d", c, m.Errors[c])
		}
		fmt.Fprintln(w)
	}
	if started, total, maxNanos, maxIdx := m.itemStats(); started > 0 {
		fmt.Fprintf(w, "item wall clock: total %v, mean %v, max %v (item %d)\n",
			time.Duration(total), time.Duration(total/int64(started)),
			time.Duration(maxNanos), maxIdx)
	}
	if len(m.Checks) > 0 {
		keys := make([]string, 0, len(m.Checks))
		for k := range m.Checks {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(w, "model checks:")
		for _, k := range keys {
			c := m.Checks[k]
			fmt.Fprintf(w, "  %s: findings=%d elided=%d\n", k, c.Findings, c.Elided)
		}
	}
	if len(m.Counters) > 0 {
		keys := make([]string, 0, len(m.Counters))
		for k := range m.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprint(w, "counters:")
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%d", k, m.Counters[k])
		}
		fmt.Fprintln(w)
	}
	if len(m.Stages) > 0 {
		keys := make([]string, 0, len(m.Stages))
		for k := range m.Stages {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(w, "stages:")
		for _, k := range keys {
			st := m.Stages[k]
			fmt.Fprintf(w, "  %s: count=%d wall=%v\n", k, st.Count, time.Duration(st.Nanos))
		}
	}
}

// WriteJSON renders the metrics as one indented JSON document, stamped
// with MetricsSchemaVersion. The stamp goes on a shallow copy so the
// in-memory instance stays version-free and mergeable.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if m == nil {
		return enc.Encode(m)
	}
	stamped := *m
	stamped.SchemaVersion = MetricsSchemaVersion
	return enc.Encode(&stamped)
}

// WriteProm renders the metrics' counters and stage aggregates in the
// Prometheus text exposition format (see obs.WritePromText). Histogram
// families require the run's tracer; use WritePromWith to emit them in
// the same exposition.
func (m *Metrics) WriteProm(w io.Writer) error {
	return m.WritePromWith(w, nil)
}

// WritePromWith is WriteProm plus the run's span-duration histogram
// families (obtained from the tracer via Tracer.Histograms). It is the
// single Prometheus exposition path shared by `gsueval -metrics prom`
// and the gsuserve /metrics endpoint: one call, one formatter
// (obs.WritePromText), identical family naming everywhere.
func (m *Metrics) WritePromWith(w io.Writer, hists map[string]obs.HistSnapshot) error {
	if m == nil {
		return obs.WritePromText(w, nil, nil, hists)
	}
	counters := make(map[string]int64, len(m.Counters)+4+len(m.Errors))
	for k, v := range m.Counters {
		counters[k] = v
	}
	if m.Solves > 0 {
		counters["batch.solves"] = m.Solves
	}
	counters["batch.attempts"] = m.Attempts
	counters["batch.retries"] = m.Retries
	counters["batch.panics"] = m.Panics
	for class, n := range m.Errors {
		counters["batch.errors."+class] = n
	}
	return obs.WritePromText(w, counters, m.Stages, hists)
}
