package compose

import (
	"math"
	"testing"

	"guardedop/internal/ctmc"
	"guardedop/internal/reward"
	"guardedop/internal/san"
	"guardedop/internal/statespace"
)

// A larger composed model pushes the solver stack past the dense
// steady-state threshold and into SOR territory: 11 replicated machines
// give a few thousand tangible states.
func TestReplicateLargeModelSolvesAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	const n = 11
	model, _, err := Replicate("bigshop", n,
		[]SharedPlaceSpec{{Name: "repairQueue", Initial: 0}},
		machineTemplate(0.5))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := statespace.Generate(model, statespace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumStates() < 1000 {
		t.Fatalf("expected a large state space, got %d states", sp.NumStates())
	}
	t.Logf("states: %d", sp.NumStates())

	// Steady state via the auto solver (SOR at this size) must agree with
	// the uniformized power method, and replicas must be symmetric.
	pi, err := sp.Chain.SteadyState(ctmc.SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	piPower, err := sp.Chain.SteadyState(ctmc.SteadyStateOptions{Method: ctmc.SteadyPower, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	dist := 0.0
	for i := range pi {
		dist += math.Abs(pi[i] - piPower[i])
	}
	if dist > 1e-6 {
		t.Errorf("SOR and power steady states differ by %g in L1", dist)
	}

	availOf := func(idx int) float64 {
		up := model.PlaceByName("rep" + string(rune('0'+idx)) + ".up")
		if up == nil {
			t.Fatalf("replica %d place missing", idx)
		}
		s := reward.NewStructure().Add("up", func(mk san.Marking) bool { return mk.Get(up) == 1 }, 1)
		v, err := reward.SteadyState(sp, s)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	a0, a5 := availOf(0), availOf(5)
	if math.Abs(a0-a5) > 1e-8 {
		t.Errorf("replica symmetry broken at scale: %v vs %v", a0, a5)
	}
	if a0 <= 0.5 || a0 >= 1 {
		t.Errorf("availability = %v out of plausible range", a0)
	}
}
