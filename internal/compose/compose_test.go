package compose

import (
	"errors"
	"math"
	"testing"

	"guardedop/internal/ctmc"
	"guardedop/internal/reward"
	"guardedop/internal/san"
	"guardedop/internal/statespace"
)

// machineTemplate models one machine that fails at rate lambda and queues
// for a shared repair facility.
func machineTemplate(lambda float64) Template {
	return func(m *san.Model, prefix string, shared Shared) error {
		repairQ, ok := shared["repairQueue"]
		if !ok {
			return errors.New("missing shared place repairQueue")
		}
		up := m.AddPlace(prefix+"up", 1)
		down := m.AddPlace(prefix+"down", 0)
		fail := m.AddTimedActivity(prefix+"fail", san.ConstRate(lambda)).AddInputArc(up, 1)
		fail.AddCase(san.ConstProb(1)).AddOutputArc(down, 1).AddOutputArc(repairQ, 1)
		// The shared repairer fixes this machine when it is at the head of
		// the queue; for simplicity any queued token repairs any down
		// machine, which is symmetric under replication.
		rep := m.AddTimedActivity(prefix+"repair", san.ConstRate(2.0)).
			AddInputArc(down, 1).AddInputArc(repairQ, 1)
		rep.AddCase(san.ConstProb(1)).AddOutputArc(up, 1)
		return nil
	}
}

func TestReplicateSharedRepair(t *testing.T) {
	// 2 machines, shared repair queue: this is machine-repairman with a
	// single repairer of rate mu=2 and per-machine failure rate 0.5.
	model, _, err := Replicate("repairshop", 2,
		[]SharedPlaceSpec{{Name: "repairQueue", Initial: 0}},
		machineTemplate(0.5))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := statespace.Generate(model, statespace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	up0 := model.PlaceByName("rep0.up")
	up1 := model.PlaceByName("rep1.up")
	if up0 == nil || up1 == nil {
		t.Fatal("replica places missing")
	}
	// Steady-state availability of machine 0 must equal machine 1 by
	// symmetry, and match the birth-death closed form.
	s0 := reward.NewStructure().Add("up0", func(mk san.Marking) bool { return mk.Get(up0) == 1 }, 1)
	s1 := reward.NewStructure().Add("up1", func(mk san.Marking) bool { return mk.Get(up1) == 1 }, 1)
	a0, err := reward.SteadyState(sp, s0)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := reward.SteadyState(sp, s1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a0-a1) > 1e-10 {
		t.Errorf("replica asymmetry: %v vs %v", a0, a1)
	}
	// Each replica brings its own repair channel fed by the shared queue,
	// so this is the 2-machine, 2-channel birth-death chain: with
	// rho = lambda/mu = 0.25, pi(n down) ∝ {1, 2·rho, rho²}.
	rho := 0.25
	w0, w1, w2 := 1.0, 2*rho, rho*rho
	norm := w0 + w1 + w2
	// P(machine 0 up) = P(0 down) + P(1 down)/2.
	want := (w0 + w1/2) / norm
	if math.Abs(a0-want) > 1e-9 {
		t.Errorf("availability = %.6f, want %.6f", a0, want)
	}
}

func TestJoinHeterogeneousParts(t *testing.T) {
	parts := map[string]Template{
		"fast": machineTemplate(1.0),
		"slow": machineTemplate(0.1),
	}
	model, shared, err := Join("hetero",
		[]SharedPlaceSpec{{Name: "repairQueue", Initial: 0}}, parts)
	if err != nil {
		t.Fatal(err)
	}
	if shared["repairQueue"] == nil {
		t.Fatal("shared place not returned")
	}
	sp, err := statespace.Generate(model, statespace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fast := model.PlaceByName("fast.up")
	slow := model.PlaceByName("slow.up")
	sFast := reward.NewStructure().Add("f", func(mk san.Marking) bool { return mk.Get(fast) == 1 }, 1)
	sSlow := reward.NewStructure().Add("s", func(mk san.Marking) bool { return mk.Get(slow) == 1 }, 1)
	aFast, err := reward.SteadyState(sp, sFast)
	if err != nil {
		t.Fatal(err)
	}
	aSlow, err := reward.SteadyState(sp, sSlow)
	if err != nil {
		t.Fatal(err)
	}
	if aFast >= aSlow {
		t.Errorf("fast-failing machine more available than slow one: %v vs %v", aFast, aSlow)
	}
}

func TestJoinDeterministicStateSpace(t *testing.T) {
	build := func() int {
		model, _, err := Replicate("det", 3,
			[]SharedPlaceSpec{{Name: "repairQueue", Initial: 0}},
			machineTemplate(0.5))
		if err != nil {
			t.Fatal(err)
		}
		sp, err := statespace.Generate(model, statespace.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return sp.NumStates()
	}
	if a, b := build(), build(); a != b {
		t.Errorf("non-deterministic composition: %d vs %d states", a, b)
	}
}

// TestComposeDeterminismRegression guards the sortedLabels contract the
// template layer relies on: repeated builds of the same composition must
// produce byte-identical place indexing and state-space ordering, not
// merely the same state count (map iteration order must never leak into
// the generated artifacts).
func TestComposeDeterminismRegression(t *testing.T) {
	type snapshot struct {
		places string
		states string
	}
	build := func(kind string) snapshot {
		var (
			model *san.Model
			err   error
		)
		switch kind {
		case "replicate":
			model, _, err = Replicate("det", 3,
				[]SharedPlaceSpec{{Name: "repairQueue", Initial: 0}},
				machineTemplate(0.5))
		case "join":
			model, _, err = Join("det",
				[]SharedPlaceSpec{{Name: "repairQueue", Initial: 0}},
				map[string]Template{
					"a": machineTemplate(0.5),
					"b": machineTemplate(1.5),
					"c": machineTemplate(0.25),
				})
		}
		if err != nil {
			t.Fatal(err)
		}
		sp, err := statespace.Generate(model, statespace.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var snap snapshot
		for _, p := range model.Places() {
			snap.places += p.Name() + ";"
		}
		for _, mk := range sp.States {
			snap.states += mk.Key() + "\n"
		}
		return snap
	}
	for _, kind := range []string{"replicate", "join"} {
		first := build(kind)
		for i := 0; i < 3; i++ {
			if again := build(kind); again != first {
				t.Fatalf("%s build %d diverged from first build\nplaces: %q vs %q",
					kind, i+1, again.places, first.places)
			}
		}
	}
}

func TestJoinValidation(t *testing.T) {
	if _, _, err := Replicate("bad", 0, nil, machineTemplate(1)); err == nil {
		t.Error("replica count 0 accepted")
	}
	if _, _, err := Join("bad", nil, map[string]Template{"x": nil}); err == nil {
		t.Error("nil template accepted")
	}
	dup := []SharedPlaceSpec{{Name: "q"}, {Name: "q"}}
	if _, _, err := Join("bad", dup, nil); err == nil {
		t.Error("duplicate shared place accepted")
	}
	failing := map[string]Template{
		"boom": func(m *san.Model, prefix string, shared Shared) error {
			return errors.New("boom")
		},
	}
	if _, _, err := Join("bad", []SharedPlaceSpec{{Name: "q"}}, failing); err == nil {
		t.Error("failing template accepted")
	}
}

// Composition semantics must survive the full solver stack: transient
// probabilities on the composed model equal the product form where the
// replicas are independent (no shared contention).
func TestReplicateIndependentReplicasProductForm(t *testing.T) {
	indep := func(m *san.Model, prefix string, _ Shared) error {
		up := m.AddPlace(prefix+"up", 1)
		down := m.AddPlace(prefix+"down", 0)
		fail := m.AddTimedActivity(prefix+"fail", san.ConstRate(0.3)).AddInputArc(up, 1)
		fail.AddCase(san.ConstProb(1)).AddOutputArc(down, 1)
		return nil
	}
	model, _, err := Replicate("indep", 2, nil, indep)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := statespace.Generate(model, statespace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	up0 := model.PlaceByName("rep0.up")
	up1 := model.PlaceByName("rep1.up")
	tEnd := 1.7
	pBoth, err := reward.StateProbability(sp, func(mk san.Marking) bool {
		return mk.Get(up0) == 1 && mk.Get(up1) == 1
	}, tEnd)
	if err != nil {
		t.Fatal(err)
	}
	single := math.Exp(-0.3 * tEnd)
	if math.Abs(pBoth-single*single) > 1e-10 {
		t.Errorf("product form violated: %v vs %v", pBoth, single*single)
	}
	_ = ctmc.SteadyStateOptions{} // keep ctmc linked for the solver stack
}
