// Package compose provides UltraSAN-style model composition for stochastic
// activity networks: Join (combine submodels that share places) and
// Replicate (instantiate a submodel template N times against a set of
// shared places).
//
// Composition works at build time: a Template is a function that adds one
// submodel's places and activities into a target model under a unique name
// prefix, wiring itself to the shared places it is given. This keeps gate
// predicates and rate functions ordinary Go closures over *san.Place
// handles — no marking re-indexing is ever needed — while providing the
// Rep/Join modelling workflow of the paper's tooling.
package compose

import (
	"fmt"
	"sort"

	"guardedop/internal/san"
)

// Shared is the set of places visible to every submodel, keyed by the
// logical shared-place name.
type Shared map[string]*san.Place

// Template instantiates one submodel into m. All places and activities the
// template adds must use the prefix to stay unique across replicas; shared
// state is accessed through the shared map.
type Template func(m *san.Model, prefix string, shared Shared) error

// SharedPlaceSpec declares a shared place and its initial marking.
type SharedPlaceSpec struct {
	Name    string
	Initial int
}

// Join builds a model named name containing the given shared places and
// one instance of each labelled template. Labels must be unique; they
// become the instance prefixes.
func Join(name string, sharedSpecs []SharedPlaceSpec, parts map[string]Template) (*san.Model, Shared, error) {
	m := san.NewModel(name)
	shared := make(Shared, len(sharedSpecs))
	for _, spec := range sharedSpecs {
		if _, dup := shared[spec.Name]; dup {
			return nil, nil, fmt.Errorf("compose: duplicate shared place %q", spec.Name)
		}
		shared[spec.Name] = m.AddPlace(spec.Name, spec.Initial)
	}
	seen := make(map[string]bool, len(parts))
	for label, tmpl := range parts {
		if tmpl == nil {
			return nil, nil, fmt.Errorf("compose: nil template %q", label)
		}
		if seen[label] {
			return nil, nil, fmt.Errorf("compose: duplicate template label %q", label)
		}
		seen[label] = true
	}
	// Deterministic instantiation order (map iteration is random): sort by
	// label so generated state spaces are reproducible across runs.
	for _, label := range sortedLabels(parts) {
		if err := parts[label](m, label+".", shared); err != nil {
			return nil, nil, fmt.Errorf("compose: instantiating %q: %w", label, err)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	return m, shared, nil
}

// Replicate builds a model with n instances of the same template (prefixes
// "rep0.", "rep1.", ...) over the shared places.
func Replicate(name string, n int, sharedSpecs []SharedPlaceSpec, tmpl Template) (*san.Model, Shared, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("compose: replica count %d < 1", n)
	}
	parts := make(map[string]Template, n)
	for i := 0; i < n; i++ {
		parts[fmt.Sprintf("rep%d", i)] = tmpl
	}
	return Join(name, sharedSpecs, parts)
}

func sortedLabels(parts map[string]Template) []string {
	labels := make([]string, 0, len(parts))
	for l := range parts {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}
