package san

import (
	"fmt"
	"math"
)

// RateFunc computes a marking-dependent firing rate.
type RateFunc func(Marking) float64

// WeightFunc computes a marking-dependent selection weight for races among
// enabled instantaneous activities.
type WeightFunc func(Marking) float64

// Predicate reports whether an activity is enabled in a marking.
type Predicate func(Marking) bool

// MutateFunc applies a marking change when an activity fires.
type MutateFunc func(Marking)

// ProbFunc computes a marking-dependent case probability.
type ProbFunc func(Marking) float64

// ConstRate returns a RateFunc with a fixed rate.
func ConstRate(r float64) RateFunc { return func(Marking) float64 { return r } }

// ConstProb returns a ProbFunc with a fixed probability.
func ConstProb(p float64) ProbFunc { return func(Marking) float64 { return p } }

// inputGate couples an enabling predicate with a firing-time marking change.
type inputGate struct {
	name string
	pred Predicate
	fn   MutateFunc
}

// arc is a plain input or output arc with a multiplicity.
type arc struct {
	place  *Place
	tokens int
}

// Case is one completion alternative of an activity.
type Case struct {
	prob        ProbFunc
	outputArcs  []arc
	outputFuncs []MutateFunc
}

// AddOutputArc adds count tokens to place p when this case is selected.
// It panics if count is not positive (a model-construction bug).
func (c *Case) AddOutputArc(p *Place, count int) *Case {
	if count <= 0 {
		panic(fmt.Sprintf("san: output arc to %q must carry positive tokens", p.name))
	}
	c.outputArcs = append(c.outputArcs, arc{place: p, tokens: count})
	return c
}

// AddOutputFunc attaches an output-gate function to this case. Functions run
// after output arcs, in attachment order.
func (c *Case) AddOutputFunc(fn MutateFunc) *Case {
	c.outputFuncs = append(c.outputFuncs, fn)
	return c
}

// Activity is a timed or instantaneous SAN activity.
type Activity struct {
	name   string
	timed  bool
	rate   RateFunc   // timed only
	weight WeightFunc // instantaneous only; defaults to 1

	inputArcs  []arc
	inputGates []inputGate
	cases      []*Case
}

// Name returns the activity name.
func (a *Activity) Name() string { return a.name }

// Timed reports whether the activity is timed (vs. instantaneous).
func (a *Activity) Timed() bool { return a.timed }

// Cases returns the activity's cases in creation order.
func (a *Activity) Cases() []*Case { return a.cases }

// AddTimedActivity creates an exponentially timed activity with the given
// marking-dependent rate.
func (m *Model) AddTimedActivity(name string, rate RateFunc) *Activity {
	a := &Activity{name: name, timed: true, rate: rate}
	m.activities = append(m.activities, a)
	return a
}

// AddInstantaneousActivity creates an instantaneous activity. Instantaneous
// activities take priority over timed ones; among several enabled
// instantaneous activities the choice is weighted by SetWeight (default 1).
func (m *Model) AddInstantaneousActivity(name string) *Activity {
	a := &Activity{name: name, timed: false, weight: func(Marking) float64 { return 1 }}
	m.activities = append(m.activities, a)
	return a
}

// SetWeight sets the instantaneous race weight. Calling it on a timed
// activity panics.
func (a *Activity) SetWeight(w WeightFunc) *Activity {
	if a.timed {
		panic(fmt.Sprintf("san: SetWeight on timed activity %q", a.name))
	}
	a.weight = w
	return a
}

// AddInputArc requires (and consumes) count tokens from place p.
// It panics if count is not positive (a model-construction bug).
func (a *Activity) AddInputArc(p *Place, count int) *Activity {
	if count <= 0 {
		panic(fmt.Sprintf("san: input arc from %q must carry positive tokens", p.name))
	}
	a.inputArcs = append(a.inputArcs, arc{place: p, tokens: count})
	return a
}

// AddInhibitorArc disables the activity while place p holds at least
// threshold tokens (the classic Petri-net inhibitor arc; threshold 1 means
// "p must be empty"). Inhibitor arcs affect enabling only; they move no
// tokens. It panics if threshold is not positive (a model-construction
// bug).
func (a *Activity) AddInhibitorArc(p *Place, threshold int) *Activity {
	if threshold <= 0 {
		panic(fmt.Sprintf("san: inhibitor arc on %q needs positive threshold", p.name))
	}
	a.inputGates = append(a.inputGates, inputGate{
		name: "inhibit:" + p.name,
		pred: func(mk Marking) bool { return mk.Get(p) < threshold },
	})
	return a
}

// AddInputGate attaches an input gate: pred contributes to enabling, fn (may
// be nil) mutates the marking at firing time before case selection.
// It panics if pred is nil (a model-construction bug).
func (a *Activity) AddInputGate(name string, pred Predicate, fn MutateFunc) *Activity {
	if pred == nil {
		panic(fmt.Sprintf("san: input gate %q on %q has nil predicate", name, a.name))
	}
	a.inputGates = append(a.inputGates, inputGate{name: name, pred: pred, fn: fn})
	return a
}

// AddCase appends a completion case with the given probability function.
func (a *Activity) AddCase(prob ProbFunc) *Case {
	c := &Case{prob: prob}
	a.cases = append(a.cases, c)
	return c
}

// ensureCases materialises the implicit certain case for activities built
// without explicit cases.
func (a *Activity) ensureCases() {
	if len(a.cases) == 0 {
		a.AddCase(ConstProb(1))
	}
}

// Enabled reports whether the activity is enabled in mk.
func (a *Activity) Enabled(mk Marking) bool {
	for _, ia := range a.inputArcs {
		if mk.Get(ia.place) < ia.tokens {
			return false
		}
	}
	for _, g := range a.inputGates {
		if !g.pred(mk) {
			return false
		}
	}
	return true
}

// Rate returns the activity's firing rate in mk. It panics on timed
// activities with non-finite or negative rates, and on instantaneous
// activities (which have no rate).
func (a *Activity) Rate(mk Marking) float64 {
	if !a.timed {
		panic(fmt.Sprintf("san: Rate on instantaneous activity %q", a.name))
	}
	r := a.rate(mk)
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		panic(fmt.Sprintf("san: activity %q has invalid rate %g", a.name, r))
	}
	return r
}

// Weight returns the instantaneous race weight in mk. It panics if the
// weight function produces a negative or non-finite value: a corrupt
// weight would silently skew the vanishing-marking race, so it must not
// survive into state-space generation.
func (a *Activity) Weight(mk Marking) float64 {
	w := a.weight(mk)
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		panic(fmt.Sprintf("san: activity %q has invalid weight %g", a.name, w))
	}
	return w
}

// Fire returns the markings reachable by firing a in mk, one per case with
// positive probability, together with each case's probability. The input
// marking is not modified. Case probabilities must sum to 1 within 1e-9.
func (a *Activity) Fire(mk Marking) ([]Marking, []float64, error) {
	a.ensureCases()
	base := mk.Clone()
	for _, ia := range a.inputArcs {
		base.Set(ia.place, base.Get(ia.place)-ia.tokens)
	}
	for _, g := range a.inputGates {
		if g.fn != nil {
			g.fn(base)
		}
	}
	var (
		outs  []Marking
		probs []float64
		total float64
	)
	for _, c := range a.cases {
		p := c.prob(mk)
		if p < 0 || math.IsNaN(p) {
			return nil, nil, fmt.Errorf("san: activity %q case probability %g", a.name, p)
		}
		total += p
		if p == 0 {
			continue
		}
		dst := base.Clone()
		for _, oa := range c.outputArcs {
			dst.Set(oa.place, dst.Get(oa.place)+oa.tokens)
		}
		for _, fn := range c.outputFuncs {
			fn(dst)
		}
		outs = append(outs, dst)
		probs = append(probs, p)
	}
	if math.Abs(total-1) > 1e-9 {
		return nil, nil, fmt.Errorf("san: activity %q case probabilities sum to %g, want 1", a.name, total)
	}
	return outs, probs, nil
}
