package san

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestModelConstruction(t *testing.T) {
	m := NewModel("demo")
	p := m.AddPlace("p", 2)
	q := m.AddPlace("q", 0)
	if m.PlaceByName("p") != p || m.PlaceByName("missing") != nil {
		t.Error("PlaceByName lookup broken")
	}
	if p.Name() != "p" || p.Index() != 0 || q.Index() != 1 {
		t.Error("place metadata wrong")
	}
	mk := m.InitialMarking()
	if mk.Get(p) != 2 || mk.Get(q) != 0 {
		t.Errorf("initial marking = %v, want [2 0]", mk)
	}
	if m.Name() != "demo" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestDuplicatePlacePanics(t *testing.T) {
	m := NewModel("dup")
	m.AddPlace("p", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate place did not panic")
		}
	}()
	m.AddPlace("p", 1)
}

func TestMarkingKeyAndClone(t *testing.T) {
	m := NewModel("k")
	a := m.AddPlace("a", 1)
	m.AddPlace("b", 12)
	mk := m.InitialMarking()
	if mk.Key() != "1,12" {
		t.Errorf("Key = %q, want %q", mk.Key(), "1,12")
	}
	c := mk.Clone()
	c.Set(a, 5)
	if mk.Get(a) != 1 {
		t.Error("Clone aliases original")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Set did not panic")
		}
	}()
	c.Set(a, -1)
}

func TestEnablingSemantics(t *testing.T) {
	m := NewModel("enable")
	p := m.AddPlace("p", 1)
	g := m.AddPlace("guard", 0)
	act := m.AddTimedActivity("t", ConstRate(2)).
		AddInputArc(p, 1).
		AddInputGate("g", func(mk Marking) bool { return mk.Get(g) == 0 }, nil)
	mk := m.InitialMarking()
	if !act.Enabled(mk) {
		t.Fatal("activity should be enabled")
	}
	mk.Set(g, 1)
	if act.Enabled(mk) {
		t.Fatal("gate predicate should disable activity")
	}
	mk.Set(g, 0)
	mk.Set(p, 0)
	if act.Enabled(mk) {
		t.Fatal("empty input place should disable activity")
	}
}

func TestFireConsumesAndProduces(t *testing.T) {
	m := NewModel("fire")
	src := m.AddPlace("src", 2)
	dst := m.AddPlace("dst", 0)
	act := m.AddTimedActivity("move", ConstRate(1)).AddInputArc(src, 1)
	act.AddCase(ConstProb(1)).AddOutputArc(dst, 1)
	mk := m.InitialMarking()
	outs, probs, err := act.Fire(mk)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || probs[0] != 1 {
		t.Fatalf("Fire returned %d cases, probs %v", len(outs), probs)
	}
	if outs[0].Get(src) != 1 || outs[0].Get(dst) != 1 {
		t.Errorf("fired marking = %v, want src=1 dst=1", outs[0])
	}
	if mk.Get(src) != 2 || mk.Get(dst) != 0 {
		t.Error("Fire mutated its input marking")
	}
}

func TestFireCaseSelection(t *testing.T) {
	m := NewModel("cases")
	p := m.AddPlace("p", 1)
	a := m.AddPlace("a", 0)
	b := m.AddPlace("b", 0)
	act := m.AddTimedActivity("split", ConstRate(1)).AddInputArc(p, 1)
	act.AddCase(ConstProb(0.3)).AddOutputArc(a, 1)
	act.AddCase(ConstProb(0.7)).AddOutputArc(b, 1)
	outs, probs, err := act.Fire(m.InitialMarking())
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("len(outs) = %d, want 2", len(outs))
	}
	if probs[0] != 0.3 || probs[1] != 0.7 {
		t.Errorf("probs = %v", probs)
	}
	if outs[0].Get(a) != 1 || outs[1].Get(b) != 1 {
		t.Error("case outputs wrong")
	}
}

func TestFireZeroProbabilityCaseSkipped(t *testing.T) {
	m := NewModel("zero")
	p := m.AddPlace("p", 1)
	act := m.AddTimedActivity("t", ConstRate(1))
	act.AddCase(ConstProb(0)).AddOutputArc(p, 1)
	act.AddCase(ConstProb(1))
	outs, probs, err := act.Fire(m.InitialMarking())
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || probs[0] != 1 {
		t.Errorf("zero-prob case not skipped: %d cases, probs %v", len(outs), probs)
	}
}

func TestFireBadProbabilitiesRejected(t *testing.T) {
	m := NewModel("bad")
	m.AddPlace("p", 1)
	act := m.AddTimedActivity("t", ConstRate(1))
	act.AddCase(ConstProb(0.5))
	if _, _, err := act.Fire(m.InitialMarking()); err == nil {
		t.Error("probabilities summing to 0.5 accepted")
	}
	m2 := NewModel("neg")
	m2.AddPlace("p", 1)
	act2 := m2.AddTimedActivity("t", ConstRate(1))
	act2.AddCase(ConstProb(-0.5))
	act2.AddCase(ConstProb(1.5))
	if _, _, err := act2.Fire(m2.InitialMarking()); err == nil {
		t.Error("negative case probability accepted")
	}
}

func TestImplicitCertainCase(t *testing.T) {
	m := NewModel("implicit")
	p := m.AddPlace("p", 1)
	q := m.AddPlace("q", 0)
	act := m.AddTimedActivity("t", ConstRate(1)).
		AddInputGate("g", func(mk Marking) bool { return mk.Get(p) == 1 }, func(mk Marking) {
			mk.Set(p, 0)
			mk.Set(q, 1)
		})
	outs, probs, err := act.Fire(m.InitialMarking())
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || probs[0] != 1 || outs[0].Get(q) != 1 {
		t.Errorf("implicit case broken: outs=%v probs=%v", outs, probs)
	}
}

func TestInstantaneousWeight(t *testing.T) {
	m := NewModel("inst")
	m.AddPlace("p", 0)
	a := m.AddInstantaneousActivity("i")
	mk := m.InitialMarking()
	if a.Weight(mk) != 1 {
		t.Errorf("default weight = %v, want 1", a.Weight(mk))
	}
	a.SetWeight(func(Marking) float64 { return 3 })
	if a.Weight(mk) != 3 {
		t.Errorf("weight = %v, want 3", a.Weight(mk))
	}
	if a.Timed() {
		t.Error("instantaneous activity reports Timed")
	}
}

func TestSetWeightOnTimedPanics(t *testing.T) {
	m := NewModel("w")
	m.AddPlace("p", 0)
	a := m.AddTimedActivity("t", ConstRate(1))
	defer func() {
		if recover() == nil {
			t.Fatal("SetWeight on timed activity did not panic")
		}
	}()
	a.SetWeight(func(Marking) float64 { return 1 })
}

func TestInvalidRatePanics(t *testing.T) {
	m := NewModel("r")
	m.AddPlace("p", 0)
	a := m.AddTimedActivity("t", ConstRate(math.NaN()))
	defer func() {
		if recover() == nil {
			t.Fatal("NaN rate did not panic")
		}
	}()
	a.Rate(m.InitialMarking())
}

func TestValidate(t *testing.T) {
	m := NewModel("v")
	if err := m.Validate(); err == nil {
		t.Error("model with no places validated")
	}
	m.AddPlace("p", 0)
	a := m.AddTimedActivity("t", nil)
	a.AddCase(ConstProb(1))
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "no rate") {
		t.Errorf("nil rate not caught: %v", err)
	}
}

func TestValidateDuplicateActivity(t *testing.T) {
	m := NewModel("v2")
	m.AddPlace("p", 0)
	m.AddTimedActivity("t", ConstRate(1)).AddCase(ConstProb(1))
	m.AddTimedActivity("t", ConstRate(2)).AddCase(ConstProb(1))
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate activity") {
		t.Errorf("duplicate activity not caught: %v", err)
	}
}

// Property: Fire never mutates the source marking and case probabilities of
// the returned set sum to one.
func TestFirePurityProperty(t *testing.T) {
	m := NewModel("prop")
	p := m.AddPlace("p", 3)
	q := m.AddPlace("q", 0)
	act := m.AddTimedActivity("t", ConstRate(1)).AddInputArc(p, 1)
	act.AddCase(ConstProb(0.25)).AddOutputArc(q, 2)
	act.AddCase(ConstProb(0.75)).AddOutputArc(p, 1)
	f := func(extraP, extraQ uint8) bool {
		mk := m.InitialMarking()
		mk.Set(p, 1+int(extraP%5))
		mk.Set(q, int(extraQ%5))
		before := mk.Clone()
		outs, probs, err := act.Fire(mk)
		if err != nil {
			return false
		}
		if mk.Key() != before.Key() {
			return false
		}
		sum := 0.0
		for _, pr := range probs {
			sum += pr
		}
		return len(outs) == 2 && math.Abs(sum-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMarkingFormat(t *testing.T) {
	m := NewModel("fmt")
	m.AddPlace("alpha", 0)
	m.AddPlace("beta", 2)
	got := m.InitialMarking().Format(m)
	if got != "{beta=2}" {
		t.Errorf("format = %q, want {beta=2}", got)
	}
}

func TestInhibitorArc(t *testing.T) {
	m := NewModel("inhibit")
	p := m.AddPlace("p", 1)
	q := m.AddPlace("q", 0)
	act := m.AddTimedActivity("t", ConstRate(1)).
		AddInputArc(p, 1).
		AddInhibitorArc(q, 2)
	act.AddCase(ConstProb(1))
	mk := m.InitialMarking()
	if !act.Enabled(mk) {
		t.Fatal("enabled below threshold expected")
	}
	mk.Set(q, 1)
	if !act.Enabled(mk) {
		t.Fatal("still below threshold")
	}
	mk.Set(q, 2)
	if act.Enabled(mk) {
		t.Fatal("inhibitor at threshold should disable")
	}
}

func TestInhibitorArcBadThresholdPanics(t *testing.T) {
	m := NewModel("inhibitbad")
	p := m.AddPlace("p", 0)
	a := m.AddTimedActivity("t", ConstRate(1))
	defer func() {
		if recover() == nil {
			t.Fatal("threshold 0 did not panic")
		}
	}()
	a.AddInhibitorArc(p, 0)
}
