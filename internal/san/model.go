package san

import (
	"fmt"
)

// Place is a named token holder. Places are created via Model.AddPlace and
// referenced in gate/rate functions through Marking.Get/Set.
type Place struct {
	name    string
	index   int
	initial int
}

// Name returns the place name.
func (p *Place) Name() string { return p.name }

// Index returns the place's position in markings of its model.
func (p *Place) Index() int { return p.index }

// Model is a stochastic activity network under construction. It is not safe
// for concurrent mutation; once built it is read-only and safe to share.
type Model struct {
	name       string
	places     []*Place
	byName     map[string]*Place
	activities []*Activity
}

// NewModel returns an empty SAN with the given name.
func NewModel(name string) *Model {
	return &Model{name: name, byName: make(map[string]*Place)}
}

// Name returns the model name.
func (m *Model) Name() string { return m.name }

// Places returns the model's places in creation order. The caller must not
// mutate the returned slice.
func (m *Model) Places() []*Place { return m.places }

// Activities returns the model's activities in creation order. The caller
// must not mutate the returned slice.
func (m *Model) Activities() []*Activity { return m.activities }

// AddPlace creates a place with the given initial marking. Place names must
// be unique within the model; duplicates panic (model construction is
// programmer-controlled, so this is a build-time assertion, not a runtime
// error path).
func (m *Model) AddPlace(name string, initial int) *Place {
	if _, dup := m.byName[name]; dup {
		panic(fmt.Sprintf("san: duplicate place %q in model %q", name, m.name))
	}
	if initial < 0 {
		panic(fmt.Sprintf("san: negative initial marking for place %q", name))
	}
	p := &Place{name: name, index: len(m.places), initial: initial}
	m.places = append(m.places, p)
	m.byName[name] = p
	return p
}

// PlaceByName returns the named place, or nil if absent.
func (m *Model) PlaceByName(name string) *Place { return m.byName[name] }

// InitialMarking returns a fresh marking holding every place's initial
// token count.
func (m *Model) InitialMarking() Marking {
	mk := make(Marking, len(m.places))
	for _, p := range m.places {
		mk[p.index] = p.initial
	}
	return mk
}

// Validate checks structural well-formedness: every activity has a rate (if
// timed), at least one case path, and case probabilities that are
// marking-independent sane (checked lazily at exploration time for
// marking-dependent ones).
func (m *Model) Validate() error {
	if len(m.places) == 0 {
		return fmt.Errorf("san: model %q has no places", m.name)
	}
	names := make(map[string]bool, len(m.activities))
	for _, a := range m.activities {
		if names[a.name] {
			return fmt.Errorf("san: duplicate activity %q in model %q", a.name, m.name)
		}
		names[a.name] = true
		if a.timed && a.rate == nil {
			return fmt.Errorf("san: timed activity %q has no rate", a.name)
		}
		if len(a.cases) == 0 {
			return fmt.Errorf("san: activity %q has no cases", a.name)
		}
	}
	return nil
}
