// Package san implements stochastic activity networks (SANs), the
// UltraSAN/Möbius modelling formalism of Meyer, Movaghar and Sanders used by
// the guarded-operation paper.
//
// A SAN consists of:
//
//   - Places holding non-negative integer markings (token counts).
//   - Timed activities that fire after an exponentially distributed delay
//     whose rate may depend on the current marking.
//   - Instantaneous activities that fire immediately when enabled, taking
//     priority over all timed activities; races among several enabled
//     instantaneous activities are resolved by marking-dependent weights.
//   - Cases: each activity completes into one of its cases, selected by
//     marking-dependent case probabilities; each case applies its own
//     output changes. An activity with no explicit cases has one implicit
//     certain case.
//   - Input gates carrying an enabling predicate and a marking-mutation
//     function executed when the activity fires.
//   - Output gates carrying a marking-mutation function attached to a case.
//   - Plain input/output arcs as a convenience (tokens required/consumed
//     and produced).
//
// An activity is enabled when every input arc's place holds enough tokens
// and every input gate predicate holds. Firing consumes input-arc tokens,
// runs input-gate functions, selects a case, produces output-arc tokens and
// runs that case's output-gate functions, in that order.
//
// The package defines model structure and firing semantics only; state-space
// exploration and conversion to a CTMC live in internal/statespace, and
// reward specification in internal/reward.
package san
