package san

import (
	"strings"
	"testing"
)

func TestWriteDot(t *testing.T) {
	m := NewModel("demo")
	p := m.AddPlace("src", 2)
	q := m.AddPlace("dst", 0)
	act := m.AddTimedActivity("move", ConstRate(1)).
		AddInputArc(p, 1).
		AddInputGate("g", func(Marking) bool { return true }, nil)
	act.AddCase(ConstProb(0.5)).AddOutputArc(q, 1)
	act.AddCase(ConstProb(0.5)).AddOutputArc(q, 2)
	inst := m.AddInstantaneousActivity("flash").AddInputArc(q, 3)
	inst.AddCase(ConstProb(1)).AddOutputArc(p, 1)

	var b strings.Builder
	if err := m.WriteDot(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"digraph \"demo\"",
		"src\\n(init 2)",
		"dst",
		"move\\n[1 gate(s)]",
		"flash",
		"place_0 -> act_0",
		"act_0 -> place_1 [label=\"case 1 x1\"]",
		"act_0 -> place_1 [label=\"case 2 x2\"]",
		"place_1 -> act_1 [label=\"3\"]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
}
