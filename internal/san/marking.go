package san

import (
	"fmt"
	"strconv"
	"strings"
)

// Marking is a token-count vector indexed by place index. Markings are
// created by Model.InitialMarking and copied with Clone; gate and rate
// functions receive the marking being evaluated.
type Marking []int

// Clone returns a deep copy of the marking.
func (m Marking) Clone() Marking {
	out := make(Marking, len(m))
	copy(out, m)
	return out
}

// Get returns the token count of place p.
func (m Marking) Get(p *Place) int { return m[p.index] }

// Set stores count tokens in place p. It panics on negative counts, which
// indicate a model bug (an output function draining an empty place).
func (m Marking) Set(p *Place, count int) {
	if count < 0 {
		panic(fmt.Sprintf("san: negative marking %d for place %q", count, p.name))
	}
	m[p.index] = count
}

// Key returns a compact string key identifying the marking, suitable for
// map lookup during state-space exploration.
func (m Marking) Key() string {
	var b strings.Builder
	b.Grow(len(m) * 2)
	for i, v := range m {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// Format renders the marking with place names for diagnostics, listing
// only places with non-zero token counts.
func (m Marking) Format(model *Model) string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, p := range model.places {
		if m[p.index] == 0 {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%s=%d", p.name, m[p.index])
	}
	b.WriteByte('}')
	return b.String()
}
