package san

import (
	"fmt"
	"io"
	"strings"
)

// WriteDot renders the SAN's structure as a Graphviz digraph: places as
// circles (labelled with non-zero initial markings), timed activities as
// filled boxes, instantaneous activities as thin black bars — the
// conventional SAN drawing style of the paper's Figures 6-8. Input/output
// arcs appear as edges; gates are noted on the activity label because
// their predicates and functions are opaque Go code.
func (m *Model) WriteDot(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", m.name)
	b.WriteString("  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n")

	for _, p := range m.places {
		label := p.name
		if p.initial > 0 {
			label = fmt.Sprintf("%s\\n(init %d)", p.name, p.initial)
		}
		fmt.Fprintf(&b, "  place_%d [shape=circle, label=\"%s\"];\n", p.index, label)
	}
	for ai, a := range m.activities {
		shape, style := "box", "filled, rounded"
		fill := "lightgrey"
		if !a.timed {
			shape, style, fill = "box", "filled", "black"
		}
		label := a.name
		if gates := len(a.inputGates); gates > 0 {
			label = fmt.Sprintf("%s\\n[%d gate(s)]", a.name, gates)
		}
		extra := ""
		if !a.timed {
			extra = ", width=0.1, fontcolor=white"
		}
		fmt.Fprintf(&b, "  act_%d [shape=%s, style=\"%s\", fillcolor=%s, label=\"%s\"%s];\n",
			ai, shape, style, fill, label, extra)

		for _, ia := range a.inputArcs {
			lbl := ""
			if ia.tokens > 1 {
				lbl = fmt.Sprintf(" [label=\"%d\"]", ia.tokens)
			}
			fmt.Fprintf(&b, "  place_%d -> act_%d%s;\n", ia.place.index, ai, lbl)
		}
		for ci, c := range a.cases {
			for _, oa := range c.outputArcs {
				lbl := ""
				if len(a.cases) > 1 || oa.tokens > 1 {
					lbl = fmt.Sprintf(" [label=\"case %d x%d\"]", ci+1, oa.tokens)
				}
				fmt.Fprintf(&b, "  act_%d -> place_%d%s;\n", ai, oa.place.index, lbl)
			}
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
