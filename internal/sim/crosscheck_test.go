package sim

import (
	"math"
	"testing"

	"guardedop/internal/core"
)

// The headline validation: the monolithic-process simulation must agree
// with the translated reward-model solution of Y. The two share model
// generators but differ in everything the translation approximates away —
// the deterministic φ boundary, latent contamination carried across it,
// and the neglected second-order term of Eq. (19) — so agreement within a
// few percent validates the whole pipeline.
func TestSimulationAgreesWithTranslation(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo validation; skipped in -short mode")
	}
	p := scaledParams()
	analyzer, err := core.NewAnalyzer(p)
	if err != nil {
		t.Fatal(err)
	}
	rho1, rho2 := analyzer.Rho()
	s, err := NewSimulator(p, rho1, rho2)
	if err != nil {
		t.Fatal(err)
	}
	for _, phi := range []float64{200, 500, 800} {
		ana, err := analyzer.Evaluate(phi)
		if err != nil {
			t.Fatal(err)
		}
		// Use the analytic γ so the comparison isolates the translation's
		// probabilistic structure rather than the γ treatment.
		est, err := s.EstimateY(phi, Options{
			Paths:     20000,
			Seed:      31,
			GammaMode: GammaFixed,
			Gamma:     ana.Gamma,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Re-pinned for the SplitMix64 per-path seed derivation: with
		// decorrelated streams the deviation at every grid point fits
		// inside 4 standard errors, so the systematic slack for the
		// translation's approximations tightens from 2% to 1%.
		tol := 4*est.YStdErr + 0.01*ana.Y
		if math.Abs(est.Y-ana.Y) > tol {
			t.Errorf("phi=%v: simulated Y = %.4f ± %.4f, analytic Y = %.4f (tol %.4f)",
				phi, est.Y, est.YStdErr, ana.Y, tol)
		}
	}
}

// Per-path γ(τ) versus the paper's fixed-γ approximation. The paper's τ̄ is
// the Table 1 ∫τh reward — the expected sojourn before the first error
// event, which counts the full φ for never-detected paths — so it exceeds
// the conditional mean detection time and the resulting fixed γ is
// systematically pessimistic: fixed-γ Y must come out BELOW per-path Y,
// but within the same regime (both on the same side of 1, ordering of the
// worth terms preserved). The gap is quantified in EXPERIMENTS.md.
func TestGammaTreatmentsAgreeApproximately(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo validation; skipped in -short mode")
	}
	p := scaledParams()
	analyzer, err := core.NewAnalyzer(p)
	if err != nil {
		t.Fatal(err)
	}
	rho1, rho2 := analyzer.Rho()
	s, err := NewSimulator(p, rho1, rho2)
	if err != nil {
		t.Fatal(err)
	}
	phi := 700.0
	ana, err := analyzer.Evaluate(phi)
	if err != nil {
		t.Fatal(err)
	}
	perPath, err := s.EstimateY(phi, Options{Paths: 15000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := s.EstimateY(phi, Options{Paths: 15000, Seed: 8, GammaMode: GammaFixed, Gamma: ana.Gamma})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Y > perPath.Y+4*perPath.YStdErr {
		t.Errorf("fixed-γ Y = %.4f should not exceed per-path Y = %.4f", fixed.Y, perPath.Y)
	}
	if perPath.Y > 2*fixed.Y {
		t.Errorf("gamma treatments diverge beyond the expected band: per-path Y = %.4f, fixed Y = %.4f",
			perPath.Y, fixed.Y)
	}
	if (fixed.Y > 1) != (perPath.Y > 1) {
		t.Errorf("gamma treatments disagree on whether G-OP pays off: %.4f vs %.4f", fixed.Y, perPath.Y)
	}
}
