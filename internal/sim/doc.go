// Package sim provides discrete-event Monte-Carlo simulation of the
// guarded software upgrading process — the *monolithic*, untranslated model
// X of the paper's Section 4.
//
// The monolithic process is non-Markovian: the guarded-operation cutoff φ
// is a deterministic transition, which is exactly why the paper develops
// the model-translation approach instead of solving X directly. A
// simulator has no such difficulty, so this package serves as the
// end-to-end validator of the translation: it simulates sample paths of X
// through the G-OP interval (the RMGd dynamics), across the deterministic
// φ boundary, and through the remaining normal-mode interval (the RMNd
// dynamics), accounting mission worth per the paper's Equation (4), and
// estimates Y(φ) directly.
//
// Two γ treatments are supported: the per-path discount γ(τ) = 1 − τ/θ
// applied to each S2 sample path at its own detection time τ (the
// design-level definition), and the paper's evaluation-level approximation
// that uses a single γ at the mean detection time. Comparing the two
// quantifies the error introduced by that approximation.
//
// The package also estimates the steady-state overhead fractions ρ₁, ρ₂ by
// long-run simulation of the RMGp chain, validating the analytic
// steady-state solution.
//
// Simulation reuses the generated CTMCs of the analytic models — the same
// generators drive both solvers, so a disagreement isolates a solver bug
// rather than a model-transcription difference; the φ boundary and the
// cross-boundary carry-over of latent contamination (which the analytic
// translation approximates away) are the only genuinely new mechanics here.
package sim
