package sim

import (
	"math/bits"
	"testing"
)

// TestPathSeedPinned pins the SplitMix64-style per-path seed derivation.
// Changing it silently would shift every simulation estimate, so the
// exact stream mapping is part of the simulator's contract.
func TestPathSeedPinned(t *testing.T) {
	cases := []struct {
		i    int64
		want int64
	}{
		{0, 6057085510246920549},
		{1, -2929144642507117846},
		{2, -4840000547396304936},
		{12345, 2281511355718444633},
	}
	for _, tc := range cases {
		if got := pathSeed(31, tc.i); got != tc.want {
			t.Errorf("pathSeed(31, %d) = %d, want %d", tc.i, got, tc.want)
		}
	}
}

// TestPathSeedDecorrelated checks the finalizer actually decorrelates
// neighbouring path streams: consecutive seeds must differ in roughly
// half their bits (the truncated linear stride this replaced differed in
// only a handful of low bits), and must not collide over a realistic
// path count.
func TestPathSeedDecorrelated(t *testing.T) {
	const n = 1 << 16
	seen := make(map[int64]bool, n)
	totalHamming := 0
	prev := pathSeed(7, 0)
	seen[prev] = true
	for i := int64(1); i < n; i++ {
		s := pathSeed(7, i)
		if seen[s] {
			t.Fatalf("seed collision at path %d", i)
		}
		seen[s] = true
		totalHamming += bits.OnesCount64(uint64(prev) ^ uint64(s))
		prev = s
	}
	mean := float64(totalHamming) / float64(n-1)
	if mean < 24 || mean > 40 {
		t.Errorf("mean hamming distance between consecutive seeds = %.2f, want ~32", mean)
	}
}
